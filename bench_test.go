// Benchmarks regenerating every figure in the paper's evaluation (§4) plus
// the DESIGN.md ablations. Each bench runs the complete experiment per
// iteration and reports the figure's headline quantity through
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as a compact
// reproduction report. cmd/rrmp-figures prints the full series.
package repro_test

import (
	"testing"

	"repro"
)

// BenchmarkFigure3 regenerates Figure 3 (the Poisson distribution of
// long-term bufferers) and reports the Monte Carlo mass at k=C for C=6.
func BenchmarkFigure3(b *testing.B) {
	var atMode float64
	for i := 0; i < b.N; i++ {
		series := repro.Figure3([]float64{5, 6, 7, 8}, 100, 20000, uint64(i)+1)
		// series[3] is "C=6 simulated"; X index 6 is k=6.
		atMode = series[3].Y[6]
	}
	b.ReportMetric(atMode, "%mass@k=6,C=6")
}

// BenchmarkFigure4 regenerates Figure 4 and reports the simulated
// probability (%) that an idle message has no long-term bufferer at C=6
// (paper: 0.25%).
func BenchmarkFigure4(b *testing.B) {
	var atC6 float64
	for i := 0; i < b.N; i++ {
		series := repro.Figure4([]float64{1, 2, 3, 4, 5, 6}, 100, 100000, uint64(i)+1)
		atC6 = series[1].Y[len(series[1].Y)-1]
	}
	b.ReportMetric(atC6, "%none@C=6")
}

// BenchmarkFigure6 regenerates Figure 6 and reports mean buffering time at
// the extremes (paper: ~100 ms at k=1 falling to ~45 ms at k=64).
func BenchmarkFigure6(b *testing.B) {
	var k1, k64 float64
	for i := 0; i < b.N; i++ {
		s, err := repro.Figure6(10, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		k1, k64 = s.Y[0], s.Y[len(s.Y)-1]
	}
	b.ReportMetric(k1, "ms@k=1")
	b.ReportMetric(k64, "ms@k=64")
}

// BenchmarkFigure7 regenerates Figure 7 and reports when the buffered
// count collapses to zero after the region is repaired.
func BenchmarkFigure7(b *testing.B) {
	var emptyAt float64
	for i := 0; i < b.N; i++ {
		s, err := repro.Figure7(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		emptyAt = s.TimesMs[len(s.TimesMs)-1]
		for j := len(s.Buffered) - 1; j >= 0; j-- {
			if s.Buffered[j] != 0 {
				break
			}
			emptyAt = s.TimesMs[j]
		}
	}
	b.ReportMetric(emptyAt, "ms-to-empty")
}

// BenchmarkFigure8 regenerates Figure 8 and reports mean search times at 1
// and 10 bufferers (paper: ~45 ms and ~20 ms).
func BenchmarkFigure8(b *testing.B) {
	var b1, b10 float64
	for i := 0; i < b.N; i++ {
		s, err := repro.Figure8(30, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b1, b10 = s.Y[0], s.Y[len(s.Y)-1]
	}
	b.ReportMetric(b1, "ms@B=1")
	b.ReportMetric(b10, "ms@B=10")
}

// BenchmarkFigure9 regenerates Figure 9 and reports the search-time growth
// factor from n=100 to n=1000 (paper: ~2.2×).
func BenchmarkFigure9(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		s, err := repro.Figure9(30, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		ratio = s.Y[len(s.Y)-1] / s.Y[0]
	}
	b.ReportMetric(ratio, "x-growth-100to1000")
}

// BenchmarkAblationPolicies (A1) reports the buffer-space ratio of
// buffer-all to the paper's two-phase policy.
func BenchmarkAblationPolicies(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := repro.AblationPolicies(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		var twoPhase, all float64
		for _, r := range rows {
			switch r.Policy {
			case "two-phase C=6":
				twoPhase = r.BufferIntegral
			case "buffer-all":
				all = r.BufferIntegral
			}
		}
		ratio = all / twoPhase
	}
	b.ReportMetric(ratio, "x-bufferall-vs-twophase")
}

// BenchmarkAblationLoadBalance (A2) reports the most-burdened member's
// share of total buffering under both protocols.
func BenchmarkAblationLoadBalance(b *testing.B) {
	var rrmpShare, treeShare float64
	for i := 0; i < b.N; i++ {
		rows, err := repro.AblationLoadBalance(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		rrmpShare, treeShare = rows[0].MaxShare, rows[1].MaxShare
	}
	b.ReportMetric(100*rrmpShare, "%maxshare-rrmp")
	b.ReportMetric(100*treeShare, "%maxshare-tree")
}

// BenchmarkAblationSearchImplosion (A3) reports replies per episode for
// both search designs at 90 holders.
func BenchmarkAblationSearchImplosion(b *testing.B) {
	var walk, query float64
	for i := 0; i < b.N; i++ {
		rows, err := repro.AblationSearchImplosion(10, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Holders != 90 {
				continue
			}
			if r.Mode == "random-walk" {
				walk = r.RepliesPerEpisode
			} else {
				query = r.RepliesPerEpisode
			}
		}
	}
	b.ReportMetric(walk, "replies-walk@90")
	b.ReportMetric(query, "replies-query@90")
}

// BenchmarkAblationChurn (A4) reports straggler recovery latency after a
// graceful handoff (crash mode never recovers, reported as -1).
func BenchmarkAblationChurn(b *testing.B) {
	var gracefulMs, crashRecovered float64
	for i := 0; i < b.N; i++ {
		rows, err := repro.AblationChurn(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Mode == "graceful-handoff" {
				gracefulMs = r.RecoveryMs
			} else if r.Recovered {
				crashRecovered = 1
			}
		}
	}
	b.ReportMetric(gracefulMs, "ms-recovery-graceful")
	b.ReportMetric(crashRecovered, "crash-recovered(0=lost)")
}

// BenchmarkAblationLambda (A5) reports remote requests and recovery time at
// λ=1 (the paper's default).
func BenchmarkAblationLambda(b *testing.B) {
	var reqs, ms float64
	for i := 0; i < b.N; i++ {
		rows, err := repro.AblationLambda([]float64{1}, 10, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		reqs, ms = rows[0].RemoteRequests, rows[0].RecoveryMs
	}
	b.ReportMetric(reqs, "remote-reqs@lambda=1")
	b.ReportMetric(ms, "ms-region-recovery")
}

// BenchmarkAblationStabilityTraffic (A6) reports the digest bytes the
// stability baseline pays that RRMP's implicit feedback does not.
func BenchmarkAblationStabilityTraffic(b *testing.B) {
	var digestKB float64
	for i := 0; i < b.N; i++ {
		rows, err := repro.AblationStabilityTraffic(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		digestKB = float64(rows[1].DigestBytes) / 1024
	}
	b.ReportMetric(digestKB, "KB-digests-stability")
}

// BenchmarkPublishThroughput measures raw simulator throughput: events per
// published message on a lossless 100-member region (engineering metric,
// not a paper figure).
func BenchmarkPublishThroughput(b *testing.B) {
	g, err := repro.NewGroup(repro.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Publish(make([]byte, 64))
		g.Run(0)
	}
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro"
)

// TestA1A5TablesMatchGolden is cmd/rrmp-figures' first test: it regenerates
// the A1 (buffering-policy cost) and A5 (λ sweep) tables in-process with a
// pinned seed and small run counts and compares them byte for byte against
// the committed golden — the same style as rrmp-sim's sweep golden test.
// The tables are pure functions of (figure, runs, seed), so any drift means
// an intentional experiment change; regenerate deliberately with:
//
//	UPDATE_FIGURES_GOLDEN=1 go test ./cmd/rrmp-figures -run A1A5
func TestA1A5TablesMatchGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "A1", 2, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := run(&buf, "A5", 2, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	golden := filepath.Join("testdata", "a1_a5.golden")
	if os.Getenv("UPDATE_FIGURES_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("A1/A5 tables diverged from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

// TestA7VoDContrast renders the A7 table and pins its point: only the
// two-phase long-term set still holds the published prefix when the late
// joiners arrive, so fixed-hold strands messages as unrecoverable and
// buffer-all pays a strictly larger byte-time bill for the same
// reliability.
func TestA7VoDContrast(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "A7", 0, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"two-phase", "fixed", "all", "unrecoverable"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("A7 table lacks %q:\n%s", want, buf.String())
		}
	}
	rows, err := repro.AblationVoDPrefixPush(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("A7 has %d rows, want 3", len(rows))
	}
	byPolicy := map[string]repro.VoDResult{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	two, fixed, all := byPolicy["two-phase"], byPolicy["fixed"], byPolicy["all"]
	if two.Unrecoverable != 0 || all.Unrecoverable != 0 {
		t.Fatalf("prefix-holding policies stranded messages: two-phase %v, all %v",
			two.Unrecoverable, all.Unrecoverable)
	}
	if fixed.Unrecoverable <= 0 || fixed.Delivery >= two.Delivery {
		t.Fatalf("fixed-hold kept the prefix (unrecoverable %v, delivery %v vs %v): contrast lost",
			fixed.Unrecoverable, fixed.Delivery, two.Delivery)
	}
	if all.ByteIntegral <= two.ByteIntegral {
		t.Fatalf("buffer-all byte cost %v not above two-phase %v", all.ByteIntegral, two.ByteIntegral)
	}
	if two.LateJoiners <= 0 || two.CatchupMs <= 0 {
		t.Fatalf("two-phase joiners %v catchup %v: late-join machinery idle", two.LateJoiners, two.CatchupMs)
	}
}

// TestA8AdaptiveDemand renders the A8 table and pins its shape: one row
// per policy, ranked by the default-weight fitness score, scores strictly
// non-increasing and full delivery preserved by every policy in the
// bursty cell.
func TestA8AdaptiveDemand(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "A8", 0, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"two-phase", "fixed", "adaptive", "fitness"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("A8 table lacks %q:\n%s", want, buf.String())
		}
	}
	rows, err := repro.AblationAdaptiveDemand(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("A8 has %d rows, want 3", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Fitness > rows[i-1].Fitness {
			t.Fatalf("rows not ranked by fitness: %v after %v", rows[i], rows[i-1])
		}
	}
	for _, r := range rows {
		if r.Delivery <= 0 {
			t.Fatalf("policy %s delivered nothing", r.Policy)
		}
		if r.ByteIntegral <= 0 {
			t.Fatalf("policy %s reports no byte cost; the fitness byte axis is dead", r.Policy)
		}
	}
}

// TestUnknownFigureRejected covers the error path.
func TestUnknownFigureRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "A99", 1, 1, 1, 1); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

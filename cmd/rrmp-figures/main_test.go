package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestA1A5TablesMatchGolden is cmd/rrmp-figures' first test: it regenerates
// the A1 (buffering-policy cost) and A5 (λ sweep) tables in-process with a
// pinned seed and small run counts and compares them byte for byte against
// the committed golden — the same style as rrmp-sim's sweep golden test.
// The tables are pure functions of (figure, runs, seed), so any drift means
// an intentional experiment change; regenerate deliberately with:
//
//	UPDATE_FIGURES_GOLDEN=1 go test ./cmd/rrmp-figures -run A1A5
func TestA1A5TablesMatchGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "A1", 2, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := run(&buf, "A5", 2, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	golden := filepath.Join("testdata", "a1_a5.golden")
	if os.Getenv("UPDATE_FIGURES_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("A1/A5 tables diverged from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

// TestUnknownFigureRejected covers the error path.
func TestUnknownFigureRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "A99", 1, 1, 1, 1); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

// Command rrmp-figures regenerates every figure in the paper's evaluation
// (§4) and the DESIGN.md ablations, printing the series as aligned text
// tables.
//
// Usage:
//
//	rrmp-figures [-fig 3|4|6|7|8|9|A1|A2|A3|A4|A5|A6|A7|A8|all] [-runs N] [-seed S]
//	             [-trials N] [-parallel P]
//
// Run counts trade precision for time; the defaults regenerate each figure
// in a few seconds. Output units match the paper's axes (milliseconds,
// percent). With -trials > 1, the ablations that have multi-trial variants
// (A1, A5) rerun the whole experiment across independently seeded parallel
// trials and print every column as mean ± 95% CI.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3,4,6,7,8,9,A1..A8 or all")
	runs := flag.Int("runs", 0, "runs to average per data point (0 = per-figure default)")
	seed := flag.Uint64("seed", 1, "root random seed")
	trials := flag.Int("trials", 1, "independently seeded trials for A1/A5 (columns become mean±95% CI)")
	parallel := flag.Int("parallel", 0, "worker pool size for -trials (0 = GOMAXPROCS)")
	flag.Parse()

	if err := run(os.Stdout, *fig, *runs, *seed, *trials, *parallel); err != nil {
		fmt.Fprintln(os.Stderr, "rrmp-figures:", err)
		os.Exit(1)
	}
}

// run regenerates the requested figures, writing every table to w (tests
// capture a buffer; main passes os.Stdout).
func run(w io.Writer, fig string, runs int, seed uint64, trials, parallel int) error {
	opt := repro.SweepOptions{Trials: trials, Parallel: parallel, BaseSeed: seed}
	want := func(name string) bool { return fig == "all" || strings.EqualFold(fig, name) }
	or := func(def int) int {
		if runs > 0 {
			return runs
		}
		return def
	}
	any := false

	if want("3") {
		any = true
		header(w, "Figure 3 — P(k long-term bufferers), region n=100")
		series := repro.Figure3([]float64{5, 6, 7, 8}, 100, 20*or(1000), seed)
		printSeriesTable(w, "k", series)
	}
	if want("4") {
		any = true
		header(w, "Figure 4 — P(no long-term bufferer) vs C (percent)")
		series := repro.Figure4([]float64{1, 2, 3, 4, 5, 6}, 100, 100*or(1000), seed)
		printSeriesTable(w, "C", series)
	}
	if want("6") {
		any = true
		header(w, "Figure 6 — mean buffering time vs #initial holders (n=100, T=40ms)")
		s, err := repro.Figure6(or(20), seed)
		if err != nil {
			return err
		}
		printSeriesTable(w, "#holders", []repro.Series{s})
	}
	if want("7") {
		any = true
		header(w, "Figure 7 — #received vs #buffered over time (1 initial holder, n=100)")
		s, err := repro.Figure7(seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%10s %10s %10s\n", "t(ms)", "#received", "#buffered")
		for i := range s.TimesMs {
			if i%5 != 0 && i != len(s.TimesMs)-1 {
				continue // print every 5 ms
			}
			fmt.Fprintf(w, "%10.0f %10d %10d\n", s.TimesMs[i], s.Received[i], s.Buffered[i])
		}
	}
	if want("8") {
		any = true
		header(w, "Figure 8 — search time vs #bufferers (n=100)")
		s, err := repro.Figure8(or(100), seed)
		if err != nil {
			return err
		}
		printSeriesTable(w, "#bufferers", []repro.Series{s})
	}
	if want("9") {
		any = true
		header(w, "Figure 9 — search time vs region size (B=10)")
		s, err := repro.Figure9(or(100), seed)
		if err != nil {
			return err
		}
		printSeriesTable(w, "region", []repro.Series{s})
	}
	if want("A1") {
		any = true
		header(w, "Ablation A1 — buffering policy cost (n=100, 30 msgs, 10% loss)")
		if trials > 1 {
			rows, err := repro.AblationPoliciesTrials(opt)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%d trials; every column is mean ± 95%% CI\n", trials)
			fmt.Fprintf(w, "%-18s %16s %20s %12s %18s\n", "policy", "delivery", "buf(msg·s)", "peak", "mean-buf(ms)")
			for _, r := range rows {
				fmt.Fprintf(w, "%-18s %7.2f±%.2f%% %14.1f±%.1f %7.1f±%.1f %12.1f±%.1f\n",
					r.Policy,
					100*r.DeliveryRatio.Mean, 100*r.DeliveryRatio.CI95,
					r.BufferIntegral.Mean, r.BufferIntegral.CI95,
					r.PeakPerMember.Mean, r.PeakPerMember.CI95,
					r.MeanBufferingMs.Mean, r.MeanBufferingMs.CI95)
			}
		} else {
			rows, err := repro.AblationPolicies(seed)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-18s %10s %14s %8s %12s\n", "policy", "delivery", "buf(msg·s)", "peak", "mean-buf(ms)")
			for _, r := range rows {
				fmt.Fprintf(w, "%-18s %9.2f%% %14.1f %8d %12.1f\n",
					r.Policy, 100*r.DeliveryRatio, r.BufferIntegral, r.PeakPerMember, r.MeanBufferingMs)
			}
		}
	}
	if want("A2") {
		any = true
		header(w, "Ablation A2 — buffering load balance, RRMP vs tree repair server")
		rows, err := repro.AblationLoadBalance(seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-20s %-18s %12s %12s %10s %10s\n", "protocol", "topology", "mean(B·s)", "max(B·s)", "max/mean", "max-share")
		for _, r := range rows {
			fmt.Fprintf(w, "%-20s %-18s %12.0f %12.0f %10.1f %9.0f%%\n",
				r.Protocol, r.Topology, r.MeanIntegral, r.MaxIntegral, r.Imbalance, 100*r.MaxShare)
		}
		fmt.Fprintln(w, "(max-share is the most-burdened member's share of its region's byte-time cost)")
	}
	if want("A3") {
		any = true
		header(w, "Ablation A3 — search reply implosion (replies per remote request)")
		rows, err := repro.AblationSearchImplosion(or(10), seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-18s %10s %12s\n", "mode", "#holders", "replies")
		for _, r := range rows {
			fmt.Fprintf(w, "%-18s %10d %12.1f\n", r.Mode, r.Holders, r.RepliesPerEpisode)
		}
	}
	if want("A4") {
		any = true
		header(w, "Ablation A4 — churn: graceful handoff vs crash of all bufferers")
		rows, err := repro.AblationChurn(seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-18s %10s %14s %10s\n", "mode", "recovered", "recovery(ms)", "handoffs")
		for _, r := range rows {
			fmt.Fprintf(w, "%-18s %10v %14.1f %10d\n", r.Mode, r.Recovered, r.RecoveryMs, r.Handoffs)
		}
	}
	if want("A5") {
		any = true
		header(w, "Ablation A5 — remote recovery λ sweep (region-wide loss, 50 members)")
		lambdas := []float64{0.5, 1, 2, 4, 8}
		if trials > 1 {
			rows, err := repro.AblationLambdaTrials(lambdas, or(10), opt)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%d trials; every column is mean ± 95%% CI\n", trials)
			fmt.Fprintf(w, "%8s %18s %18s\n", "lambda", "remote-reqs", "recovery(ms)")
			for _, r := range rows {
				fmt.Fprintf(w, "%8.1f %12.1f±%.1f %12.1f±%.1f\n",
					r.Lambda, r.RemoteRequests.Mean, r.RemoteRequests.CI95,
					r.RecoveryMs.Mean, r.RecoveryMs.CI95)
			}
		} else {
			rows, err := repro.AblationLambda(lambdas, or(10), seed)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%8s %14s %14s\n", "lambda", "remote-reqs", "recovery(ms)")
			for _, r := range rows {
				fmt.Fprintf(w, "%8.1f %14.1f %14.1f\n", r.Lambda, r.RemoteRequests, r.RecoveryMs)
			}
		}
	}
	if want("A6") {
		any = true
		header(w, "Ablation A6 — control traffic: implicit feedback vs stability digests")
		rows, err := repro.AblationStabilityTraffic(seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-22s %14s %14s %14s %10s\n", "scheme", "digest(B)", "control(B)", "buf(msg·s)", "delivery")
		for _, r := range rows {
			fmt.Fprintf(w, "%-22s %14d %14d %14.1f %9.2f%%\n",
				r.Scheme, r.DigestBytes, r.ControlBytes, r.BufferIntegral, 100*r.DeliveryRatio)
		}
	}
	if want("A7") {
		any = true
		header(w, "Ablation A7 — VoD prefix-push: late joiners vs buffering policy")
		rows, err := repro.AblationVoDPrefixPush(seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %10s %14s %10s %12s %14s\n",
			"policy", "delivery", "unrecoverable", "joiners", "catchup(ms)", "buffer(B·s)")
		for _, r := range rows {
			fmt.Fprintf(w, "%-12s %9.2f%% %14.0f %10.0f %12.1f %14.0f\n",
				r.Policy, 100*r.Delivery, r.Unrecoverable, r.LateJoiners, r.CatchupMs, r.ByteIntegral)
		}
		fmt.Fprintln(w, "(joiners arrive 1.5-2.5s in; only the two-phase long-term set still holds the prefix)")
	}
	if want("A8") {
		any = true
		header(w, "Ablation A8 — bursty demand: adaptive vs two-phase vs fixed (fitness-ranked)")
		rows, err := repro.AblationAdaptiveDemand(seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %10s %10s %14s %13s %14s\n",
			"policy", "fitness", "delivery", "unrecoverable", "recovery(ms)", "buffer(B·s)")
		for _, r := range rows {
			fmt.Fprintf(w, "%-12s %10.3f %9.2f%% %14.0f %13.1f %14.0f\n",
				r.Policy, r.Fitness, 100*r.Delivery, r.Unrecoverable, r.RecoveryMs, r.ByteIntegral)
		}
		fmt.Fprintln(w, "(rows ranked by the default-weight fitness score; costs normalized within the table)")
	}
	if !any {
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

func header(w io.Writer, title string) {
	fmt.Fprintln(w)
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, strings.Repeat("-", len(title)))
}

// printSeriesTable prints multiple series sharing an x axis.
func printSeriesTable(w io.Writer, xName string, series []repro.Series) {
	fmt.Fprintf(w, "%12s", xName)
	for _, s := range series {
		fmt.Fprintf(w, " %26s", s.Name)
	}
	fmt.Fprintln(w)
	if len(series) == 0 || len(series[0].X) == 0 {
		return
	}
	for i := range series[0].X {
		fmt.Fprintf(w, "%12g", series[0].X[i])
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(w, " %26.2f", s.Y[i])
			}
		}
		fmt.Fprintln(w)
	}
}

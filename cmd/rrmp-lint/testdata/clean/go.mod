module cleanfix

go 1.24

// Package util is the clean control for the cmd-level smoke tests: it
// sits outside the simulation boundary, so its wall-clock read is legal
// and the checker must exit 0.
package util

import "time"

// Stamp reads the wall clock, legally.
func Stamp() time.Time { return time.Now() }

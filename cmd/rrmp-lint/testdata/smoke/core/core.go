// Package core seeds exactly one determinism violation for the cmd-level
// smoke tests: a wall-clock read inside the simulation boundary.
package core

import "time"

// Stamp reads the wall clock where a clock.Scheduler is required.
func Stamp() time.Time {
	return time.Now()
}

module smokefix

go 1.24

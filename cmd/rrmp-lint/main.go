// Command rrmp-lint is the multichecker for the repository's determinism
// contract: the simtime, maporder, streamlabel and metrickey analyzers
// (internal/lint) run over whole packages and fail the build on any
// unannotated finding.
//
// Standalone (what CI runs):
//
//	go run ./cmd/rrmp-lint ./...
//
// As a vet tool (per-package, driven by the go command's build graph):
//
//	go build -o /tmp/rrmp-lint ./cmd/rrmp-lint
//	go vet -vettool=/tmp/rrmp-lint ./...
//
// The vet protocol is the same JSON-config contract
// golang.org/x/tools/go/analysis/unitchecker implements: `-V=full` prints
// a version line the go command uses as a cache key, and a trailing
// *.cfg argument selects unit mode. Exit status is non-zero iff findings
// were reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"hash/fnv"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// Second half of the vet handshake: the go command probes the tool
	// with `-flags` for its analyzer-flag definitions (a JSON array).
	// This suite exposes none.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	fs := flag.NewFlagSet("rrmp-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	version := fs.String("V", "", "print version and exit (-V=full is the go vet handshake)")
	list := fs.Bool("list", false, "print the analyzer names, one per line, and exit")
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case *version != "":
		// The go command consumes `name version ...` as the vettool's
		// build ID; hash the binary so edits invalidate vet's cache.
		fmt.Fprintf(stdout, "rrmp-lint version devel buildID=%x\n", selfID())
		return 0
	case *list:
		for _, a := range lint.All() {
			fmt.Fprintln(stdout, a.Name)
		}
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitMode(rest[0], stderr)
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	pkgs, err := lint.Load(".", rest...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	diags, err := lint.RunAnalyzers(pkgs, lint.All())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "rrmp-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// selfID hashes the running binary so `go vet` re-runs the tool when it
// changes (the hash is the dominant part of vet's action cache key).
func selfID() uint64 {
	h := fnv.New64a()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			io.Copy(h, f)
		}
	}
	return h.Sum64()
}

// vetConfig is the JSON the go command writes for each package when
// driving a vet tool (the unitchecker contract).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitMode analyzes one package under the go vet protocol: type-check the
// unit against the export data the go command already built, run the
// suite, write the (empty — the analyzers use no cross-package facts)
// vetx output, and exit 2 on findings.
func unitMode(cfgFile string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "rrmp-lint: parsing %s: %v\n", cfgFile, err)
		return 2
	}
	writeVetx := func() bool {
		if cfg.VetxOutput == "" {
			return true
		}
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(stderr, err)
			return false
		}
		return true
	}
	if cfg.VetxOnly {
		if !writeVetx() {
			return 2
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// The determinism contract binds shipped code only; vet also
		// feeds us test variants, whose _test.go files are exempt.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		if !writeVetx() {
			return 2
		}
		return 0
	}

	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("rrmp-lint: no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("rrmp-lint: can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImp.Import(path)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	tconf := types.Config{Importer: imp, FakeImportC: true}
	typed, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			if !writeVetx() {
				return 2
			}
			return 0
		}
		fmt.Fprintln(stderr, err)
		return 2
	}

	pkg := &lint.Package{
		ImportPath: strings.TrimSuffix(strings.Split(cfg.ImportPath, " ")[0], "_test"),
		Name:       typed.Name(),
		Dir:        cfg.Dir,
		Fset:       fset,
		Syntax:     files,
		Types:      typed,
		TypesInfo:  info,
	}
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, lint.All())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if !writeVetx() {
		return 2
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(stderr, d)
		}
		return 2
	}
	return 0
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

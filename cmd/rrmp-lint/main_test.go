package main

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestListAnalyzers pins the roster the CI summary counts with -list.
func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run(-list) = %d, stderr:\n%s", code, errb.String())
	}
	got := strings.Fields(out.String())
	want := []string{"simtime", "maporder", "streamlabel", "metrickey"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("-list = %v, want %v", got, want)
	}
}

// TestVersionHandshake checks the -V=full go vet handshake: one line,
// `name version ...`, exit 0.
func TestVersionHandshake(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-V=full"}, &out, &errb); code != 0 {
		t.Fatalf("run(-V=full) = %d, stderr:\n%s", code, errb.String())
	}
	line := strings.TrimSpace(out.String())
	if !strings.HasPrefix(line, "rrmp-lint version ") || strings.ContainsRune(line, '\n') {
		t.Errorf("-V=full printed %q, want one `rrmp-lint version ...` line", line)
	}
}

// TestStandaloneFindsSeededViolation runs the standalone checker over a
// fixture module with one wall-clock call in a sim package: exit 1 and a
// simtime diagnostic.
func TestStandaloneFindsSeededViolation(t *testing.T) {
	t.Chdir("testdata/smoke")
	var out, errb bytes.Buffer
	code := run([]string{"./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("run(./...) on smoke fixture = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "[simtime]") || !strings.Contains(out.String(), "time.Now") {
		t.Errorf("diagnostics missing the seeded simtime finding:\n%s", out.String())
	}
}

// TestStandaloneCleanModule: the same entry point exits 0 with no output
// on a module without findings.
func TestStandaloneCleanModule(t *testing.T) {
	t.Chdir("testdata/clean")
	var out, errb bytes.Buffer
	if code := run([]string{"./..."}, &out, &errb); code != 0 {
		t.Fatalf("run(./...) on clean fixture = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean fixture produced output:\n%s", out.String())
	}
}

// TestJSONOutput: -json emits a machine-readable diagnostic array.
func TestJSONOutput(t *testing.T) {
	t.Chdir("testdata/smoke")
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("run(-json ./...) = %d, want 1\nstderr:\n%s", code, errb.String())
	}
	var diags []struct {
		Analyzer string
		Message  string
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a diagnostic array: %v\n%s", err, out.String())
	}
	if len(diags) != 1 || diags[0].Analyzer != "simtime" {
		t.Errorf("-json diagnostics = %+v, want one simtime finding", diags)
	}
}

// TestVetToolProtocol builds the binary and drives it through
// `go vet -vettool` — the unitchecker-protocol integration. The clean
// module must pass (proving the protocol round-trips: -V handshake, cfg
// parsing, export-data type-checking, vetx output) and the smoke module
// must fail with a simtime finding.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and runs go vet")
	}
	bin := filepath.Join(t.TempDir(), "rrmp-lint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	vet := func(dir string) (string, error) {
		cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		return string(out), err
	}
	if out, err := vet("testdata/clean"); err != nil {
		t.Fatalf("go vet -vettool on clean fixture failed: %v\n%s", err, out)
	}
	out, err := vet("testdata/smoke")
	if err == nil {
		t.Fatalf("go vet -vettool on smoke fixture passed, want a simtime failure\n%s", out)
	}
	if !strings.Contains(out, "time.Now") {
		t.Errorf("go vet output missing the seeded finding:\n%s", out)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/policy"
)

// TestSweepReportByteIdenticalAcrossParallelism runs the full -sweep code
// path in-process (small topologies, the default fault axes, 2 trials)
// and asserts the rrmp-sweep/v1 JSON report written to -out is
// byte-identical at -parallel 1 and -parallel 4 — the determinism
// contract the committed BENCH_sweep.json depends on — including the new
// crash and partition cells.
func TestSweepReportByteIdenticalAcrossParallelism(t *testing.T) {
	dir := t.TempDir()
	report := func(parallel int) []byte {
		t.Helper()
		out := filepath.Join(dir, "sweep.json")
		err := runSweep(sweepArgs{
			sweep:     true,
			swRegions: "8;6,6", // shrink topologies; keep every default axis
			trials:    2,
			parallel:  parallel,
			seed:      1,
			outPath:   out,
			quiet:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		blob, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}

	serial := report(1)
	wide := report(4)
	if !bytes.Equal(serial, wide) {
		t.Fatal("sweep report bytes differ between -parallel 1 and -parallel 4")
	}

	var rep repro.SweepReport
	if err := json.Unmarshal(serial, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != "rrmp-sweep/v1" {
		t.Fatalf("schema %q, want rrmp-sweep/v1", rep.Schema)
	}
	if rep.Trials != 2 {
		t.Fatalf("trials %d, want 2", rep.Trials)
	}

	crashCells, partCells, byteCells, legacyCells := 0, 0, 0, 0
	rmtpCells, sawRMTP := 0, false
	for _, cell := range rep.Cells {
		if cell.Scenario.Protocol == "rmtp" {
			rmtpCells++
			sawRMTP = true
			if !strings.Contains(cell.Name, "proto=rmtp") || cell.Scenario.Policy != "server" {
				t.Fatalf("rmtp cell %q malformed", cell.Name)
			}
			if _, ok := cell.Aggregate.Metric("nak_sent"); !ok {
				t.Fatalf("rmtp cell %q reports no nak_sent", cell.Name)
			}
			if _, ok := cell.Aggregate.Metric("ack_trim"); !ok {
				t.Fatalf("rmtp cell %q reports no ack_trim", cell.Name)
			}
			if _, ok := cell.Aggregate.Metric("searches"); ok {
				t.Fatalf("rmtp cell %q leaked the RRMP-only searches key", cell.Name)
			}
		} else if sawRMTP {
			t.Fatalf("rrmp cell %q appears after the rmtp family began", cell.Name)
		} else if _, ok := cell.Aggregate.Metric("nak_sent"); ok {
			t.Fatalf("rrmp cell %q leaked the rmtp-only nak_sent key", cell.Name)
		}
		if cell.Scenario.Crash > 0 {
			crashCells++
			if !strings.Contains(cell.Name, "crash=") {
				t.Fatalf("crash cell %q lacks a crash token", cell.Name)
			}
			if _, ok := cell.Aggregate.Metric("crashes"); !ok {
				t.Fatalf("crash cell %q reports no crashes metric", cell.Name)
			}
			if _, ok := cell.Aggregate.Metric("unrecoverable"); !ok {
				t.Fatalf("crash cell %q reports no unrecoverable metric", cell.Name)
			}
		}
		if cell.Scenario.PartitionAt > 0 {
			partCells++
			if !strings.Contains(cell.Name, "part=") {
				t.Fatalf("partition cell %q lacks a part token", cell.Name)
			}
		}
		// Byte-axis cells carry the byte-currency keys; legacy cells must
		// not (their key set is pinned by the golden report).
		_, hasBytes := cell.Aggregate.Metric("buffer_integral_bytesec")
		if cell.Scenario.PayloadBytes > 0 || cell.Scenario.ByteBudget > 0 {
			byteCells++
			if !hasBytes {
				t.Fatalf("byte-axis cell %q reports no buffer_integral_bytesec", cell.Name)
			}
			if _, ok := cell.Aggregate.Metric("pressure_evictions"); !ok {
				t.Fatalf("byte-axis cell %q reports no pressure_evictions", cell.Name)
			}
		} else {
			legacyCells++
			if hasBytes {
				t.Fatalf("legacy cell %q leaked byte-currency keys", cell.Name)
			}
		}
	}
	if crashCells == 0 || partCells == 0 {
		t.Fatalf("default matrix has %d crash and %d partition cells; want both > 0",
			crashCells, partCells)
	}
	if legacyCells == 0 || byteCells != 3*legacyCells {
		t.Fatalf("default matrix has %d legacy and %d byte-axis cells; want a 1:3 split",
			legacyCells, byteCells)
	}
	// The protocol axis: rmtp collapses the 2-policy axis, so its family
	// is half the rrmp family's size and appends after it.
	if rmtpCells == 0 || 3*rmtpCells != len(rep.Cells) {
		t.Fatalf("default matrix has %d rmtp cells of %d; want a 2:1 rrmp:rmtp split",
			rmtpCells, len(rep.Cells))
	}
}

// TestBudgetSweepPressureAndDeterminism is the byte-axis acceptance run: a
// budget-constrained payload sweep must actually hit the budget (pressure
// evictions > 0), keep survivor delivery ≥ 0.99 at a sane budget, and stay
// byte-identical across -parallel 1 and 8. Pinned to the rrmp protocol:
// the ≥ 0.99 survivor bound is an RRMP property (an orphaned rmtp region
// legitimately stalls — that regime has its own tests).
func TestBudgetSweepPressureAndDeterminism(t *testing.T) {
	dir := t.TempDir()
	report := func(parallel int) []byte {
		t.Helper()
		out := filepath.Join(dir, "budget_sweep.json")
		if err := runSweep(sweepArgs{
			sweep:       true,
			swRegions:   "8;6,6",
			swPayloads:  "512,1024",
			swProtocols: "rrmp",
			budget:      16384,
			c:           6, lambda: 1, hold: 500 * time.Millisecond,
			msgs: 20, gap: 20 * time.Millisecond, horizon: 5 * time.Second,
			trials:   2,
			parallel: parallel,
			seed:     1,
			outPath:  out,
			quiet:    true,
		}); err != nil {
			t.Fatal(err)
		}
		blob, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}

	serial := report(1)
	wide := report(8)
	if !bytes.Equal(serial, wide) {
		t.Fatal("budget sweep report bytes differ between -parallel 1 and -parallel 8")
	}

	var rep repro.SweepReport
	if err := json.Unmarshal(serial, &rep); err != nil {
		t.Fatal(err)
	}
	var pressure float64
	for _, cell := range rep.Cells {
		if cell.Scenario.ByteBudget != 16384 {
			t.Fatalf("cell %q lost the scalar -budget", cell.Name)
		}
		if !strings.Contains(cell.Name, "payload=") || !strings.Contains(cell.Name, "budget=16384") {
			t.Fatalf("cell %q lacks byte-axis tokens", cell.Name)
		}
		p, ok := cell.Aggregate.Metric("pressure_evictions")
		if !ok {
			t.Fatalf("cell %q reports no pressure_evictions", cell.Name)
		}
		pressure += p.Mean
		sdr, ok := cell.Aggregate.Metric("survivor_delivery_ratio")
		if !ok {
			t.Fatalf("cell %q reports no survivor_delivery_ratio", cell.Name)
		}
		if sdr.Mean < 0.99 {
			t.Fatalf("cell %q survivor delivery %.4f under a 16 KB budget, want >= 0.99",
				cell.Name, sdr.Mean)
		}
	}
	if pressure == 0 {
		t.Fatal("no pressure evictions anywhere: the 16 KB budget never bound")
	}
}

// TestSweepReportMatchesGolden regenerates the pinned-seed miniature sweep
// in-process and compares it byte-for-byte against the committed golden,
// which was produced by the PR 2 engine *before* the hot-path rewrite
// (pooled event queue, batched netsim fan-out, indexed buffer, bitset gap
// tracking) and before the byte and protocol axes existed — so the sweep
// is pinned to the legacy axes (payload 0, budget 0, protocol rrmp): every
// cell must keep its pre-axis name, keys, and bytes. Regenerate
// deliberately with:
//
//	go run ./cmd/rrmp-sim -sweep -sweep-regions '8;6,6' -trials 2 \
//	    -sweep-payloads 0 -sweep-budgets 0 -sweep-protocols rrmp \
//	    -seed 1 -out cmd/rrmp-sim/testdata/sweep_golden.json -json >/dev/null
func TestSweepReportMatchesGolden(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "sweep_golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	// -shards is an execution knob like -parallel: the golden bytes must
	// survive the region-sharded engine at any width.
	for _, shards := range []int{1, 8} {
		out := filepath.Join(t.TempDir(), "sweep.json")
		if err := runSweep(sweepArgs{
			sweep:       true,
			swRegions:   "8;6,6",
			swPayloads:  "0",
			swBudgets:   "0",
			swProtocols: "rrmp",
			// Flag defaults the CLI bakes into every sweep, spelled out because
			// runSweep is invoked below flag parsing.
			c: 6, lambda: 1, hold: 500 * time.Millisecond,
			msgs: 20, gap: 20 * time.Millisecond, horizon: 5 * time.Second,
			trials:   2,
			parallel: 4,
			shards:   shards,
			seed:     1,
			outPath:  out,
			quiet:    true,
		}); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		// At -shards 8 the report gains the top-level exec note (the
		// miniature's lossy legacy cells fall back to serial); the golden
		// predates it, so strip the note — and pin that it appears exactly
		// when it should — before the byte comparison. The cells
		// themselves must match byte for byte.
		var rep repro.SweepReport
		if err := json.Unmarshal(got, &rep); err != nil {
			t.Fatalf("-shards %d sweep report is not valid JSON: %v", shards, err)
		}
		if shards > 1 && rep.ExecNote == "" {
			t.Fatalf("-shards %d report lacks the exec note for its serial-fallback cells", shards)
		}
		if shards == 1 && rep.ExecNote != "" {
			t.Fatalf("-shards 1 report unexpectedly carries an exec note: %q", rep.ExecNote)
		}
		rep.ExecNote = ""
		canon, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		canon = append(canon, '\n')
		if !bytes.Equal(canon, golden) {
			t.Fatalf("-shards %d sweep report diverged from the pre-rewrite golden (testdata/sweep_golden.json); the hot-path rewrite must be behaviour-preserving", shards)
		}
	}
}

// TestScaleAggregatesByteIdenticalAcrossParallelism runs the -sweep-scale
// code path in-process on miniature tree cells at -parallel 1 and 8 and
// asserts the deterministic part of the report — everything except the
// machine-dependent wall_ms_per_trial / events_per_sec annotations — is
// byte-identical, extending the sweep determinism contract to the new
// scale cells.
func TestScaleAggregatesByteIdenticalAcrossParallelism(t *testing.T) {
	dir := t.TempDir()
	report := func(parallel, shards int) []byte {
		t.Helper()
		out := filepath.Join(dir, "scale.json")
		if err := runScale(scaleArgs{
			trials:   2,
			parallel: parallel,
			shards:   shards,
			seed:     1,
			outPath:  out,
			swTrees:  "4:2:120;4:3:150",
			quiet:    true,
		}); err != nil {
			t.Fatal(err)
		}
		blob, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		var rep repro.ScaleReport
		if err := json.Unmarshal(blob, &rep); err != nil {
			t.Fatalf("scale report is not valid JSON: %v", err)
		}
		if rep.Schema != "rrmp-scale/v1" {
			t.Fatalf("schema %q, want rrmp-scale/v1", rep.Schema)
		}
		for i := range rep.Cells {
			if rep.Cells[i].Members == 0 || rep.Cells[i].Depth == 0 {
				t.Fatalf("cell %q lacks topology annotations", rep.Cells[i].Name)
			}
			rep.Cells[i].WallMsPerTrial = 0
			rep.Cells[i].EventsPerSec = 0
		}
		canon, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return canon
	}

	serial := report(1, 1)
	wide := report(8, 1)
	if !bytes.Equal(serial, wide) {
		t.Fatal("scale aggregates differ between -parallel 1 and -parallel 8")
	}
	sharded := report(8, 4)
	if !bytes.Equal(serial, sharded) {
		t.Fatal("scale aggregates differ between -shards 1 and -shards 4")
	}
}

// TestTreeSingleRun drives the single-scenario mode on a depth-3 balanced
// tree (the -tree flag's path through repro.WithTree).
func TestTreeSingleRun(t *testing.T) {
	err := run(singleArgs{
		tree:    "3,3,130",
		msgs:    5,
		gap:     20e6,
		loss:    0.1,
		c:       4,
		lambda:  1,
		policy:  "two-phase",
		seed:    2,
		horizon: 2e9,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestParseTreeShapes covers both separators and the error paths.
func TestParseTreeShapes(t *testing.T) {
	got, err := parseTreeShapes("4:3:1000; 2:4:500")
	if err != nil {
		t.Fatal(err)
	}
	want := []repro.TreeShape{{Branch: 4, Levels: 3, Members: 1000}, {Branch: 2, Levels: 4, Members: 500}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("parseTreeShapes = %v", got)
	}
	if one, err := parseTreeShape("4,3,1000"); err != nil || one != want[0] {
		t.Fatalf("parseTreeShape = %v, %v", one, err)
	}
	for _, bad := range []string{"4:3", "a:b:c", "4,3,1000,9"} {
		if _, err := parseTreeShape(bad); err == nil {
			t.Fatalf("tree spec %q accepted", bad)
		}
	}
}

// TestSingleRunWithFaults drives the single-scenario mode end to end with
// crash and partition flags (cmd/ previously had zero test files; this
// covers the non-sweep path too).
func TestSingleRunWithFaults(t *testing.T) {
	err := run(singleArgs{
		regionsCSV:   "10,10",
		msgs:         5,
		gap:          20e6, // 20 ms
		loss:         0.2,
		crash:        1,
		crashRecover: 500e6, // 500 ms
		partitionAt:  400e6,
		partitionFor: 300e6,
		c:            4,
		lambda:       1,
		policy:       "two-phase",
		seed:         3,
		horizon:      3e9,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSingleRunWithBudget drives the single-scenario mode end to end with
// a lognormal payload model and a binding byte budget.
func TestSingleRunWithBudget(t *testing.T) {
	err := run(singleArgs{
		regionsCSV:   "10",
		msgs:         10,
		gap:          20e6, // 20 ms
		loss:         0.1,
		c:            4,
		lambda:       1,
		policy:       "two-phase",
		payload:      1024,
		payloadModel: "lognormal",
		budget:       4096,
		seed:         5,
		horizon:      3e9,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestParseInts covers the byte-axis list parser.
func TestParseInts(t *testing.T) {
	got, err := parseInts("0, 1024,8192")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1024 || got[2] != 8192 {
		t.Fatalf("parseInts = %v", got)
	}
	if _, err := parseInts("12,x"); err == nil {
		t.Fatal("bogus int accepted")
	}
	// A stray minus sign must error loudly, not silently run the cell as
	// an unbudgeted legacy cell under a budget-looking flag line.
	if _, err := parseInts("-8192"); err == nil {
		t.Fatal("negative value accepted")
	}
	if err := runSweep(sweepArgs{sweep: true, budget: -1, trials: 1}); err == nil {
		t.Fatal("negative -budget accepted by runSweep")
	}
	if err := run(singleArgs{regionsCSV: "4", payload: -1, msgs: 1, gap: 1e6, horizon: 1e8, policy: "two-phase", c: 4, lambda: 1}); err == nil {
		t.Fatal("negative -payload accepted by run")
	}
}

// TestProtocolSweepMiniature is the protocol-axis golden miniature: a
// -sweep-protocols matrix crossing faults and a budget must be
// byte-identical at -parallel 1 and 8, append every rmtp cell after every
// rrmp cell, and keep the per-protocol key disciplines intact.
func TestProtocolSweepMiniature(t *testing.T) {
	dir := t.TempDir()
	report := func(parallel int) []byte {
		t.Helper()
		out := filepath.Join(dir, "protocol_sweep.json")
		if err := runSweep(sweepArgs{
			sweep:       true,
			swRegions:   "8;6,6",
			swPayloads:  "0,512",
			swBudgets:   "0",
			swProtocols: "rrmp,rmtp",
			c:           6, lambda: 1, hold: 500 * time.Millisecond,
			msgs: 20, gap: 20 * time.Millisecond, horizon: 5 * time.Second,
			trials:   2,
			parallel: parallel,
			seed:     1,
			outPath:  out,
			quiet:    true,
		}); err != nil {
			t.Fatal(err)
		}
		blob, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}

	serial := report(1)
	wide := report(8)
	if !bytes.Equal(serial, wide) {
		t.Fatal("protocol sweep report bytes differ between -parallel 1 and -parallel 8")
	}

	var rep repro.SweepReport
	if err := json.Unmarshal(serial, &rep); err != nil {
		t.Fatal(err)
	}
	firstRMTP := -1
	for i, cell := range rep.Cells {
		if cell.Scenario.Protocol == "rmtp" {
			if firstRMTP < 0 {
				firstRMTP = i
			}
		} else if firstRMTP >= 0 {
			t.Fatalf("rrmp cell %q after the rmtp family", cell.Name)
		}
	}
	if firstRMTP <= 0 {
		t.Fatal("protocol sweep produced no rmtp family, or no rrmp prefix")
	}
	// The rmtp family crosses the same topology × loss × churn × fault ×
	// byte matrix with the 2-policy axis collapsed, so it is exactly half
	// the rrmp family.
	if got, want := len(rep.Cells)-firstRMTP, firstRMTP/2; got != want {
		t.Fatalf("rmtp family has %d cells, want %d (policy axis collapsed)", got, want)
	}
	for _, cell := range rep.Cells[firstRMTP:] {
		if _, ok := cell.Aggregate.Metric("delivery_ratio"); !ok {
			t.Fatalf("rmtp cell %q reports no delivery_ratio", cell.Name)
		}
		if _, ok := cell.Aggregate.Metric("buffer_integral_msgsec"); !ok {
			t.Fatalf("rmtp cell %q reports no buffer integral", cell.Name)
		}
	}
}

// TestSingleRunRMTP drives the -protocol rmtp single-scenario mode end to
// end, faults included.
func TestSingleRunRMTP(t *testing.T) {
	err := run(singleArgs{
		protocol:     "rmtp",
		regionsCSV:   "10,10",
		msgs:         5,
		gap:          20e6,
		loss:         0.2,
		crash:        1,
		crashRecover: 500e6,
		c:            6,
		lambda:       1,
		policy:       "two-phase", // ignored by the baseline
		seed:         3,
		horizon:      3e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := run(singleArgs{protocol: "bogus", regionsCSV: "4", msgs: 1, gap: 1e6, horizon: 1e8, policy: "two-phase", c: 4, lambda: 1}); err == nil {
		t.Fatal("bogus -protocol accepted")
	}
}

// TestTraceOutWritesFile pins the -trace-out bugfix: traces route through
// the cluster Tracer hook into the named file instead of unconditionally
// spamming stderr.
func TestTraceOutWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.log")
	err := run(singleArgs{
		regionsCSV: "6",
		msgs:       3,
		gap:        10e6,
		loss:       0.3,
		c:          4,
		lambda:     1,
		policy:     "two-phase",
		seed:       4,
		horizon:    2e9,
		traceOut:   path,
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(blob, []byte("DELIVER")) {
		t.Fatalf("trace file has no DELIVER events; got %d bytes", len(blob))
	}
}

// TestParseWorkloadSpec covers the -workload flag parser: presets,
// key=val specs (windows included), and the error paths.
func TestParseWorkloadSpec(t *testing.T) {
	if spec, err := parseWorkloadSpec("mc"); err != nil || spec.Clients != 8 {
		t.Fatalf("preset mc = %+v, %v", spec, err)
	}
	if spec, err := parseWorkloadSpec("vod"); err != nil || spec.LateJoinFrac != 0.25 {
		t.Fatalf("preset vod = %+v, %v", spec, err)
	}
	spec, err := parseWorkloadSpec("clients=4,msgs=32,arrival=burst,gap=200ms,burst-len=4,burst-gap=5ms,window=0s-1s:4,window=2s-4s:0.5,size-model=lognormal,size-mean=512,zipf=1.1")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Clients != 4 || spec.Msgs != 32 || spec.BurstLen != 4 ||
		spec.Gap != 200*time.Millisecond || len(spec.Windows) != 2 ||
		spec.Windows[1].Factor != 0.5 || spec.SizeMean != 512 {
		t.Fatalf("parsed spec = %+v", spec)
	}
	for _, bad := range []string{
		"bogus-preset",                  // not key=val, not a preset
		"clients=x",                     // bad int
		"clients=4",                     // msgs missing -> Validate fails
		"clients=4,msgs=8,arrival=warp", // unknown arrival
		"clients=4,msgs=8,window=1s:4",  // malformed window
		"clients=4,msgs=8,frobnicate=1", // unknown key
	} {
		if _, err := parseWorkloadSpec(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

// TestWorkloadRecordReplayByteIdentical is the CLI trace acceptance gate:
// a -workload run that records its timeline and a second run replaying
// that file print byte-identical metrics.
func TestWorkloadRecordReplayByteIdentical(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "mc.trace")
	base := singleArgs{
		regionsCSV: "10,10", loss: 0.1, lossMode: "hash",
		c: 6, lambda: 1, policy: "two-phase", hold: 500 * time.Millisecond,
		msgs: 20, gap: 20 * time.Millisecond, horizon: 5 * time.Second,
		seed: 7,
	}
	var recorded bytes.Buffer
	if err := runSingleWorkload(&recorded, workloadArgs{
		single: base, workload: "mc", traceRecord: trace,
	}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(blob, []byte("rrmp-trace/v1\n")) {
		t.Fatalf("trace lacks the schema header: %q", blob[:20])
	}
	var replayed bytes.Buffer
	if err := runSingleWorkload(&replayed, workloadArgs{
		single: base, workload: "mc", traceReplay: trace,
	}); err != nil {
		t.Fatal(err)
	}
	if recorded.String() != replayed.String() {
		t.Fatalf("replay output differs from recording run:\n--- recorded ---\n%s--- replayed ---\n%s",
			recorded.String(), replayed.String())
	}
	if !bytes.Contains(recorded.Bytes(), []byte("wl=poisson:c8:m64")) {
		t.Fatalf("output lacks the workload token:\n%s", recorded.String())
	}
	// A truncated trace must be rejected loudly, not replayed short.
	if err := os.WriteFile(trace, blob[:len(blob)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSingleWorkload(io.Discard, workloadArgs{
		single: base, workload: "mc", traceReplay: trace,
	}); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

// TestSweepWorkloadFamilyAppends pins the default -sweep shape: the
// workload family's cells (18) and the adaptive-policy family's (6)
// append after every cell of the base matrix, carry the wl= token and
// the workload-only keys, and leave the base cells' names and key sets
// untouched.
func TestSweepWorkloadFamilyAppends(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sweep.json")
	if err := runSweep(sweepArgs{
		sweep:     true,
		swRegions: "6", // shrink the base matrix; the family keeps its real shape
		c:         6, lambda: 1, hold: 500 * time.Millisecond,
		msgs: 20, gap: 20 * time.Millisecond, horizon: 5 * time.Second,
		trials:         1,
		seed:           1,
		outPath:        out,
		quiet:          true,
		workloadFamily: true,
	}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep repro.SweepReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	firstWL := -1
	for i, cell := range rep.Cells {
		if cell.Scenario.Workload != nil {
			if firstWL < 0 {
				firstWL = i
			}
			if !strings.Contains(cell.Name, " wl=") {
				t.Fatalf("workload cell %q lacks the wl token", cell.Name)
			}
			if _, ok := cell.Aggregate.Metric("clients"); !ok {
				t.Fatalf("workload cell %q reports no clients", cell.Name)
			}
		} else {
			if firstWL >= 0 {
				t.Fatalf("legacy cell %q after the workload family began", cell.Name)
			}
			if strings.Contains(cell.Name, " wl=") {
				t.Fatalf("legacy cell %q carries a wl token", cell.Name)
			}
			if _, ok := cell.Aggregate.Metric("clients"); ok {
				t.Fatalf("legacy cell %q leaked the clients key", cell.Name)
			}
		}
	}
	if firstWL < 0 || len(rep.Cells)-firstWL != 24 {
		t.Fatalf("workload+adaptive families have %d cells starting at %d; want 18+6 appended",
			len(rep.Cells)-firstWL, firstWL)
	}
	adaptiveCells := 0
	for _, cell := range rep.Cells[firstWL:] {
		if strings.Contains(cell.Name, " policy=adaptive") {
			adaptiveCells++
		}
	}
	if adaptiveCells != 2 {
		t.Fatalf("adaptive family has %d adaptive cells, want 2", adaptiveCells)
	}
	vodCells := 0
	for _, cell := range rep.Cells[firstWL:] {
		if cell.Scenario.Workload.LateJoinFrac > 0 {
			vodCells++
			if _, ok := cell.Aggregate.Metric("late_joiners"); !ok {
				t.Fatalf("VoD cell %q reports no late_joiners", cell.Name)
			}
		}
	}
	if vodCells != 6 {
		t.Fatalf("workload family has %d VoD cells, want 6", vodCells)
	}
}

// TestSweepWorkloadAxisPinned covers -workload in multi-trial mode: the
// flag pins the sweep's workload axis to that one spec.
func TestSweepWorkloadAxisPinned(t *testing.T) {
	out := filepath.Join(t.TempDir(), "cell.json")
	if err := runSweep(sweepArgs{
		regionsCSV: "8,8", loss: 0.1, lossMode: "hash",
		c: 6, lambda: 1, hold: 500 * time.Millisecond, policy: "two-phase",
		msgs: 10, gap: 20 * time.Millisecond, horizon: 3 * time.Second,
		trials:   2,
		seed:     1,
		workload: "bursty",
		outPath:  out,
		quiet:    true,
	}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep repro.SweepReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 1 {
		t.Fatalf("pinned workload cell sweep has %d cells, want 1", len(rep.Cells))
	}
	cell := rep.Cells[0]
	if cell.Scenario.Workload == nil || cell.Scenario.Workload.Arrival != "burst" {
		t.Fatalf("cell %q lost the -workload spec", cell.Name)
	}
	if p, ok := cell.Aggregate.Metric("publishes"); !ok || p.Mean != 48 {
		t.Fatalf("cell %q publishes = %+v, want 48", cell.Name, p)
	}
}

// TestParseDurations covers the sweep-partitions axis parser.
func TestParseDurations(t *testing.T) {
	got, err := parseDurations("0, 1s,250ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1e9 || got[2] != 250e6 {
		t.Fatalf("parseDurations = %v", got)
	}
	if _, err := parseDurations("1s,bogus"); err == nil {
		t.Fatal("bogus duration accepted")
	}
}

// TestListPoliciesRoster smoke-tests the -list-policies listing against
// the registry: every canonical kind, alias and parameter (with its
// default) must appear, so the flag and the registry cannot drift apart.
func TestListPoliciesRoster(t *testing.T) {
	var buf bytes.Buffer
	printPolicyRoster(&buf)
	out := buf.String()
	for _, info := range policy.Known() {
		if !strings.Contains(out, info.Kind) || !strings.Contains(out, info.Summary) {
			t.Fatalf("roster lacks kind %q or its summary:\n%s", info.Kind, out)
		}
		for _, alias := range info.Aliases {
			if !strings.Contains(out, alias) {
				t.Fatalf("roster lacks alias %q of %q:\n%s", alias, info.Kind, out)
			}
		}
		for _, p := range info.Params {
			if !strings.Contains(out, p.Name+"=") || !strings.Contains(out, p.Default) {
				t.Fatalf("roster lacks parameter %q (default %q) of %q:\n%s",
					p.Name, p.Default, info.Kind, out)
			}
		}
	}
	if lines := strings.Count(out, "\n"); lines < len(policy.Known()) {
		t.Fatalf("roster has %d lines for %d kinds", lines, len(policy.Known()))
	}
}

// TestFitnessTableDisplayOnly pins -fitness-weights as pure display: the
// table renders one ranked row per cell and rejects malformed weight
// specs, and the report written to -out is byte-identical with and
// without the flag.
func TestFitnessTableDisplayOnly(t *testing.T) {
	runOnce := func(dir string, weights string) (string, *bytes.Buffer) {
		t.Helper()
		out := filepath.Join(dir, "sweep.json")
		if err := runSweep(sweepArgs{
			regionsCSV: "8", loss: 0.2, c: 6, lambda: 1, hold: 500 * time.Millisecond,
			msgs: 5, gap: 20 * time.Millisecond, horizon: 2 * time.Second,
			trials: 2, seed: 1, outPath: out, quiet: true,
			policy: "two-phase",
		}); err != nil {
			t.Fatal(err)
		}
		blob, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		var rep repro.SweepReport
		if err := json.Unmarshal(blob, &rep); err != nil {
			t.Fatal(err)
		}
		var table bytes.Buffer
		if weights != "" {
			if err := printFitness(&table, rep, weights); err != nil {
				t.Fatal(err)
			}
		}
		return string(blob), &table
	}
	plain, _ := runOnce(t.TempDir(), "")
	scored, table := runOnce(t.TempDir(), "default")
	if plain != scored {
		t.Fatal("-fitness-weights changed the report bytes")
	}
	if !strings.Contains(table.String(), "fitness ranking") || !strings.Contains(table.String(), "policy=two-phase") {
		t.Fatalf("fitness table lacks ranking or cell name:\n%s", table.String())
	}
	var rep repro.SweepReport
	if err := json.Unmarshal([]byte(plain), &rep); err != nil {
		t.Fatal(err)
	}
	if err := printFitness(io.Discard, rep, "delivery=x"); err == nil {
		t.Fatal("malformed weight spec accepted")
	}
	if err := printFitness(io.Discard, rep, "bogus=1"); err == nil {
		t.Fatal("unknown weight key accepted")
	}
}

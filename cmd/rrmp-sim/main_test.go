package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

// TestSweepReportByteIdenticalAcrossParallelism runs the full -sweep code
// path in-process (small topologies, the default fault axes, 2 trials)
// and asserts the rrmp-sweep/v1 JSON report written to -out is
// byte-identical at -parallel 1 and -parallel 4 — the determinism
// contract the committed BENCH_sweep.json depends on — including the new
// crash and partition cells.
func TestSweepReportByteIdenticalAcrossParallelism(t *testing.T) {
	dir := t.TempDir()
	report := func(parallel int) []byte {
		t.Helper()
		out := filepath.Join(dir, "sweep.json")
		err := runSweep(sweepArgs{
			sweep:     true,
			swRegions: "8;6,6", // shrink topologies; keep every default axis
			trials:    2,
			parallel:  parallel,
			seed:      1,
			outPath:   out,
			quiet:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		blob, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}

	serial := report(1)
	wide := report(4)
	if !bytes.Equal(serial, wide) {
		t.Fatal("sweep report bytes differ between -parallel 1 and -parallel 4")
	}

	var rep repro.SweepReport
	if err := json.Unmarshal(serial, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != "rrmp-sweep/v1" {
		t.Fatalf("schema %q, want rrmp-sweep/v1", rep.Schema)
	}
	if rep.Trials != 2 {
		t.Fatalf("trials %d, want 2", rep.Trials)
	}

	crashCells, partCells := 0, 0
	for _, cell := range rep.Cells {
		if cell.Scenario.Crash > 0 {
			crashCells++
			if !strings.Contains(cell.Name, "crash=") {
				t.Fatalf("crash cell %q lacks a crash token", cell.Name)
			}
			if _, ok := cell.Aggregate.Metric("crashes"); !ok {
				t.Fatalf("crash cell %q reports no crashes metric", cell.Name)
			}
			if _, ok := cell.Aggregate.Metric("unrecoverable"); !ok {
				t.Fatalf("crash cell %q reports no unrecoverable metric", cell.Name)
			}
		}
		if cell.Scenario.PartitionAt > 0 {
			partCells++
			if !strings.Contains(cell.Name, "part=") {
				t.Fatalf("partition cell %q lacks a part token", cell.Name)
			}
		}
	}
	if crashCells == 0 || partCells == 0 {
		t.Fatalf("default matrix has %d crash and %d partition cells; want both > 0",
			crashCells, partCells)
	}
}

// TestSingleRunWithFaults drives the single-scenario mode end to end with
// crash and partition flags (cmd/ previously had zero test files; this
// covers the non-sweep path too).
func TestSingleRunWithFaults(t *testing.T) {
	err := run(singleArgs{
		regionsCSV:   "10,10",
		msgs:         5,
		gap:          20e6, // 20 ms
		loss:         0.2,
		crash:        1,
		crashRecover: 500e6, // 500 ms
		partitionAt:  400e6,
		partitionFor: 300e6,
		c:            4,
		lambda:       1,
		policy:       "two-phase",
		seed:         3,
		horizon:      3e9,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestParseDurations covers the sweep-partitions axis parser.
func TestParseDurations(t *testing.T) {
	got, err := parseDurations("0, 1s,250ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1e9 || got[2] != 250e6 {
		t.Fatalf("parseDurations = %v", got)
	}
	if _, err := parseDurations("1s,bogus"); err == nil {
		t.Fatal("bogus duration accepted")
	}
}

// Command rrmp-sim runs one simulated RRMP scenario and prints a metrics
// summary: topology, workload, loss and policy are all flags.
//
// Examples:
//
//	rrmp-sim -regions 100 -msgs 50 -loss 0.2
//	rrmp-sim -regions 50,50,50 -msgs 20 -loss 0.1 -policy fixed -hold 500ms
//	rrmp-sim -regions 100 -msgs 10 -loss 0.3 -c 12 -seed 7 -trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/trace"
)

func main() {
	var (
		regions = flag.String("regions", "100", "comma-separated region sizes (chain hierarchy)")
		star    = flag.Bool("star", false, "attach all regions directly to the sender's region")
		msgs    = flag.Int("msgs", 20, "messages to publish")
		gap     = flag.Duration("gap", 20*time.Millisecond, "inter-message gap")
		loss    = flag.Float64("loss", 0.2, "independent DATA loss probability")
		burst   = flag.Bool("burst", false, "use a Gilbert-Elliott burst loss channel instead")
		c       = flag.Float64("c", 6, "expected long-term bufferers per region (C)")
		lambda  = flag.Float64("lambda", 1, "expected remote requests per regional loss (lambda)")
		policy  = flag.String("policy", "two-phase", "buffering policy: two-phase|fixed|all|hash")
		hold    = flag.Duration("hold", 500*time.Millisecond, "retention for -policy fixed")
		seed    = flag.Uint64("seed", 1, "root random seed")
		horizon = flag.Duration("horizon", 5*time.Second, "virtual run time")
		doTrace = flag.Bool("trace", false, "stream protocol events to stderr")
		backoff = flag.Duration("backoff", 0, "regional repair multicast back-off window (0 = immediate)")
	)
	flag.Parse()

	if err := run(*regions, *star, *msgs, *gap, *loss, *burst, *c, *lambda,
		*policy, *hold, *seed, *horizon, *doTrace, *backoff); err != nil {
		fmt.Fprintln(os.Stderr, "rrmp-sim:", err)
		os.Exit(1)
	}
}

func run(regionsCSV string, star bool, msgs int, gap time.Duration, loss float64,
	burst bool, c, lambda float64, policyName string, hold time.Duration,
	seed uint64, horizon time.Duration, doTrace bool, backoff time.Duration) error {

	var sizes []int
	for _, f := range strings.Split(regionsCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return fmt.Errorf("parsing -regions: %w", err)
		}
		sizes = append(sizes, n)
	}

	params := repro.DefaultParams()
	params.C = c
	params.Lambda = lambda
	params.RepairBackoffMax = backoff

	opts := []repro.Option{
		repro.WithSeed(seed),
		repro.WithParams(params),
	}
	if star {
		opts = append(opts, repro.WithStar(sizes...))
	} else {
		opts = append(opts, repro.WithRegions(sizes...))
	}
	if loss > 0 {
		if burst {
			opts = append(opts, repro.WithBurstDataLoss(loss))
		} else {
			opts = append(opts, repro.WithDataLoss(loss))
		}
	}
	switch policyName {
	case "two-phase":
		opts = append(opts, repro.WithPolicy(repro.PolicyTwoPhase))
	case "fixed":
		opts = append(opts, repro.WithPolicy(repro.PolicyFixedHold), repro.WithFixedHold(hold))
	case "all":
		opts = append(opts, repro.WithPolicy(repro.PolicyBufferAll))
	case "hash":
		opts = append(opts, repro.WithPolicy(repro.PolicyHashElect))
	default:
		return fmt.Errorf("unknown policy %q", policyName)
	}
	if doTrace {
		opts = append(opts, repro.WithTracer(&trace.Writer{W: os.Stderr}))
	}

	g, err := repro.NewGroup(opts...)
	if err != nil {
		return err
	}
	g.StartSessions()
	ids := make([]repro.MessageID, 0, msgs)
	for i := 0; i < msgs; i++ {
		i := i
		g.At(time.Duration(i)*gap, func() { ids = append(ids, g.Publish(make([]byte, 256))) })
	}
	g.Run(horizon)

	fmt.Printf("topology: %d members in %d regions (seed %d)\n", g.NumMembers(), g.NumRegions(), seed)
	fmt.Printf("workload: %d messages every %v, %.0f%% DATA loss (burst=%v), policy %s\n",
		msgs, gap, 100*loss, burst, policyName)
	fmt.Printf("virtual time: %v\n\n", g.Now())

	complete := 0
	worst := g.NumMembers()
	for _, id := range ids {
		got := g.CountReceived(id)
		if got == g.NumMembers() {
			complete++
		}
		if got < worst {
			worst = got
		}
	}
	fmt.Printf("delivery: %d/%d messages fully delivered; worst message reached %d/%d members\n",
		complete, len(ids), worst, g.NumMembers())

	s := g.Stats()
	fmt.Printf("recovery: %d local requests, %d remote requests, %d repairs, %d regional multicasts\n",
		s.LocalRequests, s.RemoteRequests, s.Repairs, s.RegionalMulticasts)
	fmt.Printf("latency:  mean recovery %.1f ms, mean buffering %.1f ms\n",
		s.MeanRecoveryMs, s.MeanBufferingMs)
	fmt.Printf("buffers:  %d entries live (%d long-term); %.1f msg·s total buffering cost\n",
		s.BufferedEntries, s.LongTermEntries, s.BufferIntegral)
	fmt.Printf("network:  %d packets, %d bytes offered\n", g.TotalPacketsSent(), g.TotalBytesSent())
	return nil
}

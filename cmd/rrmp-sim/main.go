// Command rrmp-sim runs simulated RRMP scenarios and prints metrics:
// topology, workload, loss, churn, crash faults, partitions and policy
// are all flags.
//
// One scenario, one trial (the original mode):
//
//	rrmp-sim -regions 100 -msgs 50 -loss 0.2
//	rrmp-sim -regions 50,50,50 -msgs 20 -loss 0.1 -policy fixed -hold 500ms
//	rrmp-sim -regions 100 -msgs 10 -loss 0.3 -c 12 -seed 7 -trace
//	rrmp-sim -regions 100 -loss 0.2 -crash 1 -crash-recover 500ms
//	rrmp-sim -regions 50,50 -partition-at 1s -partition-for 2s
//
// Multi-trial statistics for one scenario (mean / stddev / 95% CI across
// independently seeded trials, run on a bounded worker pool):
//
//	rrmp-sim -regions 100 -loss 0.2 -trials 16 -parallel 8
//
// A full scenario sweep (regions × loss × churn × crash × partition ×
// policy matrix; -sweep-* flags override the default matrix), with the
// JSON report also written to -out for machine tracking:
//
//	rrmp-sim -sweep -trials 8 -parallel 4 -json
//	rrmp-sim -sweep -sweep-crashes 0,2 -sweep-partitions 0,1s -trials 4
//	rrmp-sim -sweep -sweep-payloads 512,2048 -budget 16384 -trials 4
//
// Byte-accurate buffer accounting: -payload/-payload-model set the
// per-message payload size (model: fixed|uniform|lognormal), -budget caps
// each member's buffer in bytes with deterministic pressure eviction, and
// engaged cells report buffer_integral_bytesec / peak_buffered_bytes /
// pressure_evictions / budget_denials.
//
// The protocol axis runs the same cells under the RMTP repair-server
// baseline (-protocol rmtp for one cell, -sweep-protocols rrmp,rmtp for a
// matrix; rmtp families append after all rrmp cells and report the
// nak_*/ack_* counters instead of RRMP's request/search/handoff keys):
//
//	rrmp-sim -protocol rmtp -regions 30,30 -loss 0.2
//	rrmp-sim -sweep -sweep-protocols rrmp,rmtp -trials 8
//
// Multi-client workloads (-workload, a preset or a key=val spec) replace
// the single-sender publish stream with N concurrent publishers under
// per-client arrival processes, Zipf volume skew and optional VoD late
// joiners; -trace-record persists the materialized publish timeline as a
// canonical rrmp-trace/v1 file and -trace-replay drives a run from one
// (same cell and seed → byte-identical metrics). The default -sweep also
// appends the standing 18-cell workload family after the legacy matrix:
//
//	rrmp-sim -workload mc -regions 30,30 -loss 0.1 -loss-mode hash
//	rrmp-sim -workload vod -regions 12,12 -policy fixed
//	rrmp-sim -workload 'clients=4,msgs=32,arrival=poisson,gap=50ms,zipf=1.1'
//	rrmp-sim -workload mc -trace-record mc.trace
//	rrmp-sim -workload mc -trace-replay mc.trace
//
// Single-run traces stream to stderr with -trace and/or to a file with
// -trace-out (both flags reject sweep/multi-trial modes loudly).
//
// Policies come from the central registry: -policy (and -sweep-policies)
// accept any registered kind or alias, optionally parameterized, and
// -list-policies prints the roster with parameter defaults. The default
// -sweep also appends the 6-cell adaptive-policy family after the
// workload family, and -fitness-weights ranks a sweep's cells by the
// weighted multi-objective fitness score (delivery up; byte-seconds,
// unrecoverables and recovery latency down) without touching the report:
//
//	rrmp-sim -list-policies
//	rrmp-sim -regions 30,30 -loss 0.2 -policy adaptive:tmin=20ms,tmax=200ms,target=2
//	rrmp-sim -sweep -trials 8 -fitness-weights delivery=1,bytesec=0.5
//
// The report is a pure function of (matrix, -trials, -seed): the same
// seeds produce byte-identical aggregates at any -parallel width.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/policy"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/trace"
)

func main() {
	var (
		regions      = flag.String("regions", "100", "comma-separated region sizes (chain hierarchy)")
		star         = flag.Bool("star", false, "attach all regions directly to the sender's region")
		tree         = flag.String("tree", "", "balanced tree topology 'branch,levels,members' (overrides -regions)")
		msgs         = flag.Int("msgs", 20, "messages to publish")
		gap          = flag.Duration("gap", 20*time.Millisecond, "inter-message gap")
		loss         = flag.Float64("loss", 0.2, "independent DATA loss probability")
		lossMode     = flag.String("loss-mode", "", "loss stream model: '' = legacy shared stream (serial-only), 'hash' = per-sender counter hash (shard-safe, runs parallel under -shards; combine with -burst for the shard-safe Gilbert-Elliott chain)")
		burst        = flag.Bool("burst", false, "use a Gilbert-Elliott burst loss channel instead")
		churn        = flag.Float64("churn", 0, "graceful leaves per second (Poisson over non-sender members)")
		crash        = flag.Float64("crash", 0, "crash faults per second (Poisson over non-sender members; no handoff)")
		crashRecover = flag.Duration("crash-recover", 0, "downtime before a crashed member returns (0 = crash-stop)")
		partitionAt  = flag.Duration("partition-at", 0, "instant to split the group into two halves (0 = never)")
		partitionFor = flag.Duration("partition-for", 0, "partition duration before the heal event (0 = never heals)")
		c            = flag.Float64("c", 6, "expected long-term bufferers per region (C)")
		lambda       = flag.Float64("lambda", 1, "expected remote requests per regional loss (lambda)")
		payload      = flag.Int("payload", 0, "payload bytes per message (0 = the historic 256)")
		payloadModel = flag.String("payload-model", "", "payload size model: fixed|uniform|lognormal (sizes drawn around -payload)")
		budget       = flag.Int("budget", 0, "per-member buffer byte budget (0 = unlimited)")
		protocol     = flag.String("protocol", "rrmp", "recovery protocol: rrmp (the paper's) or rmtp (tree repair-server baseline)")
		policy       = flag.String("policy", "two-phase", "buffering policy spec, e.g. two-phase, fixed:hold=200ms or adaptive:tmin=20ms,tmax=200ms,target=2 (rrmp only; rmtp cells always run the repair-server discipline; see -list-policies)")
		hold         = flag.Duration("hold", 500*time.Millisecond, "retention for -policy fixed")
		seed         = flag.Uint64("seed", 1, "root random seed")
		horizon      = flag.Duration("horizon", 5*time.Second, "virtual run time")
		doTrace      = flag.Bool("trace", false, "stream protocol events to stderr (single-trial rrmp mode only)")
		traceOut     = flag.String("trace-out", "", "write protocol events to this file instead of stderr (single-trial rrmp mode only)")
		backoff      = flag.Duration("backoff", 0, "regional repair multicast back-off window (0 = immediate)")
		workloadFlag = flag.String("workload", "", "multi-client publish workload: a preset (mc|bursty|vod) or 'key=val,...' with keys clients,msgs,arrival(constant|poisson|burst),gap,zipf,burst-len,burst-gap,window(from-to:factor),size-model(fixed|uniform|lognormal),size-mean,late-frac,late-at,late-spread")
		traceRecord  = flag.String("trace-record", "", "write the materialized publish timeline to this file as rrmp-trace/v1 (single-trial -workload mode only)")
		traceReplay  = flag.String("trace-replay", "", "drive the run from a recorded rrmp-trace/v1 file instead of generating the timeline (single-trial -workload mode only)")

		sweep      = flag.Bool("sweep", false, "run the scenario matrix instead of a single scenario")
		sweepScale = flag.Bool("sweep-scale", false, "run the scale matrix (members×depth balanced trees) and record wall-clock + events/sec")
		trials     = flag.Int("trials", 1, "independently seeded trials per scenario cell")
		parallel   = flag.Int("parallel", 0, "worker pool size for trials (0 = GOMAXPROCS)")
		shards     = flag.Int("shards", 1, "region-sharded event loops per trial (1 = serial; aggregates are byte-identical at any width)")
		jsonOut    = flag.Bool("json", false, "print the sweep report as JSON instead of a table")
		outPath    = flag.String("out", "", "also write the sweep report JSON here (default BENCH_sweep.json for a default-matrix -sweep; empty = don't)")

		swRegions    = flag.String("sweep-regions", "", "region vectors to sweep, e.g. '50;100;50,50' (default 50;100;30,30)")
		swLosses     = flag.String("sweep-losses", "", "loss rates to sweep, e.g. '0.05,0.2' (default 0.05,0.2)")
		swChurns     = flag.String("sweep-churns", "", "churn rates to sweep, e.g. '0,1' (default 0,1)")
		swCrashes    = flag.String("sweep-crashes", "", "crash rates to sweep, e.g. '0,1' (default 0,1)")
		swPartitions = flag.String("sweep-partitions", "", "partition durations to sweep, e.g. '0,1s' (default 0,1s; 0 = no partition)")
		swPolicies   = flag.String("sweep-policies", "", "policies to sweep, e.g. 'two-phase,fixed' (default two-phase,fixed)")
		swTrees      = flag.String("sweep-trees", "", "tree shapes to sweep as 'branch:levels:members;...' (adds tree cells to -sweep; overrides the -sweep-scale grid)")
		swPayloads   = flag.String("sweep-payloads", "", "payload sizes to sweep, e.g. '0,1024' (default 0,1024; 0 = historic 256)")
		swBudgets    = flag.String("sweep-budgets", "", "buffer byte budgets to sweep, e.g. '0,8192' (default 0,8192; 0 = unlimited)")
		swProtocols  = flag.String("sweep-protocols", "", "protocols to sweep, e.g. 'rrmp,rmtp' (default rrmp,rmtp; rmtp families append after all rrmp cells)")

		listPolicies   = flag.Bool("list-policies", false, "print the policy registry roster (kinds, aliases, parameters) and exit")
		fitnessWeights = flag.String("fitness-weights", "", "print a fitness-ranked cell table after a sweep: 'key=val,...' weights with keys delivery,bytesec,unrec,recovery ('default' = standing weights; never changes the report bytes)")
	)
	flag.Parse()

	if *listPolicies {
		printPolicyRoster(os.Stdout)
		return
	}

	// The committed record tracks the *default* matrix, so it is only the
	// default target when no flag that changes cell semantics was given;
	// customized sweeps and ad-hoc multi-trial runs must not clobber it.
	// (-trials/-parallel/-json stay allowed: trial count is visible in the
	// report and parallelism never changes its bytes.)
	outSet, matrixCustomized, protocolSet := false, false, false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "protocol" {
			protocolSet = true
		}
		switch f.Name {
		case "out":
			outSet = true
		case "regions", "star", "tree", "burst", "msgs", "gap", "horizon", "hold",
			"c", "lambda", "backoff", "seed", "churn", "loss", "loss-mode", "policy",
			"crash", "crash-recover", "partition-at", "partition-for",
			"payload", "payload-model", "budget", "protocol",
			"workload", "trace-record", "trace-replay",
			"sweep-regions", "sweep-losses", "sweep-churns", "sweep-crashes",
			"sweep-partitions", "sweep-policies", "sweep-trees",
			"sweep-payloads", "sweep-budgets", "sweep-protocols":
			matrixCustomized = true
		}
	})
	// Tracing observes one deterministic run; a parallel sweep would
	// interleave members of many trials into the same stream. Fail loudly
	// instead of silently dropping the flag, as the old -trace did.
	if (*doTrace || *traceOut != "") && (*sweep || *sweepScale || *trials > 1) {
		fmt.Fprintln(os.Stderr, "rrmp-sim: -trace/-trace-out apply to single-trial mode only")
		os.Exit(2)
	}
	// Timeline traces bind one (workload, seed) pair to one file; sweeps
	// and multi-trial runs have many timelines, so the flags reject those
	// modes the same way the event tracer does.
	if *traceRecord != "" || *traceReplay != "" {
		switch {
		case *sweep || *sweepScale || *trials > 1:
			fmt.Fprintln(os.Stderr, "rrmp-sim: -trace-record/-trace-replay apply to single-trial mode only")
			os.Exit(2)
		case *workloadFlag == "":
			fmt.Fprintln(os.Stderr, "rrmp-sim: -trace-record/-trace-replay require -workload (the spec names the cell the timeline belongs to)")
			os.Exit(2)
		case *traceRecord != "" && *traceReplay != "":
			fmt.Fprintln(os.Stderr, "rrmp-sim: choose one of -trace-record or -trace-replay")
			os.Exit(2)
		}
	}
	if *workloadFlag != "" && (*doTrace || *traceOut != "") {
		fmt.Fprintln(os.Stderr, "rrmp-sim: -trace/-trace-out observe the single-run engine; -workload cells run the sweep kernel, which has no tracer hook")
		os.Exit(2)
	}
	if *workloadFlag != "" && *sweepScale {
		fmt.Fprintln(os.Stderr, "rrmp-sim: -workload does not apply to -sweep-scale")
		os.Exit(2)
	}
	if *fitnessWeights != "" && (*sweepScale || !(*sweep || *trials > 1)) {
		fmt.Fprintln(os.Stderr, "rrmp-sim: -fitness-weights scores sweep/multi-trial reports (use with -sweep or -trials > 1)")
		os.Exit(2)
	}
	if !outSet && *sweep && !*sweepScale && !matrixCustomized {
		*outPath = "BENCH_sweep.json"
	}
	// The committed scale record is regenerated per PR (its wall-clock
	// fields are the point), but a customized scale matrix must not
	// clobber it either.
	if !outSet && *sweepScale && !matrixCustomized {
		*outPath = "BENCH_scale.json"
	}
	if outSet && *outPath != "" && !*sweep && !*sweepScale && *trials <= 1 {
		fmt.Fprintln(os.Stderr, "rrmp-sim: -out only applies with -sweep, -sweep-scale or -trials > 1")
		os.Exit(2)
	}

	var err error
	if *sweepScale {
		err = runScale(scaleArgs{
			trials: *trials, parallel: *parallel, seed: *seed, shards: *shards,
			json: *jsonOut, outPath: *outPath, swTrees: *swTrees,
		})
	} else if *sweep || *trials > 1 {
		err = runSweep(sweepArgs{
			sweep: *sweep, regionsCSV: *regions, star: *star, tree: *tree, msgs: *msgs, gap: *gap,
			loss: *loss, lossMode: *lossMode, burst: *burst, churn: *churn, c: *c, lambda: *lambda,
			backoff: *backoff, policy: *policy, hold: *hold,
			crash: *crash, crashRecover: *crashRecover,
			partitionAt: *partitionAt, partitionFor: *partitionFor,
			payload: *payload, payloadModel: *payloadModel, budget: *budget,
			protocol: *protocol, protocolSet: protocolSet,
			seed: *seed, horizon: *horizon, trials: *trials, parallel: *parallel,
			shards: *shards, json: *jsonOut, outPath: *outPath,
			workload:       *workloadFlag,
			workloadFamily: *sweep && !matrixCustomized,
			fitnessWeights: *fitnessWeights,
			swRegions:      *swRegions, swLosses: *swLosses, swChurns: *swChurns,
			swCrashes: *swCrashes, swPartitions: *swPartitions, swPolicies: *swPolicies,
			swTrees: *swTrees, swPayloads: *swPayloads, swBudgets: *swBudgets,
			swProtocols: *swProtocols,
		})
	} else {
		sa := singleArgs{
			regionsCSV: *regions, star: *star, tree: *tree, msgs: *msgs, gap: *gap,
			loss: *loss, lossMode: *lossMode, burst: *burst, churn: *churn, c: *c, lambda: *lambda,
			policy: *policy, hold: *hold, seed: *seed, horizon: *horizon,
			doTrace: *doTrace, traceOut: *traceOut, backoff: *backoff,
			crash: *crash, crashRecover: *crashRecover,
			partitionAt: *partitionAt, partitionFor: *partitionFor,
			payload: *payload, payloadModel: *payloadModel, budget: *budget,
			protocol: *protocol, shards: *shards,
		}
		if *workloadFlag != "" {
			err = runSingleWorkload(os.Stdout, workloadArgs{
				single: sa, workload: *workloadFlag,
				traceRecord: *traceRecord, traceReplay: *traceReplay,
			})
		} else {
			err = run(sa)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rrmp-sim:", err)
		os.Exit(1)
	}
}

// printPolicyRoster prints the policy registry in listing order: one line
// per kind with its aliases and summary, then one indented line per
// parameter with its default (the -policy / -sweep-policies grammar).
func printPolicyRoster(w io.Writer) {
	for _, info := range policy.Known() {
		name := info.Kind
		if len(info.Aliases) > 0 {
			name += " (" + strings.Join(info.Aliases, ", ") + ")"
		}
		fmt.Fprintf(w, "%-24s %s\n", name, info.Summary)
		for _, p := range info.Params {
			fmt.Fprintf(w, "    %-10s default %-8s %s\n", p.Name+"=", p.Default, p.Doc)
		}
	}
}

// parseSizes parses one comma-separated region-size vector.
func parseSizes(csv string) ([]int, error) {
	sizes, err := parseInts(csv)
	if err != nil {
		return nil, fmt.Errorf("region sizes: %w", err)
	}
	return sizes, nil
}

// parseInts parses a comma-separated list of non-negative ints ("0"
// entries allowed — both the region and byte axes use 0 as a meaningful
// default, and neither has a legal negative value).
func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", csv, err)
		}
		if n < 0 {
			return nil, fmt.Errorf("parsing %q: negative value %d", csv, n)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseFloats parses a comma-separated float list.
func parseFloats(csv string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(csv, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", csv, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseTreeShape parses one 'branch,levels,members' (or colon-separated)
// balanced-tree spec.
func parseTreeShape(spec string) (repro.TreeShape, error) {
	sep := ","
	if strings.Contains(spec, ":") {
		sep = ":"
	}
	parts := strings.Split(spec, sep)
	if len(parts) != 3 {
		return repro.TreeShape{}, fmt.Errorf("tree spec %q: want branch%slevels%smembers", spec, sep, sep)
	}
	var vals [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return repro.TreeShape{}, fmt.Errorf("tree spec %q: %w", spec, err)
		}
		vals[i] = v
	}
	return repro.TreeShape{Branch: vals[0], Levels: vals[1], Members: vals[2]}, nil
}

// parseTreeShapes parses a semicolon-separated list of tree specs.
func parseTreeShapes(csv string) ([]repro.TreeShape, error) {
	var out []repro.TreeShape
	for _, spec := range strings.Split(csv, ";") {
		t, err := parseTreeShape(strings.TrimSpace(spec))
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// parseDurations parses a comma-separated duration list; a bare "0" is
// allowed (no unit needed for the zero value).
func parseDurations(csv string) ([]time.Duration, error) {
	var out []time.Duration
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "0" {
			out = append(out, 0)
			continue
		}
		v, err := time.ParseDuration(f)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", csv, err)
		}
		out = append(out, v)
	}
	return out, nil
}

type sweepArgs struct {
	sweep      bool
	regionsCSV string
	star       bool
	tree       string
	msgs       int
	gap        time.Duration
	loss       float64
	// lossMode sets Sweep.LossMode: "" is the legacy shared stream,
	// "hash" the shard-safe per-sender counter hash. Part of cell
	// identity (it changes which packets drop), unlike shards.
	lossMode     string
	burst        bool
	churn        float64
	crash        float64
	crashRecover time.Duration
	partitionAt  time.Duration
	partitionFor time.Duration
	c            float64
	lambda       float64
	backoff      time.Duration
	policy       string
	hold         time.Duration
	payload      int
	payloadModel string
	budget       int
	protocol     string
	// protocolSet records that -protocol was given explicitly, so even
	// the default value "rrmp" pins the sweep's protocol axis.
	protocolSet bool
	seed        uint64
	horizon     time.Duration
	trials      int
	parallel    int
	// shards sets Sweep.Shards: region-sharded event loops per trial.
	// Execution-only (like parallel) — aggregates stay byte-identical.
	shards  int
	json    bool
	outPath string
	// quiet suppresses stdout reporting (the in-process golden test only
	// compares the -out files).
	quiet bool
	// workload, when set, pins the sweep's workload axis to one parsed
	// -workload spec (multi-trial statistics for a workload cell).
	workload string
	// workloadFamily appends the standing WorkloadSweep matrix and the
	// AdaptiveSweep policy family after the main sweep — the default
	// -sweep shape BENCH_sweep.json records.
	workloadFamily bool
	// fitnessWeights, when non-empty, prints a fitness-ranked cell table
	// after the report ("default" = standing weights). Display-only: it
	// never changes the report bytes.
	fitnessWeights string
	swRegions      string
	swLosses       string
	swChurns       string
	swCrashes      string
	swPartitions   string
	swPolicies     string
	swTrees        string
	swPayloads     string
	swBudgets      string
	swProtocols    string
}

// runSweep runs either the scenario matrix (-sweep) or a single-cell sweep
// (-trials > 1 without -sweep) and reports per-cell aggregates.
func runSweep(a sweepArgs) error {
	if a.payload < 0 || a.budget < 0 {
		return fmt.Errorf("-payload and -budget must be non-negative (got %d, %d)", a.payload, a.budget)
	}
	// Single-cell modes partition only when -partition-at is set ("0 =
	// never"); the axis encodes "none" as duration 0. An open-ended
	// partition (-partition-at without -partition-for) runs to the horizon.
	pf := time.Duration(0)
	if a.partitionAt > 0 {
		pf = a.partitionFor
		if pf <= 0 {
			pf = a.horizon
		}
	}

	var sw repro.Sweep
	if a.sweep {
		sw = repro.DefaultSweep()
		if a.swRegions != "" {
			sw.Regions = nil
			for _, vec := range strings.Split(a.swRegions, ";") {
				sizes, err := parseSizes(vec)
				if err != nil {
					return err
				}
				sw.Regions = append(sw.Regions, sizes)
			}
		}
		var err error
		if a.swLosses != "" {
			if sw.Losses, err = parseFloats(a.swLosses); err != nil {
				return err
			}
		}
		if a.swChurns != "" {
			if sw.Churns, err = parseFloats(a.swChurns); err != nil {
				return err
			}
		}
		if a.swCrashes != "" {
			if sw.Crashes, err = parseFloats(a.swCrashes); err != nil {
				return err
			}
		}
		if a.swPartitions != "" {
			if sw.Partitions, err = parseDurations(a.swPartitions); err != nil {
				return err
			}
		}
		if a.swPolicies != "" {
			sw.Policies = nil
			for _, p := range strings.Split(a.swPolicies, ",") {
				sw.Policies = append(sw.Policies, strings.TrimSpace(p))
			}
		}
		if a.swTrees != "" {
			trees, err := parseTreeShapes(a.swTrees)
			if err != nil {
				return err
			}
			sw.Trees = trees
		}
	} else if a.tree != "" {
		// Multi-trial statistics for one tree cell.
		shape, err := parseTreeShape(a.tree)
		if err != nil {
			return err
		}
		sw = repro.Sweep{
			Trees:      []repro.TreeShape{shape},
			Losses:     []float64{a.loss},
			Churns:     []float64{a.churn},
			Crashes:    []float64{a.crash},
			Partitions: []time.Duration{pf},
			Policies:   []string{a.policy},
		}
	} else {
		sizes, err := parseSizes(a.regionsCSV)
		if err != nil {
			return err
		}
		sw = repro.Sweep{
			Regions:    [][]int{sizes},
			Losses:     []float64{a.loss},
			Churns:     []float64{a.churn},
			Crashes:    []float64{a.crash},
			Partitions: []time.Duration{pf},
			Policies:   []string{a.policy},
		}
	}
	// Byte axes: explicit -sweep-* lists win; otherwise a scalar -payload
	// or -budget pins its axis to that one value, so `-sweep-payloads
	// 512,2048 -budget 4096` reads as a payload axis × one fixed budget.
	if a.swPayloads != "" {
		v, err := parseInts(a.swPayloads)
		if err != nil {
			return err
		}
		sw.PayloadSizes = v
	} else if a.payload > 0 {
		sw.PayloadSizes = []int{a.payload}
	}
	if a.swBudgets != "" {
		v, err := parseInts(a.swBudgets)
		if err != nil {
			return err
		}
		sw.Budgets = v
	} else if a.budget > 0 {
		sw.Budgets = []int{a.budget}
	}
	if a.payloadModel != "" && a.payloadModel != "fixed" {
		sw.PayloadModel = a.payloadModel
	}
	// Protocol axis: an explicit -sweep-protocols list wins; otherwise an
	// explicit scalar -protocol pins the axis to that one protocol (same
	// rule the byte axes follow — and "-sweep -protocol rrmp" genuinely
	// excludes the rmtp family, not just when the value is non-default).
	if a.swProtocols != "" {
		sw.Protocols = nil
		for _, p := range strings.Split(a.swProtocols, ",") {
			p = strings.TrimSpace(p)
			// Validate here, like the other axes: an empty token (a
			// trailing comma) would otherwise normalize to a second
			// identical rrmp family instead of erroring.
			if p != "rrmp" && p != "rmtp" {
				return fmt.Errorf("-sweep-protocols: unknown protocol %q (want rrmp or rmtp)", p)
			}
			sw.Protocols = append(sw.Protocols, p)
		}
	} else if a.protocolSet || (a.protocol != "" && a.protocol != "rrmp") {
		sw.Protocols = []string{a.protocol}
	}
	sw.Star = a.star
	sw.LossMode = a.lossMode
	sw.Burst = a.burst
	sw.Shards = a.shards
	sw.FixedHold = a.hold
	sw.C = a.c
	sw.Lambda = a.lambda
	sw.RepairBackoff = a.backoff
	sw.CrashRecover = a.crashRecover
	sw.PartitionAt = a.partitionAt
	sw.Msgs = a.msgs
	sw.Gap = a.gap
	sw.Horizon = a.horizon
	if a.workload != "" {
		spec, err := parseWorkloadSpec(a.workload)
		if err != nil {
			return err
		}
		sw.Workloads = []*repro.WorkloadSpec{spec}
	}

	// The default -sweep shape is the standing matrix plus the workload
	// and adaptive-policy families, run through one pool into one report;
	// each family's cells append after all earlier cells, so the committed
	// record grows without a single pre-existing cell moving or re-byting.
	sweeps := []repro.Sweep{sw}
	if a.workloadFamily {
		wf := repro.WorkloadSweep()
		wf.Shards = a.shards
		af := repro.AdaptiveSweep()
		af.Shards = a.shards
		sweeps = append(sweeps, wf, af)
	}
	rep, err := repro.RunSweeps(repro.SweepOptions{
		Trials:   a.trials,
		Parallel: a.parallel,
		BaseSeed: a.seed,
	}, sweeps...)
	if err != nil {
		return err
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	switch {
	case a.quiet:
	case a.json:
		os.Stdout.Write(blob)
	default:
		printReport(rep)
	}
	if a.outPath != "" {
		if err := os.WriteFile(a.outPath, blob, 0o644); err != nil {
			return fmt.Errorf("writing report: %w", err)
		}
		fmt.Fprintf(os.Stderr, "rrmp-sim: wrote %s (%d cells × %d trials)\n",
			a.outPath, len(rep.Cells), rep.Trials)
	}
	if a.fitnessWeights != "" && !a.quiet {
		if err := printFitness(os.Stdout, rep, a.fitnessWeights); err != nil {
			return err
		}
	}
	return nil
}

// printFitness prints the fitness-ranked cell table -fitness-weights asks
// for. Pure display over the finished report: the report bytes (stdout
// JSON and -out file) are already written when this runs.
func printFitness(w io.Writer, rep repro.SweepReport, spec string) error {
	if spec == "default" {
		spec = ""
	}
	weights, err := repro.ParseFitnessWeights(spec)
	if err != nil {
		return err
	}
	rows := repro.SweepFitness(rep, weights)
	fmt.Fprintf(w, "\nfitness ranking (weights: delivery=%g bytesec=%g unrec=%g recovery=%g; costs normalized over %d cells)\n",
		weights.Delivery, weights.ByteSeconds, weights.Unrecoverable, weights.RecoveryMs, len(rows))
	fmt.Fprintf(w, "%4s %8s %9s %14s %13s %14s  %s\n",
		"rank", "fitness", "delivery", runner.MKUnrecoverable, "recovery(ms)", "buffer(B·s)", "cell")
	for i, r := range rows {
		fmt.Fprintf(w, "%4d %8.3f %8.2f%% %14.1f %13.1f %14.0f  %s\n",
			i+1, r.Score, 100*r.Delivery, r.Unrecoverable, r.RecoveryMs, r.ByteSeconds, r.Name)
	}
	return nil
}

// scaleArgs are the -sweep-scale mode's inputs.
type scaleArgs struct {
	trials   int
	parallel int
	seed     uint64
	// shards sets Sweep.Shards on every scale row (execution-only; the
	// aggregate sections stay byte-identical at any width).
	shards  int
	json    bool
	outPath string
	swTrees string
	// quiet suppresses stdout reporting (in-process tests).
	quiet bool
}

// runScale runs the members×depth scale matrix, timing every cell, and
// writes the rrmp-scale/v1 report (BENCH_scale.json by default — the
// committed perf-trajectory record every PR regenerates).
func runScale(a scaleArgs) error {
	sw := repro.ScaleSweep()
	sw.Shards = a.shards
	// The default grid appends the XL rows (10k/100k members) and the 1M
	// hash-burst row after the standing matrix; -sweep-trees replaces the
	// whole grid instead.
	var sweeps []repro.Sweep
	if a.swTrees != "" {
		trees, err := parseTreeShapes(a.swTrees)
		if err != nil {
			return err
		}
		sw.Trees = trees
		sweeps = []repro.Sweep{sw}
	} else {
		xl := repro.ScaleSweepXL()
		xl.Shards = a.shards
		m1 := repro.ScaleSweep1M()
		m1.Shards = a.shards
		sweeps = []repro.Sweep{sw, xl, m1}
	}
	rep, err := repro.RunScale(repro.SweepOptions{
		Trials:   a.trials,
		Parallel: a.parallel,
		BaseSeed: a.seed,
	}, sweeps...)
	if err != nil {
		return err
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	switch {
	case a.quiet:
	case a.json:
		os.Stdout.Write(blob)
	default:
		printScaleReport(rep)
	}
	if a.outPath != "" {
		if err := os.WriteFile(a.outPath, blob, 0o644); err != nil {
			return fmt.Errorf("writing scale report: %w", err)
		}
		fmt.Fprintf(os.Stderr, "rrmp-sim: wrote %s (%d cells × %d trials)\n",
			a.outPath, len(rep.Cells), rep.Trials)
	}
	return nil
}

// printScaleReport prints the scale table: per-cell delivery, recovery and
// the machine cost columns the record tracks.
func printScaleReport(rep repro.ScaleReport) {
	fmt.Printf("scale: %d cells × %d trials (base seed %d)\n", len(rep.Cells), rep.Trials, rep.BaseSeed)
	fmt.Printf("note: %s\n\n", rep.Note)
	fmt.Printf("%-58s %8s %8s %6s %12s %14s %12s %12s\n",
		"cell", "members", "regions", "depth", "delivery", "recovery(ms)", "wall(ms)", "events/s")
	for _, cell := range rep.Cells {
		fmt.Printf("%-58s %8d %8d %6d %12s %14s %12.0f %12.2g\n",
			cell.Name, cell.Members, cell.Regions, cell.Depth,
			meanCI(cell.Aggregate, runner.MKDeliveryRatio, "%.3f"),
			meanCI(cell.Aggregate, runner.MKMeanRecoveryMs, "%.1f"),
			cell.WallMsPerTrial, cell.EventsPerSec)
	}
}

// printReport prints the human-readable sweep table: headline metrics as
// mean ± 95% CI per cell.
func printReport(rep repro.SweepReport) {
	fmt.Printf("sweep: %d cells × %d trials (base seed %d)\n\n", len(rep.Cells), rep.Trials, rep.BaseSeed)
	// Byte columns appear only when some cell engages the byte axes, so
	// purely legacy sweeps keep their historical table width.
	bytesSwept := false
	for _, cell := range rep.Cells {
		if _, ok := cell.Aggregate.Metric(runner.MKBufferIntegralByteSec); ok {
			bytesSwept = true
			break
		}
	}
	byteCols := func(cell repro.SweepCell) string {
		if !bytesSwept {
			return ""
		}
		return fmt.Sprintf(" %18s %10s",
			meanOnly(cell.Aggregate, runner.MKBufferIntegralByteSec, "%.0f"),
			meanOnly(cell.Aggregate, runner.MKPressureEvictions, "%.0f"))
	}
	byteHeader := ""
	if bytesSwept {
		byteHeader = fmt.Sprintf(" %18s %10s", "buffer(B·s)", "pressure")
	}
	fmt.Printf("%-52s %16s %12s %16s %18s%s %14s\n",
		"cell", "delivery", "min-reach", "recovery(ms)", "buffer(msg·s)", byteHeader, "packets")
	for _, cell := range rep.Cells {
		fmt.Printf("%-52s %16s %12s %16s %18s%s %14s\n",
			cell.Name,
			meanCI(cell.Aggregate, runner.MKDeliveryRatio, "%.3f"),
			meanOnly(cell.Aggregate, runner.MKMinReachFrac, "%.2f"),
			meanCI(cell.Aggregate, runner.MKMeanRecoveryMs, "%.1f"),
			meanCI(cell.Aggregate, runner.MKBufferIntegralMsgSec, "%.1f"),
			byteCols(cell),
			meanOnly(cell.Aggregate, runner.MKPacketsSent, "%.0f"),
		)
	}
}

// meanCI formats a metric as "mean±ci" ("-" when absent).
func meanCI(agg repro.TrialAggregate, name, verb string) string {
	m, ok := agg.Metric(name)
	if !ok {
		return "-"
	}
	return fmt.Sprintf(verb+"±"+verb, m.Mean, m.CI95)
}

// meanOnly formats a metric's mean ("-" when absent).
func meanOnly(agg repro.TrialAggregate, name, verb string) string {
	m, ok := agg.Metric(name)
	if !ok {
		return "-"
	}
	return fmt.Sprintf(verb, m.Mean)
}

// singleArgs are the single-scenario, single-trial mode's inputs.
type singleArgs struct {
	regionsCSV   string
	star         bool
	tree         string
	msgs         int
	gap          time.Duration
	loss         float64
	lossMode     string
	burst        bool
	churn        float64
	crash        float64
	crashRecover time.Duration
	partitionAt  time.Duration
	partitionFor time.Duration
	c            float64
	lambda       float64
	policy       string
	hold         time.Duration
	payload      int
	payloadModel string
	budget       int
	protocol     string
	// shards requests region-sharded event loops (1 = serial; lossy cells
	// with the legacy shared loss stream fall back to serial).
	shards   int
	seed     uint64
	horizon  time.Duration
	doTrace  bool
	traceOut string
	backoff  time.Duration
}

// runSingleRMTP runs one seeded trial of the tree baseline by building the
// equivalent scenario cell and printing its metrics: the single-run mode's
// rich narrative output is RRMP-specific, but the cell metrics are the
// protocol-comparable currency anyway.
func runSingleRMTP(a singleArgs) error {
	sc := repro.Scenario{
		Protocol: "rmtp",
		Loss:     a.loss,
		LossMode: a.lossMode,
		Burst:    a.burst,
		Churn:    a.churn,
		Crash:    a.crash,
		Policy:   "server",
		Msgs:     a.msgs,
		Gap:      a.gap,
		Horizon:  a.horizon,
	}
	if a.crash > 0 {
		sc.CrashRecover = a.crashRecover
	}
	if a.partitionAt > 0 {
		sc.PartitionAt = a.partitionAt
		sc.PartitionDur = a.partitionFor
	}
	sc.PayloadBytes = a.payload
	if a.payloadModel != "" && a.payloadModel != "fixed" {
		sc.PayloadModel = a.payloadModel
	}
	sc.ByteBudget = a.budget
	if a.tree != "" {
		shape, err := parseTreeShape(a.tree)
		if err != nil {
			return err
		}
		sc.Tree = &shape
	} else {
		sizes, err := parseSizes(a.regionsCSV)
		if err != nil {
			return err
		}
		sc.Regions = sizes
		sc.Star = a.star
	}
	m, err := repro.RunScenario(sc, a.seed)
	if err != nil {
		return err
	}
	fmt.Printf("rmtp baseline: %s (seed %d)\n", sc.Name(), a.seed)
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-28s %g\n", k, m[k])
	}
	return nil
}

// parseWorkloadSpec parses the -workload flag: one of the standing
// presets, or a comma-separated key=val spec validated as a whole.
func parseWorkloadSpec(s string) (*repro.WorkloadSpec, error) {
	switch s {
	case "mc":
		return repro.MultiClientWorkload(), nil
	case "bursty":
		return repro.BurstyWorkload(), nil
	case "vod":
		return repro.VoDPrefixPush(), nil
	}
	spec := &repro.WorkloadSpec{}
	for _, field := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("-workload: %q is not key=val (or a preset: mc|bursty|vod)", field)
		}
		var err error
		switch k {
		//lint:allow metrickey -- workload spec field name, coincides with the metric key
		case "clients":
			spec.Clients, err = strconv.Atoi(v)
		case "msgs":
			spec.Msgs, err = strconv.Atoi(v)
		case "arrival":
			spec.Arrival = v
		case "gap":
			spec.Gap, err = time.ParseDuration(v)
		case "zipf":
			spec.ZipfS, err = strconv.ParseFloat(v, 64)
		case "burst-len":
			spec.BurstLen, err = strconv.Atoi(v)
		case "burst-gap":
			spec.BurstGap, err = time.ParseDuration(v)
		case "window":
			// from-to:factor, e.g. 0s-1s:4 (repeatable).
			var win repro.WorkloadWindow
			span, factor, ok := strings.Cut(v, ":")
			from, to, ok2 := strings.Cut(span, "-")
			if !ok || !ok2 {
				return nil, fmt.Errorf("-workload: window %q: want from-to:factor", v)
			}
			if win.From, err = time.ParseDuration(from); err == nil {
				if win.To, err = time.ParseDuration(to); err == nil {
					win.Factor, err = strconv.ParseFloat(factor, 64)
				}
			}
			spec.Windows = append(spec.Windows, win)
		case "size-model":
			spec.SizeModel = v
		case "size-mean":
			spec.SizeMean, err = strconv.Atoi(v)
		case "late-frac":
			spec.LateJoinFrac, err = strconv.ParseFloat(v, 64)
		case "late-at":
			spec.LateJoinAt, err = time.ParseDuration(v)
		case "late-spread":
			spec.LateJoinSpread, err = time.ParseDuration(v)
		default:
			return nil, fmt.Errorf("-workload: unknown key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("-workload: %s=%q: %v", k, v, err)
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("-workload: %w", err)
	}
	return spec, nil
}

// workloadArgs are the single-trial -workload mode's inputs.
type workloadArgs struct {
	single   singleArgs
	workload string
	// traceRecord writes the cell's materialized timeline to this file
	// as rrmp-trace/v1 after the run.
	traceRecord string
	// traceReplay drives the run from this recorded rrmp-trace/v1 file
	// instead of the generated timeline. A trace recorded from the same
	// cell and seed replays to a byte-identical report.
	traceReplay string
}

// runSingleWorkload runs one seeded trial of a multi-client workload cell
// through the sweep kernel (the Group facade publishes from one sender;
// workload cells need per-client senders) and prints the cell metrics —
// the same currency runSingleRMTP speaks, so record and replay runs can
// be compared byte for byte.
func runSingleWorkload(w io.Writer, a workloadArgs) error {
	s := a.single
	if s.payload < 0 || s.budget < 0 {
		return fmt.Errorf("-payload and -budget must be non-negative (got %d, %d)", s.payload, s.budget)
	}
	spec, err := parseWorkloadSpec(a.workload)
	if err != nil {
		return err
	}
	sc := repro.Scenario{
		Loss: s.loss, LossMode: s.lossMode, Burst: s.burst,
		Churn: s.churn, Crash: s.crash,
		Policy: s.policy, FixedHold: s.hold,
		C: s.c, Lambda: s.lambda, RepairBackoff: s.backoff,
		Msgs: s.msgs, Gap: s.gap, Horizon: s.horizon,
		ByteBudget: s.budget,
		Workload:   spec,
		Shards:     s.shards,
	}
	switch s.protocol {
	case "", "rrmp":
	case "rmtp":
		sc.Protocol = "rmtp"
		sc.Policy = "server"
	default:
		return fmt.Errorf("unknown protocol %q (want rrmp or rmtp)", s.protocol)
	}
	if s.crash > 0 {
		sc.CrashRecover = s.crashRecover
	}
	if s.partitionAt > 0 {
		sc.PartitionAt = s.partitionAt
		sc.PartitionDur = s.partitionFor
	}
	sc.PayloadBytes = s.payload
	if s.payloadModel != "" && s.payloadModel != "fixed" {
		sc.PayloadModel = s.payloadModel
	}
	if s.tree != "" {
		shape, err := parseTreeShape(s.tree)
		if err != nil {
			return err
		}
		sc.Tree = &shape
	} else {
		sizes, err := parseSizes(s.regionsCSV)
		if err != nil {
			return err
		}
		sc.Regions = sizes
		sc.Star = s.star
	}

	var m map[string]float64
	if a.traceReplay != "" {
		f, err := os.Open(a.traceReplay)
		if err != nil {
			return fmt.Errorf("opening trace: %w", err)
		}
		tl, err := repro.ReplayTrace(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("replaying %s: %w", a.traceReplay, err)
		}
		if m, err = repro.RunScenarioTimeline(sc, s.seed, tl); err != nil {
			return err
		}
	} else {
		if m, err = repro.RunScenario(sc, s.seed); err != nil {
			return err
		}
		if a.traceRecord != "" {
			tl, err := repro.ScenarioTimeline(sc, s.seed)
			if err != nil {
				return err
			}
			f, err := os.Create(a.traceRecord)
			if err != nil {
				return fmt.Errorf("creating trace: %w", err)
			}
			if err := repro.RecordTrace(f, tl); err != nil {
				f.Close()
				return fmt.Errorf("recording trace: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("closing trace: %w", err)
			}
			fmt.Fprintf(os.Stderr, "rrmp-sim: wrote %s (%d events, %d clients)\n",
				a.traceRecord, len(tl), tl.Clients())
		}
	}
	fmt.Fprintf(w, "workload cell: %s (seed %d)\n", sc.Name(), s.seed)
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "  %-28s %g\n", k, m[k])
	}
	return nil
}

func run(a singleArgs) error {
	if a.payload < 0 || a.budget < 0 {
		return fmt.Errorf("-payload and -budget must be non-negative (got %d, %d)", a.payload, a.budget)
	}
	switch a.protocol {
	case "", "rrmp":
	case "rmtp":
		if a.doTrace || a.traceOut != "" {
			return fmt.Errorf("-trace/-trace-out observe the rrmp engine; the rmtp baseline has no tracer hook")
		}
		return runSingleRMTP(a)
	default:
		return fmt.Errorf("unknown protocol %q (want rrmp or rmtp)", a.protocol)
	}
	var sizes []int
	if a.tree == "" {
		var err error
		if sizes, err = parseSizes(a.regionsCSV); err != nil {
			return err
		}
	}
	msgs, gap, loss, seed, horizon := a.msgs, a.gap, a.loss, a.seed, a.horizon
	churn, policyName := a.churn, a.policy

	params := repro.DefaultParams()
	params.C = a.c
	params.Lambda = a.lambda
	params.RepairBackoffMax = a.backoff
	params.ByteBudget = a.budget
	// Fault scenarios need the failure detector so recovery routes around
	// dead members (same rule the sweep runner applies).
	params.FDEnabled = a.crash > 0 || a.partitionAt > 0

	opts := []repro.Option{
		repro.WithSeed(seed),
		repro.WithParams(params),
	}
	if a.shards > 1 {
		opts = append(opts, repro.WithShards(a.shards))
	}
	switch {
	case a.tree != "":
		shape, err := parseTreeShape(a.tree)
		if err != nil {
			return err
		}
		opts = append(opts, repro.WithTree(shape.Branch, shape.Levels, shape.Members))
	case a.star:
		opts = append(opts, repro.WithStar(sizes...))
	default:
		opts = append(opts, repro.WithRegions(sizes...))
	}
	switch a.lossMode {
	case "", "hash":
	default:
		return fmt.Errorf("unknown loss mode %q (want '' or 'hash')", a.lossMode)
	}
	if loss > 0 {
		if a.shards > 1 && a.lossMode != "hash" {
			// The legacy shared loss stream only reproduces on one loop,
			// so the run silently falls back to serial (effectiveShards).
			// Say so instead of letting -shards look like a no-op.
			fmt.Fprintf(os.Stderr, "rrmp-sim: -shards %d with the legacy loss stream runs serial; use -loss-mode hash for shard-safe loss\n", a.shards)
		}
		switch {
		case a.burst && a.lossMode == "hash":
			opts = append(opts, repro.WithHashBurstLoss(loss))
		case a.burst:
			opts = append(opts, repro.WithBurstDataLoss(loss))
		case a.lossMode == "hash":
			opts = append(opts, repro.WithHashDataLoss(loss))
		default:
			opts = append(opts, repro.WithDataLoss(loss))
		}
	}
	// The registry owns the policy grammar; a bad spec fails inside
	// NewGroup with the registry's known-kinds menu in the error.
	opts = append(opts, repro.WithPolicySpec(policyName), repro.WithFixedHold(a.hold))
	// Tracing routes through the cluster's Tracer hook: -trace streams to
	// stderr (the historic behaviour), -trace-out to a file, and both at
	// once fan out to both sinks.
	var traceSinks []io.Writer
	var traceFile *os.File
	if a.doTrace {
		traceSinks = append(traceSinks, os.Stderr)
	}
	if a.traceOut != "" {
		f, err := os.Create(a.traceOut)
		if err != nil {
			return fmt.Errorf("opening trace output: %w", err)
		}
		traceFile = f
		defer func() {
			if traceFile != nil {
				traceFile.Close()
			}
		}()
		traceSinks = append(traceSinks, f)
	}
	switch len(traceSinks) {
	case 0:
	case 1:
		opts = append(opts, repro.WithTracer(&trace.Writer{W: traceSinks[0]}))
	default:
		opts = append(opts, repro.WithTracer(&trace.Writer{W: io.MultiWriter(traceSinks...)}))
	}

	g, err := repro.NewGroup(opts...)
	if err != nil {
		return err
	}
	g.StartSessions()
	// One backing buffer serves every publish at its drawn size, exactly
	// as the sweep runner does (fixed sizes draw no randomness, so legacy
	// invocations replay identically).
	paySizes, maxSize, err := runner.PayloadSizesFor(a.payloadModel, a.payload, msgs, seed)
	if err != nil {
		return err
	}
	payloadBuf := make([]byte, maxSize)
	ids := make([]repro.MessageID, 0, msgs)
	for i := 0; i < msgs; i++ {
		i := i
		g.At(time.Duration(i)*gap, func() { ids = append(ids, g.Publish(payloadBuf[:paySizes[i]])) })
	}

	// Churn and crashes: Poisson-timed schedules of distinct random
	// non-sender members (the sweep runner's construction, shared so both
	// modes produce the identical fault sequence for a seed).
	var candidates []repro.NodeID
	if churn > 0 || a.crash > 0 {
		for n := repro.NodeID(0); n < repro.NodeID(g.NumMembers()); n++ {
			if n != g.SenderID() {
				candidates = append(candidates, n)
			}
		}
	}
	// Counted at execution time: a member drawn by both streams only has
	// its first fault injected (the runner counts the same way).
	leaves, crashes := 0, 0
	if churn > 0 {
		runner.ScheduleChurn(rng.New(seed).Split(runner.ChurnStreamLabel),
			churn, horizon, candidates, func(at time.Duration, victim repro.NodeID) {
				g.At(at, func() {
					if m := g.Member(victim); m.Left() || m.Crashed() {
						return
					}
					g.Leave(victim)
					leaves++
				})
			})
	}
	if a.crash > 0 {
		runner.ScheduleChurn(rng.New(seed).Split(runner.CrashStreamLabel),
			a.crash, horizon, candidates, func(at time.Duration, victim repro.NodeID) {
				g.At(at, func() {
					if m := g.Member(victim); m.Left() || m.Crashed() {
						return
					}
					g.Crash(victim)
					crashes++
				})
				if a.crashRecover > 0 {
					g.At(at+a.crashRecover, func() { g.Recover(victim) })
				}
			})
	}
	if a.partitionAt > 0 {
		g.At(a.partitionAt, g.Partition)
		if a.partitionFor > 0 {
			g.At(a.partitionAt+a.partitionFor, g.Heal)
		}
	}

	g.Run(horizon)

	fmt.Printf("topology: %d members in %d regions (seed %d)\n", g.NumMembers(), g.NumRegions(), seed)
	fmt.Printf("workload: %d messages every %v, %.0f%% DATA loss (burst=%v), policy %s\n",
		msgs, gap, 100*loss, a.burst, policyName)
	if churn > 0 {
		fmt.Printf("churn:    %.2g leaves/s — %d members departed gracefully\n", churn, leaves)
	}
	if a.crash > 0 {
		mode := "crash-stop"
		if a.crashRecover > 0 {
			mode = fmt.Sprintf("recover after %v", a.crashRecover)
		}
		fmt.Printf("crashes:  %.2g faults/s (%s) — %d members crashed\n", a.crash, mode, crashes)
	}
	if a.partitionAt > 0 {
		heal := "never healed"
		if a.partitionFor > 0 {
			heal = fmt.Sprintf("healed at %v", a.partitionAt+a.partitionFor)
		}
		fmt.Printf("partition: cut at %v, %s\n", a.partitionAt, heal)
	}
	fmt.Printf("virtual time: %v\n\n", g.Now())

	complete := 0
	worst := g.NumMembers()
	for _, id := range ids {
		got := g.CountReceived(id)
		if got == g.NumMembers() {
			complete++
		}
		if got < worst {
			worst = got
		}
	}
	fmt.Printf("delivery: %d/%d messages fully delivered; worst message reached %d/%d members\n",
		complete, len(ids), worst, g.NumMembers())

	s := g.Stats()
	fmt.Printf("recovery: %d local requests, %d remote requests, %d repairs, %d regional multicasts\n",
		s.LocalRequests, s.RemoteRequests, s.Repairs, s.RegionalMulticasts)
	if s.Searches > 0 || s.Suspects > 0 || s.Unrecoverable > 0 {
		fmt.Printf("faults:   %d searches (%d failed), %d suspect events, %d unrecoverable losses\n",
			s.Searches, s.SearchFailures, s.Suspects, s.Unrecoverable)
	}
	fmt.Printf("latency:  mean recovery %.1f ms, mean buffering %.1f ms\n",
		s.MeanRecoveryMs, s.MeanBufferingMs)
	if s.MeanReRecoveryMs > 0 {
		fmt.Printf("          mean post-crash re-recovery %.1f ms\n", s.MeanReRecoveryMs)
	}
	fmt.Printf("buffers:  %d entries live (%d long-term); %.1f msg·s total buffering cost\n",
		s.BufferedEntries, s.LongTermEntries, s.BufferIntegral)
	fmt.Printf("bytes:    %d B held (worst member peaked at %d B); %.1f B·s byte cost\n",
		s.BufferedBytes, s.PeakBufferedBytes, s.ByteIntegral)
	if a.budget > 0 {
		fmt.Printf("budget:   %d B per member — %d pressure evictions, %d denials\n",
			a.budget, s.PressureEvictions, s.BudgetDenials)
	}
	fmt.Printf("network:  %d packets, %d bytes offered\n", g.TotalPacketsSent(), g.TotalBytesSent())
	// Close the trace file explicitly so a failed flush (full disk, ...)
	// surfaces as an error instead of an exit-0 truncated trace.
	if traceFile != nil {
		err := traceFile.Close()
		traceFile = nil
		if err != nil {
			return fmt.Errorf("closing trace output: %w", err)
		}
	}
	return nil
}

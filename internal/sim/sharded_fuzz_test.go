package sim

import (
	"encoding/binary"
	"fmt"
	"sort"
	"testing"
	"time"
)

// The shard-merge differential harness: a synthetic event program — a pure
// function of the fuzz input — runs once on the serial engine and once on
// the sharded engine (one node per shard, so every cross-node interaction
// is a cross-shard interaction). Every event carries the extended ordering
// key the sharded engine sorts by: (at, pushAt, src) plus per-context push
// order. The oracle asserts the engine's documented merge contract against
// the serial timeline — same-tick ties, zero-delay same-shard chains and
// barrier-edge timestamps included:
//
//  1. every lane executes exactly the serial run's events for that lane,
//     with identical (at, pushAt, src) keys (nothing lost, duplicated, or
//     time-shifted);
//  2. each lane's execution order is nondecreasing in the extended key, so
//     wherever keys differ the serial (time, insertion) order is
//     reproduced exactly;
//  3. inside a full-key tie group, one parent's pushes keep their push
//     order (per-context insertion order is preserved);
//  4. a second sharded run produces bitwise-identical per-lane logs
//     (goroutine scheduling never leaks into the merge).
//
// Pushes from *different* contexts at identical (at, pushAt) order by the
// fixed context index rather than the serial global sequence — the one
// documented divergence (see the package comment in sharded.go); the
// runner-level differential suite proves it never changes protocol bytes.
// This harness proves the merge machinery deterministic and key-faithful.

// mergeW is the harness lookahead bound. Delay classes below deliberately
// include exactly mergeW and exact multiples (barrier-edge timestamps).
const mergeW = 10 * time.Millisecond

const (
	mergeMaxRoots = 16
	mergeMaxDepth = 5
)

// mergeProg is a parsed fuzz input.
type mergeProg struct {
	shards int
	seed   uint64
	roots  []mergeRoot
}

// mergeRoot is one driver-scheduled (global-lane) seed event.
type mergeRoot struct {
	at time.Duration
}

// evrec is one fired event: its structural label (engine-independent) and
// the extended key its push carried.
type evrec struct {
	label  uint64
	at     time.Duration
	pushAt time.Duration
	src    int32
	lane   int32 // executing lane; -1 = coordinator/global
}

// mergeEngine abstracts the two engines for the shared program driver.
type mergeEngine interface {
	at(at time.Duration, fn func())
	postFrom(from, to int32, d time.Duration, fn func())
	run()
}

type serialMergeEngine struct{ s *Sim }

func (e serialMergeEngine) at(at time.Duration, fn func()) { e.s.At(at, fn) }
func (e serialMergeEngine) postFrom(_, _ int32, d time.Duration, fn func()) {
	e.s.Post(d, fn)
}
func (e serialMergeEngine) run() { e.s.Run() }

type shardedMergeEngine struct{ e *Sharded }

func (e shardedMergeEngine) at(at time.Duration, fn func()) { e.e.At(at, fn) }
func (e shardedMergeEngine) postFrom(from, to int32, d time.Duration, fn func()) {
	e.e.PostFrom(from, to, d, fn)
}
func (e shardedMergeEngine) run() { e.e.Run() }

// mix is the splitmix64 finalizer: the program's behavior generator.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// runMergeProg drives prog on eng. Each fired event appends to its
// executing lane's log — logs[lane+1], a dense slice-of-slices rather
// than a map, because concurrent lane goroutines appending under -race
// must touch disjoint slice headers, and even distinct-key map writes
// share the map — and schedules 0–2 children whose targets and delays
// are a pure function of (prog.seed, label) — identical on both engines.
// Labels encode the tree path in base 4, so they are engine-independent
// too. Branching ≤ 2 and depth ≤ mergeMaxDepth bound the program
// structurally (no runtime event cap that could bite engines in different
// orders). Index 0 is the coordinator's (lane -1) log.
func runMergeProg(eng mergeEngine, prog mergeProg) [][]evrec {
	logs := make([][]evrec, prog.shards+1)
	var fire func(r evrec, depth int)
	schedule := func(parentLabel uint64, from int32, now time.Duration, depth int) {
		if depth >= mergeMaxDepth {
			return
		}
		h := mix(prog.seed ^ (parentLabel * 0x9e3779b97f4a7c15))
		nc := int(h % 3)
		for i := 0; i < nc; i++ {
			hi := mix(h + uint64(i)*0xbf58476d1ce4e5b9)
			to := int32(hi % uint64(prog.shards))
			var d time.Duration
			switch (hi >> 8) % 6 {
			case 0:
				// Zero-delay chain (from a lane it must stay same-shard:
				// a cross-shard zero delay violates the lookahead bound).
				d = 0
				if from >= 0 {
					to = from
				}
			case 1:
				d = time.Millisecond
				if from >= 0 {
					to = from
				}
			case 2:
				d = mergeW // barrier-edge: exactly the lookahead bound
			case 3:
				d = mergeW + time.Millisecond
			case 4:
				d = 2 * mergeW // a later barrier's exact boundary
			case 5:
				d = mergeW + time.Duration((hi>>16)%8)*time.Millisecond
			}
			if from < 0 {
				// Coordinator context (a root firing at a barrier): any
				// delay is legal, including sub-lookahead ones.
				if (hi>>24)%2 == 0 {
					d = time.Duration((hi>>32)%8) * time.Millisecond
				}
			} else if to != from && d < mergeW {
				d = mergeW
			}
			// The child's push key, exactly as PostFrom assigns it: the
			// event lands at now+d, pushed at the parent's firing instant,
			// from the parent's context (coordinatorSrc for roots). The
			// label appends the child index as a base-4 path digit, so
			// labels are globally unique (roots live above bit 40).
			child := evrec{
				label:  parentLabel*4 + 1 + uint64(i),
				at:     now + d,
				pushAt: now,
				src:    from,
				lane:   to,
			}
			eng.postFrom(from, to, d, fireClosure(&fire, child, depth+1))
		}
	}
	fire = func(r evrec, depth int) {
		logs[r.lane+1] = append(logs[r.lane+1], r)
		schedule(r.label, r.lane, r.at, depth)
	}
	for i, r := range prog.roots {
		label := uint64(i+1) << 40
		r := r
		eng.at(r.at, func() {
			// Roots run on the coordinator (serial: the driver's own
			// events), pushed during setup: key (at, insertion order).
			logs[0] = append(logs[0], evrec{label: label, at: r.at, src: coordinatorSrc, lane: -1})
			// Their children are barrier-context pushes from src -1.
			schedule(label, coordinatorSrc, r.at, 0)
		})
	}
	eng.run()
	return logs
}

// fireClosure breaks the schedule/fire mutual recursion without capturing
// loop variables by reference.
func fireClosure(fire *func(evrec, int), r evrec, depth int) func() {
	return func() { (*fire)(r, depth) }
}

// keyLess orders two records by the extended key (at, pushAt, src).
func keyLess(a, b evrec) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.pushAt != b.pushAt {
		return a.pushAt < b.pushAt
	}
	return a.src < b.src
}

func keyEq(a, b evrec) bool {
	return a.at == b.at && a.pushAt == b.pushAt && a.src == b.src
}

// mergeParent decodes a label's parent and child index; roots (labels with
// empty base-4 path bits) report ok=false.
func mergeParent(label uint64) (parent uint64, idx int, ok bool) {
	if label&((1<<40)-1) == 0 {
		return 0, 0, false
	}
	idx = int((label - 1) % 4)
	return (label - 1 - uint64(idx)) / 4, idx, true
}

// checkMergeProg runs prog on both engines and asserts the documented
// merge contract (see the file comment): per-lane sets and keys match the
// serial timeline, lanes pop in extended-key order, per-context insertion
// order survives inside tie groups, and the merge is scheduling-
// independent.
func checkMergeProg(t *testing.T, prog mergeProg) {
	t.Helper()

	serial := runMergeProg(serialMergeEngine{New()}, prog)

	shardedRun := func() [][]evrec {
		t.Helper()
		nodeShard := make([]int32, prog.shards)
		for i := range nodeShard {
			nodeShard[i] = int32(i)
		}
		sh, err := NewSharded(prog.shards, nodeShard, mergeW)
		if err != nil {
			t.Fatal(err)
		}
		return runMergeProg(shardedMergeEngine{sh}, prog)
	}
	sharded := shardedRun()

	for lane := int32(-1); lane < int32(prog.shards); lane++ {
		got := sharded[lane+1]
		want := append([]evrec(nil), serial[lane+1]...)
		if len(got) != len(want) {
			t.Fatalf("lane %d: sharded fired %d events, serial timeline has %d", lane, len(got), len(want))
		}

		// (2) The lane pops in nondecreasing extended-key order.
		for i := 1; i < len(got); i++ {
			if keyLess(got[i], got[i-1]) {
				t.Fatalf("lane %d: event %d (label %d, key %v/%v/%d) popped after a greater key",
					lane, i, got[i].label, got[i].at, got[i].pushAt, got[i].src)
			}
		}

		// (1) Key-sorted, the two timelines must agree group by group:
		// identical key boundaries and identical label sets inside each
		// full-key tie group. Where keys are strict this forces exact
		// serial (time, insertion) order; inside a tie group the order is
		// the engine's documented context-index fallback.
		sort.SliceStable(want, func(i, j int) bool { return keyLess(want[i], want[j]) })
		sorted := append([]evrec(nil), got...)
		sort.SliceStable(sorted, func(i, j int) bool { return keyLess(sorted[i], sorted[j]) })
		for g := 0; g < len(want); {
			end := g + 1
			for end < len(want) && keyEq(want[end], want[g]) {
				end++
			}
			gotSet := make(map[uint64]int, end-g)
			for i := g; i < end; i++ {
				if !keyEq(sorted[i], want[i]) {
					t.Fatalf("lane %d: key group %v/%v/%d missing from the sharded run",
						lane, want[i].at, want[i].pushAt, want[i].src)
				}
				gotSet[sorted[i].label]++
			}
			for i := g; i < end; i++ {
				if gotSet[want[i].label] == 0 {
					t.Fatalf("lane %d: label %d (at %v) absent from its sharded tie group",
						lane, want[i].label, want[i].at)
				}
				gotSet[want[i].label]--
			}
			g = end
		}

		// (3) Inside each tie group of the sharded order, one parent's
		// pushes must keep their child-index (push) order.
		for g := 0; g < len(got); {
			end := g + 1
			for end < len(got) && keyEq(got[end], got[g]) {
				end++
			}
			lastIdx := make(map[uint64]int, end-g)
			for i := g; i < end; i++ {
				if parent, idx, ok := mergeParent(got[i].label); ok {
					if prev, seen := lastIdx[parent]; seen && idx < prev {
						t.Fatalf("lane %d: parent %d's push order inverted inside tie group at %v",
							lane, parent, got[i].at)
					} else if !seen || idx > prev {
						lastIdx[parent] = idx
					}
				}
			}
			g = end
		}
	}

	// (4) Scheduling independence: a re-run must be bitwise identical.
	again := shardedRun()
	for lane := int32(-1); lane < int32(prog.shards); lane++ {
		a, b := sharded[lane+1], again[lane+1]
		if len(a) != len(b) {
			t.Fatalf("lane %d: re-run fired %d events, first run %d", lane, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("lane %d event %d: re-run fired label %d, first run label %d — merge depends on goroutine scheduling",
					lane, i, b[i].label, a[i].label)
			}
		}
	}
}

// parseMergeProg decodes a fuzz input: shard count, behavior seed, then
// 2-byte root specs (time-in-ms, node). Duplicate root times are likely by
// construction — that is the point (same-tick ties on the global lane).
func parseMergeProg(data []byte) (mergeProg, bool) {
	if len(data) < 11 {
		return mergeProg{}, false
	}
	prog := mergeProg{
		shards: 2 + int(data[0]%3),
		seed:   binary.LittleEndian.Uint64(data[1:9]),
	}
	rest := data[9:]
	for len(rest) >= 2 && len(prog.roots) < mergeMaxRoots {
		// Millisecond grid plus a sub-millisecond offset: root times land
		// on, just before, and just after lookahead barrier boundaries.
		at := time.Duration(rest[0]%32)*time.Millisecond +
			time.Duration(rest[1]%10)*100*time.Microsecond
		prog.roots = append(prog.roots, mergeRoot{at: at})
		rest = rest[2:]
	}
	return prog, len(prog.roots) > 0
}

// FuzzShardMerge feeds arbitrary cross-shard event timelines through both
// engines and requires the sharded merge to reproduce the serial (time,
// insertion) order on every lane.
func FuzzShardMerge(f *testing.F) {
	f.Add([]byte{2, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 5, 2, 5, 3})
	f.Add([]byte{0, 42, 0, 0, 0, 0, 0, 0, 0, 10, 0, 10, 1, 20, 0, 20, 1, 30, 2})
	f.Add([]byte{1, 0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 0, 0, 0, 1, 0, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		prog, ok := parseMergeProg(data)
		if !ok {
			t.Skip()
		}
		checkMergeProg(t, prog)
	})
}

// TestShardMergeDeterministic pins hand-built timelines that target the
// known traps: same-tick root ties, zero-delay chains, and events landing
// exactly on lookahead barrier boundaries.
func TestShardMergeDeterministic(t *testing.T) {
	cases := []mergeProg{
		// Same-tick ties: every root at t=0.
		{shards: 4, seed: 7, roots: []mergeRoot{{0}, {0}, {0}, {0}}},
		// Barrier-edge cascade: roots at exact multiples of the lookahead.
		{shards: 3, seed: 99, roots: []mergeRoot{{0}, {mergeW}, {2 * mergeW}, {2 * mergeW}}},
		// Dense tie pile-up between two shards.
		{shards: 2, seed: 0xdeadbeef, roots: []mergeRoot{
			{5 * time.Millisecond}, {5 * time.Millisecond},
			{5 * time.Millisecond}, {15 * time.Millisecond}}},
	}
	for i, prog := range cases {
		prog := prog
		t.Run(fmt.Sprintf("case%d", i), func(t *testing.T) { checkMergeProg(t, prog) })
	}
}

// Sharded is the region-sharded parallel simulation engine: one trial runs
// several event loops (shards), each owning the members of one or more
// regions, synchronized by conservative-lookahead windows.
//
// The synchronization protocol is classic conservative PDES specialized to
// this simulator's structure:
//
//   - Every cross-shard interaction is a packet delivery with latency of at
//     least the lookahead bound W (the minimum cross-region one-way
//     latency). A shard executing events in the window [G, G+W) can
//     therefore only schedule cross-shard work at or after G+W — never
//     inside another shard's current window.
//   - Shards execute a window concurrently, queueing cross-shard pushes in
//     per-shard outboxes. At the barrier the coordinator drains outboxes in
//     fixed shard order into the target queues, so the merge order is a
//     pure function of the event timeline, not goroutine scheduling.
//   - Driver-level events (fault injections, publishes, anything scheduled
//     through the engine's own Scheduler or before the first RunUntil) live
//     on a separate global lane executed single-threaded at barriers, in
//     exactly the (time, insertion) order a serial run gives them. A fault
//     cut landing on a barrier boundary thus executes between windows,
//     never "batch-ahead" of the shard loops it affects.
//
// Determinism: each queue orders events by the extended key
// (at, pushAt, src, seq) — see eventq.PushKeyed. Within one pushing context
// (a shard's loop, or the coordinator) pushAt is nondecreasing and seq is
// the push order, so per-context insertion order is preserved; across
// contexts the key orders by push time first (as the serial engine's global
// sequence does) and falls back to the fixed context index only for pushes
// from different contexts at identical virtual times. That fallback is the
// one place the merge can deviate from the serial engine's global sequence
// (which breaks such ties by push order instead) — the order is still a
// pure function of the event timeline, just a different deterministic
// convention, and any downstream push inherits it. FuzzShardMerge pins
// exactly this contract; the runner differential suite demonstrates the
// convention never changes protocol-level report bytes.
package sim

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/eventq"
)

// Sharded runs one simulation across several shard-local event loops. It
// implements Engine (drive it like a Sim) and clock.Scheduler (driver-level
// scheduling lands on the global lane); per-shard schedulers for protocol
// members come from Clock. Create one with NewSharded.
//
// Concurrency contract: all Engine/Scheduler methods are driver-side and
// must be called from the driving goroutine, outside RunUntil. During a
// window, each shard's goroutine may only touch its own lane (through its
// Clock or PostFrom with a same/cross-shard target); cross-shard effects
// are deferred to the barrier.
type Sharded struct {
	lanes     []*lane
	clocks    []laneClock
	nodeShard []int32
	lookahead time.Duration

	// global is the driver/coordinator lane: plain (at, seq) order, exactly
	// a serial engine's pre-run queue. gmu guards it because shard contexts
	// may Stop global timers mid-window; all other access is coordinator-
	// side. gcount counts executed global events.
	gmu    sync.Mutex
	global eventq.Queue
	gcount uint64

	now     time.Duration
	setup   bool // until the first RunUntil: every push goes to the global lane
	barrier bool // coordinator is executing between windows
	running bool

	active []*lane // scratch for runWindow
}

// lane is one shard's event loop: a keyed queue, the shard's local clock,
// and an outbox of cross-shard pushes deferred to the next barrier.
type lane struct {
	id        int32
	q         eventq.Queue
	now       time.Duration
	out       []outEvent
	processed uint64
}

// outEvent is a cross-shard push captured during a window.
type outEvent struct {
	dst    int32
	at     time.Duration
	pushAt time.Duration
	src    int32
	fn     func()
}

// coordinatorSrc orders barrier-context pushes before any shard's pushes at
// an identical (at, pushAt) — the serial engine runs driver-scheduled
// events first at equal timestamps because their sequence numbers predate
// all runtime pushes.
const coordinatorSrc int32 = -1

// NewSharded returns a sharded engine with shards loops. nodeShard maps
// every node id to its owning shard (see topology.NodeShards); lookahead is
// the conservative window bound and must not exceed the minimum cross-shard
// packet latency the caller's latency model can produce.
func NewSharded(shards int, nodeShard []int32, lookahead time.Duration) (*Sharded, error) {
	if shards < 1 {
		return nil, fmt.Errorf("sim: NewSharded with %d shards", shards)
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("sim: NewSharded with non-positive lookahead %v", lookahead)
	}
	for n, s := range nodeShard {
		if s < 0 || int(s) >= shards {
			return nil, fmt.Errorf("sim: node %d mapped to shard %d of %d", n, s, shards)
		}
	}
	e := &Sharded{
		lanes:     make([]*lane, shards),
		clocks:    make([]laneClock, shards),
		nodeShard: nodeShard,
		lookahead: lookahead,
		setup:     true,
	}
	for i := range e.lanes {
		e.lanes[i] = &lane{id: int32(i)}
		e.clocks[i] = laneClock{e: e, shard: int32(i)}
	}
	return e, nil
}

// Shards returns the number of shard loops.
func (e *Sharded) Shards() int { return len(e.lanes) }

// Lookahead returns the conservative window bound.
func (e *Sharded) Lookahead() time.Duration { return e.lookahead }

// Clock returns the scheduler shard-owned protocol code must use: Now is
// the shard's local window clock and timers land on the shard's own queue.
func (e *Sharded) Clock(shard int32) clock.Scheduler { return &e.clocks[shard] }

// Now returns the engine's barrier clock (the driver-visible virtual time).
func (e *Sharded) Now() time.Duration { return e.now }

// Processed returns the number of events executed across all lanes plus the
// global lane.
func (e *Sharded) Processed() uint64 {
	total := e.gcount
	for _, ln := range e.lanes {
		total += ln.processed
	}
	return total
}

// Pending returns the number of scheduled events not yet executed.
func (e *Sharded) Pending() int {
	e.gmu.Lock()
	n := e.global.Len()
	e.gmu.Unlock()
	for _, ln := range e.lanes {
		n += ln.q.Len()
	}
	return n
}

// After schedules fn on the global lane d after the barrier clock.
func (e *Sharded) After(d time.Duration, fn func()) clock.Timer {
	if fn == nil {
		panic("sim: After with nil callback")
	}
	if d < 0 {
		d = 0
	}
	e.gmu.Lock()
	ev := e.global.Push(e.now+d, fn)
	t := &gtimer{e: e, ev: ev, gen: ev.Gen()}
	e.gmu.Unlock()
	return t
}

// At schedules fn on the global lane at the absolute time at, clamped to
// the barrier clock.
func (e *Sharded) At(at time.Duration, fn func()) clock.Timer {
	return e.After(at-e.now, fn)
}

// Post schedules fn like After without a cancellation handle.
func (e *Sharded) Post(d time.Duration, fn func()) {
	if fn == nil {
		panic("sim: Post with nil callback")
	}
	if d < 0 {
		d = 0
	}
	e.gmu.Lock()
	e.global.Push(e.now+d, fn)
	e.gmu.Unlock()
}

// PostFrom schedules fn to run d after the sending context's clock, on the
// shard owning node to. from identifies the sending node; the sending
// context is from's shard during a window, or the coordinator during setup
// and barriers. This is the network's delivery primitive (netsim routes
// through it when sharding is enabled). Cross-shard posts with d below the
// lookahead bound panic: they would land inside another shard's current
// window, which the engine cannot order deterministically.
func (e *Sharded) PostFrom(from, to int32, d time.Duration, fn func()) {
	if fn == nil {
		panic("sim: PostFrom with nil callback")
	}
	if d < 0 {
		d = 0
	}
	if e.setup {
		e.gmu.Lock()
		e.global.Push(e.now+d, fn)
		e.gmu.Unlock()
		return
	}
	dst := e.nodeShard[to]
	if e.barrier {
		e.lanes[dst].q.PushKeyed(e.now+d, e.now, coordinatorSrc, fn)
		return
	}
	src := e.nodeShard[from]
	ln := e.lanes[src]
	if src == dst {
		ln.q.PushKeyed(ln.now+d, ln.now, src, fn)
		return
	}
	if d < e.lookahead {
		panic(fmt.Sprintf("sim: cross-shard post from node %d to node %d with delay %v below the %v lookahead bound", from, to, d, e.lookahead))
	}
	ln.out = append(ln.out, outEvent{dst: dst, at: ln.now + d, pushAt: ln.now, src: src, fn: fn})
}

// RunUntil executes events with timestamps <= deadline in lookahead-bounded
// windows, advances the barrier clock to the deadline, and returns the
// number of events executed by this call. A negative deadline runs to
// exhaustion.
func (e *Sharded) RunUntil(deadline time.Duration) uint64 {
	if e.running {
		panic("sim: reentrant Run from inside an event callback")
	}
	e.running = true
	defer func() { e.running = false }()
	e.setup = false

	start := e.Processed()
	if deadline < 0 {
		for {
			at, ok := e.nextEventAt()
			if !ok {
				break
			}
			e.runTo(at)
		}
	} else {
		e.runTo(deadline)
	}
	return e.Processed() - start
}

// Run executes events until every queue is empty and returns the number
// executed.
func (e *Sharded) Run() uint64 { return e.RunUntil(-1) }

// runTo advances the engine to the absolute time deadline (>= 0).
func (e *Sharded) runTo(deadline time.Duration) {
	for {
		e.syncLanes()
		e.runGlobalDue()
		if e.now >= deadline {
			// Final pass: events at exactly the deadline instant. Globals
			// at the deadline already fired above (driver-scheduled events
			// precede runtime events at equal timestamps, as in the serial
			// engine); now the shard loops run theirs inclusively.
			e.runWindow(deadline, true)
			e.drainOutboxes()
			return
		}
		h := e.now + e.lookahead
		if g, ok := e.nextGlobalAt(); ok && g < h {
			h = g
		}
		if deadline < h {
			h = deadline
		}
		e.runWindow(h, false)
		e.drainOutboxes()
		e.now = h
	}
}

// syncLanes aligns every lane clock with the barrier clock.
func (e *Sharded) syncLanes() {
	for _, ln := range e.lanes {
		ln.now = e.now
	}
}

// runGlobalDue executes global-lane events due at the barrier clock, in
// (time, insertion) order, on the coordinator.
func (e *Sharded) runGlobalDue() {
	e.barrier = true
	for {
		e.gmu.Lock()
		head := e.global.Peek()
		if head == nil || head.At() > e.now {
			e.gmu.Unlock()
			break
		}
		_, fn, _ := e.global.PopFire()
		e.gmu.Unlock()
		e.gcount++
		fn()
	}
	e.barrier = false
}

// nextGlobalAt returns the earliest pending global event time.
func (e *Sharded) nextGlobalAt() (time.Duration, bool) {
	e.gmu.Lock()
	defer e.gmu.Unlock()
	head := e.global.Peek()
	if head == nil {
		return 0, false
	}
	return head.At(), true
}

// nextEventAt returns the earliest pending event time across all queues.
func (e *Sharded) nextEventAt() (time.Duration, bool) {
	at, ok := e.nextGlobalAt()
	for _, ln := range e.lanes {
		if head := ln.q.Peek(); head != nil && (!ok || head.At() < at) {
			at, ok = head.At(), true
		}
	}
	return at, ok
}

// runWindow executes every lane's events in [now, limit) — or [now, limit]
// when inclusive — concurrently, one goroutine per lane with due events.
func (e *Sharded) runWindow(limit time.Duration, inclusive bool) {
	e.active = e.active[:0]
	for _, ln := range e.lanes {
		if head := ln.q.Peek(); head != nil && due(head.At(), limit, inclusive) {
			e.active = append(e.active, ln)
		}
	}
	if len(e.active) == 0 {
		return
	}
	if len(e.active) == 1 {
		e.active[0].run(limit, inclusive)
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(e.active))
	for _, ln := range e.active {
		go func(ln *lane) {
			defer wg.Done()
			ln.run(limit, inclusive)
		}(ln)
	}
	wg.Wait()
}

func due(at, limit time.Duration, inclusive bool) bool {
	if inclusive {
		return at <= limit
	}
	return at < limit
}

// run executes the lane's due events in extended-key order, advancing the
// lane clock to each event's timestamp.
func (ln *lane) run(limit time.Duration, inclusive bool) {
	for {
		head := ln.q.Peek()
		if head == nil || !due(head.At(), limit, inclusive) {
			break
		}
		at, fn, _ := ln.q.PopFire()
		if at > ln.now {
			ln.now = at
		}
		ln.processed++
		fn()
	}
}

// drainOutboxes merges the window's cross-shard pushes into their target
// queues in fixed shard order, keeping the merge deterministic.
func (e *Sharded) drainOutboxes() {
	for _, ln := range e.lanes {
		for i := range ln.out {
			o := &ln.out[i]
			e.lanes[o.dst].q.PushKeyed(o.at, o.pushAt, o.src, o.fn)
			o.fn = nil
		}
		ln.out = ln.out[:0]
	}
}

// laneClock is the clock.Scheduler one shard's members run against.
type laneClock struct {
	e     *Sharded
	shard int32
}

// Now returns the shard's local clock (the barrier clock between windows).
func (c *laneClock) Now() time.Duration { return c.e.lanes[c.shard].now }

// After schedules fn on the owning shard's queue. During setup it routes to
// the global lane (matching the serial engine's pre-run insertion order);
// from a barrier it is keyed as a coordinator push.
func (c *laneClock) After(d time.Duration, fn func()) clock.Timer {
	if fn == nil {
		panic("sim: After with nil callback")
	}
	if d < 0 {
		d = 0
	}
	e := c.e
	if e.setup {
		e.gmu.Lock()
		ev := e.global.Push(e.now+d, fn)
		t := &gtimer{e: e, ev: ev, gen: ev.Gen()}
		e.gmu.Unlock()
		return t
	}
	ln := e.lanes[c.shard]
	src := c.shard
	if e.barrier {
		src = coordinatorSrc
	}
	ev := ln.q.PushKeyed(ln.now+d, ln.now, src, fn)
	return &ltimer{ln: ln, ev: ev, gen: ev.Gen()}
}

var _ clock.Scheduler = (*laneClock)(nil)
var _ Engine = (*Sharded)(nil)

// gtimer is a handle to a global-lane event.
type gtimer struct {
	e   *Sharded
	ev  *eventq.Event
	gen uint32
}

// Stop cancels the timer; see clock.Timer.
func (t *gtimer) Stop() bool {
	t.e.gmu.Lock()
	defer t.e.gmu.Unlock()
	return t.e.global.Cancel(t.ev, t.gen)
}

// ltimer is a handle to a shard-lane event. Stop is only safe from the
// owning shard's context (or a barrier) — the same ownership rule as every
// other lane operation. Protocol members only cancel their own timers, so
// this holds by construction.
type ltimer struct {
	ln  *lane
	ev  *eventq.Event
	gen uint32
}

// Stop cancels the timer; see clock.Timer.
func (t *ltimer) Stop() bool { return t.ln.q.Cancel(t.ev, t.gen) }

var _ clock.Timer = (*gtimer)(nil)
var _ clock.Timer = (*ltimer)(nil)

// Package sim implements a deterministic discrete-event simulation kernel.
//
// A Sim owns a virtual clock and an ordered event queue (internal/eventq).
// All protocol work — packet deliveries, retransmission timers, idle-buffer
// timers — is expressed as events. Running the simulation pops events in
// (time, insertion) order and advances the clock to each event's timestamp,
// so an arbitrarily large multicast group simulates on one goroutine with
// perfectly reproducible interleavings.
//
// Sim implements clock.Scheduler, which is the only interface the protocol
// stack sees; the same protocol code runs unmodified on real time via
// internal/udptransport.
package sim

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/eventq"
)

// Engine is the driver-facing surface shared by the serial simulator (Sim)
// and the region-sharded parallel simulator (Sharded): scheduling from the
// driver's context plus bounded execution. Experiment runners are written
// against Engine so one scenario kernel can drive either implementation.
type Engine interface {
	clock.Scheduler
	// Processed returns the number of events executed so far.
	Processed() uint64
	// Pending returns the number of scheduled events not yet executed.
	Pending() int
	// At schedules fn at the absolute virtual time at, clamped to now.
	At(at time.Duration, fn func()) clock.Timer
	// Post schedules fn like After without a cancellation handle.
	Post(d time.Duration, fn func())
	// RunUntil executes events with timestamps <= deadline, advances the
	// clock to the deadline, and returns the number executed by this call.
	RunUntil(deadline time.Duration) uint64
}

// Sim is a discrete-event simulator. Create one with New. Sim is not safe
// for concurrent use: everything runs on the caller's goroutine.
type Sim struct {
	now       time.Duration
	queue     eventq.Queue
	processed uint64
	running   bool
}

// New returns an empty simulator at virtual time zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Processed returns the number of events executed so far.
func (s *Sim) Processed() uint64 { return s.processed }

// Pending returns the number of scheduled events not yet executed.
func (s *Sim) Pending() int { return s.queue.Len() }

// timer adapts an eventq handle to clock.Timer. Events are pooled, so the
// timer remembers the generation observed at Push time; a Stop after the
// event fired (and the struct was reused for a later event) is a stale
// handle that Cancel correctly refuses.
type timer struct {
	sim *Sim
	ev  *eventq.Event
	gen uint32
}

// Stop cancels the timer; see clock.Timer.
func (t *timer) Stop() bool { return t.sim.queue.Cancel(t.ev, t.gen) }

var _ clock.Timer = (*timer)(nil)
var _ clock.Scheduler = (*Sim)(nil)
var _ Engine = (*Sim)(nil)

// After schedules fn to run d after the current virtual time. A non-positive
// d schedules for "now"; the event still goes through the queue so it runs
// after the currently executing event completes.
func (s *Sim) After(d time.Duration, fn func()) clock.Timer {
	if fn == nil {
		panic("sim: After with nil callback")
	}
	if d < 0 {
		d = 0
	}
	ev := s.queue.Push(s.now+d, fn)
	return &timer{sim: s, ev: ev, gen: ev.Gen()}
}

// Post schedules fn like After but returns no cancellation handle, saving
// the timer allocation. It exists for fire-and-forget events — the
// simulated network's packet deliveries are never cancelled, and they
// dominate event volume at scale.
func (s *Sim) Post(d time.Duration, fn func()) {
	if fn == nil {
		panic("sim: Post with nil callback")
	}
	if d < 0 {
		d = 0
	}
	s.queue.Push(s.now+d, fn)
}

// At schedules fn at the absolute virtual time at, clamped to now.
func (s *Sim) At(at time.Duration, fn func()) clock.Timer {
	return s.After(at-s.now, fn)
}

// Step executes the single earliest event. It returns false if no events
// are pending.
func (s *Sim) Step() bool {
	at, fn, ok := s.queue.PopFire()
	if !ok {
		return false
	}
	if at > s.now {
		s.now = at
	}
	s.processed++
	fn()
	return true
}

// Run executes events until the queue is empty. It returns the number of
// events executed. Run panics if called reentrantly from an event callback.
func (s *Sim) Run() uint64 {
	return s.RunUntil(-1)
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to the deadline. A negative deadline means "run to exhaustion". It
// returns the number of events executed by this call.
func (s *Sim) RunUntil(deadline time.Duration) uint64 {
	if s.running {
		panic("sim: reentrant Run from inside an event callback")
	}
	s.running = true
	defer func() { s.running = false }()

	start := s.processed
	for {
		head := s.queue.Peek()
		if head == nil {
			break
		}
		if deadline >= 0 && head.At() > deadline {
			break
		}
		s.Step()
	}
	if deadline >= 0 && s.now < deadline {
		s.now = deadline
	}
	return s.processed - start
}

// RunFor advances the simulation by d from the current time; see RunUntil.
func (s *Sim) RunFor(d time.Duration) uint64 {
	return s.RunUntil(s.now + d)
}

// MustQuiesce runs to exhaustion but panics if more than limit events
// execute, which guards tests and experiments against runaway protocols
// (for example a search loop that never terminates).
func (s *Sim) MustQuiesce(limit uint64) uint64 {
	if s.running {
		panic("sim: reentrant MustQuiesce")
	}
	s.running = true
	defer func() { s.running = false }()

	start := s.processed
	for s.queue.Len() > 0 {
		if s.processed-start >= limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v with %d pending", limit, s.now, s.queue.Len()))
		}
		s.Step()
	}
	return s.processed - start
}

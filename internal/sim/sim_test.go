package sim

import (
	"testing"
	"time"
)

func TestClockAdvancesToEventTime(t *testing.T) {
	s := New()
	var at time.Duration
	s.After(25*time.Millisecond, func() { at = s.Now() })
	s.Run()
	if at != 25*time.Millisecond {
		t.Fatalf("callback saw t=%v, want 25ms", at)
	}
	if s.Now() != 25*time.Millisecond {
		t.Fatalf("final clock %v, want 25ms", s.Now())
	}
}

func TestNegativeDelayFiresNow(t *testing.T) {
	s := New()
	s.RunUntil(10 * time.Millisecond)
	var at time.Duration = -1
	s.After(-5*time.Millisecond, func() { at = s.Now() })
	s.Run()
	if at != 10*time.Millisecond {
		t.Fatalf("past-scheduled event fired at %v, want clamped to 10ms", at)
	}
}

func TestTimerStop(t *testing.T) {
	s := New()
	fired := false
	tm := s.After(10, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false for pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	s.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestStopAfterFire(t *testing.T) {
	s := New()
	tm := s.After(1, func() {})
	s.Run()
	if tm.Stop() {
		t.Fatal("Stop after firing returned true")
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	s := New()
	var fired []int
	s.After(10, func() { fired = append(fired, 1) })
	s.After(20, func() { fired = append(fired, 2) })
	s.After(30, func() { fired = append(fired, 3) })
	s.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at t<=20 only", fired)
	}
	if s.Now() != 20 {
		t.Fatalf("clock %v after RunUntil(20)", s.Now())
	}
	s.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %v after Run", fired)
	}
}

func TestRunForAdvancesIdleClock(t *testing.T) {
	s := New()
	s.RunFor(time.Second)
	if s.Now() != time.Second {
		t.Fatalf("idle RunFor left clock at %v", s.Now())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	s := New()
	var order []string
	s.After(10, func() {
		order = append(order, "a")
		s.After(5, func() { order = append(order, "b") })
		s.After(0, func() { order = append(order, "a2") })
	})
	s.After(12, func() { order = append(order, "c") })
	s.Run()
	want := []string{"a", "a2", "c", "b"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []int {
		s := New()
		var got []int
		for i := 0; i < 50; i++ {
			i := i
			s.After(time.Duration(i%7)*time.Millisecond, func() { got = append(got, i) })
		}
		s.Run()
		return got
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("two identical runs diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestMustQuiescePanicsOnRunaway(t *testing.T) {
	s := New()
	var loop func()
	loop = func() { s.After(1, loop) }
	s.After(1, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("MustQuiesce did not panic on unbounded event chain")
		}
	}()
	s.MustQuiesce(1000)
}

func TestReentrantRunPanics(t *testing.T) {
	s := New()
	var recovered any
	s.After(1, func() {
		defer func() { recovered = recover() }()
		s.Run()
	})
	s.Run()
	if recovered == nil {
		t.Fatal("reentrant Run did not panic")
	}
}

func TestProcessedAndPending(t *testing.T) {
	s := New()
	s.After(1, func() {})
	s.After(2, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	s.Run()
	if s.Processed() != 2 || s.Pending() != 0 {
		t.Fatalf("Processed = %d, Pending = %d", s.Processed(), s.Pending())
	}
}

func TestAtSchedulesAbsolute(t *testing.T) {
	s := New()
	var at time.Duration
	s.After(10, func() {
		s.At(40, func() { at = s.Now() })
	})
	s.Run()
	if at != 40 {
		t.Fatalf("At(40) fired at %v", at)
	}
}

func BenchmarkTimerChurn(b *testing.B) {
	s := New()
	fn := func() {}
	for i := 0; i < b.N; i++ {
		tm := s.After(time.Duration(i%100), fn)
		if i%2 == 0 {
			tm.Stop()
		}
		if s.Pending() > 1024 {
			s.Step()
		}
	}
}

// Package trace provides lightweight structured event logging for protocol
// debugging and the example programs.
//
// Tracers are deliberately allocation-light: the Nop tracer compiles to
// nothing on the hot path, and the protocol engine checks for it before
// formatting. The Memory tracer retains a bounded ring of events for tests
// and post-mortem printing; the Writer tracer streams human-readable lines.
package trace

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/topology"
)

// Event is one traced protocol occurrence.
type Event struct {
	At     time.Duration
	Node   topology.NodeID
	Kind   string
	Detail string
}

// String formats the event as a single log line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10.3fms node=%-4d %-12s %s",
		float64(e.At)/float64(time.Millisecond), e.Node, e.Kind, e.Detail)
	return b.String()
}

// Tracer receives protocol events. Implementations must be cheap; the
// simulator may emit millions of events.
type Tracer interface {
	// Enabled reports whether events will be recorded; callers should skip
	// detail formatting when it returns false.
	Enabled() bool
	// Emit records one event.
	Emit(e Event)
}

// Nop is a Tracer that discards everything.
type Nop struct{}

// Enabled implements Tracer (always false).
func (Nop) Enabled() bool { return false }

// Emit implements Tracer (no-op).
func (Nop) Emit(Event) {}

var _ Tracer = Nop{}

// Memory retains the most recent Cap events in memory. The zero value is
// unbounded; set Cap to bound retention. Memory is not safe for concurrent
// use.
type Memory struct {
	Cap    int
	events []Event
	start  int // ring start when bounded and full
	full   bool
}

var _ Tracer = (*Memory)(nil)

// Enabled implements Tracer (always true).
func (m *Memory) Enabled() bool { return true }

// Emit implements Tracer.
func (m *Memory) Emit(e Event) {
	if m.Cap <= 0 {
		m.events = append(m.events, e)
		return
	}
	if len(m.events) < m.Cap {
		m.events = append(m.events, e)
		return
	}
	m.events[m.start] = e
	m.start = (m.start + 1) % m.Cap
	m.full = true
}

// Events returns the retained events in chronological order.
func (m *Memory) Events() []Event {
	if !m.full {
		out := make([]Event, len(m.events))
		copy(out, m.events)
		return out
	}
	out := make([]Event, 0, len(m.events))
	out = append(out, m.events[m.start:]...)
	out = append(out, m.events[:m.start]...)
	return out
}

// Count returns the number of retained events.
func (m *Memory) Count() int { return len(m.events) }

// Filter returns retained events whose Kind equals kind.
func (m *Memory) Filter(kind string) []Event {
	var out []Event
	for _, e := range m.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Writer streams formatted events to an io.Writer as they are emitted.
type Writer struct {
	W io.Writer
}

var _ Tracer = (*Writer)(nil)

// Enabled implements Tracer (always true).
func (w *Writer) Enabled() bool { return true }

// Emit implements Tracer.
func (w *Writer) Emit(e Event) {
	fmt.Fprintln(w.W, e.String())
}

package trace

import (
	"strings"
	"testing"
	"time"
)

func TestNop(t *testing.T) {
	var tr Tracer = Nop{}
	if tr.Enabled() {
		t.Fatal("Nop.Enabled() = true")
	}
	tr.Emit(Event{}) // must not panic
}

func TestMemoryUnbounded(t *testing.T) {
	var m Memory
	if !m.Enabled() {
		t.Fatal("Memory.Enabled() = false")
	}
	for i := 0; i < 10; i++ {
		m.Emit(Event{At: time.Duration(i), Kind: "k"})
	}
	evs := m.Events()
	if len(evs) != 10 {
		t.Fatalf("retained %d", len(evs))
	}
	for i, e := range evs {
		if e.At != time.Duration(i) {
			t.Fatalf("order broken: %v", evs)
		}
	}
}

func TestMemoryRing(t *testing.T) {
	m := Memory{Cap: 3}
	for i := 0; i < 7; i++ {
		m.Emit(Event{At: time.Duration(i)})
	}
	evs := m.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	for i, want := range []time.Duration{4, 5, 6} {
		if evs[i].At != want {
			t.Fatalf("ring order: %v", evs)
		}
	}
	if m.Count() != 3 {
		t.Fatalf("Count = %d", m.Count())
	}
}

func TestMemoryFilter(t *testing.T) {
	var m Memory
	m.Emit(Event{Kind: "a"})
	m.Emit(Event{Kind: "b"})
	m.Emit(Event{Kind: "a"})
	if got := len(m.Filter("a")); got != 2 {
		t.Fatalf("Filter(a) = %d", got)
	}
	if got := len(m.Filter("zz")); got != 0 {
		t.Fatalf("Filter(zz) = %d", got)
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 1500 * time.Microsecond, Node: 7, Kind: "RECV", Detail: "id=0:3"}
	s := e.String()
	for _, want := range []string{"1.500ms", "node=7", "RECV", "id=0:3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string %q missing %q", s, want)
		}
	}
}

func TestWriterTracer(t *testing.T) {
	var sb strings.Builder
	w := &Writer{W: &sb}
	if !w.Enabled() {
		t.Fatal("Writer.Enabled() = false")
	}
	w.Emit(Event{Kind: "X", Detail: "d"})
	w.Emit(Event{Kind: "Y"})
	out := sb.String()
	if strings.Count(out, "\n") != 2 || !strings.Contains(out, "X") || !strings.Contains(out, "Y") {
		t.Fatalf("writer output %q", out)
	}
}

package exp

import (
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestSweepExpansionWorkloadAxisAppends pins the workload axis contract:
// the legacy single-sender family expands first and is cell-for-cell the
// workload-free matrix; each multi-client family appends after it as one
// whole block, outermost of every other axis (including protocols).
func TestSweepExpansionWorkloadAxisAppends(t *testing.T) {
	legacy := Sweep{
		Regions:   [][]int{{8}, {6, 6}},
		Losses:    []float64{0.05, 0.2},
		Policies:  []string{"two-phase", "fixed"},
		Protocols: []string{"rrmp", "rmtp"},
	}
	augmented := legacy
	wl := &workload.Spec{Clients: 4, Msgs: 16, Arrival: workload.ArrivalPoisson, Gap: 50 * time.Millisecond}
	augmented.Workloads = []*workload.Spec{nil, wl}

	base := legacy.Expand()
	cells := augmented.Expand()
	if len(cells) != 2*len(base) {
		t.Fatalf("augmented sweep has %d cells, want %d", len(cells), 2*len(base))
	}
	for i, want := range base {
		if cells[i].Name() != want.Name() {
			t.Fatalf("legacy cell %d moved: %q != %q", i, cells[i].Name(), want.Name())
		}
		if cells[i].Workload != nil {
			t.Fatalf("legacy cell %d carries a workload: %+v", i, cells[i])
		}
	}
	for i, c := range cells[len(base):] {
		if c.Workload != wl {
			t.Fatalf("workload cell %d lacks the spec: %+v", i, c)
		}
		if !strings.Contains(c.Name(), " wl=poisson:c4:m16") {
			t.Fatalf("workload cell name %q lacks the wl token", c.Name())
		}
		// The workload axis wraps the protocol axis: within the family the
		// rrmp block leads and the rmtp block follows, same as the base.
		if got, want := c.Protocol, base[i].Protocol; got != want {
			t.Fatalf("workload cell %d protocol %q, want %q (axis must wrap protocols)", i, got, want)
		}
	}
}

// TestScenarioNameWorkloadToken pins the name rule: single-sender cells
// never carry a wl token; workload cells always do, and the token follows
// the budget token and precedes the protocol token.
func TestScenarioNameWorkloadToken(t *testing.T) {
	base := Scenario{Regions: []int{10}, Policy: "two-phase"}
	if strings.Contains(base.Name(), "wl=") {
		t.Fatalf("workload-free name %q carries a wl token", base.Name())
	}
	sc := base
	sc.Protocol = "rmtp"
	sc.Policy = "server"
	sc.ByteBudget = 4096
	sc.Workload = VoDPrefixPush()
	want := "regions=10 loss=0.00 churn=0 budget=4096" +
		" wl=constant:c1:m60:fixed1024:vod0.25@1.5s proto=rmtp policy=server"
	if got := sc.Name(); got != want {
		t.Fatalf("name %q, want %q", got, want)
	}
}

// TestWorkloadSweepShape pins the standing workload family appended after
// DefaultSweep in BENCH_sweep.json: 3 workloads × (4 rrmp + 2 rmtp) cells,
// all hash-loss (shard-safe), none of them overlapping the legacy matrix.
func TestWorkloadSweepShape(t *testing.T) {
	sw := WorkloadSweep()
	cells := sw.Expand()
	if len(cells) != 18 {
		t.Fatalf("workload sweep has %d cells, want 18", len(cells))
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if c.Workload == nil {
			t.Fatalf("cell %q lacks a workload", c.Name())
		}
		if err := c.Workload.Validate(); err != nil {
			t.Fatalf("cell %q workload invalid: %v", c.Name(), err)
		}
		if c.LossMode != "hash" {
			t.Fatalf("cell %q not hash-loss", c.Name())
		}
		if seen[c.Name()] {
			t.Fatalf("duplicate cell name %q", c.Name())
		}
		seen[c.Name()] = true
	}
	// Three families in spec order, rrmp before rmtp within each.
	if cells[0].Workload != cells[5].Workload || cells[0].Workload == cells[6].Workload {
		t.Fatal("workload families not contiguous 6-cell blocks")
	}
	if cells[5].Protocol != "rmtp" || cells[0].Protocol != "" {
		t.Fatal("protocol axis order broken within workload family")
	}
}

// TestRunSweepsConcatenates pins RunSweeps: cells from later sweeps append
// after all cells of earlier ones, trial seeds pair across the whole
// concatenation, and RunSweep(sw) == RunSweeps([sw]).
func TestRunSweepsConcatenates(t *testing.T) {
	a := Sweep{Regions: [][]int{{4}}, Losses: []float64{0, 0.1}}
	b := Sweep{Regions: [][]int{{6}}, Losses: []float64{0.2}}
	seeds := map[string][]uint64{}
	run := func(sc Scenario, seed uint64) (map[string]float64, error) {
		seeds[sc.Name()] = append(seeds[sc.Name()], seed)
		return map[string]float64{"x": float64(seed)}, nil
	}
	rep, err := RunSweeps(Options{Trials: 2, Parallel: 1, BaseSeed: 7}, []Sweep{a, b}, run)
	if err != nil {
		t.Fatal(err)
	}
	wantNames := append(namesOf(a.Expand()), namesOf(b.Expand())...)
	if len(rep.Cells) != len(wantNames) {
		t.Fatalf("%d cells, want %d", len(rep.Cells), len(wantNames))
	}
	for i, c := range rep.Cells {
		if c.Name != wantNames[i] {
			t.Fatalf("cell %d is %q, want %q", i, c.Name, wantNames[i])
		}
	}
	var first []uint64
	for name, s := range seeds {
		if first == nil {
			first = s
		}
		if len(s) != 2 || s[0] != first[0] || s[1] != first[1] {
			t.Fatalf("cell %q seeds %v not paired with %v", name, s, first)
		}
	}
}

func namesOf(scs []Scenario) []string {
	out := make([]string, len(scs))
	for i, sc := range scs {
		out[i] = sc.Name()
	}
	return out
}

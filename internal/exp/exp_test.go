package exp

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	policyspec "repro/internal/policy"
	"repro/internal/rng"
)

// noisyTrial is a deterministic stand-in for a simulation: its metrics are
// a pure function of the seed, with enough work to let workers interleave.
func noisyTrial(_ int, seed uint64) (map[string]float64, error) {
	r := rng.New(seed)
	sum := 0.0
	for i := 0; i < 1000; i++ {
		sum += r.Float64()
	}
	return map[string]float64{
		"uniform_mean": sum / 1000,
		"first_draw":   rng.New(seed).Float64(),
	}, nil
}

func TestTrialSeedsDistinctAndStable(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 10000; i++ {
		s := TrialSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("TrialSeed(42, %d) == TrialSeed(42, %d) == %#x", i, prev, s)
		}
		seen[s] = i
	}
	if TrialSeed(42, 0) != TrialSeed(42, 0) {
		t.Fatal("TrialSeed is not stable")
	}
	if TrialSeed(42, 0) == TrialSeed(43, 0) {
		t.Fatal("TrialSeed ignores the base seed")
	}
}

// TestRunDeterministicAcrossParallelism is the harness's core guarantee:
// the same (BaseSeed, Trials) must aggregate to byte-identical JSON no
// matter how many workers execute the trials.
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	var blobs [][]byte
	for _, parallel := range []int{1, 3, 8} {
		agg, err := Run(Options{Trials: 32, Parallel: parallel, BaseSeed: 7}, noisyTrial)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(agg)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	for i := 1; i < len(blobs); i++ {
		if string(blobs[0]) != string(blobs[i]) {
			t.Fatalf("aggregate differs between parallel=1 and parallel run %d:\n%s\nvs\n%s",
				i, blobs[0], blobs[i])
		}
	}
}

func TestRunUsesWorkerPool(t *testing.T) {
	var mu sync.Mutex
	inFlight, peak := 0, 0
	_, err := Run(Options{Trials: 16, Parallel: 4, BaseSeed: 1},
		func(int, uint64) (map[string]float64, error) {
			mu.Lock()
			inFlight++
			if inFlight > peak {
				peak = inFlight
			}
			mu.Unlock()
			time.Sleep(2 * time.Millisecond)
			mu.Lock()
			inFlight--
			mu.Unlock()
			return map[string]float64{"x": 1}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if peak > 4 {
		t.Fatalf("worker pool exceeded Parallel=4: peak %d trials in flight", peak)
	}
}

func TestRunPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(Options{Trials: 8, Parallel: 4, BaseSeed: 1},
		func(trial int, _ uint64) (map[string]float64, error) {
			if trial == 3 {
				return nil, boom
			}
			return map[string]float64{"x": 1}, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("want wrapped boom, got %v", err)
	}
	if err == nil || !strings.Contains(err.Error(), "trial 3") {
		t.Fatalf("error should name the failing trial: %v", err)
	}
}

// TestCIWidthOnKnownDistribution checks the aggregation against Uniform[0,1):
// sample stddev ≈ 1/√12 and the CI95 half-width ≈ 1.96·sd/√n.
func TestCIWidthOnKnownDistribution(t *testing.T) {
	const trials = 1000
	agg, err := Run(Options{Trials: trials, Parallel: 8, BaseSeed: 99},
		func(_ int, seed uint64) (map[string]float64, error) {
			return map[string]float64{"u": rng.New(seed).Float64()}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	m, ok := agg.Metric("u")
	if !ok {
		t.Fatal("metric u missing")
	}
	if m.N != trials {
		t.Fatalf("N = %d, want %d", m.N, trials)
	}
	wantSD := 1 / math.Sqrt(12)
	if math.Abs(m.Stddev-wantSD) > 0.02 {
		t.Fatalf("stddev = %.4f, want ≈ %.4f", m.Stddev, wantSD)
	}
	wantHW := 1.96 * m.Stddev / math.Sqrt(trials)
	if math.Abs(m.CI95-wantHW) > 1e-9 {
		t.Fatalf("CI95 = %.6f, want %.6f for n=%d", m.CI95, wantHW, trials)
	}
	// The true mean must sit inside a 3×-CI band around the estimate
	// (a fixed-seed run either passes forever or fails forever).
	if math.Abs(m.Mean-0.5) > 3*m.CI95 {
		t.Fatalf("mean = %.4f implausibly far from 0.5 (CI95 %.4f)", m.Mean, m.CI95)
	}
	if m.Min < 0 || m.Max >= 1 {
		t.Fatalf("min/max %.4f/%.4f outside [0,1)", m.Min, m.Max)
	}
}

func TestAggregateSmallSampleUsesStudentT(t *testing.T) {
	agg := AggregateTrials([]map[string]float64{
		{"x": 1}, {"x": 2}, {"x": 3},
	})
	m, _ := agg.Metric("x")
	// n=3: sd = 1, CI95 = t(0.975, df=2)·1/√3 = 4.303/√3.
	want := 4.303 / math.Sqrt(3)
	if math.Abs(m.CI95-want) > 1e-9 {
		t.Fatalf("CI95 = %.6f, want %.6f", m.CI95, want)
	}
}

func TestSweepExpansionCartesian(t *testing.T) {
	sw := Sweep{
		Regions:  [][]int{{50}, {100}, {50, 50}},
		Losses:   []float64{0.05, 0.2},
		Churns:   []float64{0},
		Policies: []string{"two-phase", "fixed", "all"},
	}
	cells := sw.Expand()
	if len(cells) != 3*2*1*3 {
		t.Fatalf("expanded %d cells, want 18", len(cells))
	}
	// Policies vary fastest, regions slowest.
	if cells[0].Policy != "two-phase" || cells[1].Policy != "fixed" || cells[2].Policy != "all" {
		t.Fatalf("policy order wrong: %s, %s, %s", cells[0].Policy, cells[1].Policy, cells[2].Policy)
	}
	if cells[0].Loss != 0.05 || cells[3].Loss != 0.2 {
		t.Fatalf("loss order wrong: %v then %v", cells[0].Loss, cells[3].Loss)
	}
	if len(cells[17].Regions) != 2 {
		t.Fatalf("last cell should be the two-region vector, got %v", cells[17].Regions)
	}
	names := map[string]bool{}
	for _, c := range cells {
		if names[c.Name()] {
			t.Fatalf("duplicate cell name %q", c.Name())
		}
		names[c.Name()] = true
		if c.Msgs != 20 || c.Gap != 20*time.Millisecond || c.Horizon != 5*time.Second {
			t.Fatalf("workload defaults not applied: %+v", c)
		}
	}
	// Mutating one cell's region vector must not alias another expansion.
	cells[0].Regions[0] = 999
	if sw.Regions[0][0] != 50 {
		t.Fatal("Expand aliased the sweep's region slices")
	}
}

func TestSweepExpansionDefaults(t *testing.T) {
	cells := (Sweep{}).Expand()
	if len(cells) != 1 {
		t.Fatalf("zero sweep expanded to %d cells, want 1", len(cells))
	}
	c := cells[0]
	if c.Loss != 0 || c.Churn != 0 || c.Policy != "two-phase" || len(c.Regions) != 1 || c.Regions[0] != 100 {
		t.Fatalf("zero sweep baseline cell wrong: %+v", c)
	}
}

// TestRunSweepPairsSeedsAcrossCells verifies the common-random-numbers
// design: trial i sees the same seed in every cell.
func TestRunSweepPairsSeedsAcrossCells(t *testing.T) {
	sw := Sweep{Policies: []string{"two-phase", "fixed", "all"}}
	var mu sync.Mutex
	seeds := map[string]map[uint64]bool{} // policy -> set of seeds
	rep, err := RunSweep(Options{Trials: 5, Parallel: 4, BaseSeed: 3}, sw,
		func(sc Scenario, seed uint64) (map[string]float64, error) {
			mu.Lock()
			if seeds[sc.Policy] == nil {
				seeds[sc.Policy] = map[uint64]bool{}
			}
			seeds[sc.Policy][seed] = true
			mu.Unlock()
			return map[string]float64{"seed_lo": float64(seed % 1000)}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 3 || rep.Trials != 5 || rep.Schema != ReportSchema {
		t.Fatalf("report shape wrong: %d cells, %d trials, schema %q", len(rep.Cells), rep.Trials, rep.Schema)
	}
	want := fmt.Sprint(seeds["two-phase"])
	for _, p := range []string{"fixed", "all"} {
		if fmt.Sprint(seeds[p]) != want {
			t.Fatalf("cell %q saw different trial seeds than cell \"two-phase\"", p)
		}
	}
	for i, cell := range rep.Cells {
		if cell.Name != cell.Scenario.Name() {
			t.Fatalf("cell %d name %q != scenario name %q", i, cell.Name, cell.Scenario.Name())
		}
		if m, ok := cell.Aggregate.Metric("seed_lo"); !ok || m.N != 5 {
			t.Fatalf("cell %d aggregate missing seed_lo over 5 trials: %+v", i, cell.Aggregate)
		}
	}
}

func TestRunSweepErrorNamesCell(t *testing.T) {
	sw := Sweep{Policies: []string{"two-phase", "fixed"}}
	_, err := RunSweep(Options{Trials: 2, Parallel: 2, BaseSeed: 1}, sw,
		func(sc Scenario, _ uint64) (map[string]float64, error) {
			if sc.Policy == "fixed" {
				return nil, errors.New("kaput")
			}
			return map[string]float64{"x": 1}, nil
		})
	if err == nil || !strings.Contains(err.Error(), "policy=fixed") {
		t.Fatalf("error should name the failing cell: %v", err)
	}
}

// TestRunSweepValidatesPolicies verifies the expansion-time policy check:
// a typo'd policy axis fails before any trial runs, with the registry's
// known-kind menu in the error and policy.UnknownKindError reachable via
// errors.As.
func TestRunSweepValidatesPolicies(t *testing.T) {
	sw := Sweep{Policies: []string{"two-phase", "fixd"}}
	ran := false
	_, err := RunSweep(Options{Trials: 1, BaseSeed: 1}, sw,
		func(Scenario, uint64) (map[string]float64, error) {
			ran = true
			return map[string]float64{"x": 1}, nil
		})
	if err == nil {
		t.Fatal("sweep with unknown policy should fail")
	}
	if ran {
		t.Fatal("no trial should run when validation fails")
	}
	var unknown *policyspec.UnknownKindError
	if !errors.As(err, &unknown) || unknown.Kind != "fixd" {
		t.Fatalf("want UnknownKindError for %q, got: %v", "fixd", err)
	}
	if !strings.Contains(err.Error(), "two-phase") {
		t.Fatalf("error should list known policies: %v", err)
	}
	// Aliases and parameterized specs are valid axis values; rmtp-only
	// sweeps skip the check entirely (their axis collapses to "server").
	if err := (Sweep{Policies: []string{"fixed-hold", "adaptive:tmin=10ms,tmax=50ms"}}).Validate(); err != nil {
		t.Fatalf("aliased/parameterized policies should validate: %v", err)
	}
	if err := (Sweep{Protocols: []string{"rmtp"}, Policies: []string{"anything"}}).Validate(); err != nil {
		t.Fatalf("rmtp-only sweep should skip policy validation: %v", err)
	}
}

func TestSweepExpansionFaultAxes(t *testing.T) {
	sw := Sweep{
		Regions:      [][]int{{10}},
		Crashes:      []float64{0, 2},
		CrashRecover: time.Second,
		Partitions:   []time.Duration{0, 500 * time.Millisecond},
		PartitionAt:  2 * time.Second,
	}
	cells := sw.Expand()
	if len(cells) != 4 {
		t.Fatalf("expanded to %d cells, want 4 (2 crash × 2 partition)", len(cells))
	}
	for _, sc := range cells {
		if sc.Crash > 0 {
			if sc.CrashRecover != time.Second {
				t.Fatalf("crash cell %q lost CrashRecover", sc.Name())
			}
			if !strings.Contains(sc.Name(), "crash=2/1s") {
				t.Fatalf("crash cell name %q lacks crash token", sc.Name())
			}
		} else if sc.CrashRecover != 0 {
			t.Fatalf("crash-free cell %q carries CrashRecover", sc.Name())
		}
		if sc.PartitionDur > 0 {
			if sc.PartitionAt != 2*time.Second {
				t.Fatalf("partition cell %q PartitionAt=%v, want 2s", sc.Name(), sc.PartitionAt)
			}
			if !strings.Contains(sc.Name(), "part=2s/500ms") {
				t.Fatalf("partition cell name %q lacks part token", sc.Name())
			}
		} else if sc.PartitionAt != 0 {
			t.Fatalf("partition-free cell %q carries PartitionAt", sc.Name())
		}
	}
}

// Names of fault-free cells must not change when fault axes appear: the
// BENCH history relies on stable cell identities.
func TestScenarioNameStableWithoutFaults(t *testing.T) {
	sc := Scenario{Regions: []int{50}, Loss: 0.05, Churn: 0, Policy: "two-phase"}
	if got, want := sc.Name(), "regions=50 loss=0.05 churn=0 policy=two-phase"; got != want {
		t.Fatalf("Name() = %q, want %q", got, want)
	}
}

func TestScenarioNameFaultTokens(t *testing.T) {
	sc := Scenario{Regions: []int{30, 30}, Loss: 0.2, Churn: 1, Crash: 1,
		PartitionAt: 1250 * time.Millisecond, PartitionDur: time.Second, Policy: "fixed"}
	want := "regions=30+30 loss=0.20 churn=1 crash=1 part=1.25s/1s policy=fixed"
	if got := sc.Name(); got != want {
		t.Fatalf("Name() = %q, want %q", got, want)
	}
	sc.PartitionDur = 0
	if got := sc.Name(); !strings.Contains(got, "part=1.25s/open") {
		t.Fatalf("open partition name %q lacks /open token", got)
	}
}

func TestDefaultSweepHasFaultAxes(t *testing.T) {
	sw := DefaultSweep()
	if len(sw.Crashes) < 2 || len(sw.Partitions) < 2 {
		t.Fatalf("default sweep lacks fault axes: crashes=%v partitions=%v", sw.Crashes, sw.Partitions)
	}
	multi := false
	for _, r := range sw.Regions {
		if len(r) > 1 {
			multi = true
		}
	}
	if !multi {
		t.Fatal("default sweep has no multi-region vector for region-granular partitions")
	}
}

func TestScenarioNameByteAxisTokens(t *testing.T) {
	sc := Scenario{Regions: []int{50}, Loss: 0.05, Policy: "two-phase"}
	base := sc.Name()
	if strings.Contains(base, "payload=") || strings.Contains(base, "budget=") {
		t.Fatalf("byte-axis tokens leaked into a pre-axis name %q", base)
	}
	sc.PayloadBytes = 1024
	sc.ByteBudget = 8192
	want := "regions=50 loss=0.05 churn=0 payload=1024 budget=8192 policy=two-phase"
	if got := sc.Name(); got != want {
		t.Fatalf("Name() = %q, want %q", got, want)
	}
	sc.PayloadModel = "lognormal"
	if got := sc.Name(); !strings.Contains(got, "payload=lognormal:1024") {
		t.Fatalf("model name %q lacks payload=lognormal:1024", got)
	}
	sc.PayloadBytes = 0
	if got := sc.Name(); !strings.Contains(got, "payload=lognormal:256") {
		t.Fatalf("model-only name %q should show the historic 256 mean", got)
	}
}

// TestSweepExpansionByteAxesAppend pins the byte axes' expansion contract:
// with the default (0, 0) combination leading, the legacy matrix comes
// back cell for cell as a prefix and the payload×budget families append
// after it.
func TestSweepExpansionByteAxesAppend(t *testing.T) {
	legacy := Sweep{
		Regions:  [][]int{{8}, {6, 6}},
		Losses:   []float64{0.05, 0.2},
		Policies: []string{"two-phase", "fixed"},
	}
	augmented := legacy
	augmented.PayloadSizes = []int{0, 1024}
	augmented.Budgets = []int{0, 4096}

	base := legacy.Expand()
	cells := augmented.Expand()
	if len(cells) != 4*len(base) {
		t.Fatalf("augmented sweep has %d cells, want %d", len(cells), 4*len(base))
	}
	for i, want := range base {
		if cells[i].Name() != want.Name() {
			t.Fatalf("legacy cell %d moved: %q != %q", i, cells[i].Name(), want.Name())
		}
	}
	// The appended families walk budgets innermost, payloads outermost.
	wantCombos := []struct{ pb, bud int }{{0, 4096}, {1024, 0}, {1024, 4096}}
	for f, combo := range wantCombos {
		for i := 0; i < len(base); i++ {
			c := cells[(f+1)*len(base)+i]
			if c.PayloadBytes != combo.pb || c.ByteBudget != combo.bud {
				t.Fatalf("family %d cell %d has payload=%d budget=%d, want %+v",
					f, i, c.PayloadBytes, c.ByteBudget, combo)
			}
		}
	}
}

func TestDefaultSweepHasByteAxes(t *testing.T) {
	sw := DefaultSweep()
	if len(sw.PayloadSizes) < 2 || len(sw.Budgets) < 2 {
		t.Fatalf("default sweep lacks byte axes: payloads=%v budgets=%v", sw.PayloadSizes, sw.Budgets)
	}
	if sw.PayloadSizes[0] != 0 || sw.Budgets[0] != 0 {
		t.Fatal("default byte combination must lead so legacy cells keep their positions")
	}
	cells := sw.Expand()
	if len(cells) != 576 {
		t.Fatalf("default matrix has %d cells, want 576 (384 rrmp + 192 rmtp)", len(cells))
	}
	for i := 0; i < 96; i++ {
		if cells[i].PayloadBytes != 0 || cells[i].ByteBudget != 0 || cells[i].Protocol != "" {
			t.Fatalf("legacy block cell %d engages a new axis: %+v", i, cells[i])
		}
	}
	pressure := 0
	for _, c := range cells[96:384] {
		if c.Protocol != "" {
			t.Fatalf("rrmp block cell %q carries a protocol token", c.Name())
		}
		if c.ByteBudget > 0 && c.PayloadBytes > 0 {
			pressure++
		}
	}
	if pressure != 96 {
		t.Fatalf("default matrix has %d genuine-pressure rrmp cells, want 96", pressure)
	}
	for i, c := range cells[384:] {
		if c.Protocol != "rmtp" || c.Policy != "server" {
			t.Fatalf("appended cell %d is not an rmtp/server cell: %+v", 384+i, c)
		}
	}
}

// TestSweepExpansionProtocolAxisAppends pins the protocol axis contract:
// the RRMP family expands first and is cell-for-cell the protocol-free
// matrix, and the RMTP family appends after it with the policy axis
// collapsed to "server".
func TestSweepExpansionProtocolAxisAppends(t *testing.T) {
	legacy := Sweep{
		Regions:      [][]int{{8}, {6, 6}},
		Losses:       []float64{0.05, 0.2},
		Policies:     []string{"two-phase", "fixed"},
		PayloadSizes: []int{0, 512},
	}
	augmented := legacy
	augmented.Protocols = []string{"rrmp", "rmtp"}

	base := legacy.Expand()
	cells := augmented.Expand()
	wantRMTP := len(base) / 2 // policy axis collapses for the baseline
	if len(cells) != len(base)+wantRMTP {
		t.Fatalf("augmented sweep has %d cells, want %d", len(cells), len(base)+wantRMTP)
	}
	for i, want := range base {
		if cells[i].Name() != want.Name() {
			t.Fatalf("rrmp cell %d moved: %q != %q", i, cells[i].Name(), want.Name())
		}
		if cells[i].Protocol != "" {
			t.Fatalf("rrmp cell %d not normalized to the canonical empty protocol: %+v", i, cells[i])
		}
	}
	for i, c := range cells[len(base):] {
		if c.Protocol != "rmtp" {
			t.Fatalf("appended cell %d has protocol %q, want rmtp", i, c.Protocol)
		}
		if c.Policy != "server" {
			t.Fatalf("rmtp cell %d has policy %q, want server", i, c.Policy)
		}
		if !strings.Contains(c.Name(), " proto=rmtp policy=server") {
			t.Fatalf("rmtp cell name %q lacks the protocol token", c.Name())
		}
	}
}

// TestScenarioNameProtocolToken pins the name rule: RRMP cells (empty or
// explicit) never carry a protocol token; rmtp cells always do.
func TestScenarioNameProtocolToken(t *testing.T) {
	sc := Scenario{Regions: []int{50}, Loss: 0.05, Policy: "two-phase"}
	base := sc.Name()
	sc.Protocol = "rrmp"
	if got := sc.Name(); got != base {
		t.Fatalf("explicit rrmp changed the name: %q != %q", got, base)
	}
	sc.Protocol = "rmtp"
	sc.Policy = "server"
	want := "regions=50 loss=0.05 churn=0 proto=rmtp policy=server"
	if got := sc.Name(); got != want {
		t.Fatalf("Name() = %q, want %q", got, want)
	}
}

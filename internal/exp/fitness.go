package exp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// FitnessWeights weight the four objectives of the sweep fitness score:
// delivery is a benefit (its weight adds), the other three are costs
// (their weights subtract after set-relative normalization). Weights are
// non-negative; a zero weight removes the objective.
type FitnessWeights struct {
	Delivery      float64 `json:"delivery"`
	ByteSeconds   float64 `json:"byte_seconds"`
	Unrecoverable float64 `json:"unrecoverable"`
	RecoveryMs    float64 `json:"recovery_ms"`
}

// DefaultFitnessWeights returns the standing weighting: delivery dominates
// (it is the protocol's reason to exist), unrecoverables cost half a
// delivery point at the set maximum, buffer byte-seconds and recovery
// latency a quarter each.
func DefaultFitnessWeights() FitnessWeights {
	return FitnessWeights{Delivery: 1, ByteSeconds: 0.25, Unrecoverable: 0.5, RecoveryMs: 0.25}
}

// ParseFitnessWeights parses a "key=val,..." weight spec with keys
// delivery, bytesec, unrec and recovery (all optional; omitted keys keep
// their default weight). The empty string returns the defaults.
func ParseFitnessWeights(s string) (FitnessWeights, error) {
	w := DefaultFitnessWeights()
	if strings.TrimSpace(s) == "" {
		return w, nil
	}
	for _, kv := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return FitnessWeights{}, fmt.Errorf("exp: bad fitness weight %q (want key=val)", kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 {
			return FitnessWeights{}, fmt.Errorf("exp: fitness weight %s=%q: want a non-negative number", key, val)
		}
		switch key {
		case "delivery":
			w.Delivery = f
		case "bytesec":
			w.ByteSeconds = f
		case "unrec":
			w.Unrecoverable = f
		case "recovery":
			w.RecoveryMs = f
		default:
			return FitnessWeights{}, fmt.Errorf("exp: unknown fitness weight %q (known: delivery, bytesec, unrec, recovery)", key)
		}
	}
	return w, nil
}

// FitnessKeys names the report metrics each objective reads. The caller
// supplies them (internal/runner passes its registered key constants), so
// this package stays free of metric-name literals and protocol coupling.
type FitnessKeys struct {
	Delivery      string
	ByteSeconds   string
	Unrecoverable string
	RecoveryMs    string
}

// FitnessInput is one scored candidate's raw objective values.
type FitnessInput struct {
	Name          string
	Delivery      float64
	ByteSeconds   float64
	Unrecoverable float64
	RecoveryMs    float64
}

// FitnessRow is one candidate's score next to the raw values it came from.
type FitnessRow struct {
	Name          string  `json:"name"`
	Score         float64 `json:"score"`
	Delivery      float64 `json:"delivery"`
	ByteSeconds   float64 `json:"byte_seconds"`
	Unrecoverable float64 `json:"unrecoverable"`
	RecoveryMs    float64 `json:"recovery_ms"`
}

// Fitness scores the candidates against each other:
//
//	score = w.Delivery·delivery − w.ByteSeconds·cost(byteSeconds)
//	        − w.Unrecoverable·cost(unrecoverable) − w.RecoveryMs·cost(recoveryMs)
//
// where cost(x) = x / max(x over the compared set), or 0 when the set
// maximum is 0 (no candidate pays the cost). Delivery is used raw — it is
// already a ratio in [0, 1]. The normalization makes the score
// set-relative by design: it ranks candidates within one comparison
// (policies over the same cells), not across reports. Rows return ranked,
// best score first, ties broken by name, so output order is deterministic.
func Fitness(rows []FitnessInput, w FitnessWeights) []FitnessRow {
	var maxBytes, maxUnrec, maxRec float64
	for _, r := range rows {
		maxBytes = max(maxBytes, r.ByteSeconds)
		maxUnrec = max(maxUnrec, r.Unrecoverable)
		maxRec = max(maxRec, r.RecoveryMs)
	}
	cost := func(v, maxV float64) float64 {
		if maxV <= 0 {
			return 0
		}
		return v / maxV
	}
	out := make([]FitnessRow, len(rows))
	for i, r := range rows {
		out[i] = FitnessRow{
			Name:          r.Name,
			Delivery:      r.Delivery,
			ByteSeconds:   r.ByteSeconds,
			Unrecoverable: r.Unrecoverable,
			RecoveryMs:    r.RecoveryMs,
			Score: w.Delivery*r.Delivery -
				w.ByteSeconds*cost(r.ByteSeconds, maxBytes) -
				w.Unrecoverable*cost(r.Unrecoverable, maxUnrec) -
				w.RecoveryMs*cost(r.RecoveryMs, maxRec),
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// FitnessFromCells reads each cell's objective means by the given keys (a
// metric a cell never reported contributes 0) and scores the cells
// against each other. Compare like with like: the normalization spans
// every cell passed in, so scoring a whole heterogeneous report ranks
// cells against the report-wide maxima, while scoring one family ranks
// within that family.
func FitnessFromCells(cells []Cell, keys FitnessKeys, w FitnessWeights) []FitnessRow {
	rows := make([]FitnessInput, len(cells))
	mean := func(c Cell, key string) float64 {
		m, ok := c.Aggregate.Metric(key)
		if !ok {
			return 0
		}
		return m.Mean
	}
	for i, c := range cells {
		rows[i] = FitnessInput{
			Name:          c.Name,
			Delivery:      mean(c, keys.Delivery),
			ByteSeconds:   mean(c, keys.ByteSeconds),
			Unrecoverable: mean(c, keys.Unrecoverable),
			RecoveryMs:    mean(c, keys.RecoveryMs),
		}
	}
	return Fitness(rows, w)
}

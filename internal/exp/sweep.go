package exp

import (
	"fmt"
	"strings"
	"time"

	policyspec "repro/internal/policy"
	"repro/internal/workload"
)

// TreeShape describes a balanced multi-level recovery hierarchy: Levels
// levels of regions, every inner region with Branch children, and Members
// total group members spread evenly across the regions (remainder to the
// regions nearest the root). It is the topology axis the scale experiments
// sweep: hierarchy depth and fan-out dominate repair cost in deep trees, so
// cells are named by (members, depth, branch) rather than region vectors.
type TreeShape struct {
	Branch  int `json:"branch"`
	Levels  int `json:"levels"`
	Members int `json:"members"`
}

// Token returns the shape's stable name token, e.g. "tree:b4d3m1000".
func (t TreeShape) Token() string {
	return fmt.Sprintf("tree:b%dd%dm%d", t.Branch, t.Levels, t.Members)
}

// Scenario is one fully specified cell of a sweep: protocol, topology,
// fault model, churn, buffering policy, and workload. Durations marshal as
// nanoseconds.
type Scenario struct {
	// Protocol selects the recovery protocol the cell runs: "" or "rrmp"
	// is the paper's RRMP engine (the historic behaviour, omitted from
	// JSON so pre-axis cells keep their bytes); "rmtp" is the tree-based
	// repair-server baseline (§1, §6), driven through the identical
	// workload, fault and byte-budget machinery.
	Protocol string `json:"protocol,omitempty"`
	// Regions are the region sizes (chain hierarchy unless Star).
	Regions []int `json:"regions"`
	// Star attaches every region after the first directly to the sender's
	// region (the paper's Figure 1 shape).
	Star bool `json:"star,omitempty"`
	// Tree, when non-nil, selects a balanced multi-level hierarchy instead
	// of the Regions vector (which is then ignored).
	Tree *TreeShape `json:"tree,omitempty"`
	// Loss is the independent DATA loss probability (recovery traffic stays
	// lossless, as in §4).
	Loss float64 `json:"loss"`
	// LossMode selects how loss draws are streamed: "" is the legacy model
	// (one shared rng consumed in global send order — deterministic, but
	// only on a single event loop), "hash" draws per-sender counter-hash
	// streams (netsim.HashLoss), which shard loops reproduce exactly and
	// so can run parallel. The mode is part of the cell's identity (it
	// changes which packets drop), hence serialized; legacy cells omit it.
	LossMode string `json:"loss_mode,omitempty"`
	// Burst switches to a Gilbert–Elliott burst channel at roughly Loss.
	Burst bool `json:"burst,omitempty"`
	// Churn is the expected number of graceful leaves per second, drawn as
	// a Poisson process over non-sender members (§3.2's handoff path).
	Churn float64 `json:"churn"`
	// Crash is the expected number of crash faults per second, drawn as an
	// independent Poisson process over non-sender members. Crashed members
	// stop without handoff and their traffic vanishes, forcing §3.3's
	// search path (and the failure detector) to carry recovery.
	Crash float64 `json:"crash,omitempty"`
	// CrashRecover, when positive, brings each crashed member back after
	// this downtime with its protocol state intact; it then re-recovers
	// every gap it missed. Zero means crash-stop: the member never returns.
	CrashRecover time.Duration `json:"crash_recover_ns,omitempty"`
	// PartitionAt, when positive, splits the group into two halves at that
	// instant (along region boundaries when there are multiple regions;
	// otherwise down the middle of the member list) and drops every packet
	// crossing the cut.
	PartitionAt time.Duration `json:"partition_at_ns,omitempty"`
	// PartitionDur is how long the partition lasts before a deterministic
	// heal event reconnects the halves. Zero with PartitionAt set means
	// the partition never heals within the run.
	PartitionDur time.Duration `json:"partition_dur_ns,omitempty"`
	// Policy is the buffering policy spec — a canonical registry kind
	// (two-phase|fixed|all|hash|adaptive), a historic alias, or a
	// parameterized spec like "adaptive:tmin=20ms,tmax=200ms" (see
	// internal/policy). RMTP cells carry the placeholder "server".
	Policy string `json:"policy"`
	// FixedHold is the retention for Policy "fixed" (default 500 ms).
	FixedHold time.Duration `json:"fixed_hold_ns,omitempty"`
	// C, Lambda and RepairBackoff override the corresponding protocol
	// parameters when positive (zero keeps the paper's §4 defaults).
	C             float64       `json:"c,omitempty"`
	Lambda        float64       `json:"lambda,omitempty"`
	RepairBackoff time.Duration `json:"repair_backoff_ns,omitempty"`
	// Msgs, Gap and Horizon define the publish workload and run length.
	Msgs    int           `json:"msgs"`
	Gap     time.Duration `json:"gap_ns"`
	Horizon time.Duration `json:"horizon_ns"`
	// PayloadBytes is the per-message payload size in bytes (the mean,
	// under a randomized PayloadModel). Zero keeps the historic fixed
	// 256-byte payload every pre-axis experiment published.
	PayloadBytes int `json:"payload_bytes,omitempty"`
	// PayloadModel selects the payload-size model ("fixed" when empty;
	// "uniform" and "lognormal" draw per-message sizes around
	// PayloadBytes — see internal/workload's size models).
	PayloadModel string `json:"payload_model,omitempty"`
	// ByteBudget caps every member's buffer at this many payload bytes
	// (rrmp.Params.ByteBudget): stores past the cap displace older
	// entries, short-term first. Zero means unlimited.
	ByteBudget int `json:"byte_budget,omitempty"`
	// Workload, when non-nil, replaces the single-sender constant-gap
	// publish stream (Msgs/Gap/PayloadBytes/PayloadModel) with a
	// multi-client workload.Spec: N publishers, per-client arrival
	// processes, Zipf volume skew, and optionally the VoD late-join
	// regime. Nil keeps the historic shape, omitted from JSON so legacy
	// cells keep their bytes.
	Workload *workload.Spec `json:"workload,omitempty"`
	// Shards is an execution knob, not part of the cell's identity: run
	// the trial on up to this many region-sharded event loops (<= 1 means
	// the serial engine). Aggregates are byte-identical at any value — the
	// same contract as Options.Parallel — so it is excluded from JSON and
	// from Name.
	Shards int `json:"-"`
}

// Name returns the cell's stable human-readable identifier.
func (s Scenario) Name() string {
	var topo string
	if s.Tree != nil {
		topo = s.Tree.Token()
	} else {
		sizes := make([]string, len(s.Regions))
		for i, n := range s.Regions {
			sizes[i] = fmt.Sprint(n)
		}
		shape := ""
		if s.Star {
			shape = "star:"
		}
		topo = shape + strings.Join(sizes, "+")
	}
	lossTok := fmt.Sprintf("%.2f", s.Loss)
	if s.LossMode != "" {
		// The stream mode changes which packets drop, so it is part of the
		// cell's identity; legacy cells keep their bare numeric token.
		lossTok += ":" + s.LossMode
	}
	name := fmt.Sprintf("regions=%s loss=%s churn=%.2g", topo, lossTok, s.Churn)
	// Fault tokens appear only when the fault is present, so cells from
	// crash-free sweeps keep their historical names.
	if s.Crash > 0 {
		name += fmt.Sprintf(" crash=%.2g", s.Crash)
		if s.CrashRecover > 0 {
			name += fmt.Sprintf("/%v", s.CrashRecover)
		}
	}
	if s.PartitionAt > 0 {
		if s.PartitionDur > 0 {
			name += fmt.Sprintf(" part=%v/%v", s.PartitionAt, s.PartitionDur)
		} else {
			name += fmt.Sprintf(" part=%v/open", s.PartitionAt)
		}
	}
	// Payload and budget tokens appear only when the byte axes are
	// engaged, so cells from pre-axis sweeps keep their historical names.
	if s.PayloadBytes > 0 || s.PayloadModel != "" {
		bytes := s.PayloadBytes
		if bytes <= 0 {
			bytes = 256
		}
		if s.PayloadModel != "" && s.PayloadModel != "fixed" {
			name += fmt.Sprintf(" payload=%s:%d", s.PayloadModel, bytes)
		} else {
			name += fmt.Sprintf(" payload=%d", bytes)
		}
	}
	if s.ByteBudget > 0 {
		name += fmt.Sprintf(" budget=%d", s.ByteBudget)
	}
	// The workload token appears only for multi-client cells, so every
	// single-sender cell keeps its historical name.
	if s.Workload != nil {
		name += " wl=" + s.Workload.Token()
	}
	// The protocol token appears only for non-RRMP cells, so every
	// historical cell keeps its name.
	if s.Protocol != "" && s.Protocol != "rrmp" {
		name += " proto=" + s.Protocol
	}
	return name + " policy=" + s.Policy
}

// Sweep declares a scenario matrix. Expand takes the cartesian product of
// the four swept dimensions; the scalar fields apply to every cell. Empty
// dimensions default to a single baseline value, so a zero Sweep expands to
// one lossless, churn-free, two-phase cell.
type Sweep struct {
	// Regions lists the region-size vectors to sweep (default [[100]]).
	Regions [][]int `json:"regions,omitempty"`
	// Star applies to every Regions cell (chain hierarchy otherwise).
	Star bool `json:"star,omitempty"`
	// Trees lists balanced multi-level hierarchies to sweep in addition to
	// Regions. Tree cells expand after all Regions cells, so adding a tree
	// axis never moves legacy cell positions.
	Trees []TreeShape `json:"trees,omitempty"`
	// Losses lists DATA loss probabilities (default [0]).
	Losses []float64 `json:"losses,omitempty"`
	// Burst applies to every lossy cell.
	Burst bool `json:"burst,omitempty"`
	// Churns lists graceful-leave rates in members/second (default [0]).
	Churns []float64 `json:"churns,omitempty"`
	// Crashes lists crash-fault rates in members/second (default [0]).
	Crashes []float64 `json:"crashes,omitempty"`
	// CrashRecover applies to every crash cell: downtime before a crashed
	// member returns (0 = crash-stop, the default threat model).
	CrashRecover time.Duration `json:"crash_recover_ns,omitempty"`
	// Partitions lists partition episode durations (default [0] = none).
	// A cell with duration d > 0 partitions at PartitionAt and heals d
	// later.
	Partitions []time.Duration `json:"partitions_ns,omitempty"`
	// PartitionAt is when partition episodes begin (default Horizon/4).
	PartitionAt time.Duration `json:"partition_at_ns,omitempty"`
	// Policies lists buffering policies (default ["two-phase"]).
	Policies []string `json:"policies,omitempty"`
	// FixedHold is the retention used by "fixed" cells (default 500 ms).
	FixedHold time.Duration `json:"fixed_hold_ns,omitempty"`
	// C, Lambda and RepairBackoff apply to every cell when positive (zero
	// keeps the paper's §4 defaults).
	C             float64       `json:"c,omitempty"`
	Lambda        float64       `json:"lambda,omitempty"`
	RepairBackoff time.Duration `json:"repair_backoff_ns,omitempty"`
	// Msgs, Gap and Horizon define every cell's workload (defaults: 20
	// messages, 20 ms apart, 5 s horizon).
	Msgs    int           `json:"msgs,omitempty"`
	Gap     time.Duration `json:"gap_ns,omitempty"`
	Horizon time.Duration `json:"horizon_ns,omitempty"`
	// PayloadSizes lists payload sizes in bytes to sweep; 0 means the
	// historic fixed 256 (default [0]). Together with Budgets this is the
	// outermost expansion axis, defaults first, so appending non-default
	// sizes to a matrix never moves its legacy cells.
	PayloadSizes []int `json:"payload_sizes,omitempty"`
	// PayloadModel applies to every cell ("fixed" when empty; "uniform"
	// or "lognormal" draw per-message sizes around the cell's payload
	// size).
	PayloadModel string `json:"payload_model,omitempty"`
	// Budgets lists per-member buffer byte budgets to sweep; 0 means
	// unlimited (default [0]).
	Budgets []int `json:"budgets,omitempty"`
	// Protocols lists recovery protocols to sweep ("rrmp"/"" and "rmtp";
	// default [""] = RRMP only). The protocol axis is the outermost
	// expansion dimension with RRMP first, so adding "rmtp" to a matrix
	// appends a whole baseline family after every existing cell without
	// moving any of them. RMTP cells collapse the Policies axis to the
	// single value "server": the baseline's buffering discipline is the
	// repair server itself (buffer-all under ACK trimming), so RRMP
	// policy names do not apply.
	Protocols []string `json:"protocols,omitempty"`
	// LossMode applies to every lossy cell; see Scenario.LossMode.
	LossMode string `json:"loss_mode,omitempty"`
	// Workloads lists multi-client workload specs to sweep; nil entries
	// mean the legacy single-sender stream (default [nil]). The workload
	// axis is the OUTERMOST expansion dimension with the legacy shape
	// first, so adding workloads to a matrix appends whole families after
	// every existing cell without moving (or re-byting) any of them.
	Workloads []*workload.Spec `json:"workloads,omitempty"`
	// Shards applies to every cell; an execution knob excluded from JSON
	// and cell identity (see Scenario.Shards).
	Shards int `json:"-"`
}

// DefaultSweep returns the standing benchmark matrix rrmp-sim runs when no
// dimensions are given: 3 topologies × 2 loss rates × 2 churn rates × 2
// crash rates × 2 partition settings × 2 policies, crossed with the byte
// axes' payload {historic 256, 1 KB} × budget {unlimited, 8 KB} family,
// all of it run under both protocols. The RRMP family leads and the
// default (0, 0) byte combination leads within it, so the first 96 cells
// are the historical matrix unchanged, cells 97–384 are the byte-axis
// families (headroom, byte-visible, and genuine-pressure regimes), and
// the RMTP repair-server baseline appends after cell 384 (192 cells: the
// policy axis collapses to "server"). The two-region vector exists so
// partition cells cut along a region boundary. BENCH_sweep.json tracks
// this matrix across PRs — it is the repo's machine-tracked RRMP-vs-RMTP
// record across the full fault matrix.
func DefaultSweep() Sweep {
	return Sweep{
		Regions:      [][]int{{50}, {100}, {30, 30}},
		Losses:       []float64{0.05, 0.20},
		Churns:       []float64{0, 1},
		Crashes:      []float64{0, 1},
		Partitions:   []time.Duration{0, time.Second},
		Policies:     []string{"two-phase", "fixed"},
		PayloadSizes: []int{0, 1024},
		Budgets:      []int{0, 8 * 1024},
		Protocols:    []string{"rrmp", "rmtp"},
	}
}

// ScaleSweep returns the standing scale matrix (rrmp-sim -sweep-scale): a
// members × depth grid of balanced branch-4 trees under the default loss
// rate, with and without churn. BENCH_scale.json tracks this matrix — and
// with it the simulator's wall-clock and events/sec trajectory — across
// PRs. Levels counts region levels, so levels L is hierarchy depth L-1
// parent hops; the paper's deep-hierarchy regime starts at 3 levels.
func ScaleSweep() Sweep {
	return Sweep{
		Trees: []TreeShape{
			{Branch: 4, Levels: 2, Members: 1000},
			{Branch: 4, Levels: 3, Members: 1000},
			{Branch: 4, Levels: 4, Members: 1000},
			{Branch: 4, Levels: 2, Members: 2000},
			{Branch: 4, Levels: 3, Members: 2000},
			{Branch: 4, Levels: 4, Members: 2000},
			{Branch: 4, Levels: 2, Members: 5000},
			{Branch: 4, Levels: 3, Members: 5000},
			{Branch: 4, Levels: 4, Members: 5000},
		},
		Losses:   []float64{0.05},
		Churns:   []float64{0, 1},
		Policies: []string{"two-phase"},
	}
}

// ScaleSweepXL returns the extra-large scale rows appended after ScaleSweep
// in BENCH_scale.json: 10k members on the branch-4 shape and 100k members
// on a branch-8 4-level tree (both hierarchy depth 3 — the branch widens at
// 100k so per-region membership views stay bounded). XL cells use hash-mode
// loss so the sharded engine can run them parallel; they are new cells, so
// the mode changes no existing bytes.
//
// The XL workload is a trimmed burst probe — 10 messages over a 2 s horizon
// instead of the standing matrix's 20/5 s — sized so one 100k-member trial
// (~4.2M events) finishes inside the 10 s scale bound on a single core. The
// trim only shortens the tail: repair convergence at these shapes completes
// well inside the horizon, so delivery ratios match the full-length run to
// four digits (0.9998 measured on both).
func ScaleSweepXL() Sweep {
	return Sweep{
		Trees: []TreeShape{
			{Branch: 4, Levels: 4, Members: 10000},
			{Branch: 8, Levels: 4, Members: 100000},
		},
		Losses:   []float64{0.05},
		LossMode: "hash",
		Churns:   []float64{0, 1},
		Policies: []string{"two-phase"},
		Msgs:     10,
		Horizon:  2 * time.Second,
	}
}

// ScaleSweep1M returns the final rung of the scale ladder, appended after
// ScaleSweepXL in BENCH_scale.json: one million members on a branch-16
// 4-level tree (hierarchy depth 3, ~229 members per region across 4369
// regions). The row runs the XL burst probe under hash-mode Gilbert–
// Elliott loss (HashBurstLoss) — the loss regime of wireless multicast —
// proving both that burst cells run on the sharded engine and that
// cluster construction no longer dominates at this size. It is a separate
// sweep rather than a Burst flag on ScaleSweepXL because Burst is part of
// cell identity: flipping it on the XL sweep would re-byte the committed
// 10k/100k rows.
func ScaleSweep1M() Sweep {
	return Sweep{
		Trees: []TreeShape{
			{Branch: 16, Levels: 4, Members: 1000000},
		},
		Losses:   []float64{0.05},
		LossMode: "hash",
		Burst:    true,
		Churns:   []float64{0},
		Policies: []string{"two-phase"},
		Msgs:     10,
		Horizon:  2 * time.Second,
	}
}

// MultiClientWorkload is the workload family's many-publishers cell: 8
// concurrent Poisson publishers with Zipf-1.1 volume skew (the busiest
// client publishes ~25 of the 64 messages, the quietest ~3) and
// heavy-tailed lognormal payloads — the ServeGen-style shape where
// per-source reception state and byte accounting both matter.
func MultiClientWorkload() *workload.Spec {
	return &workload.Spec{
		Clients: 8, Msgs: 64,
		Arrival: workload.ArrivalPoisson, Gap: 100 * time.Millisecond,
		ZipfS:     1.1,
		SizeModel: workload.SizeLognormal, SizeMean: 512,
	}
}

// BurstyWorkload is the workload family's diurnal-burst cell: 4 publishers
// emitting 4-message bursts, with rate windows that run 4x hot for the
// first second and cool to half rate afterwards — the §2.1 burst regime
// whose tail losses session messages exist to detect, now phase-shifted
// across clients.
func BurstyWorkload() *workload.Spec {
	return &workload.Spec{
		Clients: 4, Msgs: 48,
		Arrival: workload.ArrivalBurst, Gap: 200 * time.Millisecond,
		BurstLen: 4, BurstGap: 5 * time.Millisecond,
		Windows: []workload.Window{
			{From: 0, To: time.Second, Factor: 4},
			{From: 2 * time.Second, To: 4 * time.Second, Factor: 0.5},
		},
	}
}

// VoDPrefixPush is the workload family's video-on-demand cell (after Nair
// & Jayarekha's prefix-push regime): one sender pushes a 60-message 1 KiB
// prefix over the first ~1.2 s, and a quarter of the members join late —
// between 1.5 s and 2.5 s — needing the entire prefix recovered. This is
// the regime the paper's two-phase long-term set was designed for: a
// fixed-hold policy has evicted the early prefix everywhere by the time
// the joiners arrive.
func VoDPrefixPush() *workload.Spec {
	return &workload.Spec{
		Clients: 1, Msgs: 60,
		Arrival: workload.ArrivalConstant, Gap: 20 * time.Millisecond,
		SizeModel: workload.SizeFixed, SizeMean: 1024,
		LateJoinFrac: 0.25, LateJoinAt: 1500 * time.Millisecond,
		LateJoinSpread: time.Second,
	}
}

// WorkloadSweep returns the standing multi-client workload matrix appended
// after DefaultSweep in BENCH_sweep.json: the three workload shapes
// (multi-client Zipf, diurnal bursts, VoD prefix-push) over a two-region
// topology, both loss rates, both buffering policies, and both protocols.
// Hash-mode loss keeps every rrmp cell shard-safe — the whole family runs
// parallel. A separate sweep rather than more DefaultSweep axes so the
// committed 576-cell matrix keeps its bytes.
func WorkloadSweep() Sweep {
	return Sweep{
		Workloads: []*workload.Spec{MultiClientWorkload(), BurstyWorkload(), VoDPrefixPush()},
		Regions:   [][]int{{30, 30}},
		Losses:    []float64{0.05, 0.20},
		LossMode:  "hash",
		Policies:  []string{"two-phase", "fixed"},
		Protocols: []string{"rrmp", "rmtp"},
	}
}

// AdaptiveSweep returns the demand-aware policy family appended after
// WorkloadSweep in BENCH_sweep.json: the diurnal-burst workload — the
// regime whose hot windows concentrate request demand on a few sources —
// over a two-region topology at both loss rates, contrasting the adaptive
// policy against the two legacy retention disciplines it interpolates
// between (ablation A8 reads the same contrast at one loss rate). RRMP
// only: the adaptive contract has no meaning for the rmtp repair server.
// A separate sweep so the committed 594-cell matrix keeps its bytes.
func AdaptiveSweep() Sweep {
	return Sweep{
		Workloads: []*workload.Spec{BurstyWorkload()},
		Regions:   [][]int{{30, 30}},
		Losses:    []float64{0.05, 0.20},
		LossMode:  "hash",
		Policies:  []string{"two-phase", "fixed", "adaptive"},
	}
}

// Expand returns the cartesian product in a fixed order: the workload
// axis outermost (the legacy single-sender shape — nil — before any
// multi-client family), then the protocol
// axis (RRMP families before any "rmtp" baseline family), then
// payload sizes and byte budgets (so the default (0, 0) block — when
// present — reproduces the pre-axis matrix cell for cell before any
// byte-axis family follows), then the topology axis (all Regions vectors,
// then all Trees), then losses, churns, and policies innermost. "rrmp" is
// normalized to the canonical empty Protocol, and RMTP cells replace the
// policy dimension with the single value "server" (see Sweep.Protocols).
// The order is part of the report schema — cells keep their position
// across runs.
func (sw Sweep) Expand() []Scenario {
	regions := sw.Regions
	if len(regions) == 0 && len(sw.Trees) == 0 {
		regions = [][]int{{100}}
	}
	losses := sw.Losses
	if len(losses) == 0 {
		losses = []float64{0}
	}
	churns := sw.Churns
	if len(churns) == 0 {
		churns = []float64{0}
	}
	crashes := sw.Crashes
	if len(crashes) == 0 {
		crashes = []float64{0}
	}
	partitions := sw.Partitions
	if len(partitions) == 0 {
		partitions = []time.Duration{0}
	}
	// Policy tokens canonicalize through the registry, so a historic alias
	// ("fixed-hold") and its canonical kind ("fixed") name the same cell.
	// Committed matrices already use canonical tokens; their bytes do not
	// change.
	policies := make([]string, len(sw.Policies))
	for i, p := range sw.Policies {
		policies[i] = policyspec.Canonical(p)
	}
	if len(policies) == 0 {
		policies = []string{policyspec.KindTwoPhase}
	}
	msgs := sw.Msgs
	if msgs <= 0 {
		msgs = 20
	}
	gap := sw.Gap
	if gap <= 0 {
		gap = 20 * time.Millisecond
	}
	horizon := sw.Horizon
	if horizon <= 0 {
		horizon = 5 * time.Second
	}
	hold := sw.FixedHold
	if hold <= 0 {
		hold = 500 * time.Millisecond
	}

	partAt := sw.PartitionAt
	if partAt <= 0 {
		partAt = horizon / 4
	}
	payloads := sw.PayloadSizes
	if len(payloads) == 0 {
		payloads = []int{0}
	}
	budgets := sw.Budgets
	if len(budgets) == 0 {
		budgets = []int{0}
	}
	protocols := sw.Protocols
	if len(protocols) == 0 {
		protocols = []string{""}
	}
	workloads := sw.Workloads
	if len(workloads) == 0 {
		workloads = []*workload.Spec{nil}
	}

	type topoCell struct {
		regions []int
		tree    *TreeShape
	}
	topos := make([]topoCell, 0, len(regions)+len(sw.Trees))
	for _, r := range regions {
		topos = append(topos, topoCell{regions: r})
	}
	for i := range sw.Trees {
		t := sw.Trees[i]
		topos = append(topos, topoCell{tree: &t})
	}

	out := make([]Scenario, 0, len(workloads)*len(protocols)*len(payloads)*len(budgets)*
		len(topos)*len(losses)*len(churns)*len(crashes)*len(partitions)*len(policies))
	for _, wl := range workloads {
		for _, proto := range protocols {
			if proto == "rrmp" {
				proto = "" // canonical default, so RRMP cells keep their JSON bytes
			}
			pols := policies
			if proto == "rmtp" {
				// The baseline's buffering discipline is the repair server
				// itself; RRMP policy names do not apply, so the axis
				// collapses to one cell per combination.
				pols = []string{"server"}
			}
			for _, pb := range payloads {
				for _, bud := range budgets {
					for _, tc := range topos {
						for _, l := range losses {
							for _, ch := range churns {
								for _, cr := range crashes {
									for _, pd := range partitions {
										for _, p := range pols {
											sc := Scenario{
												Protocol:      proto,
												Regions:       append([]int(nil), tc.regions...),
												Star:          sw.Star && tc.tree == nil,
												Tree:          tc.tree,
												Loss:          l,
												Burst:         sw.Burst,
												Shards:        sw.Shards,
												Churn:         ch,
												Crash:         cr,
												Policy:        p,
												FixedHold:     hold,
												C:             sw.C,
												Lambda:        sw.Lambda,
												RepairBackoff: sw.RepairBackoff,
												Msgs:          msgs,
												Gap:           gap,
												Horizon:       horizon,
												PayloadBytes:  pb,
												PayloadModel:  sw.PayloadModel,
												ByteBudget:    bud,
												Workload:      wl,
											}
											if l > 0 {
												sc.LossMode = sw.LossMode
											}
											if cr > 0 {
												sc.CrashRecover = sw.CrashRecover
											}
											if pd > 0 {
												sc.PartitionAt = partAt
												sc.PartitionDur = pd
											}
											out = append(out, sc)
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Validate checks the sweep's policy axis against the registry before any
// cell runs, so a typo fails at expansion time with the known-policy menu
// (policy.UnknownKindError via errors.As) instead of deep inside the
// runner on some mid-sweep trial. Sweeps whose protocols are all "rmtp"
// skip the check: their policy axis collapses to the "server" placeholder.
func (sw Sweep) Validate() error {
	protocols := sw.Protocols
	if len(protocols) == 0 {
		protocols = []string{""}
	}
	rrmpFamily := false
	for _, p := range protocols {
		if p == "" || p == "rrmp" {
			rrmpFamily = true
		}
	}
	if !rrmpFamily {
		return nil
	}
	policies := sw.Policies
	if len(policies) == 0 {
		policies = []string{policyspec.KindTwoPhase}
	}
	for _, p := range policies {
		if _, err := policyspec.Parse(p); err != nil {
			return fmt.Errorf("exp: sweep policy %q: %w", p, err)
		}
	}
	return nil
}

// ScenarioFunc runs one seeded trial of one scenario and returns its
// metrics. internal/runner provides the canonical implementation.
type ScenarioFunc func(sc Scenario, seed uint64) (map[string]float64, error)

// Cell is one aggregated sweep cell.
type Cell struct {
	Name      string    `json:"name"`
	Scenario  Scenario  `json:"scenario"`
	Aggregate Aggregate `json:"aggregate"`
}

// ReportSchema identifies the sweep report's JSON layout; bump it on any
// incompatible change so downstream trackers can dispatch.
const ReportSchema = "rrmp-sweep/v1"

// Report is a whole sweep's output. It deliberately contains nothing
// scheduling- or wall-clock-dependent: the same (sweep, trials, base seed)
// marshal to byte-identical JSON at any parallelism.
type Report struct {
	Schema   string `json:"schema"`
	BaseSeed uint64 `json:"base_seed"`
	Trials   int    `json:"trials"`
	// ExecNote records execution-only caveats — cells that ignored the
	// requested -shards width and ran serial (legacy-stream loss, rmtp).
	// Empty (and omitted, so default-shards reports keep their bytes)
	// unless shards were requested and some cell fell back. Execution
	// metadata, not cell identity: aggregates are unaffected either way.
	ExecNote string `json:"exec_note,omitempty"`
	Cells    []Cell `json:"cells"`
}

// Cell returns the cell with the given name, if present.
func (r Report) Cell(name string) (Cell, bool) {
	for _, c := range r.Cells {
		if c.Name == name {
			return c, true
		}
	}
	return Cell{}, false
}

// RunSweep expands the sweep and runs every (cell, trial) pair through one
// worker pool, so a wide matrix with few trials parallelizes as well as a
// narrow one with many. Trial i uses the same seed in every cell — common
// random numbers, the paired design that lets per-cell differences be read
// as policy effects rather than draw luck.
func RunSweep(o Options, sw Sweep, run ScenarioFunc) (Report, error) {
	return RunSweeps(o, []Sweep{sw}, run)
}

// RunSweeps expands every sweep in order and runs the concatenated cell
// list through one shared worker pool — how BENCH_sweep.json gains new
// cell families without re-byting committed ones: each family is its own
// sweep, appended after the previous ones. The common-random-numbers
// pairing spans the whole concatenation (trial i uses one seed
// everywhere).
func RunSweeps(o Options, sweeps []Sweep, run ScenarioFunc) (Report, error) {
	o = o.normalized()
	var scenarios []Scenario
	for _, sw := range sweeps {
		if err := sw.Validate(); err != nil {
			return Report{}, err
		}
		scenarios = append(scenarios, sw.Expand()...)
	}
	results := make([][]map[string]float64, len(scenarios))
	for i := range results {
		results[i] = make([]map[string]float64, o.Trials)
	}
	err := runJobs(o.Parallel, len(scenarios)*o.Trials, func(j int) error {
		cell, trial := j/o.Trials, j%o.Trials
		seed := TrialSeed(o.BaseSeed, trial)
		m, err := run(scenarios[cell], seed)
		if err != nil {
			return fmt.Errorf("exp: cell %q trial %d (seed %#x): %w",
				scenarios[cell].Name(), trial, seed, err)
		}
		results[cell][trial] = m
		return nil
	})
	if err != nil {
		return Report{}, err
	}

	rep := Report{Schema: ReportSchema, BaseSeed: o.BaseSeed, Trials: o.Trials}
	for i, sc := range scenarios {
		rep.Cells = append(rep.Cells, Cell{
			Name:      sc.Name(),
			Scenario:  sc,
			Aggregate: AggregateTrials(results[i]),
		})
	}
	return rep, nil
}

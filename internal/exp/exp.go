// Package exp is the experiment harness: it runs N independently-seeded
// trials of any experiment across a bounded goroutine worker pool and
// aggregates the per-trial metrics into mean / stddev / 95%-CI summaries.
//
// Trials parallelize perfectly because every simulation in this repository
// is a self-contained deterministic object: a trial builds its own
// simulator, network and rng streams from its seed and shares no state with
// any other trial. The harness therefore guarantees a stronger property
// than mere thread safety: the aggregate of a run is a pure function of
// (BaseSeed, Trials) and is byte-identical no matter how many workers
// execute it. Per-trial results are written into a slice slot owned by the
// trial index and reduced in index order, so float accumulation order —
// and with it every mean, stddev and CI — never depends on goroutine
// scheduling.
//
// Scenario matrices (region layout × loss × churn × policy) are declared
// with the Sweep type in sweep.go and run through the same pool.
package exp

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/stats"
)

// TrialFunc runs one trial. trial is the dense trial index in [0, Trials);
// seed is the trial's root random seed (derived via TrialSeed). It returns
// named scalar metrics; nil maps are allowed (the trial then contributes to
// no metric, which side-channel collectors use).
type TrialFunc func(trial int, seed uint64) (map[string]float64, error)

// Options configure a multi-trial run.
type Options struct {
	// Trials is the number of independently seeded repetitions (min 1).
	Trials int
	// Parallel bounds the worker pool; <= 0 means GOMAXPROCS.
	Parallel int
	// BaseSeed roots the whole run. Trial i runs with TrialSeed(BaseSeed, i).
	BaseSeed uint64
}

// normalized returns o with defaults applied.
func (o Options) normalized() Options {
	if o.Trials < 1 {
		o.Trials = 1
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	return o
}

// TrialSeed derives the root seed for one trial from the run's base seed.
// It is a splitmix64 finalizer over (base, trial), so consecutive trial
// indices map to well-separated seeds and the mapping never depends on how
// many trials run or in what order.
func TrialSeed(base uint64, trial int) uint64 {
	x := base ^ (uint64(trial)+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// runJobs executes fn(0..n-1) on a pool of at most parallel goroutines and
// returns the error of the lowest-indexed failing job (so the reported
// failure is deterministic too). Jobs after a failure may be skipped.
func runJobs(parallel, n int, fn func(i int) error) error {
	if parallel > n {
		parallel = n
	}
	var (
		mu       sync.Mutex
		firstErr error
		errIdx   int
		next     int
		wg       sync.WaitGroup
	)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if firstErr != nil || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil || i < errIdx {
						firstErr, errIdx = err, i
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// RunTrials executes o.Trials seeded trials of fn across the worker pool
// and returns the per-trial metric maps in trial order.
func RunTrials(o Options, fn TrialFunc) ([]map[string]float64, error) {
	o = o.normalized()
	results := make([]map[string]float64, o.Trials)
	err := runJobs(o.Parallel, o.Trials, func(i int) error {
		m, err := fn(i, TrialSeed(o.BaseSeed, i))
		if err != nil {
			return fmt.Errorf("exp: trial %d (seed %#x): %w", i, TrialSeed(o.BaseSeed, i), err)
		}
		results[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// MetricSummary is one metric aggregated across trials. CI95 is the
// half-width of the 95% confidence interval for the mean (Student's t).
type MetricSummary struct {
	Name   string  `json:"name"`
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	CI95   float64 `json:"ci95"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Aggregate is the reduction of a multi-trial run: every metric any trial
// reported, summarized, sorted by name.
type Aggregate struct {
	Trials  int             `json:"trials"`
	Metrics []MetricSummary `json:"metrics"`
}

// Metric returns the summary for name, if present.
func (a Aggregate) Metric(name string) (MetricSummary, bool) {
	for _, m := range a.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return MetricSummary{}, false
}

// Summarize reduces samples (in the given order) to one MetricSummary.
// Every summary in a report — sweep cells and multi-trial ablation columns
// alike — goes through here, so the statistics conventions cannot drift.
func Summarize(name string, samples []float64) MetricSummary {
	var h stats.Histogram
	for _, v := range samples {
		h.Add(v)
	}
	return MetricSummary{
		Name:   name,
		N:      h.N(),
		Mean:   h.Mean(),
		Stddev: h.SampleStddev(),
		CI95:   h.CI95(),
		Min:    h.Min(),
		Max:    h.Max(),
	}
}

// AggregateTrials reduces per-trial metric maps. Samples are accumulated in
// trial order, so the result is independent of worker scheduling.
func AggregateTrials(trials []map[string]float64) Aggregate {
	names := map[string]bool{}
	for _, t := range trials {
		for k := range t {
			names[k] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for k := range names {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	agg := Aggregate{Trials: len(trials)}
	for _, name := range sorted {
		samples := make([]float64, 0, len(trials))
		for _, t := range trials {
			if v, ok := t[name]; ok {
				samples = append(samples, v)
			}
		}
		agg.Metrics = append(agg.Metrics, Summarize(name, samples))
	}
	return agg
}

// Run executes the trials and returns their aggregate.
func Run(o Options, fn TrialFunc) (Aggregate, error) {
	trials, err := RunTrials(o, fn)
	if err != nil {
		return Aggregate{}, err
	}
	return AggregateTrials(trials), nil
}

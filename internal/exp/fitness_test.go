package exp

import (
	"testing"
)

// TestParseFitnessWeights pins the weight grammar: empty → defaults,
// partial specs override only their keys, malformed specs error.
func TestParseFitnessWeights(t *testing.T) {
	w, err := ParseFitnessWeights("")
	if err != nil || w != DefaultFitnessWeights() {
		t.Fatalf("empty spec = %+v, %v; want defaults", w, err)
	}
	w, err = ParseFitnessWeights("bytesec=0.5, unrec=0")
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultFitnessWeights()
	want.ByteSeconds, want.Unrecoverable = 0.5, 0
	if w != want {
		t.Fatalf("partial spec = %+v, want %+v", w, want)
	}
	for _, bad := range []string{"delivery", "delivery=x", "delivery=-1", "bogus=1"} {
		if _, err := ParseFitnessWeights(bad); err == nil {
			t.Fatalf("ParseFitnessWeights(%q) accepted a malformed spec", bad)
		}
	}
}

// TestFitnessScoring pins the score formula and the ranking: delivery is
// raw, each cost normalizes against the set maximum, zero-cost objectives
// contribute nothing, and rows return best-first with name tie-breaks.
func TestFitnessScoring(t *testing.T) {
	w := FitnessWeights{Delivery: 1, ByteSeconds: 0.5, Unrecoverable: 0.25, RecoveryMs: 0.25}
	rows := Fitness([]FitnessInput{
		{Name: "cheap", Delivery: 0.9, ByteSeconds: 100, Unrecoverable: 0, RecoveryMs: 10},
		{Name: "greedy", Delivery: 1.0, ByteSeconds: 400, Unrecoverable: 0, RecoveryMs: 20},
	}, w)
	// cheap:  1·0.9 − 0.5·(100/400) − 0.25·0 − 0.25·(10/20) = 0.65
	// greedy: 1·1.0 − 0.5·1        − 0.25·0 − 0.25·1       = 0.25
	if rows[0].Name != "cheap" || rows[1].Name != "greedy" {
		t.Fatalf("ranking = %s, %s; want cheap first", rows[0].Name, rows[1].Name)
	}
	if rows[0].Score != 0.65 || rows[1].Score != 0.25 {
		t.Fatalf("scores = %v, %v; want 0.65, 0.25", rows[0].Score, rows[1].Score)
	}
	// Unrecoverable had max 0, so its weight never subtracted anywhere.
	// Ties rank by name ascending for deterministic output.
	tied := Fitness([]FitnessInput{
		{Name: "b", Delivery: 1}, {Name: "a", Delivery: 1},
	}, w)
	if tied[0].Name != "a" || tied[1].Name != "b" {
		t.Fatalf("tie order = %s, %s; want a, b", tied[0].Name, tied[1].Name)
	}
	if tied[0].Score != 1 {
		t.Fatalf("zero-cost score = %v, want pure delivery 1", tied[0].Score)
	}
}

// TestFitnessFromCells pins the metric extraction: objective values come
// from the named aggregate means, and a metric a cell never reported
// contributes zero rather than failing.
func TestFitnessFromCells(t *testing.T) {
	keys := FitnessKeys{
		Delivery: "delivery", ByteSeconds: "bytesec",
		Unrecoverable: "unrec", RecoveryMs: "recovery",
	}
	cells := []Cell{
		{Name: "full", Aggregate: Aggregate{Metrics: []MetricSummary{
			{Name: "delivery", Mean: 0.8},
			{Name: "bytesec", Mean: 200},
			{Name: "unrec", Mean: 2},
			{Name: "recovery", Mean: 5},
		}}},
		{Name: "sparse", Aggregate: Aggregate{Metrics: []MetricSummary{
			{Name: "delivery", Mean: 1.0},
		}}},
	}
	rows := FitnessFromCells(cells, keys, DefaultFitnessWeights())
	if len(rows) != 2 || rows[0].Name != "sparse" {
		t.Fatalf("rows = %+v; want sparse ranked first (it pays no cost)", rows)
	}
	if rows[0].Score != 1 {
		t.Fatalf("sparse score = %v, want 1 (absent metrics contribute 0)", rows[0].Score)
	}
	w := DefaultFitnessWeights()
	wantFull := w.Delivery*0.8 - w.ByteSeconds*1 - w.Unrecoverable*1 - w.RecoveryMs*1
	if rows[1].Score != wantFull {
		t.Fatalf("full score = %v, want %v", rows[1].Score, wantFull)
	}
}

// Package udptransport binds the RRMP protocol engine to real UDP sockets
// and the wall clock, demonstrating that the engine is not simulator-bound:
// the exact same Member code that runs under internal/sim drives real
// packets here.
//
// Each Node owns one UDP socket and a single executor goroutine. Network
// receives and timer callbacks are posted to the executor channel, so all
// protocol state remains single-threaded exactly as the engine requires —
// the same serialization the simulator provides by construction.
//
// IP-multicast groups are modeled as sender-side fan-out over the peer
// table, which keeps the package portable (loopback multicast is unreliable
// in containers and on some platforms); a production deployment would swap
// Broadcast for a multicast socket without touching the engine.
package udptransport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/topology"
	"repro/internal/wire"
)

// executorScheduler implements clock.Scheduler over the wall clock, posting
// every callback to the node's serializing executor.
type executorScheduler struct {
	start time.Time
	post  func(fn func())
}

// Now implements clock.Scheduler.
func (s *executorScheduler) Now() time.Duration { return time.Since(s.start) }

// After implements clock.Scheduler.
func (s *executorScheduler) After(d time.Duration, fn func()) clock.Timer {
	if d < 0 {
		d = 0
	}
	t := &realTimer{}
	// post drops the callback if the node has closed, under the node's
	// mutex — timers may fire at any moment, including during Close.
	t.timer = time.AfterFunc(d, func() { s.post(fn) })
	return t
}

// realTimer adapts time.Timer to clock.Timer.
type realTimer struct {
	timer *time.Timer
}

// Stop implements clock.Timer. A true return guarantees the callback has
// not been posted; a false return means it fired or was already stopped —
// the engine's callbacks all tolerate late firing by re-checking state.
func (t *realTimer) Stop() bool { return t.timer.Stop() }

var _ clock.Scheduler = (*executorScheduler)(nil)

// Config assembles a Node.
type Config struct {
	// Self is this node's id.
	Self topology.NodeID
	// Peers maps every group member to its UDP address (including Self,
	// whose entry is ignored for sends).
	Peers map[topology.NodeID]string
	// Listen is this node's UDP listen address (e.g. "127.0.0.1:0").
	Listen string
	// OnReceive is invoked on the executor goroutine for every decoded
	// message; bind it to rrmp.Member.Receive.
	OnReceive func(from topology.NodeID, msg wire.Message)
}

// Node is one real-network protocol endpoint. Create with Listen-style
// NewNode, wire an rrmp.Member against Scheduler() and the Transport
// methods, then Start.
type Node struct {
	self  topology.NodeID
	conn  *net.UDPConn
	peers map[topology.NodeID]*net.UDPAddr
	sched *executorScheduler

	exec      chan func()
	onReceive func(from topology.NodeID, msg wire.Message)

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// NewNode opens the socket and resolves all peers. The executor is not
// running until Start.
func NewNode(cfg Config) (*Node, error) {
	if cfg.OnReceive == nil {
		return nil, errors.New("udptransport: Config.OnReceive is required")
	}
	addr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("udptransport: resolving listen address: %w", err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udptransport: listening: %w", err)
	}
	peers := make(map[topology.NodeID]*net.UDPAddr, len(cfg.Peers))
	for id, a := range cfg.Peers {
		ua, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("udptransport: resolving peer %d (%q): %w", id, a, err)
		}
		peers[id] = ua
	}
	n := &Node{
		self:      cfg.Self,
		conn:      conn,
		peers:     peers,
		exec:      make(chan func(), 1024),
		onReceive: cfg.OnReceive,
	}
	n.sched = &executorScheduler{start: time.Now(), post: n.post}
	return n, nil
}

// Addr returns the bound UDP address (useful with ":0" listens).
func (n *Node) Addr() string { return n.conn.LocalAddr().String() }

// SetPeer installs or updates one peer address; call before Start (used
// when the fleet binds ephemeral ports and learns addresses afterwards).
func (n *Node) SetPeer(id topology.NodeID, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("udptransport: resolving peer %d: %w", id, err)
	}
	n.peers[id] = ua
	return nil
}

// Scheduler returns the wall-clock scheduler bound to this node's executor.
func (n *Node) Scheduler() clock.Scheduler { return n.sched }

// Start launches the executor and reader goroutines.
func (n *Node) Start() {
	n.wg.Add(2)
	go n.runExecutor()
	go n.runReader()
}

func (n *Node) runExecutor() {
	defer n.wg.Done()
	for fn := range n.exec {
		if fn == nil {
			return
		}
		fn()
	}
}

func (n *Node) runReader() {
	defer n.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		count, _, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		msg, err := wire.Unmarshal(buf[:count])
		if err != nil {
			continue // drop garbage, as a real endpoint must
		}
		n.post(func() { n.onReceive(msg.From, msg) })
	}
}

// post enqueues fn on the executor, dropping it if the node closed. The
// send happens under the mutex, so it cannot race a concurrent Close: once
// Close has set closed, no further callback enters the channel. The
// executor never takes this mutex, so a send blocked on a full buffer
// still drains.
func (n *Node) post(fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.exec <- fn
}

// Do runs fn on the executor and waits for it — the safe way to touch the
// member's state (publish, read metrics) from outside.
func (n *Node) Do(fn func()) {
	done := make(chan struct{})
	n.post(func() {
		fn()
		close(done)
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		// The executor is gone (node closed mid-call); give up rather
		// than deadlock the caller.
	}
}

// Send implements rrmp.Transport.
func (n *Node) Send(to topology.NodeID, msg wire.Message) {
	addr, ok := n.peers[to]
	if !ok {
		return
	}
	// Errors are deliberately dropped: UDP send failures are
	// indistinguishable from loss, which the protocol tolerates by design.
	_, _ = n.conn.WriteToUDP(msg.Marshal(), addr)
}

// Broadcast implements rrmp.Transport by fanning out to every known peer.
func (n *Node) Broadcast(msg wire.Message) {
	enc := msg.Marshal()
	for id, addr := range n.peers {
		if id == n.self {
			continue
		}
		_, _ = n.conn.WriteToUDP(enc, addr)
	}
}

// Close shuts the node down: the socket closes, the executor drains, and
// all goroutines exit before Close returns. Timers firing afterwards are
// dropped. The executor channel is deliberately never closed — late
// timers serialize against the closed flag instead, so no send can race a
// channel close.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()

	n.conn.Close()
	// Unblock the executor; pending callbacks before the nil are executed.
	n.exec <- nil
	n.wg.Wait()
}

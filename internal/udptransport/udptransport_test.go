package udptransport

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/rrmp"
	"repro/internal/topology"
	"repro/internal/wire"
)

// lossyTransport wraps a Node's transport, dropping the first DATA
// transmission to selected victims to force real recovery over loopback.
type lossyTransport struct {
	node    *Node
	mu      sync.Mutex
	victims map[topology.NodeID]bool
}

func (l *lossyTransport) Send(to topology.NodeID, msg wire.Message) {
	l.node.Send(to, msg)
}

func (l *lossyTransport) Broadcast(msg wire.Message) {
	if msg.Type == wire.TypeData {
		l.mu.Lock()
		victims := l.victims
		l.victims = nil // only the first multicast is lossy
		l.mu.Unlock()
		if victims != nil {
			enc := msg.Marshal()
			for id, addr := range l.node.peers {
				if id == l.node.self || victims[id] {
					continue
				}
				_, _ = l.node.conn.WriteToUDP(enc, addr)
			}
			return
		}
	}
	l.node.Broadcast(msg)
}

// fleet spins up n members on loopback UDP. wrap, if non-nil, may replace
// a member's transport (loss injection).
type fleet struct {
	nodes   []*Node
	members []*rrmp.Member
	wrap    func(i int, node *Node) rrmp.Transport
}

func newFleet(t *testing.T, n int, params rrmp.Params) *fleet {
	return newFleetWrapped(t, n, params, nil)
}

func newFleetWrapped(t *testing.T, n int, params rrmp.Params, wrap func(i int, node *Node) rrmp.Transport) *fleet {
	t.Helper()
	topo, err := topology.SingleRegion(n)
	if err != nil {
		t.Fatal(err)
	}
	f := &fleet{nodes: make([]*Node, n), members: make([]*rrmp.Member, n)}
	root := rng.New(1)

	// Two passes: bind ephemeral ports first, then distribute addresses.
	for i := 0; i < n; i++ {
		i := i
		node, err := NewNode(Config{
			Self:   topology.NodeID(i),
			Listen: "127.0.0.1:0",
			Peers:  map[topology.NodeID]string{},
			OnReceive: func(from topology.NodeID, msg wire.Message) {
				f.members[i].Receive(from, msg)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		f.nodes[i] = node
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if err := f.nodes[i].SetPeer(topology.NodeID(j), f.nodes[j].Addr()); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < n; i++ {
		view, err := topo.ViewOf(topology.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		var transport rrmp.Transport = f.nodes[i]
		if wrap != nil {
			if w := wrap(i, f.nodes[i]); w != nil {
				transport = w
			}
		}
		f.members[i] = rrmp.NewMember(rrmp.Config{
			View:      view,
			Transport: transport,
			Sched:     f.nodes[i].Scheduler(),
			Rng:       root.Split(uint64(i) + 1),
			Params:    params,
		})
		f.nodes[i].Start()
	}
	t.Cleanup(func() {
		for _, node := range f.nodes {
			node.Close()
		}
	})
	return f
}

// fastParams shrinks timers so loopback tests finish quickly.
func fastParams() rrmp.Params {
	p := rrmp.DefaultParams()
	p.IntraRTT = 5 * time.Millisecond
	p.IdleThreshold = 20 * time.Millisecond
	p.SessionInterval = 25 * time.Millisecond
	p.C = 100 // everyone long-term: reliability must be certain in tests
	return p
}

func TestLoopbackDelivery(t *testing.T) {
	f := newFleet(t, 5, fastParams())
	sender := rrmp.NewSender(f.members[0])
	var id wire.MessageID
	f.nodes[0].Do(func() { id = sender.Publish([]byte("real-udp")) })

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		got := 0
		for i, node := range f.nodes {
			i := i
			node.Do(func() {
				if f.members[i].HasReceived(id) {
					got++
				}
			})
		}
		if got == 5 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("message did not reach all members over loopback UDP")
}

func TestLoopbackRecoveryAfterLoss(t *testing.T) {
	// Drop the initial multicast to members 2 and 4; they must recover via
	// real NAKs and repairs over loopback.
	f := newFleetWrapped(t, 6, fastParams(), func(i int, node *Node) rrmp.Transport {
		if i != 0 {
			return nil
		}
		return &lossyTransport{node: node, victims: map[topology.NodeID]bool{2: true, 4: true}}
	})
	sender := rrmp.NewSender(f.members[0])

	var id wire.MessageID
	f.nodes[0].Do(func() {
		id = sender.Publish([]byte("lossy"))
		sender.StartSessions()
	})

	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		recovered := true
		for _, i := range []int{2, 4} {
			i := i
			got := false
			f.nodes[i].Do(func() { got = f.members[i].HasReceived(id) })
			recovered = recovered && got
		}
		if recovered {
			f.nodes[0].Do(func() { sender.StopSessions() })
			// The victims must have recovered through real request/repair
			// traffic.
			var reqs int64
			for _, i := range []int{2, 4} {
				i := i
				f.nodes[i].Do(func() { reqs += f.members[i].Metrics().LocalReqSent.Value() })
			}
			if reqs == 0 {
				t.Fatal("victims recovered without sending requests — loss injection failed")
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("victims never recovered over loopback UDP")
}

func TestNodeValidation(t *testing.T) {
	if _, err := NewNode(Config{Listen: "127.0.0.1:0"}); err == nil {
		t.Fatal("NewNode without OnReceive succeeded")
	}
	if _, err := NewNode(Config{Listen: "not-an-address", OnReceive: func(topology.NodeID, wire.Message) {}}); err == nil {
		t.Fatal("NewNode with bad listen address succeeded")
	}
}

func TestCloseIsIdempotentAndStopsGoroutines(t *testing.T) {
	node, err := NewNode(Config{
		Self:      0,
		Listen:    "127.0.0.1:0",
		Peers:     map[topology.NodeID]string{},
		OnReceive: func(topology.NodeID, wire.Message) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	node.Start()
	node.Close()
	node.Close() // second close must not panic or deadlock
}

func TestGarbagePacketsIgnored(t *testing.T) {
	received := 0
	node, err := NewNode(Config{
		Self:      0,
		Listen:    "127.0.0.1:0",
		Peers:     map[topology.NodeID]string{},
		OnReceive: func(topology.NodeID, wire.Message) { received++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	node.Start()
	defer node.Close()

	// Throw garbage at the socket.
	conn, err := net.Dial("udp", node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0xff, 0x00, 0x13}); err != nil {
		t.Fatal(err)
	}
	valid := wire.Message{Type: wire.TypeHave, From: 1}
	if _, err := conn.Write(valid.Marshal()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		got := 0
		node.Do(func() { got = received })
		if got == 1 {
			return // garbage dropped, valid message delivered
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("valid message not delivered (received=%d)", received)
}

package eventq

import (
	"testing"
	"time"
)

// TestPopFireRecyclesIntoPush proves the pool works: the struct fired by
// PopFire is handed back to the very next Push, and its generation has
// advanced so handles from the first life are stale.
func TestPopFireRecyclesIntoPush(t *testing.T) {
	var q Queue
	e1 := q.Push(1, func() {})
	gen1 := e1.Gen()
	at, fn, ok := q.PopFire()
	if !ok || at != 1 || fn == nil {
		t.Fatalf("PopFire = (%v, fn==nil:%v, %v)", at, fn == nil, ok)
	}
	e2 := q.Push(2, func() {})
	if e2 != e1 {
		t.Fatal("fired event was not recycled into the next Push")
	}
	if e2.Gen() == gen1 {
		t.Fatal("generation did not advance across recycling")
	}
}

// TestCancelRefusesStaleHandle is the safety property pooling depends on: a
// Stop on a timer whose event already fired must never cancel the unrelated
// event that since reused the struct.
func TestCancelRefusesStaleHandle(t *testing.T) {
	var q Queue
	e := q.Push(1, func() {})
	stale := e.Gen()
	if _, _, ok := q.PopFire(); !ok {
		t.Fatal("PopFire on a non-empty queue failed")
	}
	reborn := q.Push(2, func() {}) // reuses the struct
	if reborn != e {
		t.Fatal("expected struct reuse for this test's premise")
	}
	if q.Cancel(e, stale) {
		t.Fatal("stale handle cancelled the reborn event")
	}
	if q.Len() != 1 {
		t.Fatalf("queue length %d, want 1", q.Len())
	}
	if !q.Cancel(reborn, reborn.Gen()) {
		t.Fatal("fresh handle failed to cancel its own event")
	}
	if q.Cancel(reborn, reborn.Gen()) {
		t.Fatal("double Cancel succeeded")
	}
}

// TestCancelOrderingUnchanged replays a deterministic push/cancel/fire mix
// through the pooled path and checks the (time, insertion) total order
// survives recycling.
func TestCancelOrderingUnchanged(t *testing.T) {
	var q Queue
	var fired []int
	type handle struct {
		e   *Event
		gen uint32
	}
	var hs []handle
	push := func(at time.Duration, tag int) {
		e := q.Push(at, func() { fired = append(fired, tag) })
		hs = append(hs, handle{e, e.Gen()})
	}
	push(30, 0)
	push(10, 1)
	push(20, 2)
	if !q.Cancel(hs[2].e, hs[2].gen) {
		t.Fatal("cancel failed")
	}
	push(10, 3) // same instant as tag 1: must fire after it
	push(5, 4)
	for {
		_, fn, ok := q.PopFire()
		if !ok {
			break
		}
		fn()
	}
	want := []int{4, 1, 3, 0}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

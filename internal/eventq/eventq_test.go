package eventq

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestOrdering(t *testing.T) {
	var q Queue
	var got []int
	q.Push(30*time.Millisecond, func() { got = append(got, 3) })
	q.Push(10*time.Millisecond, func() { got = append(got, 1) })
	q.Push(20*time.Millisecond, func() { got = append(got, 2) })
	for q.Len() > 0 {
		q.Pop().Fn()()
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.Push(5*time.Millisecond, func() { got = append(got, i) })
	}
	for q.Len() > 0 {
		q.Pop().Fn()()
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events fired out of insertion order: %v", got)
		}
	}
}

func TestRemove(t *testing.T) {
	var q Queue
	fired := make(map[int]bool)
	mk := func(i int, at time.Duration) *Event {
		return q.Push(at, func() { fired[i] = true })
	}
	e1 := mk(1, 10)
	e2 := mk(2, 20)
	e3 := mk(3, 30)
	if !q.Remove(e2) {
		t.Fatal("Remove(e2) = false")
	}
	if q.Remove(e2) {
		t.Fatal("second Remove(e2) = true")
	}
	for q.Len() > 0 {
		q.Pop().Fn()()
	}
	if !fired[1] || fired[2] || !fired[3] {
		t.Fatalf("fired = %v, want 1 and 3 only", fired)
	}
	if q.Remove(e1) || q.Remove(e3) {
		t.Fatal("Remove after Pop returned true")
	}
	if q.Remove(nil) {
		t.Fatal("Remove(nil) = true")
	}
}

func TestRemoveHead(t *testing.T) {
	var q Queue
	e1 := q.Push(10, func() {})
	q.Push(20, func() {})
	if !q.Remove(e1) {
		t.Fatal("Remove head failed")
	}
	if got := q.Peek().At(); got != 20 {
		t.Fatalf("head after removal at %v, want 20", got)
	}
}

func TestPopEmpty(t *testing.T) {
	var q Queue
	if q.Pop() != nil {
		t.Fatal("Pop on empty queue != nil")
	}
	if q.Peek() != nil {
		t.Fatal("Peek on empty queue != nil")
	}
}

func TestPeekMatchesPop(t *testing.T) {
	var q Queue
	q.Push(7, func() {})
	q.Push(3, func() {})
	p := q.Peek()
	if got := q.Pop(); got != p {
		t.Fatal("Peek and Pop disagree")
	}
}

// TestHeapPropertyRandomized is a property test: for any sequence of pushes
// with arbitrary times, popping yields a non-decreasing time sequence, and
// equal times preserve insertion order.
func TestHeapPropertyRandomized(t *testing.T) {
	prop := func(times []uint16) bool {
		var q Queue
		type rec struct {
			at  time.Duration
			seq int
		}
		var popped []rec
		for i, raw := range times {
			at := time.Duration(raw % 64) // force many collisions
			i := i
			q.Push(at, func() { popped = append(popped, rec{at, i}) })
		}
		for q.Len() > 0 {
			q.Pop().Fn()()
		}
		if len(popped) != len(times) {
			return false
		}
		if !sort.SliceIsSorted(popped, func(i, j int) bool {
			if popped[i].at != popped[j].at {
				return popped[i].at < popped[j].at
			}
			return popped[i].seq < popped[j].seq
		}) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomizedRemoval interleaves pushes and removals and checks the
// survivors fire in order.
func TestRandomizedRemoval(t *testing.T) {
	prop := func(ops []uint16) bool {
		var q Queue
		var handles []*Event
		removed := make(map[*Event]bool)
		var firedTimes []time.Duration
		for _, op := range ops {
			if op%3 == 0 && len(handles) > 0 {
				h := handles[int(op)%len(handles)]
				if q.Remove(h) {
					removed[h] = true
				}
			} else {
				at := time.Duration(op % 128)
				var h *Event
				h = q.Push(at, func() { firedTimes = append(firedTimes, h.At()) })
				handles = append(handles, h)
			}
		}
		pending := q.Len()
		for q.Len() > 0 {
			q.Pop().Fn()()
		}
		if len(firedTimes) != pending {
			return false
		}
		return sort.SliceIsSorted(firedTimes, func(i, j int) bool { return firedTimes[i] < firedTimes[j] })
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	var q Queue
	fn := func() {}
	for i := 0; i < b.N; i++ {
		q.Push(time.Duration(i%1024), fn)
		if q.Len() > 512 {
			q.Pop()
		}
	}
}

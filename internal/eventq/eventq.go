// Package eventq implements the ordered event queue at the heart of the
// discrete-event simulator.
//
// The queue is a binary min-heap keyed on (time, sequence). The sequence
// number is assigned on insertion, so events scheduled for the same instant
// fire in insertion order. This total order is what makes whole-system
// simulations deterministic: two runs with the same seed execute the exact
// same event interleaving.
//
// Events can be cancelled in O(log n) through the handle returned by Push;
// the heap tracks element indices to support removal without lazy deletion,
// keeping memory bounded even under heavy timer churn (every retransmission
// timer in the protocol is cancelled when the awaited message arrives).
//
// Event structs are pooled: PopFire and Cancel return the fired/cancelled
// event to a free list that the next Push reuses, so steady-state simulation
// allocates no queue memory at all. Because a pooled handle may be reused
// for a later event, long-lived holders (the simulator's timers) must
// remember the Gen observed at Push time and cancel through Cancel, which
// refuses a stale generation. The unpooled Pop/Remove pair remains for
// callers that keep handles around.
package eventq

import "time"

// Event is a callback scheduled to run at a virtual time.
type Event struct {
	at time.Duration
	// pushAt and src extend the ordering key for sharded simulation (see
	// PushKeyed). Push leaves both zero, so single-queue users keep the
	// plain (at, seq) order: with pushAt and src constant, the extended
	// comparison reduces to (at, seq) exactly.
	pushAt time.Duration
	src    int32
	seq    uint64
	fn     func()

	// index is the element's position in the heap, or -1 once removed.
	index int
	// gen increments every time the event struct is recycled into the
	// pool, invalidating stale handles held by cancelled timers.
	gen uint32
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() time.Duration { return e.at }

// Gen returns the event's current generation. A handle is only valid for
// Cancel together with the generation read immediately after Push.
func (e *Event) Gen() uint32 { return e.gen }

// Queue is a min-heap of events ordered by (time, insertion sequence).
// The zero value is ready to use. Queue is not safe for concurrent use.
type Queue struct {
	heap    []*Event
	nextSeq uint64
	free    []*Event
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Push schedules fn to run at virtual time at and returns a handle that can
// be passed to Remove or (with its Gen) Cancel. Scheduling in the past is
// allowed (the simulator clamps, firing such events "now").
func (q *Queue) Push(at time.Duration, fn func()) *Event {
	return q.PushKeyed(at, 0, 0, fn)
}

// PushKeyed schedules fn at virtual time at under the extended ordering key
// (at, pushAt, src, seq). The sharded simulator uses it to merge event
// streams from several shards into one total order that matches what a
// single loop would have produced: pushAt is the virtual time the pushing
// context observed when it scheduled the event, src is a stable context
// index breaking cross-shard ties, and seq (assigned here) preserves each
// context's own push order. In a serial simulation pushAt is nondecreasing
// in seq, so (at, pushAt, src, seq) with constant src orders identically to
// the legacy (at, seq) key.
func (q *Queue) PushKeyed(at, pushAt time.Duration, src int32, fn func()) *Event {
	var e *Event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		e.at, e.pushAt, e.src, e.seq, e.fn, e.index = at, pushAt, src, q.nextSeq, fn, len(q.heap)
	} else {
		e = &Event{at: at, pushAt: pushAt, src: src, seq: q.nextSeq, fn: fn, index: len(q.heap)}
	}
	q.nextSeq++
	q.heap = append(q.heap, e)
	q.up(e.index)
	return e
}

// Peek returns the earliest event without removing it, or nil if empty.
func (q *Queue) Peek() *Event {
	if len(q.heap) == 0 {
		return nil
	}
	return q.heap[0]
}

// Pop removes and returns the earliest event, or nil if the queue is empty.
// The event is NOT recycled: the caller owns the handle indefinitely (tests
// and diagnostics). Hot loops should use PopFire instead.
func (q *Queue) Pop() *Event {
	if len(q.heap) == 0 {
		return nil
	}
	e := q.heap[0]
	q.removeAt(0)
	return e
}

// PopFire removes the earliest event and returns its (time, callback),
// recycling the event struct into the pool before the callback is exposed.
// It returns ok=false on an empty queue. This is the simulator's main-loop
// primitive: one event dispatch with zero allocation.
func (q *Queue) PopFire() (at time.Duration, fn func(), ok bool) {
	if len(q.heap) == 0 {
		return 0, nil, false
	}
	e := q.heap[0]
	at, fn = e.at, e.fn
	q.removeAt(0)
	q.recycle(e)
	return at, fn, true
}

// Remove cancels a pending event. It returns false if the event already
// fired or was removed. Passing nil is a no-op returning false. The event is
// NOT recycled (the caller may hold the handle); pooled callers use Cancel.
func (q *Queue) Remove(e *Event) bool {
	if e == nil || e.index < 0 || e.index >= len(q.heap) || q.heap[e.index] != e {
		return false
	}
	q.removeAt(e.index)
	return true
}

// Cancel removes a pending event if the handle's generation still matches,
// recycling it into the pool. It returns false for a stale handle (the event
// fired, was cancelled, and possibly reused since) — the guarantee timers
// rely on: after a true Cancel the callback never runs, and a stale Stop
// can never kill an unrelated event that happens to reuse the struct.
func (q *Queue) Cancel(e *Event, gen uint32) bool {
	if e == nil || e.gen != gen {
		return false
	}
	if e.index < 0 || e.index >= len(q.heap) || q.heap[e.index] != e {
		return false
	}
	q.removeAt(e.index)
	q.recycle(e)
	return true
}

// Fn returns the event callback. It remains valid after removal so the
// simulator can invoke it after popping.
func (e *Event) Fn() func() { return e.fn }

// recycle invalidates all outstanding handles to e and returns it to the
// free list. The callback reference is dropped so its closure can be GCed
// while the struct waits for reuse.
func (q *Queue) recycle(e *Event) {
	e.gen++
	e.fn = nil
	q.free = append(q.free, e)
}

func (q *Queue) removeAt(i int) {
	e := q.heap[i]
	last := len(q.heap) - 1
	if i != last {
		q.swap(i, last)
	}
	q.heap[last] = nil // allow GC of the event's closure
	q.heap = q.heap[:last]
	if i != last && i < len(q.heap) {
		if !q.down(i) {
			q.up(i)
		}
	}
	e.index = -1
}

func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.pushAt != b.pushAt {
		return a.pushAt < b.pushAt
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].index = i
	q.heap[j].index = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) bool {
	moved := false
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			break
		}
		q.swap(i, smallest)
		i = smallest
		moved = true
	}
	return moved
}

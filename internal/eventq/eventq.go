// Package eventq implements the ordered event queue at the heart of the
// discrete-event simulator.
//
// The queue is a binary min-heap keyed on (time, sequence). The sequence
// number is assigned on insertion, so events scheduled for the same instant
// fire in insertion order. This total order is what makes whole-system
// simulations deterministic: two runs with the same seed execute the exact
// same event interleaving.
//
// Events can be cancelled in O(log n) through the handle returned by Push;
// the heap tracks element indices to support removal without lazy deletion,
// keeping memory bounded even under heavy timer churn (every retransmission
// timer in the protocol is cancelled when the awaited message arrives).
package eventq

import "time"

// Event is a callback scheduled to run at a virtual time.
type Event struct {
	at  time.Duration
	seq uint64
	fn  func()

	// index is the element's position in the heap, or -1 once removed.
	index int
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() time.Duration { return e.at }

// Queue is a min-heap of events ordered by (time, insertion sequence).
// The zero value is ready to use. Queue is not safe for concurrent use.
type Queue struct {
	heap    []*Event
	nextSeq uint64
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Push schedules fn to run at virtual time at and returns a handle that can
// be passed to Remove. Scheduling in the past is allowed (the simulator
// clamps, firing such events "now").
func (q *Queue) Push(at time.Duration, fn func()) *Event {
	e := &Event{at: at, seq: q.nextSeq, fn: fn, index: len(q.heap)}
	q.nextSeq++
	q.heap = append(q.heap, e)
	q.up(e.index)
	return e
}

// Peek returns the earliest event without removing it, or nil if empty.
func (q *Queue) Peek() *Event {
	if len(q.heap) == 0 {
		return nil
	}
	return q.heap[0]
}

// Pop removes and returns the earliest event, or nil if the queue is empty.
func (q *Queue) Pop() *Event {
	if len(q.heap) == 0 {
		return nil
	}
	e := q.heap[0]
	q.removeAt(0)
	return e
}

// Remove cancels a pending event. It returns false if the event already
// fired or was removed. Passing nil is a no-op returning false.
func (q *Queue) Remove(e *Event) bool {
	if e == nil || e.index < 0 || e.index >= len(q.heap) || q.heap[e.index] != e {
		return false
	}
	q.removeAt(e.index)
	return true
}

// Fn returns the event callback. It remains valid after removal so the
// simulator can invoke it after popping.
func (e *Event) Fn() func() { return e.fn }

func (q *Queue) removeAt(i int) {
	e := q.heap[i]
	last := len(q.heap) - 1
	if i != last {
		q.swap(i, last)
	}
	q.heap[last] = nil // allow GC of the event's closure
	q.heap = q.heap[:last]
	if i != last && i < len(q.heap) {
		if !q.down(i) {
			q.up(i)
		}
	}
	e.index = -1
}

func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].index = i
	q.heap[j].index = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) bool {
	moved := false
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			break
		}
		q.swap(i, smallest)
		i = smallest
		moved = true
	}
	return moved
}

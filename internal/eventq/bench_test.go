package eventq

import (
	"testing"
	"time"

	"repro/internal/rng"
)

// Benchmarks for the simulator's hot path: every packet delivery and every
// protocol timer is one Push (and often one Remove) on this queue, so sweep
// throughput is bounded by these operations. BENCH_sweep.json tracks the
// macro numbers; these isolate the queue itself.

// BenchmarkSteadyStatePushPop measures steady-state heap traffic: a queue
// holding 1024 random-time events pushes one more and pops the earliest,
// per op (eventq_test.go's BenchmarkPushPop uses sequential times, which
// hits the heap's best case; random times are the simulator's reality).
func BenchmarkSteadyStatePushPop(b *testing.B) {
	r := rng.New(1)
	var q Queue
	fn := func() {}
	for i := 0; i < 1024; i++ {
		q.Push(time.Duration(r.Intn(1_000_000)), fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(time.Duration(r.Intn(1_000_000)), fn)
		q.Pop()
	}
}

// BenchmarkTimerChurn measures the cancel path the protocol leans on: every
// retransmission timer is removed when the awaited message arrives. Each op
// pushes a random-time event into a 1024-event heap and removes it again.
func BenchmarkTimerChurn(b *testing.B) {
	r := rng.New(1)
	var q Queue
	fn := func() {}
	for i := 0; i < 1024; i++ {
		q.Push(time.Duration(r.Intn(1_000_000)), fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.Push(time.Duration(r.Intn(1_000_000)), fn)
		if !q.Remove(e) {
			b.Fatal("failed to remove a live event")
		}
	}
}

// BenchmarkSteadyStatePushPopFire is BenchmarkSteadyStatePushPop on the
// pooled fast path the simulator's main loop actually runs: PopFire
// recycles each fired event, so steady state allocates nothing.
func BenchmarkSteadyStatePushPopFire(b *testing.B) {
	r := rng.New(1)
	var q Queue
	fn := func() {}
	for i := 0; i < 1024; i++ {
		q.Push(time.Duration(r.Intn(1_000_000)), fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(time.Duration(r.Intn(1_000_000)), fn)
		q.PopFire()
	}
}

// BenchmarkTimerChurnCancel is the pooled cancel path protocol timers use:
// push a timer event, cancel it through its generation-checked handle, and
// let the pool hand the struct back to the next push.
func BenchmarkTimerChurnCancel(b *testing.B) {
	r := rng.New(1)
	var q Queue
	fn := func() {}
	for i := 0; i < 1024; i++ {
		q.Push(time.Duration(r.Intn(1_000_000)), fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.Push(time.Duration(r.Intn(1_000_000)), fn)
		if !q.Cancel(e, e.Gen()) {
			b.Fatal("failed to cancel a live event")
		}
	}
}

// BenchmarkDrain measures bulk ordered consumption: push 4096 random-time
// events, pop all of them in order.
func BenchmarkDrain(b *testing.B) {
	r := rng.New(1)
	fn := func() {}
	times := make([]time.Duration, 4096)
	for i := range times {
		times[i] = time.Duration(r.Intn(1_000_000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var q Queue
		for _, at := range times {
			q.Push(at, fn)
		}
		for q.Pop() != nil {
		}
	}
}

package eventq

import (
	"testing"
	"time"

	"repro/internal/rng"
)

// Allocation-regression guards for the queue's pooled hot paths. The scale
// rewrite (PR 3) brought steady-state event traffic to zero allocations per
// operation — every sweep cell pays these paths tens of thousands of times,
// so a single stray allocation here multiplies into megabytes of garbage
// per trial. These tests fail on the first regression instead of waiting
// for someone to read a benchmark diff.

// TestSteadyStatePushPopFireAllocs guards the simulator main loop's pooled
// fast path: Push into a warm heap, PopFire recycles the struct.
func TestSteadyStatePushPopFireAllocs(t *testing.T) {
	r := rng.New(1)
	var q Queue
	fn := func() {}
	for i := 0; i < 1024; i++ {
		q.Push(time.Duration(r.Intn(1_000_000)), fn)
	}
	// Warm the pool and the heap's backing array before measuring.
	for i := 0; i < 64; i++ {
		q.Push(time.Duration(r.Intn(1_000_000)), fn)
		q.PopFire()
	}
	avg := testing.AllocsPerRun(200, func() {
		q.Push(time.Duration(r.Intn(1_000_000)), fn)
		q.PopFire()
	})
	if avg != 0 {
		t.Fatalf("steady-state Push+PopFire allocates %.2f objects/op, want 0", avg)
	}
}

// TestTimerChurnCancelAllocs guards the protocol-timer path: push a timer
// event and cancel it through its generation-checked handle; the pool must
// hand the struct straight back.
func TestTimerChurnCancelAllocs(t *testing.T) {
	r := rng.New(1)
	var q Queue
	fn := func() {}
	for i := 0; i < 1024; i++ {
		q.Push(time.Duration(r.Intn(1_000_000)), fn)
	}
	for i := 0; i < 64; i++ {
		e := q.Push(time.Duration(r.Intn(1_000_000)), fn)
		if !q.Cancel(e, e.Gen()) {
			t.Fatal("failed to cancel a live event")
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		e := q.Push(time.Duration(r.Intn(1_000_000)), fn)
		if !q.Cancel(e, e.Gen()) {
			t.Fatal("failed to cancel a live event")
		}
	})
	if avg != 0 {
		t.Fatalf("timer Push+Cancel allocates %.2f objects/op, want 0", avg)
	}
}

package netsim

import (
	"repro/internal/topology"
	"repro/internal/wire"
)

// HashBurstLoss is the Gilbert–Elliott burst channel in shard-safe form.
// Each (from, to) pair carries its own two-state chain, exactly like
// GilbertElliott, but instead of consuming one shared rng in global send
// order the chain advances on per-pair counter-hash draws — the
// splitmix64-finalizer scheme HashLoss uses, widened to include the
// receiver. Draw j on pair (f, t) is a pure function of (Seed, f, t, j),
// so a pair's loss pattern depends only on how many packets f has sent to
// t — state a single shard loop owns — and the model gives byte-identical
// loss patterns at any shard count.
//
// Per packet of a covered type the chain consumes exactly two draws, in
// GilbertElliott's order: draw 2k advances the state (Bernoulli PGB from
// Good, PBG from Bad), draw 2k+1 draws the loss from the new state (PGood
// or PBad). If Only is non-empty, loss applies exclusively to the listed
// types (other types consume no draw).
type HashBurstLoss struct {
	PGood, PBad float64
	PGB, PBG    float64
	Seed        uint64
	Only        map[wire.Type]bool

	// st[f][t] packs pair (f, t)'s chain as drawCounter<<1 | badBit. The
	// outer slice is pre-sized at construction; a sender's row is
	// allocated lazily on its first draw, from its own shard loop (Drop
	// runs on the sending shard), so rows for nodes that never send a
	// covered type — everyone but the publisher under an Only={DATA}
	// model — cost nothing even at 1M members.
	st [][]uint64
	n  int
}

// NewHashBurstLoss builds a HashBurstLoss covering nodes [0, n).
func NewHashBurstLoss(seed uint64, pGood, pBad, pGB, pBG float64, n int, only map[wire.Type]bool) *HashBurstLoss {
	return &HashBurstLoss{
		PGood: pGood, PBad: pBad,
		PGB: pGB, PBG: pBG,
		Seed: seed, Only: only,
		st: make([][]uint64, n), n: n,
	}
}

// draw returns uniform [0,1) draw k of pair (from, to): the HashLoss
// splitmix64 finalizer over (Seed, from, to, k), with a distinct odd
// multiplier per coordinate.
func (h *HashBurstLoss) draw(from, to topology.NodeID, k uint64) float64 {
	z := h.Seed + 0x9e3779b97f4a7c15*(uint64(from)+1) + 0xbf58476d1ce4e5b9*(uint64(to)+1) + 0x94d049bb133111eb*(k+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) * (1.0 / (1 << 53))
}

// Drop implements LossModel.
func (h *HashBurstLoss) Drop(from, to topology.NodeID, t wire.Type) bool {
	if len(h.Only) > 0 && !h.Only[t] {
		return false
	}
	row := h.st[from]
	if row == nil {
		row = make([]uint64, h.n)
		h.st[from] = row
	}
	packed := row[to]
	k, bad := packed>>1, packed&1 == 1
	// Advance the channel state first, then draw loss from the new state
	// (GilbertElliott's convention).
	if bad {
		if h.draw(from, to, k) < h.PBG {
			bad = false
		}
	} else {
		if h.draw(from, to, k) < h.PGB {
			bad = true
		}
	}
	k++
	p := h.PGood
	if bad {
		p = h.PBad
	}
	lost := h.draw(from, to, k) < p
	k++
	var badBit uint64
	if bad {
		badBit = 1
	}
	row[to] = k<<1 | badBit
	return lost
}

var _ LossModel = (*HashBurstLoss)(nil)

// Package netsim models the network underneath the protocol: per-pair
// one-way latency, per-packet loss, unicast, and IP-multicast-style fan-out
// with independent per-receiver loss draws.
//
// It substitutes for the paper's unspecified WAN testbed. The evaluation in
// §4 depends only on the latency structure (a fixed intra-region RTT, much
// larger inter-region latency) and on which receivers the initial multicast
// reaches; both are explicit models here. All randomness comes from
// dedicated rng streams so runs are reproducible.
//
// The delivery path is engineered for 1000+-member fan-outs: per-node state
// (handlers, crash flags, partition classes) lives in dense slices indexed
// by NodeID, traffic counters are fixed per-type arrays, in-flight packets
// are pooled delivery records with a pre-bound callback, and events are
// scheduled through the scheduler's no-handle Post path when available.
// Steady-state packet delivery therefore allocates nothing.
package netsim

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Packet is one message in flight together with its delivery metadata.
type Packet struct {
	From, To topology.NodeID
	Msg      wire.Message
	Size     int // bytes charged to traffic accounting
}

// Handler consumes packets delivered to a registered node.
type Handler func(pkt Packet)

// LatencyModel yields the one-way delay between two members.
type LatencyModel interface {
	OneWay(from, to topology.NodeID) time.Duration
}

// LossModel decides whether a packet is dropped. Implementations may keep
// per-pair state (burst models) and may discriminate by message type, which
// the experiments use to make recovery traffic lossless as in §4.
type LossModel interface {
	Drop(from, to topology.NodeID, t wire.Type) bool
}

// poster is the optional scheduler fast path: schedule without returning a
// cancellation handle (packet deliveries are never cancelled). The
// simulator's *sim.Sim implements it; any other clock.Scheduler falls back
// to After with the handle discarded.
type poster interface {
	Post(d time.Duration, fn func())
}

// Network delivers packets between registered nodes over a clock.Scheduler.
type Network struct {
	sched   clock.Scheduler
	post    func(d time.Duration, fn func())
	latency LatencyModel
	loss    LossModel

	// handlers and down are dense, indexed by NodeID (IDs are dense by
	// construction, see topology). Slices grow on Register/SetDown.
	handlers []Handler
	down     []bool
	stats    Stats
	// partition assigns each node a partition class; packets between
	// different classes vanish. partActive gates the check so the
	// partition-free hot path pays a single predictable branch. Nodes
	// beyond the slice are class 0.
	partition  []int32
	partActive bool

	// pool recycles delivery records; each carries a pre-bound callback so
	// scheduling an in-flight packet allocates nothing in steady state.
	pool []*delivery
}

// delivery is one in-flight packet. fire is bound once at construction and
// reused for the record's whole pooled lifetime.
type delivery struct {
	n        *Network
	from, to topology.NodeID
	msg      wire.Message
	size     int
	fn       func()
}

// Stats aggregates traffic accounting per message type, stored as dense
// per-type arrays (bump = one array index, no map hashing on the hot path).
type Stats struct {
	sent      [wire.TypeCount]stats.Counter
	delivered [wire.TypeCount]stats.Counter
	dropped   [wire.TypeCount]stats.Counter
	bytes     [wire.TypeCount]stats.Counter
	// Partitioned counts packets (all types) that vanished because their
	// endpoints were in different partition classes; each is also counted
	// in Dropped under its type.
	Partitioned stats.Counter
}

// SentCount returns packets offered for transmission of type t.
func (s *Stats) SentCount(t wire.Type) int64 { return s.sent[int(t)%wire.TypeCount].Value() }

// DeliveredCount returns packets delivered of type t.
func (s *Stats) DeliveredCount(t wire.Type) int64 { return s.delivered[int(t)%wire.TypeCount].Value() }

// DroppedCount returns packets dropped of type t.
func (s *Stats) DroppedCount(t wire.Type) int64 { return s.dropped[int(t)%wire.TypeCount].Value() }

// BytesSent returns the bytes offered for transmission of type t.
func (s *Stats) BytesSent(t wire.Type) int64 { return s.bytes[int(t)%wire.TypeCount].Value() }

// PartitionDrops returns packets dropped by the partition cut.
func (s *Stats) PartitionDrops() int64 { return s.Partitioned.Value() }

// TotalSent returns packets offered across all types.
func (s *Stats) TotalSent() int64 {
	var n int64
	for i := range s.sent {
		n += s.sent[i].Value()
	}
	return n
}

// TotalBytes returns bytes offered across all types.
func (s *Stats) TotalBytes() int64 {
	var n int64
	for i := range s.bytes {
		n += s.bytes[i].Value()
	}
	return n
}

// New creates a network over the given scheduler with the given models.
// A nil loss model means lossless.
func New(sched clock.Scheduler, latency LatencyModel, loss LossModel) *Network {
	if latency == nil {
		panic("netsim: nil latency model")
	}
	if loss == nil {
		loss = NoLoss{}
	}
	n := &Network{
		sched:   sched,
		latency: latency,
		loss:    loss,
	}
	if p, ok := sched.(poster); ok {
		n.post = p.Post
	} else {
		n.post = func(d time.Duration, fn func()) { sched.After(d, fn) }
	}
	return n
}

// grow extends the dense per-node slices to cover node.
func (n *Network) grow(node topology.NodeID) {
	need := int(node) + 1
	for len(n.handlers) < need {
		n.handlers = append(n.handlers, nil)
	}
	for len(n.down) < need {
		n.down = append(n.down, false)
	}
}

// Register installs the delivery handler for node. Registering twice
// replaces the previous handler (used when a member restarts).
func (n *Network) Register(node topology.NodeID, h Handler) {
	if h == nil {
		panic(fmt.Sprintf("netsim: nil handler for node %d", node))
	}
	if node < 0 {
		panic(fmt.Sprintf("netsim: Register with negative node %d", node))
	}
	n.grow(node)
	n.handlers[node] = h
}

// SetDown marks a node as crashed: packets to and from it vanish. Used by
// failure-injection tests and the churn experiments.
func (n *Network) SetDown(node topology.NodeID, down bool) {
	if node < 0 {
		return
	}
	n.grow(node)
	n.down[node] = down
}

// IsDown reports whether the node is marked crashed.
func (n *Network) IsDown(node topology.NodeID) bool {
	return node >= 0 && int(node) < len(n.down) && n.down[node]
}

// isDown is the bounds-checked hot-path variant (inlined by the compiler).
func (n *Network) isDown(node topology.NodeID) bool {
	return int(node) < len(n.down) && n.down[node]
}

// SetPartition installs a network partition: every node is assigned the
// class class[node] (absent nodes are class 0) and packets whose endpoints
// lie in different classes are dropped, including packets already in
// flight when the partition begins. The map is copied into a dense table.
// Partition and heal instants are ordinary scheduler events, so fault
// timelines are exactly as deterministic as the rest of the simulation.
func (n *Network) SetPartition(class map[topology.NodeID]int) {
	if len(class) == 0 {
		n.partition, n.partActive = nil, false
		return
	}
	max := topology.NodeID(0)
	for k := range class {
		if k > max {
			max = k
		}
	}
	dense := make([]int32, int(max)+1)
	for k, v := range class {
		if k >= 0 {
			dense[k] = int32(v)
		}
	}
	n.partition, n.partActive = dense, true
}

// ClearPartition heals the partition: all nodes are reconnected.
func (n *Network) ClearPartition() { n.partition, n.partActive = nil, false }

// classOf returns the node's partition class (0 beyond the table).
func (n *Network) classOf(node topology.NodeID) int32 {
	if node >= 0 && int(node) < len(n.partition) {
		return n.partition[node]
	}
	return 0
}

// Partitioned reports whether a and b are currently in different
// partition classes.
func (n *Network) Partitioned(a, b topology.NodeID) bool {
	if !n.partActive {
		return false
	}
	return n.classOf(a) != n.classOf(b)
}

// Stats returns the traffic counters (live view).
func (n *Network) Stats() *Stats { return &n.stats }

// getDelivery takes a pooled delivery record, or builds one with its
// callback pre-bound.
func (n *Network) getDelivery() *delivery {
	if k := len(n.pool); k > 0 {
		d := n.pool[k-1]
		n.pool[k-1] = nil
		n.pool = n.pool[:k-1]
		return d
	}
	d := &delivery{n: n}
	d.fn = d.fire
	return d
}

// fire completes an in-flight packet: re-check liveness and connectivity at
// delivery time (the node may have crashed, or a partition may have cut the
// path, while the packet was in flight), then dispatch to the handler. The
// record is returned to the pool before the handler runs, so a handler that
// immediately sends (the common protocol pattern) reuses it.
func (d *delivery) fire() {
	n, from, to, msg, size := d.n, d.from, d.to, d.msg, d.size
	d.msg = wire.Message{} // drop payload references while pooled
	n.pool = append(n.pool, d)

	ti := int(msg.Type) % wire.TypeCount
	if n.partActive && n.classOf(from) != n.classOf(to) {
		n.stats.Partitioned.Inc()
		n.stats.dropped[ti].Inc()
		return
	}
	if n.isDown(to) {
		n.stats.dropped[ti].Inc()
		return
	}
	var h Handler
	if int(to) < len(n.handlers) {
		h = n.handlers[to]
	}
	if h == nil {
		n.stats.dropped[ti].Inc()
		return
	}
	n.stats.delivered[ti].Inc()
	h(Packet{From: from, To: to, Msg: msg, Size: size})
}

// Unicast sends msg from -> to, applying latency and loss models.
func (n *Network) Unicast(from, to topology.NodeID, msg wire.Message) {
	size := msg.EncodedSize()
	ti := int(msg.Type) % wire.TypeCount
	n.stats.sent[ti].Inc()
	n.stats.bytes[ti].Add(int64(size))
	if n.partActive && n.classOf(from) != n.classOf(to) {
		n.stats.Partitioned.Inc()
		n.stats.dropped[ti].Inc()
		return
	}
	if n.isDown(from) || n.isDown(to) || n.loss.Drop(from, to, msg.Type) {
		n.stats.dropped[ti].Inc()
		return
	}
	lat := n.latency.OneWay(from, to)
	d := n.getDelivery()
	d.from, d.to, d.msg, d.size = from, to, msg, size
	n.post(lat, d.fn)
}

// Multicast sends msg from -> each target with independent latency and loss
// draws, modeling IP multicast fan-out. Targets equal to from are skipped.
// Loss and latency draws happen in target order, exactly as a loop of
// Unicast calls would, so fan-out batching never changes a seeded run.
func (n *Network) Multicast(from topology.NodeID, targets []topology.NodeID, msg wire.Message) {
	for _, to := range targets {
		if to == from {
			continue
		}
		n.Unicast(from, to, msg)
	}
}

// NoLoss is the lossless LossModel.
type NoLoss struct{}

// Drop implements LossModel (never drops).
func (NoLoss) Drop(topology.NodeID, topology.NodeID, wire.Type) bool { return false }

var _ LossModel = NoLoss{}

// BernoulliLoss drops each packet independently with probability P.
// If Only is non-empty, loss applies exclusively to the listed types; every
// other type is lossless. The experiments use Only = {DATA} to reproduce
// §4's "requests and repairs are not lost" assumption.
type BernoulliLoss struct {
	P    float64
	Only map[wire.Type]bool
	Rng  *rng.Source
}

// Drop implements LossModel.
func (b *BernoulliLoss) Drop(_, _ topology.NodeID, t wire.Type) bool {
	if len(b.Only) > 0 && !b.Only[t] {
		return false
	}
	return b.Rng.Bernoulli(b.P)
}

var _ LossModel = (*BernoulliLoss)(nil)

// GilbertElliott is a two-state burst loss model, tracked per (from, to)
// pair. In the Good state packets drop with PGood; in the Bad state with
// PBad. The chain flips Good->Bad with PGB per packet and Bad->Good with
// PBG. If Only is non-empty, loss applies exclusively to the listed types.
type GilbertElliott struct {
	PGood, PBad float64
	PGB, PBG    float64
	Only        map[wire.Type]bool
	Rng         *rng.Source

	bad map[[2]topology.NodeID]bool
}

// Drop implements LossModel.
func (g *GilbertElliott) Drop(from, to topology.NodeID, t wire.Type) bool {
	if len(g.Only) > 0 && !g.Only[t] {
		return false
	}
	if g.bad == nil {
		g.bad = make(map[[2]topology.NodeID]bool)
	}
	key := [2]topology.NodeID{from, to}
	inBad := g.bad[key]
	// Advance the channel state first, then draw loss from the new state.
	if inBad {
		if g.Rng.Bernoulli(g.PBG) {
			inBad = false
		}
	} else {
		if g.Rng.Bernoulli(g.PGB) {
			inBad = true
		}
	}
	g.bad[key] = inBad
	if inBad {
		return g.Rng.Bernoulli(g.PBad)
	}
	return g.Rng.Bernoulli(g.PGood)
}

var _ LossModel = (*GilbertElliott)(nil)

// UniformLatency applies a fixed one-way delay between every pair.
type UniformLatency struct {
	Delay time.Duration
}

// OneWay implements LatencyModel.
func (u UniformLatency) OneWay(_, _ topology.NodeID) time.Duration { return u.Delay }

var _ LatencyModel = UniformLatency{}

// HierLatency derives one-way delay from the topology's region structure:
// IntraOneWay within a region, and InterOneWay per hierarchy hop between
// regions. With the paper's defaults (intra RTT 10 ms, so IntraOneWay 5 ms)
// an adjacent-region one-way is InterOneWay, two hops costs twice that, and
// so on. Hop counts come from the topology's precomputed region depths, so
// the per-packet cost is a short ancestor walk, not a depth recomputation.
type HierLatency struct {
	Topo        *topology.Topology
	IntraOneWay time.Duration
	InterOneWay time.Duration
}

// OneWay implements LatencyModel.
func (h HierLatency) OneWay(from, to topology.NodeID) time.Duration {
	hops := h.Topo.HierarchyDistance(from, to)
	if hops == 0 {
		return h.IntraOneWay
	}
	return time.Duration(hops) * h.InterOneWay
}

var _ LatencyModel = HierLatency{}

// JitteredLatency wraps another model, scaling each delay by a uniform
// factor in [1-Frac, 1+Frac]. Jitter models queueing variance and also
// breaks protocol-level ties in wall-clock order, as a real network would.
type JitteredLatency struct {
	Inner LatencyModel
	Frac  float64
	Rng   *rng.Source
}

// OneWay implements LatencyModel.
func (j JitteredLatency) OneWay(from, to topology.NodeID) time.Duration {
	base := j.Inner.OneWay(from, to)
	return time.Duration(j.Rng.Jitter(float64(base), j.Frac))
}

var _ LatencyModel = JitteredLatency{}

// MatrixLatency specifies one-way delay per (fromRegion, toRegion) pair,
// with Intra used when the regions coincide. It panics on a region pair
// outside the matrix, which indicates a construction bug.
type MatrixLatency struct {
	Topo  *topology.Topology
	Intra time.Duration
	Inter [][]time.Duration
}

// OneWay implements LatencyModel.
func (m MatrixLatency) OneWay(from, to topology.NodeID) time.Duration {
	ra, rb := m.Topo.RegionOf(from), m.Topo.RegionOf(to)
	if ra == rb {
		return m.Intra
	}
	return m.Inter[ra][rb]
}

var _ LatencyModel = MatrixLatency{}

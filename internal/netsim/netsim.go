// Package netsim models the network underneath the protocol: per-pair
// one-way latency, per-packet loss, unicast, and IP-multicast-style fan-out
// with independent per-receiver loss draws.
//
// It substitutes for the paper's unspecified WAN testbed. The evaluation in
// §4 depends only on the latency structure (a fixed intra-region RTT, much
// larger inter-region latency) and on which receivers the initial multicast
// reaches; both are explicit models here. All randomness comes from
// dedicated rng streams so runs are reproducible.
package netsim

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Packet is one message in flight together with its delivery metadata.
type Packet struct {
	From, To topology.NodeID
	Msg      wire.Message
	Size     int // bytes charged to traffic accounting
}

// Handler consumes packets delivered to a registered node.
type Handler func(pkt Packet)

// LatencyModel yields the one-way delay between two members.
type LatencyModel interface {
	OneWay(from, to topology.NodeID) time.Duration
}

// LossModel decides whether a packet is dropped. Implementations may keep
// per-pair state (burst models) and may discriminate by message type, which
// the experiments use to make recovery traffic lossless as in §4.
type LossModel interface {
	Drop(from, to topology.NodeID, t wire.Type) bool
}

// Network delivers packets between registered nodes over a clock.Scheduler.
type Network struct {
	sched   clock.Scheduler
	latency LatencyModel
	loss    LossModel

	handlers map[topology.NodeID]Handler
	stats    Stats
	down     map[topology.NodeID]bool
	// partition assigns each node a partition class; packets between
	// different classes vanish. nil means fully connected. Nodes absent
	// from a non-nil map are class 0.
	partition map[topology.NodeID]int
}

// Stats aggregates traffic accounting per message type.
type Stats struct {
	Sent      map[wire.Type]*stats.Counter
	Delivered map[wire.Type]*stats.Counter
	Dropped   map[wire.Type]*stats.Counter
	Bytes     map[wire.Type]*stats.Counter
	// Partitioned counts packets (all types) that vanished because their
	// endpoints were in different partition classes; each is also counted
	// in Dropped under its type.
	Partitioned stats.Counter
}

func newStats() Stats {
	return Stats{
		Sent:      map[wire.Type]*stats.Counter{},
		Delivered: map[wire.Type]*stats.Counter{},
		Dropped:   map[wire.Type]*stats.Counter{},
		Bytes:     map[wire.Type]*stats.Counter{},
	}
}

func bump(m map[wire.Type]*stats.Counter, t wire.Type, d int64) {
	c, ok := m[t]
	if !ok {
		c = &stats.Counter{}
		m[t] = c
	}
	c.Add(d)
}

func value(m map[wire.Type]*stats.Counter, t wire.Type) int64 {
	if c, ok := m[t]; ok {
		return c.Value()
	}
	return 0
}

// SentCount returns packets offered for transmission of type t.
func (s *Stats) SentCount(t wire.Type) int64 { return value(s.Sent, t) }

// DeliveredCount returns packets delivered of type t.
func (s *Stats) DeliveredCount(t wire.Type) int64 { return value(s.Delivered, t) }

// DroppedCount returns packets dropped of type t.
func (s *Stats) DroppedCount(t wire.Type) int64 { return value(s.Dropped, t) }

// BytesSent returns the bytes offered for transmission of type t.
func (s *Stats) BytesSent(t wire.Type) int64 { return value(s.Bytes, t) }

// PartitionDrops returns packets dropped by the partition cut.
func (s *Stats) PartitionDrops() int64 { return s.Partitioned.Value() }

// TotalSent returns packets offered across all types.
func (s *Stats) TotalSent() int64 {
	var n int64
	for _, c := range s.Sent {
		n += c.Value()
	}
	return n
}

// TotalBytes returns bytes offered across all types.
func (s *Stats) TotalBytes() int64 {
	var n int64
	for _, c := range s.Bytes {
		n += c.Value()
	}
	return n
}

// New creates a network over the given scheduler with the given models.
// A nil loss model means lossless.
func New(sched clock.Scheduler, latency LatencyModel, loss LossModel) *Network {
	if latency == nil {
		panic("netsim: nil latency model")
	}
	if loss == nil {
		loss = NoLoss{}
	}
	return &Network{
		sched:    sched,
		latency:  latency,
		loss:     loss,
		handlers: make(map[topology.NodeID]Handler),
		stats:    newStats(),
		down:     make(map[topology.NodeID]bool),
	}
}

// Register installs the delivery handler for node. Registering twice
// replaces the previous handler (used when a member restarts).
func (n *Network) Register(node topology.NodeID, h Handler) {
	if h == nil {
		panic(fmt.Sprintf("netsim: nil handler for node %d", node))
	}
	n.handlers[node] = h
}

// SetDown marks a node as crashed: packets to and from it vanish. Used by
// failure-injection tests and the churn experiments.
func (n *Network) SetDown(node topology.NodeID, down bool) {
	if down {
		n.down[node] = true
	} else {
		delete(n.down, node)
	}
}

// IsDown reports whether the node is marked crashed.
func (n *Network) IsDown(node topology.NodeID) bool { return n.down[node] }

// SetPartition installs a network partition: every node is assigned the
// class class[node] (absent nodes are class 0) and packets whose endpoints
// lie in different classes are dropped, including packets already in
// flight when the partition begins. The map is copied. Partition and heal
// instants are ordinary scheduler events, so fault timelines are exactly
// as deterministic as the rest of the simulation.
func (n *Network) SetPartition(class map[topology.NodeID]int) {
	if len(class) == 0 {
		n.partition = nil
		return
	}
	cp := make(map[topology.NodeID]int, len(class))
	for k, v := range class {
		cp[k] = v
	}
	n.partition = cp
}

// ClearPartition heals the partition: all nodes are reconnected.
func (n *Network) ClearPartition() { n.partition = nil }

// Partitioned reports whether a and b are currently in different
// partition classes.
func (n *Network) Partitioned(a, b topology.NodeID) bool {
	if n.partition == nil {
		return false
	}
	return n.partition[a] != n.partition[b]
}

// Stats returns the traffic counters (live view).
func (n *Network) Stats() *Stats { return &n.stats }

// Unicast sends msg from -> to, applying latency and loss models.
func (n *Network) Unicast(from, to topology.NodeID, msg wire.Message) {
	size := msg.EncodedSize()
	bump(n.stats.Sent, msg.Type, 1)
	bump(n.stats.Bytes, msg.Type, int64(size))
	if n.Partitioned(from, to) {
		n.stats.Partitioned.Inc()
		bump(n.stats.Dropped, msg.Type, 1)
		return
	}
	if n.down[from] || n.down[to] || n.loss.Drop(from, to, msg.Type) {
		bump(n.stats.Dropped, msg.Type, 1)
		return
	}
	d := n.latency.OneWay(from, to)
	n.sched.After(d, func() {
		// Re-check liveness and connectivity at delivery time: the node
		// may have crashed, or a partition may have cut the path, while
		// the packet was in flight.
		if n.Partitioned(from, to) {
			n.stats.Partitioned.Inc()
			bump(n.stats.Dropped, msg.Type, 1)
			return
		}
		if n.down[to] {
			bump(n.stats.Dropped, msg.Type, 1)
			return
		}
		h, ok := n.handlers[to]
		if !ok {
			bump(n.stats.Dropped, msg.Type, 1)
			return
		}
		bump(n.stats.Delivered, msg.Type, 1)
		h(Packet{From: from, To: to, Msg: msg, Size: size})
	})
}

// Multicast sends msg from -> each target with independent latency and loss
// draws, modeling IP multicast fan-out. Targets equal to from are skipped.
func (n *Network) Multicast(from topology.NodeID, targets []topology.NodeID, msg wire.Message) {
	for _, to := range targets {
		if to == from {
			continue
		}
		n.Unicast(from, to, msg)
	}
}

// NoLoss is the lossless LossModel.
type NoLoss struct{}

// Drop implements LossModel (never drops).
func (NoLoss) Drop(topology.NodeID, topology.NodeID, wire.Type) bool { return false }

var _ LossModel = NoLoss{}

// BernoulliLoss drops each packet independently with probability P.
// If Only is non-empty, loss applies exclusively to the listed types; every
// other type is lossless. The experiments use Only = {DATA} to reproduce
// §4's "requests and repairs are not lost" assumption.
type BernoulliLoss struct {
	P    float64
	Only map[wire.Type]bool
	Rng  *rng.Source
}

// Drop implements LossModel.
func (b *BernoulliLoss) Drop(_, _ topology.NodeID, t wire.Type) bool {
	if len(b.Only) > 0 && !b.Only[t] {
		return false
	}
	return b.Rng.Bernoulli(b.P)
}

var _ LossModel = (*BernoulliLoss)(nil)

// GilbertElliott is a two-state burst loss model, tracked per (from, to)
// pair. In the Good state packets drop with PGood; in the Bad state with
// PBad. The chain flips Good->Bad with PGB per packet and Bad->Good with
// PBG. If Only is non-empty, loss applies exclusively to the listed types.
type GilbertElliott struct {
	PGood, PBad float64
	PGB, PBG    float64
	Only        map[wire.Type]bool
	Rng         *rng.Source

	bad map[[2]topology.NodeID]bool
}

// Drop implements LossModel.
func (g *GilbertElliott) Drop(from, to topology.NodeID, t wire.Type) bool {
	if len(g.Only) > 0 && !g.Only[t] {
		return false
	}
	if g.bad == nil {
		g.bad = make(map[[2]topology.NodeID]bool)
	}
	key := [2]topology.NodeID{from, to}
	inBad := g.bad[key]
	// Advance the channel state first, then draw loss from the new state.
	if inBad {
		if g.Rng.Bernoulli(g.PBG) {
			inBad = false
		}
	} else {
		if g.Rng.Bernoulli(g.PGB) {
			inBad = true
		}
	}
	g.bad[key] = inBad
	if inBad {
		return g.Rng.Bernoulli(g.PBad)
	}
	return g.Rng.Bernoulli(g.PGood)
}

var _ LossModel = (*GilbertElliott)(nil)

// UniformLatency applies a fixed one-way delay between every pair.
type UniformLatency struct {
	Delay time.Duration
}

// OneWay implements LatencyModel.
func (u UniformLatency) OneWay(_, _ topology.NodeID) time.Duration { return u.Delay }

var _ LatencyModel = UniformLatency{}

// HierLatency derives one-way delay from the topology's region structure:
// IntraOneWay within a region, and InterOneWay per hierarchy hop between
// regions. With the paper's defaults (intra RTT 10 ms, so IntraOneWay 5 ms)
// an adjacent-region one-way is InterOneWay, two hops costs twice that, and
// so on.
type HierLatency struct {
	Topo        *topology.Topology
	IntraOneWay time.Duration
	InterOneWay time.Duration
}

// OneWay implements LatencyModel.
func (h HierLatency) OneWay(from, to topology.NodeID) time.Duration {
	hops := h.Topo.HierarchyDistance(from, to)
	if hops == 0 {
		return h.IntraOneWay
	}
	return time.Duration(hops) * h.InterOneWay
}

var _ LatencyModel = HierLatency{}

// JitteredLatency wraps another model, scaling each delay by a uniform
// factor in [1-Frac, 1+Frac]. Jitter models queueing variance and also
// breaks protocol-level ties in wall-clock order, as a real network would.
type JitteredLatency struct {
	Inner LatencyModel
	Frac  float64
	Rng   *rng.Source
}

// OneWay implements LatencyModel.
func (j JitteredLatency) OneWay(from, to topology.NodeID) time.Duration {
	base := j.Inner.OneWay(from, to)
	return time.Duration(j.Rng.Jitter(float64(base), j.Frac))
}

var _ LatencyModel = JitteredLatency{}

// MatrixLatency specifies one-way delay per (fromRegion, toRegion) pair,
// with Intra used when the regions coincide. It panics on a region pair
// outside the matrix, which indicates a construction bug.
type MatrixLatency struct {
	Topo  *topology.Topology
	Intra time.Duration
	Inter [][]time.Duration
}

// OneWay implements LatencyModel.
func (m MatrixLatency) OneWay(from, to topology.NodeID) time.Duration {
	ra, rb := m.Topo.RegionOf(from), m.Topo.RegionOf(to)
	if ra == rb {
		return m.Intra
	}
	return m.Inter[ra][rb]
}

var _ LatencyModel = MatrixLatency{}

// Package netsim models the network underneath the protocol: per-pair
// one-way latency, per-packet loss, unicast, and IP-multicast-style fan-out
// with independent per-receiver loss draws.
//
// It substitutes for the paper's unspecified WAN testbed. The evaluation in
// §4 depends only on the latency structure (a fixed intra-region RTT, much
// larger inter-region latency) and on which receivers the initial multicast
// reaches; both are explicit models here. All randomness comes from
// dedicated rng streams so runs are reproducible.
//
// The delivery path is engineered for 1000+-member fan-outs: per-node state
// (handlers, crash flags, partition classes) lives in dense slices indexed
// by NodeID, traffic counters are fixed per-type arrays, in-flight packets
// are pooled delivery records with a pre-bound callback, and events are
// scheduled through the scheduler's no-handle Post path when available.
// Steady-state packet delivery therefore allocates nothing.
package netsim

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Packet is one message in flight together with its delivery metadata.
type Packet struct {
	From, To topology.NodeID
	Msg      wire.Message
	Size     int // bytes charged to traffic accounting
}

// Handler consumes packets delivered to a registered node.
type Handler func(pkt Packet)

// PacketReceiver consumes packets like a Handler, but as an interface: a
// receiver registers its own method (RegisterReceiver) instead of a
// per-node closure, so wiring n nodes costs no handler allocations — the
// difference between a million closures and none at cluster setup.
type PacketReceiver interface {
	ReceivePacket(pkt Packet)
}

// LatencyModel yields the one-way delay between two members.
type LatencyModel interface {
	OneWay(from, to topology.NodeID) time.Duration
}

// LossModel decides whether a packet is dropped. Implementations may keep
// per-pair state (burst models) and may discriminate by message type, which
// the experiments use to make recovery traffic lossless as in §4.
type LossModel interface {
	Drop(from, to topology.NodeID, t wire.Type) bool
}

// poster is the optional scheduler fast path: schedule without returning a
// cancellation handle (packet deliveries are never cancelled). The
// simulator's *sim.Sim implements it; any other clock.Scheduler falls back
// to After with the handle discarded.
type poster interface {
	Post(d time.Duration, fn func())
}

// ShardRouter is the sharded simulator's delivery primitive: schedule fn
// after d on the event loop owning node to, sent from node from's context.
// *sim.Sharded implements it; EnableSharding routes all deliveries through
// it instead of the plain post path.
type ShardRouter interface {
	PostFrom(from, to int32, d time.Duration, fn func())
}

// Network delivers packets between registered nodes over a clock.Scheduler.
type Network struct {
	sched   clock.Scheduler
	post    func(d time.Duration, fn func())
	latency LatencyModel
	loss    LossModel

	// handlers, receivers and down are dense, indexed by NodeID (IDs are
	// dense by construction, see topology). Slices grow on
	// Register/RegisterReceiver/SetDown. A node has a handler or a
	// receiver, never both; the last registration wins.
	handlers  []Handler
	receivers []PacketReceiver
	down      []bool
	stats     Stats
	// partition assigns each node a partition class; packets between
	// different classes vanish. partActive gates the check so the
	// partition-free hot path pays a single predictable branch. Nodes
	// beyond the slice are class 0.
	partition  []int32
	partActive bool

	// pool recycles delivery records; each carries a pre-bound callback so
	// scheduling an in-flight packet allocates nothing in steady state.
	pool []*delivery

	// Sharded-execution state (nil/empty unless EnableSharding ran).
	// shardOf maps NodeID -> shard; counters and pools become per-shard so
	// concurrent shard loops never touch one counter or free list: sends
	// account to (and allocate from) the sending node's shard, deliveries
	// account to (and recycle into) the receiving node's shard, and each
	// shard's state is only ever touched by its own loop or by the
	// coordinator between windows. Records migrate between pools on
	// cross-shard packets, which is safe for the same reason.
	router  ShardRouter
	shardOf []int32
	shStats []Stats
	pools   [][]*delivery
	merged  Stats
}

// delivery is one in-flight packet. fire is bound once at construction and
// reused for the record's whole pooled lifetime.
type delivery struct {
	n        *Network
	from, to topology.NodeID
	msg      wire.Message
	size     int
	fn       func()
}

// Stats aggregates traffic accounting per message type, stored as dense
// per-type arrays (bump = one array index, no map hashing on the hot path).
type Stats struct {
	sent      [wire.TypeCount]stats.Counter
	delivered [wire.TypeCount]stats.Counter
	dropped   [wire.TypeCount]stats.Counter
	bytes     [wire.TypeCount]stats.Counter
	// Partitioned counts packets (all types) that vanished because their
	// endpoints were in different partition classes; each is also counted
	// in Dropped under its type.
	Partitioned stats.Counter
}

// SentCount returns packets offered for transmission of type t.
func (s *Stats) SentCount(t wire.Type) int64 { return s.sent[int(t)%wire.TypeCount].Value() }

// DeliveredCount returns packets delivered of type t.
func (s *Stats) DeliveredCount(t wire.Type) int64 { return s.delivered[int(t)%wire.TypeCount].Value() }

// DroppedCount returns packets dropped of type t.
func (s *Stats) DroppedCount(t wire.Type) int64 { return s.dropped[int(t)%wire.TypeCount].Value() }

// BytesSent returns the bytes offered for transmission of type t.
func (s *Stats) BytesSent(t wire.Type) int64 { return s.bytes[int(t)%wire.TypeCount].Value() }

// PartitionDrops returns packets dropped by the partition cut.
func (s *Stats) PartitionDrops() int64 { return s.Partitioned.Value() }

// TotalSent returns packets offered across all types.
func (s *Stats) TotalSent() int64 {
	var n int64
	for i := range s.sent {
		n += s.sent[i].Value()
	}
	return n
}

// TotalBytes returns bytes offered across all types.
func (s *Stats) TotalBytes() int64 {
	var n int64
	for i := range s.bytes {
		n += s.bytes[i].Value()
	}
	return n
}

// New creates a network over the given scheduler with the given models.
// A nil loss model means lossless.
func New(sched clock.Scheduler, latency LatencyModel, loss LossModel) *Network {
	if latency == nil {
		panic("netsim: nil latency model")
	}
	if loss == nil {
		loss = NoLoss{}
	}
	n := &Network{
		sched:   sched,
		latency: latency,
		loss:    loss,
	}
	if p, ok := sched.(poster); ok {
		n.post = p.Post
	} else {
		n.post = func(d time.Duration, fn func()) { sched.After(d, fn) }
	}
	return n
}

// grow extends the dense per-node slices to cover node.
func (n *Network) grow(node topology.NodeID) {
	need := int(node) + 1
	for len(n.handlers) < need {
		n.handlers = append(n.handlers, nil)
	}
	for len(n.receivers) < need {
		n.receivers = append(n.receivers, nil)
	}
	for len(n.down) < need {
		n.down = append(n.down, false)
	}
}

// Register installs the delivery handler for node. Registering twice
// replaces the previous handler (used when a member restarts).
func (n *Network) Register(node topology.NodeID, h Handler) {
	if h == nil {
		panic(fmt.Sprintf("netsim: nil handler for node %d", node))
	}
	if node < 0 {
		panic(fmt.Sprintf("netsim: Register with negative node %d", node))
	}
	n.grow(node)
	n.handlers[node] = h
	n.receivers[node] = nil
}

// RegisterReceiver installs the delivery receiver for node — the
// allocation-free equivalent of Register for types that implement
// PacketReceiver. Registering twice (or after Register) replaces the
// previous registration.
func (n *Network) RegisterReceiver(node topology.NodeID, r PacketReceiver) {
	if r == nil {
		panic(fmt.Sprintf("netsim: nil receiver for node %d", node))
	}
	if node < 0 {
		panic(fmt.Sprintf("netsim: RegisterReceiver with negative node %d", node))
	}
	n.grow(node)
	n.receivers[node] = r
	n.handlers[node] = nil
}

// SetDown marks a node as crashed: packets to and from it vanish. Used by
// failure-injection tests and the churn experiments.
func (n *Network) SetDown(node topology.NodeID, down bool) {
	if node < 0 {
		return
	}
	n.grow(node)
	n.down[node] = down
}

// IsDown reports whether the node is marked crashed.
func (n *Network) IsDown(node topology.NodeID) bool {
	return node >= 0 && int(node) < len(n.down) && n.down[node]
}

// isDown is the bounds-checked hot-path variant (inlined by the compiler).
func (n *Network) isDown(node topology.NodeID) bool {
	return int(node) < len(n.down) && n.down[node]
}

// SetPartition installs a network partition: every node is assigned the
// class class[node] (absent nodes are class 0) and packets whose endpoints
// lie in different classes are dropped, including packets already in
// flight when the partition begins. The map is copied into a dense table.
// Partition and heal instants are ordinary scheduler events, so fault
// timelines are exactly as deterministic as the rest of the simulation.
func (n *Network) SetPartition(class map[topology.NodeID]int) {
	if len(class) == 0 {
		n.partition, n.partActive = nil, false
		return
	}
	max := topology.NodeID(0)
	for k := range class {
		if k > max {
			max = k
		}
	}
	dense := make([]int32, int(max)+1)
	for k, v := range class {
		if k >= 0 {
			dense[k] = int32(v)
		}
	}
	n.partition, n.partActive = dense, true
}

// ClearPartition heals the partition: all nodes are reconnected.
func (n *Network) ClearPartition() { n.partition, n.partActive = nil, false }

// classOf returns the node's partition class (0 beyond the table).
func (n *Network) classOf(node topology.NodeID) int32 {
	if node >= 0 && int(node) < len(n.partition) {
		return n.partition[node]
	}
	return 0
}

// Partitioned reports whether a and b are currently in different
// partition classes.
func (n *Network) Partitioned(a, b topology.NodeID) bool {
	if !n.partActive {
		return false
	}
	return n.classOf(a) != n.classOf(b)
}

// EnableSharding switches the network onto a sharded simulator: deliveries
// route through r (landing on the shard loop owning the destination node)
// and traffic accounting splits per shard. Call it once, before any
// traffic, with shardOf covering every node. The down/partition tables stay
// shared — they are only mutated by barrier-executed fault events, which
// the sharded engine serializes against all shard loops.
func (n *Network) EnableSharding(r ShardRouter, shardOf []int32, shards int) {
	if r == nil || shards < 1 {
		panic("netsim: EnableSharding with nil router or no shards")
	}
	n.router = r
	n.shardOf = shardOf
	n.shStats = make([]Stats, shards)
	n.pools = make([][]*delivery, shards)
}

// Stats returns the traffic counters. Unsharded this is a live view; when
// sharding is enabled it is a snapshot merged across shards, recomputed on
// every call (call it only between runs).
func (n *Network) Stats() *Stats {
	if n.shardOf == nil {
		return &n.stats
	}
	n.merged = n.stats
	for i := range n.shStats {
		n.merged.add(&n.shStats[i])
	}
	return &n.merged
}

// add accumulates o's counters into s.
func (s *Stats) add(o *Stats) {
	for i := 0; i < wire.TypeCount; i++ {
		s.sent[i].Add(o.sent[i].Value())
		s.delivered[i].Add(o.delivered[i].Value())
		s.dropped[i].Add(o.dropped[i].Value())
		s.bytes[i].Add(o.bytes[i].Value())
	}
	s.Partitioned.Add(o.Partitioned.Value())
}

// getDelivery takes a pooled delivery record, or builds one with its
// callback pre-bound.
func (n *Network) getDelivery() *delivery {
	if k := len(n.pool); k > 0 {
		d := n.pool[k-1]
		n.pool[k-1] = nil
		n.pool = n.pool[:k-1]
		return d
	}
	d := &delivery{n: n}
	d.fn = d.fire
	return d
}

// getDeliveryShard is getDelivery against the sending shard's pool.
func (n *Network) getDeliveryShard(shard int32) *delivery {
	pool := n.pools[shard]
	if k := len(pool); k > 0 {
		d := pool[k-1]
		pool[k-1] = nil
		n.pools[shard] = pool[:k-1]
		return d
	}
	d := &delivery{n: n}
	d.fn = d.fire
	return d
}

// fire completes an in-flight packet: re-check liveness and connectivity at
// delivery time (the node may have crashed, or a partition may have cut the
// path, while the packet was in flight), then dispatch to the handler. The
// record is returned to the pool before the handler runs, so a handler that
// immediately sends (the common protocol pattern) reuses it.
func (d *delivery) fire() {
	n, from, to, msg, size := d.n, d.from, d.to, d.msg, d.size
	d.msg = wire.Message{} // drop payload references while pooled
	st := &n.stats
	if n.shardOf == nil {
		n.pool = append(n.pool, d)
	} else {
		// Delivery runs on the receiving node's shard loop: recycle into
		// and account against that shard's state.
		sh := n.shardOf[to]
		n.pools[sh] = append(n.pools[sh], d)
		st = &n.shStats[sh]
	}

	ti := int(msg.Type) % wire.TypeCount
	if n.partActive && n.classOf(from) != n.classOf(to) {
		st.Partitioned.Inc()
		st.dropped[ti].Inc()
		return
	}
	if n.isDown(to) {
		st.dropped[ti].Inc()
		return
	}
	var h Handler
	if int(to) < len(n.handlers) {
		h = n.handlers[to]
	}
	if h != nil {
		st.delivered[ti].Inc()
		h(Packet{From: from, To: to, Msg: msg, Size: size})
		return
	}
	var r PacketReceiver
	if int(to) < len(n.receivers) {
		r = n.receivers[to]
	}
	if r == nil {
		st.dropped[ti].Inc()
		return
	}
	st.delivered[ti].Inc()
	r.ReceivePacket(Packet{From: from, To: to, Msg: msg, Size: size})
}

// Unicast sends msg from -> to, applying latency and loss models.
func (n *Network) Unicast(from, to topology.NodeID, msg wire.Message) {
	size := msg.EncodedSize()
	ti := int(msg.Type) % wire.TypeCount
	st := &n.stats
	var sendShard int32
	if n.shardOf != nil {
		// Send runs on the sending node's shard loop (or the coordinator,
		// which is exclusive): account against that shard's state. The
		// loss model must likewise be shard-safe here (see HashLoss).
		sendShard = n.shardOf[from]
		st = &n.shStats[sendShard]
	}
	st.sent[ti].Inc()
	st.bytes[ti].Add(int64(size))
	if n.partActive && n.classOf(from) != n.classOf(to) {
		st.Partitioned.Inc()
		st.dropped[ti].Inc()
		return
	}
	if n.isDown(from) || n.isDown(to) || n.loss.Drop(from, to, msg.Type) {
		st.dropped[ti].Inc()
		return
	}
	lat := n.latency.OneWay(from, to)
	var d *delivery
	if n.shardOf != nil {
		d = n.getDeliveryShard(sendShard)
		d.from, d.to, d.msg, d.size = from, to, msg, size
		n.router.PostFrom(int32(from), int32(to), lat, d.fn)
		return
	}
	d = n.getDelivery()
	d.from, d.to, d.msg, d.size = from, to, msg, size
	n.post(lat, d.fn)
}

// Multicast sends msg from -> each target with independent latency and loss
// draws, modeling IP multicast fan-out. Targets equal to from are skipped.
// Loss and latency draws happen in target order, exactly as a loop of
// Unicast calls would, so fan-out batching never changes a seeded run.
func (n *Network) Multicast(from topology.NodeID, targets []topology.NodeID, msg wire.Message) {
	for _, to := range targets {
		if to == from {
			continue
		}
		n.Unicast(from, to, msg)
	}
}

// NoLoss is the lossless LossModel.
type NoLoss struct{}

// Drop implements LossModel (never drops).
func (NoLoss) Drop(topology.NodeID, topology.NodeID, wire.Type) bool { return false }

var _ LossModel = NoLoss{}

// BernoulliLoss drops each packet independently with probability P.
// If Only is non-empty, loss applies exclusively to the listed types; every
// other type is lossless. The experiments use Only = {DATA} to reproduce
// §4's "requests and repairs are not lost" assumption.
type BernoulliLoss struct {
	P    float64
	Only map[wire.Type]bool
	Rng  *rng.Source
}

// Drop implements LossModel.
func (b *BernoulliLoss) Drop(_, _ topology.NodeID, t wire.Type) bool {
	if len(b.Only) > 0 && !b.Only[t] {
		return false
	}
	return b.Rng.Bernoulli(b.P)
}

var _ LossModel = (*BernoulliLoss)(nil)

// HashLoss drops each packet independently with probability P, drawing from
// a per-sender counter-hash stream instead of one shared rng: packet k sent
// by node f is dropped iff hash(Seed, f, k) falls below P. Because each
// sender's draw sequence depends only on that sender's own send order —
// which a deterministic shard loop preserves — the model gives
// byte-identical loss patterns at any shard count, where a shared-stream
// model (BernoulliLoss) would entangle the global send interleaving. If
// Only is non-empty, loss applies exclusively to the listed types (other
// types consume no draw).
type HashLoss struct {
	P    float64
	Seed uint64
	Only map[wire.Type]bool

	// ctr[f] counts loss draws by sender f. Pre-sized at construction so
	// concurrent shard loops never grow the slice.
	ctr []uint64
}

// NewHashLoss builds a HashLoss covering nodes [0, n).
func NewHashLoss(seed uint64, p float64, n int, only map[wire.Type]bool) *HashLoss {
	return &HashLoss{P: p, Seed: seed, Only: only, ctr: make([]uint64, n)}
}

// Drop implements LossModel.
func (h *HashLoss) Drop(from, _ topology.NodeID, t wire.Type) bool {
	if len(h.Only) > 0 && !h.Only[t] {
		return false
	}
	k := h.ctr[from]
	h.ctr[from] = k + 1
	// splitmix64 finalizer over (Seed, from, k).
	z := h.Seed + 0x9e3779b97f4a7c15*(uint64(from)+1) + 0xbf58476d1ce4e5b9*(k+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11)*(1.0/(1<<53)) < h.P
}

var _ LossModel = (*HashLoss)(nil)

// GilbertElliott is a two-state burst loss model, tracked per (from, to)
// pair. In the Good state packets drop with PGood; in the Bad state with
// PBad. The chain flips Good->Bad with PGB per packet and Bad->Good with
// PBG. If Only is non-empty, loss applies exclusively to the listed types.
type GilbertElliott struct {
	PGood, PBad float64
	PGB, PBG    float64
	Only        map[wire.Type]bool
	Rng         *rng.Source

	bad map[[2]topology.NodeID]bool
}

// Drop implements LossModel.
func (g *GilbertElliott) Drop(from, to topology.NodeID, t wire.Type) bool {
	if len(g.Only) > 0 && !g.Only[t] {
		return false
	}
	if g.bad == nil {
		g.bad = make(map[[2]topology.NodeID]bool)
	}
	key := [2]topology.NodeID{from, to}
	inBad := g.bad[key]
	// Advance the channel state first, then draw loss from the new state.
	if inBad {
		if g.Rng.Bernoulli(g.PBG) {
			inBad = false
		}
	} else {
		if g.Rng.Bernoulli(g.PGB) {
			inBad = true
		}
	}
	g.bad[key] = inBad
	if inBad {
		return g.Rng.Bernoulli(g.PBad)
	}
	return g.Rng.Bernoulli(g.PGood)
}

var _ LossModel = (*GilbertElliott)(nil)

// UniformLatency applies a fixed one-way delay between every pair.
type UniformLatency struct {
	Delay time.Duration
}

// OneWay implements LatencyModel.
func (u UniformLatency) OneWay(_, _ topology.NodeID) time.Duration { return u.Delay }

var _ LatencyModel = UniformLatency{}

// HierLatency derives one-way delay from the topology's region structure:
// IntraOneWay within a region, and InterOneWay per hierarchy hop between
// regions. With the paper's defaults (intra RTT 10 ms, so IntraOneWay 5 ms)
// an adjacent-region one-way is InterOneWay, two hops costs twice that, and
// so on. Hop counts come from the topology's precomputed region depths, so
// the per-packet cost is a short ancestor walk, not a depth recomputation.
type HierLatency struct {
	Topo        *topology.Topology
	IntraOneWay time.Duration
	InterOneWay time.Duration
}

// OneWay implements LatencyModel.
func (h HierLatency) OneWay(from, to topology.NodeID) time.Duration {
	hops := h.Topo.HierarchyDistance(from, to)
	if hops == 0 {
		return h.IntraOneWay
	}
	return time.Duration(hops) * h.InterOneWay
}

var _ LatencyModel = HierLatency{}

// JitteredLatency wraps another model, scaling each delay by a uniform
// factor in [1-Frac, 1+Frac]. Jitter models queueing variance and also
// breaks protocol-level ties in wall-clock order, as a real network would.
type JitteredLatency struct {
	Inner LatencyModel
	Frac  float64
	Rng   *rng.Source
}

// OneWay implements LatencyModel.
func (j JitteredLatency) OneWay(from, to topology.NodeID) time.Duration {
	base := j.Inner.OneWay(from, to)
	return time.Duration(j.Rng.Jitter(float64(base), j.Frac))
}

var _ LatencyModel = JitteredLatency{}

// MatrixLatency specifies one-way delay per (fromRegion, toRegion) pair,
// with Intra used when the regions coincide. It panics on a region pair
// outside the matrix, which indicates a construction bug.
type MatrixLatency struct {
	Topo  *topology.Topology
	Intra time.Duration
	Inter [][]time.Duration
}

// OneWay implements LatencyModel.
func (m MatrixLatency) OneWay(from, to topology.NodeID) time.Duration {
	ra, rb := m.Topo.RegionOf(from), m.Topo.RegionOf(to)
	if ra == rb {
		return m.Intra
	}
	return m.Inter[ra][rb]
}

var _ LatencyModel = MatrixLatency{}

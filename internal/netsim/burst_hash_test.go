package netsim

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Statistical checks for the burst-loss models. Both Gilbert–Elliott
// variants must behave like a burst channel, not a memoryless one: the
// marginal drop rate sits strictly between PGood and PBad, and the
// conditional drop probability immediately after a drop exceeds the
// marginal (drops cluster in Bad-state dwells). The counters run over one
// (from, to) pair, which is exactly how the chain is tracked.

const (
	burstPGood = 0.0125 // Loss=0.05 under the legacy PGood=Loss/4 mapping
	burstPBad  = 0.9
	burstPGB   = 0.02
	burstPBG   = 0.2
)

// burstCond feeds n DATA packets over pair (0, 1) and returns (marginal,
// P(drop | previous packet dropped)).
func burstCond(model LossModel, n int) (marginal, afterDrop float64) {
	drops, afterDropTrials, afterDropHits := 0, 0, 0
	prev := false
	for i := 0; i < n; i++ {
		lost := model.Drop(0, 1, wire.TypeData)
		if lost {
			drops++
		}
		if prev {
			afterDropTrials++
			if lost {
				afterDropHits++
			}
		}
		prev = lost
	}
	return float64(drops) / float64(n), float64(afterDropHits) / float64(afterDropTrials)
}

func burstinessCheck(t *testing.T, name string, model LossModel) {
	t.Helper()
	const n = 200000
	marginal, afterDrop := burstCond(model, n)
	// Stationary Bad fraction is PGB/(PGB+PBG) ≈ 0.091, so the marginal
	// sits near 0.09 — well inside (PGood, PBad) at this sample size.
	if marginal <= burstPGood || marginal >= burstPBad {
		t.Fatalf("%s: marginal drop rate %.4f outside (PGood=%.4f, PBad=%.4f)",
			name, marginal, burstPGood, burstPBad)
	}
	// Burstiness: a drop means the chain is almost surely in Bad, and the
	// per-packet escape probability is only PBG, so the next packet drops
	// far more often than the marginal.
	if afterDrop <= marginal {
		t.Fatalf("%s: P(drop|prev drop) %.4f <= marginal %.4f — channel is not bursty",
			name, afterDrop, marginal)
	}
	if afterDrop < 2*marginal {
		t.Fatalf("%s: P(drop|prev drop) %.4f < 2×marginal %.4f — burst clustering too weak for GE(%g,%g,%g,%g)",
			name, afterDrop, marginal, burstPGood, burstPBad, burstPGB, burstPBG)
	}
}

func TestGilbertElliottBurstStatistics(t *testing.T) {
	burstinessCheck(t, "GilbertElliott", &GilbertElliott{
		PGood: burstPGood, PBad: burstPBad,
		PGB: burstPGB, PBG: burstPBG,
		Only: map[wire.Type]bool{wire.TypeData: true},
		Rng:  rng.New(42),
	})
}

func TestHashBurstLossStatistics(t *testing.T) {
	burstinessCheck(t, "HashBurstLoss", NewHashBurstLoss(
		42, burstPGood, burstPBad, burstPGB, burstPBG, 4,
		map[wire.Type]bool{wire.TypeData: true}))
}

// TestHashBurstLossPairDeterminism is the shard-safety property: a pair's
// drop sequence is a pure function of (Seed, from, to, draw index), so
// interleaving traffic on other pairs — which is exactly what a different
// shard count changes — cannot perturb it.
func TestHashBurstLossPairDeterminism(t *testing.T) {
	const n = 5000
	fresh := func() *HashBurstLoss {
		return NewHashBurstLoss(7, burstPGood, burstPBad, burstPGB, burstPBG, 8,
			map[wire.Type]bool{wire.TypeData: true})
	}

	// Reference: pair (2, 5) alone.
	alone := fresh()
	want := make([]bool, n)
	for i := range want {
		want[i] = alone.Drop(2, 5, wire.TypeData)
	}

	// Same pair with heavy cross-pair interleaving: other senders, other
	// receivers from the same sender, and uncovered types in between.
	mixed := fresh()
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			mixed.Drop(3, 1, wire.TypeData)
		}
		for j := 0; j < i%4; j++ {
			mixed.Drop(2, topology.NodeID(j%8), wire.TypeData) // other receivers
		}
		mixed.Drop(2, 5, wire.TypeRepair) // uncovered: must consume no draw
		if got := mixed.Drop(2, 5, wire.TypeData); got != want[i] {
			t.Fatalf("draw %d: interleaved=%v, alone=%v — pair stream not independent", i, got, want[i])
		}
	}

	// And the uncovered-type calls above must not have dropped anything.
	if mixed.Drop(2, 5, wire.TypeRepair) {
		t.Fatal("uncovered type dropped under Only={DATA}")
	}
}

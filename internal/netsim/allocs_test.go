package netsim

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Allocation-regression guards for the delivery hot paths the PR 3 scale
// rewrite brought to zero steady-state allocations (dense NodeID-indexed
// handler tables, pooled delivery records, fixed counter arrays). A 200-
// receiver multicast used to cost 796 allocs; these tests pin the floor at
// zero so the win cannot silently erode.

// allocNet builds the benchmark two-region network with no-op handlers.
func allocNet(t *testing.T) (*sim.Sim, *Network, *topology.Topology, []topology.NodeID) {
	t.Helper()
	topo, err := topology.Chain(100, 100)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	net := New(s, HierLatency{Topo: topo, IntraOneWay: 5 * time.Millisecond, InterOneWay: 50 * time.Millisecond}, nil)
	var all []topology.NodeID
	for r := 0; r < topo.NumRegions(); r++ {
		for _, n := range topo.Members(topology.RegionID(r)) {
			net.Register(n, func(Packet) {})
			all = append(all, n)
		}
	}
	return s, net, topo, all
}

// TestUnicastDeliverAllocs guards one unicast through to handler dispatch.
func TestUnicastDeliverAllocs(t *testing.T) {
	s, net, topo, _ := allocNet(t)
	msg := wire.Message{Type: wire.TypeData, From: topo.Sender(),
		ID: wire.MessageID{Source: topo.Sender(), Seq: 1}, Payload: make([]byte, 256)}
	to := topo.MemberAt(0, 1)
	for i := 0; i < 64; i++ { // warm the event and delivery pools
		net.Unicast(topo.Sender(), to, msg)
		s.Run()
	}
	avg := testing.AllocsPerRun(200, func() {
		net.Unicast(topo.Sender(), to, msg)
		s.Run()
	})
	if avg != 0 {
		t.Fatalf("unicast delivery allocates %.2f objects/op, want 0", avg)
	}
}

// TestMulticastFanoutAllocs guards the initial-dissemination path: one full
// 200-member multicast with per-receiver delivery events.
func TestMulticastFanoutAllocs(t *testing.T) {
	s, net, topo, all := allocNet(t)
	msg := wire.Message{Type: wire.TypeData, From: topo.Sender(),
		ID: wire.MessageID{Source: topo.Sender(), Seq: 1}, Payload: make([]byte, 256)}
	for i := 0; i < 16; i++ { // warm the pools to fan-out depth
		net.Multicast(topo.Sender(), all, msg)
		s.Run()
	}
	avg := testing.AllocsPerRun(100, func() {
		net.Multicast(topo.Sender(), all, msg)
		s.Run()
	})
	if avg != 0 {
		t.Fatalf("200-receiver multicast allocates %.2f objects/op, want 0", avg)
	}
}

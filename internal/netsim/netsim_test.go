package netsim

import (
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

func testMsg(t wire.Type) wire.Message {
	return wire.Message{Type: t, From: 0, ID: wire.MessageID{Source: 0, Seq: 1}}
}

func TestUnicastDeliversWithLatency(t *testing.T) {
	s := sim.New()
	n := New(s, UniformLatency{Delay: 5 * time.Millisecond}, nil)
	var at time.Duration = -1
	var got Packet
	n.Register(1, func(p Packet) { at, got = s.Now(), p })
	n.Unicast(0, 1, testMsg(wire.TypeData))
	s.Run()
	if at != 5*time.Millisecond {
		t.Fatalf("delivered at %v", at)
	}
	if got.From != 0 || got.To != 1 || got.Msg.Type != wire.TypeData {
		t.Fatalf("packet %+v", got)
	}
	if got.Size != got.Msg.EncodedSize() {
		t.Fatalf("size %d != encoded size %d", got.Size, got.Msg.EncodedSize())
	}
}

func TestUnregisteredTargetCountsDropped(t *testing.T) {
	s := sim.New()
	n := New(s, UniformLatency{}, nil)
	n.Unicast(0, 9, testMsg(wire.TypeData))
	s.Run()
	if n.Stats().DroppedCount(wire.TypeData) != 1 {
		t.Fatal("drop not counted for unregistered target")
	}
	if n.Stats().DeliveredCount(wire.TypeData) != 0 {
		t.Fatal("phantom delivery")
	}
}

func TestMulticastIndependentDelivery(t *testing.T) {
	s := sim.New()
	n := New(s, UniformLatency{Delay: time.Millisecond}, nil)
	gotCount := 0
	for id := topology.NodeID(1); id <= 3; id++ {
		n.Register(id, func(Packet) { gotCount++ })
	}
	n.Multicast(0, []topology.NodeID{0, 1, 2, 3}, testMsg(wire.TypeData))
	s.Run()
	if gotCount != 3 {
		t.Fatalf("delivered to %d members, want 3 (self skipped)", gotCount)
	}
	if n.Stats().SentCount(wire.TypeData) != 3 {
		t.Fatalf("sent counter %d", n.Stats().SentCount(wire.TypeData))
	}
}

func TestBernoulliLossRespectsOnlyFilter(t *testing.T) {
	s := sim.New()
	loss := &BernoulliLoss{P: 1.0, Only: map[wire.Type]bool{wire.TypeData: true}, Rng: rng.New(1)}
	n := New(s, UniformLatency{}, loss)
	dataGot, reqGot := 0, 0
	n.Register(1, func(p Packet) {
		if p.Msg.Type == wire.TypeData {
			dataGot++
		} else {
			reqGot++
		}
	})
	n.Unicast(0, 1, testMsg(wire.TypeData))
	n.Unicast(0, 1, testMsg(wire.TypeLocalRequest))
	s.Run()
	if dataGot != 0 {
		t.Fatal("lossy DATA delivered despite P=1")
	}
	if reqGot != 1 {
		t.Fatal("request dropped despite Only={DATA}")
	}
	if n.Stats().DroppedCount(wire.TypeData) != 1 {
		t.Fatal("drop not counted")
	}
}

func TestBernoulliLossRate(t *testing.T) {
	s := sim.New()
	loss := &BernoulliLoss{P: 0.3, Rng: rng.New(7)}
	n := New(s, UniformLatency{}, loss)
	got := 0
	n.Register(1, func(Packet) { got++ })
	const total = 20000
	for i := 0; i < total; i++ {
		n.Unicast(0, 1, testMsg(wire.TypeData))
	}
	s.Run()
	rate := 1 - float64(got)/total
	if rate < 0.28 || rate > 0.32 {
		t.Fatalf("empirical loss rate %v, want ~0.3", rate)
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	s := sim.New()
	ge := &GilbertElliott{PGood: 0, PBad: 1, PGB: 0.05, PBG: 0.2, Rng: rng.New(3)}
	n := New(s, UniformLatency{}, ge)
	var outcomes []bool // true = delivered
	n.Register(1, func(Packet) { outcomes = append(outcomes, true) })
	const total = 50000
	for i := 0; i < total; i++ {
		n.Unicast(0, 1, testMsg(wire.TypeData))
	}
	s.Run()
	lossRate := 1 - float64(len(outcomes))/total
	// Stationary bad-state probability = PGB/(PGB+PBG) = 0.2; with PBad=1
	// the long-run loss rate should be near 0.2.
	if lossRate < 0.15 || lossRate > 0.25 {
		t.Fatalf("GE loss rate %v, want ~0.2", lossRate)
	}
}

func TestGilbertElliottPerPairState(t *testing.T) {
	ge := &GilbertElliott{PGood: 0, PBad: 1, PGB: 1, PBG: 0, Rng: rng.New(3)}
	// First packet on pair (0,1) transitions to bad and drops.
	if !ge.Drop(0, 1, wire.TypeData) {
		t.Fatal("pair (0,1) should enter bad state and drop")
	}
	// Independent pair (0,2) starts in good state but also transitions.
	if !ge.Drop(0, 2, wire.TypeData) {
		t.Fatal("pair (0,2) should independently enter bad state")
	}
}

func TestSetDownBlocksTraffic(t *testing.T) {
	s := sim.New()
	n := New(s, UniformLatency{Delay: time.Millisecond}, nil)
	got := 0
	n.Register(1, func(Packet) { got++ })

	n.SetDown(1, true)
	n.Unicast(0, 1, testMsg(wire.TypeData))
	s.Run()
	if got != 0 {
		t.Fatal("delivered to down node")
	}

	n.SetDown(1, false)
	if n.IsDown(1) {
		t.Fatal("IsDown after revive")
	}
	n.Unicast(0, 1, testMsg(wire.TypeData))
	s.Run()
	if got != 1 {
		t.Fatal("revived node did not receive")
	}
}

func TestCrashWhilePacketInFlight(t *testing.T) {
	s := sim.New()
	n := New(s, UniformLatency{Delay: 10 * time.Millisecond}, nil)
	got := 0
	n.Register(1, func(Packet) { got++ })
	n.Unicast(0, 1, testMsg(wire.TypeData))
	s.After(5*time.Millisecond, func() { n.SetDown(1, true) })
	s.Run()
	if got != 0 {
		t.Fatal("packet delivered to node that crashed mid-flight")
	}
	if n.Stats().DroppedCount(wire.TypeData) != 1 {
		t.Fatal("mid-flight crash drop not counted")
	}
}

func TestHierLatency(t *testing.T) {
	topo, err := topology.Chain(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	lm := HierLatency{Topo: topo, IntraOneWay: 5 * time.Millisecond, InterOneWay: 50 * time.Millisecond}
	if got := lm.OneWay(0, 1); got != 5*time.Millisecond {
		t.Fatalf("intra = %v", got)
	}
	if got := lm.OneWay(0, 2); got != 50*time.Millisecond {
		t.Fatalf("adjacent regions = %v", got)
	}
	if got := lm.OneWay(0, 4); got != 100*time.Millisecond {
		t.Fatalf("two hops = %v", got)
	}
}

func TestJitteredLatencyBounds(t *testing.T) {
	lm := JitteredLatency{Inner: UniformLatency{Delay: 100 * time.Millisecond}, Frac: 0.2, Rng: rng.New(5)}
	for i := 0; i < 1000; i++ {
		d := lm.OneWay(0, 1)
		if d < 80*time.Millisecond || d > 120*time.Millisecond {
			t.Fatalf("jittered delay %v out of bounds", d)
		}
	}
}

func TestMatrixLatency(t *testing.T) {
	topo, err := topology.Chain(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	lm := MatrixLatency{
		Topo:  topo,
		Intra: 2 * time.Millisecond,
		Inter: [][]time.Duration{{0, 70 * time.Millisecond}, {30 * time.Millisecond, 0}},
	}
	if got := lm.OneWay(0, 0); got != 2*time.Millisecond {
		t.Fatalf("intra = %v", got)
	}
	if got := lm.OneWay(0, 1); got != 70*time.Millisecond {
		t.Fatalf("0->1 = %v", got)
	}
	if got := lm.OneWay(1, 0); got != 30*time.Millisecond {
		t.Fatalf("1->0 = %v", got)
	}
}

func TestStatsTotals(t *testing.T) {
	s := sim.New()
	n := New(s, UniformLatency{}, nil)
	n.Register(1, func(Packet) {})
	n.Unicast(0, 1, testMsg(wire.TypeData))
	n.Unicast(0, 1, testMsg(wire.TypeRepair))
	s.Run()
	if n.Stats().TotalSent() != 2 {
		t.Fatalf("TotalSent = %d", n.Stats().TotalSent())
	}
	if n.Stats().TotalBytes() <= 0 {
		t.Fatal("TotalBytes not accounted")
	}
}

func TestRegisterNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register(nil) did not panic")
		}
	}()
	New(sim.New(), UniformLatency{}, nil).Register(0, nil)
}

func TestPartitionCutsCrossClassTraffic(t *testing.T) {
	s := sim.New()
	n := New(s, UniformLatency{Delay: time.Millisecond}, nil)
	delivered := map[topology.NodeID]int{}
	for id := topology.NodeID(0); id <= 3; id++ {
		id := id
		n.Register(id, func(Packet) { delivered[id]++ })
	}
	n.SetPartition(map[topology.NodeID]int{2: 1, 3: 1}) // {0,1} vs {2,3}

	n.Unicast(0, 1, testMsg(wire.TypeData)) // same side: delivered
	n.Unicast(0, 2, testMsg(wire.TypeData)) // crosses the cut: dropped
	n.Unicast(3, 2, testMsg(wire.TypeData)) // same side: delivered
	n.Unicast(2, 1, testMsg(wire.TypeData)) // crosses the other way: dropped
	s.Run()

	if delivered[1] != 1 || delivered[2] != 1 {
		t.Fatalf("deliveries %v, want one each for 1 and 2", delivered)
	}
	if got := n.Stats().PartitionDrops(); got != 2 {
		t.Fatalf("partition drops %d, want 2", got)
	}
	if got := n.Stats().DroppedCount(wire.TypeData); got != 2 {
		t.Fatalf("dropped count %d, want 2", got)
	}
}

func TestPartitionDropsInFlightPackets(t *testing.T) {
	s := sim.New()
	n := New(s, UniformLatency{Delay: 10 * time.Millisecond}, nil)
	got := 0
	n.Register(1, func(Packet) { got++ })
	n.Unicast(0, 1, testMsg(wire.TypeData))
	// The partition begins while the packet is in flight: the link goes
	// down underneath it, so it must not arrive.
	s.After(5*time.Millisecond, func() {
		n.SetPartition(map[topology.NodeID]int{1: 1})
	})
	s.Run()
	if got != 0 {
		t.Fatal("packet crossed a cut that formed while it was in flight")
	}
	if n.Stats().PartitionDrops() != 1 {
		t.Fatalf("partition drops %d, want 1", n.Stats().PartitionDrops())
	}
}

func TestPartitionHealRestoresDelivery(t *testing.T) {
	s := sim.New()
	n := New(s, UniformLatency{Delay: time.Millisecond}, nil)
	got := 0
	n.Register(1, func(Packet) { got++ })
	n.SetPartition(map[topology.NodeID]int{1: 1})
	n.Unicast(0, 1, testMsg(wire.TypeData))
	s.After(5*time.Millisecond, func() {
		n.ClearPartition()
		n.Unicast(0, 1, testMsg(wire.TypeData))
	})
	s.Run()
	if got != 1 {
		t.Fatalf("delivered %d, want exactly the post-heal packet", got)
	}
	if n.Partitioned(0, 1) {
		t.Fatal("still partitioned after heal")
	}
}

func TestSetPartitionCopiesTheMap(t *testing.T) {
	s := sim.New()
	n := New(s, UniformLatency{}, nil)
	class := map[topology.NodeID]int{1: 1}
	n.SetPartition(class)
	class[1] = 0 // caller mutation must not leak into the network
	if !n.Partitioned(0, 1) {
		t.Fatal("partition state aliased the caller's map")
	}
	n.SetPartition(nil)
	if n.Partitioned(0, 1) {
		t.Fatal("SetPartition(nil) should clear the partition")
	}
}

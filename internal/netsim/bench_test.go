package netsim

import (
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Benchmarks for the simulated network's delivery path: one Unicast is one
// loss draw, one latency lookup, one event push, and one handler dispatch —
// the per-packet cost every sweep cell pays tens of thousands of times.

// benchNet builds a two-region network with registered no-op handlers.
func benchNet(b *testing.B, loss LossModel) (*sim.Sim, *Network, *topology.Topology) {
	b.Helper()
	topo, err := topology.Chain(100, 100)
	if err != nil {
		b.Fatal(err)
	}
	s := sim.New()
	net := New(s, HierLatency{Topo: topo, IntraOneWay: 5 * time.Millisecond, InterOneWay: 50 * time.Millisecond}, loss)
	for r := 0; r < topo.NumRegions(); r++ {
		for _, n := range topo.Members(topology.RegionID(r)) {
			net.Register(n, func(Packet) {})
		}
	}
	return s, net, topo
}

// BenchmarkUnicastDeliver measures one intra-region unicast through to
// handler dispatch (send + event + delivery).
func BenchmarkUnicastDeliver(b *testing.B) {
	s, net, topo := benchNet(b, nil)
	msg := wire.Message{Type: wire.TypeData, From: topo.Sender(), ID: wire.MessageID{Source: topo.Sender(), Seq: 1}, Payload: make([]byte, 256)}
	to := topo.MemberAt(0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Unicast(topo.Sender(), to, msg)
		s.Run()
	}
}

// BenchmarkUnicastLossy adds an independent Bernoulli loss draw per packet.
func BenchmarkUnicastLossy(b *testing.B) {
	loss := &BernoulliLoss{P: 0.2, Rng: rng.New(7)}
	s, net, topo := benchNet(b, loss)
	msg := wire.Message{Type: wire.TypeData, From: topo.Sender(), ID: wire.MessageID{Source: topo.Sender(), Seq: 1}, Payload: make([]byte, 256)}
	to := topo.MemberAt(0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Unicast(topo.Sender(), to, msg)
		s.Run()
	}
}

// BenchmarkMulticastFanout measures a full 200-member multicast with
// per-receiver delivery events, the initial-dissemination hot path.
func BenchmarkMulticastFanout(b *testing.B) {
	s, net, topo := benchNet(b, nil)
	var all []topology.NodeID
	for r := 0; r < topo.NumRegions(); r++ {
		all = append(all, topo.Members(topology.RegionID(r))...)
	}
	msg := wire.Message{Type: wire.TypeData, From: topo.Sender(), ID: wire.MessageID{Source: topo.Sender(), Seq: 1}, Payload: make([]byte, 256)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Multicast(topo.Sender(), all, msg)
		s.Run()
	}
	b.ReportMetric(float64(len(all)), "receivers")
}

// BenchmarkMulticastFanout1kDeep measures the scale target: a full
// multicast to a 1008-member, depth-3 tree (branch 4, 21 regions), the
// initial-dissemination cost every message in a 1k-member scenario pays.
func BenchmarkMulticastFanout1kDeep(b *testing.B) {
	topo, err := topology.BalancedTree(4, 3, 1008)
	if err != nil {
		b.Fatal(err)
	}
	s := sim.New()
	net := New(s, HierLatency{Topo: topo, IntraOneWay: 5 * time.Millisecond, InterOneWay: 50 * time.Millisecond}, nil)
	var all []topology.NodeID
	for r := 0; r < topo.NumRegions(); r++ {
		for _, n := range topo.Members(topology.RegionID(r)) {
			net.Register(n, func(Packet) {})
			all = append(all, n)
		}
	}
	msg := wire.Message{Type: wire.TypeData, From: topo.Sender(), ID: wire.MessageID{Source: topo.Sender(), Seq: 1}, Payload: make([]byte, 256)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Multicast(topo.Sender(), all, msg)
		s.Run()
	}
	b.ReportMetric(float64(len(all)), "receivers")
}

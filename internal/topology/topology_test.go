package topology

import (
	"testing"
	"testing/quick"
)

func TestSingleRegion(t *testing.T) {
	topo, err := SingleRegion(100)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumNodes() != 100 || topo.NumRegions() != 1 {
		t.Fatalf("nodes=%d regions=%d", topo.NumNodes(), topo.NumRegions())
	}
	if topo.Sender() != 0 {
		t.Fatalf("sender = %d", topo.Sender())
	}
	if topo.Parent(0) != NoRegion {
		t.Fatal("single region has a parent")
	}
	if topo.RegionSize(0) != 100 {
		t.Fatalf("region size %d", topo.RegionSize(0))
	}
}

func TestSingleRegionRejectsEmpty(t *testing.T) {
	if _, err := SingleRegion(0); err == nil {
		t.Fatal("SingleRegion(0) succeeded")
	}
}

func TestChainHierarchy(t *testing.T) {
	topo, err := Chain(10, 20, 30)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumNodes() != 60 {
		t.Fatalf("nodes = %d", topo.NumNodes())
	}
	if p := topo.Parent(1); p != 0 {
		t.Fatalf("parent of region 1 = %d", p)
	}
	if p := topo.Parent(2); p != 1 {
		t.Fatalf("parent of region 2 = %d", p)
	}
	// Dense IDs: region 1 spans nodes 10..29.
	if r := topo.RegionOf(10); r != 1 {
		t.Fatalf("region of node 10 = %d", r)
	}
	if r := topo.RegionOf(29); r != 1 {
		t.Fatalf("region of node 29 = %d", r)
	}
	if r := topo.RegionOf(30); r != 2 {
		t.Fatalf("region of node 30 = %d", r)
	}
}

func TestStar(t *testing.T) {
	topo, err := Star(5, 7, 9)
	if err != nil {
		t.Fatal(err)
	}
	for r := RegionID(1); r < 3; r++ {
		if topo.Parent(r) != 0 {
			t.Fatalf("parent of region %d = %d", r, topo.Parent(r))
		}
	}
}

func TestTreeShape(t *testing.T) {
	topo, err := Tree(2, 3, 4) // 1 + 2 + 4 = 7 regions
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumRegions() != 7 {
		t.Fatalf("regions = %d", topo.NumRegions())
	}
	if topo.NumNodes() != 28 {
		t.Fatalf("nodes = %d", topo.NumNodes())
	}
	wantParents := []RegionID{NoRegion, 0, 0, 1, 1, 2, 2}
	for i, want := range wantParents {
		if got := topo.Parent(RegionID(i)); got != want {
			t.Fatalf("parent of region %d = %d, want %d", i, got, want)
		}
	}
}

func TestRegionOfOutOfRange(t *testing.T) {
	topo, _ := SingleRegion(3)
	if topo.RegionOf(-1) != NoRegion || topo.RegionOf(99) != NoRegion {
		t.Fatal("out-of-range nodes mapped to a region")
	}
}

func TestMembersReturnsCopy(t *testing.T) {
	topo, _ := SingleRegion(4)
	m := topo.Members(0)
	m[0] = 999
	if topo.MemberAt(0, 0) == 999 {
		t.Fatal("Members exposed internal storage")
	}
	if topo.Members(NoRegion) != nil {
		t.Fatal("Members(NoRegion) != nil")
	}
}

func TestViewOf(t *testing.T) {
	topo, err := Chain(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	v, err := topo.ViewOf(5) // node 5 is in region 1 (nodes 3..6)
	if err != nil {
		t.Fatal(err)
	}
	if v.Region != 1 || v.ParentRegion != 0 {
		t.Fatalf("view region=%d parent=%d", v.Region, v.ParentRegion)
	}
	if len(v.RegionMembers) != 4 || v.NumPeers() != 3 {
		t.Fatalf("region members = %v", v.RegionMembers)
	}
	if v.RegionMembers[v.SelfIdx] != 5 {
		t.Fatalf("SelfIdx %d does not locate self in %v", v.SelfIdx, v.RegionMembers)
	}
	peers := v.Peers()
	if len(peers) != 3 {
		t.Fatalf("region peers = %v", peers)
	}
	for _, p := range peers {
		if p == 5 {
			t.Fatal("view includes self in peers")
		}
	}
	if len(v.ParentMembers) != 3 {
		t.Fatalf("parent members = %v", v.ParentMembers)
	}

	// Root region member has no parent view.
	v0, err := topo.ViewOf(0)
	if err != nil {
		t.Fatal(err)
	}
	if v0.ParentRegion != NoRegion || len(v0.ParentMembers) != 0 {
		t.Fatalf("root view has parent: %+v", v0)
	}

	if _, err := topo.ViewOf(999); err == nil {
		t.Fatal("ViewOf(999) succeeded")
	}
}

func TestHierarchyDistance(t *testing.T) {
	topo, err := Tree(2, 3, 1) // regions: 0; 1,2; 3,4,5,6
	if err != nil {
		t.Fatal(err)
	}
	// With regionSize 1, node i is the only member of region i.
	cases := []struct {
		a, b NodeID
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{1, 3, 1},
		{0, 3, 2},
		{3, 4, 2}, // siblings under region 1
		{3, 5, 4}, // cousins: 3->1->0<-2<-5
	}
	for _, tc := range cases {
		if got := topo.HierarchyDistance(tc.a, tc.b); got != tc.want {
			t.Errorf("distance(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		if got := topo.HierarchyDistance(tc.b, tc.a); got != tc.want {
			t.Errorf("distance(%d,%d) asymmetric", tc.b, tc.a)
		}
	}
}

// Property: every node belongs to exactly one region, and region member
// lists partition the ID space.
func TestPartitionProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		sizes := make([]int, 0, len(raw)%5+1)
		for _, r := range raw {
			sizes = append(sizes, int(r%9)+1)
			if len(sizes) == 6 {
				break
			}
		}
		if len(sizes) == 0 {
			sizes = []int{1}
		}
		topo, err := Chain(sizes...)
		if err != nil {
			return false
		}
		seen := make(map[NodeID]int)
		for r := 0; r < topo.NumRegions(); r++ {
			for _, m := range topo.Members(RegionID(r)) {
				seen[m]++
				if topo.RegionOf(m) != RegionID(r) {
					return false
				}
			}
		}
		if len(seen) != topo.NumNodes() {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeRejectsBadArgs(t *testing.T) {
	if _, err := Tree(0, 2, 5); err == nil {
		t.Fatal("Tree with branch 0 succeeded")
	}
	if _, err := Tree(2, 0, 5); err == nil {
		t.Fatal("Tree with 0 levels succeeded")
	}
}

package topology

import (
	"errors"
	"testing"
)

// TestBalancedTree covers the scale layout: exact member counts, even
// spread with the remainder nearest the root, and clean errors (not
// panics) on shapes whose region count exceeds — or integer-overflows
// past — the member total.
func TestBalancedTree(t *testing.T) {
	topo, err := BalancedTree(4, 3, 1008)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumNodes() != 1008 || topo.NumRegions() != 21 || topo.Depth() != 2 {
		t.Fatalf("nodes=%d regions=%d depth=%d", topo.NumNodes(), topo.NumRegions(), topo.Depth())
	}
	for r := 0; r < topo.NumRegions(); r++ {
		if got := topo.RegionSize(RegionID(r)); got != 48 {
			t.Fatalf("region %d size %d, want 48", r, got)
		}
	}

	// Remainder goes to the regions nearest the root.
	topo, err = BalancedTree(2, 2, 8) // 3 regions, 8 members -> 3,3,2
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 3, 2}
	for r, n := range want {
		if got := topo.RegionSize(RegionID(r)); got != n {
			t.Fatalf("region %d size %d, want %d", r, got, n)
		}
	}

	for _, bad := range []struct{ branch, levels, total int }{
		{0, 1, 10},   // no branch
		{2, 0, 10},   // no levels
		{2, 3, 6},    // 7 regions > 6 members
		{2, 64, 100}, // geometric region count overflows int; must error, not panic
		{1 << 40, 2, 100},
	} {
		if _, err := BalancedTree(bad.branch, bad.levels, bad.total); !errors.Is(err, errInvalid) {
			t.Fatalf("BalancedTree(%d, %d, %d) = %v, want errInvalid", bad.branch, bad.levels, bad.total, err)
		}
	}
}

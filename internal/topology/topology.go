// Package topology models the multicast group structure RRMP assumes:
// receivers grouped into local regions, with regions arranged into an
// error-recovery hierarchy by distance from the sender (paper §2.1).
//
// Each receiver knows two partial views — the members of its own region and
// the members of its parent region — and nothing else. No node ever holds
// complete group membership, matching the IP-multicast delivery model the
// paper targets.
package topology

import (
	"errors"
	"fmt"
)

// NodeID identifies a group member. IDs are dense, starting at zero, so
// they double as slice indices throughout the simulator.
type NodeID int32

// NoNode is the sentinel for "no such member".
const NoNode NodeID = -1

// RegionID identifies a local region.
type RegionID int32

// NoRegion is the sentinel for "no such region" (the root has no parent).
const NoRegion RegionID = -1

// Region is one local region in the error-recovery hierarchy.
type Region struct {
	ID      RegionID
	Parent  RegionID // NoRegion for the sender's (root) region
	Members []NodeID
}

// Topology is an immutable description of the group: regions, their
// hierarchy, and the designated sender. Build one with the constructors in
// this package and treat it as read-only afterwards.
type Topology struct {
	regions  []Region
	regionOf []RegionID
	// depth[r] is the number of parent hops from region r to its root,
	// precomputed at build time so hierarchy-distance queries on the
	// per-packet latency path never re-derive it.
	depth  []int32
	sender NodeID
}

// errInvalid is wrapped by all validation failures.
var errInvalid = errors.New("invalid topology")

// build assembles a Topology from per-region sizes and a parent function,
// assigning dense node IDs region by region.
func build(sizes []int, parentOf func(i int) RegionID) (*Topology, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("%w: no regions", errInvalid)
	}
	total := 0
	for i, n := range sizes {
		if n < 1 {
			return nil, fmt.Errorf("%w: region %d has size %d", errInvalid, i, n)
		}
		total += n
	}
	t := &Topology{
		regions:  make([]Region, len(sizes)),
		regionOf: make([]RegionID, total),
	}
	next := NodeID(0)
	for i, n := range sizes {
		members := make([]NodeID, n)
		for j := range members {
			members[j] = next
			t.regionOf[next] = RegionID(i)
			next++
		}
		t.regions[i] = Region{ID: RegionID(i), Parent: parentOf(i), Members: members}
	}
	t.sender = t.regions[0].Members[0]
	if err := t.validate(); err != nil {
		return nil, err
	}
	// Depths are safe to derive only after validate has rejected cycles.
	t.depth = make([]int32, len(t.regions))
	for i := range t.regions {
		d := int32(0)
		for r := t.regions[i].Parent; r != NoRegion; r = t.regions[r].Parent {
			d++
		}
		t.depth[i] = d
	}
	return t, nil
}

// SingleRegion returns a topology with one region of n members; the sender
// is member 0. This is the configuration used by every experiment in the
// paper's §4.
func SingleRegion(n int) (*Topology, error) {
	return build([]int{n}, func(int) RegionID { return NoRegion })
}

// Chain returns a linear hierarchy: region 0 (the sender's region) is the
// parent of region 1, which is the parent of region 2, and so on. sizes[i]
// is the member count of region i.
func Chain(sizes ...int) (*Topology, error) {
	return build(sizes, func(i int) RegionID {
		if i == 0 {
			return NoRegion
		}
		return RegionID(i - 1)
	})
}

// Star returns a two-level hierarchy: region 0 is the root and every other
// region has region 0 as its parent. This matches the paper's Figure 1
// when all leaf regions attach directly to the sender's region.
func Star(sizes ...int) (*Topology, error) {
	if len(sizes) < 1 {
		return nil, fmt.Errorf("%w: Star needs at least the root region", errInvalid)
	}
	return build(sizes, func(i int) RegionID {
		if i == 0 {
			return NoRegion
		}
		return 0
	})
}

// Tree returns a balanced hierarchy: levels levels of regions, each inner
// region with branch children, every region holding regionSize members.
// Tree(b=1, levels=k, n) is equivalent to Chain of k regions of size n.
func Tree(branch, levels, regionSize int) (*Topology, error) {
	if branch < 1 || levels < 1 {
		return nil, fmt.Errorf("%w: Tree(branch=%d, levels=%d)", errInvalid, branch, levels)
	}
	count := 0
	width := 1
	for l := 0; l < levels; l++ {
		count += width
		width *= branch
	}
	sizes := make([]int, count)
	for i := range sizes {
		sizes[i] = regionSize
	}
	return build(sizes, func(i int) RegionID {
		if i == 0 {
			return NoRegion
		}
		return RegionID((i - 1) / branch)
	})
}

// BalancedTree returns a Tree(branch, levels, ·) hierarchy holding exactly
// total members, spread as evenly as possible across the regions with the
// remainder assigned to the regions nearest the root. It is the layout the
// scale experiments use to hit exact member counts (1000, 5000, ...) on a
// fixed tree shape; total must be at least the region count.
func BalancedTree(branch, levels, total int) (*Topology, error) {
	if branch < 1 || levels < 1 {
		return nil, fmt.Errorf("%w: BalancedTree(branch=%d, levels=%d)", errInvalid, branch, levels)
	}
	count := 0
	width := 1
	for l := 0; l < levels; l++ {
		// Every region needs >= 1 member, so the running region count may
		// never exceed total. Checking before each addition also keeps the
		// geometric width accumulation from overflowing int on absurd
		// (branch, levels) inputs: width stays <= total at all times.
		if width > total-count {
			return nil, fmt.Errorf("%w: BalancedTree total %d < %d-level branch-%d region count", errInvalid, total, levels, branch)
		}
		count += width
		if l+1 < levels {
			if width > total/branch {
				return nil, fmt.Errorf("%w: BalancedTree total %d < %d-level branch-%d region count", errInvalid, total, levels, branch)
			}
			width *= branch
		}
	}
	sizes := make([]int, count)
	base, rem := total/count, total%count
	for i := range sizes {
		sizes[i] = base
		if i < rem {
			sizes[i]++
		}
	}
	return build(sizes, func(i int) RegionID {
		if i == 0 {
			return NoRegion
		}
		return RegionID((i - 1) / branch)
	})
}

// validate checks the hierarchy for cycles, bad parents, and an in-region
// sender.
func (t *Topology) validate() error {
	for _, r := range t.regions {
		if r.Parent == r.ID {
			return fmt.Errorf("%w: region %d is its own parent", errInvalid, r.ID)
		}
		if r.Parent != NoRegion && (r.Parent < 0 || int(r.Parent) >= len(t.regions)) {
			return fmt.Errorf("%w: region %d has unknown parent %d", errInvalid, r.ID, r.Parent)
		}
	}
	// Walk each region to a root; fail on cycles or walks longer than the
	// region count.
	for _, r := range t.regions {
		steps := 0
		for cur := r.ID; cur != NoRegion; cur = t.regions[cur].Parent {
			steps++
			if steps > len(t.regions) {
				return fmt.Errorf("%w: cycle involving region %d", errInvalid, r.ID)
			}
		}
	}
	if t.RegionOf(t.sender) == NoRegion {
		return fmt.Errorf("%w: sender %d not in any region", errInvalid, t.sender)
	}
	return nil
}

// NumNodes returns the total number of members in the group.
func (t *Topology) NumNodes() int { return len(t.regionOf) }

// NumRegions returns the number of regions.
func (t *Topology) NumRegions() int { return len(t.regions) }

// Sender returns the designated sender (a member of the root region).
func (t *Topology) Sender() NodeID { return t.sender }

// RegionOf returns the region containing node, or NoRegion for an unknown
// node.
func (t *Topology) RegionOf(node NodeID) RegionID {
	if node < 0 || int(node) >= len(t.regionOf) {
		return NoRegion
	}
	return t.regionOf[node]
}

// Parent returns the parent region of r, or NoRegion at the root or for an
// unknown region.
func (t *Topology) Parent(r RegionID) RegionID {
	if r < 0 || int(r) >= len(t.regions) {
		return NoRegion
	}
	return t.regions[r].Parent
}

// RegionSize returns the number of members in region r (0 if unknown).
func (t *Topology) RegionSize(r RegionID) int {
	if r < 0 || int(r) >= len(t.regions) {
		return 0
	}
	return len(t.regions[r].Members)
}

// MemberAt returns the i-th member of region r. It panics on out-of-range
// arguments; use RegionSize to bound i. This accessor exists so hot protocol
// paths can pick random members without allocating.
func (t *Topology) MemberAt(r RegionID, i int) NodeID {
	return t.regions[r].Members[i]
}

// Members returns a copy of region r's member list (nil for an unknown
// region).
func (t *Topology) Members(r RegionID) []NodeID {
	if r < 0 || int(r) >= len(t.regions) {
		return nil
	}
	out := make([]NodeID, len(t.regions[r].Members))
	copy(out, t.regions[r].Members)
	return out
}

// HierarchyDistance returns the number of parent hops separating the regions
// of a and b along the hierarchy (0 if the same region). If neither region
// is an ancestor of the other, it returns the sum of both distances to the
// deepest common ancestor; with disjoint roots it returns the sum of both
// depths plus one. Latency models use this to scale inter-region delay.
func (t *Topology) HierarchyDistance(a, b NodeID) int {
	ra, rb := t.RegionOf(a), t.RegionOf(b)
	return t.RegionDistance(ra, rb)
}

// RegionDistance returns the hierarchy distance between two regions (the
// node-level HierarchyDistance of their members). Depths are precomputed,
// so one call costs only the walk to the common ancestor — the per-packet
// budget the latency models pay at 1000+-member scale.
func (t *Topology) RegionDistance(ra, rb RegionID) int {
	if ra == rb {
		return 0
	}
	da, db := 0, 0
	if ra >= 0 && int(ra) < len(t.depth) {
		da = int(t.depth[ra])
	}
	if rb >= 0 && int(rb) < len(t.depth) {
		db = int(t.depth[rb])
	}
	x, y := ra, rb
	dist := 0
	for da > db {
		x = t.regions[x].Parent
		da--
		dist++
	}
	for db > da {
		y = t.regions[y].Parent
		db--
		dist++
	}
	for x != y {
		if x == NoRegion || y == NoRegion {
			return dist + 1 // disjoint roots
		}
		x = t.regions[x].Parent
		y = t.regions[y].Parent
		dist += 2
	}
	return dist
}

// Depth returns the deepest region's distance from the root (0 for a
// single-level topology). Scale experiments report it alongside member
// counts.
func (t *Topology) Depth() int {
	max := int32(0)
	for _, d := range t.depth {
		if d > max {
			max = d
		}
	}
	return int(max)
}

// ShardMap partitions the regions into at most shards contiguous blocks of
// region ids, balanced by member count, and returns the region -> shard
// assignment. Contiguity matters twice over: regions are the protocol's
// locality unit (a region's members only ever appear together in views), and
// node ids are assigned region by region, so each shard also owns one dense
// node-id range. The greedy proportional cut assigns region i to the current
// shard until that shard's cumulative member count reaches its proportional
// quota, advancing early when exactly enough regions remain to give every
// later shard at least one.
func (t *Topology) ShardMap(shards int) []int32 {
	if shards > len(t.regions) {
		shards = len(t.regions)
	}
	if shards < 1 {
		shards = 1
	}
	out := make([]int32, len(t.regions))
	total := len(t.regionOf)
	s, cum := 0, 0
	for i := range t.regions {
		out[i] = int32(s)
		cum += len(t.regions[i].Members)
		if s < shards-1 {
			remaining := len(t.regions) - i - 1
			needed := shards - s - 1
			if cum*shards >= (s+1)*total || remaining == needed {
				s++
			}
		}
	}
	return out
}

// NodeShards maps every node to its shard under ShardMap(shards) and
// returns the effective shard count (which may be lower than requested when
// there are fewer regions than shards).
func (t *Topology) NodeShards(shards int) ([]int32, int) {
	rm := t.ShardMap(shards)
	eff := int(rm[len(rm)-1]) + 1
	out := make([]int32, len(t.regionOf))
	for n, r := range t.regionOf {
		out[n] = rm[r]
	}
	return out, eff
}

// View is the partial membership knowledge one member has (paper §2.1):
// all members of its own region plus all members of its parent region.
//
// Both member slices are shared — every view of a region aliases the
// topology's single region slice instead of carrying a private copy, so
// building all views of an n-member group costs O(n), not O(n × region
// size). Treat them as read-only; a consumer that needs a private or
// self-excluding list takes Peers().
type View struct {
	Self         NodeID
	Region       RegionID
	ParentRegion RegionID // NoRegion if the member is in the root region
	// RegionMembers is the member's own region, Self included, in region
	// (ascending ID) order. Shared across views — read-only.
	RegionMembers []NodeID
	// SelfIdx is Self's position in RegionMembers, so self-excluding
	// iteration and random peer picks need no separate peers slice.
	SelfIdx int
	// ParentMembers is the parent region's member list (empty at the
	// root). Shared across views — read-only.
	ParentMembers []NodeID
}

// Peers returns a fresh copy of the region members excluding Self, in
// region order. Cold paths that mutate or retain a private peer list use
// this; hot paths index RegionMembers/SelfIdx directly.
func (v View) Peers() []NodeID {
	if len(v.RegionMembers) <= 1 {
		return nil
	}
	out := make([]NodeID, 0, len(v.RegionMembers)-1)
	for i, m := range v.RegionMembers {
		if i != v.SelfIdx {
			out = append(out, m)
		}
	}
	return out
}

// NumPeers returns the number of region peers (region size minus Self).
func (v View) NumPeers() int {
	if len(v.RegionMembers) == 0 {
		return 0
	}
	return len(v.RegionMembers) - 1
}

// ViewOf computes the membership view of node. The returned slices alias
// the topology's own region storage (see View) — callers must not mutate
// them.
func (t *Topology) ViewOf(node NodeID) (View, error) {
	r := t.RegionOf(node)
	if r == NoRegion {
		return View{}, fmt.Errorf("%w: node %d not in topology", errInvalid, node)
	}
	v := View{Self: node, Region: r, ParentRegion: t.Parent(r), RegionMembers: t.regions[r].Members}
	// Region members are assigned dense ascending IDs at build time, so
	// Self's index is a subtraction; scan as a fallback for safety.
	if idx := int(node - v.RegionMembers[0]); idx >= 0 && idx < len(v.RegionMembers) && v.RegionMembers[idx] == node {
		v.SelfIdx = idx
	} else {
		for i, m := range v.RegionMembers {
			if m == node {
				v.SelfIdx = i
				break
			}
		}
	}
	if v.ParentRegion != NoRegion {
		v.ParentMembers = t.regions[v.ParentRegion].Members
	}
	return v, nil
}

package rng

import (
	"math"
	"testing"
)

func TestBernoulliEdgeCases(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	r := New(2)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		const n = 100000
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Fatalf("Bernoulli(%v) empirical mean %v", p, got)
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(3)
	const rate, n = 2.0, 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64(rate)
		if v < 0 {
			t.Fatalf("ExpFloat64 returned negative value %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("ExpFloat64(%v) mean %v, want ~%v", rate, mean, 1/rate)
	}
}

func TestExpFloat64PanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ExpFloat64(0) did not panic")
		}
	}()
	New(1).ExpFloat64(0)
}

func TestBinomialEdgeCases(t *testing.T) {
	r := New(4)
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Fatalf("Binomial(0, .5) = %d", got)
	}
	if got := r.Binomial(10, 0); got != 0 {
		t.Fatalf("Binomial(10, 0) = %d", got)
	}
	if got := r.Binomial(10, 1); got != 10 {
		t.Fatalf("Binomial(10, 1) = %d", got)
	}
	if got := r.Binomial(-3, 0.5); got != 0 {
		t.Fatalf("Binomial(-3, .5) = %d", got)
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(5)
	cases := []struct {
		n int
		p float64
	}{
		{10, 0.3},   // small-n path
		{500, 0.02}, // geometric-skip path
		{1000, 0.5}, // geometric-skip path, large mean
	}
	for _, tc := range cases {
		const trials = 20000
		var sum, sumSq float64
		for i := 0; i < trials; i++ {
			k := r.Binomial(tc.n, tc.p)
			if k < 0 || k > tc.n {
				t.Fatalf("Binomial(%d,%v) out of range: %d", tc.n, tc.p, k)
			}
			sum += float64(k)
			sumSq += float64(k) * float64(k)
		}
		mean := sum / trials
		wantMean := float64(tc.n) * tc.p
		variance := sumSq/trials - mean*mean
		wantVar := wantMean * (1 - tc.p)
		if math.Abs(mean-wantMean) > 3*math.Sqrt(wantVar/trials)+0.05 {
			t.Errorf("Binomial(%d,%v) mean %v, want ~%v", tc.n, tc.p, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > wantVar*0.15+0.1 {
			t.Errorf("Binomial(%d,%v) variance %v, want ~%v", tc.n, tc.p, variance, wantVar)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(6)
	for _, lambda := range []float64{0.5, 6, 50} {
		const trials = 50000
		var sum, sumSq float64
		for i := 0; i < trials; i++ {
			k := r.Poisson(lambda)
			if k < 0 {
				t.Fatalf("Poisson(%v) returned %d", lambda, k)
			}
			sum += float64(k)
			sumSq += float64(k) * float64(k)
		}
		mean := sum / trials
		variance := sumSq/trials - mean*mean
		if math.Abs(mean-lambda) > lambda*0.05+0.05 {
			t.Errorf("Poisson(%v) mean %v", lambda, mean)
		}
		if math.Abs(variance-lambda) > lambda*0.1+0.1 {
			t.Errorf("Poisson(%v) variance %v", lambda, variance)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	r := New(7)
	if got := r.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d", got)
	}
}

func TestPickExcludesSelf(t *testing.T) {
	r := New(8)
	for i := 0; i < 10000; i++ {
		if got := r.Pick(10, 3); got == 3 || got < 0 || got >= 10 {
			t.Fatalf("Pick(10, 3) = %d", got)
		}
	}
	// Negative self means no exclusion: all indices reachable.
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[r.Pick(4, -1)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("Pick with self=-1 only reached %v", seen)
	}
}

func TestPickUniform(t *testing.T) {
	r := New(9)
	const n, self, trials = 6, 2, 60000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Pick(n, self)]++
	}
	if counts[self] != 0 {
		t.Fatalf("Pick returned self %d times", counts[self])
	}
	want := float64(trials) / (n - 1)
	for i, c := range counts {
		if i == self {
			continue
		}
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("Pick index %d appeared %d times, want ~%v", i, c, want)
		}
	}
}

func TestPickPanicsWhenOnlySelf(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick(1, 0) did not panic")
		}
	}()
	New(1).Pick(1, 0)
}

func TestJitter(t *testing.T) {
	r := New(10)
	for i := 0; i < 10000; i++ {
		v := r.Jitter(100, 0.25)
		if v < 75 || v > 125 {
			t.Fatalf("Jitter(100, .25) = %v out of [75,125]", v)
		}
	}
	if got := r.Jitter(100, 0); got != 100 {
		t.Fatalf("Jitter with frac 0 = %v", got)
	}
}

package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: sources with equal seeds diverged: %d != %d", i, got, want)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sources with different seeds matched on %d/100 draws", same)
	}
}

func TestReseedRestoresStream(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("draw %d after Reseed: got %d, want %d", i, got, first[i])
		}
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	r := New(0)
	var nonZero bool
	for i := 0; i < 64; i++ {
		if r.Uint64() != 0 {
			nonZero = true
		}
	}
	if !nonZero {
		t.Fatal("seed 0 produced an all-zero stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	c1again := parent.Split(1)

	// Same label twice from an unchanged parent yields the same stream.
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c1again.Uint64() {
			t.Fatal("Split with equal labels is not deterministic")
		}
	}
	// Distinct labels yield distinct streams.
	c1 = parent.Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling streams matched on %d/100 draws", same)
	}
}

func TestSplitDoesNotPerturbParent(t *testing.T) {
	a := New(5)
	b := New(5)
	_ = a.Split(123)
	_ = a.Split(456)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent stream")
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	if err := quick.Check(func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(19)
	const n, trials = 5, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("Perm first-element %d appeared %d times, want ~%v", i, c, want)
		}
	}
}

func TestShuffleMatchesShuffleInts(t *testing.T) {
	a := New(23)
	b := New(23)
	x := []int{0, 1, 2, 3, 4, 5, 6, 7}
	y := append([]int(nil), x...)
	a.ShuffleInts(x)
	b.Shuffle(len(y), func(i, j int) { y[i], y[j] = y[j], y[i] })
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("Shuffle variants diverged: %v vs %v", x, y)
		}
	}
}

func TestUniformityChiSquared(t *testing.T) {
	// Coarse chi-squared check across 16 buckets. The threshold is the 99.9%
	// quantile of chi^2 with 15 degrees of freedom (~37.7).
	r := New(29)
	const buckets, n = 16, 160000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(n) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 37.7 {
		t.Fatalf("chi-squared = %v exceeds 99.9%% quantile; distribution looks biased: %v", chi2, counts)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(100)
	}
	_ = sink
}

// Package rng provides a small, deterministic random number generator used
// throughout the simulator and the randomized protocol logic.
//
// Every run of an experiment derives all of its randomness from a single
// root seed. Independent components (members, loss models, workloads) obtain
// their own streams via Split, so adding a new consumer of randomness does
// not perturb the draws seen by existing consumers. This property is what
// makes simulation results reproducible and diffable across code changes.
//
// The generator is xoshiro256**, seeded through splitmix64, following the
// reference construction by Blackman and Vigna. It is not cryptographically
// secure and must never be used for security purposes.
package rng

import "math/bits"

// Source is a deterministic pseudo-random source. It is not safe for
// concurrent use; give each goroutine (or each simulated member) its own
// Source via Split.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed. Two Sources created with the same
// seed produce identical streams.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed resets the source to the stream defined by seed.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	// xoshiro256** must not be seeded with the all-zero state. splitmix64
	// cannot emit four consecutive zeros, but guard anyway so Reseed is
	// total for every input.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// splitmix64 advances the splitmix64 state and returns (newState, output).
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9

	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Split derives an independent child stream identified by label. Children
// with distinct labels are statistically independent of each other and of
// the parent's future output. Split does not advance the parent stream, so
// the set of labels used elsewhere never changes this stream's draws.
func (r *Source) Split(label uint64) *Source {
	// Mix the current state with the label through splitmix64 so that
	// (seed, label) pairs map to well-separated child states.
	mix := r.s[0] ^ bits.RotateLeft64(r.s[2], 23) ^ (label * 0x9e3779b97f4a7c15)
	_, out := splitmix64(mix)
	return New(out ^ label)
}

// SplitInto derives the identical child stream Split(label) would return,
// but writes it into dst instead of allocating a new Source. Batch setup
// paths (one backing slice for a million member streams) use it so
// per-member stream construction costs zero heap allocations; dst's draws
// are draw-for-draw equal to Split(label)'s.
func (r *Source) SplitInto(label uint64, dst *Source) {
	mix := r.s[0] ^ bits.RotateLeft64(r.s[2], 23) ^ (label * 0x9e3779b97f4a7c15)
	_, out := splitmix64(mix)
	dst.Reseed(out ^ label)
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Lemire's multiply-shift rejection method: unbiased and fast.
	for {
		v := r.Uint64()
		hi, lo := bits.Mul64(v, n)
		if lo >= n || lo >= -n%n {
			return hi
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63 returns a uniform non-negative int64.
func (r *Source) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability 1/2.
func (r *Source) Bool() bool {
	return r.Uint64()&1 == 1
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes p in place uniformly at random.
func (r *Source) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle permutes n elements in place using the provided swap function.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

package rng

import "math"

// Bernoulli returns true with probability p. Values of p outside [0, 1] are
// clamped, so Bernoulli(1.1) is always true and Bernoulli(-0.1) always
// false.
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// ExpFloat64 returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *Source) ExpFloat64(rate float64) float64 {
	if rate <= 0 {
		panic("rng: ExpFloat64 with rate <= 0")
	}
	// Inverse transform sampling. 1-Float64() is in (0,1], avoiding log(0).
	return -math.Log(1-r.Float64()) / rate
}

// Binomial returns a draw from Binomial(n, p): the number of successes in n
// independent trials each succeeding with probability p.
//
// For small n it sums Bernoulli trials; for large n with small mean it uses
// the exact BTPE-free inversion by waiting-time geometric skips, which stays
// exact and is O(np) expected.
func (r *Source) Binomial(n int, p float64) int {
	switch {
	case n <= 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	// Geometric skipping: the index gap between successes is Geometric(p).
	// Expected work is O(np + 1) which is fine for the region sizes (<=10^4)
	// used by the protocol and experiments.
	k := 0
	i := 0
	logq := math.Log1p(-p)
	for {
		// Skip a Geometric(p) number of failures.
		g := int(math.Floor(math.Log(1-r.Float64()) / logq))
		i += g + 1
		if i > n {
			return k
		}
		k++
	}
}

// Poisson returns a draw from Poisson(lambda). It panics if lambda < 0.
//
// Knuth's multiplication method is used for lambda <= 30; larger lambdas sum
// independent Poisson halves, which keeps the method exact without needing
// floating-point rejection machinery.
func (r *Source) Poisson(lambda float64) int {
	if lambda < 0 {
		panic("rng: Poisson with lambda < 0")
	}
	if lambda == 0 {
		return 0
	}
	if lambda > 30 {
		// Poisson(a+b) = Poisson(a) + Poisson(b) for independent draws.
		half := lambda / 2
		return r.Poisson(half) + r.Poisson(lambda-half)
	}
	limit := math.Exp(-lambda)
	k := 0
	prod := r.Float64()
	for prod > limit {
		k++
		prod *= r.Float64()
	}
	return k
}

// NormFloat64 returns a standard normal draw (mean 0, stddev 1) via the
// Box–Muller transform. Exactly two uniform draws are consumed per call,
// so streams using it stay trivially reproducible.
func (r *Source) NormFloat64() float64 {
	// 1-Float64() is in (0,1], avoiding log(0).
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Pick returns a uniformly random element index of a collection of size n,
// excluding the index self (pass a negative self to exclude nothing). It
// panics if no valid index exists.
func (r *Source) Pick(n, self int) int {
	if self < 0 || self >= n {
		return r.Intn(n)
	}
	if n < 2 {
		panic("rng: Pick with no candidate other than self")
	}
	k := r.Intn(n - 1)
	if k >= self {
		k++
	}
	return k
}

// Jitter returns a value uniform in [d*(1-frac), d*(1+frac)]. Negative
// results are clamped to zero. It is used to desynchronize periodic timers.
func (r *Source) Jitter(d float64, frac float64) float64 {
	if frac <= 0 {
		return d
	}
	v := d * (1 - frac + 2*frac*r.Float64())
	if v < 0 {
		return 0
	}
	return v
}

// Package gossipfd implements the gossip-style failure detection service of
// van Renesse, Minsky and Hayden that RRMP's companion work builds on
// (paper reference [13]).
//
// Each member maintains a heartbeat counter per known peer. Periodically it
// increments its own counter and sends its whole table to one uniformly
// random peer, which merges by taking element-wise maxima. A peer whose
// counter has not increased for FailTimeout is suspected; after
// CleanupTimeout it is dropped from the table so that counters of departed
// members do not linger forever.
//
// The detector is region-scoped, matching RRMP's partial-membership model:
// a member gossips only within its region view. Stability detection and the
// churn experiments use it to exclude dead members from membership-derived
// decisions.
package gossipfd

import (
	"sort"
	"time"

	"repro/internal/clock"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Send transmits a heartbeat PDU to a peer; bind it to the network.
type Send func(to topology.NodeID, msg wire.Message)

// Config assembles a detector.
type Config struct {
	// View is the member's region view; the detector tracks all
	// RegionMembers (Self included).
	View topology.View
	// Sched supplies time and timers; required.
	Sched clock.Scheduler
	// Rng picks gossip targets; required.
	Rng *rng.Source
	// Send transmits heartbeats; required.
	Send Send
	// GossipInterval is the heartbeat/gossip period (default 50 ms).
	GossipInterval time.Duration
	// FailTimeout marks a peer suspected after this much silence
	// (default 8 × GossipInterval).
	FailTimeout time.Duration
	// CleanupTimeout drops a suspected peer's state entirely
	// (default 2 × FailTimeout).
	CleanupTimeout time.Duration
	// OnSuspect and OnRestore observe suspicion transitions.
	OnSuspect func(n topology.NodeID)
	// OnRestore fires when a suspected peer's counter advances again.
	OnRestore func(n topology.NodeID)
}

// entry is one tracked peer.
type entry struct {
	counter   uint64
	updatedAt time.Duration
	suspected bool
}

// Detector is a region-scoped gossip failure detector. Not safe for
// concurrent use.
type Detector struct {
	cfg     Config
	order   []topology.NodeID // canonical table order: sorted region members
	index   map[topology.NodeID]int
	entries map[topology.NodeID]*entry
	// tombstones remember the last counter of cleaned-up peers. Gossip
	// tables keep circulating a dead peer's final counter; re-admission
	// requires a strictly higher value, i.e. a genuinely fresh heartbeat.
	tombstones map[topology.NodeID]uint64
	ticker     clock.Timer
	running    bool
}

// New constructs a detector (stopped; call Start).
func New(cfg Config) *Detector {
	if cfg.Sched == nil || cfg.Rng == nil || cfg.Send == nil {
		panic("gossipfd: Sched, Rng and Send are required")
	}
	if cfg.GossipInterval <= 0 {
		cfg.GossipInterval = 50 * time.Millisecond
	}
	if cfg.FailTimeout <= 0 {
		cfg.FailTimeout = 8 * cfg.GossipInterval
	}
	if cfg.CleanupTimeout <= 0 {
		cfg.CleanupTimeout = 2 * cfg.FailTimeout
	}
	// The detector owns its member ordering (and the view's slice is
	// shared), so copy before sorting. Region slices are already
	// ascending, but the sorted order is this package's invariant — keep
	// enforcing it locally.
	members := append([]topology.NodeID(nil), cfg.View.RegionMembers...)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	d := &Detector{
		cfg:        cfg,
		order:      members,
		index:      make(map[topology.NodeID]int, len(members)),
		entries:    make(map[topology.NodeID]*entry, len(members)),
		tombstones: make(map[topology.NodeID]uint64),
	}
	now := cfg.Sched.Now()
	for i, n := range members {
		d.index[n] = i
		d.entries[n] = &entry{updatedAt: now}
	}
	return d
}

// Start begins periodic gossip. Idempotent.
func (d *Detector) Start() {
	if d.running {
		return
	}
	d.running = true
	d.scheduleTick()
}

// Stop halts gossip. Idempotent.
func (d *Detector) Stop() {
	if !d.running {
		return
	}
	d.running = false
	if d.ticker != nil {
		d.ticker.Stop()
		d.ticker = nil
	}
}

func (d *Detector) scheduleTick() {
	// Jitter desynchronizes members so gossip rounds do not phase-lock.
	delay := time.Duration(d.cfg.Rng.Jitter(float64(d.cfg.GossipInterval), 0.1))
	d.ticker = d.cfg.Sched.After(delay, func() {
		d.tick()
		if d.running {
			d.scheduleTick()
		}
	})
}

// tick increments the own counter, sweeps timeouts, and gossips the table
// to one random live peer.
func (d *Detector) tick() {
	now := d.cfg.Sched.Now()
	self := d.entries[d.cfg.View.Self]
	self.counter++
	self.updatedAt = now

	d.sweep(now)

	target, ok := d.randomLivePeer()
	if !ok {
		return
	}
	counters := make([]uint64, len(d.order))
	for i, n := range d.order {
		if e, ok := d.entries[n]; ok {
			counters[i] = e.counter
		}
	}
	d.cfg.Send(target, wire.Message{
		Type:     wire.TypeHeartbeat,
		From:     d.cfg.View.Self,
		Counters: counters,
	})
}

// sweep updates suspicion state from timeouts.
func (d *Detector) sweep(now time.Duration) {
	for n, e := range d.entries {
		if n == d.cfg.View.Self {
			continue
		}
		silence := now - e.updatedAt
		switch {
		case silence > d.cfg.CleanupTimeout:
			d.tombstones[n] = e.counter
			delete(d.entries, n)
		case silence > d.cfg.FailTimeout && !e.suspected:
			e.suspected = true
			if d.cfg.OnSuspect != nil {
				d.cfg.OnSuspect(n)
			}
		}
	}
}

func (d *Detector) randomLivePeer() (topology.NodeID, bool) {
	candidates := make([]topology.NodeID, 0, len(d.order))
	for _, n := range d.order {
		if n == d.cfg.View.Self {
			continue
		}
		if e, ok := d.entries[n]; ok && !e.suspected {
			candidates = append(candidates, n)
		}
	}
	if len(candidates) == 0 {
		// Everyone looks dead — typical after this node itself was
		// partitioned or paused. Fall back to the static view so a
		// rejoining member can re-establish contact instead of going
		// permanently mute.
		for _, n := range d.order {
			if n != d.cfg.View.Self {
				candidates = append(candidates, n)
			}
		}
	}
	if len(candidates) == 0 {
		return topology.NoNode, false
	}
	return candidates[d.cfg.Rng.Intn(len(candidates))], true
}

// Receive merges an incoming heartbeat table (wire.TypeHeartbeat).
func (d *Detector) Receive(msg wire.Message) {
	if msg.Type != wire.TypeHeartbeat {
		return
	}
	now := d.cfg.Sched.Now()
	for i, c := range msg.Counters {
		if i >= len(d.order) {
			break
		}
		n := d.order[i]
		if n == d.cfg.View.Self {
			continue
		}
		e, ok := d.entries[n]
		if !ok {
			// Re-admit a cleaned-up peer only on fresh evidence: a counter
			// strictly above its tombstone. Stale tables recirculating the
			// final pre-crash counter must not resurrect it.
			if c <= d.tombstones[n] {
				continue
			}
			delete(d.tombstones, n)
			// Re-admission is a restore: the peer was considered failed
			// (unknown reads as suspected) and is demonstrably alive.
			e = &entry{suspected: true}
			d.entries[n] = e
		}
		if c > e.counter {
			e.counter = c
			e.updatedAt = now
			if e.suspected {
				e.suspected = false
				if d.cfg.OnRestore != nil {
					d.cfg.OnRestore(n)
				}
			}
		}
	}
}

// Suspected reports whether n is currently suspected (unknown nodes count
// as suspected).
func (d *Detector) Suspected(n topology.NodeID) bool {
	if n == d.cfg.View.Self {
		return false
	}
	e, ok := d.entries[n]
	return !ok || e.suspected
}

// Live returns the sorted region members currently considered alive
// (including self).
func (d *Detector) Live() []topology.NodeID {
	out := make([]topology.NodeID, 0, len(d.entries))
	for _, n := range d.order {
		if e, ok := d.entries[n]; ok && !e.suspected {
			out = append(out, n)
		}
	}
	return out
}

package gossipfd

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// fdCluster wires one detector per region member over a simulated network.
type fdCluster struct {
	sim       *sim.Sim
	net       *netsim.Network
	topo      *topology.Topology
	detectors map[topology.NodeID]*Detector
	suspects  map[topology.NodeID][]topology.NodeID // observer -> suspected
	restores  map[topology.NodeID][]topology.NodeID
}

func newFDCluster(t *testing.T, n int, seed uint64) *fdCluster {
	t.Helper()
	topo, err := topology.SingleRegion(n)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	net := netsim.New(s, netsim.UniformLatency{Delay: 2 * time.Millisecond}, nil)
	root := rng.New(seed)
	c := &fdCluster{
		sim: s, net: net, topo: topo,
		detectors: make(map[topology.NodeID]*Detector),
		suspects:  make(map[topology.NodeID][]topology.NodeID),
		restores:  make(map[topology.NodeID][]topology.NodeID),
	}
	for _, node := range topo.Members(0) {
		node := node
		view, err := topo.ViewOf(node)
		if err != nil {
			t.Fatal(err)
		}
		d := New(Config{
			View:  view,
			Sched: s,
			Rng:   root.Split(uint64(node) + 1),
			Send: func(to topology.NodeID, msg wire.Message) {
				net.Unicast(node, to, msg)
			},
			OnSuspect: func(x topology.NodeID) { c.suspects[node] = append(c.suspects[node], x) },
			OnRestore: func(x topology.NodeID) { c.restores[node] = append(c.restores[node], x) },
		})
		c.detectors[node] = d
		net.Register(node, func(p netsim.Packet) { d.Receive(p.Msg) })
	}
	return c
}

func (c *fdCluster) startAll() {
	for _, d := range c.detectors {
		d.Start()
	}
}

func TestNoSuspicionsWhenAllAlive(t *testing.T) {
	c := newFDCluster(t, 8, 1)
	c.startAll()
	c.sim.RunUntil(3 * time.Second)
	for n, sus := range c.suspects {
		if len(sus) != 0 {
			t.Fatalf("node %d suspected %v with everyone alive", n, sus)
		}
	}
	for n, d := range c.detectors {
		if got := len(d.Live()); got != 8 {
			t.Fatalf("node %d sees %d live members", n, got)
		}
	}
}

func TestCrashDetected(t *testing.T) {
	c := newFDCluster(t, 8, 2)
	c.startAll()
	victim := topology.NodeID(3)
	c.sim.At(time.Second, func() {
		c.detectors[victim].Stop()
		c.net.SetDown(victim, true)
	})
	c.sim.RunUntil(4 * time.Second)
	for _, n := range c.topo.Members(0) {
		if n == victim {
			continue
		}
		if !c.detectors[n].Suspected(victim) {
			// It may have been cleaned up entirely, which also counts.
			found := false
			for _, s := range c.suspects[n] {
				if s == victim {
					found = true
				}
			}
			if !found {
				t.Fatalf("node %d never suspected crashed node %d", n, victim)
			}
		}
	}
	// No false positives.
	for n, sus := range c.suspects {
		for _, s := range sus {
			if s != victim {
				t.Fatalf("node %d falsely suspected %d", n, s)
			}
		}
	}
}

func TestRecoveryRestores(t *testing.T) {
	c := newFDCluster(t, 6, 3)
	c.startAll()
	victim := topology.NodeID(2)
	c.sim.At(500*time.Millisecond, func() {
		c.detectors[victim].Stop()
		c.net.SetDown(victim, true)
	})
	// Revive before cleanup expires (cleanup = 2 * fail = 1.6s after
	// silence starts).
	c.sim.At(1200*time.Millisecond, func() {
		c.net.SetDown(victim, false)
		c.detectors[victim].Start()
	})
	c.sim.RunUntil(4 * time.Second)
	restoredSomewhere := false
	for _, rs := range c.restores {
		for _, r := range rs {
			if r == victim {
				restoredSomewhere = true
			}
		}
	}
	if !restoredSomewhere {
		t.Fatal("revived node never restored at any peer")
	}
	for _, n := range c.topo.Members(0) {
		if n == victim {
			continue
		}
		if c.detectors[n].Suspected(victim) {
			t.Fatalf("node %d still suspects revived node %d", n, victim)
		}
	}
}

func TestCleanupRemovesDeadPeer(t *testing.T) {
	c := newFDCluster(t, 4, 4)
	c.startAll()
	victim := topology.NodeID(1)
	c.sim.At(200*time.Millisecond, func() {
		c.detectors[victim].Stop()
		c.net.SetDown(victim, true)
	})
	c.sim.RunUntil(10 * time.Second)
	for _, n := range c.topo.Members(0) {
		if n == victim {
			continue
		}
		for _, live := range c.detectors[n].Live() {
			if live == victim {
				t.Fatalf("node %d still lists dead node %d as live", n, victim)
			}
		}
		if !c.detectors[n].Suspected(victim) {
			// After cleanup the node is unknown, which must read as
			// suspected.
			t.Fatalf("node %d does not report cleaned-up node as suspected", n)
		}
	}
}

func TestSuspectedSelfAlwaysFalse(t *testing.T) {
	c := newFDCluster(t, 3, 5)
	if c.detectors[0].Suspected(0) {
		t.Fatal("node suspects itself")
	}
}

func TestReceiveIgnoresOtherTypes(t *testing.T) {
	c := newFDCluster(t, 3, 6)
	d := c.detectors[0]
	d.Receive(wire.Message{Type: wire.TypeData, Counters: []uint64{9, 9, 9}})
	// Counters must be untouched: node 1 still at 0.
	if d.entries[1].counter != 0 {
		t.Fatal("non-heartbeat message merged")
	}
}

func TestCountersMonotone(t *testing.T) {
	c := newFDCluster(t, 3, 7)
	d := c.detectors[0]
	d.Receive(wire.Message{Type: wire.TypeHeartbeat, From: 1, Counters: []uint64{0, 5, 0}})
	if d.entries[1].counter != 5 {
		t.Fatalf("counter = %d", d.entries[1].counter)
	}
	// A stale table must not regress the counter.
	d.Receive(wire.Message{Type: wire.TypeHeartbeat, From: 2, Counters: []uint64{0, 3, 0}})
	if d.entries[1].counter != 5 {
		t.Fatalf("counter regressed to %d", d.entries[1].counter)
	}
}

func TestStartStopIdempotent(t *testing.T) {
	c := newFDCluster(t, 3, 8)
	d := c.detectors[0]
	d.Start()
	d.Start()
	d.Stop()
	d.Stop()
	c.sim.RunUntil(time.Second)
	// After stop, no more gossip from node 0.
	sent := c.net.Stats().SentCount(wire.TypeHeartbeat)
	c.sim.RunUntil(2 * time.Second)
	// Other detectors were never started, so traffic must not grow.
	if got := c.net.Stats().SentCount(wire.TypeHeartbeat); got != sent {
		t.Fatalf("gossip continued after Stop: %d -> %d", sent, got)
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New without deps did not panic")
		}
	}()
	New(Config{})
}

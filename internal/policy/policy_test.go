package policy

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/topology"
)

func testEnv() Env {
	return Env{
		Self:          3,
		Region:        []topology.NodeID{0, 1, 2, 3},
		RegionSize:    4,
		IdleThreshold: 40 * time.Millisecond,
		C:             2,
		LongTermTTL:   time.Minute,
	}
}

// TestParseAliases pins the alias table: every historic token and the
// empty default resolve to their canonical kind.
func TestParseAliases(t *testing.T) {
	for token, kind := range map[string]string{
		"":           KindTwoPhase,
		"two-phase":  KindTwoPhase,
		"fixed":      KindFixed,
		"fixed-hold": KindFixed,
		"all":        KindAll,
		"buffer-all": KindAll,
		"hash":       KindHash,
		"hash-elect": KindHash,
		"adaptive":   KindAdaptive,
	} {
		sp, err := Parse(token)
		if err != nil {
			t.Fatalf("Parse(%q): %v", token, err)
		}
		if sp.Kind != kind {
			t.Fatalf("Parse(%q).Kind = %q, want %q", token, sp.Kind, kind)
		}
	}
}

// TestParseParameters pins the spec grammar: per-kind parameter menus,
// value validation and the tmin<=tmax cross-check.
func TestParseParameters(t *testing.T) {
	sp, err := Parse("adaptive:tmin=10ms,tmax=80ms,target=1.5,alpha=0.2")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Kind: KindAdaptive, TMin: 10 * time.Millisecond, TMax: 80 * time.Millisecond, Target: 1.5, Alpha: 0.2}
	if sp != want {
		t.Fatalf("parsed %+v, want %+v", sp, want)
	}
	sp, err = Parse("fixed-hold:hold=250ms")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Kind != KindFixed || sp.Hold != 250*time.Millisecond {
		t.Fatalf("parsed %+v, want fixed hold=250ms", sp)
	}
	for _, bad := range []string{
		"fixed:hold=-1s",           // negative duration
		"fixed:hold",               // missing =val
		"fixed:tmin=10ms",          // adaptive-only parameter
		"two-phase:hold=1s",        // parameterless kind
		"adaptive:alpha=1.5",       // alpha outside (0, 1]
		"adaptive:target=0",        // target must be positive
		"adaptive:tmin=9s,tmax=1s", // tmax below tmin
		"adaptive:frobnicate=1",    // unknown key
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted a malformed spec", bad)
		}
	}
}

// TestParseUnknownKind pins the typed error: unknown kinds return
// *UnknownKindError carrying the offending token and the full menu.
func TestParseUnknownKind(t *testing.T) {
	_, err := Parse("fixd:hold=1s")
	var uk *UnknownKindError
	if !errors.As(err, &uk) {
		t.Fatalf("Parse error %T, want *UnknownKindError", err)
	}
	if uk.Kind != "fixd" {
		t.Fatalf("UnknownKindError.Kind = %q, want fixd", uk.Kind)
	}
	msg := err.Error()
	for _, kind := range KnownKinds() {
		if !strings.Contains(msg, kind) {
			t.Fatalf("error %q does not list known kind %q", msg, kind)
		}
	}
}

// TestCanonical pins token canonicalization: kinds rewrite, parameters
// survive verbatim, and non-policy tokens pass through untouched.
func TestCanonical(t *testing.T) {
	for in, want := range map[string]string{
		"fixed-hold":            "fixed",
		"fixed-hold:hold=200ms": "fixed:hold=200ms",
		"buffer-all":            "all",
		"hash-elect":            "hash",
		"two-phase":             "two-phase",
		"":                      "two-phase",
		"adaptive:tmin=5ms":     "adaptive:tmin=5ms",
		"server":                "server", // the rmtp axis placeholder
	} {
		if got := Canonical(in); got != want {
			t.Fatalf("Canonical(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestBuildKinds pins what each spec constructs and the default fallbacks.
func TestBuildKinds(t *testing.T) {
	env := testEnv()
	for spec, wantName := range map[string]string{
		"two-phase": "two-phase",
		"fixed":     "fixed-hold",
		"all":       "buffer-all",
		"hash":      "hash-elect",
		"adaptive":  "adaptive",
	} {
		sp, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := sp.Build(env).Name(); got != wantName {
			t.Fatalf("Build(%q).Name() = %q, want %q", spec, got, wantName)
		}
	}
	// Fixed hold resolution order: spec > env > package default.
	if p := (Spec{Kind: KindFixed, Hold: time.Second}).Build(env).(*core.FixedHold); p.D != time.Second {
		t.Fatalf("spec hold ignored: %v", p.D)
	}
	env2 := env
	env2.FixedHold = 2 * time.Second
	if p := (Spec{Kind: KindFixed}).Build(env2).(*core.FixedHold); p.D != 2*time.Second {
		t.Fatalf("env hold ignored: %v", p.D)
	}
	if p := (Spec{Kind: KindFixed}).Build(env).(*core.FixedHold); p.D != DefaultFixedHold {
		t.Fatalf("default hold = %v, want %v", p.D, DefaultFixedHold)
	}
	// Adaptive defaults land when the spec leaves parameters zero.
	p := (Spec{Kind: KindAdaptive}).Build(env).(*core.AdaptiveHold)
	id := topology.NodeID(1)
	if d := p.Demand(id); d != 0 {
		t.Fatalf("fresh adaptive demand = %v, want 0", d)
	}
}

// TestKnownRoster pins the listing: every canonical kind appears once, in
// order, with its aliases accepted by Parse and its parameter docs intact.
func TestKnownRoster(t *testing.T) {
	infos := Known()
	if len(infos) != len(KnownKinds()) {
		t.Fatalf("roster has %d entries, KnownKinds %d", len(infos), len(KnownKinds()))
	}
	for i, info := range infos {
		if info.Kind != KnownKinds()[i] {
			t.Fatalf("roster[%d] = %q, want %q", i, info.Kind, KnownKinds()[i])
		}
		if info.Summary == "" {
			t.Fatalf("roster[%d] %q has no summary", i, info.Kind)
		}
		for _, alias := range info.Aliases {
			sp, err := Parse(alias)
			if err != nil || sp.Kind != info.Kind {
				t.Fatalf("alias %q of %q does not parse back: %v", alias, info.Kind, err)
			}
		}
		for _, param := range info.Params {
			if param.Default == "" || param.Doc == "" {
				t.Fatalf("%s parameter %q lacks default or doc", info.Kind, param.Name)
			}
		}
	}
}

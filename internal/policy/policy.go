// Package policy is the central registry of buffer-retention policies:
// one spec grammar, one canonical name per policy, and one builder shared
// by the runner, the repro facade and the CLIs. It replaces the ad-hoc
// string switches those layers used to duplicate.
//
// A spec is `kind` or `kind:key=val,key=val`, e.g.
//
//	two-phase
//	fixed:hold=200ms
//	adaptive:tmin=20ms,tmax=200ms,target=2
//
// Historic aliases ("fixed-hold", "buffer-all", "hash-elect", and the
// empty string for the paper's default) canonicalize to the registry
// kinds, so committed sweep-cell names never change.
package policy

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/topology"
)

// Canonical policy kinds — the tokens sweep-cell names use.
const (
	KindTwoPhase = "two-phase"
	KindFixed    = "fixed"
	KindAll      = "all"
	KindHash     = "hash"
	KindAdaptive = "adaptive"
)

// Spec parameter defaults.
const (
	// DefaultFixedHold is the fixed policy's retention when neither the
	// spec nor the environment supplies one (the sweep axis default).
	DefaultFixedHold = 500 * time.Millisecond
	// DefaultTMin / DefaultTMax bound the adaptive hold-time by default.
	DefaultTMin = 20 * time.Millisecond
	DefaultTMax = 200 * time.Millisecond
	// DefaultTarget is the adaptive demand (requests per message) that
	// saturates the hold at TMax.
	DefaultTarget = 2.0
)

// aliases maps every accepted token — canonical kind, historic alias, or
// the empty default — to its canonical kind.
var aliases = map[string]string{
	"":           KindTwoPhase,
	KindTwoPhase: KindTwoPhase,
	KindFixed:    KindFixed,
	"fixed-hold": KindFixed,
	KindAll:      KindAll,
	"buffer-all": KindAll,
	KindHash:     KindHash,
	"hash-elect": KindHash,
	KindAdaptive: KindAdaptive,
}

// Canonical maps any accepted policy token — bare kind, historic alias,
// or parameterized spec — to its canonical form: the kind is rewritten
// ("fixed-hold" → "fixed"), parameters are kept verbatim (they are part
// of cell identity). Unknown tokens pass through unchanged, so non-policy
// axis values (the rmtp "server" placeholder) survive canonicalization.
func Canonical(token string) string {
	kind, params, hasParams := strings.Cut(token, ":")
	k, ok := aliases[kind]
	if !ok {
		return token
	}
	if hasParams {
		return k + ":" + params
	}
	return k
}

// KnownKinds returns the canonical kinds in roster order.
func KnownKinds() []string {
	kinds := make([]string, 0, len(roster))
	for _, info := range roster {
		kinds = append(kinds, info.Kind)
	}
	return kinds
}

// UnknownKindError reports a policy token the registry does not know. It
// lists the known kinds so a typo in a sweep spec fails with the menu in
// hand instead of deep inside the runner.
type UnknownKindError struct {
	Kind  string
	Known []string
}

// Error implements error.
func (e *UnknownKindError) Error() string {
	return fmt.Sprintf("policy: unknown policy %q (known: %s)",
		e.Kind, strings.Join(e.Known, ", "))
}

// Spec is a parsed policy specification: a canonical kind plus any
// parameters the spec carried. Zero-valued parameters mean "use the
// default" at Build time.
type Spec struct {
	Kind string
	// Hold overrides the fixed policy's retention.
	Hold time.Duration
	// TMin, TMax, Target and Alpha parameterize the adaptive policy.
	TMin, TMax time.Duration
	Target     float64
	Alpha      float64
}

// Parse parses a policy spec (`kind` or `kind:key=val,...`). The kind may
// be any accepted alias; unknown kinds return *UnknownKindError, unknown
// or malformed parameters a plain error.
func Parse(s string) (Spec, error) {
	kindTok, params, hasParams := strings.Cut(s, ":")
	kindTok = strings.TrimSpace(kindTok)
	kind, ok := aliases[kindTok]
	if !ok {
		return Spec{}, &UnknownKindError{Kind: kindTok, Known: KnownKinds()}
	}
	sp := Spec{Kind: kind}
	if !hasParams {
		return sp, nil
	}
	for _, kv := range strings.Split(params, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Spec{}, fmt.Errorf("policy: bad parameter %q in spec %q (want key=val)", kv, s)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if err := sp.setParam(key, val); err != nil {
			return Spec{}, err
		}
	}
	if sp.TMin > 0 && sp.TMax > 0 && sp.TMax < sp.TMin {
		return Spec{}, fmt.Errorf("policy: adaptive tmax %v must be >= tmin %v", sp.TMax, sp.TMin)
	}
	return sp, nil
}

// setParam applies one key=val pair, enforcing per-kind parameter menus.
func (sp *Spec) setParam(key, val string) error {
	dur := func(dst *time.Duration) error {
		d, err := time.ParseDuration(val)
		if err != nil || d <= 0 {
			return fmt.Errorf("policy: %s parameter %s=%q: want a positive duration", sp.Kind, key, val)
		}
		*dst = d
		return nil
	}
	num := func(dst *float64, max float64) error {
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f <= 0 || (max > 0 && f > max) {
			if max > 0 {
				return fmt.Errorf("policy: %s parameter %s=%q: want a number in (0, %v]", sp.Kind, key, val, max)
			}
			return fmt.Errorf("policy: %s parameter %s=%q: want a positive number", sp.Kind, key, val)
		}
		*dst = f
		return nil
	}
	switch {
	case sp.Kind == KindFixed && key == "hold":
		return dur(&sp.Hold)
	case sp.Kind == KindAdaptive && key == "tmin":
		return dur(&sp.TMin)
	case sp.Kind == KindAdaptive && key == "tmax":
		return dur(&sp.TMax)
	case sp.Kind == KindAdaptive && key == "target":
		return num(&sp.Target, 0)
	case sp.Kind == KindAdaptive && key == "alpha":
		return num(&sp.Alpha, 1)
	default:
		return fmt.Errorf("policy: policy %q does not take parameter %q", sp.Kind, key)
	}
}

// Env supplies the member-side context a Spec needs to become a concrete
// core.Policy: protocol parameters plus the member's region view.
type Env struct {
	// Self is the member owning the buffer (hash kind only).
	Self topology.NodeID
	// Region is the member's region membership including Self (hash kind
	// only; other kinds may leave it nil).
	Region []topology.NodeID
	// RegionSize is the region size (peers + self) the election
	// probability C/RegionSize derives from.
	RegionSize int
	// IdleThreshold, C and LongTermTTL are the protocol parameters the
	// feedback-based kinds consume.
	IdleThreshold time.Duration
	C             float64
	LongTermTTL   time.Duration
	// FixedHold is the retention the fixed kind uses when the spec does
	// not carry an explicit hold; zero falls back to DefaultFixedHold.
	FixedHold time.Duration
}

// Build constructs the policy a Spec describes in the given environment.
// It panics on a Spec whose Kind did not come from Parse.
func (sp Spec) Build(env Env) core.Policy {
	switch sp.Kind {
	case KindTwoPhase, "":
		return core.NewTwoPhase(env.IdleThreshold, env.C, env.RegionSize, env.LongTermTTL)
	case KindFixed:
		d := sp.Hold
		if d == 0 {
			d = env.FixedHold
		}
		if d == 0 {
			d = DefaultFixedHold
		}
		return &core.FixedHold{D: d}
	case KindAll:
		return core.BufferAll{}
	case KindHash:
		return core.NewHashElect(env.IdleThreshold, int(env.C), env.Self, env.Region, env.LongTermTTL)
	case KindAdaptive:
		cfg := core.AdaptiveConfig{
			TMin:   sp.TMin,
			TMax:   sp.TMax,
			Target: sp.Target,
			Alpha:  sp.Alpha,
			C:      env.C,
			N:      env.RegionSize,
			TTL:    env.LongTermTTL,
		}
		if cfg.TMin == 0 {
			cfg.TMin = DefaultTMin
		}
		if cfg.TMax == 0 {
			cfg.TMax = DefaultTMax
		}
		if cfg.Target == 0 {
			cfg.Target = DefaultTarget
		}
		return core.NewAdaptiveHold(cfg)
	default:
		panic(fmt.Sprintf("policy: Build on unknown kind %q", sp.Kind))
	}
}

// ParamInfo documents one spec parameter for roster listings.
type ParamInfo struct {
	Name    string
	Default string
	Doc     string
}

// Info documents one registered policy for roster listings
// (rrmp-sim -list-policies).
type Info struct {
	Kind    string
	Aliases []string
	Summary string
	Params  []ParamInfo
}

// roster is the registry in listing order: the paper's default first,
// baselines after, demand-aware last.
var roster = []Info{
	{
		Kind:    KindTwoPhase,
		Summary: "paper §3: feedback-based short term, randomized C/n long-term election",
	},
	{
		Kind:    KindFixed,
		Aliases: []string{"fixed-hold"},
		Summary: "Bimodal-Multicast baseline: constant hold, no feedback, no long term",
		Params: []ParamInfo{
			{Name: "hold", Default: DefaultFixedHold.String(), Doc: "constant retention period"},
		},
	},
	{
		Kind:    KindAll,
		Aliases: []string{"buffer-all"},
		Summary: "conservative baseline: retain until external (stability) removal",
	},
	{
		Kind:    KindHash,
		Aliases: []string{"hash-elect"},
		Summary: "deterministic baseline [11]: C lowest-hash region members buffer",
	},
	{
		Kind:    KindAdaptive,
		Summary: "demand-aware: per-source hold scales with EWMA of request demand",
		Params: []ParamInfo{
			{Name: "tmin", Default: DefaultTMin.String(), Doc: "hold for a quiet source"},
			{Name: "tmax", Default: DefaultTMax.String(), Doc: "hold at saturated demand"},
			{Name: "target", Default: strconv.FormatFloat(DefaultTarget, 'g', -1, 64), Doc: "requests/message that saturates the hold"},
			{Name: "alpha", Default: strconv.FormatFloat(core.DefaultAdaptiveAlpha, 'g', -1, 64), Doc: "EWMA smoothing weight in (0, 1]"},
		},
	},
}

// Known returns the registry roster in listing order. Callers own the
// slice but must not mutate the shared Params slices.
func Known() []Info {
	out := make([]Info, len(roster))
	copy(out, roster)
	return out
}

// Package clock defines the narrow time interface the protocol stack is
// written against.
//
// The protocol engine and buffer manager never read the wall clock or call
// time.AfterFunc directly; they only use a Scheduler. The simulator binds
// Scheduler to virtual time (internal/sim), while the UDP transport binds it
// to real time (internal/udptransport). This is what lets the exact same
// protocol code run both in deterministic experiments and on real sockets.
package clock

import "time"

// Timer is a cancellable pending callback.
type Timer interface {
	// Stop cancels the timer. It returns false if the timer already fired
	// or was stopped. Implementations guarantee that after Stop returns
	// true the callback will never run.
	Stop() bool
}

// Scheduler provides the current time and one-shot timers. Implementations
// serialize all callbacks with respect to each other and with the code that
// schedules them, so protocol state needs no locking.
type Scheduler interface {
	// Now returns the time elapsed since the scheduler's epoch.
	Now() time.Duration
	// After schedules fn to run once, d from now (immediately if d <= 0).
	After(d time.Duration, fn func()) Timer
}

// Package clock_test pins down the Scheduler/Timer contract that every
// protocol component is written against. The contract is exercised
// through the simulator binding (internal/sim), the implementation all
// deterministic experiments run on; the tests only touch it through the
// clock interfaces, so they document what any future binding must honor.
package clock_test

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/sim"
)

// newSched returns the scheduler under test, typed as the interface so
// the tests cannot reach past the contract.
func newSched() (clock.Scheduler, *sim.Sim) {
	s := sim.New()
	return s, s
}

func TestTimersFireInTimeOrder(t *testing.T) {
	sched, s := newSched()
	var order []int
	sched.After(30*time.Millisecond, func() { order = append(order, 3) })
	sched.After(10*time.Millisecond, func() { order = append(order, 1) })
	sched.After(20*time.Millisecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fired in order %v, want [1 2 3]", order)
	}
}

func TestNowAdvancesToTimerDeadline(t *testing.T) {
	sched, s := newSched()
	var at time.Duration = -1
	sched.After(7*time.Millisecond, func() { at = sched.Now() })
	s.Run()
	if at != 7*time.Millisecond {
		t.Fatalf("callback saw Now()=%v, want 7ms", at)
	}
	if sched.Now() != 7*time.Millisecond {
		t.Fatalf("Now()=%v after run, want 7ms", sched.Now())
	}
}

// Same-tick determinism: timers scheduled for the same instant fire in
// scheduling order, every run. Protocol code relies on this (for example
// a Crash event scheduled after a Publish event at the same virtual time
// must observe the publish).
func TestSameTickFiresInSchedulingOrder(t *testing.T) {
	for run := 0; run < 5; run++ {
		sched, s := newSched()
		var order []int
		for i := 0; i < 8; i++ {
			i := i
			sched.After(5*time.Millisecond, func() { order = append(order, i) })
		}
		s.Run()
		for i, got := range order {
			if got != i {
				t.Fatalf("run %d: same-tick order %v, want ascending", run, order)
			}
		}
	}
}

func TestStopCancelsBeforeFiring(t *testing.T) {
	sched, s := newSched()
	fired := false
	tm := sched.After(10*time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on a pending timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	s.Run()
	if fired {
		t.Fatal("stopped timer fired anyway")
	}
}

func TestStopAfterFiringReturnsFalse(t *testing.T) {
	sched, s := newSched()
	tm := sched.After(time.Millisecond, func() {})
	s.Run()
	if tm.Stop() {
		t.Fatal("Stop after firing returned true")
	}
}

// A timer stopped from inside an earlier same-tick callback must not run:
// this is exactly the suppression pattern the protocol uses (a repair
// arriving cancels the pending regional multicast scheduled for the same
// instant or later).
func TestStopFromEarlierCallbackSuppresses(t *testing.T) {
	sched, s := newSched()
	fired := false
	var victim clock.Timer
	sched.After(time.Millisecond, func() {
		if !victim.Stop() {
			t.Error("in-callback Stop returned false for a pending timer")
		}
	})
	victim = sched.After(time.Millisecond, func() { fired = true })
	s.Run()
	if fired {
		t.Fatal("timer fired after being stopped by a same-tick callback")
	}
}

// Non-positive delays still go through the queue: the callback runs after
// the currently scheduled work, never synchronously inside After.
func TestZeroDelayIsAsynchronous(t *testing.T) {
	sched, s := newSched()
	ran := false
	sched.After(0, func() { ran = true })
	if ran {
		t.Fatal("zero-delay callback ran synchronously inside After")
	}
	sched.After(-time.Second, func() {})
	s.Run()
	if !ran {
		t.Fatal("zero-delay callback never ran")
	}
	if sched.Now() != 0 {
		t.Fatalf("negative delay advanced the clock to %v", sched.Now())
	}
}

// Timers scheduled from inside a callback run at their correct time
// relative to the firing instant.
func TestNestedSchedulingKeepsRelativeTime(t *testing.T) {
	sched, s := newSched()
	var at time.Duration
	sched.After(10*time.Millisecond, func() {
		sched.After(5*time.Millisecond, func() { at = sched.Now() })
	})
	s.Run()
	if at != 15*time.Millisecond {
		t.Fatalf("nested timer fired at %v, want 15ms", at)
	}
}

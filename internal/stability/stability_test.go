package stability

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// stabCluster wires one detector per member with controllable local
// prefixes.
type stabCluster struct {
	sim       *sim.Sim
	net       *netsim.Network
	topo      *topology.Topology
	detectors map[topology.NodeID]*Detector
	prefixes  map[topology.NodeID]uint64
	stable    map[topology.NodeID][]uint64
	alive     map[topology.NodeID]bool
}

func newStabCluster(t *testing.T, n int, seed uint64, withLiveness bool) *stabCluster {
	t.Helper()
	topo, err := topology.SingleRegion(n)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	net := netsim.New(s, netsim.UniformLatency{Delay: 2 * time.Millisecond}, nil)
	root := rng.New(seed)
	c := &stabCluster{
		sim: s, net: net, topo: topo,
		detectors: make(map[topology.NodeID]*Detector),
		prefixes:  make(map[topology.NodeID]uint64),
		stable:    make(map[topology.NodeID][]uint64),
		alive:     make(map[topology.NodeID]bool),
	}
	for _, node := range topo.Members(0) {
		c.alive[node] = true
	}
	for _, node := range topo.Members(0) {
		node := node
		view, err := topo.ViewOf(node)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			View:        view,
			Source:      topo.Sender(),
			Sched:       s,
			Rng:         root.Split(uint64(node) + 1),
			Send:        func(to topology.NodeID, msg wire.Message) { net.Unicast(node, to, msg) },
			LocalPrefix: func() uint64 { return c.prefixes[node] },
			OnStable:    func(seq uint64) { c.stable[node] = append(c.stable[node], seq) },
		}
		if withLiveness {
			cfg.Alive = func(p topology.NodeID) bool { return c.alive[p] }
		}
		d := New(cfg)
		c.detectors[node] = d
		net.Register(node, func(p netsim.Packet) { d.Receive(p.Msg) })
	}
	return c
}

func (c *stabCluster) startAll() {
	for _, d := range c.detectors {
		d.Start()
	}
}

func TestStabilityAdvancesToMinimum(t *testing.T) {
	c := newStabCluster(t, 4, 1, false)
	c.prefixes[0] = 10
	c.prefixes[1] = 7
	c.prefixes[2] = 9
	c.prefixes[3] = 12
	c.startAll()
	c.sim.RunUntil(time.Second)
	for n, d := range c.detectors {
		if got := d.StableFloor(); got != 7 {
			t.Fatalf("node %d stable floor %d, want 7 (the minimum prefix)", n, got)
		}
	}
	// OnStable fired once per seq in order 1..7.
	for n, seqs := range c.stable {
		if len(seqs) != 7 {
			t.Fatalf("node %d saw %d stability events", n, len(seqs))
		}
		for i, s := range seqs {
			if s != uint64(i+1) {
				t.Fatalf("node %d stability order %v", n, seqs)
			}
		}
	}
}

func TestStabilityFollowsProgress(t *testing.T) {
	c := newStabCluster(t, 3, 2, false)
	c.startAll()
	// Everyone advances together in steps.
	for step := uint64(1); step <= 5; step++ {
		step := step
		c.sim.At(time.Duration(step)*200*time.Millisecond, func() {
			for n := range c.prefixes {
				_ = n
			}
			for _, node := range c.topo.Members(0) {
				c.prefixes[node] = step
			}
		})
	}
	c.sim.RunUntil(2 * time.Second)
	for n, d := range c.detectors {
		if got := d.StableFloor(); got != 5 {
			t.Fatalf("node %d floor %d, want 5", n, got)
		}
	}
}

func TestStragglerBlocksStability(t *testing.T) {
	c := newStabCluster(t, 3, 3, false)
	c.prefixes[0] = 100
	c.prefixes[1] = 100
	c.prefixes[2] = 0 // straggler never advances
	c.startAll()
	c.sim.RunUntil(2 * time.Second)
	for n, d := range c.detectors {
		if d.StableFloor() != 0 {
			t.Fatalf("node %d declared stability despite a straggler", n)
		}
	}
}

func TestDeadMemberExcludedFromQuorum(t *testing.T) {
	c := newStabCluster(t, 3, 4, true)
	c.prefixes[0] = 50
	c.prefixes[1] = 50
	c.prefixes[2] = 0 // dead: never gossips, never advances
	c.alive[2] = false
	c.net.SetDown(2, true)
	c.startAll()
	c.sim.RunUntil(2 * time.Second)
	if got := c.detectors[0].StableFloor(); got != 50 {
		t.Fatalf("floor %d with dead member excluded, want 50", got)
	}
}

func TestReceiveFiltersSourceAndType(t *testing.T) {
	c := newStabCluster(t, 2, 5, false)
	d := c.detectors[0]
	// Wrong type.
	d.Receive(wire.Message{Type: wire.TypeData, From: 1, TopSeq: 99, ID: wire.MessageID{Source: c.topo.Sender()}})
	// Wrong source stream.
	d.Receive(wire.Message{Type: wire.TypeHistory, From: 1, TopSeq: 99, ID: wire.MessageID{Source: 55}})
	if d.floors[1] != 0 {
		t.Fatal("detector merged a filtered digest")
	}
	// Correct digest merges; stale digest does not regress.
	d.Receive(wire.Message{Type: wire.TypeHistory, From: 1, TopSeq: 9, ID: wire.MessageID{Source: c.topo.Sender()}})
	d.Receive(wire.Message{Type: wire.TypeHistory, From: 1, TopSeq: 4, ID: wire.MessageID{Source: c.topo.Sender()}})
	if d.floors[1] != 9 {
		t.Fatalf("floor = %d, want 9", d.floors[1])
	}
}

func TestDigestTrafficCounted(t *testing.T) {
	c := newStabCluster(t, 5, 6, false)
	c.startAll()
	c.sim.RunUntil(time.Second)
	var digests int64
	for _, d := range c.detectors {
		digests += d.DigestsSent
	}
	// ~10 rounds × 5 members × 4 peers = ~200; accept a broad band.
	if digests < 100 || digests > 300 {
		t.Fatalf("digests sent %d, want ~200 over 1s at 100ms interval", digests)
	}
	if c.net.Stats().SentCount(wire.TypeHistory) != digests {
		t.Fatal("network counter disagrees with detector counter")
	}
}

func TestStopHaltsGossip(t *testing.T) {
	c := newStabCluster(t, 3, 7, false)
	c.startAll()
	c.sim.RunUntil(500 * time.Millisecond)
	for _, d := range c.detectors {
		d.Stop()
	}
	before := c.net.Stats().SentCount(wire.TypeHistory)
	c.sim.RunUntil(2 * time.Second)
	if got := c.net.Stats().SentCount(wire.TypeHistory); got != before {
		t.Fatalf("gossip continued after Stop: %d -> %d", before, got)
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New without deps did not panic")
		}
	}()
	New(Config{})
}

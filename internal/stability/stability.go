// Package stability implements the message stability detection baseline the
// paper compares against (§1, §3.1; in the style of Guo & Rhee's detection
// protocols, reference [8]).
//
// Under this scheme a member buffers every message (core.BufferAll) and
// periodically gossips a message-history digest — here the contiguous
// received prefix per source — to its region. A sequence number is declared
// stable once every live region member's digest covers it; only then is the
// message discarded. Liveness comes from a failure detector (gossipfd), so
// a crashed member cannot block stability forever.
//
// The paper's point, which ablation A6 quantifies, is that this buys
// certainty at the price of periodic digest traffic, whereas RRMP's
// feedback-based scheme derives the same information for free from the
// retransmission requests it already receives.
package stability

import (
	"time"

	"repro/internal/clock"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Send transmits a digest PDU to a peer; bind it to the network.
type Send func(to topology.NodeID, msg wire.Message)

// Liveness reports whether a region member should be counted in the
// stability quorum. Bind it to a failure detector; nil counts everyone.
type Liveness func(n topology.NodeID) bool

// Config assembles a detector for one (member, source) pair.
type Config struct {
	// View is the member's region view.
	View topology.View
	// Source is the sender whose stream is tracked.
	Source topology.NodeID
	// Sched supplies time and timers; required.
	Sched clock.Scheduler
	// Rng jitters the gossip period; required.
	Rng *rng.Source
	// Send transmits history digests; required.
	Send Send
	// LocalPrefix returns this member's own contiguous received prefix
	// for Source; required (bind to rrmp.Member.Prefix).
	LocalPrefix func() uint64
	// Alive filters quorum membership; nil counts all region members.
	Alive Liveness
	// Interval is the digest gossip period (default 100 ms).
	Interval time.Duration
	// OnStable fires once per newly stable sequence number, in order.
	OnStable func(seq uint64)
}

// Detector tracks region-wide stability of one source's stream. Not safe
// for concurrent use.
type Detector struct {
	cfg     Config
	peers   []topology.NodeID // region peers (excluding self)
	floors  map[topology.NodeID]uint64
	stable  uint64 // highest sequence declared stable so far
	ticker  clock.Timer
	running bool

	// DigestsSent counts outgoing history PDUs (the A6 overhead metric).
	DigestsSent int64
}

// New constructs a detector (stopped; call Start).
func New(cfg Config) *Detector {
	if cfg.Sched == nil || cfg.Rng == nil || cfg.Send == nil || cfg.LocalPrefix == nil {
		panic("stability: Sched, Rng, Send and LocalPrefix are required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	peers := cfg.View.Peers()
	return &Detector{
		cfg:    cfg,
		peers:  peers,
		floors: make(map[topology.NodeID]uint64, len(peers)),
	}
}

// Start begins periodic digest gossip. Idempotent.
func (d *Detector) Start() {
	if d.running {
		return
	}
	d.running = true
	d.scheduleTick()
}

// Stop halts gossip. Idempotent.
func (d *Detector) Stop() {
	if !d.running {
		return
	}
	d.running = false
	if d.ticker != nil {
		d.ticker.Stop()
		d.ticker = nil
	}
}

func (d *Detector) scheduleTick() {
	delay := time.Duration(d.cfg.Rng.Jitter(float64(d.cfg.Interval), 0.1))
	d.ticker = d.cfg.Sched.After(delay, func() {
		d.tick()
		if d.running {
			d.scheduleTick()
		}
	})
}

// tick multicasts this member's digest to the region and re-evaluates
// stability (the local prefix may have advanced).
func (d *Detector) tick() {
	prefix := d.cfg.LocalPrefix()
	msg := wire.Message{
		Type:   wire.TypeHistory,
		From:   d.cfg.View.Self,
		ID:     wire.MessageID{Source: d.cfg.Source},
		TopSeq: prefix,
	}
	for _, p := range d.peers {
		d.cfg.Send(p, msg)
		d.DigestsSent++
	}
	d.evaluate()
}

// Receive merges an incoming digest (wire.TypeHistory).
func (d *Detector) Receive(msg wire.Message) {
	if msg.Type != wire.TypeHistory || msg.ID.Source != d.cfg.Source {
		return
	}
	if msg.TopSeq > d.floors[msg.From] {
		d.floors[msg.From] = msg.TopSeq
	}
	d.evaluate()
}

// evaluate advances the stability floor: the minimum digest over self and
// all live peers.
func (d *Detector) evaluate() {
	floor := d.cfg.LocalPrefix()
	for _, p := range d.peers {
		if d.cfg.Alive != nil && !d.cfg.Alive(p) {
			continue
		}
		if f := d.floors[p]; f < floor {
			floor = f
		}
	}
	for d.stable < floor {
		d.stable++
		if d.cfg.OnStable != nil {
			d.cfg.OnStable(d.stable)
		}
	}
}

// StableFloor returns the highest sequence number declared stable.
func (d *Detector) StableFloor() uint64 { return d.stable }

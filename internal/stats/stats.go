// Package stats provides the measurement primitives the experiments use:
// counters, exact-sample histograms with percentiles, time series, and a
// step-function integrator for buffer-occupancy × time accounting.
//
// All types favor exactness over constant memory because experiment scales
// here are modest (at most a few million samples); this keeps reported
// percentiles free of sketch error when comparing against the paper.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Counter is a monotonically adjustable tally. The zero value is ready to
// use. Counter is not safe for concurrent use (the simulator is single
// threaded; the UDP transport keeps per-member stats).
type Counter struct {
	n int64
}

// Add increments the counter by d (d may be negative).
func (c *Counter) Add(d int64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current tally.
func (c *Counter) Value() int64 { return c.n }

// Histogram accumulates float64 samples and reports exact order statistics.
// The zero value is ready to use.
type Histogram struct {
	samples []float64
	sorted  bool
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.samples = append(h.samples, v)
	h.sorted = false
}

// AddDuration records a duration sample in milliseconds, the unit used by
// every figure in the paper.
func (h *Histogram) AddDuration(d time.Duration) {
	h.Add(float64(d) / float64(time.Millisecond))
}

// N returns the number of samples recorded.
func (h *Histogram) N() int { return len(h.samples) }

// Mean returns the sample mean (0 with no samples).
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range h.samples {
		sum += v
	}
	return sum / float64(len(h.samples))
}

// Stddev returns the population standard deviation (0 with <2 samples).
func (h *Histogram) Stddev() float64 {
	n := len(h.samples)
	if n < 2 {
		return 0
	}
	mean := h.Mean()
	var ss float64
	for _, v := range h.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// SampleStddev returns the Bessel-corrected (n−1) standard deviation, the
// estimator confidence intervals need (0 with <2 samples).
func (h *Histogram) SampleStddev() float64 {
	n := len(h.samples)
	if n < 2 {
		return 0
	}
	mean := h.Mean()
	var ss float64
	for _, v := range h.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// t975 holds the 0.975 quantile of Student's t distribution for 1..30
// degrees of freedom; beyond 30 the normal quantile 1.96 is used.
var t975 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the half-width of the 95% confidence interval for the mean,
// using Student's t for small sample counts (0 with <2 samples). The
// sweep runner reports every aggregated metric as mean ± CI95.
func (h *Histogram) CI95() float64 {
	n := len(h.samples)
	if n < 2 {
		return 0
	}
	df := n - 1
	q := 1.96
	if df <= len(t975) {
		q = t975[df-1]
	}
	return q * h.SampleStddev() / math.Sqrt(float64(n))
}

// Min returns the smallest sample (0 with no samples).
func (h *Histogram) Min() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	return h.samples[0]
}

// Max returns the largest sample (0 with no samples).
func (h *Histogram) Max() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	return h.samples[len(h.samples)-1]
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between order statistics. It returns 0 with no samples.
func (h *Histogram) Percentile(p float64) float64 {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	h.sort()
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return h.samples[lo]
	}
	frac := rank - float64(lo)
	return h.samples[lo]*(1-frac) + h.samples[hi]*frac
}

// Buckets counts samples into k equal-width buckets across [min, max] and
// returns the bucket boundaries and counts. Useful for printing figure-style
// distributions. With no samples it returns nils.
func (h *Histogram) Buckets(k int) (bounds []float64, counts []int) {
	if len(h.samples) == 0 || k < 1 {
		return nil, nil
	}
	h.sort()
	lo, hi := h.samples[0], h.samples[len(h.samples)-1]
	if hi == lo {
		hi = lo + 1
	}
	width := (hi - lo) / float64(k)
	bounds = make([]float64, k+1)
	for i := range bounds {
		bounds[i] = lo + float64(i)*width
	}
	counts = make([]int, k)
	for _, v := range h.samples {
		i := int((v - lo) / width)
		if i >= k {
			i = k - 1
		}
		counts[i]++
	}
	return bounds, counts
}

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Values returns a copy of all recorded samples (in sorted order if any
// order statistic has been queried; insertion order otherwise). Use it to
// merge histograms across members.
func (h *Histogram) Values() []float64 {
	out := make([]float64, len(h.samples))
	copy(out, h.samples)
	return out
}

// Summary is a compact digest of a histogram.
type Summary struct {
	N                  int
	Mean, Stddev       float64
	Min, P50, P95, Max float64
}

// Summarize returns the histogram's summary.
func (h *Histogram) Summarize() Summary {
	return Summary{
		N:      h.N(),
		Mean:   h.Mean(),
		Stddev: h.Stddev(),
		Min:    h.Min(),
		P50:    h.Percentile(50),
		P95:    h.Percentile(95),
		Max:    h.Max(),
	}
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p95=%.2f max=%.2f",
		s.N, s.Mean, s.Stddev, s.Min, s.P50, s.P95, s.Max)
}

// TimeSeries records (time, value) observations in arrival order.
// The zero value is ready to use.
type TimeSeries struct {
	ts []time.Duration
	vs []float64
}

// Add appends an observation.
func (s *TimeSeries) Add(t time.Duration, v float64) {
	s.ts = append(s.ts, t)
	s.vs = append(s.vs, v)
}

// Len returns the number of observations.
func (s *TimeSeries) Len() int { return len(s.ts) }

// At returns the i-th observation.
func (s *TimeSeries) At(i int) (time.Duration, float64) { return s.ts[i], s.vs[i] }

// Points returns copies of the time and value slices.
func (s *TimeSeries) Points() ([]time.Duration, []float64) {
	ts := make([]time.Duration, len(s.ts))
	vs := make([]float64, len(s.vs))
	copy(ts, s.ts)
	copy(vs, s.vs)
	return ts, vs
}

// Occupancy integrates a step function over time: it tracks a current level
// (for example "buffered messages at this member") and accumulates
// level × elapsed-time. The integral's unit is value-seconds.
// The zero value starts at level 0 at time 0.
type Occupancy struct {
	level    float64
	since    time.Duration
	integral float64 // value-seconds accumulated before 'since'
	peak     float64
}

// Set moves the level to v at time now. Time must be non-decreasing across
// calls; regressions panic because they indicate simulator misuse.
func (o *Occupancy) Set(now time.Duration, v float64) {
	if now < o.since {
		panic(fmt.Sprintf("stats: Occupancy time moved backwards: %v < %v", now, o.since))
	}
	o.integral += o.level * (now - o.since).Seconds()
	o.since = now
	o.level = v
	if v > o.peak {
		o.peak = v
	}
}

// Adjust adds dv to the current level at time now.
func (o *Occupancy) Adjust(now time.Duration, dv float64) {
	o.Set(now, o.level+dv)
}

// Level returns the current level.
func (o *Occupancy) Level() float64 { return o.level }

// Peak returns the highest level observed.
func (o *Occupancy) Peak() float64 { return o.peak }

// Integral returns the accumulated value-seconds up to time now.
func (o *Occupancy) Integral(now time.Duration) float64 {
	if now < o.since {
		panic(fmt.Sprintf("stats: Occupancy integral queried in the past: %v < %v", now, o.since))
	}
	return o.integral + o.level*(now-o.since).Seconds()
}

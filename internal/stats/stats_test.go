package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d", c.Value())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.N() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Stddev() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram returned non-zero statistics")
	}
	if b, c := h.Buckets(4); b != nil || c != nil {
		t.Fatal("empty histogram returned buckets")
	}
}

func TestHistogramBasicStats(t *testing.T) {
	var h Histogram
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Add(v)
	}
	if h.N() != 8 {
		t.Fatalf("N = %d", h.N())
	}
	if got := h.Mean(); got != 5 {
		t.Fatalf("mean = %v", got)
	}
	if got := h.Stddev(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", got)
	}
	if h.Min() != 2 || h.Max() != 9 {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
}

func TestPercentiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 100}, {50, 50.5}, {25, 25.75}, {95, 95.05},
	}
	for _, tc := range cases {
		if got := h.Percentile(tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := h.Percentile(-5); got != 1 {
		t.Errorf("P(-5) = %v", got)
	}
	if got := h.Percentile(200); got != 100 {
		t.Errorf("P(200) = %v", got)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	prop := func(vals []float64, a, b uint8) bool {
		var h Histogram
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Add(v)
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return h.Percentile(pa) <= h.Percentile(pb)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAddDurationUsesMilliseconds(t *testing.T) {
	var h Histogram
	h.AddDuration(25 * time.Millisecond)
	if got := h.Mean(); got != 25 {
		t.Fatalf("AddDuration stored %v, want 25", got)
	}
}

func TestBuckets(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	bounds, counts := h.Buckets(4)
	if len(bounds) != 5 || len(counts) != 4 {
		t.Fatalf("bounds=%v counts=%v", bounds, counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 100 {
		t.Fatalf("bucket total %d", total)
	}
	if !sort.Float64sAreSorted(bounds) {
		t.Fatalf("bounds unsorted: %v", bounds)
	}
}

func TestBucketsSingleValue(t *testing.T) {
	var h Histogram
	h.Add(5)
	h.Add(5)
	_, counts := h.Buckets(3)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 2 {
		t.Fatalf("degenerate buckets lost samples: %v", counts)
	}
}

func TestSummaryString(t *testing.T) {
	var h Histogram
	h.Add(1)
	h.Add(3)
	s := h.Summarize()
	if s.N != 2 || s.Mean != 2 {
		t.Fatalf("summary %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestTimeSeries(t *testing.T) {
	var s TimeSeries
	s.Add(1*time.Millisecond, 10)
	s.Add(2*time.Millisecond, 20)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	ts, v := s.At(1)
	if ts != 2*time.Millisecond || v != 20 {
		t.Fatalf("At(1) = %v, %v", ts, v)
	}
	tsCopy, vsCopy := s.Points()
	tsCopy[0] = 0
	vsCopy[0] = 0
	if ts0, v0 := s.At(0); ts0 != 1*time.Millisecond || v0 != 10 {
		t.Fatal("Points exposed internal storage")
	}
}

func TestOccupancyIntegral(t *testing.T) {
	var o Occupancy
	o.Set(0, 2)                 // level 2 from t=0
	o.Set(1*time.Second, 5)     // level 5 from t=1s
	o.Adjust(3*time.Second, -4) // level 1 from t=3s
	// integral at t=4s: 2*1 + 5*2 + 1*1 = 13
	if got := o.Integral(4 * time.Second); math.Abs(got-13) > 1e-9 {
		t.Fatalf("integral = %v, want 13", got)
	}
	if o.Level() != 1 {
		t.Fatalf("level = %v", o.Level())
	}
	if o.Peak() != 5 {
		t.Fatalf("peak = %v", o.Peak())
	}
}

func TestOccupancyPanicsOnTimeRegression(t *testing.T) {
	var o Occupancy
	o.Set(2*time.Second, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on time regression")
		}
	}()
	o.Set(1*time.Second, 2)
}

func TestOccupancyIntegralNonNegativeProperty(t *testing.T) {
	prop := func(levels []uint8) bool {
		var o Occupancy
		now := time.Duration(0)
		for _, l := range levels {
			now += time.Duration(l%16) * time.Millisecond
			o.Set(now, float64(l%8))
		}
		return o.Integral(now+time.Second) >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleStddevAndCI95(t *testing.T) {
	var h Histogram
	if h.SampleStddev() != 0 || h.CI95() != 0 {
		t.Fatal("empty histogram should report zero stddev/CI")
	}
	h.Add(5)
	if h.SampleStddev() != 0 || h.CI95() != 0 {
		t.Fatal("single sample should report zero stddev/CI")
	}
	h.Add(7)
	// n=2: sample sd = √2, CI95 = t(0.975, df=1)·√2/√2 = 12.706.
	if got := h.SampleStddev(); math.Abs(got-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("SampleStddev = %v, want √2", got)
	}
	if got := h.CI95(); math.Abs(got-12.706) > 1e-9 {
		t.Fatalf("CI95 = %v, want 12.706", got)
	}
}

func TestCI95LargeSampleUsesNormalQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Add(float64(i % 10))
	}
	want := 1.96 * h.SampleStddev() / math.Sqrt(100)
	if got := h.CI95(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CI95 = %v, want %v", got, want)
	}
}

func TestSampleStddevExceedsPopulationStddev(t *testing.T) {
	var h Histogram
	for _, v := range []float64{1, 2, 3, 4} {
		h.Add(v)
	}
	if h.SampleStddev() <= h.Stddev() {
		t.Fatalf("Bessel correction missing: sample %v <= population %v",
			h.SampleStddev(), h.Stddev())
	}
}

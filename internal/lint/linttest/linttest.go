// Package linttest runs lint analyzers over want-annotated fixture
// modules, in the style of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a self-contained Go module under testdata. Every line that
// should produce a finding carries a trailing expectation comment:
//
//	time.Sleep(d) // want "wall-clock time.Sleep"
//
// The string is a regular expression matched against the diagnostic
// message; several per line mean several findings on that line. The run
// fails on any unmatched expectation and on any unexpected diagnostic —
// so clean lines (including lines suppressed by //lint:allow) double as
// false-positive and suppression tests.
package linttest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantMarker introduces an expectation comment.
const wantMarker = "// want "

// expectation is one anticipated finding.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture module rooted at dir, runs analyzers over all its
// packages, and asserts the diagnostics exactly match the // want
// annotations.
func Run(t *testing.T, dir string, analyzers []*lint.Analyzer) {
	t.Helper()
	pkgs, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s matched no packages", dir)
	}
	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		t.Fatal(err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			filename := pkg.Fset.Position(file.Pos()).Filename
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					exps, err := parseWants(c)
					if err != nil {
						t.Fatalf("%s:%d: %v", filename, pkg.Fset.Position(c.Pos()).Line, err)
					}
					for _, re := range exps {
						wants = append(wants, &expectation{
							file:    filename,
							line:    pkg.Fset.Position(c.Pos()).Line,
							pattern: re,
						})
					}
				}
			}
		}
	}

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// claim marks the first unmatched expectation covering d and reports
// whether one existed.
func claim(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.pattern.MatchString(d.Message) || w.pattern.MatchString("["+d.Analyzer+"] "+d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts the expectation regexps from one comment, or nil if
// it is not a want comment.
func parseWants(c *ast.Comment) ([]*regexp.Regexp, error) {
	idx := strings.Index(c.Text, wantMarker)
	if idx < 0 {
		return nil, nil
	}
	rest := strings.TrimSpace(c.Text[idx+len(wantMarker):])
	var out []*regexp.Regexp
	for rest != "" {
		if rest[0] != '"' {
			return nil, fmt.Errorf("malformed want comment near %q (expected quoted regexp)", rest)
		}
		lit, remainder, err := cutQuoted(rest)
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %v", lit, err)
		}
		out = append(out, re)
		rest = strings.TrimSpace(remainder)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment with no expectations")
	}
	return out, nil
}

// cutQuoted splits a leading Go-quoted string off rest.
func cutQuoted(rest string) (string, string, error) {
	for i := 1; i < len(rest); i++ {
		if rest[i] == '\\' {
			i++
			continue
		}
		if rest[i] == '"' {
			lit, err := strconv.Unquote(rest[:i+1])
			if err != nil {
				return "", "", fmt.Errorf("bad quoted want %q: %v", rest[:i+1], err)
			}
			return lit, rest[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated want string in %q", rest)
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// StreamLabel enforces the stream-derivation discipline from PRs 4 and 8:
// every rng.Source.Split / SplitInto inside the simulation packages must
// derive its child stream from a declared label constant — a name ending
// in StreamLabel (fixed stream), StreamBase (counter-hash family) or
// SubStream (per-entity child) — rather than a raw literal or ad-hoc seed
// arithmetic. Named labels make the stream tree greppable and guarantee
// that adding a consumer cannot collide with an existing stream by typo.
// Tests and internal/rng itself are exempt.
var StreamLabel = &Analyzer{
	Name: "streamlabel",
	Doc:  "require rng stream derivation to go through declared *StreamLabel constants",
	Run:  runStreamLabel,
}

// labelSuffixes are the naming conventions that mark a declared stream
// label constant.
var labelSuffixes = []string{"StreamLabel", "StreamBase", "SubStream"}

func runStreamLabel(pass *Pass) error {
	if !inSimSet(pass.ImportPath) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := pkgFunc(pass.TypesInfo, call)
			if f == nil || !isRNGSourceMethod(f) {
				return true
			}
			if f.Name() != "Split" && f.Name() != "SplitInto" {
				return true
			}
			if len(call.Args) == 0 || referencesLabelConst(pass.TypesInfo, call.Args[0]) {
				return true
			}
			pass.Reportf(call.Args[0].Pos(),
				"ad-hoc stream derivation: %s label must reference a declared constant ending in StreamLabel/StreamBase/SubStream (or annotate `//lint:allow streamlabel -- reason`)",
				f.Name())
			return true
		})
	}
	return nil
}

// referencesLabelConst reports whether expr mentions at least one declared
// constant following the stream-label naming convention. Counter offsets
// (label + uint64(i)) are legal as long as a named base anchors them.
func referencesLabelConst(info *types.Info, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return !found
		}
		if c, ok := info.Uses[id].(*types.Const); ok {
			for _, suffix := range labelSuffixes {
				if strings.HasSuffix(c.Name(), suffix) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags range-over-map loops in simulation packages whose bodies
// are sensitive to iteration order: drawing from an rng stream, posting or
// scheduling events, or appending to a slice that outlives the loop. This
// is exactly the bug class of the PR 1 seed-determinism fix (map-order
// handoff): Go randomizes map iteration, so any of those bodies makes the
// run a function of the hash seed instead of the trial seed.
//
// The sanctioned fix — collect the keys, sort, then iterate — is
// recognized automatically: an order-sensitive append is not flagged when
// a later statement in the same block sorts the destination slice.
// Deliberately order-insensitive sites can carry
// `//lint:allow maporder -- reason`.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag order-sensitive bodies in range-over-map loops in simulation packages",
	Run:  runMapOrder,
}

// eventPostMethods are scheduling/sending entry points: calling one inside
// a map-order loop injects events in randomized order.
var eventPostMethods = map[string]bool{
	"After":     true,
	"At":        true,
	"Post":      true,
	"PostFrom":  true,
	"Send":      true,
	"Multicast": true,
	"Push":      true,
}

// eventPostPackages are the packages whose methods count as event posting.
var eventPostPackages = map[string]bool{
	"sim":    true,
	"clock":  true,
	"eventq": true,
	"netsim": true,
}

func runMapOrder(pass *Pass) error {
	if !inSimSet(pass.ImportPath) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var stmts []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				stmts = b.List
			case *ast.CaseClause:
				stmts = b.Body
			case *ast.CommClause:
				stmts = b.Body
			default:
				return true
			}
			for i, stmt := range stmts {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				if t := pass.TypesInfo.TypeOf(rs.X); t == nil {
					continue
				} else if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				checkMapRange(pass, rs, stmts[i+1:])
			}
			return true
		})
	}
	return nil
}

// checkMapRange inspects one range-over-map body for order-sensitive
// operations. rest is the tail of the enclosing statement list, consulted
// for the collect-then-sort pattern.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			f := pkgFunc(pass.TypesInfo, node)
			if f == nil {
				return true
			}
			if isRNGSourceMethod(f) && f.Name() != "Split" && f.Name() != "SplitInto" {
				pass.Reportf(node.Pos(),
					"rng draw (%s) inside range over map: iteration order leaks into the stream; iterate sorted keys (or annotate `//lint:allow maporder -- reason`)",
					f.Name())
			}
			if eventPostMethods[f.Name()] && eventPostPackages[funcPkgTail(f)] && f.Signature().Recv() != nil {
				pass.Reportf(node.Pos(),
					"event posting (%s.%s) inside range over map: events enqueue in randomized order; iterate sorted keys (or annotate `//lint:allow maporder -- reason`)",
					funcPkgTail(f), f.Name())
			}
		case *ast.AssignStmt:
			checkEscapingAppend(pass, node, rs, rest)
		}
		return true
	})
}

// checkEscapingAppend flags `x = append(x, ...)` inside the loop when x is
// declared outside it and no later statement in the enclosing block sorts
// x.
func checkEscapingAppend(pass *Pass, assign *ast.AssignStmt, rs *ast.RangeStmt, rest []ast.Stmt) {
	for i, rhs := range assign.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(assign.Lhs) <= i {
			continue
		}
		if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fn.Name != "append" {
			continue
		} else if _, isBuiltin := pass.TypesInfo.Uses[fn].(*types.Builtin); !isBuiltin {
			continue
		}
		lhs, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.TypesInfo.Uses[lhs]
		if obj == nil {
			obj = pass.TypesInfo.Defs[lhs]
		}
		// Declared inside the loop body: the slice dies with the
		// iteration, so its internal order cannot escape.
		if obj == nil || (obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()) {
			continue
		}
		if sortedAfter(pass, obj, rest) {
			continue
		}
		pass.Reportf(assign.Pos(),
			"append to %s (declared outside the loop) inside range over map: element order is randomized; collect and sort keys first (or annotate `//lint:allow maporder -- reason`)",
			lhs.Name)
	}
}

// sortedAfter reports whether any statement in rest passes obj to a
// sort/slices sorting function — the collect-then-sort idiom.
func sortedAfter(pass *Pass, obj types.Object, rest []ast.Stmt) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := pkgFunc(pass.TypesInfo, call)
			if f == nil {
				return true
			}
			if tail := funcPkgTail(f); tail != "sort" && tail != "slices" {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(a ast.Node) bool {
					if id, ok := a.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

package lint

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the time-package entry points that read or wait on
// the wall clock. References to them inside the simulation boundary are
// determinism bugs: simulated code must take time from a clock.Scheduler.
// (Pure value helpers — time.Duration, time.Millisecond, ParseDuration —
// remain legal; they carry no clock.)
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// globalRandExempt are the math/rand (and v2) constructors that do NOT
// draw from the process-global source. Everything else at package level
// does, which makes draws depend on whatever else the process ran first.
var globalRandExempt = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// SimTime forbids wall-clock time and the global math/rand source inside
// the simulation packages. All time must flow through internal/clock
// schedulers and all randomness through internal/rng streams; the
// sanctioned wall-clock sites (trial timing in runner/scale.go, the real
// udptransport binding, benchmarks) are either outside the sim set or
// carry a //lint:allow simtime annotation.
var SimTime = &Analyzer{
	Name: "simtime",
	Doc:  "forbid time.Now/Sleep/After and the global math/rand source in simulation packages",
	Run:  runSimTime,
}

func runSimTime(pass *Pass) error {
	if !inSimSet(pass.ImportPath) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "time":
				if wallClockFuncs[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"wall-clock time.%s in simulation package %q: use a clock.Scheduler (or annotate `//lint:allow simtime -- reason`)",
						sel.Sel.Name, pathTail(pass.ImportPath))
				}
			case "math/rand", "math/rand/v2":
				obj := pass.TypesInfo.Uses[sel.Sel]
				if _, isFunc := obj.(*types.Func); isFunc && !globalRandExempt[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"global math/rand source (rand.%s) in simulation package %q: draw from an internal/rng stream (or annotate `//lint:allow simtime -- reason`)",
						sel.Sel.Name, pathTail(pass.ImportPath))
				}
			}
			return true
		})
	}
	return nil
}

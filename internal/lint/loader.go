package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matched by patterns (relative to dir) and
// returns them ready for analysis. Only non-test Go files are analyzed:
// the determinism contract binds shipped simulation code, while tests and
// benchmarks are free to use wall clocks and ad-hoc seeds.
//
// The loader shells out to `go list -export -json -deps`, which compiles
// dependencies as needed, then type-checks each matched package from
// source with imports resolved against the compiler's export data. This is
// a minimal stand-in for golang.org/x/tools/go/packages built only on the
// standard library and the go tool.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{} // import path -> export data file
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: imp, FakeImportC: true}
		typed, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Name:       t.Name,
			Dir:        t.Dir,
			Fset:       fset,
			Syntax:     files,
			Types:      typed,
			TypesInfo:  info,
		})
	}
	return pkgs, nil
}

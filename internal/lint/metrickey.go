package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// MetricKey enforces the metric-name registry: every metric key the sweep
// machinery emits or looks up is declared once in the runner package's
// metrickeys.go (constants prefixed MK, catalogued with their protocol and
// axis in metricKeyRegistry). The analyzer checks three things:
//
//  1. No raw metric-name string literals: in any package that declares or
//     imports the registry, a string literal equal to a registered key
//     must be replaced by its MK constant. This keeps emitters, reducers
//     and report printers agreeing by construction, not convention.
//  2. Protocol scoping: a file carrying a `//metrics:scope rrmp` (or
//     rmtp) directive may only mention keys whose registry entry is gated
//     to that protocol or to both. This is the PR 5 invariant — RRMP-only
//     keys never leak into rmtp cells — checked statically.
//  3. Registry completeness: every MK constant in the registry package
//     must have a metricKeyRegistry entry.
var MetricKey = &Analyzer{
	Name: "metrickey",
	Doc:  "require metric-name strings to come from the central metrickeys registry",
	Run:  runMetricKey,
}

// metricKeysFile is the one file allowed to spell registered keys as
// string literals: the registry itself.
const metricKeysFile = "metrickeys.go"

// scopeDirective marks a file as emitting cells for one protocol.
const scopeDirective = "//metrics:scope "

// mkPrefix is the naming convention for registry constants.
const mkPrefix = "MK"

func runMetricKey(pass *Pass) error {
	keys, registryPkg := metricKeySet(pass)
	if len(keys) == 0 {
		return nil
	}

	var registry map[string]string // key value -> protocol gate
	if registryPkg == pass.Pkg {
		registry = extractRegistry(pass)
		checkRegistryComplete(pass, keys, registry)
	}

	for _, file := range pass.Files {
		if filepath.Base(pass.Fset.Position(file.Pos()).Filename) == metricKeysFile {
			continue
		}
		checkLiterals(pass, file, keys)
		if registry != nil {
			if scope := fileScope(file); scope != "" {
				checkScope(pass, file, scope, registry)
			}
		}
	}
	return nil
}

// metricKeySet returns the registered key values (value -> constant name)
// visible to this package: its own MK constants if it declares the
// registry, else the exported MK constants of an imported runner package.
func metricKeySet(pass *Pass) (map[string]string, *types.Package) {
	if keys := mkConsts(pass.Pkg); len(keys) > 0 {
		return keys, pass.Pkg
	}
	for _, imp := range pass.Pkg.Imports() {
		if pathTail(imp.Path()) == "runner" {
			if keys := mkConsts(imp); len(keys) > 0 {
				return keys, imp
			}
		}
	}
	return nil, nil
}

// mkConsts collects pkg's package-level MK-prefixed string constants.
func mkConsts(pkg *types.Package) map[string]string {
	keys := map[string]string{}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, mkPrefix) {
			continue
		}
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Val().Kind() != constant.String {
			continue
		}
		keys[constant.StringVal(c.Val())] = name
	}
	return keys
}

// checkLiterals flags string literals spelling a registered key. Struct
// tags and import paths are not expressions of interest and are skipped.
func checkLiterals(pass *Pass, file *ast.File, keys map[string]string) {
	skip := map[*ast.BasicLit]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.Field:
			if node.Tag != nil {
				skip[node.Tag] = true
			}
		case *ast.ImportSpec:
			skip[node.Path] = true
		}
		return true
	})
	ast.Inspect(file, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING || skip[lit] {
			return true
		}
		tv, ok := pass.TypesInfo.Types[lit]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return true
		}
		if name, registered := keys[constant.StringVal(tv.Value)]; registered {
			pass.Reportf(lit.Pos(),
				"metric-name literal %s: use the registry constant %s (or annotate `//lint:allow metrickey -- reason`)",
				lit.Value, name)
		}
		return true
	})
}

// fileScope returns the protocol named by a //metrics:scope directive in
// file, or "".
func fileScope(file *ast.File) string {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, scopeDirective) {
				return strings.TrimSpace(strings.TrimPrefix(c.Text, scopeDirective))
			}
		}
	}
	return ""
}

// checkScope verifies that every registry constant mentioned in a
// protocol-scoped file is gated to that protocol (or to both).
func checkScope(pass *Pass, file *ast.File, scope string, registry map[string]string) {
	ast.Inspect(file, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || !strings.HasPrefix(id.Name, mkPrefix) {
			return true
		}
		c, ok := pass.TypesInfo.Uses[id].(*types.Const)
		if !ok || c.Val().Kind() != constant.String {
			return true
		}
		proto, known := registry[constant.StringVal(c.Val())]
		if !known || proto == "both" || proto == scope {
			return true
		}
		pass.Reportf(id.Pos(),
			"metric key %s is gated to protocol %q but this file is scoped `//metrics:scope %s` (or annotate `//lint:allow metrickey -- reason`)",
			id.Name, proto, scope)
		return true
	})
}

// extractRegistry reads the metricKeyRegistry composite literal from the
// registry package's syntax and returns key value -> protocol gate.
func extractRegistry(pass *Pass) map[string]string {
	registry := map[string]string{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok || gen.Tok != token.VAR {
				continue
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "metricKeyRegistry" || len(vs.Values) != 1 {
					continue
				}
				lit, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				for _, elt := range lit.Elts {
					entry, ok := elt.(*ast.CompositeLit)
					if !ok {
						continue
					}
					var key, proto string
					for _, field := range entry.Elts {
						kv, ok := field.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						name, ok := kv.Key.(*ast.Ident)
						if !ok {
							continue
						}
						tv, ok := pass.TypesInfo.Types[kv.Value]
						if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
							continue
						}
						switch name.Name {
						case "Key":
							key = constant.StringVal(tv.Value)
						case "Protocol":
							proto = constant.StringVal(tv.Value)
						}
					}
					if key != "" {
						registry[key] = proto
					}
				}
			}
		}
	}
	return registry
}

// checkRegistryComplete reports MK constants that lack a registry entry.
func checkRegistryComplete(pass *Pass, keys, registry map[string]string) {
	scope := pass.Pkg.Scope()
	for value, name := range keys {
		if _, ok := registry[value]; ok {
			continue
		}
		if obj := scope.Lookup(name); obj != nil {
			pass.Reportf(obj.Pos(),
				"metric key constant %s (%q) has no metricKeyRegistry entry: declare its protocol/axis gating", name, value)
		}
	}
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// simPackages names the packages inside the simulation boundary: code
// whose behavior must be a pure function of the trial seed. Matching is by
// the final import-path segment so the same analyzers run unchanged over
// this repository (repro/internal/core, ...) and over the self-contained
// fixture modules in testdata (simfix/core, ...).
//
// internal/clock and internal/udptransport are deliberately absent: clock
// is the sanctioned boundary between simulated and wall time, and
// udptransport is the real-time binding of it.
var simPackages = map[string]bool{
	"core":     true,
	"rrmp":     true,
	"rmtp":     true,
	"netsim":   true,
	"sim":      true,
	"eventq":   true,
	"exp":      true,
	"runner":   true,
	"workload": true,
	"topology": true,
	"gossipfd": true,
}

// pathTail returns the final segment of an import path.
func pathTail(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// inSimSet reports whether the import path names a simulation package.
func inSimSet(importPath string) bool {
	return simPackages[pathTail(importPath)]
}

// pkgFunc resolves a call expression to the *types.Func it invokes (a
// package-level function or a method), or nil for indirect calls, builtins
// and conversions.
func pkgFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// funcPkgTail returns the final import-path segment of the package that
// declares f ("" for builtins or functions without a package).
func funcPkgTail(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return pathTail(f.Pkg().Path())
}

// isRNGSourceMethod reports whether f is a method on the deterministic
// rng.Source type (any package whose path ends in "rng" counts, so fixture
// modules can model it).
func isRNGSourceMethod(f *types.Func) bool {
	if f == nil || funcPkgTail(f) != "rng" {
		return false
	}
	recv := f.Signature().Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Source"
}

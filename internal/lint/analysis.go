// Package lint is the repository's static enforcement of the determinism
// contract: the invariants DESIGN.md promises (all simulated time flows
// through internal/clock, all randomness through internal/rng streams,
// map iteration order never leaks into results, metric keys come from the
// central registry) are checked by four analyzers instead of being left to
// convention and runtime differential tests.
//
// The analyzers are written against a deliberately small framework modeled
// on golang.org/x/tools/go/analysis (Analyzer / Pass / Diagnostic, an
// analysistest-style fixture runner in linttest.go). The x/tools module is
// not vendored in this repository, so the framework is built directly on
// the standard library: packages are loaded with `go list -export -json
// -deps` and type-checked from source against compiler export data
// (loader.go). The API mirrors x/tools closely enough that porting the
// analyzers onto the real framework is a rename, not a rewrite.
//
// Suppression grammar (see DESIGN.md §12): a finding is suppressed by an
// annotation on the same line or the line directly above it:
//
//	//lint:allow <analyzer>[,<analyzer>...] -- <reason>
//
// The reason is mandatory; an allow annotation without ` -- reason` does
// not suppress anything and is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects a single package via its Pass
// and reports findings with Pass.Report; it returns an error only for
// internal failures (a finding is never an error).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// ImportPath is the package's full import path (types.Package.Path
	// reports the same thing, but keeping it explicit makes the sim-set
	// matching in simset.go self-documenting).
	ImportPath string

	allows      map[allowKey]bool
	diagnostics *[]Diagnostic
}

// Diagnostic is one finding, attributed to the analyzer that produced it.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// allowKey identifies one suppressed (file, line, analyzer) cell.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// Reportf records a finding at pos unless an allow annotation covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allows[allowKey{position.Filename, position.Line, p.Analyzer.Name}] {
		return
	}
	*p.diagnostics = append(*p.diagnostics, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowPrefix starts every suppression annotation.
const allowPrefix = "//lint:allow "

// collectAllows scans a package's comments for //lint:allow annotations and
// returns the suppression set. An annotation on line L suppresses findings
// on L (trailing-comment form) and on L+1 (line-above form). Malformed
// annotations (no analyzer list, or a missing ` -- reason`) are reported as
// diagnostics of the synthetic "allow" analyzer so the grammar itself is
// machine-checked.
func collectAllows(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic) map[allowKey]bool {
	allows := map[allowKey]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				body := strings.TrimPrefix(c.Text, allowPrefix)
				names, reason, ok := strings.Cut(body, " -- ")
				if !ok || strings.TrimSpace(reason) == "" || strings.TrimSpace(names) == "" {
					*diags = append(*diags, Diagnostic{
						Pos:      pos,
						Analyzer: "allow",
						Message:  "malformed //lint:allow annotation: want `//lint:allow <analyzer>[,<analyzer>] -- <reason>`",
					})
					continue
				}
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					allows[allowKey{pos.Filename, pos.Line, name}] = true
					allows[allowKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	return allows
}

// RunAnalyzers executes every analyzer over every package and returns all
// findings sorted by position (filename, line, column, analyzer) so output
// is deterministic regardless of package load order.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allows := collectAllows(pkg.Fset, pkg.Syntax, &diags)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:    a,
				Fset:        pkg.Fset,
				Files:       pkg.Syntax,
				Pkg:         pkg.Types,
				TypesInfo:   pkg.TypesInfo,
				ImportPath:  pkg.ImportPath,
				allows:      allows,
				diagnostics: &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// All returns the full analyzer suite in reporting order. cmd/rrmp-lint
// and the CI analyzer-count probe both key off this list, so adding an
// analyzer here is the single registration step.
func All() []*Analyzer {
	return []*Analyzer{SimTime, MapOrder, StreamLabel, MetricKey}
}

package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each fixture is a self-contained module under testdata whose packages
// reuse the sim-set import-path tails (core, rrmp, workload, runner, ...),
// so the analyzers run over them exactly as they run over the repository.
// Every expected finding — and every deliberately clean or allow-annotated
// line — is pinned by linttest's want matching.

func TestSimTimeFixture(t *testing.T) {
	linttest.Run(t, "testdata/simtime", []*lint.Analyzer{lint.SimTime})
}

func TestMapOrderFixture(t *testing.T) {
	linttest.Run(t, "testdata/maporder", []*lint.Analyzer{lint.MapOrder})
}

func TestStreamLabelFixture(t *testing.T) {
	linttest.Run(t, "testdata/streamlabel", []*lint.Analyzer{lint.StreamLabel})
}

func TestMetricKeyFixture(t *testing.T) {
	linttest.Run(t, "testdata/metrickey", []*lint.Analyzer{lint.MetricKey})
}

// TestAnalyzerRoster pins the suite: CI's analyzer count and the vet-tool
// registration both key off All().
func TestAnalyzerRoster(t *testing.T) {
	want := []string{"simtime", "maporder", "streamlabel", "metrickey"}
	all := lint.All()
	if len(all) != len(want) {
		t.Fatalf("lint.All() has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("lint.All()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
	}
}

// TestRepositoryClean runs the full suite over the repository itself: the
// tree must stay lint-clean, with every sanctioned exception carried by an
// explicit //lint:allow annotation. (CI runs the same check standalone via
// cmd/rrmp-lint.)
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repository lint load is not a -short test")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAnalyzers(pkgs, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repository finding: %s", d)
	}
}

module metrickeyfix

go 1.24

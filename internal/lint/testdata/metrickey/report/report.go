// Package report imports the registry package: the literal rule follows
// the registered keys across package boundaries.
package report

import "metrickeyfix/runner"

// Line reads cells by key.
func Line(cells map[string]float64) float64 {
	v := cells["nak_sent"] // want "use the registry constant MKNakSent"
	return v + cells[runner.MKDeliveryRatio]
}

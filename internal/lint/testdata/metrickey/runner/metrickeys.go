// Package runner models the metric-key registry just closely enough for
// the metrickey analyzer: MK constants, the metricKeyRegistry table, and
// protocol-scoped emitter files. This file is the one place allowed to
// spell registered keys as string literals.
package runner

// Registered metric keys. MKOrphan deliberately has no registry entry.
const (
	MKDeliveryRatio = "delivery_ratio"
	MKNakSent       = "nak_sent"
	MKSearches      = "searches"
	MKOrphan        = "orphan_metric" // want "metric key constant MKOrphan .* has no metricKeyRegistry entry"
)

// MetricKeyInfo mirrors the real registry's row type.
type MetricKeyInfo struct {
	Key      string
	Protocol string
	Axis     string
}

var metricKeyRegistry = []MetricKeyInfo{
	{Key: MKDeliveryRatio, Protocol: "both", Axis: "core"},
	{Key: MKNakSent, Protocol: "rmtp", Axis: "core"},
	{Key: MKSearches, Protocol: "rrmp", Axis: "core"},
}

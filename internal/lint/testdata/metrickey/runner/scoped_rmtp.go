// This file models an RMTP emitter; the scope directive pins it to keys
// gated rmtp or both.
//
//metrics:scope rmtp
package runner

// EmitRMTP may mention rmtp- and both-gated keys, but not RRMP-only ones.
func EmitRMTP(out map[string]float64) {
	out[MKNakSent] = 1
	out[MKDeliveryRatio] = 1
	out[MKSearches] = 1 // want "metric key MKSearches is gated to protocol \"rrmp\""
}

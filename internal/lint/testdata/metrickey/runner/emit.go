package runner

// Emit exercises the literal rule: registered keys must be spelled as MK
// constants; strings the registry does not know are not the analyzer's
// business.
func Emit() map[string]float64 {
	out := map[string]float64{}
	out["delivery_ratio"] = 1 // want "use the registry constant MKDeliveryRatio"
	out[MKNakSent] = 2
	//lint:allow metrickey -- documentation example keeps the raw spelling
	out["searches"] = 3
	out["events_total"] = 4
	return out
}

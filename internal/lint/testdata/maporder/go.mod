module maporderfix

go 1.24

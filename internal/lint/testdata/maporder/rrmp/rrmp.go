// Package rrmp is the maporder fixture: order-sensitive bodies inside
// range-over-map loops, plus the sanctioned collect-then-sort pattern and
// the deliberate-exception annotation.
package rrmp

import (
	"sort"

	"maporderfix/rng"
	"maporderfix/sim"
)

// DrawPerMember draws once per member in map order: the stream consumes
// values in randomized order, so the run depends on the hash seed.
func DrawPerMember(src *rng.Source, members map[int]bool) int {
	total := 0
	for id := range members {
		total += src.Intn(8) // want "rng draw \\(Intn\\) inside range over map"
		_ = id
	}
	return total
}

// SplitInLoop is clean even in map order: Split derives a child from the
// label alone, so call order cannot matter.
func SplitInLoop(src *rng.Source, members map[int]bool) {
	for id := range members {
		_ = src.Split(uint64(id))
	}
}

// ScheduleAll posts one event per member in map order: same-timestamp ties
// run in insertion order, so the schedule leaks the hash seed.
func ScheduleAll(eng *sim.Engine, members map[int]bool) {
	for id := range members {
		id := id
		eng.At(0, func() { _ = id }) // want "event posting \\(sim\\.At\\) inside range over map"
	}
}

// CollectUnsorted appends map keys to an escaping slice without sorting.
func CollectUnsorted(members map[int]bool) []int {
	var ids []int
	for id := range members {
		ids = append(ids, id) // want "append to ids"
	}
	return ids
}

// CollectSorted is the sanctioned fix, recognized automatically: collect,
// then sort in the same block.
func CollectSorted(members map[int]bool) []int {
	ids := make([]int, 0, len(members))
	for id := range members {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// LocalAppend is clean: the slice is declared inside the loop body and
// dies with the iteration, so its order cannot escape.
func LocalAppend(members map[int][]int) int {
	n := 0
	for _, vs := range members {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// Allowed is deliberately order-insensitive and says so.
func Allowed(eng *sim.Engine, members map[int]bool) {
	for id := range members {
		id := id
		//lint:allow maporder -- events land at distinct times keyed by id, so enqueue order cannot matter
		eng.At(int64(id), func() { _ = id })
	}
}

// SliceRange is clean: only map iteration order is randomized.
func SliceRange(eng *sim.Engine, members []int) {
	for _, id := range members {
		id := id
		eng.At(0, func() { _ = id })
	}
}

// Package sim models the event-loop surface: the package tail is "sim",
// so its At/Post methods count as event posting for the maporder analyzer.
package sim

// Engine is a stub event loop.
type Engine struct{ queue []func() }

// At schedules fn at time t.
func (e *Engine) At(t int64, fn func()) { _ = t; e.queue = append(e.queue, fn) }

// Post enqueues fn immediately.
func (e *Engine) Post(fn func()) { e.queue = append(e.queue, fn) }

module streamlabelfix

go 1.24

// Package rng models the repository's deterministic stream type just
// closely enough for the analyzers: the package tail is "rng" and the
// split methods hang off a type named Source.
package rng

// Source is a stub deterministic PRNG stream.
type Source struct{ state uint64 }

// New returns a root stream.
func New(seed uint64) *Source { return &Source{state: seed} }

// Split derives a child stream from a label.
func (s *Source) Split(label uint64) *Source { return &Source{state: s.state ^ label} }

// SplitInto derives a child stream in place.
func (s *Source) SplitInto(label uint64, dst *Source) { dst.state = s.state ^ label }

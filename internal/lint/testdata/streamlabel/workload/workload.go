// Package workload is the streamlabel fixture: stream-derivation sites
// with and without declared label constants.
package workload

import "streamlabelfix/rng"

// Declared labels follow the repository convention: constants suffixed
// StreamLabel (fixed stream), StreamBase (counter family) or SubStream
// (per-entity child).
const (
	lossStreamLabel  = 0x10c5
	memberStreamBase = 1
	repairSubStream  = 0x7e9a
)

// Derive exercises the legal forms: a bare label constant, a counter
// offset anchored by a named base, and SplitInto with a label.
func Derive(root *rng.Source, n int) []*rng.Source {
	out := []*rng.Source{root.Split(lossStreamLabel)}
	for i := 0; i < n; i++ {
		out = append(out, root.Split(memberStreamBase+uint64(i)))
	}
	var scratch rng.Source
	root.SplitInto(repairSubStream, &scratch)
	return out
}

// AdHoc exercises the banned forms: raw literals and seed arithmetic with
// no named label anchoring them.
func AdHoc(root *rng.Source, seed uint64) *rng.Source {
	a := root.Split(42)      // want "ad-hoc stream derivation: Split label"
	b := a.Split(seed*2 + 1) // want "ad-hoc stream derivation: Split label"
	var dst rng.Source
	b.SplitInto(7, &dst) // want "ad-hoc stream derivation: SplitInto label"
	return &dst
}

// Legacy keeps a raw seed on purpose and says why.
func Legacy(root *rng.Source) *rng.Source {
	return root.Split(99) //lint:allow streamlabel -- frozen legacy seed, kept for recorded-trace compatibility
}

// Package util sits outside the simulation boundary (import-path tail
// "util" is not in the sim set): wall-clock use here is legal.
package util

import "time"

// Stamp reads the wall clock, legally.
func Stamp() time.Time { return time.Now() }

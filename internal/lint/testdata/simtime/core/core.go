// Package core is the simtime fixture: wall-clock and global-rand uses
// inside a simulation package (import-path tail "core"), plus the
// sanctioned escape hatches.
package core

import (
	"math/rand"
	"time"
)

// Tick exercises the forbidden wall-clock entry points.
func Tick() time.Duration {
	start := time.Now()            // want "wall-clock time\\.Now"
	time.Sleep(time.Millisecond)   // want "wall-clock time\\.Sleep"
	<-time.After(time.Millisecond) // want "wall-clock time\\.After"
	return time.Since(start)       // want "wall-clock time\\.Since"
}

// Draw exercises the process-global math/rand source.
func Draw() int {
	n := rand.Intn(8)   // want "global math/rand source \\(rand\\.Intn\\)"
	f := rand.Float64() // want "global math/rand source \\(rand\\.Float64\\)"
	return n + int(f)
}

// Seeded is clean: an explicitly seeded source is deterministic, only the
// process-global draws are banned (the constructors are exempt).
func Seeded() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(8)
}

// Durations is clean: time's value helpers carry no clock.
func Durations() time.Duration {
	return 5 * time.Millisecond
}

// Timed shows both allow forms: trailing comment and line-above.
func Timed() time.Duration {
	start := time.Now() //lint:allow simtime -- wall-clock trial timing is the measurement itself
	//lint:allow simtime -- paired with the start timestamp above
	return time.Since(start)
}

// Malformed: an allow annotation without a ` -- reason` suppresses nothing
// and is itself reported by the synthetic "allow" analyzer.
func Malformed() {
	//lint:allow simtime // want "malformed //lint:allow annotation"
	time.Sleep(time.Millisecond) // want "wall-clock time\\.Sleep"
}

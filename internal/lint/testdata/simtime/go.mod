module simtimefix

go 1.24

package runner

import (
	"runtime"
	"testing"

	"repro/internal/topology"
)

// benchTopo builds the construction-benchmark tree: 10k members at depth
// 3, the same shape as the BENCH_scale 10k row.
func benchTopo(tb testing.TB) *topology.Topology {
	tb.Helper()
	topo, err := topology.BalancedTree(4, 4, 10000)
	if err != nil {
		tb.Fatal(err)
	}
	return topo
}

// BenchmarkNewCluster tracks cluster construction — the setup path that
// used to dominate the 1M-member row (per-member peer-list copies,
// inRegion maps, transport boxes, rng splits, receive closures). The
// allocs/member and bytes/member metrics are what the microbench job
// watches; TestNewClusterAllocsPerMember pins the ceiling.
func BenchmarkNewCluster(b *testing.B) {
	topo := benchTopo(b)
	members := float64(topo.NumNodes())
	b.ReportAllocs()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := NewCluster(ClusterConfig{Topo: topo, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		_ = c
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	perOp := 1 / (float64(b.N) * members)
	b.ReportMetric(float64(after.Mallocs-before.Mallocs)*perOp, "allocs/member")
	b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)*perOp, "bytes/member")
}

// TestNewClusterAllocsPerMember is the AllocsPerRun-style guard on the
// setup path: constructing a cluster must stay under a fixed allocation
// budget per member, so the wins that made the 1M-member row buildable
// (shared region views, range-check region membership, batched transports
// and rng streams, closure-free packet registration) cannot silently
// erode. The bound is measured headroom over the current ~18
// allocs/member (down from 33 before the setup overhaul; the eliminated
// terms also scaled with region size, which the survivors do not), not a
// target.
func TestNewClusterAllocsPerMember(t *testing.T) {
	if testing.Short() {
		t.Skip("construction macro-measurement; skipped with -short")
	}
	topo := benchTopo(t)
	members := float64(topo.NumNodes())
	avg := testing.AllocsPerRun(3, func() {
		if _, err := NewCluster(ClusterConfig{Topo: topo, Seed: 1}); err != nil {
			t.Fatal(err)
		}
	})
	perMember := avg / members
	const budget = 25.0
	if perMember > budget {
		t.Fatalf("NewCluster allocates %.1f/member (%.0f total); budget %.0f/member", perMember, avg, budget)
	}
	t.Logf("NewCluster: %.1f allocs/member (%.0f total for %d members)", perMember, avg, topo.NumNodes())
}

package runner

import (
	"time"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/rrmp"
	"repro/internal/topology"
)

// PolicyFactory adapts a parsed policy spec into the per-member factory
// ClusterConfig.Policy consumes. The two-phase kind maps to a nil factory:
// the member then builds the paper's policy itself from its
// defaults-applied parameters — the historic path every committed report
// pins. fixedHold is the scenario-level hold the fixed kind falls back to
// when the spec carries no explicit hold.
func PolicyFactory(spec policy.Spec, fixedHold time.Duration) func(view topology.View, p rrmp.Params) core.Policy {
	if spec.Kind == policy.KindTwoPhase {
		return nil
	}
	return func(view topology.View, p rrmp.Params) core.Policy {
		env := policy.Env{
			Self:          view.Self,
			RegionSize:    view.NumPeers() + 1,
			IdleThreshold: p.IdleThreshold,
			C:             p.C,
			LongTermTTL:   p.LongTermTTL,
			FixedHold:     fixedHold,
		}
		// Only the hash kind reads the region slice; skipping it elsewhere
		// keeps the per-member setup path allocation-free.
		if spec.Kind == policy.KindHash {
			env.Region = append([]topology.NodeID{view.Self}, view.Peers()...)
		}
		return spec.Build(env)
	}
}

package runner

import "repro/internal/exp"

// SweepFitnessKeys binds the generic fitness objectives to the registered
// metric keys sweep cells report: delivery ratio up, buffer byte-seconds,
// unrecoverable count and mean recovery latency down.
func SweepFitnessKeys() exp.FitnessKeys {
	return exp.FitnessKeys{
		Delivery:      MKDeliveryRatio,
		ByteSeconds:   MKBufferIntegralByteSec,
		Unrecoverable: MKUnrecoverable,
		RecoveryMs:    MKMeanRecoveryMs,
	}
}

// SweepFitness scores every cell of a sweep report against the others
// under the given weights and returns the ranking, best first. Cost
// normalization spans the whole report, so mixed families rank against
// report-wide maxima — filter rep.Cells first to compare within a family.
func SweepFitness(rep exp.Report, w exp.FitnessWeights) []exp.FitnessRow {
	return exp.FitnessFromCells(rep.Cells, SweepFitnessKeys(), w)
}

package runner

// This file is the central metric-key registry: the single place a metric
// name may be spelled as a string. Every key the sweep machinery emits,
// reduces or prints is declared here as an MK constant and catalogued in
// metricKeyRegistry with its protocol and axis gating. The metrickey
// analyzer (internal/lint) enforces both directions: raw metric-name
// literals anywhere else are rejected, and a file scoped with
// `//metrics:scope rrmp|rmtp` may only mention keys gated to that
// protocol (or to both) — so "RRMP-only keys never leak into rmtp cells"
// (PR 5) is a compile-gate, not a convention.
//
// The constants are untyped strings so existing map[string]float64
// emitters and exp.Summarize call sites take them unchanged; the committed
// reports (BENCH_sweep.json, the pinned goldens) are byte-identical
// through this refactor because only the spelling sites moved, never the
// values.

// Keys emitted by both protocol kernels.
const (
	MKLeaves               = "leaves"
	MKPacketsSent          = "packets_sent"
	MKBytesSent            = "bytes_sent"
	MKEvents               = "events"
	MKDuplicates           = "duplicates"
	MKRepairs              = "repairs"
	MKBufferIntegralMsgSec = "buffer_integral_msgsec"
	MKPeakBuffered         = "peak_buffered"
	MKMeanRecoveryMs       = "mean_recovery_ms"
	MKMeanBufferingMs      = "mean_buffering_ms"
	MKCrashes              = "crashes"
	MKUnrecoverable        = "unrecoverable"
	MKPartitionDrops       = "partition_drops"
)

// Reach / delivery keys (both protocols, computed by reachMetrics).
const (
	MKDeliveryRatio         = "delivery_ratio"
	MKMinReachFrac          = "min_reach_frac"
	MKSurvivorDeliveryRatio = "survivor_delivery_ratio"
	MKSurvivorMinReachFrac  = "survivor_min_reach_frac"
)

// Byte-currency keys: present only in cells that engage the payload or
// budget axes (workloadBytesEngaged) so pre-axis cells keep the exact key
// set the committed golden reports pin byte for byte.
const (
	MKBufferIntegralByteSec = "buffer_integral_bytesec"
	MKPeakBufferedBytes     = "peak_buffered_bytes"
	MKPressureEvictions     = "pressure_evictions"
	MKBudgetDenials         = "budget_denials"
)

// Workload-axis keys: present only in cells with a multi-client workload.
const (
	MKClients     = "clients"
	MKPublishes   = "publishes"
	MKLateJoiners = "late_joiners"
)

// RRMP-only keys (region-bufferer recovery, search, handoff, gossip FD).
const (
	MKLocalRequests      = "local_requests"
	MKRemoteRequests     = "remote_requests"
	MKRegionalMulticasts = "regional_multicasts"
	MKHandoffs           = "handoffs"
	MKSearches           = "searches"
	MKSearchFailures     = "search_failures"
	MKLongTermEntries    = "long_term_entries"
	MKSuspects           = "suspects"
	MKMeanReRecoveryMs   = "mean_rerecovery_ms"
)

// RMTP-only keys (NAK/ACK-window repair-server machinery).
const (
	MKNakSent    = "nak_sent"
	MKNakRecv    = "nak_recv"
	MKAckSent    = "ack_sent"
	MKAckRecv    = "ack_recv"
	MKAckTrim    = "ack_trim"
	MKNakGiveups = "nak_giveups"
)

// Ablation-only summary columns (multitrial.go reduces ablation rows under
// these names; they never appear in sweep cells).
const (
	MKBufferIntegral = "buffer_integral"
	MKPeakPerMember  = "peak_per_member"
	MKRecoveryMs     = "recovery_ms"
)

// MetricKeyInfo catalogues one registered key. Protocol is "rrmp", "rmtp"
// or "both"; Axis names the machinery that produces the key ("core",
// "reach", "bytes", "workload", "ablation") and documents when the key may
// be absent from a cell.
type MetricKeyInfo struct {
	Key      string
	Protocol string
	Axis     string
}

// metricKeyRegistry gates every MK constant. The metrickey analyzer reads
// this table statically: an MK constant without an entry is a finding, and
// protocol-scoped emitter files may only mention keys their gate allows.
var metricKeyRegistry = []MetricKeyInfo{
	{Key: MKLeaves, Protocol: "both", Axis: "core"},
	{Key: MKPacketsSent, Protocol: "both", Axis: "core"},
	{Key: MKBytesSent, Protocol: "both", Axis: "core"},
	{Key: MKEvents, Protocol: "both", Axis: "core"},
	{Key: MKDuplicates, Protocol: "both", Axis: "core"},
	{Key: MKRepairs, Protocol: "both", Axis: "core"},
	{Key: MKBufferIntegralMsgSec, Protocol: "both", Axis: "core"},
	{Key: MKPeakBuffered, Protocol: "both", Axis: "core"},
	{Key: MKMeanRecoveryMs, Protocol: "both", Axis: "core"},
	{Key: MKMeanBufferingMs, Protocol: "both", Axis: "core"},
	{Key: MKCrashes, Protocol: "both", Axis: "core"},
	{Key: MKUnrecoverable, Protocol: "both", Axis: "core"},
	{Key: MKPartitionDrops, Protocol: "both", Axis: "core"},

	{Key: MKDeliveryRatio, Protocol: "both", Axis: "reach"},
	{Key: MKMinReachFrac, Protocol: "both", Axis: "reach"},
	{Key: MKSurvivorDeliveryRatio, Protocol: "both", Axis: "reach"},
	{Key: MKSurvivorMinReachFrac, Protocol: "both", Axis: "reach"},

	{Key: MKBufferIntegralByteSec, Protocol: "both", Axis: "bytes"},
	{Key: MKPeakBufferedBytes, Protocol: "both", Axis: "bytes"},
	{Key: MKPressureEvictions, Protocol: "both", Axis: "bytes"},
	{Key: MKBudgetDenials, Protocol: "both", Axis: "bytes"},

	{Key: MKClients, Protocol: "both", Axis: "workload"},
	{Key: MKPublishes, Protocol: "both", Axis: "workload"},
	{Key: MKLateJoiners, Protocol: "both", Axis: "workload"},

	{Key: MKLocalRequests, Protocol: "rrmp", Axis: "core"},
	{Key: MKRemoteRequests, Protocol: "rrmp", Axis: "core"},
	{Key: MKRegionalMulticasts, Protocol: "rrmp", Axis: "core"},
	{Key: MKHandoffs, Protocol: "rrmp", Axis: "core"},
	{Key: MKSearches, Protocol: "rrmp", Axis: "core"},
	{Key: MKSearchFailures, Protocol: "rrmp", Axis: "core"},
	{Key: MKLongTermEntries, Protocol: "rrmp", Axis: "core"},
	{Key: MKSuspects, Protocol: "rrmp", Axis: "core"},
	{Key: MKMeanReRecoveryMs, Protocol: "rrmp", Axis: "core"},

	{Key: MKNakSent, Protocol: "rmtp", Axis: "core"},
	{Key: MKNakRecv, Protocol: "rmtp", Axis: "core"},
	{Key: MKAckSent, Protocol: "rmtp", Axis: "core"},
	{Key: MKAckRecv, Protocol: "rmtp", Axis: "core"},
	{Key: MKAckTrim, Protocol: "rmtp", Axis: "core"},
	{Key: MKNakGiveups, Protocol: "rmtp", Axis: "core"},

	{Key: MKBufferIntegral, Protocol: "rrmp", Axis: "ablation"},
	{Key: MKPeakPerMember, Protocol: "rrmp", Axis: "ablation"},
	{Key: MKRecoveryMs, Protocol: "rrmp", Axis: "ablation"},
}

// MetricKeys returns the registry in declaration order (protocol gates
// first grouped by axis). Reporting and validation tools use it to
// enumerate every key the repository can emit.
func MetricKeys() []MetricKeyInfo {
	out := make([]MetricKeyInfo, len(metricKeyRegistry))
	copy(out, metricKeyRegistry)
	return out
}

package runner

import (
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/topology"
	"repro/internal/workload"
)

// TestTimelineForLegacyShape pins the nil-workload timeline against the
// historic single-sender contract: client 0 publishing Msgs messages
// exactly Gap apart with the PayloadSizesFor draws — the identity that
// keeps every pre-workload cell byte-stable.
func TestTimelineForLegacyShape(t *testing.T) {
	sc := exp.Scenario{Regions: []int{10}, Msgs: 15, Gap: 20 * time.Millisecond,
		PayloadModel: "lognormal", PayloadBytes: 512}
	tl, maxBytes, err := TimelineFor(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	sizes, wantMax, err := PayloadSizesFor(sc.PayloadModel, sc.PayloadBytes, sc.Msgs, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) != sc.Msgs || maxBytes != wantMax {
		t.Fatalf("legacy timeline %d events max %d, want %d/%d", len(tl), maxBytes, sc.Msgs, wantMax)
	}
	for i, e := range tl {
		if e.At != time.Duration(i)*sc.Gap || e.Client != 0 || e.Bytes != sizes[i] {
			t.Fatalf("event %d = %+v, want (%v, 0, %d)", i, e, time.Duration(i)*sc.Gap, sizes[i])
		}
	}
}

func TestPublisherNodes(t *testing.T) {
	topo, err := topology.Chain(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	pubs, err := publisherNodes(topo, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pubs) != 4 || pubs[0] != topo.Sender() {
		t.Fatalf("pubs %v: client 0 must sit on the legacy sender", pubs)
	}
	seen := map[topology.NodeID]bool{}
	for _, p := range pubs {
		if seen[p] {
			t.Fatalf("publisher %d mapped twice: %v", p, pubs)
		}
		seen[p] = true
	}
	again, _ := publisherNodes(topo, 4)
	for i := range pubs {
		if pubs[i] != again[i] {
			t.Fatal("publisher mapping not deterministic")
		}
	}
	if _, err := publisherNodes(topo, 21); err == nil {
		t.Fatal("more clients than members accepted")
	}
}

// Fault candidates must exclude every publisher, not just the legacy
// sender: a workload cell's publish timeline is part of cell identity and
// may not be perturbed by churn eating a publisher.
func TestFaultsShieldPublishers(t *testing.T) {
	sc := exp.Scenario{
		Regions: []int{8, 8},
		Policy:  "two-phase",
		Churn:   50, Crash: 50, // aggressive: nearly every candidate drawn
		Msgs: 4, Gap: 10 * time.Millisecond, Horizon: 2 * time.Second,
		Workload: &workload.Spec{Clients: 6, Msgs: 24,
			Arrival: workload.ArrivalPoisson, Gap: 50 * time.Millisecond},
	}
	topo, err := scenarioTopology(sc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{Topo: topo, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pubs, err := publisherNodes(topo, sc.Workload.Clients)
	if err != nil {
		t.Fatal(err)
	}
	shielded := map[topology.NodeID]bool{}
	for _, p := range pubs {
		shielded[p] = true
	}
	var victims []topology.NodeID
	inj := faultInjector{
		excused: func(topology.NodeID) bool { return false },
		leave:   func(v topology.NodeID) { victims = append(victims, v) },
		crash:   func(v topology.NodeID) { victims = append(victims, v) },
		recover: func(topology.NodeID) {},
	}
	scheduleScenarioFaults(c.Engine, c.Net, topo, c.All, sc, 3, pubs, inj)
	c.Engine.RunUntil(sc.Horizon)
	if len(victims) == 0 {
		t.Fatal("aggressive fault rates drew no victims")
	}
	for _, v := range victims {
		if shielded[v] {
			t.Fatalf("fault hit publisher %d (publishers %v)", v, pubs)
		}
	}
}

// TestRecordedTimelineReplaysByteIdentical is the trace-replay acceptance
// gate: materializing a workload cell's timeline and replaying it through
// RunScenarioTimeline must reproduce RunScenario's metrics exactly, under
// both protocol kernels.
func TestRecordedTimelineReplaysByteIdentical(t *testing.T) {
	for _, proto := range []string{"", "rmtp"} {
		sc := exp.Scenario{
			Protocol: proto,
			Regions:  []int{10, 10},
			Loss:     0.1, LossMode: "hash",
			Policy: "two-phase",
			Msgs:   10, Gap: 20 * time.Millisecond, Horizon: 3 * time.Second,
			Workload: exp.MultiClientWorkload(),
		}
		if proto == "rmtp" {
			sc.Policy = "server"
		}
		want, err := RunScenario(sc, 11)
		if err != nil {
			t.Fatal(err)
		}
		tl, _, err := TimelineFor(sc, 11)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunScenarioTimeline(sc, 11, tl)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("proto %q: replay has %d metrics, want %d", proto, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("proto %q: replayed %q = %v, want %v", proto, k, got[k], v)
			}
		}
	}
}

func TestRunScenarioTimelineRejectsInvalid(t *testing.T) {
	sc := exp.Scenario{Regions: []int{6}, Policy: "two-phase",
		Msgs: 5, Gap: time.Millisecond, Horizon: time.Second}
	bad := workload.Timeline{
		{At: time.Second, Client: 0, Bytes: 8},
		{At: 0, Client: 0, Bytes: 8},
	}
	if _, err := RunScenarioTimeline(sc, 1, bad); err == nil {
		t.Fatal("out-of-order timeline accepted")
	}
}

// TestVoDPrefixPushPolicyContrast is the ablation's point, as a test: a
// late joiner can recover the whole prefix from the two-phase long-term
// set (its 60 s TTL holds the prefix), while a 500 ms fixed-hold policy
// has evicted it everywhere by join time, stranding messages as
// unrecoverable.
func TestVoDPrefixPushPolicyContrast(t *testing.T) {
	base := exp.Scenario{
		Regions: []int{12, 12},
		Policy:  "two-phase",
		Msgs:    20, Gap: 20 * time.Millisecond, Horizon: 5 * time.Second,
		Workload: exp.VoDPrefixPush(),
	}
	two, err := RunScenario(base, 5)
	if err != nil {
		t.Fatal(err)
	}
	fixed := base
	fixed.Policy = "fixed"
	fx, err := RunScenario(fixed, 5)
	if err != nil {
		t.Fatal(err)
	}
	if two["late_joiners"] <= 0 || two["late_joiners"] != fx["late_joiners"] {
		t.Fatalf("late joiners %v vs %v", two["late_joiners"], fx["late_joiners"])
	}
	if two["clients"] != 1 || two["publishes"] != 60 {
		t.Fatalf("vod cell clients=%v publishes=%v", two["clients"], two["publishes"])
	}
	if two["unrecoverable"] != 0 {
		t.Fatalf("two-phase stranded %v messages", two["unrecoverable"])
	}
	if fx["unrecoverable"] <= 0 {
		t.Fatal("fixed-hold policy recovered the evicted prefix (contrast lost)")
	}
	if two["survivor_delivery_ratio"] <= fx["survivor_delivery_ratio"] {
		t.Fatalf("two-phase survivor delivery %v not above fixed %v",
			two["survivor_delivery_ratio"], fx["survivor_delivery_ratio"])
	}
}

// The rmtp kernel must run every workload shape; lossless multi-client
// cells deliver everything (from the root, RMTP being single-source).
func TestTreeScenarioWorkloadSmoke(t *testing.T) {
	sc := exp.Scenario{
		Protocol: "rmtp",
		Regions:  []int{8, 8},
		Policy:   "server",
		Msgs:     10, Gap: 20 * time.Millisecond, Horizon: 4 * time.Second,
		Workload: exp.BurstyWorkload(),
	}
	m, err := RunScenario(sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m["clients"] != 4 || m["publishes"] != 48 {
		t.Fatalf("clients=%v publishes=%v", m["clients"], m["publishes"])
	}
	if m["delivery_ratio"] != 1 {
		t.Fatalf("lossless rmtp workload delivery %v", m["delivery_ratio"])
	}
	if _, ok := m["late_joiners"]; ok {
		t.Fatal("late_joiners key in a cell without late joiners")
	}
	if _, ok := m["searches"]; ok {
		t.Fatal("rrmp-only key leaked into an rmtp workload cell")
	}
}

// Workload cells must hold the same worker-pool determinism contract as
// every other cell family: byte-identical reports at any Parallel width.
func TestWorkloadSweepByteIdenticalAcrossParallelism(t *testing.T) {
	sw := exp.WorkloadSweep()
	sw.Regions = [][]int{{8, 8}}
	o := exp.Options{Trials: 2, BaseSeed: 1, Parallel: 1}
	serial, err := RunSweep(o, sw)
	if err != nil {
		t.Fatal(err)
	}
	o.Parallel = 8
	wide, err := RunSweep(o, sw)
	if err != nil {
		t.Fatal(err)
	}
	if fmtReport(t, serial) != fmtReport(t, wide) {
		t.Fatal("workload sweep report differs across -parallel widths")
	}
}

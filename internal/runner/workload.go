package runner

import (
	"fmt"
	"time"

	"repro/internal/exp"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/workload"
)

// WorkloadStreamLabel derives the multi-client workload stream from the
// trial seed: Spec.Timeline consumes all of its randomness from per-client
// substreams split off this one, so the merged publish timeline is a pure
// function of (spec, trial seed) — independent of member count, shard
// width, and every other stream (loss, churn, crash, payload).
const WorkloadStreamLabel = 0xfeed3017

// TimelineFor materializes the scenario's merged publish timeline, the
// single source both protocol kernels drive (common random numbers across
// the protocol axis). A nil Workload reproduces the legacy single-sender
// shape exactly — client 0 publishing Msgs messages Gap apart with the
// PayloadSizesFor size draws — so pre-workload cells keep their bytes.
// The second result is the largest payload, sizing the kernels' shared
// backing buffer.
func TimelineFor(sc exp.Scenario, seed uint64) (workload.Timeline, int, error) {
	if sc.Workload == nil {
		sizes, maxSize, err := PayloadSizesFor(sc.PayloadModel, sc.PayloadBytes, sc.Msgs, seed)
		if err != nil {
			return nil, 0, fmt.Errorf("runner: scenario payload model: %w", err)
		}
		tl := make(workload.Timeline, len(sizes))
		for i, size := range sizes {
			tl[i] = workload.Event{At: time.Duration(i) * sc.Gap, Client: 0, Bytes: size}
		}
		return tl, maxSize, nil
	}
	wlSeed := rng.New(seed).Split(WorkloadStreamLabel).Uint64()
	tl, err := sc.Workload.Timeline(wlSeed)
	if err != nil {
		return nil, 0, fmt.Errorf("runner: scenario workload: %w", err)
	}
	return tl, tl.MaxBytes(), nil
}

// publisherNodes maps timeline client indices to member nodes: client 0 is
// always the topology's sender (so single-client workloads reuse the
// legacy sender), and the rest stride evenly across the member space
// (probing past collisions), spreading publishers over regions. The
// mapping is a pure function of (topology, clients), identical in both
// kernels, so the fault scheduler can protect the same node set under
// either protocol.
func publisherNodes(topo *topology.Topology, clients int) ([]topology.NodeID, error) {
	n := topo.NumNodes()
	if clients > n {
		return nil, fmt.Errorf("runner: %d workload clients exceed %d members", clients, n)
	}
	if clients < 1 {
		clients = 1
	}
	pubs := make([]topology.NodeID, 0, clients)
	used := make(map[topology.NodeID]bool, clients)
	add := func(id topology.NodeID) {
		for used[id] {
			id = topology.NodeID((int(id) + 1) % n)
		}
		used[id] = true
		pubs = append(pubs, id)
	}
	add(topo.Sender())
	for i := 1; i < clients; i++ {
		add(topology.NodeID(i * n / clients))
	}
	return pubs, nil
}

// lateJoin is one VoD late joiner: the member starts crashed (and
// unreachable) and rejoins at the given instant, needing the entire
// published prefix recovered.
type lateJoin struct {
	node topology.NodeID
	at   time.Duration
}

// lateJoinersFor picks the scenario's late-join set: LateJoinFrac of the
// eligible members (everyone except publishers, the sender, and each
// region's first member — the rmtp repair servers, kept up so both
// protocols exclude the same nodes), strided deterministically across the
// eligible list, with join times spread linearly over
// [LateJoinAt, LateJoinAt+LateJoinSpread].
func lateJoinersFor(topo *topology.Topology, spec *workload.Spec, pubs []topology.NodeID) []lateJoin {
	if spec == nil || spec.LateJoinFrac <= 0 {
		return nil
	}
	protected := make(map[topology.NodeID]bool, len(pubs)+topo.NumRegions())
	for _, p := range pubs {
		protected[p] = true
	}
	for r := 0; r < topo.NumRegions(); r++ {
		if members := topo.Members(topology.RegionID(r)); len(members) > 0 {
			protected[members[0]] = true
		}
	}
	var eligible []topology.NodeID
	for id := topology.NodeID(0); int(id) < topo.NumNodes(); id++ {
		if !protected[id] {
			eligible = append(eligible, id)
		}
	}
	k := int(spec.LateJoinFrac*float64(len(eligible)) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > len(eligible) {
		k = len(eligible)
	}
	joiners := make([]lateJoin, 0, k)
	for j := 0; j < k; j++ {
		at := spec.LateJoinAt
		if k > 1 && spec.LateJoinSpread > 0 {
			at += time.Duration(int64(spec.LateJoinSpread) * int64(j) / int64(k-1))
		}
		joiners = append(joiners, lateJoin{node: eligible[j*len(eligible)/k], at: at})
	}
	return joiners
}

// workloadBytesEngaged reports whether the cell's key set includes the
// byte-currency metrics: the legacy payload/budget axes, or a workload
// spec that draws payload sizes.
func workloadBytesEngaged(sc exp.Scenario) bool {
	return sc.PayloadBytes > 0 || sc.ByteBudget > 0 || sc.PayloadModel != "" ||
		sc.Workload.BytesEngaged()
}

// workloadMetrics adds the workload-cell-only keys shared by both kernels.
// Gated on the spec so legacy cells keep the exact key set the committed
// reports pin.
func workloadMetrics(out map[string]float64, sc exp.Scenario, published int, joiners []lateJoin) {
	if sc.Workload == nil {
		return
	}
	out[MKClients] = float64(sc.Workload.Clients)
	out[MKPublishes] = float64(published)
	if sc.Workload.LateJoinFrac > 0 {
		out[MKLateJoiners] = float64(len(joiners))
	}
}

// RunScenarioTimeline is RunScenario with an externally supplied publish
// timeline — the replay path: a recorded rrmp-trace/v1 stream drives the
// run instead of the scenario's generated workload, and an identical
// timeline yields a byte-identical report. Invalid timelines (out of
// order, non-positive sizes) are rejected up front rather than silently
// scheduled out of order.
func RunScenarioTimeline(sc exp.Scenario, seed uint64, tl workload.Timeline) (map[string]float64, error) {
	if !tl.Valid() {
		return nil, fmt.Errorf("runner: replay timeline invalid (out-of-order or malformed events)")
	}
	return runScenario(sc, seed, tl)
}

// RunSweeps expands every sweep in order and runs the concatenation
// through one worker pool with RunScenario as the kernel — how
// BENCH_sweep.json appends the workload family after the standing matrix
// without re-byting it.
func RunSweeps(o exp.Options, sweeps ...exp.Sweep) (exp.Report, error) {
	rep, err := exp.RunSweeps(o, sweeps, RunScenario)
	if err != nil {
		return rep, err
	}
	rep.ExecNote = execNotes(sweeps)
	return rep, nil
}

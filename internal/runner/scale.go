package runner

import (
	"fmt"
	"time"

	"repro/internal/exp"
	"repro/internal/topology"
)

// ScaleSchema identifies the scale report's JSON layout.
const ScaleSchema = "rrmp-scale/v1"

// ScaleCell is one aggregated cell of the scale matrix, annotated with the
// topology's size/shape and the cost of simulating it. Aggregate is fully
// deterministic (a pure function of scenario and seeds, byte-identical at
// any parallelism); WallMsPerTrial and EventsPerSec measure this machine
// and are excluded from determinism contracts.
type ScaleCell struct {
	Name     string       `json:"name"`
	Scenario exp.Scenario `json:"scenario"`
	// Members, Regions and Depth describe the topology (Depth is parent
	// hops from the deepest region to the root).
	Members int `json:"members"`
	Regions int `json:"regions"`
	Depth   int `json:"depth"`
	// Aggregate carries the usual per-metric trial statistics, including
	// the "events" metric (simulator events per trial).
	Aggregate exp.Aggregate `json:"aggregate"`
	// WallMsPerTrial is total cell wall-clock divided by trial count;
	// EventsPerSec is total simulator events divided by total wall-clock.
	// Machine-dependent: the perf trajectory, not a golden value.
	WallMsPerTrial float64 `json:"wall_ms_per_trial"`
	EventsPerSec   float64 `json:"events_per_sec"`
}

// ScaleReport is a whole scale run. The cells' Aggregate sections follow
// the sweep determinism contract; the wall-clock fields deliberately do
// not (they are what the record exists to track).
type ScaleReport struct {
	Schema   string      `json:"schema"`
	BaseSeed uint64      `json:"base_seed"`
	Trials   int         `json:"trials"`
	Note     string      `json:"note"`
	Cells    []ScaleCell `json:"cells"`
}

// scaleNote is embedded in every report so a reader of BENCH_scale.json
// knows which fields are comparable across machines.
const scaleNote = "aggregate sections are deterministic (byte-identical at any -parallel); wall_ms_per_trial and events_per_sec are machine-dependent"

// RunScale expands every sweep in order and runs the concatenation cell by
// cell: each cell's trials go through the exp worker pool (so wide
// -parallel still helps), and the wall clock is taken around the whole
// cell. Cells run sequentially to keep their wall-clock numbers honest —
// parallel cells would contend for cores and overstate per-cell cost.
// Passing several sweeps appends their cells (the standing matrix first,
// then the XL rows) without renumbering anything.
func RunScale(o exp.Options, sweeps ...exp.Sweep) (ScaleReport, error) {
	var scenarios []exp.Scenario
	for _, sw := range sweeps {
		scenarios = append(scenarios, sw.Expand()...)
	}
	rep := ScaleReport{Schema: ScaleSchema, BaseSeed: o.BaseSeed, Trials: o.Trials, Note: scaleNote}
	if rep.Trials < 1 {
		rep.Trials = 1
	}
	for _, sc := range scenarios {
		sc := sc
		//lint:allow simtime -- wall-clock trial timing is the measurement itself (events/sec), outside the simulated world
		start := time.Now()
		agg, err := exp.Run(o, func(_ int, seed uint64) (map[string]float64, error) {
			return RunScenario(sc, seed)
		})
		if err != nil {
			return ScaleReport{}, fmt.Errorf("runner: scale cell %q: %w", sc.Name(), err)
		}
		//lint:allow simtime -- wall-clock trial timing is the measurement itself (events/sec), outside the simulated world
		wall := time.Since(start)

		cell := ScaleCell{Name: sc.Name(), Scenario: sc, Aggregate: agg}
		topo, err := scenarioTopology(sc)
		if err != nil {
			return ScaleReport{}, fmt.Errorf("runner: scale cell %q: %w", sc.Name(), err)
		}
		cell.Members = topo.NumNodes()
		cell.Regions = topo.NumRegions()
		cell.Depth = topo.Depth()
		// Divide nanoseconds as float64: wall.Milliseconds() truncates to
		// integer milliseconds first, quantizing fast cells' trajectory.
		cell.WallMsPerTrial = float64(wall.Nanoseconds()) / 1e6 / float64(rep.Trials)
		if ev, ok := agg.Metric(MKEvents); ok && wall > 0 {
			totalEvents := ev.Mean * float64(ev.N)
			cell.EventsPerSec = totalEvents / wall.Seconds()
		}
		rep.Cells = append(rep.Cells, cell)
	}
	return rep, nil
}

// scenarioTopology rebuilds a scenario's topology for annotation purposes.
func scenarioTopology(sc exp.Scenario) (*topology.Topology, error) {
	switch {
	case sc.Tree != nil:
		return topology.BalancedTree(sc.Tree.Branch, sc.Tree.Levels, sc.Tree.Members)
	case sc.Star:
		return topology.Star(sc.Regions...)
	default:
		return topology.Chain(sc.Regions...)
	}
}

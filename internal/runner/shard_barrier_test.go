package runner

import (
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/rrmp"
	"repro/internal/topology"
	"repro/internal/wire"
)

// TestBarrierBoundaryFaultCut is the batch-ahead regression trap: a fault
// cut (node down, partition, heal) landing *exactly* on a conservative-
// lookahead barrier boundary k×InterOneWay — including the very first
// lookahead horizon at W — must execute on the coordinator at precisely
// its scheduled instant, between windows, and produce identical protocol
// outcomes at any shard count. An engine that batches a window ahead
// before honoring driver events would run member events at t ∈ [kW, kW+W)
// against the pre-cut network state and diverge here.
func TestBarrierBoundaryFaultCut(t *testing.T) {
	const W = InterOneWay

	type outcome struct {
		cutAt, healAt, partAt time.Duration
		received              map[wire.MessageID]int
		sent, bytes           int64
		partitionDrops        int64
		events                uint64
	}

	run := func(t *testing.T, shards int) outcome {
		t.Helper()
		topo, err := topology.BalancedTree(4, 2, 60)
		if err != nil {
			t.Fatal(err)
		}
		params := rrmp.DefaultParams()
		params.FDEnabled = true
		c, err := NewCluster(ClusterConfig{Topo: topo, Params: params, Seed: 3, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if shards > 1 && c.Sharded == nil {
			t.Fatalf("shards=%d: cluster fell back to the serial engine", shards)
		}
		c.Sender.StartSessions()

		var ids []wire.MessageID
		for i := 0; i < 10; i++ {
			i := i
			c.Engine.At(time.Duration(i)*20*time.Millisecond, func() {
				ids = append(ids, c.Sender.Publish([]byte("barrier-payload")))
			})
		}

		// The victim sits in the last region: with 4 shards it is owned by
		// the highest shard, so the cut crosses every lane boundary.
		victim := c.All[len(c.All)-1]
		out := outcome{cutAt: -1, healAt: -1, partAt: -1}
		// Cut at exactly the first lookahead horizon W, heal at 3W, then a
		// partition episode on the 4W and 6W boundaries.
		c.Engine.At(W, func() {
			out.cutAt = c.Engine.Now()
			c.Net.SetDown(victim, true)
		})
		c.Engine.At(3*W, func() {
			out.healAt = c.Engine.Now()
			c.Net.SetDown(victim, false)
		})
		c.Engine.At(4*W, func() {
			out.partAt = c.Engine.Now()
			c.Net.SetPartition(PartitionClasses(topo))
		})
		c.Engine.At(6*W, func() { c.Net.ClearPartition() })

		c.Engine.RunUntil(2 * time.Second)

		out.received = make(map[wire.MessageID]int, len(ids))
		for _, id := range ids {
			out.received[id] = c.CountReceived(id)
		}
		st := c.Net.Stats()
		out.sent, out.bytes = st.TotalSent(), st.TotalBytes()
		out.partitionDrops = st.PartitionDrops()
		out.events = c.Engine.Processed()
		return out
	}

	serial := run(t, 1)
	if serial.cutAt != W || serial.healAt != 3*W || serial.partAt != 4*W {
		t.Fatalf("serial fault events fired at %v/%v/%v, want %v/%v/%v",
			serial.cutAt, serial.healAt, serial.partAt, W, 3*W, 4*W)
	}
	for _, shards := range []int{2, 4} {
		got := run(t, shards)
		// The cut must execute at its exact barrier instant — never
		// deferred to a later barrier nor batch-executed early.
		if got.cutAt != W || got.healAt != 3*W || got.partAt != 4*W {
			t.Fatalf("shards=%d: fault events fired at %v/%v/%v, want %v/%v/%v",
				shards, got.cutAt, got.healAt, got.partAt, W, 3*W, 4*W)
		}
		if got.sent != serial.sent || got.bytes != serial.bytes {
			t.Errorf("shards=%d: %d packets / %d bytes sent, serial %d / %d",
				shards, got.sent, got.bytes, serial.sent, serial.bytes)
		}
		if got.partitionDrops != serial.partitionDrops {
			t.Errorf("shards=%d: %d partition drops, serial %d",
				shards, got.partitionDrops, serial.partitionDrops)
		}
		if got.events != serial.events {
			t.Errorf("shards=%d: %d events processed, serial %d", shards, got.events, serial.events)
		}
		if len(got.received) != len(serial.received) {
			t.Fatalf("shards=%d: %d messages published, serial %d",
				shards, len(got.received), len(serial.received))
		}
		for id, want := range serial.received {
			if got.received[id] != want {
				t.Errorf("shards=%d: message %v reached %d members, serial %d",
					shards, id, got.received[id], want)
			}
		}
	}
}

// TestScenarioPartitionOnLookaheadHorizon runs the full scenario kernel
// with a partition cut pinned to an exact lookahead multiple and crash
// recovery spanning barrier boundaries — the scenario-level version of the
// batch-ahead trap — and requires metric-identical results across shard
// counts.
func TestScenarioPartitionOnLookaheadHorizon(t *testing.T) {
	sc := exp.Scenario{
		Tree:  &exp.TreeShape{Branch: 3, Levels: 3, Members: 100},
		Crash: 2,
		// Recovery spans exactly three lookahead windows.
		CrashRecover: 3 * InterOneWay,
		// The cut lands on the 5th lookahead barrier, the heal two
		// barriers later.
		PartitionAt:  5 * InterOneWay,
		PartitionDur: 2 * InterOneWay,
		Policy:       "two-phase",
		Msgs:         10,
		Gap:          20 * time.Millisecond,
		Horizon:      2 * time.Second,
	}
	serial, err := RunScenario(sc, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 8} {
		sc := sc
		sc.Shards = shards
		got, err := RunScenario(sc, 11)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for k, v := range serial {
			if got[k] != v {
				t.Errorf("shards=%d: metric %q = %v, serial %v", shards, k, got[k], v)
			}
		}
		if got["partition_drops"] == 0 {
			t.Errorf("shards=%d: the pinned partition never dropped a packet", shards)
		}
	}
}

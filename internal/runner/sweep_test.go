package runner

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/exp"
)

// smallSweep is a fast 2×2 matrix for tests: one lossy and one churning
// dimension over a 12-member region.
func smallSweep() exp.Sweep {
	return exp.Sweep{
		Regions:  [][]int{{12}},
		Losses:   []float64{0.2},
		Churns:   []float64{0, 2},
		Policies: []string{"two-phase", "fixed"},
		Msgs:     5,
		Gap:      20 * time.Millisecond,
		Horizon:  2 * time.Second,
	}
}

func TestRunScenarioMetrics(t *testing.T) {
	sc := smallSweep().Expand()[0] // loss 0.2, churn 0, two-phase
	m, err := RunScenario(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"delivery_ratio", "min_reach_frac", "local_requests", "repairs",
		"buffer_integral_msgsec", "packets_sent", "bytes_sent", "events",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("metric %q missing from scenario run", key)
		}
	}
	if r := m["delivery_ratio"]; r <= 0.5 || r > 1 {
		t.Fatalf("delivery_ratio = %v, want (0.5, 1] on a recoverable workload", r)
	}
	if m["leaves"] != 0 {
		t.Fatalf("churn-free scenario recorded %v leaves", m["leaves"])
	}
}

func TestRunScenarioChurnLeaves(t *testing.T) {
	cells := smallSweep().Expand()
	sc := cells[2] // loss 0.2, churn 2, two-phase
	if sc.Churn != 2 {
		t.Fatalf("expansion order changed: got churn %v", sc.Churn)
	}
	m, err := RunScenario(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	// 2 leaves/s over 2 s: expect some departures, but never more than the
	// 11 non-sender members.
	if m["leaves"] < 1 || m["leaves"] > 11 {
		t.Fatalf("leaves = %v, want within [1, 11]", m["leaves"])
	}
}

func TestRunScenarioRejectsUnknownPolicy(t *testing.T) {
	sc := smallSweep().Expand()[0]
	sc.Policy = "nope"
	if _, err := RunScenario(sc, 1); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestRunSweepDeterministicAcrossParallelism is the tier-1 guarantee at the
// runner layer: real simulations, not stub trials, must aggregate to
// byte-identical reports at any pool width.
func TestRunSweepDeterministicAcrossParallelism(t *testing.T) {
	var blobs []string
	for _, parallel := range []int{1, 4} {
		rep, err := RunSweep(exp.Options{Trials: 3, Parallel: parallel, BaseSeed: 11}, smallSweep())
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, string(blob))
	}
	if blobs[0] != blobs[1] {
		t.Fatal("sweep reports differ between parallel=1 and parallel=4")
	}
}

func TestAblationPoliciesTrials(t *testing.T) {
	rows, err := AblationPoliciesTrials(exp.Options{Trials: 2, Parallel: 2, BaseSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d policy rows, want 5", len(rows))
	}
	if rows[0].Policy != "two-phase C=6" {
		t.Fatalf("row order changed: first policy %q", rows[0].Policy)
	}
	for _, r := range rows {
		if r.DeliveryRatio.N != 2 {
			t.Fatalf("policy %q aggregated %d trials, want 2", r.Policy, r.DeliveryRatio.N)
		}
		if r.DeliveryRatio.Mean <= 0.9 || r.DeliveryRatio.Mean > 1 {
			t.Fatalf("policy %q delivery %v implausible", r.Policy, r.DeliveryRatio.Mean)
		}
		if r.BufferIntegral.Mean <= 0 {
			t.Fatalf("policy %q has zero buffering cost", r.Policy)
		}
	}
}

func TestAblationLambdaTrials(t *testing.T) {
	rows, err := AblationLambdaTrials([]float64{1, 4}, 2, exp.Options{Trials: 2, Parallel: 2, BaseSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Lambda != 1 || rows[1].Lambda != 4 {
		t.Fatalf("lambda rows wrong: %+v", rows)
	}
	// More aggressive λ must send more remote requests on average.
	if rows[1].RemoteRequests.Mean <= rows[0].RemoteRequests.Mean {
		t.Fatalf("λ=4 requests (%v) not above λ=1 (%v)",
			rows[1].RemoteRequests.Mean, rows[0].RemoteRequests.Mean)
	}
}

package runner

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/topology"
)

// smallSweep is a fast 2×2 matrix for tests: one lossy and one churning
// dimension over a 12-member region.
func smallSweep() exp.Sweep {
	return exp.Sweep{
		Regions:  [][]int{{12}},
		Losses:   []float64{0.2},
		Churns:   []float64{0, 2},
		Policies: []string{"two-phase", "fixed"},
		Msgs:     5,
		Gap:      20 * time.Millisecond,
		Horizon:  2 * time.Second,
	}
}

func TestRunScenarioMetrics(t *testing.T) {
	sc := smallSweep().Expand()[0] // loss 0.2, churn 0, two-phase
	m, err := RunScenario(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"delivery_ratio", "min_reach_frac", "local_requests", "repairs",
		"buffer_integral_msgsec", "packets_sent", "bytes_sent", "events",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("metric %q missing from scenario run", key)
		}
	}
	if r := m["delivery_ratio"]; r <= 0.5 || r > 1 {
		t.Fatalf("delivery_ratio = %v, want (0.5, 1] on a recoverable workload", r)
	}
	if m["leaves"] != 0 {
		t.Fatalf("churn-free scenario recorded %v leaves", m["leaves"])
	}
}

func TestRunScenarioChurnLeaves(t *testing.T) {
	cells := smallSweep().Expand()
	sc := cells[2] // loss 0.2, churn 2, two-phase
	if sc.Churn != 2 {
		t.Fatalf("expansion order changed: got churn %v", sc.Churn)
	}
	m, err := RunScenario(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	// 2 leaves/s over 2 s: expect some departures, but never more than the
	// 11 non-sender members.
	if m["leaves"] < 1 || m["leaves"] > 11 {
		t.Fatalf("leaves = %v, want within [1, 11]", m["leaves"])
	}
}

func TestRunScenarioRejectsUnknownPolicy(t *testing.T) {
	sc := smallSweep().Expand()[0]
	sc.Policy = "nope"
	if _, err := RunScenario(sc, 1); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestRunSweepDeterministicAcrossParallelism is the tier-1 guarantee at the
// runner layer: real simulations, not stub trials, must aggregate to
// byte-identical reports at any pool width.
func TestRunSweepDeterministicAcrossParallelism(t *testing.T) {
	var blobs []string
	for _, parallel := range []int{1, 4} {
		rep, err := RunSweep(exp.Options{Trials: 3, Parallel: parallel, BaseSeed: 11}, smallSweep())
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, string(blob))
	}
	if blobs[0] != blobs[1] {
		t.Fatal("sweep reports differ between parallel=1 and parallel=4")
	}
}

func TestAblationPoliciesTrials(t *testing.T) {
	rows, err := AblationPoliciesTrials(exp.Options{Trials: 2, Parallel: 2, BaseSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d policy rows, want 5", len(rows))
	}
	if rows[0].Policy != "two-phase C=6" {
		t.Fatalf("row order changed: first policy %q", rows[0].Policy)
	}
	for _, r := range rows {
		if r.DeliveryRatio.N != 2 {
			t.Fatalf("policy %q aggregated %d trials, want 2", r.Policy, r.DeliveryRatio.N)
		}
		if r.DeliveryRatio.Mean <= 0.9 || r.DeliveryRatio.Mean > 1 {
			t.Fatalf("policy %q delivery %v implausible", r.Policy, r.DeliveryRatio.Mean)
		}
		if r.BufferIntegral.Mean <= 0 {
			t.Fatalf("policy %q has zero buffering cost", r.Policy)
		}
	}
}

func TestAblationLambdaTrials(t *testing.T) {
	rows, err := AblationLambdaTrials([]float64{1, 4}, 2, exp.Options{Trials: 2, Parallel: 2, BaseSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Lambda != 1 || rows[1].Lambda != 4 {
		t.Fatalf("lambda rows wrong: %+v", rows)
	}
	// More aggressive λ must send more remote requests on average.
	if rows[1].RemoteRequests.Mean <= rows[0].RemoteRequests.Mean {
		t.Fatalf("λ=4 requests (%v) not above λ=1 (%v)",
			rows[1].RemoteRequests.Mean, rows[0].RemoteRequests.Mean)
	}
}

func TestRunScenarioCrashFaults(t *testing.T) {
	sc := exp.Scenario{
		Regions: []int{14}, Loss: 0.2, Crash: 3, Policy: "two-phase",
		Msgs: 5, Gap: 20 * time.Millisecond, Horizon: 3 * time.Second,
	}
	m, err := RunScenario(sc, 11)
	if err != nil {
		t.Fatal(err)
	}
	if m["crashes"] <= 0 {
		t.Fatalf("crashes = %v, want > 0 at rate 3/s over 3s", m["crashes"])
	}
	if m["suspects"] <= 0 {
		t.Fatalf("suspects = %v, want > 0 (failure detector should run in crash cells)", m["suspects"])
	}
	for _, key := range []string{"unrecoverable", "searches", "search_failures",
		"survivor_delivery_ratio", "survivor_min_reach_frac", "partition_drops"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metric %q missing from crash scenario", key)
		}
	}
	if r := m["survivor_delivery_ratio"]; r <= 0.5 || r > 1 {
		t.Fatalf("survivor_delivery_ratio = %v, want (0.5, 1]", r)
	}
	// Crash-stop members freeze their Delivered counters, so whole-group
	// delivery can only be at most survivor delivery.
	if m["delivery_ratio"] > m["survivor_delivery_ratio"]+1e-9 {
		t.Fatalf("delivery_ratio %v exceeds survivor ratio %v",
			m["delivery_ratio"], m["survivor_delivery_ratio"])
	}
}

// A partition that heals must end with full survivor delivery: the
// minority side recovers everything it missed once the cut closes.
func TestRunScenarioPartitionHealsAndRecovers(t *testing.T) {
	sc := exp.Scenario{
		Regions: []int{10, 10}, Policy: "two-phase",
		PartitionAt: 300 * time.Millisecond, PartitionDur: time.Second,
		Msgs: 8, Gap: 100 * time.Millisecond, Horizon: 5 * time.Second,
	}
	m, err := RunScenario(sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m["partition_drops"] <= 0 {
		t.Fatalf("partition_drops = %v, want > 0 (messages span the cut)", m["partition_drops"])
	}
	if m["survivor_delivery_ratio"] != 1 {
		t.Fatalf("survivor_delivery_ratio = %v after heal, want 1", m["survivor_delivery_ratio"])
	}
	if m["min_reach_frac"] != 1 {
		t.Fatalf("min_reach_frac = %v after heal, want 1", m["min_reach_frac"])
	}
}

// An unhealed partition must NOT fully deliver messages published after
// the cut — and the shortfall must be visible, not silent: every missing
// (survivor, message) pair is explained by an in-flight recovery at the
// horizon or an unrecoverable count.
func TestRunScenarioOpenPartitionBlocksDelivery(t *testing.T) {
	sc := exp.Scenario{
		Regions: []int{10, 10}, Policy: "two-phase",
		PartitionAt: 200 * time.Millisecond, // never heals
		Msgs:        5, Gap: 100 * time.Millisecond, Horizon: 2 * time.Second,
	}
	m, err := RunScenario(sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m["survivor_delivery_ratio"] >= 1 {
		t.Fatal("open partition delivered everything; the cut is not cutting")
	}
	if m["partition_drops"] <= 0 {
		t.Fatalf("partition_drops = %v, want > 0", m["partition_drops"])
	}
}

func TestRunScenarioCrashRecoverReturnsMembers(t *testing.T) {
	sc := exp.Scenario{
		Regions: []int{12}, Loss: 0.1, Crash: 2, CrashRecover: 500 * time.Millisecond,
		Policy: "two-phase",
		Msgs:   10, Gap: 100 * time.Millisecond, Horizon: 4 * time.Second,
	}
	m, err := RunScenario(sc, 9)
	if err != nil {
		t.Fatal(err)
	}
	if m["crashes"] <= 0 {
		t.Fatal("no crashes scheduled")
	}
	// With recovery shorter than the run, every victim returns: survivors
	// = everyone, and the whole group converges.
	if m["survivor_delivery_ratio"] != 1 {
		t.Fatalf("survivor_delivery_ratio = %v with recovering crashes, want 1", m["survivor_delivery_ratio"])
	}
	if m["delivery_ratio"] != 1 {
		t.Fatalf("delivery_ratio = %v: recovered members did not catch up", m["delivery_ratio"])
	}
}

// Crash and partition cells obey the same determinism contract as the
// rest of the matrix: byte-identical reports at any parallelism.
func TestRunSweepFaultCellsDeterministicAcrossParallelism(t *testing.T) {
	sw := exp.Sweep{
		Regions:    [][]int{{8}, {6, 6}},
		Losses:     []float64{0.2},
		Crashes:    []float64{2},
		Partitions: []time.Duration{500 * time.Millisecond},
		Policies:   []string{"two-phase"},
		Msgs:       4,
		Gap:        20 * time.Millisecond,
		Horizon:    2 * time.Second,
	}
	blob := func(parallel int) string {
		rep, err := RunSweep(exp.Options{Trials: 3, Parallel: parallel, BaseSeed: 42}, sw)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if blob(1) != blob(4) {
		t.Fatal("fault-cell sweep report differs across parallelism")
	}
}

func TestPartitionClasses(t *testing.T) {
	multi, err := topology.Chain(5, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	classes := PartitionClasses(multi)
	// Region-granular: regions 0,1 on the sender side, region 2 across.
	for _, n := range multi.Members(0) {
		if classes[n] != 0 {
			t.Fatalf("root-region node %d in class %d", n, classes[n])
		}
	}
	for _, n := range multi.Members(2) {
		if classes[n] != 1 {
			t.Fatalf("leaf-region node %d in class %d", n, classes[n])
		}
	}
	for r := 0; r < multi.NumRegions(); r++ {
		first := classes[multi.Members(topology.RegionID(r))[0]]
		for _, n := range multi.Members(topology.RegionID(r)) {
			if classes[n] != first {
				t.Fatalf("region %d straddles the cut", r)
			}
		}
	}

	single, err := topology.SingleRegion(9)
	if err != nil {
		t.Fatal(err)
	}
	classes = PartitionClasses(single)
	if classes[single.Sender()] != 0 {
		t.Fatal("sender not in class 0")
	}
	ones := 0
	for _, n := range single.Members(0) {
		if classes[n] == 1 {
			ones++
		}
	}
	if ones != 4 {
		t.Fatalf("single-region cut put %d of 9 members in class 1, want 4", ones)
	}
}

// Package runner builds complete simulated RRMP deployments and drives the
// experiments that regenerate every figure in the paper's evaluation (§4),
// plus the ablations listed in DESIGN.md.
package runner

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/rrmp"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Paper §4 network constants: 10 ms round-trip within a region, and a much
// larger inter-region latency.
const (
	IntraOneWay = 5 * time.Millisecond
	InterOneWay = 50 * time.Millisecond
)

// ClusterConfig describes a simulated deployment.
type ClusterConfig struct {
	// Topo is the group structure; required.
	Topo *topology.Topology
	// Params tunes the protocol (zero fields default to the paper's §4
	// values).
	Params rrmp.Params
	// Seed roots all randomness for the run.
	Seed uint64
	// Loss is the network loss model (nil = lossless).
	Loss netsim.LossModel
	// Latency overrides the default hierarchical model
	// (IntraOneWay/InterOneWay).
	Latency netsim.LatencyModel
	// Policy, if non-nil, builds a per-member buffering policy override.
	Policy func(view topology.View, params rrmp.Params) core.Policy
	// Hooks, if non-nil, builds per-member instrumentation callbacks.
	Hooks func(n topology.NodeID) rrmp.Hooks
	// Tracer observes all members (nil = none).
	Tracer trace.Tracer
	// BufferIndex selects every member's buffer index implementation
	// (tests run the legacy map side by side with the dense default).
	BufferIndex core.IndexKind
	// Shards > 1 runs the trial on the region-sharded parallel engine
	// (sim.Sharded): regions are packed into at most Shards contiguous
	// blocks and each block gets its own event loop. Aggregates stay
	// byte-identical to the single-loop engine at any shard count, but
	// every randomized model in play must be shard-safe: loss must be nil
	// or per-sender (netsim.HashLoss) — RunScenario gates this
	// automatically, direct Cluster users must themselves.
	Shards int
	// Lookahead bounds the sharded engine's conservative windows and must
	// not exceed the minimum cross-region packet latency. It defaults to
	// InterOneWay under the default hierarchical latency model; a custom
	// Latency with Shards > 1 must set it explicitly.
	Lookahead time.Duration
}

// Cluster is a fully wired simulated deployment.
type Cluster struct {
	// Engine drives the simulation; it is always set. Sim aliases it when
	// the cluster runs the serial engine (the default), so legacy callers
	// keep their richer *sim.Sim surface; it is nil on a sharded cluster.
	Engine  sim.Engine
	Sim     *sim.Sim
	Sharded *sim.Sharded // non-nil iff the cluster runs sharded
	Net     *netsim.Network
	Topo    *topology.Topology
	Members []*rrmp.Member // indexed by dense NodeID
	Sender  *rrmp.Sender
	All     []topology.NodeID
	Root    *rng.Source // harness-side randomness (bufferer choices etc.)
}

// NewCluster builds a deployment: one member per topology node, registered
// on a simulated network, with the topology's sender wrapped as the
// protocol sender.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("runner: ClusterConfig.Topo is required")
	}
	lat := cfg.Latency
	if lat == nil {
		lat = netsim.HierLatency{Topo: cfg.Topo, IntraOneWay: IntraOneWay, InterOneWay: InterOneWay}
	}

	var (
		eng       sim.Engine
		serial    *sim.Sim
		sharded   *sim.Sharded
		nodeShard []int32
	)
	if cfg.Shards > 1 {
		look := cfg.Lookahead
		if look <= 0 {
			if cfg.Latency != nil {
				return nil, fmt.Errorf("runner: Shards > 1 with a custom Latency requires an explicit Lookahead")
			}
			// Under the hierarchical model every cross-region packet pays
			// at least one InterOneWay hop, and shard blocks never split a
			// region, so InterOneWay bounds all cross-shard latency.
			look = InterOneWay
		}
		var eff int
		nodeShard, eff = cfg.Topo.NodeShards(cfg.Shards)
		if eff > 1 {
			var err error
			sharded, err = sim.NewSharded(eff, nodeShard, look)
			if err != nil {
				return nil, fmt.Errorf("runner: %w", err)
			}
			eng = sharded
		}
	}
	if eng == nil {
		serial = sim.New()
		eng = serial
	}

	net := netsim.New(eng, lat, cfg.Loss)
	if sharded != nil {
		net.EnableSharding(sharded, nodeShard, sharded.Shards())
	}
	root := rng.New(cfg.Seed)

	c := &Cluster{
		Engine:  eng,
		Sim:     serial,
		Sharded: sharded,
		Net:     net,
		Topo:    cfg.Topo,
		Members: make([]*rrmp.Member, cfg.Topo.NumNodes()),
		Root:    root.Split(clusterRootStreamLabel),
	}
	// Node IDs are assigned region by region in ascending order (see
	// topology.build), so the region-ordered member list is exactly the
	// dense range [0, NumNodes) — fill it directly instead of copying one
	// slice per region.
	total := cfg.Topo.NumNodes()
	c.All = make([]topology.NodeID, total)
	for i := range c.All {
		c.All[i] = topology.NodeID(i)
	}
	// Per-member wiring is the 1M-row setup hot path: transports and rng
	// streams come from two backing slices (zero allocations per member)
	// and members register themselves as packet receivers, so none of the
	// per-member closures, transport boxes, or split sources that used to
	// dominate construction survive at scale.
	transports := make([]rrmp.NetTransport, total)
	sources := make([]rng.Source, total)
	for _, n := range c.All {
		view, err := cfg.Topo.ViewOf(n)
		if err != nil {
			return nil, fmt.Errorf("runner: view of node %d: %w", n, err)
		}
		var policy core.Policy
		if cfg.Policy != nil {
			policy = cfg.Policy(view, cfg.Params)
		}
		var hooks rrmp.Hooks
		if cfg.Hooks != nil {
			hooks = cfg.Hooks(n)
		}
		sched := clock.Scheduler(eng)
		if sharded != nil {
			sched = sharded.Clock(nodeShard[n])
		}
		transports[n] = rrmp.NetTransport{Net: net, Self: n, Group: c.All}
		root.SplitInto(memberStreamBase+uint64(n), &sources[n])
		m := rrmp.NewMember(rrmp.Config{
			View:        view,
			Transport:   &transports[n],
			Sched:       sched,
			Rng:         &sources[n],
			Params:      cfg.Params,
			Policy:      policy,
			Tracer:      cfg.Tracer,
			Hooks:       hooks,
			BufferIndex: cfg.BufferIndex,
		})
		c.Members[n] = m
		net.RegisterReceiver(n, m)
	}
	c.Sender = rrmp.NewSender(c.Members[cfg.Topo.Sender()])
	return c, nil
}

// Member returns the member for a node id.
func (c *Cluster) Member(n topology.NodeID) *rrmp.Member { return c.Members[n] }

// CountReceived returns how many members have ever received id.
func (c *Cluster) CountReceived(id wire.MessageID) int {
	count := 0
	for _, m := range c.Members {
		if m.HasReceived(id) {
			count++
		}
	}
	return count
}

// CountBuffered returns how many members currently buffer id.
func (c *Cluster) CountBuffered(id wire.MessageID) int {
	count := 0
	for _, m := range c.Members {
		if m.Buffer().Has(id) {
			count++
		}
	}
	return count
}

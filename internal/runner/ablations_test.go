package runner

import (
	"testing"

	"repro/internal/topology"
	"time"
)

func TestAblationPolicies(t *testing.T) {
	rows, err := AblationPolicies(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]PolicyComparison{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	twoPhase := byName["two-phase C=6"]
	bufferAll := byName["buffer-all"]
	fixedShort := byName["fixed-hold 200ms"]

	// Buffer-all must pay far more buffer space than two-phase.
	if bufferAll.BufferIntegral < 5*twoPhase.BufferIntegral {
		t.Fatalf("buffer-all integral %.1f not ≫ two-phase %.1f",
			bufferAll.BufferIntegral, twoPhase.BufferIntegral)
	}
	// Everyone must deliver everything on this mild workload except
	// possibly the probabilistic policies losing a straggler.
	for name, r := range byName {
		if r.DeliveryRatio < 0.99 {
			t.Fatalf("%s delivery ratio %.4f", name, r.DeliveryRatio)
		}
	}
	// Fixed 200ms holds longer than two-phase's ~T+quiet period on a
	// mostly-received workload.
	if fixedShort.MeanBufferingMs <= twoPhase.MeanBufferingMs {
		t.Fatalf("fixed 200ms mean %.1f ms <= two-phase %.1f ms",
			fixedShort.MeanBufferingMs, twoPhase.MeanBufferingMs)
	}
}

func TestAblationLoadBalance(t *testing.T) {
	rows, err := AblationLoadBalance(2)
	if err != nil {
		t.Fatal(err)
	}
	// Flat and two-level topologies, RRMP vs tree on each.
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		rrmpRow, treeRow := rows[i], rows[i+1]
		if rrmpRow.Topology != treeRow.Topology {
			t.Fatalf("row pairing broken: %q vs %q", rrmpRow.Topology, treeRow.Topology)
		}
		// The byte-time integrals must be live, not the dead constant the
		// message-second metric used to alias.
		if rrmpRow.MeanIntegral <= 0 || treeRow.MeanIntegral <= 0 {
			t.Fatalf("%s: zero byte-time integrals: rrmp %.1f tree %.1f",
				rrmpRow.Topology, rrmpRow.MeanIntegral, treeRow.MeanIntegral)
		}
		// The tree server concentrates the load: imbalance must dwarf
		// RRMP's on every topology.
		if treeRow.Imbalance < 5*rrmpRow.Imbalance {
			t.Fatalf("%s: tree imbalance %.1f not ≫ rrmp %.1f",
				treeRow.Topology, treeRow.Imbalance, rrmpRow.Imbalance)
		}
		// The paper's §1 claim, per region: a repair server bears
		// (essentially) the entire regional burden, while no RRMP member
		// carries more than a small share of its region's.
		if treeRow.MaxShare < 0.9 {
			t.Fatalf("%s: tree server share %.2f, want ~1.0", treeRow.Topology, treeRow.MaxShare)
		}
		if rrmpRow.MaxShare > 0.3 {
			t.Fatalf("%s: rrmp max member share %.2f, want well spread", rrmpRow.Topology, rrmpRow.MaxShare)
		}
	}
}

// TestAblationLoadBalanceSized drives the payload-size model through A2:
// a lognormal 1 KB payload must scale the byte-time integrals roughly
// with the mean size, and the qualitative claim must survive variable
// payloads.
func TestAblationLoadBalanceSized(t *testing.T) {
	small, err := AblationLoadBalanceSized(256, "", 2)
	if err != nil {
		t.Fatal(err)
	}
	big, err := AblationLoadBalanceSized(1024, "lognormal", 2)
	if err != nil {
		t.Fatal(err)
	}
	if big[1].MeanIntegral < 2*small[1].MeanIntegral {
		t.Fatalf("1 KB lognormal tree integral %.0f not ≫ 256 B fixed %.0f",
			big[1].MeanIntegral, small[1].MeanIntegral)
	}
	if big[1].MaxShare < 0.9 || big[0].MaxShare > 0.3 {
		t.Fatalf("variable payloads broke the load-balance claim: rrmp %.2f tree %.2f",
			big[0].MaxShare, big[1].MaxShare)
	}
}

func TestAblationSearchImplosion(t *testing.T) {
	rows, err := AblationSearchImplosion(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]map[int]float64{}
	for _, r := range rows {
		if byKey[r.Mode] == nil {
			byKey[r.Mode] = map[int]float64{}
		}
		byKey[r.Mode][r.Holders] = r.RepliesPerEpisode
	}
	// Random walk stays near 1 reply regardless of holder count.
	for h, replies := range byKey["random-walk"] {
		if replies > 3 {
			t.Fatalf("random walk sent %.1f replies with %d holders", replies, h)
		}
	}
	// Multicast query implodes as holders grow, and is far worse at 90
	// holders than the random walk (§3.3).
	if byKey["multicast-query"][90] < 3*byKey["random-walk"][90] {
		t.Fatalf("multicast query %.1f replies not ≫ random walk %.1f at 90 holders",
			byKey["multicast-query"][90], byKey["random-walk"][90])
	}
	if byKey["multicast-query"][90] <= byKey["multicast-query"][10] {
		t.Fatalf("multicast query replies did not grow with holders: %v", byKey["multicast-query"])
	}
}

func TestAblationChurn(t *testing.T) {
	rows, err := AblationChurn(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	var graceful, crash ChurnResult
	for _, r := range rows {
		if r.Mode == "graceful-handoff" {
			graceful = r
		} else {
			crash = r
		}
	}
	if !graceful.Recovered {
		t.Fatal("graceful handoff did not preserve recoverability")
	}
	if graceful.Handoffs == 0 {
		t.Fatal("no handoffs recorded on graceful leave")
	}
	if crash.Recovered {
		t.Fatal("crash of all bufferers should have made the loss unrecoverable")
	}
	if crash.Handoffs != 0 {
		t.Fatal("crashed members performed handoffs")
	}
}

func TestAblationLambda(t *testing.T) {
	rows, err := AblationLambda([]float64{0.5, 2, 8}, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// More aggressive λ sends more remote requests...
	if !(rows[0].RemoteRequests < rows[2].RemoteRequests) {
		t.Fatalf("remote requests not increasing in λ: %+v", rows)
	}
	// ...and repairs the region at least as fast (allow modest noise).
	if rows[2].RecoveryMs > rows[0].RecoveryMs*1.5 {
		t.Fatalf("λ=8 recovery %.1f ms slower than λ=0.5 %.1f ms", rows[2].RecoveryMs, rows[0].RecoveryMs)
	}
}

func TestAblationStabilityTraffic(t *testing.T) {
	rows, err := AblationStabilityTraffic(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	rrmpRow, stabRow := rows[0], rows[1]
	if rrmpRow.DigestBytes != 0 {
		t.Fatalf("RRMP generated %d digest bytes; §3.1 promises zero", rrmpRow.DigestBytes)
	}
	if stabRow.DigestBytes == 0 {
		t.Fatal("stability scheme generated no digest traffic")
	}
	if stabRow.ControlBytes <= rrmpRow.ControlBytes {
		t.Fatalf("stability control bytes %d not > rrmp %d", stabRow.ControlBytes, rrmpRow.ControlBytes)
	}
	for _, r := range rows {
		if r.DeliveryRatio < 0.99 {
			t.Fatalf("%s delivery ratio %.4f", r.Scheme, r.DeliveryRatio)
		}
	}
	// Both schemes must trim to a finite integral; which is smaller depends
	// on RRMP's long-term TTL versus the digest interval, so only
	// positivity is asserted here (EXPERIMENTS.md reports both numbers).
	if stabRow.BufferIntegral <= 0 || rrmpRow.BufferIntegral <= 0 {
		t.Fatalf("degenerate integrals: %+v", rows)
	}
}

func TestTreeClusterDelivery(t *testing.T) {
	topo, err := topology.Chain(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewTreeCluster(TreeClusterConfig{Topo: topo, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	c.Sender.Publish([]byte("x"))
	c.Sim.RunUntil(time.Second)
	if got := c.CountReceived(1); got != 10 {
		t.Fatalf("tree cluster delivered %d/10", got)
	}
}

func TestTreeClusterRequiresTopo(t *testing.T) {
	if _, err := NewTreeCluster(TreeClusterConfig{}); err == nil {
		t.Fatal("NewTreeCluster without topology succeeded")
	}
}

func TestRunBoth(t *testing.T) {
	topo, err := topology.SingleRegion(10)
	if err != nil {
		t.Fatal(err)
	}
	c, tree, err := RunBoth(topo, 5, 10*time.Millisecond, 8, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	id := c.Sender.Member().ID()
	_ = id
	if c.Sender.Seq() != 5 || tree.Sender.Seq() != 5 {
		t.Fatal("workloads differ between protocols")
	}
}

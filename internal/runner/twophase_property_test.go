package runner

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/rng"
	"repro/internal/rrmp"
	"repro/internal/topology"
	"repro/internal/wire"
)

// twoPhaseSnapshot is the observable outcome of one invariant run, used
// both for the invariant checks and for the dense-vs-legacy index
// comparison.
type twoPhaseSnapshot struct {
	longTerm  map[topology.NodeID]map[wire.MessageID]bool
	received  map[topology.NodeID]int
	handoffs  map[topology.NodeID]int64
	delivered int64
}

// runTwoPhaseInvariantTrial builds a hash-elect cluster over topo, runs a
// lossy workload (plus optional graceful leaves) past the idle threshold,
// and returns the long-term holder snapshot taken before the TTL plus the
// cluster for follow-up checks.
func runTwoPhaseInvariantTrial(t *testing.T, topo *topology.Topology, seed uint64,
	kind core.IndexKind, churn float64) (*Cluster, []wire.MessageID, twoPhaseSnapshot) {
	t.Helper()

	params := rrmp.DefaultParams()
	params.C = 3
	params.LongTermTTL = 3 * time.Second

	c, err := NewCluster(ClusterConfig{
		Topo:   topo,
		Params: params,
		Seed:   seed,
		Loss:   netsimBernoulli{p: 0.05, rng: rng.New(seed).Split(lossStreamLabel)},
		Policy: func(view topology.View, p rrmp.Params) core.Policy {
			region := append([]topology.NodeID{view.Self}, view.Peers()...)
			return core.NewHashElect(p.IdleThreshold, int(p.C), view.Self, region, p.LongTermTTL)
		},
		BufferIndex: kind,
	})
	if err != nil {
		t.Fatal(err)
	}

	c.Sender.StartSessions()
	const msgs = 6
	ids := make([]wire.MessageID, 0, msgs)
	for i := 0; i < msgs; i++ {
		c.Sim.At(time.Duration(i)*50*time.Millisecond, func() {
			ids = append(ids, c.Sender.Publish(make([]byte, 64)))
		})
	}
	if churn > 0 {
		var candidates []topology.NodeID
		for _, n := range c.All {
			if n != topo.Sender() {
				candidates = append(candidates, n)
			}
		}
		ScheduleChurn(rng.New(seed).Split(ChurnStreamLabel), churn, 1200*time.Millisecond,
			candidates, func(at time.Duration, victim topology.NodeID) {
				c.Sim.At(at, func() { c.Members[victim].Leave() })
			})
	}

	// Run well past the idle threshold (40 ms), stop the session stream,
	// and drain, so every surviving copy is a long-term election — but stay
	// far below the 3 s TTL.
	c.Sim.RunUntil(1500 * time.Millisecond)
	c.Sender.StopSessions()
	c.Sim.RunUntil(1800 * time.Millisecond)

	snap := twoPhaseSnapshot{
		longTerm: make(map[topology.NodeID]map[wire.MessageID]bool),
		received: make(map[topology.NodeID]int),
		handoffs: make(map[topology.NodeID]int64),
	}
	for _, n := range c.All {
		m := c.Members[n]
		snap.handoffs[n] = m.Metrics().HandoffsRecv.Value()
		snap.delivered += m.Metrics().Delivered.Value()
		holders := make(map[wire.MessageID]bool)
		for _, id := range ids {
			if m.HasReceived(id) {
				snap.received[n]++
			}
			if e, ok := m.Buffer().Get(id); ok {
				if e.State != core.StateLongTerm {
					t.Fatalf("node %d holds %v short-term %v after the idle horizon", n, id, e.State)
				}
				holders[id] = true
			}
		}
		snap.longTerm[n] = holders
	}
	return c, ids, snap
}

// netsimBernoulli is a minimal local Bernoulli DATA-loss model so the test
// controls its own rng stream (mirrors RunScenario's construction).
type netsimBernoulli struct {
	p   float64
	rng *rng.Source
}

func (b netsimBernoulli) Drop(_, _ topology.NodeID, t wire.Type) bool {
	if t != wire.TypeData {
		return false
	}
	return b.rng.Bernoulli(b.p)
}

// TestTwoPhaseInvariantHashElected is the §3 invariant property test:
// across seeds and topologies, once a message has gone idle, long-term
// copies exist only at the hash-elected bufferer set (plus members that
// accepted an in-flight handoff from a leaver), every region retains at
// least one copy until the long-term TTL, and after the TTL quiesced
// copies are gone. The whole property runs against both the dense scale
// index and the PR 2 legacy map index, and their snapshots must agree
// exactly — the rewrite must be invisible at the protocol level.
func TestTwoPhaseInvariantHashElected(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed invariant sweep; skipped with -short")
	}
	topologies := []struct {
		name  string
		build func() (*topology.Topology, error)
	}{
		{"single20", func() (*topology.Topology, error) { return topology.SingleRegion(20) }},
		{"chain12+12", func() (*topology.Topology, error) { return topology.Chain(12, 12) }},
		{"tree-b2d3", func() (*topology.Topology, error) { return topology.BalancedTree(2, 3, 42) }},
	}
	for _, tc := range topologies {
		for seed := uint64(1); seed <= 4; seed++ {
			for _, churn := range []float64{0, 2} {
				name := fmt.Sprintf("%s/seed=%d/churn=%v", tc.name, seed, churn)
				t.Run(name, func(t *testing.T) {
					topo, err := tc.build()
					if err != nil {
						t.Fatal(err)
					}
					c, ids, dense := runTwoPhaseInvariantTrial(t, topo, seed, core.IndexDense, churn)
					checkTwoPhaseInvariant(t, c, topo, ids, dense, churn)

					topo2, err := tc.build()
					if err != nil {
						t.Fatal(err)
					}
					_, _, legacy := runTwoPhaseInvariantTrial(t, topo2, seed, core.IndexLegacyMap, churn)
					compareSnapshots(t, dense, legacy)
				})
			}
		}
	}
}

func checkTwoPhaseInvariant(t *testing.T, c *Cluster, topo *topology.Topology,
	ids []wire.MessageID, snap twoPhaseSnapshot, churn float64) {
	t.Helper()

	// Elected sets are computable by anyone from the region membership —
	// that is the point of the deterministic policy (§3.4).
	elected := func(r topology.RegionID, id wire.MessageID) map[topology.NodeID]bool {
		members := topo.Members(r)
		p := core.NewHashElect(time.Millisecond, 3, members[0], members, 0)
		set := make(map[topology.NodeID]bool)
		for _, b := range p.Bufferers(id) {
			set[b] = true
		}
		return set
	}

	for _, n := range c.All {
		m := c.Members[n]
		r := topo.RegionOf(n)
		for id := range snap.longTerm[n] {
			if !elected(r, id)[n] && snap.handoffs[n] == 0 {
				t.Fatalf("node %d (region %d) holds a long-term copy of %v but is neither hash-elected nor a handoff recipient", n, r, id)
			}
		}
		_ = m
	}

	// Retention: every region keeps at least one copy of every message
	// until the TTL (leavers hand off inside the region, so churn must not
	// void this), provided the region still has live members.
	for _, id := range ids {
		for r := 0; r < topo.NumRegions(); r++ {
			live := 0
			holders := 0
			for _, n := range topo.Members(topology.RegionID(r)) {
				if !c.Members[n].Left() {
					live++
				}
				if snap.longTerm[n][id] {
					holders++
				}
			}
			if live > 0 && holders == 0 {
				t.Fatalf("region %d retains no copy of %v before the TTL (%d live members)", r, id, live)
			}
		}
	}

	// After the TTL, quiesced long-term copies age out (§3.2: "eventually
	// even a long-term bufferer may decide to discard").
	c.Sim.RunUntil(6 * time.Second)
	for _, n := range c.All {
		if got := c.Members[n].Buffer().LongTermCount(); got != 0 {
			t.Fatalf("node %d still holds %d long-term entries after the TTL", n, got)
		}
	}
}

// compareSnapshots asserts the dense and legacy buffer indexes produced
// the identical observable outcome.
func compareSnapshots(t *testing.T, dense, legacy twoPhaseSnapshot) {
	t.Helper()
	if dense.delivered != legacy.delivered {
		t.Fatalf("delivered diverged: dense %d, legacy %d", dense.delivered, legacy.delivered)
	}
	for n, holders := range dense.longTerm {
		lh := legacy.longTerm[n]
		if len(holders) != len(lh) {
			t.Fatalf("node %d long-term set diverged: dense %v, legacy %v", n, holders, lh)
		}
		for id := range holders {
			if !lh[id] {
				t.Fatalf("node %d holds %v under dense but not legacy index", n, id)
			}
		}
		if dense.received[n] != legacy.received[n] {
			t.Fatalf("node %d received-count diverged: dense %d, legacy %d", n, dense.received[n], legacy.received[n])
		}
		if dense.handoffs[n] != legacy.handoffs[n] {
			t.Fatalf("node %d handoff-count diverged: dense %d, legacy %d", n, dense.handoffs[n], legacy.handoffs[n])
		}
	}
}

// TestScaleTrialUnder10s is the acceptance bound the scale record tracks:
// every row of the standing scale ladder — the legacy 1k cells, the 10k
// BENCH_scale XL cell, and the 100k-member depth-3 XL cell on the sharded
// engine — must complete one trial inside 10 s of wall clock. The 1k rows
// keep the full 20-message / 5 s workload; the XL rows use ScaleSweepXL's
// trimmed burst probe (10 messages / 2 s), the same cells BENCH_scale.json
// records. Under -short only the 10k row runs (the CI race job's macro
// check); RRMP_SHARDS overrides the XL shard widths.
func TestScaleTrialUnder10s(t *testing.T) {
	cases := []struct {
		name    string
		sc      exp.Scenario
		inShort bool
	}{
		{name: "1k-depth2", sc: exp.Scenario{
			Tree: &exp.TreeShape{Branch: 4, Levels: 3, Members: 1000},
			Loss: 0.05, Churn: 1, Policy: "two-phase",
			Msgs: 20, Gap: 20 * time.Millisecond, Horizon: 5 * time.Second,
		}},
		{name: "1k-depth3", sc: exp.Scenario{
			Tree: &exp.TreeShape{Branch: 4, Levels: 4, Members: 1000},
			Loss: 0.05, Churn: 1, Policy: "two-phase",
			Msgs: 20, Gap: 20 * time.Millisecond, Horizon: 5 * time.Second,
		}},
		// The 10k XL row. Serial on purpose unless RRMP_SHARDS says
		// otherwise: at this size one heap still beats the barrier overhead
		// (1.5 s serial vs 4 s at 8 shards on the reference 1-core host).
		{name: "10k-depth3", inShort: true, sc: exp.Scenario{
			Tree: &exp.TreeShape{Branch: 4, Levels: 4, Members: 10000},
			Loss: 0.05, LossMode: "hash", Churn: 1, Policy: "two-phase",
			Msgs: 10, Gap: 20 * time.Millisecond, Horizon: 2 * time.Second,
			Shards: envShards(1),
		}},
		// The 100k XL row needs the sharded engine to make the bound: the
		// ~4.2M-event trial runs 6.6 s at 32 shards vs ~27 s serial on the
		// reference host — many small per-lane heaps beat one giant heap.
		{name: "100k-depth3", sc: exp.Scenario{
			Tree: &exp.TreeShape{Branch: 8, Levels: 4, Members: 100000},
			Loss: 0.05, LossMode: "hash", Churn: 1, Policy: "two-phase",
			Msgs: 10, Gap: 20 * time.Millisecond, Horizon: 2 * time.Second,
			Shards: envShards(32),
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if testing.Short() && !tc.inShort {
				t.Skip("macro trial; skipped with -short")
			}
			start := time.Now()
			out, err := RunScenario(tc.sc, 1)
			if err != nil {
				t.Fatal(err)
			}
			wall := time.Since(start)
			if wall > 10*time.Second {
				t.Fatalf("trial took %v, want < 10s", wall)
			}
			if out["delivery_ratio"] < 0.99 {
				t.Fatalf("delivery ratio %.3f", out["delivery_ratio"])
			}
			t.Logf("%v wall, %.0f events, %.0f events/sec",
				wall, out["events"], out["events"]/wall.Seconds())
		})
	}
}

// TestScaleTrial1M is the acceptance bound for the final rung of the
// scale ladder: the 1M-member hash-burst row (ScaleSweep1M's only cell)
// must finish one trial inside 10 minutes of wall clock with delivery
// intact (~6 min at 32 shards on the 1-core reference host). Even
// sharded, one trial costs minutes, so the test only runs when
// RRMP_SCALE_1M=1 — the BENCH_scale.json regeneration exercises the
// same cell for real. RRMP_SHARDS overrides the shard width.
func TestScaleTrial1M(t *testing.T) {
	if os.Getenv("RRMP_SCALE_1M") == "" {
		t.Skip("set RRMP_SCALE_1M=1 to run the 1M-member macro trial")
	}
	sc := exp.ScaleSweep1M().Expand()[0]
	sc.Shards = envShards(32)
	start := time.Now()
	out, err := RunScenario(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	if wall > 10*time.Minute {
		t.Fatalf("trial took %v, want < 10m", wall)
	}
	if out["delivery_ratio"] < 0.99 {
		t.Fatalf("delivery ratio %.3f", out["delivery_ratio"])
	}
	t.Logf("%v wall, %.0f events, %.0f events/sec",
		wall, out["events"], out["events"]/wall.Seconds())
}

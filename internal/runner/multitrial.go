package runner

import (
	"repro/internal/exp"
)

// Multi-trial variants of the ablation drivers: the same experiments run
// across exp's seeded worker pool, with every reported column aggregated
// into mean / stddev / 95% CI instead of a single draw. Each trial writes
// its rows into a slot owned by its trial index, so aggregation order (and
// the resulting floats) is independent of worker scheduling.

// column collects row r's column value across trials.
func column[T any](rowsByTrial [][]T, r int, get func(T) float64) []float64 {
	out := make([]float64, 0, len(rowsByTrial))
	for _, rows := range rowsByTrial {
		out = append(out, get(rows[r]))
	}
	return out
}

// PolicySummary is one policy's A1 columns aggregated across trials.
type PolicySummary struct {
	Policy          string            `json:"policy"`
	DeliveryRatio   exp.MetricSummary `json:"delivery_ratio"`
	BufferIntegral  exp.MetricSummary `json:"buffer_integral"`
	PeakPerMember   exp.MetricSummary `json:"peak_per_member"`
	MeanBufferingMs exp.MetricSummary `json:"mean_buffering_ms"`
}

// AblationPoliciesTrials runs A1 (buffering-policy cost vs reliability)
// o.Trials times with independent seeds and aggregates each policy row.
func AblationPoliciesTrials(o exp.Options) ([]PolicySummary, error) {
	rowsByTrial := make([][]PolicyComparison, max(o.Trials, 1))
	_, err := exp.RunTrials(o, func(trial int, seed uint64) (map[string]float64, error) {
		rows, err := AblationPolicies(seed)
		if err != nil {
			return nil, err
		}
		rowsByTrial[trial] = rows
		return nil, nil
	})
	if err != nil {
		return nil, err
	}

	out := make([]PolicySummary, 0, len(rowsByTrial[0]))
	for r, row := range rowsByTrial[0] {
		out = append(out, PolicySummary{
			Policy: row.Policy,
			DeliveryRatio: exp.Summarize(MKDeliveryRatio,
				column(rowsByTrial, r, func(c PolicyComparison) float64 { return c.DeliveryRatio })),
			BufferIntegral: exp.Summarize(MKBufferIntegral,
				column(rowsByTrial, r, func(c PolicyComparison) float64 { return c.BufferIntegral })),
			PeakPerMember: exp.Summarize(MKPeakPerMember,
				column(rowsByTrial, r, func(c PolicyComparison) float64 { return float64(c.PeakPerMember) })),
			MeanBufferingMs: exp.Summarize(MKMeanBufferingMs,
				column(rowsByTrial, r, func(c PolicyComparison) float64 { return c.MeanBufferingMs })),
		})
	}
	return out, nil
}

// LambdaSummary is one λ point of A5 aggregated across trials.
type LambdaSummary struct {
	Lambda         float64           `json:"lambda"`
	RemoteRequests exp.MetricSummary `json:"remote_requests"`
	RecoveryMs     exp.MetricSummary `json:"recovery_ms"`
}

// AblationLambdaTrials runs A5 (the λ remote-recovery tradeoff) o.Trials
// times with independent seeds and aggregates each λ point. runs is the
// inner per-point repetition count AblationLambda already averages over.
func AblationLambdaTrials(lambdas []float64, runs int, o exp.Options) ([]LambdaSummary, error) {
	rowsByTrial := make([][]LambdaPoint, max(o.Trials, 1))
	_, err := exp.RunTrials(o, func(trial int, seed uint64) (map[string]float64, error) {
		rows, err := AblationLambda(lambdas, runs, seed)
		if err != nil {
			return nil, err
		}
		rowsByTrial[trial] = rows
		return nil, nil
	})
	if err != nil {
		return nil, err
	}

	out := make([]LambdaSummary, 0, len(rowsByTrial[0]))
	for r, row := range rowsByTrial[0] {
		out = append(out, LambdaSummary{
			Lambda: row.Lambda,
			RemoteRequests: exp.Summarize(MKRemoteRequests,
				column(rowsByTrial, r, func(p LambdaPoint) float64 { return p.RemoteRequests })),
			RecoveryMs: exp.Summarize(MKRecoveryMs,
				column(rowsByTrial, r, func(p LambdaPoint) float64 { return p.RecoveryMs })),
		})
	}
	return out, nil
}

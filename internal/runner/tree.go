package runner

import (
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/rmtp"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// TreeClusterConfig describes an RMTP-baseline deployment.
type TreeClusterConfig struct {
	// Topo is the group structure; the first member of each region becomes
	// its repair server, and the root region's server is the sender.
	Topo *topology.Topology
	// Params tunes the baseline; zero fields default.
	Params rmtp.Params
	// Seed roots the randomness.
	Seed uint64
	// Loss is the network loss model (nil = lossless).
	Loss netsim.LossModel
}

// TreeCluster is a fully wired tree-protocol deployment.
type TreeCluster struct {
	Sim    *sim.Sim
	Net    *netsim.Network
	Topo   *topology.Topology
	Nodes  []*rmtp.Node // indexed by dense NodeID
	Sender *rmtp.Sender
	All    []topology.NodeID
}

// NewTreeCluster builds the RMTP baseline deployment used by ablation A2
// and the comparison benches.
func NewTreeCluster(cfg TreeClusterConfig) (*TreeCluster, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("runner: TreeClusterConfig.Topo is required")
	}
	topo := cfg.Topo
	s := sim.New()
	lat := netsim.HierLatency{Topo: topo, IntraOneWay: IntraOneWay, InterOneWay: InterOneWay}
	net := netsim.New(s, lat, cfg.Loss)
	root := rng.New(cfg.Seed)

	c := &TreeCluster{Sim: s, Net: net, Topo: topo, Nodes: make([]*rmtp.Node, topo.NumNodes())}
	serverOf := func(r topology.RegionID) topology.NodeID { return topo.MemberAt(r, 0) }
	childServers := make(map[topology.RegionID][]topology.NodeID)
	for r := 0; r < topo.NumRegions(); r++ {
		if p := topo.Parent(topology.RegionID(r)); p != topology.NoRegion {
			childServers[p] = append(childServers[p], serverOf(topology.RegionID(r)))
		}
	}
	for r := 0; r < topo.NumRegions(); r++ {
		rid := topology.RegionID(r)
		parentServer := topology.NoNode
		if p := topo.Parent(rid); p != topology.NoRegion {
			parentServer = serverOf(p)
		}
		for _, node := range topo.Members(rid) {
			node := node
			n := rmtp.New(rmtp.Config{
				Self:          node,
				Server:        serverOf(rid),
				ParentServer:  parentServer,
				RegionMembers: topo.Members(rid),
				ChildServers:  childServers[rid],
				Send:          func(to topology.NodeID, msg wire.Message) { net.Unicast(node, to, msg) },
				Sched:         s,
				Rng:           root.Split(uint64(node) + 1),
				Params:        cfg.Params,
			})
			c.Nodes[node] = n
			c.All = append(c.All, node)
			net.Register(node, func(p netsim.Packet) { n.Receive(p.From, p.Msg) })
		}
	}
	rootNode := c.Nodes[serverOf(0)]
	c.Sender = rmtp.NewSender(rootNode, func(msg wire.Message) {
		net.Multicast(topo.Sender(), c.All, msg)
	})
	return c, nil
}

// CountReceived returns how many nodes have received seq.
func (c *TreeCluster) CountReceived(seq uint64) int {
	count := 0
	for _, n := range c.Nodes {
		if n.HasReceived(seq) {
			count++
		}
	}
	return count
}

// RunBoth runs the same publish workload under RRMP and the tree baseline
// and returns both clusters quiesced at the horizon; comparison benches and
// examples build on it.
func RunBoth(topo *topology.Topology, msgs int, gap time.Duration, seed uint64, horizon time.Duration) (*Cluster, *TreeCluster, error) {
	c, err := NewCluster(ClusterConfig{Topo: topo, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < msgs; i++ {
		i := i
		c.Sim.At(time.Duration(i)*gap, func() { c.Sender.Publish(make([]byte, 64)) })
	}
	c.Sim.RunUntil(horizon)

	t, err := NewTreeCluster(TreeClusterConfig{Topo: topo, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	for _, n := range t.Nodes {
		n.StartAcks()
	}
	for i := 0; i < msgs; i++ {
		i := i
		t.Sim.At(time.Duration(i)*gap, func() { t.Sender.Publish(make([]byte, 64)) })
	}
	t.Sim.RunUntil(horizon)
	return c, t, nil
}

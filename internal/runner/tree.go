package runner

import (
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/rmtp"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// TreeClusterConfig describes an RMTP-baseline deployment.
type TreeClusterConfig struct {
	// Topo is the group structure; the first member of each region becomes
	// its repair server, and the root region's server is the sender.
	Topo *topology.Topology
	// Params tunes the baseline; zero fields default.
	Params rmtp.Params
	// Seed roots the randomness.
	Seed uint64
	// Loss is the network loss model (nil = lossless).
	Loss netsim.LossModel
}

// TreeCluster is a fully wired tree-protocol deployment.
type TreeCluster struct {
	Sim    *sim.Sim
	Net    *netsim.Network
	Topo   *topology.Topology
	Nodes  []*rmtp.Node // indexed by dense NodeID
	Sender *rmtp.Sender
	All    []topology.NodeID
}

// ServerOf returns the repair server of a node's region (the region's
// first member, by construction).
func (c *TreeCluster) ServerOf(n topology.NodeID) topology.NodeID {
	return c.Topo.MemberAt(c.Topo.RegionOf(n), 0)
}

// Leave departs a node gracefully: its timers stop and its ACK floor is
// deregistered upstream (at its region server, or — for a repair server —
// at the parent server) so the frozen floor cannot block trimming forever.
// RMTP has no server-migration protocol, so a departing repair server
// still orphans its region; that fragility is part of what the protocol
// comparison measures.
func (c *TreeCluster) Leave(victim topology.NodeID) {
	node := c.Nodes[victim]
	if node.Left() || node.Crashed() {
		return
	}
	node.Leave()
	server := c.ServerOf(victim)
	if server == victim {
		// A departing server deregisters from its parent, if any.
		if p := c.Topo.Parent(c.Topo.RegionOf(victim)); p != topology.NoRegion {
			c.Nodes[c.Topo.MemberAt(p, 0)].ForgetAcker(victim)
		}
		return
	}
	c.Nodes[server].ForgetAcker(victim)
}

// Crash fails a node ungracefully and cuts its network; its ACK floor
// stays frozen at its server (a crashed member, unlike a leaver, cannot
// deregister), so the server's buffer grows until recovery or the horizon.
func (c *TreeCluster) Crash(victim topology.NodeID) {
	c.Nodes[victim].Crash()
	c.Net.SetDown(victim, true)
}

// Recover reconnects a crashed node and restarts its protocol loops; see
// rmtp.Node.Recover.
func (c *TreeCluster) Recover(victim topology.NodeID) {
	c.Net.SetDown(victim, false)
	c.Nodes[victim].Recover()
}

// NewTreeCluster builds the RMTP baseline deployment used by ablation A2
// and the comparison benches.
func NewTreeCluster(cfg TreeClusterConfig) (*TreeCluster, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("runner: TreeClusterConfig.Topo is required")
	}
	topo := cfg.Topo
	s := sim.New()
	lat := netsim.HierLatency{Topo: topo, IntraOneWay: IntraOneWay, InterOneWay: InterOneWay}
	net := netsim.New(s, lat, cfg.Loss)
	root := rng.New(cfg.Seed)

	c := &TreeCluster{Sim: s, Net: net, Topo: topo, Nodes: make([]*rmtp.Node, topo.NumNodes())}
	serverOf := func(r topology.RegionID) topology.NodeID { return topo.MemberAt(r, 0) }
	childServers := make(map[topology.RegionID][]topology.NodeID)
	for r := 0; r < topo.NumRegions(); r++ {
		if p := topo.Parent(topology.RegionID(r)); p != topology.NoRegion {
			childServers[p] = append(childServers[p], serverOf(topology.RegionID(r)))
		}
	}
	for r := 0; r < topo.NumRegions(); r++ {
		rid := topology.RegionID(r)
		parentServer := topology.NoNode
		if p := topo.Parent(rid); p != topology.NoRegion {
			parentServer = serverOf(p)
		}
		for _, node := range topo.Members(rid) {
			node := node
			n := rmtp.New(rmtp.Config{
				Self:          node,
				Server:        serverOf(rid),
				ParentServer:  parentServer,
				RegionMembers: topo.Members(rid),
				ChildServers:  childServers[rid],
				Send:          func(to topology.NodeID, msg wire.Message) { net.Unicast(node, to, msg) },
				Sched:         s,
				Rng:           root.Split(memberStreamBase + uint64(node)),
				Params:        cfg.Params,
			})
			c.Nodes[node] = n
			c.All = append(c.All, node)
			net.Register(node, func(p netsim.Packet) { n.Receive(p.From, p.Msg) })
		}
	}
	rootNode := c.Nodes[serverOf(0)]
	c.Sender = rmtp.NewSender(rootNode, func(msg wire.Message) {
		net.Multicast(topo.Sender(), c.All, msg)
	})
	return c, nil
}

// CountReceived returns how many nodes have received seq.
func (c *TreeCluster) CountReceived(seq uint64) int {
	count := 0
	for _, n := range c.Nodes {
		if n.HasReceived(seq) {
			count++
		}
	}
	return count
}

// RunBoth runs the same publish workload under RRMP and the tree baseline
// and returns both clusters quiesced at the horizon; comparison benches and
// examples build on it.
func RunBoth(topo *topology.Topology, msgs int, gap time.Duration, seed uint64, horizon time.Duration) (*Cluster, *TreeCluster, error) {
	// One backing buffer serves every publish, as in the sweep runner: the
	// engine never mutates payloads, so both protocols alias it safely.
	payload := make([]byte, 64)
	c, err := NewCluster(ClusterConfig{Topo: topo, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < msgs; i++ {
		c.Sim.At(time.Duration(i)*gap, func() { c.Sender.Publish(payload) })
	}
	c.Sim.RunUntil(horizon)

	t, err := NewTreeCluster(TreeClusterConfig{Topo: topo, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	for _, n := range t.Nodes {
		n.StartAcks()
	}
	for i := 0; i < msgs; i++ {
		t.Sim.At(time.Duration(i)*gap, func() { t.Sender.Publish(payload) })
	}
	t.Sim.RunUntil(horizon)
	return c, t, nil
}

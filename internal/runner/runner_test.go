package runner

import (
	"math"
	"testing"
	"time"

	"repro/internal/analytic"
	"repro/internal/rrmp"
	"repro/internal/topology"
	"repro/internal/wire"
)

func TestClusterEndToEnd(t *testing.T) {
	topo, err := topology.Chain(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	params := rrmp.DefaultParams()
	params.C = 20 // guarantee recoverability for the assertion
	c, err := NewCluster(ClusterConfig{Topo: topo, Params: params, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Sender.StartSessions()
	id := c.Sender.Publish([]byte("hello"))
	c.Sim.RunUntil(2 * time.Second)
	if got := c.CountReceived(id); got != 20 {
		t.Fatalf("received %d/20", got)
	}
}

func TestClusterRequiresTopo(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{}); err == nil {
		t.Fatal("NewCluster without topology succeeded")
	}
}

func TestFigure3SimulationMatchesAnalytic(t *testing.T) {
	series := Figure3([]float64{6}, 100, 20000, 3)
	if len(series) != 2 {
		t.Fatalf("series count %d", len(series))
	}
	ana, mc := series[0], series[1]
	for i := range ana.X {
		if math.Abs(ana.Y[i]-mc.Y[i]) > 1.5 { // percent points
			t.Fatalf("k=%v: analytic %.2f%% vs simulated %.2f%%", ana.X[i], ana.Y[i], mc.Y[i])
		}
	}
	// The analytic mode of Poisson(6) sits at k=5/6 with ~16% mass.
	if ana.Y[6] < 13 || ana.Y[6] > 18 {
		t.Fatalf("analytic P[k=6] = %.2f%%", ana.Y[6])
	}
}

func TestFigure4HeadlineNumber(t *testing.T) {
	series := Figure4([]float64{1, 2, 3, 4, 5, 6}, 100, 50000, 4)
	ana, mc := series[0], series[1]
	// Paper: "When C = 6 ... the probability is only 0.25%."
	last := len(ana.X) - 1
	if math.Abs(ana.Y[last]-0.248) > 0.02 {
		t.Fatalf("analytic P[none|C=6] = %.3f%%", ana.Y[last])
	}
	if math.Abs(mc.Y[last]-ana.Y[last]) > 0.25 {
		t.Fatalf("simulated %.3f%% vs analytic %.3f%%", mc.Y[last], ana.Y[last])
	}
	// Strictly decreasing in C (exponential decay).
	for i := 1; i < len(ana.Y); i++ {
		if ana.Y[i] >= ana.Y[i-1] {
			t.Fatal("analytic curve not decreasing")
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	cfg := DefaultFig6Config()
	cfg.Runs = 5 // keep the test quick; the bench uses more
	cfg.InitialHolders = []int{1, 8, 64}
	s, err := Figure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Y) != 3 {
		t.Fatalf("points %d", len(s.Y))
	}
	// Paper Figure 6: buffering time decreases as more members hold the
	// message initially; k=1 sits near ~100 ms, k=64 near T=40 ms.
	if !(s.Y[0] > s.Y[1] && s.Y[1] > s.Y[2]) {
		t.Fatalf("buffering time not decreasing: %v", s.Y)
	}
	if s.Y[0] < 60 || s.Y[0] > 200 {
		t.Fatalf("k=1 buffering time %.1f ms, expected ~100 ms", s.Y[0])
	}
	if s.Y[2] < 40 || s.Y[2] > 70 {
		t.Fatalf("k=64 buffering time %.1f ms, expected slightly above T=40 ms", s.Y[2])
	}
}

func TestFigure7Shape(t *testing.T) {
	s, err := Figure7(100, 5, time.Millisecond, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.TimesMs) == 0 {
		t.Fatal("no samples")
	}
	last := len(s.TimesMs) - 1
	// All 100 members eventually receive the message.
	if s.Received[last] != 100 {
		t.Fatalf("received at end = %d", s.Received[last])
	}
	// Received is monotone non-decreasing.
	for i := 1; i <= last; i++ {
		if s.Received[i] < s.Received[i-1] {
			t.Fatal("received series decreased")
		}
	}
	// Buffered rises with received early on, then collapses once the
	// region is repaired (C=0: everything is eventually discarded).
	peak := 0
	for _, b := range s.Buffered {
		if b > peak {
			peak = b
		}
	}
	if peak < 50 {
		t.Fatalf("peak buffered %d, expected most receivers to buffer", peak)
	}
	if s.Buffered[last] != 0 {
		t.Fatalf("buffered at end = %d, want 0", s.Buffered[last])
	}
}

func TestSearchZeroWhenEveryoneBuffers(t *testing.T) {
	res, err := RunSearch(SearchConfig{RegionSize: 20, Bufferers: 20, Runs: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedRuns != 0 {
		t.Fatalf("failed runs %d", res.FailedRuns)
	}
	if res.SearchTimeMs.Mean != 0 {
		t.Fatalf("search time %.2f ms with all members buffering, want 0", res.SearchTimeMs.Mean)
	}
}

func TestSearchTimeDecreasesWithBufferers(t *testing.T) {
	few, err := RunSearch(SearchConfig{RegionSize: 100, Bufferers: 1, Runs: 30, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	many, err := RunSearch(SearchConfig{RegionSize: 100, Bufferers: 10, Runs: 30, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if few.FailedRuns != 0 || many.FailedRuns != 0 {
		t.Fatalf("failed runs: %d, %d", few.FailedRuns, many.FailedRuns)
	}
	if few.SearchTimeMs.Mean <= many.SearchTimeMs.Mean {
		t.Fatalf("search time with 1 bufferer (%.1f ms) not greater than with 10 (%.1f ms)",
			few.SearchTimeMs.Mean, many.SearchTimeMs.Mean)
	}
}

func TestSearchSublinearInRegionSize(t *testing.T) {
	small, err := RunSearch(SearchConfig{RegionSize: 100, Bufferers: 10, Runs: 30, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	large, err := RunSearch(SearchConfig{RegionSize: 1000, Bufferers: 10, Runs: 30, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ratio := large.SearchTimeMs.Mean / small.SearchTimeMs.Mean
	// Paper: 10x region growth → ~2.2x search time. Accept a generous band
	// around sub-linear growth.
	if ratio >= 5 {
		t.Fatalf("search time ratio %.2f for 10x region growth, expected sub-linear (~2.2)", ratio)
	}
	if ratio <= 1 {
		t.Fatalf("search time did not grow with region size (ratio %.2f)", ratio)
	}
}

func TestDeterministicSearchRoutesDirectly(t *testing.T) {
	res, err := RunSearch(SearchConfig{RegionSize: 100, Bufferers: 5, Runs: 20, Seed: 12, Deterministic: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedRuns != 0 {
		t.Fatalf("failed runs %d", res.FailedRuns)
	}
	// Direct routing: at most one forward per episode, so the mean search
	// time is bounded by one region round-trip.
	if res.Forwards > 1.01 {
		t.Fatalf("deterministic routing used %.2f forwards per episode", res.Forwards)
	}
	if res.SearchTimeMs.Mean > 11 {
		t.Fatalf("deterministic search time %.2f ms, want <= ~1 RTT", res.SearchTimeMs.Mean)
	}
}

func TestRunSearchValidation(t *testing.T) {
	if _, err := RunSearch(SearchConfig{RegionSize: 10, Bufferers: 0, Runs: 1}); err == nil {
		t.Fatal("bufferers=0 accepted")
	}
	if _, err := RunSearch(SearchConfig{RegionSize: 10, Bufferers: 11, Runs: 1}); err == nil {
		t.Fatal("bufferers>region accepted")
	}
}

func TestCountHelpers(t *testing.T) {
	topo, err := topology.SingleRegion(5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{Topo: topo, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	id := wire.MessageID{Source: 0, Seq: 1}
	c.Members[1].InjectDeliver(id, nil)
	c.Members[2].InjectDiscarded(id)
	if got := c.CountReceived(id); got != 2 {
		t.Fatalf("CountReceived = %d", got)
	}
	if got := c.CountBuffered(id); got != 1 {
		t.Fatalf("CountBuffered = %d", got)
	}
}

// Sanity-check the §3.1 feedback formula against a live region: with all
// members missing (p=1) nearly every holder sees a request.
func TestProbNoRequestSanity(t *testing.T) {
	got := analytic.ProbNoRequest(100, 1)
	if got > 0.40 || got < 0.30 {
		t.Fatalf("ProbNoRequest(100, 1) = %v, want ~e^-1", got)
	}
}

package runner

import (
	"time"

	"repro/internal/exp"
)

// AdaptiveResult is one A8 row: the bursty-demand workload under one
// buffering policy, with the multi-objective fitness score attached.
type AdaptiveResult struct {
	// Policy is the RRMP buffering policy the row ran.
	Policy string
	// Fitness is the weighted multi-objective score under the default
	// weights; costs are normalized against the other rows, so the score
	// only ranks the policies within this ablation.
	Fitness float64
	// Delivery is the group-wide delivery ratio.
	Delivery float64
	// Unrecoverable counts messages stranded with no buffered copy left.
	Unrecoverable float64
	// RecoveryMs is the mean recovery latency.
	RecoveryMs float64
	// ByteIntegral is the group-wide buffering cost in byte-seconds.
	ByteIntegral float64
}

// AblationAdaptiveDemand runs A8: the diurnal-burst workload (4 phase-
// shifted publishers running 4x hot for the first second) over a lossy
// two-region group, under the two-phase, fixed-hold and adaptive
// policies. Bursty demand is the adaptive policy's target regime: request
// demand concentrates on the burst sources, so a demand-scaled hold keeps
// the hot sources' messages near TMax while quiet sources drop to TMin —
// where a fixed hold pays the same byte-seconds for both and two-phase's
// idle threshold reacts to silence, not to demand. Rows return ranked by
// fitness under the default weights, best first.
func AblationAdaptiveDemand(seed uint64) ([]AdaptiveResult, error) {
	base := exp.Scenario{
		Regions:  []int{12, 12},
		Loss:     0.2,
		LossMode: "hash",
		Msgs:     20, Gap: 20 * time.Millisecond, Horizon: 5 * time.Second,
		// 512-byte payloads engage the byte-currency metrics so the
		// byte-seconds objective has a real cost to score.
		PayloadBytes: 512,
		Workload:     exp.BurstyWorkload(),
	}
	policies := []string{"two-phase", "fixed", "adaptive"}
	rows := make([]exp.FitnessInput, 0, len(policies))
	for _, policy := range policies {
		sc := base
		sc.Policy = policy
		m, err := RunScenario(sc, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, exp.FitnessInput{
			Name:          policy,
			Delivery:      m[MKDeliveryRatio],
			ByteSeconds:   m[MKBufferIntegralByteSec],
			Unrecoverable: m[MKUnrecoverable],
			RecoveryMs:    m[MKMeanRecoveryMs],
		})
	}
	out := make([]AdaptiveResult, 0, len(policies))
	for _, r := range exp.Fitness(rows, exp.DefaultFitnessWeights()) {
		out = append(out, AdaptiveResult{
			Policy:        r.Name,
			Fitness:       r.Score,
			Delivery:      r.Delivery,
			Unrecoverable: r.Unrecoverable,
			RecoveryMs:    r.RecoveryMs,
			ByteIntegral:  r.ByteSeconds,
		})
	}
	return out, nil
}

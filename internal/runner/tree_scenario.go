// This file emits RMTP sweep cells; the metrickey analyzer checks that
// only keys gated to rmtp (or both) appear here — the PR 5 "RRMP-only
// keys never leak into rmtp cells" invariant, statically.
//
//metrics:scope rmtp
package runner

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/rmtp"
	"repro/internal/topology"
	"repro/internal/wire"
	"repro/internal/workload"
)

// runTreeScenario is RunScenario's kernel for Scenario.Protocol == "rmtp":
// the same topology, loss stream, publish workload, churn, crash,
// partition and byte-budget machinery, driven through an RMTP tree
// cluster (one repair server per region, parented along the region
// hierarchy). It emits the shared metric names (delivery, reach, buffer
// integrals in message- and byte-seconds, traffic, faults) plus the
// RMTP-specific nak_*/ack_* counters; RRMP-only keys (searches, handoffs,
// long_term_entries, ...) never appear in rmtp cells and vice versa, so
// the legacy key sets stay untouched.
// timeline, when non-nil, overrides the generated publish timeline (the
// trace-replay path). RMTP is a single-source protocol (nodes track
// reception by bare sequence number from one source), so multi-client
// timelines publish entirely from the root sender at the same instants
// with the same sizes — the common-random-numbers pairing across the
// protocol axis holds on (at, bytes), which is all RMTP can express.
func runTreeScenario(sc exp.Scenario, seed uint64, timeline workload.Timeline) (map[string]float64, error) {
	switch sc.Policy {
	case "", "server":
		// The baseline has exactly one buffering discipline: the repair
		// server buffers all under ACK trimming (exp.Sweep collapses the
		// policy axis to "server" for rmtp cells).
	default:
		return nil, fmt.Errorf("runner: rmtp scenario policy %q (the repair-server baseline has no policy axis; use %q)", sc.Policy, "server")
	}
	topo, err := scenarioTopology(sc)
	if err != nil {
		return nil, fmt.Errorf("runner: scenario topology: %w", err)
	}

	params := rmtp.DefaultParams()
	params.ByteBudget = sc.ByteBudget
	// The rmtp baseline always runs the serial engine (Scenario.Shards is
	// ignored here): it exists as a reference kernel, not a scale target,
	// and its shared-stream loss draws are not shard-safe anyway.
	loss, err := scenarioLoss(sc, seed, topo.NumNodes())
	if err != nil {
		return nil, err
	}
	c, err := NewTreeCluster(TreeClusterConfig{
		Topo:   topo,
		Params: params,
		Seed:   seed,
		Loss:   loss,
	})
	if err != nil {
		return nil, fmt.Errorf("runner: scenario tree cluster: %w", err)
	}
	for _, node := range c.Nodes {
		node.StartAcks()
	}
	c.Sender.StartSessions()

	tl := timeline
	if tl == nil {
		if tl, _, err = TimelineFor(sc, seed); err != nil {
			return nil, err
		}
	}
	// The publisher set matches the RRMP kernel's (even though every
	// publish flows from the root here) so the fault scheduler shields
	// the identical node set under both protocols.
	pubs, err := publisherNodes(topo, tl.Clients())
	if err != nil {
		return nil, err
	}

	// VoD late joiners: down from t=0, rejoining staggered with the whole
	// prefix to recover. Their frozen ACK floors pin the server buffers
	// until they return — the baseline's way of "planning" for late
	// joiners is to never trim.
	joiners := lateJoinersFor(topo, sc.Workload, pubs)
	for _, j := range joiners {
		j := j
		c.Sim.At(0, func() { c.Crash(j.node) })
		c.Sim.At(j.at, func() { c.Recover(j.node) })
	}

	ids := make([]wire.MessageID, 0, len(tl))
	// One backing buffer serves every publish, as in the RRMP kernel.
	payloadBuf := make([]byte, tl.MaxBytes())
	for i := range tl {
		ev := tl[i]
		c.Sim.At(ev.At, func() {
			ids = append(ids, c.Sender.Publish(payloadBuf[:ev.Bytes]))
		})
	}

	// The fault timeline comes from the shared scheduler, so a seeded
	// cell injects the identical churn/crash/partition sequence under
	// both protocols (the victims differ only in what failing *means*:
	// no handoff protocol, frozen ACK floors, orphaned regions).
	leaves, crashes := scheduleScenarioFaults(c.Sim, c.Net, topo, c.All, sc, seed, pubs, faultInjector{
		excused: func(v topology.NodeID) bool { return c.Nodes[v].Left() || c.Nodes[v].Crashed() },
		leave:   c.Leave,
		crash:   c.Crash,
		recover: c.Recover,
	})

	c.Sim.RunUntil(sc.Horizon)

	n := topo.NumNodes()
	out := map[string]float64{
		MKLeaves:      float64(*leaves),
		MKPacketsSent: float64(c.Net.Stats().TotalSent()),
		MKBytesSent:   float64(c.Net.Stats().TotalBytes()),
		MKEvents:      float64(c.Sim.Processed()),
	}
	var delivered, duplicates, repairs int64
	var nakSent, nakRecv, ackSent, ackRecv, giveUps, unrecoverable int64
	var bufferIntegral, byteIntegral float64
	var peak, peakBytes, ackTrims, survivors int
	var pressureEvictions, budgetDenials int
	var recSum, recN, bufSum, bufN float64
	for _, node := range c.Nodes {
		mm := node.Metrics()
		delivered += mm.Delivered.Value()
		duplicates += mm.Duplicates.Value()
		repairs += mm.RepairsSent.Value()
		nakSent += mm.NaksSent.Value()
		nakRecv += mm.NaksRecv.Value()
		ackSent += mm.AcksSent.Value()
		ackRecv += mm.AcksRecv.Value()
		giveUps += mm.GiveUps.Value()
		if b := node.Buffer(); b != nil {
			bufferIntegral += b.OccupancyIntegral(c.Sim.Now())
			byteIntegral += b.ByteOccupancyIntegral(c.Sim.Now())
			if p := b.PeakLen(); p > peak {
				peak = p
			}
			if p := b.PeakBytes(); p > peakBytes {
				peakBytes = p
			}
			ackTrims += b.EvictedCount(core.EvictStable)
			pressureEvictions += b.EvictedCount(core.EvictPressure)
			budgetDenials += b.DeniedCount()
		}
		recSum += mm.RecoveryLatency.Mean() * float64(mm.RecoveryLatency.N())
		recN += float64(mm.RecoveryLatency.N())
		bufSum += mm.BufferingTime.Mean() * float64(mm.BufferingTime.N())
		bufN += float64(mm.BufferingTime.N())
		if !node.Crashed() && !node.Left() {
			survivors++
			unrecoverable += mm.Unrecoverable.Value()
		}
	}
	msgs := sc.Msgs
	if sc.Workload != nil {
		msgs = len(ids)
	}
	reachMetrics(out, msgs, n, survivors, delivered, ids,
		func(node topology.NodeID, id wire.MessageID) bool { return c.Nodes[node].HasReceived(id.Seq) },
		func(node topology.NodeID) bool { return !c.Nodes[node].Crashed() && !c.Nodes[node].Left() })
	out[MKDuplicates] = float64(duplicates)
	out[MKRepairs] = float64(repairs)
	out[MKNakSent] = float64(nakSent)
	out[MKNakRecv] = float64(nakRecv)
	out[MKAckSent] = float64(ackSent)
	out[MKAckRecv] = float64(ackRecv)
	out[MKAckTrim] = float64(ackTrims)
	out[MKNakGiveups] = float64(giveUps)
	out[MKBufferIntegralMsgSec] = bufferIntegral
	out[MKPeakBuffered] = float64(peak)
	// Byte-currency keys follow the RRMP rule: only cells that engage the
	// payload or budget axes (or a size-drawing workload) carry them.
	if workloadBytesEngaged(sc) {
		out[MKBufferIntegralByteSec] = byteIntegral
		out[MKPeakBufferedBytes] = float64(peakBytes)
		out[MKPressureEvictions] = float64(pressureEvictions)
		out[MKBudgetDenials] = float64(budgetDenials)
	}
	workloadMetrics(out, sc, len(ids), joiners)
	out[MKCrashes] = float64(*crashes)
	out[MKUnrecoverable] = float64(unrecoverable)
	out[MKPartitionDrops] = float64(c.Net.Stats().PartitionDrops())
	if recN > 0 {
		out[MKMeanRecoveryMs] = recSum / recN
	}
	if bufN > 0 {
		out[MKMeanBufferingMs] = bufSum / bufN
	}
	return out, nil
}

package runner

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// TestProtocolDifferentialNoFaultCell is the protocol-axis sanity anchor:
// the identical seed, workload and topology run under both protocols must
// both reach delivery ratio 1.0 with zero unrecoverable losses in the
// no-loss/no-fault cell. Any future protocol change that breaks either
// side's baseline reliability fails here before it can skew a comparison.
func TestProtocolDifferentialNoFaultCell(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		base := exp.Scenario{
			Regions: []int{8, 6, 6},
			Msgs:    12,
			Gap:     20 * time.Millisecond,
			Horizon: 4 * time.Second,
		}
		rrmpSC := base
		rrmpSC.Policy = "two-phase"
		rmtpSC := base
		rmtpSC.Protocol = "rmtp"
		rmtpSC.Policy = "server"
		for name, sc := range map[string]exp.Scenario{"rrmp": rrmpSC, "rmtp": rmtpSC} {
			m, err := RunScenario(sc, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if m["delivery_ratio"] != 1.0 {
				t.Fatalf("%s seed %d: delivery_ratio %v, want 1.0", name, seed, m["delivery_ratio"])
			}
			if m["unrecoverable"] != 0 {
				t.Fatalf("%s seed %d: %v unrecoverable losses in a fault-free cell", name, seed, m["unrecoverable"])
			}
		}
	}
}

// TestProtocolSweepDeterministicAcrossParallelism extends the runner-level
// determinism contract to the protocol axis: a mixed rrmp/rmtp sweep with
// faults must aggregate byte-identically at parallel 1 and 8.
func TestProtocolSweepDeterministicAcrossParallelism(t *testing.T) {
	sw := exp.Sweep{
		Regions:    [][]int{{6, 6}},
		Losses:     []float64{0.2},
		Crashes:    []float64{0, 2},
		Partitions: []time.Duration{0, 500 * time.Millisecond},
		Protocols:  []string{"rrmp", "rmtp"},
		Msgs:       10,
		Horizon:    3 * time.Second,
	}
	serial, err := RunSweep(exp.Options{Trials: 3, Parallel: 1, BaseSeed: 5}, sw)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := RunSweep(exp.Options{Trials: 3, Parallel: 8, BaseSeed: 5}, sw)
	if err != nil {
		t.Fatal(err)
	}
	// 1 topo × 1 loss × 2 crash × 2 partition = 4 combos per protocol.
	if len(serial.Cells) != 8 {
		t.Fatalf("%d cells, want 8", len(serial.Cells))
	}
	if got, want := fmtReport(t, serial), fmtReport(t, wide); got != want {
		t.Fatal("protocol sweep aggregates differ across parallelism")
	}
	rmtpCells := 0
	for _, c := range serial.Cells {
		if c.Scenario.Protocol == "rmtp" {
			rmtpCells++
		}
	}
	if rmtpCells != len(serial.Cells)/2 {
		t.Fatalf("%d rmtp cells of %d", rmtpCells, len(serial.Cells))
	}
}

// TestRMTPServerCrashUnrecoverableNeverSilent pins the baseline's crash
// semantics: when a region's repair server crash-stops while some of its
// receivers still miss messages, every missing (node, message) pair must
// land in the unrecoverable counter once NAK budgets exhaust — counter ≡
// set, never a silent omission (the PR 2 invariant, extended to rmtp).
func TestRMTPServerCrashUnrecoverableNeverSilent(t *testing.T) {
	topo, err := topology.Chain(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Drop all DATA to the leaf region: only its repair server (via the
	// root) could ever repair it.
	victims := make(map[topology.NodeID]bool)
	for _, n := range topo.Members(1) {
		victims[n] = true
	}
	c, err := NewTreeCluster(TreeClusterConfig{
		Topo: topo,
		Seed: 11,
		Loss: &regionDataDrop{victims: victims},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes {
		n.StartAcks()
	}
	c.Sender.StartSessions()
	leafServer := topo.MemberAt(1, 0)
	var ids []wire.MessageID
	for i := 0; i < 5; i++ {
		i := i
		c.Sim.At(time.Duration(i)*20*time.Millisecond, func() {
			ids = append(ids, c.Sender.Publish([]byte{byte(i)}))
		})
	}
	// The leaf server crashes before it can fetch the repairs.
	c.Sim.At(10*time.Millisecond, func() { c.Crash(leafServer) })
	c.Sim.RunUntil(3 * time.Second)
	// Quiesce: stop the periodic loops so every bounded NAK budget runs
	// out, then every loss must be explicitly accounted.
	c.Sender.StopSessions()
	for _, n := range c.Nodes {
		n.StopAcks()
	}
	c.Sim.MustQuiesce(5_000_000)

	sawLoss := false
	for _, node := range topo.Members(1) {
		nd := c.Nodes[node]
		unrec := map[uint64]bool{}
		for _, seq := range nd.Unrecovered() {
			unrec[seq] = true
		}
		if int64(len(unrec)) != nd.Metrics().Unrecoverable.Value() {
			t.Fatalf("node %d: Unrecoverable counter %d != set size %d",
				node, nd.Metrics().Unrecoverable.Value(), len(unrec))
		}
		if node == leafServer {
			continue // crashed members are excused from the survivor bound
		}
		for _, id := range ids {
			if nd.HasReceived(id.Seq) {
				t.Fatalf("node %d received %d through a crashed repair server", node, id.Seq)
			}
			if !unrec[id.Seq] {
				t.Fatalf("node %d silently missing seq %d: not counted unrecoverable", node, id.Seq)
			}
			sawLoss = true
		}
	}
	if !sawLoss {
		t.Fatal("setup failed: the orphaned region lost nothing")
	}
}

// TestRMTPServerRecoverRepairsOrphanedRegion is the flip side: when the
// crashed repair server comes back, session messages restart the stalled
// NAK loops, the server re-fetches from its parent, and the orphaned
// region drains — unrecoverable counts return to zero.
func TestRMTPServerRecoverRepairsOrphanedRegion(t *testing.T) {
	topo, err := topology.Chain(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	victims := make(map[topology.NodeID]bool)
	for _, n := range topo.Members(1) {
		victims[n] = true
	}
	c, err := NewTreeCluster(TreeClusterConfig{
		Topo: topo,
		Seed: 12,
		Loss: &regionDataDrop{victims: victims},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes {
		n.StartAcks()
	}
	c.Sender.StartSessions()
	leafServer := topo.MemberAt(1, 0)
	var ids []wire.MessageID
	for i := 0; i < 5; i++ {
		i := i
		c.Sim.At(time.Duration(i)*20*time.Millisecond, func() {
			ids = append(ids, c.Sender.Publish([]byte{byte(i)}))
		})
	}
	c.Sim.At(10*time.Millisecond, func() { c.Crash(leafServer) })
	// Long enough for every receiver to exhaust a NAK budget first.
	c.Sim.At(2*time.Second, func() { c.Recover(leafServer) })
	c.Sim.RunUntil(8 * time.Second)

	for _, node := range topo.Members(1) {
		nd := c.Nodes[node]
		for _, id := range ids {
			if !nd.HasReceived(id.Seq) {
				t.Fatalf("node %d still missing seq %d after server recovery", node, id.Seq)
			}
		}
		if got := nd.Metrics().Unrecoverable.Value(); got != 0 {
			t.Fatalf("node %d: %d unrecoverable after every message arrived", node, got)
		}
		if len(nd.Unrecovered()) != 0 {
			t.Fatalf("node %d: Unrecovered set not drained", node)
		}
	}
}

// regionDataDrop drops DATA to a victim set (recovery traffic untouched).
type regionDataDrop struct{ victims map[topology.NodeID]bool }

func (r *regionDataDrop) Drop(_, to topology.NodeID, ty wire.Type) bool {
	return ty == wire.TypeData && r.victims[to]
}

var _ netsim.LossModel = (*regionDataDrop)(nil)

// TestTreeClusterLeaveDeregistersAcker pins the graceful-leave semantics:
// a departed receiver's frozen ACK floor must not block the server's
// trimming forever, while a crashed receiver's must.
func TestTreeClusterLeaveDeregistersAcker(t *testing.T) {
	for _, graceful := range []bool{true, false} {
		topo, err := topology.SingleRegion(5)
		if err != nil {
			t.Fatal(err)
		}
		// Drop DATA to the victim so its floor stays at zero.
		victim := topo.MemberAt(0, 3)
		c, err := NewTreeCluster(TreeClusterConfig{
			Topo: topo,
			Seed: 9,
			Loss: &regionDataDrop{victims: map[topology.NodeID]bool{victim: true}},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range c.Nodes {
			n.StartAcks()
		}
		// No sessions: the victim never learns what it missed, so its ACK
		// floor stays pinned at 0 until it departs.
		for i := 0; i < 4; i++ {
			i := i
			c.Sim.At(time.Duration(i)*10*time.Millisecond, func() { c.Sender.Publish([]byte{byte(i)}) })
		}
		c.Sim.At(500*time.Millisecond, func() {
			if graceful {
				c.Leave(victim)
			} else {
				c.Crash(victim)
			}
		})
		c.Sim.RunUntil(3 * time.Second)
		server := c.Nodes[topo.MemberAt(0, 0)]
		if graceful {
			if got := server.Buffer().Len(); got != 0 {
				t.Fatalf("server still buffers %d entries after the laggard left gracefully", got)
			}
		} else if got := server.Buffer().Len(); got != 4 {
			t.Fatalf("server trimmed to %d entries while a crashed member's floor is frozen; want 4", got)
		}
	}
}

// fmtReport renders a report as JSON for byte comparison.
func fmtReport(t *testing.T, rep exp.Report) string {
	t.Helper()
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

package runner

import (
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/rrmp"
	"repro/internal/topology"
)

// benchView builds one member-sized region view for the factory path.
func benchView(tb testing.TB) topology.View {
	tb.Helper()
	topo, err := topology.SingleRegion(32)
	if err != nil {
		tb.Fatal(err)
	}
	view, err := topo.ViewOf(1)
	if err != nil {
		tb.Fatal(err)
	}
	return view
}

// BenchmarkPolicySpecParse tracks the registry parser — it runs once per
// scenario cell, so it only needs to stay cheap, not alloc-free.
func BenchmarkPolicySpecParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := policy.Parse("adaptive:tmin=20ms,tmax=200ms,target=2"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicyFactoryBuild tracks the per-member policy construction
// the factory closure performs during cluster setup, for the registry
// kinds the sweep axes exercise. The two-phase kind is absent by design:
// it maps to a nil factory and rides the member fallback, adding zero
// work to the setup path.
func BenchmarkPolicyFactoryBuild(b *testing.B) {
	view := benchView(b)
	params := rrmp.Params{
		IdleThreshold: 40 * time.Millisecond, C: 6,
		LongTermTTL: time.Minute,
	}
	for _, spec := range []string{"fixed", "all", "hash", "adaptive"} {
		sp, err := policy.Parse(spec)
		if err != nil {
			b.Fatal(err)
		}
		fn := PolicyFactory(sp, 500*time.Millisecond)
		b.Run(spec, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if fn(view, params) == nil {
					b.Fatal("factory built no policy")
				}
			}
		})
	}
}

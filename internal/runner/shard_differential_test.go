package runner

import (
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/exp"
)

// envShards returns the RRMP_SHARDS override (the CI race job sets it to
// run the whole runner suite through the sharded engine) or def when the
// variable is absent or malformed.
func envShards(def int) int {
	if v := os.Getenv("RRMP_SHARDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 1 {
			return n
		}
	}
	return def
}

// shardWidths are the widths every differential case compares against the
// serial engine. An RRMP_SHARDS override joins the list so the CI matrix
// width is always among the proven-equivalent ones.
func shardWidths() []int {
	widths := []int{2, 8}
	if n := envShards(0); n > 1 && n != 2 && n != 8 {
		widths = append(widths, n)
	}
	return widths
}

// sweepAtShards runs the sweep with Shards=n and returns the report's
// canonical JSON — the exact bytes the determinism contract covers.
func sweepAtShards(t *testing.T, sw exp.Sweep, o exp.Options, n int) string {
	t.Helper()
	sw.Shards = n
	rep, err := RunSweep(o, sw)
	if err != nil {
		t.Fatalf("shards=%d: %v", n, err)
	}
	// The top-level exec note names the requested width (it reports cells
	// that fell back to serial), so it legitimately differs across widths;
	// the contract this test pins covers the cells.
	rep.ExecNote = ""
	return fmtReport(t, rep)
}

// TestShardedSweepByteIdentical is the tentpole's acceptance gate: the
// region-sharded engine must produce byte-identical sweep reports at every
// shard width, across the legacy miniature (both protocols, every fault
// axis), hash-mode loss (the only loss model that runs genuinely
// parallel), and the byte-currency axes. Cells whose loss model draws
// from the legacy shared stream fall back to serial inside RunScenario,
// so their equality is structural; lossless and hash-loss cells exercise
// real cross-shard windows, outbox merges and barrier faults.
func TestShardedSweepByteIdentical(t *testing.T) {
	trials := 2
	if testing.Short() {
		trials = 1
	}
	cases := []struct {
		name string
		sw   exp.Sweep
	}{
		{
			// The pinned-golden miniature (regions 8 and 6,6 across every
			// legacy fault axis, both protocols): ~96 cells. Lossy rrmp
			// cells take the serial fallback; rmtp always runs serial.
			name: "golden-miniature",
			sw: func() exp.Sweep {
				sw := exp.DefaultSweep()
				sw.Regions = [][]int{{8}, {6, 6}}
				sw.PayloadSizes = []int{0}
				sw.Budgets = []int{0}
				return sw
			}(),
		},
		{
			// Hash-mode loss runs lossy cells genuinely parallel: the
			// per-sender counter hash makes drop decisions shard-local.
			name: "hash-loss",
			sw: exp.Sweep{
				Regions:  [][]int{{8}, {6, 6}},
				Losses:   []float64{0.05, 0.2},
				LossMode: "hash",
				Churns:   []float64{0, 1},
				Crashes:  []float64{0, 1},
				Policies: []string{"two-phase"},
				Msgs:     12,
				Horizon:  3 * time.Second,
			},
		},
		{
			// Hash-mode burst loss: the Gilbert–Elliott chains advance on
			// per-pair counter-hash draws (netsim.HashBurstLoss), so the
			// burst family — formerly a guaranteed serial fallback — must
			// hold byte-identity through real parallel windows too.
			name: "burst-hash",
			sw: exp.Sweep{
				Regions:  [][]int{{8}, {6, 6}},
				Losses:   []float64{0.05, 0.2},
				LossMode: "hash",
				Burst:    true,
				Churns:   []float64{0, 1},
				Policies: []string{"two-phase"},
				Msgs:     12,
				Horizon:  3 * time.Second,
			},
		},
		{
			// Lossless fault cells with the byte-currency axes engaged:
			// crash, partition, churn, payload accounting and budget
			// eviction all run through real parallel windows.
			name: "faults-budget",
			sw: exp.Sweep{
				Regions:      [][]int{{6, 6}},
				Losses:       []float64{0},
				Churns:       []float64{0, 1},
				Crashes:      []float64{0, 1},
				Partitions:   []time.Duration{0, time.Second},
				Policies:     []string{"two-phase", "fixed"},
				PayloadSizes: []int{1024},
				Budgets:      []int{8192},
				Msgs:         12,
				Horizon:      3 * time.Second,
			},
		},
		{
			// The multi-client workload family (hash loss, so every rrmp
			// cell runs genuinely parallel): pre-materialized timelines and
			// per-sender hash loss keep multi-publisher cells — and the VoD
			// late-join schedule — shard-safe by construction; this pins it.
			name: "workload-family",
			sw: func() exp.Sweep {
				sw := exp.WorkloadSweep()
				sw.Regions = [][]int{{8, 8}}
				return sw
			}(),
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			o := exp.Options{Trials: trials, BaseSeed: 1}
			serial := sweepAtShards(t, tc.sw, o, 1)
			for _, n := range shardWidths() {
				if got := sweepAtShards(t, tc.sw, o, n); got != serial {
					t.Errorf("shards=%d report differs from serial", n)
				}
			}
		})
	}
}

// TestShardedScenarioMatchesSerial drills one genuinely-parallel scenario
// (deep tree, hash loss, churn) down to the per-metric level so a
// divergence names the metric instead of just "bytes differ".
func TestShardedScenarioMatchesSerial(t *testing.T) {
	sc := exp.Scenario{
		Tree:     &exp.TreeShape{Branch: 3, Levels: 3, Members: 120},
		Loss:     0.1,
		LossMode: "hash",
		Churn:    1,
		Policy:   "two-phase",
		Msgs:     15,
		Gap:      20 * time.Millisecond,
		Horizon:  3 * time.Second,
	}
	serial, err := RunScenario(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range shardWidths() {
		sc := sc
		sc.Shards = n
		got, err := RunScenario(sc, 7)
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		if len(got) != len(serial) {
			t.Fatalf("shards=%d: %d metrics, serial has %d", n, len(got), len(serial))
		}
		for k, v := range serial {
			if got[k] != v {
				t.Errorf("shards=%d: metric %q = %v, serial %v", n, k, got[k], v)
			}
		}
	}
}

package runner

import (
	"fmt"
	"time"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/rrmp"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/wire"
)

// figureHolderStreamLabel derives the figure harness's holder-pick stream
// (Figure 6's k initial long-term holders), independent of the member
// streams so regenerating figures never perturbs protocol draws.
const figureHolderStreamLabel = 0xf16

// Series is one named curve: paired X/Y points in figure units.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure3 reproduces the paper's Figure 3: the probability that k members
// buffer an idle message for C in cs, in a region of n members. For each C
// it returns the analytic Poisson curve and a Monte Carlo curve obtained by
// running the actual election code (core.TwoPhase.OnIdle) trials times.
func Figure3(cs []float64, n, trials int, seed uint64) []Series {
	out := make([]Series, 0, 2*len(cs))
	r := rng.New(seed)
	const kMax = 20
	for _, c := range cs {
		analytic1 := Series{Name: fmt.Sprintf("C=%g analytic", c)}
		for k := 0; k <= kMax; k++ {
			analytic1.X = append(analytic1.X, float64(k))
			analytic1.Y = append(analytic1.Y, 100*analytic.PoissonPMF(c, k))
		}
		out = append(out, analytic1)

		policy := core.NewTwoPhase(time.Millisecond, c, n, 0)
		counts := make([]int, kMax+1)
		for trial := 0; trial < trials; trial++ {
			k := 0
			for member := 0; member < n; member++ {
				if policy.OnIdle(wire.MessageID{Seq: uint64(trial)}, r) == core.PromoteLongTerm {
					k++
				}
			}
			if k <= kMax {
				counts[k]++
			}
		}
		sim1 := Series{Name: fmt.Sprintf("C=%g simulated (n=%d)", c, n)}
		for k := 0; k <= kMax; k++ {
			sim1.X = append(sim1.X, float64(k))
			sim1.Y = append(sim1.Y, 100*float64(counts[k])/float64(trials))
		}
		out = append(out, sim1)
	}
	return out
}

// Figure4 reproduces Figure 4: the probability (%) that no member becomes a
// long-term bufferer, versus C. Returns the analytic e^(−C) curve and a
// Monte Carlo curve from the real election code.
func Figure4(cs []float64, n, trials int, seed uint64) []Series {
	r := rng.New(seed)
	analytic1 := Series{Name: "analytic e^-C"}
	mc := Series{Name: fmt.Sprintf("simulated (n=%d)", n)}
	for _, c := range cs {
		analytic1.X = append(analytic1.X, c)
		analytic1.Y = append(analytic1.Y, 100*analytic.ProbNoLongTermBufferer(c))

		policy := core.NewTwoPhase(time.Millisecond, c, n, 0)
		none := 0
		for trial := 0; trial < trials; trial++ {
			elected := false
			for member := 0; member < n && !elected; member++ {
				elected = policy.OnIdle(wire.MessageID{Seq: uint64(trial)}, r) == core.PromoteLongTerm
			}
			if !elected {
				none++
			}
		}
		mc.X = append(mc.X, c)
		mc.Y = append(mc.Y, 100*float64(none)/float64(trials))
	}
	return []Series{analytic1, mc}
}

// Fig6Config parameterizes the Figure 6 experiment.
type Fig6Config struct {
	// RegionSize is n (paper: 100).
	RegionSize int
	// InitialHolders are the x-axis values (paper: 1,2,4,8,16,32,64).
	InitialHolders []int
	// Runs averages each point over this many seeded repetitions.
	Runs int
	// Seed roots the randomness.
	Seed uint64
}

// DefaultFig6Config returns the paper's §4 settings.
func DefaultFig6Config() Fig6Config {
	return Fig6Config{
		RegionSize:     100,
		InitialHolders: []int{1, 2, 4, 8, 16, 32, 64},
		Runs:           20,
		Seed:           1,
	}
}

// Figure6 reproduces Figure 6: mean short-term buffering time of the
// members that held the message initially, versus the number of initial
// holders. A region of RegionSize members is constructed; k random members
// receive the message at t=0; every other member simultaneously detects the
// loss and runs local recovery. Buffering time is the time until the
// message becomes idle at each initial holder (the y-axis of the paper's
// figure; log scale when plotted).
func Figure6(cfg Fig6Config) (Series, error) {
	series := Series{Name: fmt.Sprintf("mean buffering time, n=%d, %d runs", cfg.RegionSize, cfg.Runs)}
	for _, k := range cfg.InitialHolders {
		var hist stats.Histogram
		for run := 0; run < cfg.Runs; run++ {
			if err := fig6Run(cfg, k, cfg.Seed+uint64(run)*7919, &hist); err != nil {
				return Series{}, err
			}
		}
		series.X = append(series.X, float64(k))
		series.Y = append(series.Y, hist.Mean())
	}
	return series, nil
}

func fig6Run(cfg Fig6Config, k int, seed uint64, hist *stats.Histogram) error {
	topo, err := topology.SingleRegion(cfg.RegionSize)
	if err != nil {
		return err
	}
	params := rrmp.DefaultParams()
	params.C = 0           // isolate the short-term phase (§3.1)
	params.LongTermTTL = 0 // irrelevant with C=0

	holders := make(map[topology.NodeID]bool, k)
	// Choose the k initial holders with the harness stream.
	pick := rng.New(seed).Split(figureHolderStreamLabel)
	perm := pick.Perm(cfg.RegionSize)
	for i := 0; i < k; i++ {
		holders[topology.NodeID(perm[i])] = true
	}

	c, err := NewCluster(ClusterConfig{
		Topo:   topo,
		Params: params,
		Seed:   seed,
		Hooks: func(n topology.NodeID) rrmp.Hooks {
			if !holders[n] {
				return rrmp.Hooks{}
			}
			return rrmp.Hooks{
				OnEvict: func(e *core.Entry, reason core.EvictReason) {
					if reason == core.EvictIdle {
						hist.Add(float64(e.LastRequest+params.IdleThreshold-e.StoredAt) / 1e6)
					}
				},
			}
		},
	})
	if err != nil {
		return err
	}
	id := wire.MessageID{Source: topo.Sender(), Seq: 1}
	for n := range holders {
		c.Members[n].InjectDeliver(id, []byte("fig6"))
	}
	for _, n := range c.All {
		if !holders[n] {
			c.Members[n].StartRecovery(id)
		}
	}
	c.Sim.MustQuiesce(10_000_000)
	return nil
}

// Fig7Series is the Figure 7 output: the number of members that have
// received the message and the number still buffering it, sampled over
// time.
type Fig7Series struct {
	TimesMs  []float64
	Received []int
	Buffered []int
}

// Figure7 reproduces Figure 7: starting from one initial holder in a region
// of n members, it samples #received and #buffered every sampleEvery until
// horizon.
func Figure7(n int, seed uint64, sampleEvery, horizon time.Duration) (Fig7Series, error) {
	topo, err := topology.SingleRegion(n)
	if err != nil {
		return Fig7Series{}, err
	}
	params := rrmp.DefaultParams()
	params.C = 0
	c, err := NewCluster(ClusterConfig{Topo: topo, Params: params, Seed: seed})
	if err != nil {
		return Fig7Series{}, err
	}
	id := wire.MessageID{Source: topo.Sender(), Seq: 1}
	holder := topology.NodeID(c.Root.Intn(n))
	c.Members[holder].InjectDeliver(id, []byte("fig7"))
	for _, node := range c.All {
		if node != holder {
			c.Members[node].StartRecovery(id)
		}
	}

	var out Fig7Series
	for at := time.Duration(0); at <= horizon; at += sampleEvery {
		at := at
		c.Sim.At(at, func() {
			out.TimesMs = append(out.TimesMs, float64(at)/1e6)
			out.Received = append(out.Received, c.CountReceived(id))
			out.Buffered = append(out.Buffered, c.CountBuffered(id))
		})
	}
	c.Sim.RunUntil(horizon)
	return out, nil
}

package runner

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/rrmp"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/wire"
)

// SearchConfig parameterizes the Figure 8 / Figure 9 search-time
// experiments (§3.3, §4).
type SearchConfig struct {
	// RegionSize is the size of the region searched (paper: 100 for
	// Figure 8; 100..1000 for Figure 9).
	RegionSize int
	// Bufferers is the number of long-term bufferers holding the idle
	// message (paper: 1..10 for Figure 8; 10 for Figure 9).
	Bufferers int
	// Runs averages over this many repetitions with different seeds
	// (paper: 100).
	Runs int
	// Seed roots the randomness.
	Seed uint64
	// Deterministic switches the region to the hash-elect policy of §3.4:
	// bufferer sets are computable, so the probe routes directly instead
	// of walking randomly.
	Deterministic bool
}

// SearchResult aggregates one search-time configuration.
type SearchResult struct {
	Config       SearchConfig
	SearchTimeMs stats.Summary
	// Forwards is the mean number of SEARCH transmissions per episode.
	Forwards float64
	// FailedRuns counts runs where the search did not resolve (should be
	// zero whenever Bufferers >= 1).
	FailedRuns int
}

// RunSearch measures the search time: a remote request for a message that
// has become idle region-wide arrives at a uniformly random member; the
// clock runs from the request's arrival until a bufferer transmits the
// repair to the remote requester. A request landing directly on a bufferer
// scores zero (§4, footnote 5).
func RunSearch(cfg SearchConfig) (SearchResult, error) {
	if cfg.Bufferers < 1 || cfg.Bufferers > cfg.RegionSize {
		return SearchResult{}, fmt.Errorf("runner: bufferers %d out of range for region %d", cfg.Bufferers, cfg.RegionSize)
	}
	res := SearchResult{Config: cfg}
	var hist stats.Histogram
	var totalForwards int64
	for run := 0; run < cfg.Runs; run++ {
		ms, forwards, ok, err := searchRun(cfg, cfg.Seed+uint64(run)*104729)
		if err != nil {
			return SearchResult{}, err
		}
		if !ok {
			res.FailedRuns++
			continue
		}
		hist.Add(ms)
		totalForwards += forwards
	}
	res.SearchTimeMs = hist.Summarize()
	if succeeded := cfg.Runs - res.FailedRuns; succeeded > 0 {
		res.Forwards = float64(totalForwards) / float64(succeeded)
	}
	return res, nil
}

// searchRun executes a single search episode and returns the search time in
// milliseconds and the number of SEARCH transmissions.
func searchRun(cfg SearchConfig, seed uint64) (ms float64, forwards int64, ok bool, err error) {
	// Region 0 holds the idle message; region 1 holds the single remote
	// requester downstream of it.
	topo, err := topology.Chain(cfg.RegionSize, 1)
	if err != nil {
		return 0, 0, false, err
	}
	params := rrmp.DefaultParams()
	params.LongTermTTL = 0 // keep injected bufferers alive for the episode

	// The hook closure references the cluster to read the virtual clock;
	// hooks only fire once the simulation runs, after c is assigned.
	var c *Cluster
	var resolvedAt time.Duration = -1
	clusterCfg := ClusterConfig{
		Topo:   topo,
		Params: params,
		Seed:   seed,
		Hooks: func(topology.NodeID) rrmp.Hooks {
			return rrmp.Hooks{
				OnSearchResolved: func(wire.MessageID, topology.NodeID) {
					if resolvedAt < 0 {
						resolvedAt = c.Sim.Now()
					}
				},
			}
		},
	}
	if cfg.Deterministic {
		clusterCfg.Policy = func(view topology.View, p rrmp.Params) core.Policy {
			if view.Region != 0 {
				return nil // default two-phase outside the region under test
			}
			region := append([]topology.NodeID{view.Self}, view.Peers()...)
			return core.NewHashElect(p.IdleThreshold, cfg.Bufferers, view.Self, region, 0)
		}
	}
	c, err = NewCluster(clusterCfg)
	if err != nil {
		return 0, 0, false, err
	}

	id := wire.MessageID{Source: topo.Sender(), Seq: 1}
	region := topo.Members(0)
	bufferers := make(map[topology.NodeID]bool, cfg.Bufferers)
	if cfg.Deterministic {
		// The bufferer set is dictated by the hash (§3.4).
		ref := core.NewHashElect(params.IdleThreshold, cfg.Bufferers, region[0], region, 0)
		for _, b := range ref.Bufferers(id) {
			bufferers[b] = true
		}
	} else {
		perm := c.Root.Perm(len(region))
		for i := 0; i < cfg.Bufferers; i++ {
			bufferers[region[perm[i]]] = true
		}
	}
	for _, n := range region {
		if bufferers[n] {
			c.Members[n].InjectLongTerm(id, []byte("search"))
		} else {
			c.Members[n].InjectDiscarded(id)
		}
	}
	target := region[c.Root.Intn(len(region))]
	requester := topo.MemberAt(1, 0)
	c.Net.Unicast(requester, target, wire.Message{
		Type: wire.TypeRemoteRequest, From: requester, ID: id, Origin: requester,
	})
	arrival := InterOneWay // unicast sent at t=0, one inter-region hop
	c.Sim.RunUntil(30 * time.Second)

	if resolvedAt < 0 {
		return 0, 0, false, nil
	}
	for _, n := range region {
		forwards += c.Members[n].Metrics().SearchForwards.Value()
	}
	return float64(resolvedAt-arrival) / 1e6, forwards, true, nil
}

// Figure8 reproduces Figure 8: mean search time versus the number of
// bufferers (1..10) in a 100-member region, averaged over runs.
func Figure8(runs int, seed uint64) (Series, error) {
	s := Series{Name: fmt.Sprintf("search time, n=100, %d runs", runs)}
	for b := 1; b <= 10; b++ {
		res, err := RunSearch(SearchConfig{RegionSize: 100, Bufferers: b, Runs: runs, Seed: seed})
		if err != nil {
			return Series{}, err
		}
		s.X = append(s.X, float64(b))
		s.Y = append(s.Y, res.SearchTimeMs.Mean)
	}
	return s, nil
}

// Figure9 reproduces Figure 9: mean search time versus region size
// (100..1000) with 10 bufferers, averaged over runs.
func Figure9(runs int, seed uint64) (Series, error) {
	s := Series{Name: fmt.Sprintf("search time, B=10, %d runs", runs)}
	for n := 100; n <= 1000; n += 100 {
		res, err := RunSearch(SearchConfig{RegionSize: n, Bufferers: 10, Runs: runs, Seed: seed})
		if err != nil {
			return Series{}, err
		}
		s.X = append(s.X, float64(n))
		s.Y = append(s.Y, res.SearchTimeMs.Mean)
	}
	return s, nil
}

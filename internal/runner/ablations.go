package runner

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/rrmp"
	"repro/internal/stability"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/wire"
)

// PolicyComparison is one row of ablation A1: the same lossy workload run
// under a different buffering policy.
type PolicyComparison struct {
	Policy string
	// DeliveryRatio is distinct deliveries / (members × messages).
	DeliveryRatio float64
	// BufferIntegral is the total message-seconds of buffer occupancy
	// summed over all members (the buffering cost a policy pays).
	BufferIntegral float64
	// PeakPerMember is the highest instantaneous entry count at any member.
	PeakPerMember int
	// MeanBufferingMs is the mean store→evict time.
	MeanBufferingMs float64
}

// AblationPolicies (A1) runs one workload — a 100-member region, 30
// messages at 20 ms spacing, 10% independent DATA loss — under the paper's
// two-phase policy and the baselines, and reports what each pays in buffer
// space for what reliability.
func AblationPolicies(seed uint64) ([]PolicyComparison, error) {
	const (
		n       = 100
		msgs    = 30
		horizon = 5 * time.Second
	)
	type entry struct {
		name   string
		policy func(view topology.View, p rrmp.Params) core.Policy
	}
	policies := []entry{
		{"two-phase C=6", nil}, // nil: the member builds the paper's policy
		{"fixed-hold 200ms", func(topology.View, rrmp.Params) core.Policy {
			return &core.FixedHold{D: 200 * time.Millisecond}
		}},
		{"fixed-hold 1s", func(topology.View, rrmp.Params) core.Policy {
			return &core.FixedHold{D: time.Second}
		}},
		{"buffer-all", func(topology.View, rrmp.Params) core.Policy {
			return core.BufferAll{}
		}},
		{"hash-elect C=6", func(view topology.View, p rrmp.Params) core.Policy {
			region := append([]topology.NodeID{view.Self}, view.Peers()...)
			return core.NewHashElect(p.IdleThreshold, 6, view.Self, region, p.LongTermTTL)
		}},
	}

	out := make([]PolicyComparison, 0, len(policies))
	for _, pe := range policies {
		topo, err := topology.SingleRegion(n)
		if err != nil {
			return nil, err
		}
		params := rrmp.DefaultParams()
		params.LongTermTTL = time.Second // bound long-term cost within the horizon
		c, err := NewCluster(ClusterConfig{
			Topo:   topo,
			Params: params,
			Seed:   seed,
			Policy: pe.policy,
			Loss: &netsim.BernoulliLoss{
				P:    0.10,
				Only: map[wire.Type]bool{wire.TypeData: true},
				Rng:  rng.New(seed ^ 0x105),
			},
		})
		if err != nil {
			return nil, err
		}
		c.Sender.StartSessions()
		for i := 0; i < msgs; i++ {
			i := i
			c.Sim.At(time.Duration(i)*20*time.Millisecond, func() { c.Sender.Publish(make([]byte, 64)) })
		}
		c.Sim.RunUntil(horizon)

		row := PolicyComparison{Policy: pe.name}
		var delivered int64
		var bufTime stats.Histogram
		for _, m := range c.Members {
			delivered += m.Metrics().Delivered.Value()
			row.BufferIntegral += m.Buffer().OccupancyIntegral(c.Sim.Now())
			if p := m.Buffer().PeakLen(); p > row.PeakPerMember {
				row.PeakPerMember = p
			}
			for _, v := range m.Metrics().BufferingTime.Values() {
				bufTime.Add(v)
			}
		}
		row.DeliveryRatio = float64(delivered) / float64(n*msgs)
		row.MeanBufferingMs = bufTime.Mean()
		out = append(out, row)
	}
	return out, nil
}

// LoadBalance is one row of ablation A2: how evenly the buffering burden is
// spread across members.
type LoadBalance struct {
	Protocol string
	// Topology names the group shape the row ran on ("flat-50" or
	// "two-level-25+25"): the paper's repair-server claim is about a
	// hierarchy of regions, so the flat single-region cell alone would
	// not exercise it.
	Topology string
	// MeanIntegral and MaxIntegral are per-member payload-byte-seconds —
	// the byte-time integral PR 4 made live; message-seconds hid the cost
	// of variable payloads entirely.
	MeanIntegral float64
	MaxIntegral  float64
	// Imbalance is MaxIntegral / MeanIntegral (1.0 = perfectly even).
	Imbalance float64
	// MaxShare is the most-burdened member's fraction of its *region's*
	// total buffering cost — the paper's §1 claim is per region: "a
	// repair server bears the entire burden of buffering messages for a
	// local region" (≈ 1.0), while RRMP spreads it (≪ 1.0). Scoping the
	// share to the region keeps the claim measurable on hierarchies,
	// where each region has its own server.
	MaxShare float64
}

// AblationLoadBalance (A2) contrasts RRMP's diffused buffering with the
// tree baseline, where a repair server carries its region's entire load
// (§1, §6): the same 100-message stream on a flat 50-member region and on
// a two-level 25+25 hierarchy, with the historic fixed 256-byte payload.
func AblationLoadBalance(seed uint64) ([]LoadBalance, error) {
	return AblationLoadBalanceSized(0, "", seed)
}

// AblationLoadBalanceSized is AblationLoadBalance under a payload-size
// model: payloadBytes is the per-message mean (0 = the historic 256) and
// model selects fixed/uniform/lognormal draws (workload.NewSizeModel), so
// the byte-time comparison covers variable payloads, not just a constant
// multiple of the message count.
func AblationLoadBalanceSized(payloadBytes int, model string, seed uint64) ([]LoadBalance, error) {
	const (
		msgs    = 100
		horizon = 4 * time.Second
	)
	topos := []struct {
		name  string
		build func() (*topology.Topology, error)
	}{
		{"flat-50", func() (*topology.Topology, error) { return topology.SingleRegion(50) }},
		{"two-level-25+25", func() (*topology.Topology, error) { return topology.Chain(25, 25) }},
	}
	sizes, maxSize, err := PayloadSizesFor(model, payloadBytes, msgs, seed)
	if err != nil {
		return nil, err
	}
	payloadBuf := make([]byte, maxSize)

	var out []LoadBalance
	for _, tc := range topos {
		// RRMP with the paper's two-phase policy.
		topo, err := tc.build()
		if err != nil {
			return nil, err
		}
		params := rrmp.DefaultParams()
		params.LongTermTTL = time.Second
		c, err := NewCluster(ClusterConfig{Topo: topo, Params: params, Seed: seed})
		if err != nil {
			return nil, err
		}
		for i := 0; i < msgs; i++ {
			i := i
			c.Sim.At(time.Duration(i)*10*time.Millisecond, func() { c.Sender.Publish(payloadBuf[:sizes[i]]) })
		}
		c.Sim.RunUntil(horizon)
		integrals := make([]float64, topo.NumNodes())
		for id, m := range c.Members {
			integrals[id] = m.Buffer().ByteOccupancyIntegral(c.Sim.Now())
		}
		out = append(out, loadBalanceRow("rrmp two-phase", tc.name, topo, integrals))

		// Tree baseline on the identical workload and topology.
		tree, err := NewTreeCluster(TreeClusterConfig{Topo: topo, Seed: seed})
		if err != nil {
			return nil, err
		}
		for _, node := range tree.Nodes {
			node.StartAcks()
		}
		for i := 0; i < msgs; i++ {
			i := i
			tree.Sim.At(time.Duration(i)*10*time.Millisecond, func() { tree.Sender.Publish(payloadBuf[:sizes[i]]) })
		}
		tree.Sim.RunUntil(horizon)
		integrals = make([]float64, topo.NumNodes())
		for id, node := range tree.Nodes {
			if node.Buffer() != nil {
				integrals[id] = node.Buffer().ByteOccupancyIntegral(tree.Sim.Now())
			}
		}
		out = append(out, loadBalanceRow("rmtp repair-server", tc.name, topo, integrals))
	}
	return out, nil
}

// loadBalanceRow reduces per-member byte-time integrals (indexed by dense
// NodeID) to the A2 row: global mean/max/imbalance, and the worst member's
// share of its own region's total.
func loadBalanceRow(name, topoName string, topo *topology.Topology, integrals []float64) LoadBalance {
	row := LoadBalance{Protocol: name, Topology: topoName}
	var sum float64
	regionSums := make([]float64, topo.NumRegions())
	for id, v := range integrals {
		sum += v
		if v > row.MaxIntegral {
			row.MaxIntegral = v
		}
		regionSums[topo.RegionOf(topology.NodeID(id))] += v
	}
	if len(integrals) > 0 {
		row.MeanIntegral = sum / float64(len(integrals))
	}
	if row.MeanIntegral > 0 {
		row.Imbalance = row.MaxIntegral / row.MeanIntegral
	}
	for id, v := range integrals {
		if rs := regionSums[topo.RegionOf(topology.NodeID(id))]; rs > 0 {
			if share := v / rs; share > row.MaxShare {
				row.MaxShare = share
			}
		}
	}
	return row
}

// SearchImplosion is one row of ablation A3.
type SearchImplosion struct {
	Mode    string
	Holders int
	// RepliesPerEpisode is the mean number of repair transmissions the
	// remote requester's query generated (1.0 is ideal).
	RepliesPerEpisode float64
}

// AblationSearchImplosion (A3) reproduces §3.3's argument for the random
// walk: when a remote request arrives for a message that one member
// discarded but many members still buffer, a multicast query with back-off
// proportional to C triggers a storm of replies, while the random search
// transmits ~1 repair regardless of the holder count.
func AblationSearchImplosion(runs int, seed uint64) ([]SearchImplosion, error) {
	var out []SearchImplosion
	for _, holders := range []int{10, 50, 90} {
		for _, mode := range []rrmp.SearchMode{rrmp.SearchRandomWalk, rrmp.SearchMulticastQuery} {
			total := 0.0
			for run := 0; run < runs; run++ {
				replies, err := implosionRun(mode, holders, seed+uint64(run)*31337)
				if err != nil {
					return nil, err
				}
				total += float64(replies)
			}
			name := "random-walk"
			if mode == rrmp.SearchMulticastQuery {
				name = "multicast-query"
			}
			out = append(out, SearchImplosion{
				Mode:              name,
				Holders:           holders,
				RepliesPerEpisode: total / float64(runs),
			})
		}
	}
	return out, nil
}

func implosionRun(mode rrmp.SearchMode, holders int, seed uint64) (int64, error) {
	const n = 100
	topo, err := topology.Chain(n, 1)
	if err != nil {
		return 0, err
	}
	params := rrmp.DefaultParams()
	params.SearchMode = mode
	params.LongTermTTL = 0
	c, err := NewCluster(ClusterConfig{Topo: topo, Params: params, Seed: seed})
	if err != nil {
		return 0, err
	}
	id := wire.MessageID{Source: topo.Sender(), Seq: 1}
	region := topo.Members(0)
	perm := c.Root.Perm(len(region))
	holderSet := make(map[topology.NodeID]bool, holders)
	for i := 0; i < holders; i++ {
		holderSet[region[perm[i]]] = true
	}
	var target topology.NodeID = topology.NoNode
	for _, n := range region {
		if holderSet[n] {
			c.Members[n].InjectLongTerm(id, []byte("a3"))
		} else {
			c.Members[n].InjectDiscarded(id)
			if target == topology.NoNode {
				target = n
			}
		}
	}
	requester := topo.MemberAt(1, 0)
	c.Net.Unicast(requester, target, wire.Message{
		Type: wire.TypeRemoteRequest, From: requester, ID: id, Origin: requester,
	})
	c.Sim.RunUntil(10 * time.Second)
	// Count repairs that actually reached (or were sent toward) the
	// requester: received + in-flight-equivalents are both counted at the
	// senders to include implosion traffic the requester dedupes.
	var replies int64
	for _, node := range region {
		replies += c.Members[node].Metrics().RepairsSent.Value()
	}
	return replies, nil
}

// ChurnResult is one row of ablation A4.
type ChurnResult struct {
	Mode       string
	Recovered  bool
	RecoveryMs float64
	// Handoffs is the number of buffer transfers the departure triggered.
	Handoffs int64
}

// AblationChurn (A4) demonstrates §3.2's leave protocol: when every
// long-term bufferer departs gracefully, handoffs keep the message
// recoverable; when they all crash, a straggler's loss becomes permanent.
func AblationChurn(seed uint64) ([]ChurnResult, error) {
	var out []ChurnResult
	for _, graceful := range []bool{true, false} {
		res, err := churnRun(graceful, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

func churnRun(graceful bool, seed uint64) (ChurnResult, error) {
	const n, bufferers = 50, 3
	topo, err := topology.SingleRegion(n)
	if err != nil {
		return ChurnResult{}, err
	}
	params := rrmp.DefaultParams()
	params.LongTermTTL = 0
	params.MaxLocalTries = 32
	c, err := NewCluster(ClusterConfig{Topo: topo, Params: params, Seed: seed})
	if err != nil {
		return ChurnResult{}, err
	}
	id := wire.MessageID{Source: topo.Sender(), Seq: 1}
	region := topo.Members(0)
	straggler := region[n-1] // never received the message
	holderSet := map[topology.NodeID]bool{}
	perm := c.Root.Perm(n - 1) // exclude the straggler index
	for i := 0; i < bufferers; i++ {
		holderSet[region[perm[i]]] = true
	}
	for _, node := range region[:n-1] {
		if holderSet[node] {
			c.Members[node].InjectLongTerm(id, []byte("a4"))
		} else {
			c.Members[node].InjectDiscarded(id)
		}
	}

	// All bufferers depart at t = 0, in ascending node order: events at
	// the same instant run in insertion order, so iterating the holder
	// set directly would leak map order into the handoff sequence (the
	// PR 1 bug class; caught by the maporder analyzer).
	for _, node := range region[:n-1] {
		if !holderSet[node] {
			continue
		}
		node := node
		if graceful {
			c.Sim.At(0, func() { c.Members[node].Leave() })
		} else {
			c.Sim.At(0, func() { c.Net.SetDown(node, true) })
		}
	}
	// The straggler detects its loss shortly after.
	c.Sim.At(100*time.Millisecond, func() { c.Members[straggler].StartRecovery(id) })
	c.Sim.RunUntil(20 * time.Second)

	res := ChurnResult{Mode: map[bool]string{true: "graceful-handoff", false: "crash"}[graceful]}
	if c.Members[straggler].HasReceived(id) {
		res.Recovered = true
		// Latency from the recovery histogram (single loss in this run).
		res.RecoveryMs = c.Members[straggler].Metrics().RecoveryLatency.Mean()
	}
	for node := range holderSet {
		res.Handoffs += c.Members[node].Metrics().HandoffsSent.Value()
	}
	return res, nil
}

// LambdaPoint is one row of ablation A5.
type LambdaPoint struct {
	Lambda float64
	// RemoteRequests is the mean number of remote requests per region-wide
	// loss (the duplicate-control metric; the paper designs for λ).
	RemoteRequests float64
	// RecoveryMs is the mean time until the entire child region holds the
	// message.
	RecoveryMs float64
}

// AblationLambda (A5) sweeps the remote-recovery aggressiveness λ (§2.2):
// larger λ repairs a region-wide loss faster but sends more duplicate
// remote requests.
func AblationLambda(lambdas []float64, runs int, seed uint64) ([]LambdaPoint, error) {
	out := make([]LambdaPoint, 0, len(lambdas))
	for _, lambda := range lambdas {
		var reqSum, recSum float64
		for run := 0; run < runs; run++ {
			reqs, recMs, err := lambdaRun(lambda, seed+uint64(run)*7919)
			if err != nil {
				return nil, err
			}
			reqSum += reqs
			recSum += recMs
		}
		out = append(out, LambdaPoint{
			Lambda:         lambda,
			RemoteRequests: reqSum / float64(runs),
			RecoveryMs:     recSum / float64(runs),
		})
	}
	return out, nil
}

func lambdaRun(lambda float64, seed uint64) (reqs, recoveryMs float64, err error) {
	topo, err := topology.Chain(20, 50)
	if err != nil {
		return 0, 0, err
	}
	params := rrmp.DefaultParams()
	params.Lambda = lambda
	params.LongTermTTL = 0
	c, err := NewCluster(ClusterConfig{Topo: topo, Params: params, Seed: seed})
	if err != nil {
		return 0, 0, err
	}
	id := wire.MessageID{Source: topo.Sender(), Seq: 1}
	// Parents hold pinned long-term copies: this experiment measures the
	// child region's remote-recovery behaviour, not parent-side buffer
	// management (whose rare zero-bufferer outcome is Figure 4's subject).
	for _, node := range topo.Members(0) {
		c.Members[node].InjectLongTerm(id, []byte("a5"))
	}
	var lastAt time.Duration
	delivered := 0
	for _, node := range topo.Members(1) {
		node := node
		c.Members[node].SetDeliverHook(func(got wire.MessageID, at time.Duration) {
			if got == id {
				delivered++
				lastAt = at
			}
		})
		c.Members[node].StartRecovery(id)
	}
	c.Sim.RunUntil(30 * time.Second)
	if delivered != 50 {
		return 0, 0, fmt.Errorf("runner: lambda run delivered %d/50", delivered)
	}
	var rr int64
	for _, node := range topo.Members(1) {
		rr += c.Members[node].Metrics().RemoteReqSent.Value()
	}
	return float64(rr), float64(lastAt) / 1e6, nil
}

// OverheadResult is one row of ablation A6.
type OverheadResult struct {
	Scheme string
	// DigestBytes is the stability-detection history traffic (zero for
	// RRMP: §3.1's scheme "does not introduce extra traffic").
	DigestBytes int64
	// ControlBytes is all non-DATA traffic (requests, repairs, sessions,
	// digests).
	ControlBytes int64
	// BufferIntegral is total message-seconds across members.
	BufferIntegral float64
	// DeliveryRatio is distinct deliveries / (members × messages).
	DeliveryRatio float64
}

// AblationStabilityTraffic (A6) compares the paper's implicit feedback
// against an explicit stability-detection deployment (history digests every
// 100 ms, buffer-all until stable) on the same lossy workload.
func AblationStabilityTraffic(seed uint64) ([]OverheadResult, error) {
	const (
		n       = 50
		msgs    = 30
		horizon = 5 * time.Second
	)
	var out []OverheadResult

	for _, scheme := range []string{"rrmp two-phase", "stability-detection"} {
		topo, err := topology.SingleRegion(n)
		if err != nil {
			return nil, err
		}
		params := rrmp.DefaultParams()
		params.LongTermTTL = time.Second
		cfg := ClusterConfig{
			Topo:   topo,
			Params: params,
			Seed:   seed,
			Loss: &netsim.BernoulliLoss{
				P:    0.05,
				Only: map[wire.Type]bool{wire.TypeData: true},
				Rng:  rng.New(seed ^ 0x5afe),
			},
		}
		if scheme == "stability-detection" {
			cfg.Policy = func(topology.View, rrmp.Params) core.Policy { return core.BufferAll{} }
		}
		c, err := NewCluster(cfg)
		if err != nil {
			return nil, err
		}

		var detectors []*stability.Detector
		if scheme == "stability-detection" {
			root := rng.New(seed ^ 0xd1685)
			for _, node := range c.All {
				node := node
				m := c.Members[node]
				view, err := topo.ViewOf(node)
				if err != nil {
					return nil, err
				}
				det := stability.New(stability.Config{
					View:        view,
					Source:      topo.Sender(),
					Sched:       c.Sim,
					Rng:         root.Split(memberStreamBase + uint64(node)),
					Send:        func(to topology.NodeID, msg wire.Message) { c.Net.Unicast(node, to, msg) },
					LocalPrefix: func() uint64 { return m.Prefix(topo.Sender()) },
					OnStable: func(seq uint64) {
						m.Buffer().Remove(wire.MessageID{Source: topo.Sender(), Seq: seq}, core.EvictStable)
					},
				})
				detectors = append(detectors, det)
				// Route HISTORY PDUs to the detector, everything else to
				// the member.
				c.Net.Register(node, func(p netsim.Packet) {
					if p.Msg.Type == wire.TypeHistory {
						det.Receive(p.Msg)
						return
					}
					m.Receive(p.From, p.Msg)
				})
				det.Start()
			}
		}

		c.Sender.StartSessions()
		for i := 0; i < msgs; i++ {
			i := i
			c.Sim.At(time.Duration(i)*20*time.Millisecond, func() { c.Sender.Publish(make([]byte, 64)) })
		}
		c.Sim.RunUntil(horizon)
		for _, det := range detectors {
			det.Stop()
		}

		row := OverheadResult{Scheme: scheme}
		row.DigestBytes = c.Net.Stats().BytesSent(wire.TypeHistory)
		row.ControlBytes = c.Net.Stats().TotalBytes() - c.Net.Stats().BytesSent(wire.TypeData)
		var delivered int64
		for _, m := range c.Members {
			delivered += m.Metrics().Delivered.Value()
			row.BufferIntegral += m.Buffer().OccupancyIntegral(c.Sim.Now())
		}
		row.DeliveryRatio = float64(delivered) / float64(n*msgs)
		out = append(out, row)
	}
	return out, nil
}

// This file emits RRMP sweep cells; the metrickey analyzer checks that
// only keys gated to rrmp (or both) appear here.
//
//metrics:scope rrmp
package runner

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/netsim"
	policyspec "repro/internal/policy"
	"repro/internal/rng"
	"repro/internal/rrmp"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
	"repro/internal/workload"
)

// Churn and loss draw from dedicated streams split off the trial seed with
// labels far above any node id (member streams use labels 1..NumNodes).
const (
	lossStreamLabel = 0xfeed1055
	// ChurnStreamLabel derives the churn stream; exported so rrmp-sim's
	// single-run mode schedules the identical leave sequence for a seed.
	ChurnStreamLabel = 0xfeedc4a2
	// CrashStreamLabel derives the crash-fault stream, independent of the
	// churn stream so adding crashes never perturbs the leave sequence.
	CrashStreamLabel = 0xfeedc4a5
	// PayloadStreamLabel derives the payload-size stream for randomized
	// payload models. Fixed-size scenarios (including the historic
	// 256-byte default) never touch it, so pre-axis runs replay
	// byte-identically.
	PayloadStreamLabel = 0xfeed9a7d
	// memberStreamBase anchors the per-member counter-hash family: member
	// node draws from Split(memberStreamBase + node), i.e. labels
	// 1..NumNodes, which is why the dedicated streams above sit far
	// higher.
	memberStreamBase = 1
	// clusterRootStreamLabel derives the cluster's own root stream (the
	// member family is split off it, keeping protocol draws independent
	// of harness draws made directly on the trial seed).
	clusterRootStreamLabel = 0xaaaa
)

// PayloadSizesFor draws the n per-publish payload sizes for a scenario's
// size model around the mean (0 = the historic 256 bytes). The second
// result is the largest drawn size, so drivers can serve every publish
// from one shared backing buffer instead of allocating per message.
func PayloadSizesFor(model string, mean, n int, seed uint64) ([]int, int, error) {
	m, err := workload.NewSizeModel(model, mean)
	if err != nil {
		return nil, 0, err
	}
	var r *rng.Source
	if !workload.Deterministic(m) {
		r = rng.New(seed).Split(PayloadStreamLabel)
	}
	sizes := workload.Sizes(m, n, r)
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	return sizes, max, nil
}

// ScheduleChurn draws Poisson-timed events on distinct random candidates
// at the given rate (events/second) until the horizon, invoking schedule
// for each (time, victim) pair, and returns how many it scheduled. It
// consumes candidates without replacement, so no member is picked twice.
// rrmp-sim's single-run mode and RunScenario share this construction for
// graceful leaves (ChurnStreamLabel) and crash faults (CrashStreamLabel).
func ScheduleChurn(r *rng.Source, rate float64, horizon time.Duration,
	candidates []topology.NodeID, schedule func(at time.Duration, victim topology.NodeID)) int {
	if rate <= 0 {
		return 0
	}
	pool := append([]topology.NodeID(nil), candidates...)
	leaves := 0
	at := time.Duration(r.ExpFloat64(rate) * float64(time.Second))
	for at < horizon && len(pool) > 0 {
		i := r.Intn(len(pool))
		victim := pool[i]
		pool[i] = pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		schedule(at, victim)
		leaves++
		at += time.Duration(r.ExpFloat64(rate) * float64(time.Second))
	}
	return leaves
}

// PartitionClasses splits the topology into two halves for a partition
// cut. With multiple regions the cut is region-granular: the first
// ceil(R/2) regions (the sender's side) form class 0, the rest class 1.
// A single-region topology splits its member list down the middle, with
// the sender's half in class 0. The same topology always yields the same
// cut, so partition scenarios are pure functions of (scenario, seed).
func PartitionClasses(topo *topology.Topology) map[topology.NodeID]int {
	classes := make(map[topology.NodeID]int, topo.NumNodes())
	if topo.NumRegions() > 1 {
		cut := (topo.NumRegions() + 1) / 2
		for r := 0; r < topo.NumRegions(); r++ {
			side := 0
			if r >= cut {
				side = 1
			}
			for _, n := range topo.Members(topology.RegionID(r)) {
				classes[n] = side
			}
		}
		return classes
	}
	members := topo.Members(0)
	for i, n := range members {
		if i >= (len(members)+1)/2 {
			classes[n] = 1
		}
	}
	return classes
}

// scenarioLoss builds a scenario's DATA loss model from its dedicated rng
// stream (nil when lossless). Both protocol kernels share it, so a seeded
// cell drops the identical DATA packets under RRMP and RMTP — the common-
// random-numbers design extended to the protocol axis. nNodes sizes the
// hash-mode model's per-sender state.
func scenarioLoss(sc exp.Scenario, seed uint64, nNodes int) (netsim.LossModel, error) {
	if sc.Loss <= 0 {
		return nil, nil
	}
	only := map[wire.Type]bool{wire.TypeData: true}
	switch sc.LossMode {
	case "":
		// Legacy shared-stream models: draws consume one global rng in send
		// order, entangling every sender. Deterministic, but only on a
		// single loop (see effectiveShards).
	case "hash":
		// Per-pair counter-hash streams: shard-safe, so lossy cells can
		// run parallel. Seeded from the trial seed like the legacy stream.
		// Burst cells get the Gilbert–Elliott chain under the same legacy
		// parameterization (PGood=Loss/4, PBad/PGB/PBG fixed), with the
		// chain advanced by hash draws instead of the shared rng.
		hashSeed := rng.New(seed).Split(lossStreamLabel).Uint64()
		if sc.Burst {
			return netsim.NewHashBurstLoss(hashSeed,
				sc.Loss/4, 0.9, 0.02, 0.2, nNodes, only), nil
		}
		return netsim.NewHashLoss(hashSeed, sc.Loss, nNodes, only), nil
	default:
		return nil, fmt.Errorf("runner: unknown scenario loss mode %q", sc.LossMode)
	}
	lossRng := rng.New(seed).Split(lossStreamLabel)
	if sc.Burst {
		return &netsim.GilbertElliott{
			PGood: sc.Loss / 4, PBad: 0.9,
			PGB: 0.02, PBG: 0.2,
			Only: only, Rng: lossRng,
		}, nil
	}
	return &netsim.BernoulliLoss{P: sc.Loss, Only: only, Rng: lossRng}, nil
}

// effectiveShards gates a scenario's Shards knob on shard safety: the
// legacy loss models draw from one rng stream in global send order, which
// only a single loop reproduces, so scenarios using them fall back to
// serial execution (where byte-identity to the serial engine is trivial).
// Lossless and hash-mode scenarios — Bernoulli (HashLoss) and burst
// (HashBurstLoss) alike — run genuinely parallel. The rmtp kernel is its
// own serial baseline and never shards.
func effectiveShards(sc exp.Scenario) int {
	if sc.Shards <= 1 {
		return 1
	}
	if sc.Loss > 0 && sc.LossMode != "hash" {
		return 1
	}
	return sc.Shards
}

// faultInjector abstracts one protocol's fault operations so both kernels
// schedule the identical fault timeline: the common-random-numbers design
// across the protocol axis is only valid while the scheduling code is
// literally shared, not merely similar.
type faultInjector struct {
	// excused reports whether the victim already left or crashed (a
	// member drawn by both Poisson streams only has its first fault
	// injected, and faults are counted at execution time).
	excused func(victim topology.NodeID) bool
	leave   func(victim topology.NodeID)
	crash   func(victim topology.NodeID)
	recover func(victim topology.NodeID)
}

// scheduleScenarioFaults schedules the scenario's churn, crash/recover and
// partition timelines on the simulator from the shared dedicated streams
// (ChurnStreamLabel, CrashStreamLabel), exactly as both protocol kernels
// require: churn events first, then crash events (each with its optional
// recovery), then the partition cut/heal pair. protected lists the nodes
// faults must never hit — the publisher set (the sender alone in legacy
// cells, so their candidate lists keep their historical order); the sender
// is excluded regardless. The returned counters are live — read them
// after the run.
func scheduleScenarioFaults(c sim.Engine, net *netsim.Network, topo *topology.Topology,
	all []topology.NodeID, sc exp.Scenario, seed uint64,
	protected []topology.NodeID, inj faultInjector) (leaves, crashes *int) {
	leaves, crashes = new(int), new(int)
	var candidates []topology.NodeID
	if sc.Churn > 0 || sc.Crash > 0 {
		shielded := make(map[topology.NodeID]bool, len(protected)+1)
		shielded[topo.Sender()] = true
		for _, p := range protected {
			shielded[p] = true
		}
		candidates = make([]topology.NodeID, 0, topo.NumNodes()-1)
		for _, n := range all {
			if !shielded[n] {
				candidates = append(candidates, n)
			}
		}
	}
	if sc.Churn > 0 {
		ScheduleChurn(rng.New(seed).Split(ChurnStreamLabel), sc.Churn, sc.Horizon,
			candidates, func(at time.Duration, victim topology.NodeID) {
				c.At(at, func() {
					if inj.excused(victim) {
						return
					}
					inj.leave(victim)
					*leaves++
				})
			})
	}
	if sc.Crash > 0 {
		ScheduleChurn(rng.New(seed).Split(CrashStreamLabel), sc.Crash, sc.Horizon,
			candidates, func(at time.Duration, victim topology.NodeID) {
				c.At(at, func() {
					if inj.excused(victim) {
						return
					}
					inj.crash(victim)
					*crashes++
				})
				if sc.CrashRecover > 0 {
					c.At(at+sc.CrashRecover, func() { inj.recover(victim) })
				}
			})
	}
	if sc.PartitionAt > 0 {
		classes := PartitionClasses(topo)
		c.At(sc.PartitionAt, func() { net.SetPartition(classes) })
		if sc.PartitionDur > 0 {
			c.At(sc.PartitionAt+sc.PartitionDur, func() { net.ClearPartition() })
		}
	}
	return leaves, crashes
}

// reachMetrics fills the delivery/reach keys both protocol kernels share:
// overall delivery ratio, the worst message's reach, and the
// survivor-scoped variants (crashed and departed members are excused, so
// these read as the reliability guarantee under the fault threat model).
// msgs is the publish-count denominator: the scenario's nominal Msgs for
// legacy cells (the historic contract), the timeline's actual publish
// count for workload cells.
func reachMetrics(out map[string]float64, msgs, nNodes, survivors int,
	delivered int64, ids []wire.MessageID,
	received func(node topology.NodeID, id wire.MessageID) bool,
	survivor func(node topology.NodeID) bool) {
	if msgs <= 0 {
		return
	}
	out[MKDeliveryRatio] = float64(delivered) / float64(nNodes*msgs)
	minReach := nNodes
	survMinReach := survivors
	var survDelivered int64
	for _, id := range ids {
		got, survGot := 0, 0
		for node := topology.NodeID(0); int(node) < nNodes; node++ {
			if !received(node, id) {
				continue
			}
			got++
			if survivor(node) {
				survGot++
			}
		}
		if got < minReach {
			minReach = got
		}
		if survGot < survMinReach {
			survMinReach = survGot
		}
		survDelivered += int64(survGot)
	}
	out[MKMinReachFrac] = float64(minReach) / float64(nNodes)
	if survivors > 0 {
		out[MKSurvivorDeliveryRatio] = float64(survDelivered) / float64(survivors*len(ids))
		out[MKSurvivorMinReachFrac] = float64(survMinReach) / float64(survivors)
	}
}

// RunScenario builds one cluster for the scenario and runs its workload to
// the horizon, returning the cell metrics exp aggregates. It is the
// ScenarioFunc the sweep subsystem runs; everything it does is a pure
// function of (sc, seed), which is what makes sweep aggregates reproducible
// at any parallelism. Scenario.Protocol picks the kernel: the RRMP engine
// (default) or the RMTP repair-server baseline (runTreeScenario).
func RunScenario(sc exp.Scenario, seed uint64) (map[string]float64, error) {
	return runScenario(sc, seed, nil)
}

// runScenario is the shared kernel dispatcher. timeline, when non-nil,
// overrides the scenario's generated publish timeline (the trace-replay
// path); nil means "materialize from the scenario" (TimelineFor).
func runScenario(sc exp.Scenario, seed uint64, timeline workload.Timeline) (map[string]float64, error) {
	switch sc.Protocol {
	case "", "rrmp":
		// The paper's protocol, below.
	case "rmtp":
		return runTreeScenario(sc, seed, timeline)
	default:
		return nil, fmt.Errorf("runner: unknown scenario protocol %q", sc.Protocol)
	}
	topo, err := scenarioTopology(sc)
	if err != nil {
		return nil, fmt.Errorf("runner: scenario topology: %w", err)
	}

	loss, err := scenarioLoss(sc, seed, topo.NumNodes())
	if err != nil {
		return nil, err
	}

	hold := sc.FixedHold
	if hold <= 0 {
		hold = 500 * time.Millisecond
	}
	spec, err := policyspec.Parse(sc.Policy)
	if err != nil {
		return nil, fmt.Errorf("runner: scenario: %w", err)
	}
	policyFn := PolicyFactory(spec, hold)

	params := rrmp.DefaultParams()
	if sc.C > 0 {
		params.C = sc.C
	}
	if sc.Lambda > 0 {
		params.Lambda = sc.Lambda
	}
	if sc.RepairBackoff > 0 {
		params.RepairBackoffMax = sc.RepairBackoff
	}
	// Crash and partition cells run the gossip failure detector so that
	// recovery routes around dead members — as do VoD late-join cells,
	// whose joiners are down for seconds; fault-free cells keep the
	// detector (and its traffic) off and stay comparable to old runs.
	params.FDEnabled = sc.Crash > 0 || sc.PartitionAt > 0 ||
		(sc.Workload != nil && sc.Workload.LateJoinFrac > 0)
	params.ByteBudget = sc.ByteBudget
	c, err := NewCluster(ClusterConfig{
		Topo:   topo,
		Params: params,
		Seed:   seed,
		Loss:   loss,
		Policy: policyFn,
		Shards: effectiveShards(sc),
	})
	if err != nil {
		return nil, fmt.Errorf("runner: scenario cluster: %w", err)
	}

	tl := timeline
	if tl == nil {
		if tl, _, err = TimelineFor(sc, seed); err != nil {
			return nil, err
		}
	}
	// One sender per publishing client, client 0 on the legacy sender
	// node: RRMP tracks reception per source (Member.sources), so
	// multi-sender publishes flow through the existing machinery — every
	// publisher announces its own TopSeq via sessions.
	pubs, err := publisherNodes(topo, tl.Clients())
	if err != nil {
		return nil, err
	}
	senders := make([]*rrmp.Sender, len(pubs))
	for i, node := range pubs {
		if node == topo.Sender() {
			senders[i] = c.Sender
		} else {
			senders[i] = rrmp.NewSender(c.Members[node])
		}
		senders[i].StartSessions()
	}

	// VoD late joiners crash (and drop off the network) at t=0, before any
	// publish, then recover at their staggered join times with the whole
	// prefix to catch up on.
	joiners := lateJoinersFor(topo, sc.Workload, pubs)
	for _, j := range joiners {
		j := j
		c.Engine.At(0, func() {
			c.Members[j.node].Crash()
			c.Net.SetDown(j.node, true)
		})
		c.Engine.At(j.at, func() {
			c.Net.SetDown(j.node, false)
			c.Members[j.node].Recover()
		})
	}

	ids := make([]wire.MessageID, 0, len(tl))
	// One backing buffer serves every publish — each message is the
	// prefix of its drawn size, so steady-state publishing allocates
	// nothing. Every member's buffer entry aliases this slice; the
	// engine never mutates payloads (pinned by a property test), and
	// Params.CopyOnStore exists for callers that must.
	payloadBuf := make([]byte, tl.MaxBytes())
	for i := range tl {
		ev := tl[i]
		c.Engine.At(ev.At, func() {
			ids = append(ids, senders[ev.Client].Publish(payloadBuf[:ev.Bytes]))
		})
	}

	// Churn (§3.2's handoff under load), crash faults (§3.3's search
	// recovery and the failure detector, with optional per-victim
	// recovery) and the partition timeline all come from the shared
	// scheduler, so the rmtp kernel injects the identical fault sequence.
	leaves, crashes := scheduleScenarioFaults(c.Engine, c.Net, topo, c.All, sc, seed, pubs, faultInjector{
		excused: func(v topology.NodeID) bool { return c.Members[v].Left() || c.Members[v].Crashed() },
		leave:   func(v topology.NodeID) { c.Members[v].Leave() },
		crash: func(v topology.NodeID) {
			c.Members[v].Crash()
			c.Net.SetDown(v, true)
		},
		recover: func(v topology.NodeID) {
			c.Net.SetDown(v, false)
			c.Members[v].Recover()
		},
	})

	c.Engine.RunUntil(sc.Horizon)

	n := topo.NumNodes()
	out := map[string]float64{
		MKLeaves:      float64(*leaves),
		MKPacketsSent: float64(c.Net.Stats().TotalSent()),
		MKBytesSent:   float64(c.Net.Stats().TotalBytes()),
		MKEvents:      float64(c.Engine.Processed()),
	}
	var delivered, duplicates, localReq, remoteReq, repairs, regional, handoffs int64
	var searches, searchFailures, suspects, unrecoverable int64
	var bufferIntegral, byteIntegral float64
	var peak, peakBytes, longTerm, survivors int
	var pressureEvictions, budgetDenials int
	var recSum, recN, bufSum, bufN, rerecSum, rerecN float64
	for _, m := range c.Members {
		mm := m.Metrics()
		delivered += mm.Delivered.Value()
		duplicates += mm.Duplicates.Value()
		localReq += mm.LocalReqSent.Value()
		remoteReq += mm.RemoteReqSent.Value()
		repairs += mm.RepairsSent.Value()
		regional += mm.RegionalMulticasts.Value()
		handoffs += mm.HandoffsSent.Value()
		searches += mm.SearchesStarted.Value()
		searchFailures += mm.SearchFailures.Value()
		suspects += mm.Suspects.Value()
		bufferIntegral += m.Buffer().OccupancyIntegral(c.Engine.Now())
		byteIntegral += m.Buffer().ByteOccupancyIntegral(c.Engine.Now())
		if p := m.Buffer().PeakLen(); p > peak {
			peak = p
		}
		if p := m.Buffer().PeakBytes(); p > peakBytes {
			peakBytes = p
		}
		pressureEvictions += m.Buffer().EvictedCount(core.EvictPressure)
		budgetDenials += m.Buffer().DeniedCount()
		longTerm += m.Buffer().LongTermCount()
		recSum += mm.RecoveryLatency.Mean() * float64(mm.RecoveryLatency.N())
		recN += float64(mm.RecoveryLatency.N())
		bufSum += mm.BufferingTime.Mean() * float64(mm.BufferingTime.N())
		bufN += float64(mm.BufferingTime.N())
		rerecSum += mm.ReRecoveryLatency.Mean() * float64(mm.ReRecoveryLatency.N())
		rerecN += float64(mm.ReRecoveryLatency.N())
		if !m.Crashed() && !m.Left() {
			survivors++
			unrecoverable += mm.Unrecoverable.Value()
		}
	}
	msgs := sc.Msgs
	if sc.Workload != nil {
		msgs = len(ids)
	}
	reachMetrics(out, msgs, n, survivors, delivered, ids,
		func(node topology.NodeID, id wire.MessageID) bool { return c.Members[node].HasReceived(id) },
		func(node topology.NodeID) bool { return !c.Members[node].Crashed() && !c.Members[node].Left() })
	out[MKDuplicates] = float64(duplicates)
	out[MKLocalRequests] = float64(localReq)
	out[MKRemoteRequests] = float64(remoteReq)
	out[MKRepairs] = float64(repairs)
	out[MKRegionalMulticasts] = float64(regional)
	out[MKHandoffs] = float64(handoffs)
	out[MKSearches] = float64(searches)
	out[MKSearchFailures] = float64(searchFailures)
	out[MKBufferIntegralMsgSec] = bufferIntegral
	out[MKPeakBuffered] = float64(peak)
	out[MKLongTermEntries] = float64(longTerm)
	// The byte-currency keys appear only in cells that engage the payload
	// or budget axes (or a size-drawing workload): pre-axis cells must
	// keep the exact key set the committed golden reports pin byte for
	// byte. (Their values are computed either way; for a 256-byte fixed
	// payload they are just the message metrics × 256.)
	if workloadBytesEngaged(sc) {
		out[MKBufferIntegralByteSec] = byteIntegral
		out[MKPeakBufferedBytes] = float64(peakBytes)
		out[MKPressureEvictions] = float64(pressureEvictions)
		out[MKBudgetDenials] = float64(budgetDenials)
	}
	workloadMetrics(out, sc, len(ids), joiners)
	out[MKCrashes] = float64(*crashes)
	out[MKSuspects] = float64(suspects)
	out[MKUnrecoverable] = float64(unrecoverable)
	out[MKPartitionDrops] = float64(c.Net.Stats().PartitionDrops())
	if recN > 0 {
		out[MKMeanRecoveryMs] = recSum / recN
	}
	if bufN > 0 {
		out[MKMeanBufferingMs] = bufSum / bufN
	}
	if rerecN > 0 {
		out[MKMeanReRecoveryMs] = rerecSum / rerecN
	}
	return out, nil
}

// RunSweep expands sw and runs every (cell, trial) pair through the exp
// worker pool with RunScenario as the kernel.
func RunSweep(o exp.Options, sw exp.Sweep) (exp.Report, error) {
	return RunSweeps(o, sw)
}

// execNotes summarizes the cells that cannot honor a requested -shards
// width (see effectiveShards): instead of failing or silently lying about
// the execution, the report carries a top-level note. The note is
// execution metadata — it never appears at the default width, so the
// committed default-shards reports keep their bytes.
func execNotes(sweeps []exp.Sweep) string {
	shards, legacy, rmtp, total := 0, 0, 0, 0
	for _, sw := range sweeps {
		if sw.Shards > shards {
			shards = sw.Shards
		}
		cells := sw.Expand()
		total += len(cells)
		if sw.Shards <= 1 {
			continue
		}
		for _, sc := range cells {
			switch {
			case sc.Protocol == "rmtp":
				rmtp++
			case effectiveShards(sc) == 1:
				legacy++
			}
		}
	}
	if shards <= 1 || (legacy == 0 && rmtp == 0) {
		return ""
	}
	note := fmt.Sprintf("shards=%d requested; %d of %d cells ran serial (", shards, legacy+rmtp, total)
	sep := ""
	if legacy > 0 {
		note += fmt.Sprintf("%d legacy-stream loss — use LossMode \"hash\" for shard-safe loss", legacy)
		sep = "; "
	}
	if rmtp > 0 {
		note += fmt.Sprintf("%s%d rmtp — the serial baseline never shards", sep, rmtp)
	}
	return note + "); aggregates are byte-identical either way"
}

package runner

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/rrmp"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Churn and loss draw from dedicated streams split off the trial seed with
// labels far above any node id (member streams use labels 1..NumNodes).
const (
	lossStreamLabel = 0xfeed1055
	// ChurnStreamLabel derives the churn stream; exported so rrmp-sim's
	// single-run mode schedules the identical leave sequence for a seed.
	ChurnStreamLabel = 0xfeedc4a2
)

// ScheduleChurn draws Poisson-timed graceful leaves of distinct random
// candidates at the given rate (leaves/second) until the horizon, invoking
// schedule for each (time, victim) pair, and returns how many it scheduled.
// It consumes candidates without replacement, so no member leaves twice.
// rrmp-sim's single-run mode and RunScenario share this construction.
func ScheduleChurn(r *rng.Source, rate float64, horizon time.Duration,
	candidates []topology.NodeID, schedule func(at time.Duration, victim topology.NodeID)) int {
	if rate <= 0 {
		return 0
	}
	pool := append([]topology.NodeID(nil), candidates...)
	leaves := 0
	at := time.Duration(r.ExpFloat64(rate) * float64(time.Second))
	for at < horizon && len(pool) > 0 {
		i := r.Intn(len(pool))
		victim := pool[i]
		pool[i] = pool[len(pool)-1]
		pool = pool[:len(pool)-1]
		schedule(at, victim)
		leaves++
		at += time.Duration(r.ExpFloat64(rate) * float64(time.Second))
	}
	return leaves
}

// RunScenario builds one cluster for the scenario and runs its workload to
// the horizon, returning the cell metrics exp aggregates. It is the
// ScenarioFunc the sweep subsystem runs; everything it does is a pure
// function of (sc, seed), which is what makes sweep aggregates reproducible
// at any parallelism.
func RunScenario(sc exp.Scenario, seed uint64) (map[string]float64, error) {
	var (
		topo *topology.Topology
		err  error
	)
	if sc.Star {
		topo, err = topology.Star(sc.Regions...)
	} else {
		topo, err = topology.Chain(sc.Regions...)
	}
	if err != nil {
		return nil, fmt.Errorf("runner: scenario topology: %w", err)
	}

	var loss netsim.LossModel
	if sc.Loss > 0 {
		only := map[wire.Type]bool{wire.TypeData: true}
		lossRng := rng.New(seed).Split(lossStreamLabel)
		if sc.Burst {
			loss = &netsim.GilbertElliott{
				PGood: sc.Loss / 4, PBad: 0.9,
				PGB: 0.02, PBG: 0.2,
				Only: only, Rng: lossRng,
			}
		} else {
			loss = &netsim.BernoulliLoss{P: sc.Loss, Only: only, Rng: lossRng}
		}
	}

	hold := sc.FixedHold
	if hold <= 0 {
		hold = 500 * time.Millisecond
	}
	var policy func(view topology.View, p rrmp.Params) core.Policy
	switch sc.Policy {
	case "", "two-phase":
		policy = nil // the member builds the paper's policy itself
	case "fixed":
		policy = func(topology.View, rrmp.Params) core.Policy {
			return &core.FixedHold{D: hold}
		}
	case "all":
		policy = func(topology.View, rrmp.Params) core.Policy { return core.BufferAll{} }
	case "hash":
		policy = func(view topology.View, p rrmp.Params) core.Policy {
			region := append([]topology.NodeID{view.Self}, view.RegionPeers...)
			return core.NewHashElect(p.IdleThreshold, int(p.C), view.Self, region, p.LongTermTTL)
		}
	default:
		return nil, fmt.Errorf("runner: unknown scenario policy %q", sc.Policy)
	}

	params := rrmp.DefaultParams()
	if sc.C > 0 {
		params.C = sc.C
	}
	if sc.Lambda > 0 {
		params.Lambda = sc.Lambda
	}
	if sc.RepairBackoff > 0 {
		params.RepairBackoffMax = sc.RepairBackoff
	}
	c, err := NewCluster(ClusterConfig{
		Topo:   topo,
		Params: params,
		Seed:   seed,
		Loss:   loss,
		Policy: policy,
	})
	if err != nil {
		return nil, fmt.Errorf("runner: scenario cluster: %w", err)
	}

	c.Sender.StartSessions()
	ids := make([]wire.MessageID, 0, sc.Msgs)
	for i := 0; i < sc.Msgs; i++ {
		i := i
		c.Sim.At(time.Duration(i)*sc.Gap, func() {
			ids = append(ids, c.Sender.Publish(make([]byte, 256)))
		})
	}

	// Churn: Poisson-timed graceful leaves of distinct random non-sender
	// members, exercising §3.2's long-term handoff under load.
	leaves := 0
	if sc.Churn > 0 {
		candidates := make([]topology.NodeID, 0, topo.NumNodes()-1)
		for _, n := range c.All {
			if n != topo.Sender() {
				candidates = append(candidates, n)
			}
		}
		leaves = ScheduleChurn(rng.New(seed).Split(ChurnStreamLabel), sc.Churn, sc.Horizon,
			candidates, func(at time.Duration, victim topology.NodeID) {
				c.Sim.At(at, func() { c.Members[victim].Leave() })
			})
	}

	c.Sim.RunUntil(sc.Horizon)

	n := topo.NumNodes()
	out := map[string]float64{
		"leaves":       float64(leaves),
		"packets_sent": float64(c.Net.Stats().TotalSent()),
		"bytes_sent":   float64(c.Net.Stats().TotalBytes()),
		"events":       float64(c.Sim.Processed()),
	}
	var delivered, duplicates, localReq, remoteReq, repairs, regional, handoffs int64
	var bufferIntegral float64
	var peak, longTerm int
	var recSum, recN, bufSum, bufN float64
	for _, m := range c.Members {
		mm := m.Metrics()
		delivered += mm.Delivered.Value()
		duplicates += mm.Duplicates.Value()
		localReq += mm.LocalReqSent.Value()
		remoteReq += mm.RemoteReqSent.Value()
		repairs += mm.RepairsSent.Value()
		regional += mm.RegionalMulticasts.Value()
		handoffs += mm.HandoffsSent.Value()
		bufferIntegral += m.Buffer().OccupancyIntegral(c.Sim.Now())
		if p := m.Buffer().PeakLen(); p > peak {
			peak = p
		}
		longTerm += m.Buffer().LongTermCount()
		recSum += mm.RecoveryLatency.Mean() * float64(mm.RecoveryLatency.N())
		recN += float64(mm.RecoveryLatency.N())
		bufSum += mm.BufferingTime.Mean() * float64(mm.BufferingTime.N())
		bufN += float64(mm.BufferingTime.N())
	}
	if sc.Msgs > 0 {
		out["delivery_ratio"] = float64(delivered) / float64(n*sc.Msgs)
		minReach := n
		for _, id := range ids {
			if got := c.CountReceived(id); got < minReach {
				minReach = got
			}
		}
		out["min_reach_frac"] = float64(minReach) / float64(n)
	}
	out["duplicates"] = float64(duplicates)
	out["local_requests"] = float64(localReq)
	out["remote_requests"] = float64(remoteReq)
	out["repairs"] = float64(repairs)
	out["regional_multicasts"] = float64(regional)
	out["handoffs"] = float64(handoffs)
	out["buffer_integral_msgsec"] = bufferIntegral
	out["peak_buffered"] = float64(peak)
	out["long_term_entries"] = float64(longTerm)
	if recN > 0 {
		out["mean_recovery_ms"] = recSum / recN
	}
	if bufN > 0 {
		out["mean_buffering_ms"] = bufSum / bufN
	}
	return out, nil
}

// RunSweep expands sw and runs every (cell, trial) pair through the exp
// worker pool with RunScenario as the kernel.
func RunSweep(o exp.Options, sw exp.Sweep) (exp.Report, error) {
	return exp.RunSweep(o, sw, RunScenario)
}

package runner

import (
	"time"

	"repro/internal/exp"
)

// VoDResult is one A7 row: the VoD prefix-push workload under one
// buffering policy.
type VoDResult struct {
	// Policy is the RRMP buffering policy the row ran.
	Policy string
	// Delivery is the survivor delivery ratio (late joiners included —
	// they must recover the whole prefix to count).
	Delivery float64
	// Unrecoverable counts messages stranded with no buffered copy left
	// anywhere a survivor could reach.
	Unrecoverable float64
	// LateJoiners is the number of members that joined late.
	LateJoiners float64
	// CatchupMs is the mean recovery latency. The cell is lossless, so
	// every recovery episode is a late joiner pulling prefix messages —
	// this is the per-message catch-up cost.
	CatchupMs float64
	// ByteIntegral is the group-wide buffering cost in byte-seconds —
	// what holding the prefix for the joiners actually cost.
	ByteIntegral float64
}

// AblationVoDPrefixPush runs A7: the video-on-demand prefix-push scenario
// (one sender pushes a 60-message 1 KiB prefix over ~1.2 s; a quarter of
// the members join between 1.5 s and 2.5 s needing the entire prefix)
// under the two-phase, fixed-hold and buffer-all policies. This is the
// regime the paper's two-phase long-term set exists for: its 60 s
// long-term TTL still holds the prefix when the joiners arrive, while a
// 500 ms fixed hold has evicted it everywhere — stranding the prefix as
// unrecoverable — and buffer-all matches two-phase's reliability at a
// byte-time cost no budget would tolerate.
func AblationVoDPrefixPush(seed uint64) ([]VoDResult, error) {
	base := exp.Scenario{
		Regions: []int{12, 12},
		Msgs:    20, Gap: 20 * time.Millisecond, Horizon: 5 * time.Second,
		Workload: exp.VoDPrefixPush(),
	}
	out := make([]VoDResult, 0, 3)
	for _, policy := range []string{"two-phase", "fixed", "all"} {
		sc := base
		sc.Policy = policy
		m, err := RunScenario(sc, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, VoDResult{
			Policy:        policy,
			Delivery:      m[MKSurvivorDeliveryRatio],
			Unrecoverable: m[MKUnrecoverable],
			LateJoiners:   m[MKLateJoiners],
			CatchupMs:     m[MKMeanRecoveryMs],
			ByteIntegral:  m[MKBufferIntegralByteSec],
		})
	}
	return out, nil
}

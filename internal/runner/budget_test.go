package runner

import (
	"testing"
	"time"

	"repro/internal/exp"
)

// TestRunScenarioByteMetricsConditional pins the metric-emission contract:
// pre-axis scenarios keep exactly their historical key set (the committed
// golden reports depend on it), while payload- or budget-engaged scenarios
// add the four byte-currency keys — and respect the budget.
func TestRunScenarioByteMetricsConditional(t *testing.T) {
	base := exp.Scenario{
		Regions: []int{8},
		Loss:    0.1,
		Policy:  "two-phase",
		Msgs:    10,
		Gap:     20 * time.Millisecond,
		Horizon: 2 * time.Second,
	}
	plain, err := RunScenario(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"buffer_integral_bytesec", "peak_buffered_bytes", "pressure_evictions", "budget_denials"} {
		if _, ok := plain[key]; ok {
			t.Fatalf("pre-axis scenario leaked byte-currency key %q", key)
		}
	}

	budgeted := base
	budgeted.PayloadBytes = 1024
	budgeted.ByteBudget = 4096
	got, err := RunScenario(budgeted, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"buffer_integral_bytesec", "peak_buffered_bytes", "pressure_evictions", "budget_denials"} {
		if _, ok := got[key]; !ok {
			t.Fatalf("budgeted scenario missing byte-currency key %q", key)
		}
	}
	if got["peak_buffered_bytes"] > 4096 {
		t.Fatalf("peak_buffered_bytes %.0f exceeds the 4096 B budget", got["peak_buffered_bytes"])
	}
	if got["pressure_evictions"] == 0 {
		t.Fatal("a 4 KB budget under a 10 KB workload produced no pressure evictions")
	}
	if got["bytes_sent"] <= plain["bytes_sent"] {
		t.Fatalf("1 KB payloads sent %.0f B on the wire vs %.0f B at 256 B; payload size did not reach the network",
			got["bytes_sent"], plain["bytes_sent"])
	}

	// The byte integral is the occupancy integral priced in bytes: with a
	// fixed 1 KB payload but no budget it must be exactly 1024× the
	// message integral.
	unbudgeted := base
	unbudgeted.PayloadBytes = 1024
	free, err := RunScenario(unbudgeted, 1)
	if err != nil {
		t.Fatal(err)
	}
	msgSec, byteSec := free["buffer_integral_msgsec"], free["buffer_integral_bytesec"]
	if byteSec < 1023.9*msgSec || byteSec > 1024.1*msgSec {
		t.Fatalf("fixed 1 KB payload: byte integral %.1f is not 1024× the message integral %.1f", byteSec, msgSec)
	}
}

// TestRunScenarioPayloadModelDeterministic pins that randomized payload
// models draw from their own stream: two runs with the same seed agree,
// and the model leaves the legacy metrics' determinism intact.
func TestRunScenarioPayloadModelDeterministic(t *testing.T) {
	sc := exp.Scenario{
		Regions:      []int{8},
		Loss:         0.1,
		Policy:       "two-phase",
		Msgs:         10,
		Gap:          20 * time.Millisecond,
		Horizon:      2 * time.Second,
		PayloadBytes: 1024,
		PayloadModel: "lognormal",
	}
	a, err := RunScenario(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("metric key sets differ: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("metric %q differs across identically seeded runs: %v vs %v", k, v, b[k])
		}
	}
	sizes1, _, err := PayloadSizesFor("lognormal", 1024, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	sizes2, _, err := PayloadSizesFor("lognormal", 1024, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	varied := false
	for i := range sizes1 {
		if sizes1[i] != sizes2[i] {
			t.Fatalf("payload draw %d differs for one seed: %d vs %d", i, sizes1[i], sizes2[i])
		}
		if sizes1[i] != sizes1[0] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("lognormal payload model drew a constant size sequence")
	}
	if _, _, err := PayloadSizesFor("zipf", 1024, 10, 7); err == nil {
		t.Fatal("unknown payload model accepted")
	}
}

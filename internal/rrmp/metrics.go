package rrmp

import "repro/internal/stats"

// Metrics tallies one member's protocol activity. All counters are updated
// synchronously on the member's executor; read them after the simulation
// quiesces (or from the member's goroutine in real-time mode).
type Metrics struct {
	// Delivered counts distinct data messages delivered to this member.
	Delivered stats.Counter
	// Duplicates counts re-deliveries of already received messages
	// (duplicate repairs, redundant regional multicasts).
	Duplicates stats.Counter

	// LocalReqSent / LocalReqRecv count local-recovery NAKs (§2.2).
	LocalReqSent stats.Counter
	LocalReqRecv stats.Counter
	// RemoteReqSent / RemoteReqRecv count remote-recovery NAKs (§2.2).
	RemoteReqSent stats.Counter
	RemoteReqRecv stats.Counter
	// RepairsSent / RepairsRecv count retransmissions.
	RepairsSent stats.Counter
	RepairsRecv stats.Counter

	// RegionalMulticasts counts repairs this member multicast into its
	// region after receiving them from a remote region; Suppressed counts
	// pending regional multicasts cancelled by the back-off scheme.
	RegionalMulticasts   stats.Counter
	SuppressedMulticasts stats.Counter

	// SearchesStarted counts search episodes this member initiated on a
	// remote request for a discarded message (§3.3); SearchForwards counts
	// SEARCH messages sent (initial and retries); SearchJoins counts
	// searches joined on behalf of another member; SearchServed counts
	// searches this member terminated from its buffer; SearchFailures
	// counts searches abandoned after MaxSearchTries.
	SearchesStarted stats.Counter
	SearchForwards  stats.Counter
	SearchJoins     stats.Counter
	SearchServed    stats.Counter
	SearchFailures  stats.Counter
	// HavesSent / HavesRecv count "I have the message" notices.
	HavesSent stats.Counter
	HavesRecv stats.Counter

	// QueriesSent counts multicast bufferer queries (the §3.3 rejected
	// design, SearchMulticastQuery); QueryReplies counts repair+HAVE
	// replies actually transmitted; SuppressedReplies counts replies
	// cancelled by another member's HAVE during back-off. The A3 ablation
	// contrasts QueryReplies with the random walk's single repair.
	QueriesSent       stats.Counter
	QueryReplies      stats.Counter
	SuppressedReplies stats.Counter

	// WaitersRecorded counts remote requests remembered for later relay;
	// WaiterRelays counts repairs forwarded to recorded waiters (§2.2).
	WaitersRecorded stats.Counter
	WaiterRelays    stats.Counter

	// HandoffsSent / HandoffsRecv count long-term buffer transfers on
	// voluntary leave (§3.2).
	HandoffsSent stats.Counter
	HandoffsRecv stats.Counter

	// LocalGiveUps / RemoteGiveUps count recovery phases that exhausted
	// their retry budgets.
	LocalGiveUps  stats.Counter
	RemoteGiveUps stats.Counter

	// Suspects / Restores count failure-detector suspicion transitions
	// observed by this member (FDEnabled only).
	Suspects stats.Counter
	Restores stats.Counter
	// Unrecoverable counts loss-recovery episodes abandoned after every
	// recovery phase exhausted its retry budget — the explicit "this
	// message is lost" signal crash faults can produce. A late delivery
	// (e.g. a repair multicast by a peer that kept trying) decrements it
	// again, so at quiescence the counter equals the messages this member
	// still lacks and no longer pursues; nothing is ever silently lost.
	Unrecoverable stats.Counter

	// RecoveryLatency records detect→recover times in milliseconds.
	RecoveryLatency stats.Histogram
	// ReRecoveryLatency records detect→recover times for recoveries
	// re-initiated by Member.Recover after a crash outage: the time to
	// close each gap the member rediscovered when it came back.
	ReRecoveryLatency stats.Histogram
	// BufferingTime records store→evict times in milliseconds (all
	// eviction reasons except handoff).
	BufferingTime stats.Histogram
}

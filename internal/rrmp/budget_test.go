package rrmp

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/wire"
)

// TestBudgetPressureNoSilentLoss runs a lossy two-region group whose
// members can hold only a few payloads at a time: pressure evictions must
// actually occur, and every (member, message) pair must end either
// received or explicitly counted unrecoverable — a budget may cost copies,
// never bookkeeping.
func TestBudgetPressureNoSilentLoss(t *testing.T) {
	topo, err := topology.Chain(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.ByteBudget = 3 * 512 // room for three payloads per member
	loss := &netsim.BernoulliLoss{
		P:    0.2,
		Only: map[wire.Type]bool{wire.TypeData: true},
		Rng:  rng.New(99),
	}
	c := newCluster(t, topo, params, 4, loss)
	c.sender.StartSessions()
	var ids []wire.MessageID
	for i := 0; i < 12; i++ {
		i := i
		c.sim.At(time.Duration(i)*20*time.Millisecond, func() {
			ids = append(ids, c.sender.Publish(make([]byte, 512)))
		})
	}
	c.sim.RunUntil(5 * time.Second)

	pressure := 0
	for _, n := range c.all {
		m := c.members[n]
		pressure += m.Buffer().EvictedCount(core.EvictPressure)
		unrecovered := map[wire.MessageID]bool{}
		for _, id := range m.Unrecovered() {
			unrecovered[id] = true
		}
		if int64(len(unrecovered)) != m.Metrics().Unrecoverable.Value() {
			t.Fatalf("member %d: Unrecoverable counter %d != set size %d",
				n, m.Metrics().Unrecoverable.Value(), len(unrecovered))
		}
		for _, id := range ids {
			if !m.HasReceived(id) && !unrecovered[id] {
				t.Fatalf("member %d silently missing %v: neither received nor counted unrecoverable", n, id)
			}
		}
	}
	if pressure == 0 {
		t.Fatal("a 1.5 KB budget under a 6 KB workload produced no pressure evictions")
	}
}

// TestCopyOnStorePinsPayloadImmutability pins the payload-aliasing
// invariant: the sender broadcasts one payload slice that every simulated
// member's buffer entry aliases, so an application reusing its publish
// buffer would corrupt every replica at once — unless Params.CopyOnStore
// snapshots the bytes at store time. Both sides of the knob are asserted,
// so the zero-copy default's hazard stays documented by a failing test if
// buffer code ever starts mutating payloads itself.
func TestCopyOnStorePinsPayloadImmutability(t *testing.T) {
	for _, copyOn := range []bool{true, false} {
		topo, err := topology.Chain(6)
		if err != nil {
			t.Fatal(err)
		}
		params := DefaultParams()
		params.CopyOnStore = copyOn
		params.IdleThreshold = time.Hour // keep every entry buffered for the check
		c := newCluster(t, topo, params, 7, nil)

		var published [][]byte
		var ids []wire.MessageID
		for i := 0; i < 4; i++ {
			i := i
			c.sim.At(time.Duration(i)*10*time.Millisecond, func() {
				payload := bytes.Repeat([]byte{byte(i + 1)}, 32)
				published = append(published, payload)
				ids = append(ids, c.sender.Publish(payload))
			})
		}
		c.sim.RunUntil(500 * time.Millisecond)

		// The application "reuses" its buffers after the run has quiesced.
		for _, p := range published {
			for j := range p {
				p[j] = 0xee
			}
		}
		for _, n := range c.all {
			for i, id := range ids {
				e, ok := c.members[n].Buffer().Get(id)
				if !ok {
					t.Fatalf("copy=%v: member %d no longer buffers %v", copyOn, n, id)
				}
				want := byte(i + 1)
				if !copyOn {
					want = 0xee // zero-copy entries alias the mutated slice
				}
				if e.Payload[0] != want {
					t.Fatalf("copy=%v: member %d entry %v holds %#x, want %#x",
						copyOn, n, id, e.Payload[0], want)
				}
			}
		}
	}
}

package rrmp

import (
	"repro/internal/clock"
	"repro/internal/wire"
)

// Sender adds publishing duties to a member. The paper's model has a single
// sender per group which "joins the multicast group before it starts
// sending messages, and consequently is also a receiver" (§2.1).
type Sender struct {
	m            *Member
	seq          uint64
	sessionTimer clock.Timer
}

// NewSender wraps a member with sender duties. The member's node id becomes
// the message source address.
func NewSender(m *Member) *Sender {
	return &Sender{m: m}
}

// Member returns the underlying member.
func (s *Sender) Member() *Member { return s.m }

// Seq returns the highest sequence number published so far.
func (s *Sender) Seq() uint64 { return s.seq }

// Publish multicasts one data message to the whole group and delivers it
// locally (the sender buffers its own messages under the same policy as
// everyone else). It returns the assigned message id.
func (s *Sender) Publish(payload []byte) wire.MessageID {
	s.seq++
	id := wire.MessageID{Source: s.m.self, Seq: s.seq}
	s.m.deliver(id, payload, s.m.self)
	s.m.cfg.Transport.Broadcast(wire.Message{
		Type:    wire.TypeData,
		From:    s.m.self,
		ID:      id,
		Payload: payload,
	})
	return id
}

// StartSessions begins periodic session messages announcing the top
// sequence number, letting receivers detect the loss of the last messages
// in a burst (§2.1). Safe to call once; restart after StopSessions is
// allowed.
func (s *Sender) StartSessions() {
	if s.sessionTimer != nil {
		return
	}
	var tick func()
	tick = func() {
		s.m.cfg.Transport.Broadcast(wire.Message{
			Type:   wire.TypeSession,
			From:   s.m.self,
			TopSeq: s.seq,
		})
		s.sessionTimer = s.m.cfg.Sched.After(s.m.params.SessionInterval, tick)
	}
	s.sessionTimer = s.m.cfg.Sched.After(s.m.params.SessionInterval, tick)
}

// StopSessions cancels periodic session messages.
func (s *Sender) StopSessions() {
	if s.sessionTimer != nil {
		s.sessionTimer.Stop()
		s.sessionTimer = nil
	}
}

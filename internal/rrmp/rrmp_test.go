package rrmp

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

func TestLosslessDeliveryNoRecoveryTraffic(t *testing.T) {
	topo := singleRegion(t, 10)
	c := newCluster(t, topo, DefaultParams(), 1, nil)
	for i := 0; i < 5; i++ {
		c.sender.Publish([]byte{byte(i)})
	}
	c.sim.RunUntil(2 * time.Second)
	for seq := uint64(1); seq <= 5; seq++ {
		id := wire.MessageID{Source: topo.Sender(), Seq: seq}
		if got := c.deliveredCount(id); got != 10 {
			t.Fatalf("seq %d delivered to %d/10", seq, got)
		}
	}
	for n, m := range c.members {
		if m.Metrics().LocalReqSent.Value() != 0 {
			t.Fatalf("member %d sent recovery requests on a lossless network", n)
		}
	}
}

func TestLocalRecoveryUnderLoss(t *testing.T) {
	topo := singleRegion(t, 30)
	loss := &netsim.BernoulliLoss{
		P:    0.4,
		Only: map[wire.Type]bool{wire.TypeData: true},
		Rng:  rng.New(99),
	}
	params := DefaultParams()
	// C = n guarantees a long-term bufferer per message, making delivery
	// certain; the probabilistic C<n regime is covered by
	// TestUnrecoverableLossGivesUp and the Figure 4 analysis.
	params.C = 30
	c := newCluster(t, topo, params, 2, loss)
	c.sender.StartSessions()
	const msgs = 10
	for i := 0; i < msgs; i++ {
		i := i
		c.sim.At(time.Duration(i)*20*time.Millisecond, func() { c.sender.Publish([]byte{byte(i)}) })
	}
	c.sim.RunUntil(3 * time.Second)
	for seq := uint64(1); seq <= msgs; seq++ {
		id := wire.MessageID{Source: topo.Sender(), Seq: seq}
		if got := c.deliveredCount(id); got != 30 {
			t.Fatalf("seq %d delivered to %d/30 under 40%% data loss", seq, got)
		}
	}
	// Recovery must actually have happened (loss was real).
	var reqs int64
	for _, m := range c.members {
		reqs += m.Metrics().LocalReqSent.Value()
	}
	if reqs == 0 {
		t.Fatal("no local recovery traffic despite loss")
	}
}

func TestRegionalLossRemoteRecovery(t *testing.T) {
	topo := chainRegions(t, 5, 5)
	victims := make(map[topology.NodeID]bool)
	for _, n := range topo.Members(1) {
		victims[n] = true
	}
	c := newCluster(t, topo, DefaultParams(), 3, &regionLoss{victims: victims})
	c.sender.StartSessions()
	id := c.sender.Publish([]byte("regional"))
	c.sim.RunUntil(3 * time.Second)

	if got := c.deliveredCount(id); got != 10 {
		t.Fatalf("delivered to %d/10 after regional loss", got)
	}
	var remoteReqs, regionalMCs int64
	for _, n := range topo.Members(1) {
		remoteReqs += c.members[n].Metrics().RemoteReqSent.Value()
		regionalMCs += c.members[n].Metrics().RegionalMulticasts.Value()
	}
	if remoteReqs == 0 {
		t.Fatal("regional loss repaired without remote requests")
	}
	if regionalMCs == 0 {
		t.Fatal("remote repair was not multicast into the losing region")
	}
}

func TestSessionDetectsTailLoss(t *testing.T) {
	topo := singleRegion(t, 5)
	victim := topo.MemberAt(0, 3)
	c := newCluster(t, topo, DefaultParams(), 4, &regionLoss{victims: map[topology.NodeID]bool{victim: true}})
	c.sender.StartSessions()
	id := c.sender.Publish([]byte("tail")) // the only message: no later data to expose the gap
	c.sim.RunUntil(2 * time.Second)
	if !c.members[victim].HasReceived(id) {
		t.Fatal("tail loss not recovered via session messages")
	}
	if c.members[victim].Metrics().RecoveryLatency.N() != 1 {
		t.Fatal("recovery latency not recorded")
	}
}

func TestFeedbackKeepsHoldersBuffering(t *testing.T) {
	// One holder, everyone else missing: the holder must keep the message
	// well past T because requests keep arriving, and must discard it only
	// after the region is repaired and goes quiet.
	topo := singleRegion(t, 20)
	params := DefaultParams()
	params.C = 0 // isolate short-term behaviour
	c := newCluster(t, topo, params, 5, nil)

	id := wire.MessageID{Source: topo.Sender(), Seq: 1}
	holder := c.members[topo.MemberAt(0, 0)]
	holder.InjectDeliver(id, []byte("x"))
	var evictedAt time.Duration
	holder.cfg.Hooks.OnEvict = func(e *core.Entry, r core.EvictReason) {
		if e.ID == id {
			evictedAt = c.sim.Now()
		}
	}
	// Re-register the eviction hook through the buffer config (the hook was
	// captured at construction); instead, read BufferingTime metric below.
	for _, n := range topo.Members(0)[1:] {
		c.members[n].StartRecovery(id)
	}
	c.sim.RunUntil(5 * time.Second)
	_ = evictedAt

	if got := c.deliveredCount(id); got != 20 {
		t.Fatalf("delivered %d/20", got)
	}
	bt := holder.Metrics().BufferingTime
	if bt.N() != 1 {
		t.Fatalf("holder recorded %d buffering times", bt.N())
	}
	// Must exceed T (40 ms) because feedback kept it alive, and be well
	// below the 5 s horizon once the region went quiet.
	if bt.Mean() <= 40 || bt.Mean() > 500 {
		t.Fatalf("holder buffering time %.1f ms, want (40, 500]", bt.Mean())
	}
}

func TestWaiterRelay(t *testing.T) {
	// A remote request arrives at a parent member that never received the
	// message; when the parent recovers it, the waiter gets a relay (§2.2).
	topo := chainRegions(t, 3, 3)
	params := DefaultParams()
	params.RecoverOnRemoteEvidence = false // force the pure waiter path
	c := newCluster(t, topo, params, 6, nil)

	id := wire.MessageID{Source: topo.Sender(), Seq: 1}
	parentHolder := c.members[topo.MemberAt(0, 1)]
	parentWaitee := topo.MemberAt(0, 2) // never received, will be asked
	downstream := topo.MemberAt(1, 0)

	parentHolder.InjectDeliver(id, []byte("w"))
	// Downstream member sends a remote request directly to the chosen
	// parent member.
	c.net.Unicast(downstream, parentWaitee, wire.Message{
		Type: wire.TypeRemoteRequest, From: downstream, ID: id, Origin: downstream,
	})
	// Later the parent member recovers the message via local recovery.
	c.sim.At(50*time.Millisecond, func() { c.members[parentWaitee].StartRecovery(id) })
	c.sim.RunUntil(2 * time.Second)

	if !c.members[downstream].HasReceived(id) {
		t.Fatal("waiter never received the relayed repair")
	}
	if got := c.members[parentWaitee].Metrics().WaiterRelays.Value(); got != 1 {
		t.Fatalf("WaiterRelays = %d", got)
	}
	if got := c.members[parentWaitee].Metrics().WaitersRecorded.Value(); got != 1 {
		t.Fatalf("WaitersRecorded = %d", got)
	}
}

func TestSearchFindsBufferer(t *testing.T) {
	// Region where the message has gone idle everywhere except B long-term
	// bufferers; a remote request lands on a non-bufferer and must locate a
	// copy via the randomized search (§3.3).
	topo := chainRegions(t, 40, 1)
	c := newCluster(t, topo, DefaultParams(), 7, nil)
	id := wire.MessageID{Source: topo.Sender(), Seq: 1}

	region := topo.Members(0)
	bufferers := map[topology.NodeID]bool{region[5]: true, region[17]: true, region[23]: true}
	for _, n := range region {
		if bufferers[n] {
			c.members[n].InjectLongTerm(id, []byte("s"))
		} else {
			c.members[n].InjectDiscarded(id)
		}
	}
	downstream := topo.MemberAt(1, 0)
	target := region[0] // not a bufferer: must search

	resolved := false
	var resolvedAt time.Duration
	for _, n := range region {
		m := c.members[n]
		m.cfg.Hooks.OnSearchResolved = func(gotID wire.MessageID, origin topology.NodeID) {
			if gotID == id && origin == downstream && !resolved {
				resolved = true
				resolvedAt = c.sim.Now()
			}
		}
	}
	c.net.Unicast(downstream, target, wire.Message{
		Type: wire.TypeRemoteRequest, From: downstream, ID: id, Origin: downstream,
	})
	c.sim.RunUntil(3 * time.Second)

	if !resolved {
		t.Fatal("search never resolved")
	}
	if !c.members[downstream].HasReceived(id) {
		t.Fatal("remote requester never received the repair")
	}
	if resolvedAt > 500*time.Millisecond {
		t.Fatalf("search took %v, far beyond plausible bounds", resolvedAt)
	}
	// The searchers must have produced HAVE traffic to terminate.
	var haves int64
	for _, n := range region {
		haves += c.members[n].Metrics().HavesSent.Value()
	}
	if haves == 0 {
		t.Fatal("no HAVE notice terminated the search")
	}
}

func TestSearchTimeZeroWhenRequestHitsBufferer(t *testing.T) {
	topo := chainRegions(t, 10, 1)
	c := newCluster(t, topo, DefaultParams(), 8, nil)
	id := wire.MessageID{Source: topo.Sender(), Seq: 1}
	region := topo.Members(0)
	bufferer := region[4]
	for _, n := range region {
		if n == bufferer {
			c.members[n].InjectLongTerm(id, []byte("z"))
		} else {
			c.members[n].InjectDiscarded(id)
		}
	}
	downstream := topo.MemberAt(1, 0)
	var resolvedAt time.Duration = -1
	var reqArrive time.Duration
	c.members[bufferer].cfg.Hooks.OnSearchResolved = func(wire.MessageID, topology.NodeID) {
		resolvedAt = c.sim.Now()
	}
	c.sim.After(0, func() { reqArrive = c.sim.Now() })
	c.net.Unicast(downstream, bufferer, wire.Message{
		Type: wire.TypeRemoteRequest, From: downstream, ID: id, Origin: downstream,
	})
	c.sim.RunUntil(time.Second)
	if resolvedAt < 0 {
		t.Fatal("request at bufferer not served")
	}
	// Served immediately on arrival (one inter-region hop after send).
	arrival := reqArrive + 50*time.Millisecond
	if resolvedAt != arrival {
		t.Fatalf("resolved at %v, want %v (zero search time)", resolvedAt, arrival)
	}
	if c.members[bufferer].Metrics().SearchForwards.Value() != 0 {
		t.Fatal("bufferer forwarded a search despite holding the message")
	}
}

func TestLeaveHandsOffLongTermBuffers(t *testing.T) {
	topo := singleRegion(t, 10)
	c := newCluster(t, topo, DefaultParams(), 9, nil)
	id := wire.MessageID{Source: topo.Sender(), Seq: 1}
	leaver := c.members[topo.MemberAt(0, 2)]
	leaver.InjectLongTerm(id, []byte("h"))
	for _, n := range topo.Members(0) {
		if n != leaver.ID() {
			c.members[n].InjectDiscarded(id)
		}
	}
	leaver.Leave()
	c.sim.RunUntil(time.Second)

	holders := 0
	for _, m := range c.members {
		if m.Buffer().Has(id) {
			if e, _ := m.Buffer().Get(id); e.State != core.StateLongTerm {
				t.Fatal("handoff copy is not long-term")
			}
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("%d members hold the message after handoff, want exactly 1", holders)
	}
	if leaver.Metrics().HandoffsSent.Value() != 1 {
		t.Fatalf("HandoffsSent = %d", leaver.Metrics().HandoffsSent.Value())
	}
	if !leaver.Left() {
		t.Fatal("Left() = false after Leave")
	}
}

func TestLeftMemberIgnoresTraffic(t *testing.T) {
	topo := singleRegion(t, 5)
	c := newCluster(t, topo, DefaultParams(), 10, nil)
	m := c.members[topo.MemberAt(0, 1)]
	m.Leave()
	id := c.sender.Publish([]byte("after-leave"))
	c.sim.RunUntil(time.Second)
	if m.HasReceived(id) {
		t.Fatal("left member processed a delivery")
	}
}

func TestBackoffSuppressesDuplicateRegionalMulticasts(t *testing.T) {
	// Two members of the same region receive remote repairs for the same
	// message at the same instant. With a back-off window, only one should
	// normally multicast; the other suppresses (§2.2, [14]).
	topo := chainRegions(t, 2, 8)
	params := DefaultParams()
	params.RepairBackoffMax = 30 * time.Millisecond
	c := newCluster(t, topo, params, 11, nil)
	id := wire.MessageID{Source: topo.Sender(), Seq: 1}

	receivers := []topology.NodeID{topo.MemberAt(1, 0), topo.MemberAt(1, 1)}
	parent := topo.MemberAt(0, 0)
	payload := []byte("dup")
	for _, r := range receivers {
		c.net.Unicast(parent, r, wire.Message{Type: wire.TypeRepair, From: parent, ID: id, Payload: payload})
	}
	c.sim.RunUntil(time.Second)

	var mcs, suppressed int64
	for _, r := range receivers {
		mcs += c.members[r].Metrics().RegionalMulticasts.Value()
		suppressed += c.members[r].Metrics().SuppressedMulticasts.Value()
	}
	if mcs+suppressed != 2 {
		t.Fatalf("multicasts %d + suppressed %d != 2", mcs, suppressed)
	}
	if mcs < 1 {
		t.Fatal("nobody multicast the repair")
	}
	if got := c.deliveredCount(id); got != topo.NumNodes() {
		// Sender's region also gets it? No: only region 1 was repaired; the
		// parent region never received DATA at all in this synthetic setup,
		// so only region 1 members (8) + nobody else have it.
		if got != 8 {
			t.Fatalf("delivered count %d, want 8 region members", got)
		}
	}
}

func TestHashElectPolicyRoutesSearchDirectly(t *testing.T) {
	topo := chainRegions(t, 30, 1)
	region := topo.Members(0)

	s := sim.New()
	lat := netsim.HierLatency{Topo: topo, IntraOneWay: 5 * time.Millisecond, InterOneWay: 50 * time.Millisecond}
	net := netsim.New(s, lat, nil)
	root := rng.New(12)

	members := make(map[topology.NodeID]*Member)
	var all []topology.NodeID
	for r := 0; r < topo.NumRegions(); r++ {
		all = append(all, topo.Members(topology.RegionID(r))...)
	}
	params := DefaultParams()
	for _, n := range all {
		view, err := topo.ViewOf(n)
		if err != nil {
			t.Fatal(err)
		}
		var policy core.Policy
		if view.Region == 0 {
			regionAll := append([]topology.NodeID{}, region...)
			policy = core.NewHashElect(params.IdleThreshold, 3, n, regionAll, 0)
		}
		m := NewMember(Config{
			View:      view,
			Transport: &NetTransport{Net: net, Self: n, Group: all},
			Sched:     s,
			Rng:       root.Split(uint64(n) + 1),
			Params:    params,
			Policy:    policy,
		})
		members[n] = m
		net.Register(n, func(p netsim.Packet) { m.Receive(p.From, p.Msg) })
	}

	id := wire.MessageID{Source: topo.Sender(), Seq: 7}
	elect := core.NewHashElect(params.IdleThreshold, 3, region[0], region, 0)
	set := elect.Bufferers(id)
	inSet := make(map[topology.NodeID]bool, len(set))
	for _, b := range set {
		inSet[b] = true
	}
	for _, n := range region {
		if inSet[n] {
			members[n].InjectLongTerm(id, []byte("d"))
		} else {
			members[n].InjectDiscarded(id)
		}
	}
	// Pick a non-bufferer target.
	var target topology.NodeID = -1
	for _, n := range region {
		if !inSet[n] {
			target = n
			break
		}
	}
	downstream := topo.MemberAt(1, 0)
	net.Unicast(downstream, target, wire.Message{
		Type: wire.TypeRemoteRequest, From: downstream, ID: id, Origin: downstream,
	})
	s.RunUntil(2 * time.Second)

	if !members[downstream].HasReceived(id) {
		t.Fatal("deterministic lookup failed to repair the requester")
	}
	// The search must have gone directly to a bufferer: exactly one forward
	// from the target, no joins anywhere.
	if got := members[target].Metrics().SearchForwards.Value(); got != 1 {
		t.Fatalf("SearchForwards = %d, want 1 (direct route)", got)
	}
	var joins int64
	for _, n := range region {
		joins += members[n].Metrics().SearchJoins.Value()
	}
	if joins != 0 {
		t.Fatalf("deterministic routing caused %d search joins", joins)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, int64) {
		topo := singleRegion(t, 25)
		loss := &netsim.BernoulliLoss{P: 0.3, Only: map[wire.Type]bool{wire.TypeData: true}, Rng: rng.New(555)}
		params := DefaultParams()
		params.C = 25 // deterministic reliability: every member elects long-term
		c := newCluster(t, topo, params, 42, loss)
		c.sender.StartSessions()
		for i := 0; i < 8; i++ {
			i := i
			c.sim.At(time.Duration(i)*10*time.Millisecond, func() { c.sender.Publish([]byte{byte(i)}) })
		}
		c.sim.RunUntil(2 * time.Second)
		var delivered int64
		for _, m := range c.members {
			delivered += m.Metrics().Delivered.Value()
		}
		return c.net.Stats().TotalSent(), delivered
	}
	s1, d1 := run()
	s2, d2 := run()
	if s1 != s2 || d1 != d2 {
		t.Fatalf("identical seeds diverged: sent %d vs %d, delivered %d vs %d", s1, s2, d1, d2)
	}
	if d1 != 25*8 {
		t.Fatalf("delivered %d, want %d", d1, 25*8)
	}
}

func TestUnrecoverableLossGivesUp(t *testing.T) {
	// Nobody has the message and there is no parent region: local recovery
	// must exhaust its budget and stop, leaving the simulation quiescent.
	topo := singleRegion(t, 6)
	params := DefaultParams()
	params.MaxLocalTries = 5
	c := newCluster(t, topo, params, 13, nil)
	id := wire.MessageID{Source: topo.Sender(), Seq: 1}
	m := c.members[topo.MemberAt(0, 3)]
	m.StartRecovery(id)
	c.sim.MustQuiesce(10_000)
	if m.HasReceived(id) {
		t.Fatal("recovered a message nobody had")
	}
	if m.Metrics().LocalGiveUps.Value() != 1 {
		t.Fatalf("LocalGiveUps = %d", m.Metrics().LocalGiveUps.Value())
	}
	if got := m.Metrics().LocalReqSent.Value(); got != 5 {
		t.Fatalf("sent %d local requests, want 5", got)
	}
}

func TestRemoteRequestProbabilityScalesWithLambda(t *testing.T) {
	// With an entire region missing and λ=1, each retry round generates ~1
	// remote request in expectation across the region.
	topo := chainRegions(t, 50, 50)
	params := DefaultParams()
	params.MaxRemoteTries = 10
	params.MaxLocalTries = 1 // keep local traffic from drowning the run
	c := newCluster(t, topo, params, 14, nil)

	id := wire.MessageID{Source: topo.Sender(), Seq: 1}
	// Parent region never had it either; nothing is recoverable, we only
	// count RREQ traffic.
	for _, n := range topo.Members(1) {
		c.members[n].StartRecovery(id)
	}
	c.sim.MustQuiesce(2_000_000)
	var rreqs int64
	for _, n := range topo.Members(1) {
		rreqs += c.members[n].Metrics().RemoteReqSent.Value()
	}
	// 10 rounds × λ=1 → expect ~10; allow generous randomness bounds.
	if rreqs < 3 || rreqs > 25 {
		t.Fatalf("remote requests %d over 10 rounds, want ≈10", rreqs)
	}
}

func TestInjectHelpers(t *testing.T) {
	topo := singleRegion(t, 4)
	c := newCluster(t, topo, DefaultParams(), 15, nil)
	id := wire.MessageID{Source: 0, Seq: 3}
	m := c.members[topo.MemberAt(0, 1)]

	m.InjectDiscarded(id)
	if !m.HasReceived(id) || m.Buffer().Has(id) {
		t.Fatal("InjectDiscarded state wrong")
	}
	m.InjectDeliver(id, []byte("x")) // duplicate: no-op
	if m.Buffer().Has(id) {
		t.Fatal("InjectDeliver resurrected a discarded message")
	}

	id2 := wire.MessageID{Source: 0, Seq: 5}
	m.InjectDeliver(id2, []byte("y"))
	if !m.Buffer().Has(id2) {
		t.Fatal("InjectDeliver did not buffer")
	}
	// Gap 4 must NOT be recovered (injection does not trigger detection).
	if m.Recovering(wire.MessageID{Source: 0, Seq: 4}) {
		t.Fatal("InjectDeliver triggered gap recovery")
	}

	id3 := wire.MessageID{Source: 0, Seq: 6}
	m.InjectLongTerm(id3, nil)
	e, ok := m.Buffer().Get(id3)
	if !ok || e.State != core.StateLongTerm {
		t.Fatal("InjectLongTerm state wrong")
	}
}

func TestNewMemberValidation(t *testing.T) {
	topo := singleRegion(t, 2)
	view, _ := topo.ViewOf(0)
	s := sim.New()
	base := Config{View: view, Transport: &NetTransport{}, Sched: s, Rng: rng.New(1)}
	for name, mutate := range map[string]func(Config) Config{
		"nil transport": func(c Config) Config { c.Transport = nil; return c },
		"nil sched":     func(c Config) Config { c.Sched = nil; return c },
		"nil rng":       func(c Config) Config { c.Rng = nil; return c },
	} {
		cfg := mutate(base)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			NewMember(cfg)
		}()
	}
}

package rrmp

import (
	"testing"
	"time"

	"repro/internal/topology"
	"repro/internal/wire"
)

// crashNode fails a member the way the runner does: the member halts and
// its network traffic is cut.
func (c *cluster) crashNode(n topology.NodeID) {
	c.members[n].Crash()
	c.net.SetDown(n, true)
}

func (c *cluster) recoverNode(n topology.NodeID) {
	c.net.SetDown(n, false)
	c.members[n].Recover()
}

// TestFailureDetectorSuspectsCrashedPeer: with FDEnabled, every surviving
// region member suspects a crashed peer within a few gossip timeouts.
func TestFailureDetectorSuspectsCrashedPeer(t *testing.T) {
	topo, err := topology.SingleRegion(6)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.FDEnabled = true
	c := newCluster(t, topo, params, 11, nil)

	victim := topology.NodeID(3)
	c.sim.At(100*time.Millisecond, func() { c.crashNode(victim) })
	c.sim.RunUntil(2 * time.Second)

	if !c.members[victim].Crashed() {
		t.Fatal("victim not marked crashed")
	}
	for _, n := range c.all {
		if n == victim {
			continue
		}
		m := c.members[n]
		if m.peerLive(victim) {
			t.Fatalf("member %d still considers crashed %d live", n, victim)
		}
		if m.Metrics().Suspects.Value() == 0 {
			t.Fatalf("member %d recorded no suspect events", n)
		}
		// No false positives: all other peers stayed live.
		for _, p := range c.all {
			if p != victim && p != n && !m.peerLive(p) {
				t.Fatalf("member %d falsely suspects healthy %d", n, p)
			}
		}
	}
}

// TestSearchReroutesAroundCrashedBufferer: two long-term bufferers, one
// crashes; the search walk must skip the suspected corpse and resolve the
// remote request from the survivor.
func TestSearchReroutesAroundCrashedBufferer(t *testing.T) {
	topo, err := topology.Chain(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.FDEnabled = true
	params.LongTermTTL = 0
	c := newCluster(t, topo, params, 7, nil)

	id := wire.MessageID{Source: topo.Sender(), Seq: 1}
	region := topo.Members(0)
	deadBufferer, liveBufferer := region[2], region[5]
	for _, n := range region {
		switch n {
		case deadBufferer, liveBufferer:
			c.members[n].InjectLongTerm(id, []byte("p"))
		default:
			c.members[n].InjectDiscarded(id)
		}
	}
	// Let gossip converge on the crash before the request arrives.
	c.sim.At(50*time.Millisecond, func() { c.crashNode(deadBufferer) })

	requester := topo.MemberAt(1, 0)
	c.sim.At(1500*time.Millisecond, func() {
		c.net.Unicast(requester, region[0], wire.Message{
			Type: wire.TypeRemoteRequest, From: requester, ID: id, Origin: requester,
		})
	})
	c.sim.RunUntil(20 * time.Second)

	if !c.members[requester].HasReceived(id) {
		t.Fatal("remote requester never repaired despite a surviving bufferer")
	}
}

// TestCrashRecoverReRecoversKnownGaps: a member crashes with a detected
// loss in flight; on Recover the gap is re-detected and repaired, and the
// episode lands in ReRecoveryLatency.
func TestCrashRecoverReRecoversKnownGaps(t *testing.T) {
	topo, err := topology.SingleRegion(8)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.FDEnabled = true
	params.C = 8
	params.LongTermTTL = 0
	c := newCluster(t, topo, params, 21, nil)

	id := wire.MessageID{Source: topo.Sender(), Seq: 2}
	victim := topology.NodeID(4)
	for _, n := range c.all {
		if n != victim {
			c.members[n].InjectLongTerm(id, []byte("p"))
		}
	}
	// The victim holds seq 1, so the only gap the session reveals is seq 2.
	c.members[victim].InjectDeliver(wire.MessageID{Source: topo.Sender(), Seq: 1}, []byte("q"))
	// The victim detects the loss through a session announcement (so its
	// maxSeen covers the gap), then dies before recovery completes.
	c.sim.At(0, func() {
		c.members[victim].Receive(topo.Sender(),
			wire.Message{Type: wire.TypeSession, From: topo.Sender(), TopSeq: 2})
		if !c.members[victim].Recovering(id) {
			t.Error("victim did not start recovery from the session gap")
		}
		c.crashNode(victim)
	})
	c.sim.At(time.Second, func() { c.recoverNode(victim) })
	c.sim.RunUntil(5 * time.Second)

	m := c.members[victim]
	if !m.HasReceived(id) {
		t.Fatal("victim never re-recovered the gap it knew about")
	}
	if m.Metrics().ReRecoveryLatency.N() != 1 {
		t.Fatalf("ReRecoveryLatency.N() = %d, want 1", m.Metrics().ReRecoveryLatency.N())
	}
	if m.Metrics().Unrecoverable.Value() != 0 {
		t.Fatal("recovered message still counted unrecoverable")
	}
}

// TestLeaveHandsOffToLivePeersOnly: with the detector on, a leaver must
// not transfer its long-term buffer to a peer it believes is dead.
func TestLeaveHandsOffToLivePeersOnly(t *testing.T) {
	topo, err := topology.SingleRegion(3)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.FDEnabled = true
	params.LongTermTTL = 0
	c := newCluster(t, topo, params, 5, nil)

	leaver, corpse, survivor := topology.NodeID(1), topology.NodeID(2), topology.NodeID(0)
	c.members[leaver].InjectLongTerm(wire.MessageID{Source: 0, Seq: 1}, []byte("a"))
	c.members[leaver].InjectLongTerm(wire.MessageID{Source: 0, Seq: 2}, []byte("b"))
	c.sim.At(50*time.Millisecond, func() { c.crashNode(corpse) })
	c.sim.At(1500*time.Millisecond, func() { c.members[leaver].Leave() })
	c.sim.RunUntil(3 * time.Second)

	if got := c.members[survivor].Metrics().HandoffsRecv.Value(); got != 2 {
		t.Fatalf("survivor received %d handoffs, want 2 (none may go to the corpse)", got)
	}
}

// TestAbandonedRecoveryCountsUnrecoverable: when every recovery phase
// exhausts (no holder anywhere, no parent region), the loss is counted
// unrecoverable rather than silently dropped — and a late delivery
// un-counts it.
func TestAbandonedRecoveryCountsUnrecoverable(t *testing.T) {
	topo, err := topology.SingleRegion(2)
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	c := newCluster(t, topo, params, 9, nil)

	id := wire.MessageID{Source: topo.Sender(), Seq: 1}
	m := c.members[1]
	c.sim.At(0, func() { m.StartRecovery(id) })
	c.sim.RunUntil(5 * time.Second) // 64 local tries ≈ 0.7 s, then give up

	if m.Metrics().Unrecoverable.Value() != 1 {
		t.Fatalf("Unrecoverable = %d, want 1", m.Metrics().Unrecoverable.Value())
	}
	if got := m.Unrecovered(); len(got) != 1 || got[0] != id {
		t.Fatalf("Unrecovered() = %v, want [%v]", got, id)
	}

	// A very late repair still lands: the loss is no longer unrecoverable.
	c.net.Unicast(0, 1, wire.Message{Type: wire.TypeRepair, From: 0, ID: id, Payload: []byte("late")})
	c.sim.RunUntil(6 * time.Second)
	if !m.HasReceived(id) {
		t.Fatal("late repair not delivered")
	}
	if m.Metrics().Unrecoverable.Value() != 0 {
		t.Fatalf("Unrecoverable = %d after late delivery, want 0", m.Metrics().Unrecoverable.Value())
	}
	if len(m.Unrecovered()) != 0 {
		t.Fatal("Unrecovered() not cleared by late delivery")
	}
}

// TestCrashedMemberIgnoresTrafficAndLeave: a crashed member processes
// nothing, cannot leave gracefully, and resumes cleanly on Recover.
func TestCrashedMemberIgnoresTrafficAndLeave(t *testing.T) {
	topo, err := topology.SingleRegion(4)
	if err != nil {
		t.Fatal(err)
	}
	c := newCluster(t, topo, DefaultParams(), 13, nil)

	victim := c.members[2]
	victim.Crash()
	victim.Leave()
	if victim.Left() {
		t.Fatal("crashed member left gracefully")
	}
	victim.Receive(0, wire.Message{Type: wire.TypeData, From: 0,
		ID: wire.MessageID{Source: 0, Seq: 1}, Payload: []byte("x")})
	if victim.HasReceived(wire.MessageID{Source: 0, Seq: 1}) {
		t.Fatal("crashed member processed a PDU")
	}
	victim.Recover()
	if victim.Crashed() {
		t.Fatal("Recover left the member crashed")
	}
	victim.Receive(0, wire.Message{Type: wire.TypeData, From: 0,
		ID: wire.MessageID{Source: 0, Seq: 1}, Payload: []byte("x")})
	if !victim.HasReceived(wire.MessageID{Source: 0, Seq: 1}) {
		t.Fatal("recovered member did not resume processing")
	}
}

package rrmp

import (
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// NetTransport binds a member to the simulated network. Broadcast models
// the initial IP multicast as independent per-receiver deliveries across
// the whole group (§4: "we simulate the outcome of an IP multicast").
type NetTransport struct {
	Net  *netsim.Network
	Self topology.NodeID
	// Group is the full member list used for Broadcast. Only the sender's
	// transport needs it; leave nil for pure receivers.
	Group []topology.NodeID
}

var _ Transport = (*NetTransport)(nil)

// Send implements Transport.
func (t *NetTransport) Send(to topology.NodeID, msg wire.Message) {
	t.Net.Unicast(t.Self, to, msg)
}

// Broadcast implements Transport.
func (t *NetTransport) Broadcast(msg wire.Message) {
	t.Net.Multicast(t.Self, t.Group, msg)
}

// ReceivePacket implements netsim.PacketReceiver, so a member registers
// itself on the network directly (netsim.RegisterReceiver) instead of
// through a per-member closure.
func (m *Member) ReceivePacket(p netsim.Packet) {
	m.Receive(p.From, p.Msg)
}

var _ netsim.PacketReceiver = (*Member)(nil)

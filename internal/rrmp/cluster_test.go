package rrmp

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// cluster wires a full group over the simulated network for tests.
type cluster struct {
	sim     *sim.Sim
	net     *netsim.Network
	topo    *topology.Topology
	members map[topology.NodeID]*Member
	sender  *Sender
	all     []topology.NodeID
}

func newCluster(t *testing.T, topo *topology.Topology, params Params, seed uint64, loss netsim.LossModel) *cluster {
	t.Helper()
	s := sim.New()
	lat := netsim.HierLatency{
		Topo:        topo,
		IntraOneWay: 5 * time.Millisecond,
		InterOneWay: 50 * time.Millisecond,
	}
	net := netsim.New(s, lat, loss)
	root := rng.New(seed)

	c := &cluster{sim: s, net: net, topo: topo, members: make(map[topology.NodeID]*Member)}
	for r := 0; r < topo.NumRegions(); r++ {
		for _, n := range topo.Members(topology.RegionID(r)) {
			c.all = append(c.all, n)
		}
	}
	for _, n := range c.all {
		view, err := topo.ViewOf(n)
		if err != nil {
			t.Fatal(err)
		}
		m := NewMember(Config{
			View:      view,
			Transport: &NetTransport{Net: net, Self: n, Group: c.all},
			Sched:     s,
			Rng:       root.Split(uint64(n) + 1),
			Params:    params,
		})
		c.members[n] = m
		net.Register(n, func(p netsim.Packet) { m.Receive(p.From, p.Msg) })
	}
	c.sender = NewSender(c.members[topo.Sender()])
	return c
}

func (c *cluster) deliveredCount(id wire.MessageID) int {
	n := 0
	for _, m := range c.members {
		if m.HasReceived(id) {
			n++
		}
	}
	return n
}

func singleRegion(t *testing.T, n int) *topology.Topology {
	t.Helper()
	topo, err := topology.SingleRegion(n)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func chainRegions(t *testing.T, sizes ...int) *topology.Topology {
	t.Helper()
	topo, err := topology.Chain(sizes...)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// regionLoss drops DATA packets destined to the listed nodes (modeling a
// regional loss of the initial multicast).
type regionLoss struct {
	victims map[topology.NodeID]bool
}

func (r *regionLoss) Drop(_, to topology.NodeID, t wire.Type) bool {
	return t == wire.TypeData && r.victims[to]
}

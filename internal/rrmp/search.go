package rrmp

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/topology"
	"repro/internal/wire"
)

// servedKey identifies one (message, remote requester) search service.
type servedKey struct {
	id     wire.MessageID
	origin topology.NodeID
}

// searchState is one search-for-bufferer episode (§3.3): this member was
// asked for a message it received but has since discarded, and is probing
// random region members for a surviving copy.
type searchState struct {
	id wire.MessageID
	// origins are the remote requesters awaiting the repair. Usually one;
	// multiple remote requests for the same discarded message merge.
	origins   []topology.NodeID
	startedAt time.Duration
	tries     int
	timer     clock.Timer
}

func (s *searchState) stop() {
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
}

func (s *searchState) addOrigin(o topology.NodeID) {
	for _, x := range s.origins {
		if x == o {
			return
		}
	}
	s.origins = append(s.origins, o)
}

func (s *searchState) dropOrigin(o topology.NodeID) {
	for i, x := range s.origins {
		if x == o {
			s.origins = append(s.origins[:i], s.origins[i+1:]...)
			return
		}
	}
}

// startSearch begins (or joins) a search episode on behalf of origin.
func (m *Member) startSearch(id wire.MessageID, origin topology.NodeID) {
	if s, ok := m.searches[id]; ok {
		s.addOrigin(origin)
		return
	}
	s := &searchState{id: id, origins: []topology.NodeID{origin}, startedAt: m.cfg.Sched.Now()}
	m.searches[id] = s
	m.metrics.SearchesStarted.Inc()
	m.trace("SEARCH-START", fmt.Sprintf("id=%v origin=%d", id, origin))
	if m.params.SearchMode == SearchMulticastQuery {
		m.queryAttempt(s)
		return
	}
	m.searchAttempt(s)
}

// queryAttempt multicasts the bufferer query in the region (§3.3's rejected
// design). Retries re-multicast until a HAVE arrives or tries exhaust.
func (m *Member) queryAttempt(s *searchState) {
	if m.searches[s.id] != s {
		return
	}
	if len(s.origins) == 0 || s.tries >= m.params.MaxSearchTries {
		if len(s.origins) > 0 {
			m.metrics.SearchFailures.Inc()
		}
		delete(m.searches, s.id)
		return
	}
	s.tries++
	for _, o := range s.origins {
		m.metrics.QueriesSent.Inc()
		msg := wire.Message{Type: wire.TypeQuery, From: m.self, ID: s.id, Origin: o}
		for i, p := range m.cfg.View.RegionMembers {
			if i == m.cfg.View.SelfIdx {
				continue
			}
			m.cfg.Transport.Send(p, msg)
		}
	}
	// Wait out the worst-case reply back-off plus a round trip before
	// re-multicasting.
	s.timer = m.cfg.Sched.After(m.params.QueryBackoffMax+m.params.IntraRTT+m.params.RetryGrace,
		func() { m.queryAttempt(s) })
}

// onQuery handles a multicast bufferer query: holders schedule a reply
// after a uniform back-off in (0, QueryBackoffMax], suppressed if another
// member's HAVE for the same message arrives first.
func (m *Member) onQuery(from topology.NodeID, msg wire.Message) {
	id, origin := msg.ID, msg.Origin
	e, ok := m.buf.Get(id)
	if !ok {
		// Non-holders stay silent under the multicast-query design; the
		// querier re-multicasts if nobody answers.
		return
	}
	m.buf.OnRequest(id)
	if _, pending := m.pendingReply[id]; pending {
		return
	}
	delay := time.Duration(m.cfg.Rng.Uint64n(uint64(m.params.QueryBackoffMax))) + 1
	m.pendingReply[id] = m.cfg.Sched.After(delay, func() {
		delete(m.pendingReply, id)
		cur, still := m.buf.Get(id)
		if !still {
			return
		}
		_ = e
		m.metrics.QueryReplies.Inc()
		m.sendRepair(origin, cur)
		m.announceHave(id, origin)
		m.resolveSearch(id, origin)
		m.trace("QUERY-REPLY", fmt.Sprintf("id=%v origin=%d via=%d", id, origin, from))
	})
}

// searchAttempt forwards the search to the next candidate and arms the
// retry timer. Under the paper's randomized scheme the candidate is a
// uniformly random region peer; under the deterministic hash baseline
// (§3.4) the candidates are the computable bufferer set, probed in rank
// order, skipping the random walk entirely.
func (m *Member) searchAttempt(s *searchState) {
	if m.searches[s.id] != s {
		return
	}
	if len(s.origins) == 0 {
		delete(m.searches, s.id)
		return
	}
	if s.tries >= m.params.MaxSearchTries {
		m.metrics.SearchFailures.Inc()
		m.trace("SEARCH-FAIL", s.id.String())
		delete(m.searches, s.id)
		return
	}
	var q topology.NodeID
	var ok bool
	if known, hit := m.knownBufferer[s.id]; hit && known != m.self {
		// A HAVE identified a bufferer: route directly. The cache entry is
		// consumed so a stale pointer (bufferer discarded since) degrades
		// back to the random walk on the next attempt.
		delete(m.knownBufferer, s.id)
		q, ok = known, true
	} else if m.locator != nil {
		q, ok = m.nextDeterministicTarget(s)
	} else {
		q, ok = m.nextRandomTarget()
	}
	if !ok {
		delete(m.searches, s.id)
		return
	}
	s.tries++
	m.metrics.SearchForwards.Inc()
	m.trace("SEARCH-FWD", fmt.Sprintf("id=%v to=%d try=%d", s.id, q, s.tries))
	// One SEARCH per origin so each awaiting requester is carried forward.
	for _, o := range s.origins {
		m.cfg.Transport.Send(q, wire.Message{Type: wire.TypeSearch, From: m.self, ID: s.id, Origin: o})
	}
	s.timer = m.cfg.Sched.After(m.params.IntraRTT+m.params.RetryGrace, func() { m.searchAttempt(s) })
}

// nextRandomTarget picks a uniformly random live region peer; with the
// failure detector on, suspected members are excluded so the random walk
// routes around crashed bufferers instead of timing out on them.
func (m *Member) nextRandomTarget() (topology.NodeID, bool) {
	peers, selfIdx := m.livePeers()
	if peerCount(peers, selfIdx) == 0 {
		return 0, false
	}
	return pickPeer(m.cfg.Rng, peers, selfIdx), true
}

// nextDeterministicTarget walks the hash-elected bufferer set in rank
// order (§3.4: any member can compute the set locally), preferring
// candidates the failure detector considers alive. If every candidate is
// suspected it falls back to rank order — a stale suspicion must not make
// the set unreachable forever.
func (m *Member) nextDeterministicTarget(s *searchState) (topology.NodeID, bool) {
	set := m.locator.Bufferers(s.id)
	var fallback topology.NodeID = topology.NoNode
	for i := s.tries; i < len(set)+s.tries; i++ {
		cand := set[i%len(set)]
		if cand == m.self {
			continue
		}
		if m.peerLive(cand) {
			return cand, true
		}
		if fallback == topology.NoNode {
			fallback = cand
		}
	}
	if fallback != topology.NoNode {
		return fallback, true
	}
	return 0, false
}

// onSearch handles a forwarded search request: serve it from the buffer,
// join the search, or (if never received) record the waiter and recover
// (§3.3 and its footnote 4).
func (m *Member) onSearch(from topology.NodeID, msg wire.Message) {
	id, origin := msg.ID, msg.Origin
	if e, ok := m.buf.Get(id); ok {
		m.buf.OnRequest(id) // a use: keeps the long-term copy warm
		// Search episodes spray redundant probes (retries, joiners whose
		// in-flight PDUs race the terminating HAVE). Serve each remote
		// requester at most once per round-trip window.
		key := servedKey{id: id, origin: origin}
		now := m.cfg.Sched.Now()
		if at, ok := m.served[key]; ok && now-at <= 2*m.params.IntraRTT {
			// Duplicate probe for an already-served requester: answer with
			// a unicast HAVE (no payload) so the prober stops, without
			// re-sending the repair or re-multicasting.
			m.metrics.HavesSent.Inc()
			m.cfg.Transport.Send(from, wire.Message{Type: wire.TypeHave, From: m.self, ID: id, Origin: origin})
			return
		}
		if len(m.served) > 1024 {
			// Lazy purge: entries matter only within the dedupe window.
			for k, at := range m.served {
				if now-at > 2*m.params.IntraRTT {
					delete(m.served, k)
				}
			}
		}
		m.served[key] = now
		m.metrics.SearchServed.Inc()
		m.sendRepair(origin, e)
		m.announceHave(id, origin)
		m.resolveSearch(id, origin)
		m.trace("SEARCH-SERVE", fmt.Sprintf("id=%v origin=%d via=%d", id, origin, from))
		return
	}
	st := m.source(id.Source)
	if !st.has(id.Seq) {
		// Footnote 4: a member that never received the message recovers it
		// itself; the recorded waiter gets the relay on receipt.
		m.addWaiter(id, origin)
		if m.params.RecoverOnRemoteEvidence {
			m.noteTop(id.Source, id.Seq)
		}
		return
	}
	m.metrics.SearchJoins.Inc()
	m.startSearch(id, origin)
}

// announceHave multicasts "I have the message" in the region, terminating
// the search episode for origin (§3.3).
func (m *Member) announceHave(id wire.MessageID, origin topology.NodeID) {
	m.metrics.HavesSent.Inc()
	msg := wire.Message{Type: wire.TypeHave, From: m.self, ID: id, Origin: origin}
	for i, p := range m.cfg.View.RegionMembers {
		if i == m.cfg.View.SelfIdx {
			continue
		}
		m.cfg.Transport.Send(p, msg)
	}
}

// onHave ends the local search episode for the served origin. If this
// member's episode carries other origins, they are redirected straight to
// the announcing bufferer rather than continuing the random walk.
func (m *Member) onHave(from topology.NodeID, msg wire.Message) {
	m.metrics.HavesRecv.Inc()
	m.knownBufferer[msg.ID] = from
	// The requester named in the HAVE has been served: holders receiving
	// late probes for the same (message, origin) must not repair again.
	m.served[servedKey{id: msg.ID, origin: msg.Origin}] = m.cfg.Sched.Now()
	// Another member answered: suppress our own pending query reply.
	if t, ok := m.pendingReply[msg.ID]; ok {
		t.Stop()
		delete(m.pendingReply, msg.ID)
		m.metrics.SuppressedReplies.Inc()
	}
	s, ok := m.searches[msg.ID]
	if !ok {
		return
	}
	s.dropOrigin(msg.Origin)
	if len(s.origins) == 0 {
		s.stop()
		delete(m.searches, msg.ID)
		m.trace("SEARCH-END", fmt.Sprintf("id=%v via HAVE from=%d", msg.ID, from))
		return
	}
	// Redirect remaining origins to the known bufferer.
	for _, o := range s.origins {
		m.metrics.SearchForwards.Inc()
		m.cfg.Transport.Send(from, wire.Message{Type: wire.TypeSearch, From: m.self, ID: msg.ID, Origin: o})
	}
	s.stop()
	delete(m.searches, msg.ID)
}

// resolveSearch reports a served remote requester to the hooks (the Fig. 8
// and Fig. 9 measurement point) and clears the origin from any local
// episode.
func (m *Member) resolveSearch(id wire.MessageID, origin topology.NodeID) {
	if s, ok := m.searches[id]; ok {
		s.dropOrigin(origin)
		if len(s.origins) == 0 {
			s.stop()
			delete(m.searches, id)
		}
	}
	if m.cfg.Hooks.OnSearchResolved != nil {
		m.cfg.Hooks.OnSearchResolved(id, origin)
	}
}

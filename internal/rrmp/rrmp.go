// Package rrmp implements the Randomized Reliable Multicast Protocol engine
// the paper builds its buffer management on: randomized local and remote
// error recovery (§2), feedback-based two-phase buffering (§3, via
// internal/core), the search-for-bufferer protocol (§3.3), and long-term
// buffer handoff on voluntary leave (§3.2).
//
// A Member is a single-threaded state machine driven by Receive (incoming
// PDUs) and timers from an injected clock.Scheduler. It performs I/O only
// through the Transport interface. In simulation, thousands of members run
// interleaved on one goroutine over virtual time; on real networks each
// member runs on its own executor goroutine (internal/udptransport). The
// member code is identical in both bindings.
package rrmp

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/gossipfd"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Each member derives its components' private streams off its own source
// with fixed labels (ASCII mnemonics), so buffer elections and failure
// detection never perturb the member's protocol draws.
const (
	// bufferStreamLabel: "bufferng" — the buffer's election stream.
	bufferStreamLabel = 0x6275666665726e67
	// gossipFDStreamLabel: "gossipfd" — the failure detector's stream.
	gossipFDStreamLabel = 0x676f737369706664
	// policyStreamLabel: "policyrg" — the private stream bound to policies
	// implementing core.RngBinder (demand-aware election draws). Deriving
	// it never advances the parent, so members running legacy policies
	// draw identically whether or not this label exists.
	policyStreamLabel = 0x706f6c6963797267
)

// Transport lets a member send PDUs. Implementations must deliver
// asynchronously (never call back into the member synchronously from Send),
// which both the simulator and the UDP binding guarantee.
type Transport interface {
	// Send transmits msg to one peer.
	Send(to topology.NodeID, msg wire.Message)
	// Broadcast transmits msg to the entire multicast group (the initial
	// IP multicast). Only the sender uses this.
	Broadcast(msg wire.Message)
}

// Hooks are optional experiment/instrumentation callbacks. All hooks run
// synchronously on the member's executor.
type Hooks struct {
	// OnDeliver fires once per distinct data message delivered.
	OnDeliver func(id wire.MessageID, at time.Duration)
	// OnEvict mirrors the buffer's eviction callback.
	OnEvict func(e *core.Entry, reason core.EvictReason)
	// OnPromote mirrors the buffer's long-term promotion callback.
	OnPromote func(e *core.Entry)
	// OnSearchResolved fires when this member sends a repair to a remote
	// requester, either straight from its buffer or at the end of a search
	// episode (§3.3). Figure 8/9 measure the time between remote-request
	// arrival and this event.
	OnSearchResolved func(id wire.MessageID, origin topology.NodeID)
	// OnRecovered fires when a message loss detected at this member is
	// repaired; latency is recover-time minus detect-time.
	OnRecovered func(id wire.MessageID, latency time.Duration)
}

// Config assembles a member.
type Config struct {
	// View is this member's partial group knowledge (own region + parent
	// region, §2.1).
	View topology.View
	// Transport sends PDUs; required.
	Transport Transport
	// Sched supplies time and timers; required.
	Sched clock.Scheduler
	// Rng is this member's private randomness stream; required.
	Rng *rng.Source
	// Params tunes the protocol; zero fields take defaults.
	Params Params
	// Policy overrides the buffering policy. Nil selects the paper's
	// two-phase policy built from Params.
	Policy core.Policy
	// Tracer observes protocol events; nil means no tracing.
	Tracer trace.Tracer
	// Hooks are optional instrumentation callbacks.
	Hooks Hooks
	// BufferIndex selects the buffer's entry-index implementation (the
	// default is the dense scale index; tests select the legacy map to
	// prove the two are behaviourally identical).
	BufferIndex core.IndexKind
}

// sourceState tracks per-sender reception: the highest sequence observed
// and the set of sequences ever received (which outlives buffer eviction —
// "received but discarded" is a distinct protocol state, §3.3).
//
// The received set is a bitset over sequence numbers rather than a map:
// sequences are dense (senders count 1, 2, 3, ...), so membership is one
// shift-and-mask, marking never hashes, and a member's whole reception
// state for a 10k-message run is ~1.25 KB. The contiguous-prefix cursor is
// cached and advanced incrementally — bits are never cleared, so the prefix
// is monotone and each sequence is inspected at most once across all
// Prefix calls instead of rescanning from the start-sequence every time.
type sourceState struct {
	maxSeen uint64
	// base is the first sequence the bitset covers (64-aligned, fixed at
	// the first mark); bit (seq-base) of bits[(seq-base)/64] is set iff
	// seq was received.
	base   uint64
	bits   []uint64
	marked bool
	// prefix is the cached largest k with every sequence in (prefixStart,
	// k] received; it only ever advances.
	prefix uint64
}

// has reports whether seq was ever received.
func (st *sourceState) has(seq uint64) bool {
	if !st.marked || seq < st.base {
		return false
	}
	i := seq - st.base
	w := i >> 6
	return w < uint64(len(st.bits)) && st.bits[w]&(1<<(i&63)) != 0
}

// mark records seq as received.
func (st *sourceState) mark(seq uint64) {
	if !st.marked {
		st.base = seq &^ 63
		st.marked = true
	}
	if seq < st.base {
		// A sequence below the first-ever mark (late joiner probing old
		// history): prepend words so the bitset still covers it.
		shift := (st.base - seq + 63) >> 6
		grown := make([]uint64, uint64(len(st.bits))+shift)
		copy(grown[shift:], st.bits)
		st.bits = grown
		st.base -= shift << 6
	}
	i := seq - st.base
	for uint64(len(st.bits)) <= i>>6 {
		st.bits = append(st.bits, 0)
	}
	st.bits[i>>6] |= 1 << (i & 63)
}

// Member is one RRMP group member. Not safe for concurrent use; drive it
// from a single goroutine.
type Member struct {
	cfg    Config
	params Params
	self   topology.NodeID

	buf     *core.Buffer
	locator interface {
		Bufferers(id wire.MessageID) []topology.NodeID
	} // non-nil only under the deterministic hash policy (§3.4)

	// Own-region membership (incl. self). The topology assigns region
	// members contiguous ascending IDs, so membership is normally the
	// range check [inRegionLo, inRegionHi] — a region-sized map per member
	// is exactly the O(members × region size) setup cost the 1M-member
	// path cannot afford. inRegion is the fallback for the (unused in
	// practice) non-contiguous case.
	inRegionLo topology.NodeID
	inRegionHi topology.NodeID
	inRegion   map[topology.NodeID]bool
	sources    map[topology.NodeID]*sourceState
	recoveries map[wire.MessageID]*recovery
	waiters    map[wire.MessageID][]topology.NodeID
	searches   map[wire.MessageID]*searchState
	pendingMC  map[wire.MessageID]clock.Timer // back-off regional multicasts
	// knownBufferer caches the sender of the last HAVE per message, so a
	// search request arriving after the terminating HAVE routes straight to
	// the announced bufferer instead of re-igniting the random walk. The
	// entry is consumed on use (the bufferer may since have discarded).
	knownBufferer map[wire.MessageID]topology.NodeID
	// pendingReply holds back-off timers for multicast-query replies
	// (SearchMulticastQuery mode only).
	pendingReply map[wire.MessageID]clock.Timer
	// served records when this member last repaired a given (message,
	// origin) pair from a search, so the burst of in-flight SEARCH PDUs
	// that race the terminating HAVE does not each trigger another repair.
	served map[servedKey]time.Duration
	// fd is the optional gossip failure detector (Params.FDEnabled);
	// nil when disabled, in which case every peer counts as live.
	fd *gossipfd.Detector
	// unrecovered holds messages whose recovery this member abandoned
	// after exhausting every retry budget; cleared again if the message
	// arrives late. See Metrics.Unrecoverable.
	unrecovered map[wire.MessageID]bool

	metrics Metrics
	left    bool
	crashed bool
}

// NewMember constructs a member. It panics on missing required
// dependencies (programming errors).
func NewMember(cfg Config) *Member {
	if cfg.Transport == nil {
		panic("rrmp: Config.Transport is required")
	}
	if cfg.Sched == nil {
		panic("rrmp: Config.Sched is required")
	}
	if cfg.Rng == nil {
		panic("rrmp: Config.Rng is required")
	}
	if cfg.Tracer == nil {
		cfg.Tracer = trace.Nop{}
	}
	m := &Member{
		cfg:           cfg,
		params:        cfg.Params.withDefaults(),
		self:          cfg.View.Self,
		sources:       make(map[topology.NodeID]*sourceState),
		recoveries:    make(map[wire.MessageID]*recovery),
		waiters:       make(map[wire.MessageID][]topology.NodeID),
		searches:      make(map[wire.MessageID]*searchState),
		pendingMC:     make(map[wire.MessageID]clock.Timer),
		knownBufferer: make(map[wire.MessageID]topology.NodeID),
		pendingReply:  make(map[wire.MessageID]clock.Timer),
		served:        make(map[servedKey]time.Duration),
		unrecovered:   make(map[wire.MessageID]bool),
	}
	m.initRegionMembership(cfg.View)

	policy := cfg.Policy
	if policy == nil {
		regionSize := cfg.View.NumPeers() + 1
		policy = core.NewTwoPhase(m.params.IdleThreshold, m.params.C, regionSize, m.params.LongTermTTL)
	}
	if loc, ok := policy.(interface {
		Bufferers(id wire.MessageID) []topology.NodeID
	}); ok {
		m.locator = loc
	}
	if binder, ok := policy.(core.RngBinder); ok {
		binder.BindRng(cfg.Rng.Split(policyStreamLabel))
	}
	m.buf = core.NewBuffer(core.Config{
		Policy:      policy,
		Sched:       cfg.Sched,
		Index:       cfg.BufferIndex,
		ByteBudget:  m.params.ByteBudget,
		CopyPayload: m.params.CopyOnStore,
		Rng:         cfg.Rng.Split(bufferStreamLabel),
		OnEvict: func(e *core.Entry, r core.EvictReason) {
			if r != core.EvictHandoff {
				m.metrics.BufferingTime.AddDuration(cfg.Sched.Now() - e.StoredAt)
			}
			if cfg.Hooks.OnEvict != nil {
				cfg.Hooks.OnEvict(e, r)
			}
		},
		OnPromote: cfg.Hooks.OnPromote,
	})
	if m.params.FDEnabled && cfg.View.NumPeers() > 0 {
		m.fd = gossipfd.New(gossipfd.Config{
			View:           cfg.View,
			Sched:          cfg.Sched,
			Rng:            cfg.Rng.Split(gossipFDStreamLabel),
			Send:           func(to topology.NodeID, msg wire.Message) { m.cfg.Transport.Send(to, msg) },
			GossipInterval: m.params.FDGossipInterval,
			FailTimeout:    m.params.FDFailTimeout,
			CleanupTimeout: m.params.FDCleanupTimeout,
			OnSuspect:      m.onSuspect,
			OnRestore:      m.onRestore,
		})
		m.fd.Start()
	}
	return m
}

// onSuspect reacts to the failure detector marking a peer dead: cached
// bufferer pointers at the suspect are dropped so in-flight searches fall
// back to the random walk instead of probing a corpse.
func (m *Member) onSuspect(n topology.NodeID) {
	m.metrics.Suspects.Inc()
	for id, who := range m.knownBufferer {
		if who == n {
			delete(m.knownBufferer, id)
		}
	}
	m.trace("SUSPECT", fmt.Sprintf("peer=%d", n))
}

func (m *Member) onRestore(n topology.NodeID) {
	m.metrics.Restores.Inc()
	m.trace("RESTORE", fmt.Sprintf("peer=%d", n))
}

// peerLive reports whether the failure detector considers n alive. With
// no detector every peer is live, preserving the pre-FD protocol exactly.
func (m *Member) peerLive(n topology.NodeID) bool {
	return m.fd == nil || !m.fd.Suspected(n)
}

// initRegionMembership derives the own-region membership test from the
// view: a range check when the (shared, ascending) region slice is
// contiguous and covers Self, a map otherwise.
func (m *Member) initRegionMembership(v topology.View) {
	rm := v.RegionMembers
	if len(rm) == 0 {
		m.inRegionLo, m.inRegionHi = m.self, m.self
		return
	}
	contiguous := true
	for i := 1; i < len(rm); i++ {
		if rm[i] != rm[i-1]+1 {
			contiguous = false
			break
		}
	}
	if contiguous && m.self >= rm[0] && m.self <= rm[len(rm)-1] {
		m.inRegionLo, m.inRegionHi = rm[0], rm[len(rm)-1]
		return
	}
	m.inRegion = make(map[topology.NodeID]bool, len(rm)+1)
	m.inRegion[m.self] = true
	for _, p := range rm {
		m.inRegion[p] = true
	}
}

// inOwnRegion reports whether n is a member of this member's own region
// (Self included).
func (m *Member) inOwnRegion(n topology.NodeID) bool {
	if m.inRegion != nil {
		return m.inRegion[n]
	}
	return n >= m.inRegionLo && n <= m.inRegionHi
}

// livePeers returns the candidate set for a random peer pick as a
// (members, selfIdx) pair: selfIdx >= 0 means the slice is the shared
// region-member list with Self at that index (to be skipped — the no-
// detector fast path, no allocation), selfIdx < 0 means a freshly built
// self-excluding list of peers the failure detector considers alive. If
// the detector suspects everyone (e.g. right after this member's own
// outage), it falls back to the full static view: probing a possibly-dead
// peer beats deadlocking on an empty candidate set. Use peerCount/pickPeer
// to consume the pair.
func (m *Member) livePeers() ([]topology.NodeID, int) {
	rm := m.cfg.View.RegionMembers
	selfIdx := m.cfg.View.SelfIdx
	if m.fd == nil {
		return rm, selfIdx
	}
	live := make([]topology.NodeID, 0, len(rm)-1)
	for i, p := range rm {
		if i == selfIdx {
			continue
		}
		if !m.fd.Suspected(p) {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return rm, selfIdx
	}
	return live, -1
}

// peerCount returns the number of candidates in a livePeers pair.
func peerCount(peers []topology.NodeID, selfIdx int) int {
	n := len(peers)
	if selfIdx >= 0 && n > 0 {
		n--
	}
	return n
}

// pickPeer draws one uniform candidate from a livePeers pair with a single
// rng draw: Intn over the candidate count, with indices at or past Self
// shifted up by one — index-for-index the same draw (and result) the old
// eager self-excluding peers slice produced. The caller must ensure
// peerCount > 0.
func pickPeer(r *rng.Source, peers []topology.NodeID, selfIdx int) topology.NodeID {
	if selfIdx < 0 {
		return peers[r.Intn(len(peers))]
	}
	j := r.Intn(len(peers) - 1)
	if j >= selfIdx {
		j++
	}
	return peers[j]
}

// ID returns the member's node id.
func (m *Member) ID() topology.NodeID { return m.self }

// Buffer exposes the member's message buffer (read-mostly; experiments
// sample occupancy and long-term counts).
func (m *Member) Buffer() *core.Buffer { return m.buf }

// Metrics returns the member's live metrics.
func (m *Member) Metrics() *Metrics { return &m.metrics }

// Left reports whether the member has left the group.
func (m *Member) Left() bool { return m.left }

// HasReceived reports whether id was ever delivered to this member
// (it may since have been discarded from the buffer).
func (m *Member) HasReceived(id wire.MessageID) bool {
	st, ok := m.sources[id.Source]
	return ok && st.has(id.Seq)
}

// Prefix returns the contiguous received prefix for src: the largest k such
// that every sequence in (StartSeq, k] has been received. Stability
// detection baselines gossip this value as their message-history digest.
func (m *Member) Prefix(src topology.NodeID) uint64 {
	st, ok := m.sources[src]
	if !ok {
		return m.params.StartSeq
	}
	k := st.prefix
	if k < m.params.StartSeq {
		k = m.params.StartSeq
	}
	for st.has(k + 1) {
		k++
	}
	st.prefix = k
	return k
}

// MaxSeen returns the highest sequence number observed from src.
func (m *Member) MaxSeen(src topology.NodeID) uint64 {
	st, ok := m.sources[src]
	if !ok {
		return m.params.StartSeq
	}
	return st.maxSeen
}

// SetDeliverHook (re)binds the delivery callback after construction.
// Experiment harnesses use this when the hook must close over state that
// exists only once the full cluster is wired.
func (m *Member) SetDeliverHook(fn func(id wire.MessageID, at time.Duration)) {
	m.cfg.Hooks.OnDeliver = fn
}

// SetSearchResolvedHook (re)binds the search-resolution callback after
// construction; see SetDeliverHook.
func (m *Member) SetSearchResolvedHook(fn func(id wire.MessageID, origin topology.NodeID)) {
	m.cfg.Hooks.OnSearchResolved = fn
}

// source returns (creating if needed) the reception state for src, with the
// loss-detection baseline at Params.StartSeq.
func (m *Member) source(src topology.NodeID) *sourceState {
	st, ok := m.sources[src]
	if !ok {
		st = &sourceState{maxSeen: m.params.StartSeq, prefix: m.params.StartSeq}
		m.sources[src] = st
	}
	return st
}

// Receive dispatches one incoming PDU. It is the single entry point for
// network input.
func (m *Member) Receive(from topology.NodeID, msg wire.Message) {
	if m.left || m.crashed {
		return
	}
	switch msg.Type {
	case wire.TypeData:
		m.onData(msg)
	case wire.TypeSession:
		m.onSession(msg)
	case wire.TypeLocalRequest:
		m.onLocalRequest(from, msg)
	case wire.TypeRemoteRequest:
		m.onRemoteRequest(from, msg)
	case wire.TypeRepair:
		m.onRepair(from, msg)
	case wire.TypeSearch:
		m.onSearch(from, msg)
	case wire.TypeQuery:
		m.onQuery(from, msg)
	case wire.TypeHave:
		m.onHave(from, msg)
	case wire.TypeHandoff:
		m.onHandoff(from, msg)
	case wire.TypeHeartbeat:
		if m.fd != nil {
			m.fd.Receive(msg)
		}
	default:
		// Unknown/baseline-only PDUs are ignored by the RRMP engine.
		m.trace("IGNORE", fmt.Sprintf("type=%v from=%d", msg.Type, from))
	}
}

// onData handles the sender's initial multicast.
func (m *Member) onData(msg wire.Message) {
	m.deliver(msg.ID, msg.Payload, msg.From)
}

// onSession advances loss detection to the sender's announced top sequence
// (§2.1: session messages catch the loss of the last message in a burst).
func (m *Member) onSession(msg wire.Message) {
	m.noteTop(msg.From, msg.TopSeq)
}

// onLocalRequest answers a local-recovery NAK if the message is buffered;
// otherwise the request is ignored (§2.2). Either way the request is
// feedback for the buffering algorithm when the entry exists (§3.1).
func (m *Member) onLocalRequest(from topology.NodeID, msg wire.Message) {
	m.metrics.LocalReqRecv.Inc()
	e, ok := m.buf.Get(msg.ID)
	if !ok {
		return // §2.2: "Otherwise it ignores the request."
	}
	m.buf.OnRequest(msg.ID)
	m.sendRepair(from, e)
}

// onRemoteRequest implements §3.3's three cases: buffered → repair;
// never received → record waiter; received-but-discarded → search.
func (m *Member) onRemoteRequest(from topology.NodeID, msg wire.Message) {
	m.metrics.RemoteReqRecv.Inc()
	id := msg.ID
	if e, ok := m.buf.Get(id); ok {
		m.buf.OnRequest(id)
		m.sendRepair(from, e)
		m.resolveSearch(id, from) // request landed on a holder: search time 0
		return
	}
	st := m.source(id.Source)
	if !st.has(id.Seq) {
		// Never received: remember the requester and relay on receipt.
		m.addWaiter(id, from)
		if m.params.RecoverOnRemoteEvidence {
			m.noteTop(id.Source, id.Seq)
		}
		return
	}
	// Received but discarded: search the region for a bufferer.
	m.startSearch(id, from)
}

// onRepair handles a retransmission: deliver it, and if it arrived from a
// remote region, multicast it into the local region so members sharing the
// loss receive it (§2.2).
func (m *Member) onRepair(from topology.NodeID, msg wire.Message) {
	m.metrics.RepairsRecv.Inc()
	fromLocal := m.inOwnRegion(from)
	isNew := m.deliver(msg.ID, msg.Payload, from)
	switch {
	case isNew && !fromLocal:
		m.scheduleRegionalMulticast(msg.ID, msg.Payload)
	case fromLocal:
		// Seeing the repair multicast by a local peer suppresses our own
		// pending regional multicast of the same message.
		if t, ok := m.pendingMC[msg.ID]; ok {
			t.Stop()
			delete(m.pendingMC, msg.ID)
			m.metrics.SuppressedMulticasts.Inc()
		}
	}
}

// onHandoff accepts a long-term buffer transfer from a leaving peer (§3.2).
func (m *Member) onHandoff(_ topology.NodeID, msg wire.Message) {
	m.metrics.HandoffsRecv.Inc()
	id := msg.ID
	st := m.source(id.Source)
	if !st.has(id.Seq) {
		// The transfer doubles as a delivery if we never had the message.
		m.deliver(id, msg.Payload, msg.From)
	}
	m.buf.StoreLongTerm(id, msg.Payload)
	m.trace("HANDOFF-RECV", id.String())
}

// deliver records a received message, stores it per the buffering policy,
// completes any recovery, relays to waiters, and satisfies searches. It
// returns false for duplicates.
func (m *Member) deliver(id wire.MessageID, payload []byte, from topology.NodeID) bool {
	st := m.source(id.Source)
	if st.has(id.Seq) {
		m.metrics.Duplicates.Inc()
		return false
	}
	st.mark(id.Seq)
	now := m.cfg.Sched.Now()

	m.buf.Store(id, payload)
	m.metrics.Delivered.Inc()
	m.trace("DELIVER", fmt.Sprintf("id=%v from=%d", id, from))

	// Complete an in-flight recovery.
	if rec, ok := m.recoveries[id]; ok {
		rec.stop()
		delete(m.recoveries, id)
		latency := now - rec.detectedAt
		m.metrics.RecoveryLatency.AddDuration(latency)
		if rec.rerecovery {
			m.metrics.ReRecoveryLatency.AddDuration(latency)
		}
		if m.cfg.Hooks.OnRecovered != nil {
			m.cfg.Hooks.OnRecovered(id, latency)
		}
	}

	// A message given up on can still arrive — a peer's regional repair
	// multicast, a handoff, a very late retransmission. It is then no
	// longer lost.
	if m.unrecovered[id] {
		delete(m.unrecovered, id)
		m.metrics.Unrecoverable.Add(-1)
	}

	// Relay to downstream members recorded as waiting (§2.2). The repair
	// is built from the in-hand payload, not the buffer: under a byte
	// budget the store above may have been denied (or instantly
	// displaced), and the waiters deserve the message either way.
	if ws := m.waiters[id]; len(ws) > 0 {
		delete(m.waiters, id)
		for _, w := range ws {
			m.metrics.WaiterRelays.Inc()
			m.sendRepairPayload(w, id, payload, false)
		}
	}

	// Detect gaps below this sequence number.
	m.noteTop(id.Source, id.Seq)

	if m.cfg.Hooks.OnDeliver != nil {
		m.cfg.Hooks.OnDeliver(id, now)
	}
	return true
}

// sendRepair transmits a buffered entry to one peer.
func (m *Member) sendRepair(to topology.NodeID, e *core.Entry) {
	m.sendRepairPayload(to, e.ID, e.Payload, e.State == core.StateLongTerm)
}

// sendRepairPayload transmits a repair from an in-hand payload, for paths
// where the message need not (or no longer) be buffered locally.
func (m *Member) sendRepairPayload(to topology.NodeID, id wire.MessageID, payload []byte, longTerm bool) {
	m.metrics.RepairsSent.Inc()
	m.cfg.Transport.Send(to, wire.Message{
		Type:     wire.TypeRepair,
		From:     m.self,
		ID:       id,
		Payload:  payload,
		LongTerm: longTerm,
	})
}

// scheduleRegionalMulticast multicasts a remotely repaired message into the
// local region, optionally after a randomized back-off that lets concurrent
// receivers suppress duplicates (§2.2, [14]).
func (m *Member) scheduleRegionalMulticast(id wire.MessageID, payload []byte) {
	if m.cfg.View.NumPeers() == 0 {
		return
	}
	if _, ok := m.pendingMC[id]; ok {
		return
	}
	if m.params.RepairBackoffMax <= 0 {
		m.regionalMulticast(id, payload)
		return
	}
	delay := time.Duration(m.cfg.Rng.Uint64n(uint64(m.params.RepairBackoffMax))) + 1
	m.pendingMC[id] = m.cfg.Sched.After(delay, func() {
		delete(m.pendingMC, id)
		m.regionalMulticast(id, payload)
	})
}

func (m *Member) regionalMulticast(id wire.MessageID, payload []byte) {
	m.metrics.RegionalMulticasts.Inc()
	m.trace("REGION-MC", id.String())
	msg := wire.Message{Type: wire.TypeRepair, From: m.self, ID: id, Payload: payload}
	for i, p := range m.cfg.View.RegionMembers {
		if i == m.cfg.View.SelfIdx {
			continue
		}
		m.cfg.Transport.Send(p, msg)
	}
}

// addWaiter records a remote requester to relay to on receipt, without
// duplicates.
func (m *Member) addWaiter(id wire.MessageID, who topology.NodeID) {
	for _, w := range m.waiters[id] {
		if w == who {
			return
		}
	}
	m.metrics.WaitersRecorded.Inc()
	m.waiters[id] = append(m.waiters[id], who)
}

// Leave removes the member from the group voluntarily: each long-term
// buffered message is transferred to a randomly selected region peer so no
// loss becomes unrecoverable (§3.2). The member then stops processing.
// A crashed member cannot leave gracefully; Leave is then a no-op.
func (m *Member) Leave() {
	if m.left || m.crashed {
		return
	}
	// Hand off to peers the failure detector believes are alive —
	// transferring the long-term buffer to a corpse would defeat §3.2.
	peers, selfIdx := m.livePeers()
	for _, e := range m.buf.TakeForHandoff() {
		if peerCount(peers, selfIdx) == 0 {
			break // sole region member: nothing to transfer to
		}
		to := pickPeer(m.cfg.Rng, peers, selfIdx)
		m.metrics.HandoffsSent.Inc()
		m.trace("HANDOFF-SEND", fmt.Sprintf("id=%v to=%d", e.ID, to))
		m.cfg.Transport.Send(to, wire.Message{
			Type:     wire.TypeHandoff,
			From:     m.self,
			ID:       e.ID,
			Payload:  e.Payload,
			LongTerm: true,
		})
	}
	for _, rec := range m.recoveries {
		rec.stop()
	}
	m.recoveries = make(map[wire.MessageID]*recovery)
	for _, s := range m.searches {
		s.stop()
	}
	m.searches = make(map[wire.MessageID]*searchState)
	for _, t := range m.pendingMC {
		t.Stop()
	}
	m.pendingMC = make(map[wire.MessageID]clock.Timer)
	for _, t := range m.pendingReply {
		t.Stop()
	}
	m.pendingReply = make(map[wire.MessageID]clock.Timer)
	if m.fd != nil {
		m.fd.Stop()
	}
	m.buf.Close()
	m.left = true
}

// Crash halts the member ungracefully: no handoff, every pending protocol
// timer stops, and incoming PDUs are ignored until Recover. Protocol state
// (reception sets, buffer contents) survives the outage, modeling a
// process that restarts from a warm image. The caller is responsible for
// also cutting the member's network (netsim.SetDown) so in-flight traffic
// behaves like a real crash.
func (m *Member) Crash() {
	if m.left || m.crashed {
		return
	}
	for _, rec := range m.recoveries {
		rec.stop()
	}
	m.recoveries = make(map[wire.MessageID]*recovery)
	for _, s := range m.searches {
		s.stop()
	}
	m.searches = make(map[wire.MessageID]*searchState)
	for _, t := range m.pendingMC {
		t.Stop()
	}
	m.pendingMC = make(map[wire.MessageID]clock.Timer)
	for _, t := range m.pendingReply {
		t.Stop()
	}
	m.pendingReply = make(map[wire.MessageID]clock.Timer)
	if m.fd != nil {
		m.fd.Stop()
	}
	m.crashed = true
	m.trace("CRASH", "")
}

// Recover resumes a crashed member. Gossip restarts, and every gap the
// member had already observed (detected losses whose recovery died with
// the crash) is re-detected and recovered again — the re-recovery path
// whose latency Metrics.ReRecoveryLatency records. Losses of messages
// published during the outage surface through the next session message as
// usual. No-op unless the member is crashed.
func (m *Member) Recover() {
	if m.left || !m.crashed {
		return
	}
	m.crashed = false
	if m.fd != nil {
		m.fd.Start()
	}
	m.trace("RECOVER", "")
	// Walk sources in a fixed order: recovery start order pairs rng draws
	// with messages, so map iteration order must not leak into runs.
	srcs := make([]topology.NodeID, 0, len(m.sources))
	for src := range m.sources {
		srcs = append(srcs, src)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	for _, src := range srcs {
		st := m.sources[src]
		for seq := m.params.StartSeq + 1; seq <= st.maxSeen; seq++ {
			if !st.has(seq) {
				id := wire.MessageID{Source: src, Seq: seq}
				if m.unrecovered[id] {
					// A fresh retry budget: the message is back in
					// flight, not lost.
					delete(m.unrecovered, id)
					m.metrics.Unrecoverable.Add(-1)
				}
				m.startRecoveryTagged(id, true)
			}
		}
	}
}

// Crashed reports whether the member is currently crashed.
func (m *Member) Crashed() bool { return m.crashed }

// Unrecovered returns the messages this member has given up recovering,
// sorted by (source, sequence). Empty for a healthy quiesced run.
func (m *Member) Unrecovered() []wire.MessageID {
	out := make([]wire.MessageID, 0, len(m.unrecovered))
	for id := range m.unrecovered {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

func (m *Member) trace(kind, detail string) {
	if !m.cfg.Tracer.Enabled() {
		return
	}
	m.cfg.Tracer.Emit(trace.Event{At: m.cfg.Sched.Now(), Node: m.self, Kind: kind, Detail: detail})
}

package rrmp

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// TestConvergenceProperty: for arbitrary seeds, loss rates up to 50%, and
// region sizes, a group running with C = n (certain long-term bufferers)
// delivers every published message to every member. This is the protocol's
// core guarantee in the regime where §5's probabilistic caveat vanishes.
func TestConvergenceProperty(t *testing.T) {
	prop := func(seedRaw uint16, nRaw, lossRaw, msgsRaw uint8) bool {
		n := int(nRaw%20) + 5              // 5..24 members
		lossP := float64(lossRaw%51) / 100 // 0..0.50
		msgs := int(msgsRaw%4) + 1         // 1..4 messages
		seed := uint64(seedRaw) + 1

		topo, err := topology.SingleRegion(n)
		if err != nil {
			return false
		}
		params := DefaultParams()
		params.C = float64(n)
		c := newClusterQuiet(topo, params, seed, &netsim.BernoulliLoss{
			P:    lossP,
			Only: map[wire.Type]bool{wire.TypeData: true},
			Rng:  rng.New(seed ^ 0xff),
		})
		c.sender.StartSessions()
		for i := 0; i < msgs; i++ {
			i := i
			c.sim.At(time.Duration(i)*15*time.Millisecond, func() { c.sender.Publish([]byte{byte(i)}) })
		}
		c.sim.RunUntil(4 * time.Second)
		for seq := uint64(1); seq <= uint64(msgs); seq++ {
			id := wire.MessageID{Source: topo.Sender(), Seq: seq}
			if c.deliveredCount(id) != n {
				return false
			}
		}
		// Invariant: nobody double-delivers (Delivered counts distinct).
		var delivered int64
		for _, m := range c.members {
			delivered += m.Metrics().Delivered.Value()
		}
		return delivered == int64(n*msgs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSearchAlwaysResolvesProperty: for arbitrary placements with at least
// one long-term bufferer, a remote request eventually produces the repair.
func TestSearchAlwaysResolvesProperty(t *testing.T) {
	prop := func(seedRaw uint16, nRaw, bRaw uint8) bool {
		n := int(nRaw%40) + 10 // 10..49
		b := int(bRaw)%n + 1   // 1..n bufferers
		seed := uint64(seedRaw) + 1

		topo, err := topology.Chain(n, 1)
		if err != nil {
			return false
		}
		params := DefaultParams()
		params.LongTermTTL = 0
		c := newClusterQuiet(topo, params, seed, nil)
		id := wire.MessageID{Source: topo.Sender(), Seq: 1}
		region := topo.Members(0)
		pick := rng.New(seed).Split(7)
		perm := pick.Perm(n)
		holders := make(map[topology.NodeID]bool, b)
		for i := 0; i < b; i++ {
			holders[region[perm[i]]] = true
		}
		for _, node := range region {
			if holders[node] {
				c.members[node].InjectLongTerm(id, []byte("p"))
			} else {
				c.members[node].InjectDiscarded(id)
			}
		}
		requester := topo.MemberAt(1, 0)
		target := region[pick.Intn(n)]
		c.net.Unicast(requester, target, wire.Message{
			Type: wire.TypeRemoteRequest, From: requester, ID: id, Origin: requester,
		})
		c.sim.RunUntil(20 * time.Second)
		return c.members[requester].HasReceived(id)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuiescenceProperty: after delivery completes and sessions stop, the
// simulation drains — no protocol component spins forever.
func TestQuiescenceProperty(t *testing.T) {
	prop := func(seedRaw uint16, lossRaw uint8) bool {
		seed := uint64(seedRaw) + 1
		lossP := float64(lossRaw%31) / 100
		topo, err := topology.SingleRegion(12)
		if err != nil {
			return false
		}
		params := DefaultParams()
		params.C = 12
		params.LongTermTTL = 500 * time.Millisecond
		c := newClusterQuiet(topo, params, seed, &netsim.BernoulliLoss{
			P:    lossP,
			Only: map[wire.Type]bool{wire.TypeData: true},
			Rng:  rng.New(seed ^ 0xaa),
		})
		c.sender.Publish([]byte("q"))
		c.sim.RunUntil(2 * time.Second)
		// No sessions were started; the event queue must be empty or
		// near-empty (only bounded-retry stragglers), and bounded-draining.
		c.sim.MustQuiesce(200_000)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// newClusterQuiet builds a cluster without requiring *testing.T (usable
// inside quick.Check properties).
func newClusterQuiet(topo *topology.Topology, params Params, seed uint64, loss netsim.LossModel) *cluster {
	s := sim.New()
	lat := netsim.HierLatency{Topo: topo, IntraOneWay: 5 * time.Millisecond, InterOneWay: 50 * time.Millisecond}
	net := netsim.New(s, lat, loss)
	root := rng.New(seed)
	c := &cluster{sim: s, net: net, topo: topo, members: make(map[topology.NodeID]*Member)}
	for r := 0; r < topo.NumRegions(); r++ {
		c.all = append(c.all, topo.Members(topology.RegionID(r))...)
	}
	for _, n := range c.all {
		view, err := topo.ViewOf(n)
		if err != nil {
			panic(err)
		}
		m := NewMember(Config{
			View:      view,
			Transport: &NetTransport{Net: net, Self: n, Group: c.all},
			Sched:     s,
			Rng:       root.Split(uint64(n) + 1),
			Params:    params,
		})
		c.members[n] = m
		member := m
		net.Register(n, func(p netsim.Packet) { member.Receive(p.From, p.Msg) })
	}
	c.sender = NewSender(c.members[topo.Sender()])
	return c
}

// TestCrashFaultAccountingProperty is the crash-fault safety property:
// under an arbitrary crash schedule of non-sender members below quorum
// (fewer than half the group crash-stops, at arbitrary times, possibly
// including every long-term bufferer of a message), every published
// message is eventually either delivered to each surviving member or
// explicitly counted in that member's Unrecoverable metric. Nothing is
// ever silently lost. Run across 24 deterministic seeds.
func TestCrashFaultAccountingProperty(t *testing.T) {
	const seeds = 24
	for seed := uint64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			draw := rng.New(seed).Split(0xc4a54)
			n := 10 + int(draw.Uint64n(11)) // 10..20 members
			msgs := 3 + int(draw.Uint64n(4))
			lossP := 0.1 + 0.3*draw.Float64()

			topo, err := topology.SingleRegion(n)
			if err != nil {
				t.Fatal(err)
			}
			params := DefaultParams()
			params.FDEnabled = true
			params.C = 2 // few bufferers, so crashes can kill every holder
			params.LongTermTTL = 0
			c := newClusterQuiet(topo, params, seed, &netsim.BernoulliLoss{
				P:    lossP,
				Only: map[wire.Type]bool{wire.TypeData: true},
				Rng:  rng.New(seed ^ 0xcc),
			})
			c.sender.StartSessions()
			for i := 0; i < msgs; i++ {
				i := i
				c.sim.At(time.Duration(i)*25*time.Millisecond, func() {
					c.sender.Publish([]byte{byte(i)})
				})
			}

			// Crash schedule: k < n/2 distinct non-sender members at
			// arbitrary instants in the first two seconds.
			k := 1 + int(draw.Uint64n(uint64(n/2-1))) // 1 .. n/2-1
			perm := draw.Perm(n - 1)
			for i := 0; i < k; i++ {
				victim := topology.NodeID(perm[i] + 1) // skip sender 0
				at := time.Duration(draw.Uint64n(uint64(2 * time.Second)))
				c.sim.At(at, func() {
					c.members[victim].Crash()
					c.net.SetDown(victim, true)
				})
			}

			// Long horizon: every retry budget (64 local tries ≈ 0.7 s per
			// episode, restarted at most once per session round) concludes
			// well before 15 s of virtual time.
			c.sim.RunUntil(15 * time.Second)

			for seq := uint64(1); seq <= uint64(msgs); seq++ {
				id := wire.MessageID{Source: topo.Sender(), Seq: seq}
				for _, node := range c.all {
					m := c.members[node]
					if m.Crashed() {
						continue // crashed members are excused
					}
					if m.HasReceived(id) {
						continue
					}
					if m.Recovering(id) {
						t.Fatalf("member %d still recovering %v at horizon", node, id)
					}
					unrec := false
					for _, u := range m.Unrecovered() {
						if u == id {
							unrec = true
							break
						}
					}
					if !unrec {
						t.Fatalf("member %d silently lost %v: neither delivered nor counted unrecoverable", node, id)
					}
				}
			}
			// Accounting invariant: the counter equals the set size.
			for _, node := range c.all {
				m := c.members[node]
				if got, want := m.Metrics().Unrecoverable.Value(), int64(len(m.Unrecovered())); got != want {
					t.Fatalf("member %d Unrecoverable=%d but |Unrecovered|=%d", node, got, want)
				}
			}
		})
	}
}

package rrmp

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// TestConvergenceProperty: for arbitrary seeds, loss rates up to 50%, and
// region sizes, a group running with C = n (certain long-term bufferers)
// delivers every published message to every member. This is the protocol's
// core guarantee in the regime where §5's probabilistic caveat vanishes.
func TestConvergenceProperty(t *testing.T) {
	prop := func(seedRaw uint16, nRaw, lossRaw, msgsRaw uint8) bool {
		n := int(nRaw%20) + 5              // 5..24 members
		lossP := float64(lossRaw%51) / 100 // 0..0.50
		msgs := int(msgsRaw%4) + 1         // 1..4 messages
		seed := uint64(seedRaw) + 1

		topo, err := topology.SingleRegion(n)
		if err != nil {
			return false
		}
		params := DefaultParams()
		params.C = float64(n)
		c := newClusterQuiet(topo, params, seed, &netsim.BernoulliLoss{
			P:    lossP,
			Only: map[wire.Type]bool{wire.TypeData: true},
			Rng:  rng.New(seed ^ 0xff),
		})
		c.sender.StartSessions()
		for i := 0; i < msgs; i++ {
			i := i
			c.sim.At(time.Duration(i)*15*time.Millisecond, func() { c.sender.Publish([]byte{byte(i)}) })
		}
		c.sim.RunUntil(4 * time.Second)
		for seq := uint64(1); seq <= uint64(msgs); seq++ {
			id := wire.MessageID{Source: topo.Sender(), Seq: seq}
			if c.deliveredCount(id) != n {
				return false
			}
		}
		// Invariant: nobody double-delivers (Delivered counts distinct).
		var delivered int64
		for _, m := range c.members {
			delivered += m.Metrics().Delivered.Value()
		}
		return delivered == int64(n*msgs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSearchAlwaysResolvesProperty: for arbitrary placements with at least
// one long-term bufferer, a remote request eventually produces the repair.
func TestSearchAlwaysResolvesProperty(t *testing.T) {
	prop := func(seedRaw uint16, nRaw, bRaw uint8) bool {
		n := int(nRaw%40) + 10 // 10..49
		b := int(bRaw)%n + 1   // 1..n bufferers
		seed := uint64(seedRaw) + 1

		topo, err := topology.Chain(n, 1)
		if err != nil {
			return false
		}
		params := DefaultParams()
		params.LongTermTTL = 0
		c := newClusterQuiet(topo, params, seed, nil)
		id := wire.MessageID{Source: topo.Sender(), Seq: 1}
		region := topo.Members(0)
		pick := rng.New(seed).Split(7)
		perm := pick.Perm(n)
		holders := make(map[topology.NodeID]bool, b)
		for i := 0; i < b; i++ {
			holders[region[perm[i]]] = true
		}
		for _, node := range region {
			if holders[node] {
				c.members[node].InjectLongTerm(id, []byte("p"))
			} else {
				c.members[node].InjectDiscarded(id)
			}
		}
		requester := topo.MemberAt(1, 0)
		target := region[pick.Intn(n)]
		c.net.Unicast(requester, target, wire.Message{
			Type: wire.TypeRemoteRequest, From: requester, ID: id, Origin: requester,
		})
		c.sim.RunUntil(20 * time.Second)
		return c.members[requester].HasReceived(id)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuiescenceProperty: after delivery completes and sessions stop, the
// simulation drains — no protocol component spins forever.
func TestQuiescenceProperty(t *testing.T) {
	prop := func(seedRaw uint16, lossRaw uint8) bool {
		seed := uint64(seedRaw) + 1
		lossP := float64(lossRaw%31) / 100
		topo, err := topology.SingleRegion(12)
		if err != nil {
			return false
		}
		params := DefaultParams()
		params.C = 12
		params.LongTermTTL = 500 * time.Millisecond
		c := newClusterQuiet(topo, params, seed, &netsim.BernoulliLoss{
			P:    lossP,
			Only: map[wire.Type]bool{wire.TypeData: true},
			Rng:  rng.New(seed ^ 0xaa),
		})
		c.sender.Publish([]byte("q"))
		c.sim.RunUntil(2 * time.Second)
		// No sessions were started; the event queue must be empty or
		// near-empty (only bounded-retry stragglers), and bounded-draining.
		c.sim.MustQuiesce(200_000)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// newClusterQuiet builds a cluster without requiring *testing.T (usable
// inside quick.Check properties).
func newClusterQuiet(topo *topology.Topology, params Params, seed uint64, loss netsim.LossModel) *cluster {
	s := sim.New()
	lat := netsim.HierLatency{Topo: topo, IntraOneWay: 5 * time.Millisecond, InterOneWay: 50 * time.Millisecond}
	net := netsim.New(s, lat, loss)
	root := rng.New(seed)
	c := &cluster{sim: s, net: net, topo: topo, members: make(map[topology.NodeID]*Member)}
	for r := 0; r < topo.NumRegions(); r++ {
		c.all = append(c.all, topo.Members(topology.RegionID(r))...)
	}
	for _, n := range c.all {
		view, err := topo.ViewOf(n)
		if err != nil {
			panic(err)
		}
		m := NewMember(Config{
			View:      view,
			Transport: &NetTransport{Net: net, Self: n, Group: c.all},
			Sched:     s,
			Rng:       root.Split(uint64(n) + 1),
			Params:    params,
		})
		c.members[n] = m
		member := m
		net.Register(n, func(p netsim.Packet) { member.Receive(p.From, p.Msg) })
	}
	c.sender = NewSender(c.members[topo.Sender()])
	return c
}

package rrmp

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/wire"
)

func TestSenderSequencesAndSessions(t *testing.T) {
	topo := singleRegion(t, 5)
	c := newCluster(t, topo, DefaultParams(), 20, nil)
	id1 := c.sender.Publish([]byte("a"))
	id2 := c.sender.Publish([]byte("b"))
	if id1.Seq != 1 || id2.Seq != 2 {
		t.Fatalf("sequence numbers %d, %d", id1.Seq, id2.Seq)
	}
	if c.sender.Seq() != 2 {
		t.Fatalf("Seq() = %d", c.sender.Seq())
	}
	if id1.Source != topo.Sender() {
		t.Fatalf("source %d", id1.Source)
	}
	// Sessions tick periodically and stop cleanly.
	c.sender.StartSessions()
	c.sender.StartSessions() // idempotent
	c.sim.RunUntil(450 * time.Millisecond)
	c.sender.StopSessions()
	c.sender.StopSessions() // idempotent
	sent := c.net.Stats().SentCount(wire.TypeSession)
	if sent == 0 {
		t.Fatal("no session messages sent")
	}
	c.sim.RunUntil(2 * time.Second)
	if got := c.net.Stats().SentCount(wire.TypeSession); got != sent {
		t.Fatalf("sessions continued after stop: %d -> %d", sent, got)
	}
	// The sender buffers its own messages (it is also a receiver, §2.1).
	if c.members[topo.Sender()].Metrics().Delivered.Value() != 2 {
		t.Fatal("sender did not deliver to itself")
	}
}

func TestLateJoinerBaseline(t *testing.T) {
	// A member that joins after 10 messages must not try to recover
	// history before its StartSeq baseline.
	topo := singleRegion(t, 6)
	c := newCluster(t, topo, DefaultParams(), 21, nil)
	for i := 0; i < 10; i++ {
		c.sender.Publish([]byte{byte(i)})
	}
	c.sim.RunUntil(500 * time.Millisecond)

	// "Join": rebuild member 5 with a baseline at the current top.
	params := DefaultParams()
	params.StartSeq = c.sender.Seq()
	view, err := topo.ViewOf(5)
	if err != nil {
		t.Fatal(err)
	}
	joiner := NewMember(Config{
		View:      view,
		Transport: &NetTransport{Net: c.net, Self: 5, Group: c.all},
		Sched:     c.sim,
		Rng:       c.members[5].cfg.Rng,
		Params:    params,
	})
	c.members[5] = joiner
	c.net.Register(5, func(p netsim.Packet) { joiner.Receive(p.From, p.Msg) })

	id11 := c.sender.Publish([]byte("post-join"))
	c.sim.RunUntil(2 * time.Second)

	if !joiner.HasReceived(id11) {
		t.Fatal("joiner missed a post-join message")
	}
	if joiner.Metrics().LocalReqSent.Value() != 0 {
		t.Fatal("joiner tried to recover pre-join history")
	}
	for seq := uint64(1); seq <= 10; seq++ {
		if joiner.Recovering(wire.MessageID{Source: topo.Sender(), Seq: seq}) {
			t.Fatalf("joiner recovering pre-baseline seq %d", seq)
		}
	}
}

func TestMulticastQueryModeEndToEnd(t *testing.T) {
	topo := chainRegions(t, 30, 1)
	params := DefaultParams()
	params.SearchMode = SearchMulticastQuery
	params.LongTermTTL = 0
	c := newCluster(t, topo, params, 22, nil)

	id := wire.MessageID{Source: topo.Sender(), Seq: 1}
	region := topo.Members(0)
	for i, n := range region {
		if i < 5 {
			c.members[n].InjectLongTerm(id, []byte("q"))
		} else {
			c.members[n].InjectDiscarded(id)
		}
	}
	requester := topo.MemberAt(1, 0)
	target := region[10] // a discarded member
	c.net.Unicast(requester, target, wire.Message{
		Type: wire.TypeRemoteRequest, From: requester, ID: id, Origin: requester,
	})
	c.sim.RunUntil(5 * time.Second)

	if !c.members[requester].HasReceived(id) {
		t.Fatal("multicast-query search failed to repair the requester")
	}
	var queries, replies int64
	for _, n := range region {
		queries += c.members[n].Metrics().QueriesSent.Value()
		replies += c.members[n].Metrics().QueryReplies.Value()
	}
	if queries == 0 {
		t.Fatal("no multicast queries sent")
	}
	if replies == 0 {
		t.Fatal("no query replies sent")
	}
}

func TestLeaveIsIdempotentAndSoleMemberSafe(t *testing.T) {
	topo := singleRegion(t, 1)
	c := newCluster(t, topo, DefaultParams(), 23, nil)
	m := c.members[0]
	m.InjectLongTerm(wire.MessageID{Source: 0, Seq: 1}, []byte("x"))
	m.Leave() // no peers: must not panic, entries simply dropped
	m.Leave() // idempotent
	if !m.Left() {
		t.Fatal("not left")
	}
	if m.Metrics().HandoffsSent.Value() != 0 {
		t.Fatal("sole member handed off to nobody?")
	}
}

func TestHandoffToCrashedPeerIsLost(t *testing.T) {
	// §3.2's transfer goes to a random peer; if that peer is dead the copy
	// is lost — the protocol's probabilistic guarantee, made visible.
	topo := singleRegion(t, 2)
	c := newCluster(t, topo, DefaultParams(), 24, nil)
	id := wire.MessageID{Source: 0, Seq: 1}
	c.members[0].InjectLongTerm(id, []byte("x"))
	c.net.SetDown(1, true)
	c.members[0].Leave()
	c.sim.RunUntil(time.Second)
	if c.members[1].Buffer().Has(id) {
		t.Fatal("crashed peer holds the handoff")
	}
	// The handoff was sent (and dropped by the network).
	if c.members[0].Metrics().HandoffsSent.Value() != 1 {
		t.Fatal("handoff not attempted")
	}
	if c.net.Stats().DroppedCount(wire.TypeHandoff) != 1 {
		t.Fatal("drop not accounted")
	}
}

func TestDuplicateRemoteRequestsMergeOrigins(t *testing.T) {
	topo := chainRegions(t, 10, 2)
	params := DefaultParams()
	params.LongTermTTL = 0
	c := newCluster(t, topo, params, 25, nil)
	id := wire.MessageID{Source: topo.Sender(), Seq: 1}
	region := topo.Members(0)
	for i, n := range region {
		if i == 7 {
			c.members[n].InjectLongTerm(id, []byte("m"))
		} else {
			c.members[n].InjectDiscarded(id)
		}
	}
	// Two distinct downstream requesters hit the same discarded member.
	r1, r2 := topo.MemberAt(1, 0), topo.MemberAt(1, 1)
	target := region[0]
	for _, r := range []topology.NodeID{r1, r2} {
		c.net.Unicast(r, target, wire.Message{
			Type: wire.TypeRemoteRequest, From: r, ID: id, Origin: r,
		})
	}
	c.sim.RunUntil(5 * time.Second)
	if !c.members[r1].HasReceived(id) || !c.members[r2].HasReceived(id) {
		t.Fatal("merged search did not repair both requesters")
	}
	// Each requester is repaired without implosion: the serve-side dedupe
	// bounds repairs per origin to ~1 within the search window.
	for _, r := range []topology.NodeID{r1, r2} {
		if got := c.members[r].Metrics().RepairsRecv.Value(); got < 1 || got > 2 {
			t.Fatalf("requester %d received %d repairs, want 1..2", r, got)
		}
	}
}

func TestSearchFailureWhenNothingBuffered(t *testing.T) {
	topo := chainRegions(t, 5, 1)
	params := DefaultParams()
	params.MaxSearchTries = 4
	c := newCluster(t, topo, params, 26, nil)
	id := wire.MessageID{Source: topo.Sender(), Seq: 1}
	for _, n := range topo.Members(0) {
		c.members[n].InjectDiscarded(id) // discarded EVERYWHERE
	}
	requester := topo.MemberAt(1, 0)
	c.net.Unicast(requester, topo.MemberAt(0, 2), wire.Message{
		Type: wire.TypeRemoteRequest, From: requester, ID: id, Origin: requester,
	})
	c.sim.MustQuiesce(1_000_000)
	if c.members[requester].HasReceived(id) {
		t.Fatal("requester received a message nobody buffered")
	}
	var failures int64
	for _, n := range topo.Members(0) {
		failures += c.members[n].Metrics().SearchFailures.Value()
	}
	if failures == 0 {
		t.Fatal("exhausted searches not counted as failures")
	}
}

func TestPrefixAndMaxSeen(t *testing.T) {
	topo := singleRegion(t, 3)
	c := newCluster(t, topo, DefaultParams(), 27, nil)
	m := c.members[1]
	src := topo.Sender()
	if m.Prefix(src) != 0 || m.MaxSeen(src) != 0 {
		t.Fatal("fresh member has nonzero progress")
	}
	m.InjectDeliver(wire.MessageID{Source: src, Seq: 1}, nil)
	m.InjectDeliver(wire.MessageID{Source: src, Seq: 2}, nil)
	m.InjectDeliver(wire.MessageID{Source: src, Seq: 5}, nil)
	if got := m.Prefix(src); got != 2 {
		t.Fatalf("prefix = %d, want 2 (gap at 3)", got)
	}
	if got := m.MaxSeen(src); got != 5 {
		t.Fatalf("maxSeen = %d", got)
	}
	m.InjectDeliver(wire.MessageID{Source: src, Seq: 3}, nil)
	m.InjectDeliver(wire.MessageID{Source: src, Seq: 4}, nil)
	if got := m.Prefix(src); got != 5 {
		t.Fatalf("prefix = %d after filling the gap", got)
	}
}

func TestRegionalMulticastSkippedForSoleMember(t *testing.T) {
	// A single-member region receiving a remote repair has nobody to
	// re-multicast to; must not count a regional multicast.
	topo := chainRegions(t, 2, 1)
	c := newCluster(t, topo, DefaultParams(), 28, nil)
	leaf := topo.MemberAt(1, 0)
	parent := topo.MemberAt(0, 0)
	id := wire.MessageID{Source: topo.Sender(), Seq: 1}
	c.net.Unicast(parent, leaf, wire.Message{Type: wire.TypeRepair, From: parent, ID: id, Payload: []byte("r")})
	c.sim.RunUntil(time.Second)
	if !c.members[leaf].HasReceived(id) {
		t.Fatal("leaf did not deliver the repair")
	}
	if c.members[leaf].Metrics().RegionalMulticasts.Value() != 0 {
		t.Fatal("sole region member counted a regional multicast")
	}
}

func TestBufferingTimeExcludesHandoff(t *testing.T) {
	topo := singleRegion(t, 4)
	c := newCluster(t, topo, DefaultParams(), 29, nil)
	m := c.members[1]
	m.InjectLongTerm(wire.MessageID{Source: 0, Seq: 1}, nil)
	c.sim.RunUntil(100 * time.Millisecond)
	m.Leave()
	if got := m.Metrics().BufferingTime.N(); got != 0 {
		t.Fatalf("handoff recorded %d buffering-time samples", got)
	}
}

func TestPolicyOverrideViaConfig(t *testing.T) {
	topo := singleRegion(t, 4)
	view, err := topo.ViewOf(1)
	if err != nil {
		t.Fatal(err)
	}
	c := newCluster(t, topo, DefaultParams(), 30, nil)
	m := NewMember(Config{
		View:      view,
		Transport: &NetTransport{Net: c.net, Self: 1, Group: c.all},
		Sched:     c.sim,
		Rng:       c.members[1].cfg.Rng.Split(99),
		Policy:    core.BufferAll{},
	})
	id := wire.MessageID{Source: 0, Seq: 1}
	m.InjectDeliver(id, nil)
	c.sim.RunUntil(time.Hour)
	if !m.Buffer().Has(id) {
		t.Fatal("buffer-all override evicted")
	}
}

package rrmp

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/topology"
	"repro/internal/wire"
)

// recovery is one in-flight loss-recovery episode. The two phases run
// concurrently (§2.2): local recovery asks random region neighbors with
// RTT-based retries; remote recovery flips a λ/n coin per round and asks a
// random parent-region member.
type recovery struct {
	id          wire.MessageID
	detectedAt  time.Duration
	localTries  int
	remoteTries int
	localTimer  clock.Timer
	remoteTimer clock.Timer
	// localDead / remoteDead mark a phase that can make no further
	// progress (retry budget exhausted, or no peers to ask). When both
	// are set the episode is abandoned and counted unrecoverable.
	localDead  bool
	remoteDead bool
	// rerecovery marks an episode re-initiated by Member.Recover after a
	// crash outage; its completion feeds Metrics.ReRecoveryLatency.
	rerecovery bool
}

func (r *recovery) stop() {
	if r.localTimer != nil {
		r.localTimer.Stop()
		r.localTimer = nil
	}
	if r.remoteTimer != nil {
		r.remoteTimer.Stop()
		r.remoteTimer = nil
	}
}

// noteTop advances loss detection for src up to sequence top: every
// unreceived sequence in (maxSeen, top] is a detected loss (§2.1: gaps in
// the sequence space, plus session messages for burst tails).
func (m *Member) noteTop(src topology.NodeID, top uint64) {
	st := m.source(src)
	if top <= st.maxSeen {
		return
	}
	for seq := st.maxSeen + 1; seq <= top; seq++ {
		if !st.has(seq) {
			m.startRecovery(wire.MessageID{Source: src, Seq: seq})
		}
	}
	st.maxSeen = top
}

// StartRecovery begins loss recovery for id as if the member had just
// detected the loss. It is exported for the experiment harness, which uses
// it to reproduce §4's "all other members simultaneously detect the loss".
// It is a no-op if the member is gone, the message was already received,
// or recovery is active.
func (m *Member) StartRecovery(id wire.MessageID) {
	if m.left || m.crashed {
		return
	}
	m.startRecovery(id)
}

func (m *Member) startRecovery(id wire.MessageID) {
	m.startRecoveryTagged(id, false)
}

// startRecoveryTagged starts recovery, optionally marking the episode as a
// post-crash re-recovery (Member.Recover sets rerecovery).
func (m *Member) startRecoveryTagged(id wire.MessageID, rerecovery bool) {
	if m.source(id.Source).has(id.Seq) {
		return
	}
	if _, ok := m.recoveries[id]; ok {
		return
	}
	rec := &recovery{id: id, detectedAt: m.cfg.Sched.Now(), rerecovery: rerecovery}
	m.recoveries[id] = rec
	m.trace("DETECT", id.String())
	m.localAttempt(rec)
	m.remoteAttempt(rec)
}

// Recovering reports whether a recovery for id is in flight (used by tests
// and the harness).
func (m *Member) Recovering(id wire.MessageID) bool {
	_, ok := m.recoveries[id]
	return ok
}

// localAttempt sends one local-recovery request to a uniformly random
// live region neighbor and arms the RTT retry timer (§2.2). With the
// failure detector on, suspected peers are skipped so requests stop
// landing on crashed members.
func (m *Member) localAttempt(rec *recovery) {
	if m.recoveries[rec.id] != rec {
		return
	}
	peers, selfIdx := m.livePeers()
	if peerCount(peers, selfIdx) == 0 {
		// Single-member region: only remote recovery can help.
		rec.localDead = true
		m.checkAbandoned(rec)
		return
	}
	if rec.localTries >= m.params.MaxLocalTries {
		m.metrics.LocalGiveUps.Inc()
		rec.localDead = true
		m.checkAbandoned(rec)
		return
	}
	rec.localTries++
	q := pickPeer(m.cfg.Rng, peers, selfIdx)
	m.metrics.LocalReqSent.Inc()
	m.trace("LOCAL-REQ", fmt.Sprintf("id=%v to=%d try=%d", rec.id, q, rec.localTries))
	m.cfg.Transport.Send(q, wire.Message{Type: wire.TypeLocalRequest, From: m.self, ID: rec.id})
	rec.localTimer = m.cfg.Sched.After(m.params.IntraRTT+m.params.RetryGrace, func() { m.localAttempt(rec) })
}

// remoteAttempt runs one remote-recovery round: with probability λ/n send a
// remote request to a random parent-region member; in all cases arm the
// retry timer (§2.2: "This timer is set by any receiver missing a message,
// regardless whether it actually sent out a request or not").
func (m *Member) remoteAttempt(rec *recovery) {
	if m.recoveries[rec.id] != rec {
		return
	}
	parents := m.cfg.View.ParentMembers
	if len(parents) == 0 {
		// Root-region member: there is nobody above to ask.
		rec.remoteDead = true
		m.checkAbandoned(rec)
		return
	}
	if rec.remoteTries >= m.params.MaxRemoteTries {
		m.metrics.RemoteGiveUps.Inc()
		rec.remoteDead = true
		m.checkAbandoned(rec)
		return
	}
	rec.remoteTries++
	regionSize := m.cfg.View.NumPeers() + 1
	p := m.params.Lambda / float64(regionSize)
	if m.cfg.Rng.Bernoulli(p) {
		r := parents[m.cfg.Rng.Intn(len(parents))]
		m.metrics.RemoteReqSent.Inc()
		m.trace("REMOTE-REQ", fmt.Sprintf("id=%v to=%d try=%d", rec.id, r, rec.remoteTries))
		m.cfg.Transport.Send(r, wire.Message{Type: wire.TypeRemoteRequest, From: m.self, ID: rec.id, Origin: m.self})
	}
	rec.remoteTimer = m.cfg.Sched.After(m.params.ParentRTT+m.params.RetryGrace, func() { m.remoteAttempt(rec) })
}

// checkAbandoned finishes an episode once neither phase can make further
// progress: the message is counted unrecoverable — the explicit signal
// replacing silent loss — and the episode is dropped. A late delivery
// (another member's repair multicast, a handoff) un-counts it again.
func (m *Member) checkAbandoned(rec *recovery) {
	if !rec.localDead || !rec.remoteDead {
		return
	}
	if m.recoveries[rec.id] != rec {
		return
	}
	rec.stop()
	delete(m.recoveries, rec.id)
	if !m.unrecovered[rec.id] {
		m.unrecovered[rec.id] = true
		m.metrics.Unrecoverable.Inc()
	}
	m.trace("UNRECOVERABLE", rec.id.String())
}

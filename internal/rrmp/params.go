package rrmp

import "time"

// SearchMode selects how a member locates a bufferer for a discarded
// message (§3.3).
type SearchMode int

// Search modes.
const (
	// SearchRandomWalk is the paper's adopted design: forward the request
	// to one random member at a time, with RTT retries; non-holders join.
	SearchRandomWalk SearchMode = iota + 1
	// SearchMulticastQuery is the design §3.3 rejects: multicast the query
	// in the region and have holders reply after a back-off proportional
	// to C. When the message is not yet idle everywhere, far more than C
	// members hold it and replies implode (ablation A3 measures this).
	SearchMulticastQuery
)

// Params are the protocol's tunables. The zero value is not usable; start
// from DefaultParams (the paper's §4 settings) and override fields.
type Params struct {
	// IntraRTT is the member's estimate of the round-trip time to a peer in
	// its own region, used for local-recovery and search retry timers
	// (paper: 10 ms).
	IntraRTT time.Duration
	// ParentRTT is the estimated round-trip time to a member of the parent
	// region, used for remote-recovery retry timers.
	ParentRTT time.Duration
	// IdleThreshold is T, the quiet period after which a buffered message
	// is considered idle (paper §3.1: a small multiple of the maximum
	// intra-region RTT; 4× in the evaluation).
	IdleThreshold time.Duration
	// C is the expected number of long-term bufferers per region (§3.2).
	C float64
	// Lambda is the expected number of remote requests sent per region per
	// retry round when an entire region misses a message (§2.2).
	Lambda float64
	// LongTermTTL bounds unused long-term retention ("eventually even a
	// long-term bufferer may decide to discard", §3.2). Zero means forever.
	LongTermTTL time.Duration
	// RepairBackoffMax, when positive, delays the regional multicast of a
	// remotely received repair by a uniform time in (0, RepairBackoffMax]
	// so that concurrent receivers can suppress duplicates ([14]'s
	// randomized back-off). Zero multicasts immediately.
	RepairBackoffMax time.Duration
	// SessionInterval is the sender's session-message period; session
	// messages let receivers detect the loss of the last messages in a
	// burst (§2.1).
	SessionInterval time.Duration
	// RetryGrace is added to every RTT-based retry timer so that a reply
	// arriving at exactly the estimated RTT wins the race against the
	// retransmission timer (real deployments get this slack from RTT
	// estimation conservatism). Zero selects IntraRTT/20.
	RetryGrace time.Duration
	// MaxLocalTries, MaxRemoteTries and MaxSearchTries bound retries so a
	// simulation with an unrecoverable loss terminates; the paper assumes
	// unbounded retries. Exhaustion is counted in Metrics, never silent.
	MaxLocalTries  int
	MaxRemoteTries int
	MaxSearchTries int
	// SearchMode selects random-walk search (the paper's design, default)
	// or the rejected multicast-query alternative.
	SearchMode SearchMode
	// QueryBackoffMax is the reply back-off window for
	// SearchMulticastQuery. Zero selects C × IntraRTT, the "proportional
	// to C" rule §3.3 shows to be inadequate.
	QueryBackoffMax time.Duration
	// StartSeq is the highest sequence number this member should NOT
	// attempt to recover: members present from the beginning use 0; late
	// joiners set it to the sender's current top sequence so they only
	// take responsibility from their join point onwards.
	StartSeq uint64
	// RecoverOnRemoteEvidence, when true (the default), lets a remote
	// request or handoff for an unseen sequence number advance loss
	// detection: the PDU proves the message exists. The paper's member
	// merely records the waiter; a session message would trigger the same
	// recovery moments later.
	RecoverOnRemoteEvidence bool
	// ByteBudget caps each member's buffer at this many payload bytes
	// (core.Config.ByteBudget). Stores past the cap pressure-evict older
	// entries — short-term longest-idle first, then oldest long-term
	// copies — and a pressure-evicted message behaves like any other
	// miss: recoverable via local repair or the §3.3 search, and counted
	// in Metrics.Unrecoverable when every path fails, never silently
	// lost. Zero means unlimited, the paper's unconstrained model.
	ByteBudget int
	// CopyOnStore makes each member's buffer keep a private copy of every
	// payload instead of aliasing the received slice (core.Config.
	// CopyPayload). The simulator hands all members the sender's one
	// payload slice, so this is the knob for workloads that reuse or
	// mutate publish buffers after the fact.
	CopyOnStore bool
	// FDEnabled attaches the region-scoped gossip failure detector
	// (internal/gossipfd, paper reference [13]) to the member. Suspected
	// peers are skipped when picking local-recovery, search and handoff
	// targets, so crashed bufferers do not soak up retries; recovery then
	// re-routes via the §3.3 search path. Graceful-leave-only experiments
	// leave this off and behave exactly as before.
	FDEnabled bool
	// FDGossipInterval, FDFailTimeout and FDCleanupTimeout tune the
	// detector; zeros take gossipfd's defaults (50 ms gossip, suspect
	// after 8 intervals, cleanup after 2 fail timeouts).
	FDGossipInterval time.Duration
	FDFailTimeout    time.Duration
	FDCleanupTimeout time.Duration
}

// Default parameter values (the paper's evaluation settings where given).
const (
	DefaultIntraRTT        = 10 * time.Millisecond
	DefaultParentRTT       = 100 * time.Millisecond
	DefaultC               = 6.0
	DefaultLambda          = 1.0
	DefaultLongTermTTL     = 60 * time.Second
	DefaultSessionInterval = 100 * time.Millisecond
	DefaultMaxTries        = 64
)

// DefaultParams returns the paper's defaults: intra-region RTT 10 ms, idle
// threshold 4×RTT = 40 ms, C = 6, λ = 1.
func DefaultParams() Params {
	return Params{
		IntraRTT:                DefaultIntraRTT,
		ParentRTT:               DefaultParentRTT,
		IdleThreshold:           4 * DefaultIntraRTT,
		C:                       DefaultC,
		Lambda:                  DefaultLambda,
		LongTermTTL:             DefaultLongTermTTL,
		SessionInterval:         DefaultSessionInterval,
		MaxLocalTries:           DefaultMaxTries,
		MaxRemoteTries:          DefaultMaxTries,
		MaxSearchTries:          DefaultMaxTries,
		RecoverOnRemoteEvidence: true,
	}
}

// withDefaults fills unset fields from DefaultParams so that partially
// specified Params behave sensibly.
func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.IntraRTT <= 0 {
		p.IntraRTT = d.IntraRTT
	}
	if p.ParentRTT <= 0 {
		p.ParentRTT = d.ParentRTT
	}
	if p.IdleThreshold <= 0 {
		p.IdleThreshold = 4 * p.IntraRTT
	}
	if p.Lambda <= 0 {
		p.Lambda = d.Lambda
	}
	if p.SessionInterval <= 0 {
		p.SessionInterval = d.SessionInterval
	}
	if p.RetryGrace <= 0 {
		p.RetryGrace = p.IntraRTT / 20
	}
	if p.SearchMode == 0 {
		p.SearchMode = SearchRandomWalk
	}
	if p.QueryBackoffMax <= 0 {
		c := p.C
		if c < 1 {
			c = 1
		}
		p.QueryBackoffMax = time.Duration(c * float64(p.IntraRTT))
	}
	if p.MaxLocalTries <= 0 {
		p.MaxLocalTries = d.MaxLocalTries
	}
	if p.MaxRemoteTries <= 0 {
		p.MaxRemoteTries = d.MaxRemoteTries
	}
	if p.MaxSearchTries <= 0 {
		p.MaxSearchTries = d.MaxSearchTries
	}
	// C, Lambda-zero, LongTermTTL=0 and StartSeq=0 are meaningful values
	// (no long-term election, no TTL, recover-from-start), so they are
	// left alone. C defaults only when negative.
	if p.C < 0 {
		p.C = 0
	}
	return p
}

package rrmp

import "repro/internal/wire"

// Harness hooks: the §4 experiments construct protocol states directly —
// "we simulate the outcome of an IP multicast by randomly selecting a
// subset of members to hold a message initially" — instead of replaying a
// lossy multicast. These methods exist for the experiment runner and tests;
// applications never need them.

// InjectDeliver delivers a message to this member as if it had arrived via
// the initial multicast: it is marked received and buffered under the
// member's policy. Gap detection below the sequence is NOT triggered,
// keeping injected states exactly as the experiment intends.
func (m *Member) InjectDeliver(id wire.MessageID, payload []byte) {
	st := m.source(id.Source)
	if st.has(id.Seq) {
		return
	}
	st.mark(id.Seq)
	if id.Seq > st.maxSeen {
		st.maxSeen = id.Seq
	}
	m.buf.Store(id, payload)
	m.metrics.Delivered.Inc()
	if m.cfg.Hooks.OnDeliver != nil {
		m.cfg.Hooks.OnDeliver(id, m.cfg.Sched.Now())
	}
}

// InjectLongTerm delivers a message and pins it directly into the
// long-term phase, modeling §4's "the expected number of bufferers is C"
// search experiments where exactly B members hold an idle message.
func (m *Member) InjectLongTerm(id wire.MessageID, payload []byte) {
	st := m.source(id.Source)
	st.mark(id.Seq)
	if id.Seq > st.maxSeen {
		st.maxSeen = id.Seq
	}
	m.buf.StoreLongTerm(id, payload)
}

// InjectDiscarded marks a message as received-then-discarded without it
// ever entering the buffer: the §3.3 search experiments start from regions
// where the message "has become idle" at every non-bufferer.
func (m *Member) InjectDiscarded(id wire.MessageID) {
	st := m.source(id.Source)
	st.mark(id.Seq)
	if id.Seq > st.maxSeen {
		st.maxSeen = id.Seq
	}
}

package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

// evictRecord is one observed eviction: which entry, why, in which phase it
// was, and how many short-term entries remained the moment it left.
type evictRecord struct {
	seq            uint64
	reason         EvictReason
	state          State
	shortRemaining int
}

// budgetBuffer builds a budgeted buffer over BufferAll (no timers: full
// manual control over phases via StoreLongTerm) and logs every eviction.
func budgetBuffer(s *sim.Sim, kind IndexKind, budget int) (*Buffer, *[]evictRecord) {
	log := &[]evictRecord{}
	var b *Buffer
	b = NewBuffer(Config{
		Policy:     BufferAll{},
		Sched:      s,
		Rng:        rng.New(1),
		Index:      kind,
		ByteBudget: budget,
		OnEvict: func(e *Entry, r EvictReason) {
			*log = append(*log, evictRecord{e.ID.Seq, r, e.State, b.ShortTermCount()})
		},
	})
	return b, log
}

func eachIndexKind(t *testing.T, fn func(t *testing.T, kind IndexKind)) {
	t.Helper()
	for _, kind := range []IndexKind{IndexDense, IndexLegacyMap} {
		name := "IndexDense"
		if kind == IndexLegacyMap {
			name = "IndexLegacyMap"
		}
		t.Run(name, func(t *testing.T) { fn(t, kind) })
	}
}

// TestPressureEvictionOrder pins the deterministic displacement order:
// short-term entries leave longest-idle first, and long-term copies are
// touched only once no short-term entry remains, oldest promotion first.
func TestPressureEvictionOrder(t *testing.T) {
	eachIndexKind(t, func(t *testing.T, kind IndexKind) {
		s := sim.New()
		b, log := budgetBuffer(s, kind, 1000)

		s.At(0, func() { b.StoreLongTerm(id(1), make([]byte, 100)) })                   // L1, promoted at 0
		s.At(10*time.Millisecond, func() { b.StoreLongTerm(id(2), make([]byte, 100)) }) // L2, promoted at 10ms
		s.At(20*time.Millisecond, func() { b.Store(id(3), make([]byte, 200)) })         // S1
		s.At(30*time.Millisecond, func() { b.Store(id(4), make([]byte, 200)) })         // S2
		s.At(40*time.Millisecond, func() { b.OnRequest(id(3)) })                        // S1 now fresher than S2
		// 600 B held; the 700 B store must displace S2 (idle since 30 ms)
		// then S1 (idle since 40 ms), and no long-term copy.
		s.At(50*time.Millisecond, func() {
			if e := b.Store(id(5), make([]byte, 700)); e == nil {
				t.Error("700 B store denied under a 1000 B budget")
			}
		})
		// 900 B held; the 900 B store must displace the remaining
		// short-term entry (seq 5) and then the oldest long-term copy (L1).
		s.At(60*time.Millisecond, func() {
			if e := b.Store(id(6), make([]byte, 900)); e == nil {
				t.Error("900 B store denied under a 1000 B budget")
			}
		})
		s.Run()

		want := []evictRecord{
			{4, EvictPressure, StateShortTerm, 1},
			{3, EvictPressure, StateShortTerm, 0},
			{5, EvictPressure, StateShortTerm, 0},
			{1, EvictPressure, StateLongTerm, 0},
		}
		if len(*log) != len(want) {
			t.Fatalf("evictions %+v, want %+v", *log, want)
		}
		for i, w := range want {
			if (*log)[i] != w {
				t.Fatalf("eviction %d = %+v, want %+v", i, (*log)[i], w)
			}
		}
		if got := b.EvictedCount(EvictPressure); got != 4 {
			t.Fatalf("EvictedCount(EvictPressure) = %d, want 4", got)
		}
		if b.Bytes() != 1000 || b.Len() != 2 {
			t.Fatalf("end state %d B / %d entries, want 1000 B / 2", b.Bytes(), b.Len())
		}
		if b.PeakBytes() != 1000 {
			t.Fatalf("PeakBytes %d, want 1000", b.PeakBytes())
		}
		if !b.Has(id(2)) || !b.Has(id(6)) {
			t.Fatal("survivors should be the newest long-term copy and the incoming store")
		}
	})
}

// TestBudgetDenials pins the overflow case: a payload larger than the whole
// budget is refused outright — nil entry, denial counted, nothing evicted.
func TestBudgetDenials(t *testing.T) {
	eachIndexKind(t, func(t *testing.T, kind IndexKind) {
		s := sim.New()
		b, log := budgetBuffer(s, kind, 100)
		if e := b.Store(id(1), make([]byte, 150)); e != nil {
			t.Fatal("oversized store accepted")
		}
		if e := b.Store(id(2), make([]byte, 60)); e == nil {
			t.Fatal("fitting store denied")
		}
		if e := b.StoreLongTerm(id(3), make([]byte, 101)); e != nil {
			t.Fatal("oversized handoff store accepted")
		}
		if b.DeniedCount() != 2 {
			t.Fatalf("DeniedCount %d, want 2", b.DeniedCount())
		}
		if len(*log) != 0 {
			t.Fatalf("denials must not evict; got %+v", *log)
		}
		if b.Len() != 1 || b.Bytes() != 60 {
			t.Fatalf("end state %d entries / %d B, want 1 / 60", b.Len(), b.Bytes())
		}
	})
}

// TestCopyPayloadSnapshotsContent verifies the copy-on-store knob: with it
// set, mutating the caller's slice after Store must not reach the buffered
// entry; without it, the entry aliases the caller's slice (the documented
// zero-copy default).
func TestCopyPayloadSnapshotsContent(t *testing.T) {
	for _, copyOn := range []bool{true, false} {
		s := sim.New()
		b := NewBuffer(Config{Policy: BufferAll{}, Sched: s, Rng: rng.New(1), CopyPayload: copyOn})
		payload := []byte{1, 2, 3, 4}
		e := b.Store(id(1), payload)
		payload[0] = 99
		if copyOn && e.Payload[0] != 1 {
			t.Fatal("CopyPayload entry saw the caller's mutation")
		}
		if !copyOn && e.Payload[0] != 99 {
			t.Fatal("zero-copy entry did not alias the caller's slice")
		}
	}
}

// TestBudgetEvictionOrderProperty drives identical randomized op scripts
// (stores of varying size, feedback, promotions, time advances) against a
// budgeted buffer under both index implementations and checks, at every
// step: the budget is never exceeded; a long-term copy is pressure-evicted
// only when no short-term entry remains (so a region's last long-term copy
// is never sacrificed while cheaper short-term bytes exist); the per-reason
// counters equal the observed eviction log (counter ≡ set); and both
// indexes produce the identical eviction sequence.
func TestBudgetEvictionOrderProperty(t *testing.T) {
	const budget = 1 << 12
	for seed := uint64(1); seed <= 24; seed++ {
		logs := map[IndexKind][]evictRecord{}
		for _, kind := range []IndexKind{IndexDense, IndexLegacyMap} {
			s := sim.New()
			b, log := budgetBuffer(s, kind, budget)
			r := rng.New(seed)
			at := time.Duration(0)
			for op, seq := 0, uint64(0); op < 400; op++ {
				at += time.Duration(r.Intn(5)) * time.Millisecond
				switch draw := r.Intn(10); {
				case draw < 5: // store a new short-term entry
					seq++
					sz, n := r.Intn(budget/3), seq
					s.At(at, func() { b.Store(id(n), make([]byte, sz)) })
				case draw < 7: // handoff-style long-term store
					seq++
					sz, n := r.Intn(budget/3), seq
					s.At(at, func() { b.StoreLongTerm(id(n), make([]byte, sz)) })
				case draw < 9: // feedback touch on a random known id
					if seq > 0 {
						n := uint64(r.Intn(int(seq))) + 1
						s.At(at, func() { b.OnRequest(id(n)) })
					}
				default: // promote a random known id if still buffered
					if seq > 0 {
						n := uint64(r.Intn(int(seq))) + 1
						s.At(at, func() {
							if b.Has(id(n)) {
								b.StoreLongTerm(id(n), nil)
							}
						})
					}
				}
				end := at
				s.At(end, func() {
					if b.Bytes() > budget {
						t.Fatalf("seed %d: %d B held exceeds budget %d", seed, b.Bytes(), budget)
					}
				})
			}
			s.Run()
			for i, rec := range *log {
				if rec.reason == EvictPressure && rec.state == StateLongTerm && rec.shortRemaining != 0 {
					t.Fatalf("seed %d: eviction %d displaced a long-term copy with %d short-term entries still held",
						seed, i, rec.shortRemaining)
				}
			}
			byReason := map[EvictReason]int{}
			for _, rec := range *log {
				byReason[rec.reason]++
			}
			for _, reason := range []EvictReason{EvictIdle, EvictTTL, EvictHandoff, EvictStable, EvictManual, EvictPressure} {
				if b.EvictedCount(reason) != byReason[reason] {
					t.Fatalf("seed %d: counter %v = %d but log has %d",
						seed, reason, b.EvictedCount(reason), byReason[reason])
				}
			}
			logs[kind] = *log
		}
		if fmt.Sprint(logs[IndexDense]) != fmt.Sprint(logs[IndexLegacyMap]) {
			t.Fatalf("seed %d: index implementations diverge:\ndense:  %+v\nlegacy: %+v",
				seed, logs[IndexDense], logs[IndexLegacyMap])
		}
	}
}

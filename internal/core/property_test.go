package core

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/wire"
)

// TestBufferOpSequenceProperty drives a buffer with arbitrary interleaved
// operations and time advances, checking structural invariants at every
// step:
//
//   - Len() == ShortTermCount() + LongTermCount()
//   - Has(id) agrees with Get(id)
//   - occupancy integral is non-decreasing over time
//   - every stored entry is eventually evicted exactly once (C=0) or
//     retained long-term, never both
func TestBufferOpSequenceProperty(t *testing.T) {
	type op struct {
		Kind uint8
		Seq  uint8
		Dt   uint8
	}
	prop := func(ops []op, cRaw uint8) bool {
		s := sim.New()
		c := float64(cRaw%2) * 100 // either 0 (always discard) or 100 (always promote)
		evictions := make(map[wire.MessageID]int)
		stores := make(map[wire.MessageID]int)
		b := NewBuffer(Config{
			Policy: NewTwoPhase(testT, c, 100, 0),
			Sched:  s,
			Rng:    rng.New(1),
			OnEvict: func(e *Entry, _ EvictReason) {
				evictions[e.ID]++
			},
		})
		lastIntegral := 0.0
		for _, o := range ops {
			id := wire.MessageID{Source: 0, Seq: uint64(o.Seq % 16)}
			switch o.Kind % 5 {
			case 0:
				if !b.Has(id) {
					stores[id]++
				}
				b.Store(id, []byte{o.Seq})
			case 1:
				b.OnRequest(id)
			case 2:
				b.Remove(id, EvictManual)
			case 3:
				if !b.Has(id) {
					stores[id]++
				}
				b.StoreLongTerm(id, nil)
			case 4:
				s.RunFor(time.Duration(o.Dt%50) * time.Millisecond)
			}
			if b.Len() != b.ShortTermCount()+b.LongTermCount() {
				return false
			}
			if b.ShortTermCount() < 0 || b.LongTermCount() < 0 {
				return false
			}
			integral := b.OccupancyIntegral(s.Now())
			if integral < lastIntegral-1e-9 {
				return false
			}
			lastIntegral = integral
			for seq := uint64(0); seq < 16; seq++ {
				probe := wire.MessageID{Source: 0, Seq: seq}
				_, ok := b.Get(probe)
				if ok != b.Has(probe) {
					return false
				}
			}
		}
		// Drain all timers; with C=0 everything not long-term must evict.
		s.RunFor(time.Hour)
		for id, n := range evictions {
			// Never more evictions than distinct residencies.
			if n > stores[id] {
				return false
			}
		}
		// After drain with C=0, only long-term entries may remain.
		if c == 0 {
			for _, e := range b.Entries() {
				if e.State != StateLongTerm {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestBufferEvictionExactlyOnceProperty: an entry that is stored once and
// never re-stored is evicted at most once, and the eviction callback's
// entry matches what was stored.
func TestBufferEvictionExactlyOnceProperty(t *testing.T) {
	prop := func(seqs []uint8, ttlRaw uint8) bool {
		s := sim.New()
		ttl := time.Duration(ttlRaw%100+1) * time.Millisecond
		evicted := make(map[wire.MessageID]int)
		b := NewBuffer(Config{
			Policy: NewTwoPhase(testT, 50, 100, ttl), // 50% election
			Sched:  s,
			Rng:    rng.New(7),
			OnEvict: func(e *Entry, r EvictReason) {
				evicted[e.ID]++
				if r == EvictTTL && e.State != StateLongTerm {
					// TTL evictions can only happen to long-term entries.
					evicted[e.ID] += 100
				}
			},
		})
		stored := make(map[wire.MessageID]bool)
		for _, q := range seqs {
			id := wire.MessageID{Source: 1, Seq: uint64(q)}
			if !stored[id] {
				b.Store(id, nil)
				stored[id] = true
			}
		}
		s.RunFor(24 * time.Hour)
		if b.Len() != 0 {
			return false // TTL set: everything must eventually drain
		}
		for id := range stored {
			if evicted[id] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Package core implements the paper's primary contribution: the two-phase
// buffer management algorithm for reliable multicast (§3).
//
// A Buffer holds received messages and decides, per message, how long to
// keep them:
//
//   - Short term (§3.1, feedback-based): every received message is buffered
//     until it has been idle — no retransmission request observed — for an
//     idle threshold T. Each incoming request is implicit feedback that
//     members of the region still miss the message, so the idle timer
//     re-arms. P(no request | fraction p missing) ≈ e^(−p), so a quiet
//     interval of a few RTTs implies the region has the message.
//
//   - Long term (§3.2, randomized): when a message becomes idle the member
//     elects itself a long-term bufferer with probability C/n, making the
//     number of long-term bufferers per region Binomial(n, C/n) ≈
//     Poisson(C). Long-term copies serve stragglers and downstream regions
//     and are handed off to a random peer when a member leaves voluntarily.
//
// The Buffer is a pure state machine over an injected clock.Scheduler: it
// performs no I/O and is driven entirely by Store / OnRequest / timer
// events, which is what lets every buffering policy (the paper's and the
// baselines') run inside the identical protocol engine, both simulated and
// on real sockets.
package core

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/wire"
)

// State is the retention phase of a buffered entry.
type State int

// Entry states.
const (
	StateShortTerm State = iota + 1
	StateLongTerm
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateShortTerm:
		return "short-term"
	case StateLongTerm:
		return "long-term"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// EvictReason says why an entry left the buffer.
type EvictReason int

// Eviction reasons.
const (
	EvictIdle     EvictReason = iota + 1 // idle and not elected long-term
	EvictTTL                             // long-term copy aged out unused
	EvictHandoff                         // transferred to a peer on leave
	EvictStable                          // external stability notification
	EvictManual                          // removed by caller
	EvictPressure                        // displaced to fit a newer message under Config.ByteBudget
)

// String implements fmt.Stringer.
func (r EvictReason) String() string {
	switch r {
	case EvictIdle:
		return "idle"
	case EvictTTL:
		return "ttl"
	case EvictHandoff:
		return "handoff"
	case EvictStable:
		return "stable"
	case EvictManual:
		return "manual"
	case EvictPressure:
		return "pressure"
	default:
		return fmt.Sprintf("EvictReason(%d)", int(r))
	}
}

// Entry is one buffered message.
type Entry struct {
	ID      wire.MessageID
	Payload []byte
	// StoredAt is when the message entered this buffer.
	StoredAt time.Duration
	// LastRequest is the last time a retransmission request (or another
	// buffer "use", such as answering a search) touched this entry; it
	// equals StoredAt until the first request.
	LastRequest time.Duration
	// State is the current retention phase.
	State State
	// PromotedAt is when the entry became long-term (zero until then).
	PromotedAt time.Duration

	timer clock.Timer // idle timer in short-term, TTL timer in long-term
	// fire is the entry's timer callback, bound once at Store so re-arming
	// the idle or TTL clock never allocates a new closure. It dispatches on
	// State: short-term entries run the idle check, long-term ones the TTL
	// check.
	fire func()
}

// Config assembles a Buffer's dependencies.
type Config struct {
	// Policy decides retention; use NewTwoPhase for the paper's algorithm.
	Policy Policy
	// Sched supplies time and timers (virtual in simulation, real on UDP).
	Sched clock.Scheduler
	// Rng drives randomized election. Required by randomized policies.
	Rng *rng.Source
	// OnEvict, if set, observes every eviction.
	OnEvict func(e *Entry, reason EvictReason)
	// OnPromote, if set, observes long-term elections.
	OnPromote func(e *Entry)
	// Index selects the entry-index implementation (default IndexDense;
	// IndexLegacyMap exists for behaviour-equivalence tests).
	Index IndexKind
	// ByteBudget caps the summed payload bytes this buffer may hold; zero
	// or negative means unlimited (the paper's model, where buffer cost is
	// measured but never constrained). When a Store would exceed the
	// budget, entries are pressure-evicted (EvictPressure) in a
	// deterministic order — short-term entries longest-idle first, then
	// long-term copies oldest-promoted first — until the new payload fits.
	// A payload larger than the whole budget is denied outright: the store
	// returns nil and the denial is counted, never silent.
	ByteBudget int
	// CopyPayload stores a private copy of each payload instead of
	// aliasing the caller's slice. Simulated members all receive the
	// sender's one payload slice, so without copies every replica aliases
	// the same backing array; enable this when the caller may reuse or
	// mutate payload buffers after publishing.
	CopyPayload bool
}

// Buffer is the per-member message store managed by a buffering policy.
// It is not safe for concurrent use; drive it from one goroutine (the
// simulator loop or a member's executor).
type Buffer struct {
	cfg Config
	idx entryIndex

	occupancy stats.Occupancy // message-count step function over time
	byteOcc   stats.Occupancy // payload-byte step function over time
	bytes     int             // current payload bytes held
	longCount int
	evicted   map[EvictReason]int
	denied    int // stores refused because the payload exceeds ByteBudget
}

// NewBuffer constructs an empty buffer. It panics on a missing policy or
// scheduler since both are programming errors, not runtime conditions.
func NewBuffer(cfg Config) *Buffer {
	if cfg.Policy == nil {
		panic("core: Config.Policy is required")
	}
	if cfg.Sched == nil {
		panic("core: Config.Sched is required")
	}
	return &Buffer{
		cfg:     cfg,
		idx:     newEntryIndex(cfg.Index),
		evicted: make(map[EvictReason]int),
	}
}

// Len returns the number of buffered entries (both phases).
func (b *Buffer) Len() int { return b.idx.size() }

// LongTermCount returns the number of entries in the long-term phase.
func (b *Buffer) LongTermCount() int { return b.longCount }

// ShortTermCount returns the number of entries in the short-term phase.
func (b *Buffer) ShortTermCount() int { return b.idx.size() - b.longCount }

// EvictedCount returns how many entries have been evicted for the reason.
func (b *Buffer) EvictedCount(r EvictReason) int { return b.evicted[r] }

// Has reports whether id is currently buffered.
func (b *Buffer) Has(id wire.MessageID) bool {
	_, ok := b.idx.get(id)
	return ok
}

// Get returns the entry for id if buffered.
func (b *Buffer) Get(id wire.MessageID) (*Entry, bool) {
	return b.idx.get(id)
}

// Entries returns a snapshot of all buffered entries in message-id order
// (callers own the slice; the pointed-to entries remain live). The order is
// deterministic because callers pair entries with rng draws — the leave
// protocol picks a random handoff peer per entry — and an unstable order
// would make those pairings differ between identically seeded runs. The
// dense index yields this order by construction; the legacy map index
// sorts, exactly as before the rewrite.
func (b *Buffer) Entries() []*Entry {
	return b.idx.sorted(make([]*Entry, 0, b.idx.size()))
}

// Store buffers a message under the configured policy. Storing an
// already-buffered id is a no-op returning the existing entry (duplicate
// repairs are common under multicast). The returned entry is live.
//
// Under a ByteBudget, storing may pressure-evict older entries to make
// room; if the payload cannot fit even into an empty buffer the store is
// denied and Store returns nil (counted in DeniedCount). Callers treat a
// denied store like any other absent entry: the message was delivered,
// just not retained.
func (b *Buffer) Store(id wire.MessageID, payload []byte) *Entry {
	if e, ok := b.idx.get(id); ok {
		return e
	}
	if !b.reserve(len(payload)) {
		b.denied++
		return nil
	}
	if b.cfg.CopyPayload && payload != nil {
		payload = append([]byte(nil), payload...)
	}
	now := b.cfg.Sched.Now()
	e := &Entry{
		ID:          id,
		Payload:     payload,
		StoredAt:    now,
		LastRequest: now,
		State:       StateShortTerm,
	}
	e.fire = func() {
		if e.State == StateLongTerm {
			b.ttlCheck(e)
		} else {
			b.idleCheck(e)
		}
	}
	b.idx.put(e)
	b.bytes += len(e.Payload)
	b.account(now)

	// The store event reaches the policy before Hold is consulted, so a
	// demand-aware hold already reflects this message.
	b.cfg.Policy.ObserveStore(id, now)
	hold, _ := b.cfg.Policy.Hold(id)
	if hold > 0 {
		e.timer = b.cfg.Sched.After(hold, e.fire)
	}
	// hold == 0 means "never idles": retention until external removal
	// (buffer-all / stability-detection baselines).
	return e
}

// StoreLongTerm buffers a message directly in the long-term phase. It is
// used when receiving a handoff from a leaving peer: the transferred copy
// already survived its idle phase at the giver. Duplicate ids keep the
// existing entry but lift it to long-term if it was short-term. Like
// Store, it returns nil when a ByteBudget denies the store.
func (b *Buffer) StoreLongTerm(id wire.MessageID, payload []byte) *Entry {
	if e, ok := b.idx.get(id); ok {
		if e.State != StateLongTerm {
			b.promote(e)
		}
		return e
	}
	e := b.Store(id, payload)
	if e != nil && e.State != StateLongTerm {
		b.promote(e)
	}
	return e
}

// OnRequest records that a retransmission request (or any other buffer use,
// such as serving a search) touched id. For feedback-based policies this
// re-arms the idle clock; for long-term entries it re-arms the TTL. It
// returns false if id is not buffered.
func (b *Buffer) OnRequest(id wire.MessageID) bool {
	e, ok := b.idx.get(id)
	if !ok {
		return false
	}
	now := b.cfg.Sched.Now()
	e.LastRequest = now
	b.cfg.Policy.ObserveRequest(id, now)
	return true
}

// Remove evicts id for an externally decided reason (stability detection,
// manual trimming). It returns false if id was not buffered.
func (b *Buffer) Remove(id wire.MessageID, reason EvictReason) bool {
	e, ok := b.idx.get(id)
	if !ok {
		return false
	}
	b.evict(e, reason)
	return true
}

// TakeForHandoff removes and returns all long-term entries, for transfer to
// peers when this member leaves the group voluntarily (§3.2). Short-term
// entries are dropped at the same time: a leaving member no longer answers
// requests.
func (b *Buffer) TakeForHandoff() []*Entry {
	var out []*Entry
	for _, e := range b.Entries() {
		if e.State == StateLongTerm {
			out = append(out, e)
			b.evict(e, EvictHandoff)
		} else {
			b.evict(e, EvictManual)
		}
	}
	return out
}

// Close stops all timers and drops all entries without eviction callbacks.
func (b *Buffer) Close() {
	b.idx.each(func(e *Entry) {
		if e.timer != nil {
			e.timer.Stop()
		}
	})
	b.idx.reset()
	b.longCount = 0
	b.bytes = 0
	b.account(b.cfg.Sched.Now())
}

// OccupancyIntegral returns the accumulated messages × seconds up to now;
// the A1 ablation compares policies on this buffer-cost measure.
func (b *Buffer) OccupancyIntegral(now time.Duration) float64 {
	return b.occupancy.Integral(now)
}

// ByteOccupancyIntegral returns accumulated payload-bytes × seconds.
func (b *Buffer) ByteOccupancyIntegral(now time.Duration) float64 {
	return b.byteOcc.Integral(now)
}

// PeakLen returns the highest entry count ever held.
func (b *Buffer) PeakLen() int { return int(b.occupancy.Peak()) }

// Bytes returns the payload bytes currently held.
func (b *Buffer) Bytes() int { return b.bytes }

// PeakBytes returns the highest payload-byte occupancy ever held.
func (b *Buffer) PeakBytes() int { return int(b.byteOcc.Peak()) }

// DeniedCount returns how many stores were refused because their payload
// exceeded the whole ByteBudget. A denied message was still delivered to
// the application; it just was never retained for repair.
func (b *Buffer) DeniedCount() int { return b.denied }

// reserve makes room for need payload bytes under the budget by pressure-
// evicting entries in a deterministic order: short-term entries first,
// longest-idle (oldest LastRequest) leading — they are the cheapest to
// lose, since an idle-quiet region has the message — then long-term
// copies, oldest-promoted first. Ties break on message id, so identically
// seeded runs evict identically. It reports whether need now fits; false
// (possible only when need alone exceeds the budget) means the caller
// must deny the store. No-op without a budget.
//
// Each victim is found by a linear minimum scan rather than a sorted
// snapshot: displacement usually removes one or two entries, so the scan
// is O(victims × entries) with zero allocation, keeping budgeted cells on
// the same no-garbage footing as the rest of the store path.
func (b *Buffer) reserve(need int) bool {
	if b.cfg.ByteBudget <= 0 || b.bytes+need <= b.cfg.ByteBudget {
		return true
	}
	if need > b.cfg.ByteBudget {
		return false
	}
	for b.bytes+need > b.cfg.ByteBudget {
		var victim *Entry
		b.idx.each(func(e *Entry) {
			if victim == nil || b.cfg.Policy.DisplacedBefore(e, victim) {
				victim = e
			}
		})
		if victim == nil {
			break // empty buffer; need fits by the check above
		}
		b.evict(victim, EvictPressure)
	}
	return b.bytes+need <= b.cfg.ByteBudget
}

// DefaultDisplacedBefore is the historic strict total displacement order
// pressure eviction follows: short-term entries before long-term, the
// short-term longest-idle (oldest LastRequest) first, long-term copies
// oldest-promoted first, ties broken on message id. A total order makes
// the minimum scan independent of index iteration order, so both index
// implementations evict identically. Policies that do not override
// DisplacedBefore (via PolicyBase) use exactly this order.
func DefaultDisplacedBefore(a, c *Entry) bool {
	if (a.State == StateLongTerm) != (c.State == StateLongTerm) {
		return a.State != StateLongTerm
	}
	if a.State == StateLongTerm {
		if a.PromotedAt != c.PromotedAt {
			return a.PromotedAt < c.PromotedAt
		}
	} else if a.LastRequest != c.LastRequest {
		return a.LastRequest < c.LastRequest
	}
	if a.ID.Source != c.ID.Source {
		return a.ID.Source < c.ID.Source
	}
	return a.ID.Seq < c.ID.Seq
}

// idleCheck runs when an entry's idle timer fires: if a request arrived in
// the meantime (feedback), re-arm; otherwise ask the policy for the
// idle-time decision.
func (b *Buffer) idleCheck(e *Entry) {
	if cur, ok := b.idx.get(e.ID); !ok || cur != e {
		return // already evicted
	}
	now := b.cfg.Sched.Now()
	hold, resetOnRequest := b.cfg.Policy.Hold(e.ID)
	if resetOnRequest {
		quietFor := now - e.LastRequest
		if quietFor < hold {
			// A request arrived during the hold window: the message is not
			// idle yet. Sleep exactly until the earliest instant it could
			// become idle. Re-arming reuses the entry's bound callback —
			// O(1), no closure allocation, however often feedback arrives.
			e.timer = b.cfg.Sched.After(hold-quietFor, e.fire)
			return
		}
	}
	switch d := b.cfg.Policy.OnIdle(e.ID, b.cfg.Rng); d {
	case Discard:
		b.evict(e, EvictIdle)
	case PromoteLongTerm:
		b.promote(e)
	default:
		panic(fmt.Sprintf("core: policy %q returned invalid decision %d", b.cfg.Policy.Name(), d))
	}
}

// promote moves an entry to the long-term phase and arms its TTL.
func (b *Buffer) promote(e *Entry) {
	if e.timer != nil {
		e.timer.Stop()
		e.timer = nil
	}
	e.State = StateLongTerm
	e.PromotedAt = b.cfg.Sched.Now()
	b.longCount++
	if ttl := b.cfg.Policy.LongTermTTL(); ttl > 0 {
		e.timer = b.cfg.Sched.After(ttl, e.fire)
	}
	if b.cfg.OnPromote != nil {
		b.cfg.OnPromote(e)
	}
}

// ttlCheck ages out a long-term entry once it has gone unused for the TTL
// ("eventually even a long-term bufferer may decide to discard an idle
// message", §3.2). A use re-arms, mirroring the idle logic.
func (b *Buffer) ttlCheck(e *Entry) {
	if cur, ok := b.idx.get(e.ID); !ok || cur != e {
		return
	}
	now := b.cfg.Sched.Now()
	ttl := b.cfg.Policy.LongTermTTL()
	unusedFor := now - e.LastRequest
	if unusedFor < ttl {
		e.timer = b.cfg.Sched.After(ttl-unusedFor, e.fire)
		return
	}
	b.evict(e, EvictTTL)
}

func (b *Buffer) evict(e *Entry, reason EvictReason) {
	if e.timer != nil {
		e.timer.Stop()
		e.timer = nil
	}
	b.idx.remove(e.ID)
	b.bytes -= len(e.Payload)
	if e.State == StateLongTerm {
		b.longCount--
	}
	b.evicted[reason]++
	b.cfg.Policy.ObserveEvict(e.ID, reason)
	b.account(b.cfg.Sched.Now())
	if b.cfg.OnEvict != nil {
		b.cfg.OnEvict(e, reason)
	}
}

func (b *Buffer) account(now time.Duration) {
	b.occupancy.Set(now, float64(b.idx.size()))
	b.byteOcc.Set(now, float64(b.bytes))
}

package core

import (
	"fmt"
	"time"

	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/wire"
)

// RngBinder is implemented by policies that own a private randomness
// stream instead of drawing from the buffer's shared election stream.
// rrmp.NewMember binds cfg.Rng.Split(policyStreamLabel) to any policy
// implementing it, so a demand-aware policy's draws never perturb the
// draws legacy policies make from the buffer stream.
type RngBinder interface {
	BindRng(r *rng.Source)
}

// AdaptiveConfig parameterizes AdaptiveHold.
type AdaptiveConfig struct {
	// TMin and TMax bound the per-source hold-time: a source with no
	// observed request demand holds for TMin, one at or above Target holds
	// for TMax.
	TMin, TMax time.Duration
	// Target is the demand — smoothed retransmission requests per stored
	// message — at which the hold saturates at TMax.
	Target float64
	// Alpha is the EWMA smoothing weight in (0, 1]; zero selects the
	// default 0.1. The tracked demand for a source converges to its
	// steady-state requests-per-message rate regardless of Alpha; Alpha
	// only sets how fast bursts are absorbed.
	Alpha float64
	// C is the expected number of long-term bufferers per region, as in
	// TwoPhase.
	C float64
	// N is the region size used to derive the election probability C/N.
	N int
	// TTL bounds unused long-term retention; zero means forever.
	TTL time.Duration
}

// DefaultAdaptiveAlpha is the EWMA smoothing weight used when
// AdaptiveConfig.Alpha is zero.
const DefaultAdaptiveAlpha = 0.1

// AdaptiveHold is the first demand-aware policy (the paper's §5 gesture:
// adapt buffer parameters to observed recovery demand). It tracks an EWMA
// of retransmission-request demand per source — each store decays the
// source's demand by (1−α), each request adds α, so the tracked value
// converges to the source's requests-per-message rate — and scales the
// short-term hold linearly from TMin (quiet source) to TMax (demand at or
// above Target). Idle entries elect long-term with probability C/N, like
// TwoPhase, drawing from the privately bound policy stream when present.
//
// Under byte pressure it overrides the displacement order: entries from
// the lowest-demand source go first (their messages are the cheapest to
// lose), falling back to the historic order between equal-demand sources.
type AdaptiveHold struct {
	PolicyBase

	cfg    AdaptiveConfig
	demand map[topology.NodeID]float64
	rng    *rng.Source
}

// NewAdaptiveHold constructs the demand-aware policy. It panics on
// non-positive TMin, TMax < TMin, non-positive Target or N, or Alpha
// outside (0, 1] — programming errors, not runtime conditions.
func NewAdaptiveHold(cfg AdaptiveConfig) *AdaptiveHold {
	if cfg.Alpha == 0 {
		cfg.Alpha = DefaultAdaptiveAlpha
	}
	if cfg.TMin <= 0 {
		panic(fmt.Sprintf("core: AdaptiveHold TMin %v must be positive", cfg.TMin))
	}
	if cfg.TMax < cfg.TMin {
		panic(fmt.Sprintf("core: AdaptiveHold TMax %v must be >= TMin %v", cfg.TMax, cfg.TMin))
	}
	if cfg.Target <= 0 {
		panic(fmt.Sprintf("core: AdaptiveHold Target %v must be positive", cfg.Target))
	}
	if cfg.Alpha < 0 || cfg.Alpha > 1 {
		panic(fmt.Sprintf("core: AdaptiveHold Alpha %v must be in (0, 1]", cfg.Alpha))
	}
	if cfg.N <= 0 {
		panic(fmt.Sprintf("core: AdaptiveHold region size %d must be positive", cfg.N))
	}
	return &AdaptiveHold{cfg: cfg, demand: make(map[topology.NodeID]float64)}
}

// Name implements Policy.
func (p *AdaptiveHold) Name() string { return "adaptive" }

// BindRng implements RngBinder: subsequent elections draw from r instead
// of the rng passed to OnIdle.
func (p *AdaptiveHold) BindRng(r *rng.Source) { p.rng = r }

// Demand returns the current smoothed request demand tracked for src
// (requests per stored message at steady state). Exposed for tests and
// instrumentation.
func (p *AdaptiveHold) Demand(src topology.NodeID) float64 { return p.demand[src] }

// Hold implements Policy: TMin + (TMax−TMin)·min(1, demand/Target) for the
// message's source, re-armed by request feedback like TwoPhase.
func (p *AdaptiveHold) Hold(id wire.MessageID) (time.Duration, bool) {
	frac := p.demand[id.Source] / p.cfg.Target
	if frac > 1 {
		frac = 1
	}
	return p.cfg.TMin + time.Duration(frac*float64(p.cfg.TMax-p.cfg.TMin)), true
}

// ObserveStore implements Policy: decay the source's demand. Paired with
// the per-request increment this makes the tracked value an EWMA of
// requests per message.
func (p *AdaptiveHold) ObserveStore(id wire.MessageID, _ time.Duration) {
	p.demand[id.Source] *= 1 - p.cfg.Alpha
}

// ObserveRequest implements Policy: bump the source's demand.
func (p *AdaptiveHold) ObserveRequest(id wire.MessageID, _ time.Duration) {
	p.demand[id.Source] += p.cfg.Alpha
}

// DisplacedBefore implements Policy: displace entries from the
// lowest-demand source first; between equal-demand sources fall back to
// the historic order, which keeps the relation a strict total order.
func (p *AdaptiveHold) DisplacedBefore(a, c *Entry) bool {
	da, dc := p.demand[a.ID.Source], p.demand[c.ID.Source]
	if da != dc {
		return da < dc
	}
	return DefaultDisplacedBefore(a, c)
}

// electionProbability is C/N clamped to [0, 1], as in TwoPhase.
func (p *AdaptiveHold) electionProbability() float64 {
	pr := p.cfg.C / float64(p.cfg.N)
	switch {
	case pr < 0:
		return 0
	case pr > 1:
		return 1
	default:
		return pr
	}
}

// OnIdle implements Policy: elect long-term with probability C/N, drawing
// from the bound policy stream when one is present so adaptive draws never
// share a stream with other consumers.
func (p *AdaptiveHold) OnIdle(_ wire.MessageID, r *rng.Source) Decision {
	if p.rng != nil {
		r = p.rng
	}
	if r != nil && r.Bernoulli(p.electionProbability()) {
		return PromoteLongTerm
	}
	return Discard
}

// LongTermTTL implements Policy.
func (p *AdaptiveHold) LongTermTTL() time.Duration { return p.cfg.TTL }

var _ Policy = (*AdaptiveHold)(nil)
var _ RngBinder = (*AdaptiveHold)(nil)

package core

import (
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/wire"
)

func adaptiveForTest() *AdaptiveHold {
	return NewAdaptiveHold(AdaptiveConfig{
		TMin: 20 * time.Millisecond, TMax: 200 * time.Millisecond,
		Target: 2, Alpha: 0.5,
		C: 6, N: 100, TTL: time.Minute,
	})
}

func srcID(src topology.NodeID, seq uint64) wire.MessageID {
	return wire.MessageID{Source: src, Seq: seq}
}

// TestAdaptiveHoldScalesWithDemand pins the demand→hold mapping: a quiet
// source holds TMin, demand at the target holds TMax, and the hold is
// clamped at TMax beyond it.
func TestAdaptiveHoldScalesWithDemand(t *testing.T) {
	p := adaptiveForTest()
	if d, reset := p.Hold(srcID(1, 1)); d != 20*time.Millisecond || !reset {
		t.Fatalf("quiet-source hold = %v reset=%v, want TMin and reset-on-request", d, reset)
	}
	// Each request adds alpha=0.5; 4 requests → demand 2.0 = target.
	for i := 0; i < 4; i++ {
		p.ObserveRequest(srcID(1, 1), 0)
	}
	if d := p.Demand(1); d != 2 {
		t.Fatalf("demand after 4 requests = %v, want 2", d)
	}
	if d, _ := p.Hold(srcID(1, 2)); d != 200*time.Millisecond {
		t.Fatalf("hold at target demand = %v, want TMax", d)
	}
	for i := 0; i < 8; i++ {
		p.ObserveRequest(srcID(1, 1), 0)
	}
	if d, _ := p.Hold(srcID(1, 3)); d != 200*time.Millisecond {
		t.Fatalf("hold beyond target demand = %v, want clamped at TMax", d)
	}
	// Halfway demand interpolates linearly: demand 1 of target 2 → midpoint.
	p2 := adaptiveForTest()
	p2.ObserveRequest(srcID(4, 1), 0)
	p2.ObserveRequest(srcID(4, 1), 0)
	if d, _ := p2.Hold(srcID(4, 2)); d != 110*time.Millisecond {
		t.Fatalf("hold at half demand = %v, want 110ms", d)
	}
	// Other sources' demand must not leak.
	if d, _ := p.Hold(srcID(2, 1)); d != 20*time.Millisecond {
		t.Fatalf("unrelated source hold = %v, want TMin", d)
	}
}

// TestAdaptiveDemandDecaysOnStore pins the EWMA direction: stores decay a
// source's demand toward zero (each new message dilutes requests/message),
// requests raise it toward the fixed point requests-per-message / alpha.
func TestAdaptiveDemandDecaysOnStore(t *testing.T) {
	p := adaptiveForTest()
	p.ObserveRequest(srcID(1, 1), 0)
	p.ObserveRequest(srcID(1, 1), 0) // demand 1.0
	p.ObserveStore(srcID(1, 2), 0)   // ×(1-0.5) → 0.5
	if d := p.Demand(1); d != 0.5 {
		t.Fatalf("demand after store decay = %v, want 0.5", d)
	}
	// A steady k-requests-per-message regime converges to demand k: with
	// alpha=0.5 and k=1, d' = 0.5·d + 0.5 has fixed point 1.
	for i := 0; i < 40; i++ {
		p.ObserveStore(srcID(1, uint64(10+i)), 0)
		p.ObserveRequest(srcID(1, uint64(10+i)), 0)
	}
	if d := p.Demand(1); d < 0.99 || d > 1.01 {
		t.Fatalf("steady-state demand = %v, want ~1 (k=1 requests/message)", d)
	}
}

// TestAdaptiveDisplacedBefore pins the policy-owned pressure order: the
// lower-demand source's entries displace first, and equal demand falls
// back to the historic DefaultDisplacedBefore order.
func TestAdaptiveDisplacedBefore(t *testing.T) {
	p := adaptiveForTest()
	p.ObserveRequest(srcID(2, 1), 0) // source 2 is in demand
	cold := &Entry{ID: srcID(1, 1), State: StateShortTerm}
	hot := &Entry{ID: srcID(2, 1), State: StateShortTerm}
	if !p.DisplacedBefore(cold, hot) || p.DisplacedBefore(hot, cold) {
		t.Fatal("lower-demand source must displace before the in-demand one")
	}
	// Same source (equal demand): the historic order decides, which prefers
	// the longer-idle short-term entry.
	a := &Entry{ID: srcID(1, 1), State: StateShortTerm, LastRequest: 10 * time.Millisecond}
	b := &Entry{ID: srcID(1, 2), State: StateShortTerm, LastRequest: 20 * time.Millisecond}
	if !p.DisplacedBefore(a, b) || p.DisplacedBefore(b, a) {
		t.Fatal("equal demand must fall back to the default idle-first order")
	}
	if p.DisplacedBefore(a, b) != DefaultDisplacedBefore(a, b) {
		t.Fatal("equal-demand order diverges from DefaultDisplacedBefore")
	}
}

// TestAdaptiveOnIdlePrefersBoundRng verifies the RngBinder contract: once
// BindRng hands the policy its private stream, OnIdle draws from it and
// ignores the caller-supplied source.
func TestAdaptiveOnIdlePrefersBoundRng(t *testing.T) {
	// C=N makes the election probability 1: every idle entry promotes, so
	// the draw consumes exactly one Bernoulli from whichever stream is used.
	p := NewAdaptiveHold(AdaptiveConfig{
		TMin: time.Millisecond, TMax: time.Millisecond, Target: 1,
		C: 4, N: 4, TTL: time.Minute,
	})
	p.BindRng(rng.New(7))
	caller := rng.New(99)
	callerProbe := rng.New(99)
	if got := p.OnIdle(srcID(1, 1), caller); got != PromoteLongTerm {
		t.Fatalf("OnIdle with C=N = %v, want PromoteLongTerm", got)
	}
	if caller.Uint64() != callerProbe.Uint64() {
		t.Fatal("OnIdle consumed from the caller's rng despite a bound stream")
	}
	if p.LongTermTTL() != time.Minute {
		t.Fatalf("LongTermTTL = %v, want 1m", p.LongTermTTL())
	}
}

// TestAdaptiveConfigValidation pins the constructor's panics and defaults.
func TestAdaptiveConfigValidation(t *testing.T) {
	mustPanic := func(name string, cfg AdaptiveConfig) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("NewAdaptiveHold(%s) did not panic", name)
			}
		}()
		NewAdaptiveHold(cfg)
	}
	ok := AdaptiveConfig{TMin: time.Millisecond, TMax: time.Second, Target: 1, C: 1, N: 10}
	bad := ok
	bad.TMin = 0
	mustPanic("TMin=0", bad)
	bad = ok
	bad.TMax = bad.TMin / 2
	mustPanic("TMax<TMin", bad)
	bad = ok
	bad.Target = 0
	mustPanic("Target=0", bad)
	bad = ok
	bad.Alpha = 1.5
	mustPanic("Alpha>1", bad)
	bad = ok
	bad.N = 0
	mustPanic("N=0", bad)
	p := NewAdaptiveHold(ok) // Alpha 0 defaults rather than panics
	p.ObserveRequest(srcID(1, 1), 0)
	if d := p.Demand(1); d != DefaultAdaptiveAlpha {
		t.Fatalf("default-alpha request moved demand to %v, want %v", d, DefaultAdaptiveAlpha)
	}
	if p.Name() != "adaptive" {
		t.Fatalf("Name = %q, want adaptive", p.Name())
	}
}

// TestAdaptiveDemandTrackingAllocsFree guards the demand-tracking hot path:
// after the per-source map entries exist, ObserveStore, ObserveRequest and
// Hold must not allocate — they run once per store and once per NAK on the
// buffer's hottest path.
func TestAdaptiveDemandTrackingAllocsFree(t *testing.T) {
	p := adaptiveForTest()
	const sources = 8
	for s := 0; s < sources; s++ {
		p.ObserveStore(srcID(topology.NodeID(s), 1), 0) // warm the map
	}
	var seq uint64
	allocs := testing.AllocsPerRun(1000, func() {
		seq++
		for s := 0; s < sources; s++ {
			id := srcID(topology.NodeID(s), seq)
			p.ObserveStore(id, 0)
			p.ObserveRequest(id, 0)
			p.Hold(id)
		}
	})
	if allocs != 0 {
		t.Fatalf("demand-tracking hot path allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkAdaptiveDemandTracking measures the demand hot path (one store
// observation, one request observation, one hold computation).
func BenchmarkAdaptiveDemandTracking(b *testing.B) {
	p := adaptiveForTest()
	p.ObserveStore(srcID(1, 1), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := srcID(1, uint64(i+1))
		p.ObserveStore(id, 0)
		p.ObserveRequest(id, 0)
		p.Hold(id)
	}
}

// BenchmarkAdaptiveDisplacedBefore measures the policy-owned pressure
// comparator against the historic default.
func BenchmarkAdaptiveDisplacedBefore(b *testing.B) {
	p := adaptiveForTest()
	p.ObserveRequest(srcID(2, 1), 0)
	x := &Entry{ID: srcID(1, 1), State: StateShortTerm}
	y := &Entry{ID: srcID(2, 1), State: StateShortTerm}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.DisplacedBefore(x, y)
	}
}

// BenchmarkDefaultDisplacedBefore is the baseline comparator the legacy
// policies inherit through PolicyBase.
func BenchmarkDefaultDisplacedBefore(b *testing.B) {
	x := &Entry{ID: srcID(1, 1), State: StateShortTerm}
	y := &Entry{ID: srcID(2, 1), State: StateShortTerm, LastRequest: time.Millisecond}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DefaultDisplacedBefore(x, y)
	}
}

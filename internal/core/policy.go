package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Decision is a policy's verdict when an entry becomes idle.
type Decision int

// Idle-time decisions.
const (
	Discard Decision = iota + 1
	PromoteLongTerm
)

// Policy parameterizes buffer retention. Implementations must be
// deterministic given the same rng stream; all randomness flows through the
// OnIdle rng argument (or a privately bound stream, see RngBinder).
//
// Beyond the original Hold/OnIdle/LongTermTTL triple, the contract is
// observation-fed: the buffer reports store, request and eviction events so
// a policy can react to per-message demand, and the policy owns the
// pressure-eviction order that used to be hard-coded in Buffer. Embed
// PolicyBase to get no-op observers and the historic displacement order;
// the four legacy policies do, and behave byte-identically to the narrow
// contract.
type Policy interface {
	// Name identifies the policy in metrics and experiment output.
	Name() string
	// Hold returns how long an entry is held before an idle check, and
	// whether retransmission-request feedback re-arms that clock.
	// A zero duration means the entry never idles (retention until external
	// removal).
	Hold(id wire.MessageID) (d time.Duration, resetOnRequest bool)
	// OnIdle decides what happens to an entry that has been idle for the
	// hold period.
	OnIdle(id wire.MessageID, r *rng.Source) Decision
	// LongTermTTL bounds unused long-term retention; zero means forever.
	LongTermTTL() time.Duration

	// ObserveStore tells the policy a message entered the buffer at time
	// at. It fires before Hold is consulted for the same message, so a
	// demand-aware hold already reflects the store.
	ObserveStore(id wire.MessageID, at time.Duration)
	// ObserveRequest tells the policy a retransmission request (or any
	// other buffer use — NAK demand) touched a buffered message at time at.
	ObserveRequest(id wire.MessageID, at time.Duration)
	// ObserveEvict tells the policy a message left the buffer and why.
	// Stability-driven trims (EvictStable) are how the RMTP refetch
	// discipline surfaces through this same contract.
	ObserveEvict(id wire.MessageID, reason EvictReason)
	// DisplacedBefore is the strict total order pressure eviction follows
	// under Config.ByteBudget: true means a is displaced before c. It must
	// be a strict total order over live entries so the victim scan is
	// independent of index iteration order. DefaultDisplacedBefore is the
	// historic order.
	DisplacedBefore(a, c *Entry) bool
}

// PolicyBase supplies the widened contract's default behaviour: no-op
// observers and the historic displacement order. Embed it by value — it
// carries no state — and override only what the policy cares about.
type PolicyBase struct{}

// ObserveStore implements Policy: the default ignores store events.
func (PolicyBase) ObserveStore(wire.MessageID, time.Duration) {}

// ObserveRequest implements Policy: the default ignores request feedback.
func (PolicyBase) ObserveRequest(wire.MessageID, time.Duration) {}

// ObserveEvict implements Policy: the default ignores evictions.
func (PolicyBase) ObserveEvict(wire.MessageID, EvictReason) {}

// DisplacedBefore implements Policy with the historic pressure order.
func (PolicyBase) DisplacedBefore(a, c *Entry) bool { return DefaultDisplacedBefore(a, c) }

// TwoPhase is the paper's buffer management algorithm (§3): feedback-based
// short-term buffering with idle threshold T, then randomized long-term
// election with probability C/n.
type TwoPhase struct {
	PolicyBase

	// T is the idle threshold. The paper recommends a small multiple of the
	// maximum intra-region round-trip time (§3.1; 4× in the evaluation).
	T time.Duration
	// C is the expected number of long-term bufferers per region (§3.2).
	C float64
	// N is the region size the member believes, used to derive the
	// election probability C/N.
	N int
	// TTL bounds unused long-term retention; zero means forever.
	TTL time.Duration
}

// NewTwoPhase returns the paper's policy with explicit parameters. It
// panics if T <= 0 or N <= 0.
func NewTwoPhase(t time.Duration, c float64, n int, ttl time.Duration) *TwoPhase {
	if t <= 0 {
		panic(fmt.Sprintf("core: TwoPhase idle threshold %v must be positive", t))
	}
	if n <= 0 {
		panic(fmt.Sprintf("core: TwoPhase region size %d must be positive", n))
	}
	return &TwoPhase{T: t, C: c, N: n, TTL: ttl}
}

// Name implements Policy.
func (p *TwoPhase) Name() string { return "two-phase" }

// Hold implements Policy: hold for T, re-armed by request feedback.
func (p *TwoPhase) Hold(wire.MessageID) (time.Duration, bool) { return p.T, true }

// ElectionProbability returns the per-message long-term election
// probability C/N, clamped to [0, 1].
func (p *TwoPhase) ElectionProbability() float64 {
	pr := p.C / float64(p.N)
	switch {
	case pr < 0:
		return 0
	case pr > 1:
		return 1
	default:
		return pr
	}
}

// OnIdle implements Policy: elect long-term with probability C/N.
func (p *TwoPhase) OnIdle(_ wire.MessageID, r *rng.Source) Decision {
	if r != nil && r.Bernoulli(p.ElectionProbability()) {
		return PromoteLongTerm
	}
	return Discard
}

// LongTermTTL implements Policy.
func (p *TwoPhase) LongTermTTL() time.Duration { return p.TTL }

var _ Policy = (*TwoPhase)(nil)

// FixedHold buffers every message for a fixed duration, the Bimodal
// Multicast policy the paper contrasts with (§2): no feedback, no long-term
// phase.
type FixedHold struct {
	PolicyBase

	// D is the constant retention period.
	D time.Duration
}

// Name implements Policy.
func (p *FixedHold) Name() string { return "fixed-hold" }

// Hold implements Policy: requests do not extend retention.
func (p *FixedHold) Hold(wire.MessageID) (time.Duration, bool) { return p.D, false }

// OnIdle implements Policy: always discard at expiry.
func (p *FixedHold) OnIdle(wire.MessageID, *rng.Source) Decision { return Discard }

// LongTermTTL implements Policy.
func (p *FixedHold) LongTermTTL() time.Duration { return 0 }

var _ Policy = (*FixedHold)(nil)

// BufferAll retains every message until an external authority (a stability
// detector, or session teardown) removes it — the conservative strategy of
// §1 and the RMTP repair-server behaviour.
type BufferAll struct{ PolicyBase }

// Name implements Policy.
func (BufferAll) Name() string { return "buffer-all" }

// Hold implements Policy: zero hold means "never idles".
func (BufferAll) Hold(wire.MessageID) (time.Duration, bool) { return 0, false }

// OnIdle implements Policy. It is unreachable for entries stored under this
// policy (they never idle) but must still answer for entries promoted via
// StoreLongTerm on handoff.
func (BufferAll) OnIdle(wire.MessageID, *rng.Source) Decision { return PromoteLongTerm }

// LongTermTTL implements Policy.
func (BufferAll) LongTermTTL() time.Duration { return 0 }

var _ Policy = BufferAll{}

// HashElect is the deterministic bufferer-selection baseline from the
// authors' earlier work ([11], discussed in §3.4): the long-term bufferers
// of a message are the C region members with the smallest hash of
// (member address, message id). Any member can compute the bufferer set
// locally, avoiding the search protocol at the cost of per-lookup hashing
// and with no way to adapt to membership dynamics.
type HashElect struct {
	PolicyBase

	// T is the short-term idle threshold, as in TwoPhase.
	T time.Duration
	// C is the number of deterministic bufferers per region.
	C int
	// Self is the member owning this buffer.
	Self topology.NodeID
	// Region is the member's (approximate) region membership, including
	// Self. The slice is copied at construction.
	Region []topology.NodeID
	// TTL bounds unused long-term retention; zero means forever.
	TTL time.Duration
}

// NewHashElect constructs the deterministic policy. It panics on an empty
// region or non-positive T.
func NewHashElect(t time.Duration, c int, self topology.NodeID, region []topology.NodeID, ttl time.Duration) *HashElect {
	if t <= 0 {
		panic("core: HashElect idle threshold must be positive")
	}
	if len(region) == 0 {
		panic("core: HashElect requires region membership")
	}
	cp := make([]topology.NodeID, len(region))
	copy(cp, region)
	return &HashElect{T: t, C: c, Self: self, Region: cp, TTL: ttl}
}

// Name implements Policy.
func (p *HashElect) Name() string { return "hash-elect" }

// Hold implements Policy.
func (p *HashElect) Hold(wire.MessageID) (time.Duration, bool) { return p.T, true }

// OnIdle implements Policy: keep iff Self is among the C lowest hashes.
func (p *HashElect) OnIdle(id wire.MessageID, _ *rng.Source) Decision {
	if p.IsBufferer(p.Self, id) {
		return PromoteLongTerm
	}
	return Discard
}

// LongTermTTL implements Policy.
func (p *HashElect) LongTermTTL() time.Duration { return p.TTL }

// Bufferers returns the deterministic bufferer set for id: the C members
// with the smallest rank hash. Every member of the region computes the same
// set, so a requester can contact bufferers directly (§3.4).
func (p *HashElect) Bufferers(id wire.MessageID) []topology.NodeID {
	c := p.C
	if c > len(p.Region) {
		c = len(p.Region)
	}
	if c <= 0 {
		return nil
	}
	ranked := make([]topology.NodeID, len(p.Region))
	copy(ranked, p.Region)
	sort.Slice(ranked, func(i, j int) bool {
		hi, hj := rankHash(ranked[i], id), rankHash(ranked[j], id)
		if hi != hj {
			return hi < hj
		}
		return ranked[i] < ranked[j]
	})
	return ranked[:c]
}

// IsBufferer reports whether node is in the deterministic bufferer set for
// id.
func (p *HashElect) IsBufferer(node topology.NodeID, id wire.MessageID) bool {
	for _, b := range p.Bufferers(id) {
		if b == node {
			return true
		}
	}
	return false
}

var _ Policy = (*HashElect)(nil)

// rankHash mixes a member address with a message id into a 64-bit rank.
// It is a fixed splitmix64-style finalizer: deterministic across runs and
// platforms, which the deterministic baseline requires.
func rankHash(node topology.NodeID, id wire.MessageID) uint64 {
	x := uint64(uint32(node))<<32 ^ uint64(uint32(id.Source))
	x ^= id.Seq * 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

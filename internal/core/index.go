package core

import (
	"sort"

	"repro/internal/topology"
	"repro/internal/wire"
)

// IndexKind selects the Buffer's entry-index implementation.
type IndexKind int

const (
	// IndexDense (the default) keys entries by source with dense,
	// sequence-indexed slices per source: one small map lookup on the
	// source id plus an array index, no MessageID hashing, and sorted
	// iteration for free (sources ascending, sequences ascending — the
	// exact order the legacy index produced by sorting). This is the
	// scale rewrite's O(1) id lookup.
	IndexDense IndexKind = iota
	// IndexLegacyMap is the pre-rewrite map[MessageID]*Entry index. It is
	// retained so property tests can run both implementations side by side
	// and prove the rewrite behaviour-preserving; new code should not
	// select it.
	IndexLegacyMap
)

// entryIndex stores a Buffer's live entries. Implementations must agree on
// the observable contract exactly: sorted() iterates in (Source, Seq) order
// (rng draws are paired with entries during leave handoff, so this order is
// part of the determinism contract), and size/get/remove reflect puts
// immediately.
type entryIndex interface {
	get(id wire.MessageID) (*Entry, bool)
	put(e *Entry)
	remove(id wire.MessageID)
	size() int
	// sorted appends all entries in (Source, Seq) order to dst and returns
	// the result.
	sorted(dst []*Entry) []*Entry
	// each visits all entries in unspecified order (timer teardown only).
	each(fn func(*Entry))
	reset()
}

func newEntryIndex(kind IndexKind) entryIndex {
	if kind == IndexLegacyMap {
		return &mapIndex{entries: make(map[wire.MessageID]*Entry)}
	}
	return &denseIndex{srcs: make(map[topology.NodeID]*srcSlot)}
}

// mapIndex is the PR 2 implementation: a flat map with an O(n log n) sort
// on every ordered snapshot.
type mapIndex struct {
	entries map[wire.MessageID]*Entry
}

func (x *mapIndex) get(id wire.MessageID) (*Entry, bool) {
	e, ok := x.entries[id]
	return e, ok
}

func (x *mapIndex) put(e *Entry)             { x.entries[e.ID] = e }
func (x *mapIndex) remove(id wire.MessageID) { delete(x.entries, id) }
func (x *mapIndex) size() int                { return len(x.entries) }
func (x *mapIndex) reset()                   { x.entries = make(map[wire.MessageID]*Entry) }
func (x *mapIndex) each(fn func(e *Entry)) {
	for _, e := range x.entries {
		fn(e)
	}
}

func (x *mapIndex) sorted(dst []*Entry) []*Entry {
	start := len(dst)
	for _, e := range x.entries {
		//lint:allow maporder -- the appended tail aliases dst[start:] as out and is sorted immediately below
		dst = append(dst, e)
	}
	out := dst[start:]
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID.Source != out[j].ID.Source {
			return out[i].ID.Source < out[j].ID.Source
		}
		return out[i].ID.Seq < out[j].ID.Seq
	})
	return dst
}

// denseIndex holds one srcSlot per message source. Sequence numbers from a
// source are dense in practice (a sender counts 1, 2, 3, ...), so a slot is
// a base offset plus a slice indexed by seq-base; lookups and removals are
// pure array ops after one cheap int32-keyed map access.
type denseIndex struct {
	srcs map[topology.NodeID]*srcSlot
	// order is the sorted source list, maintained on slot creation (a rare
	// event: almost every simulation has exactly one source), giving
	// sorted() a single allocation-free pass.
	order []topology.NodeID
	n     int
}

type srcSlot struct {
	base    uint64 // seq of entries[0]
	entries []*Entry
	count   int
}

func (x *denseIndex) slot(src topology.NodeID) *srcSlot {
	if s, ok := x.srcs[src]; ok {
		return s
	}
	s := &srcSlot{}
	x.srcs[src] = s
	i := sort.Search(len(x.order), func(i int) bool { return x.order[i] >= src })
	x.order = append(x.order, 0)
	copy(x.order[i+1:], x.order[i:])
	x.order[i] = src
	return s
}

func (x *denseIndex) get(id wire.MessageID) (*Entry, bool) {
	s, ok := x.srcs[id.Source]
	if !ok || s.count == 0 || id.Seq < s.base {
		return nil, false
	}
	i := id.Seq - s.base
	if i >= uint64(len(s.entries)) || s.entries[i] == nil {
		return nil, false
	}
	return s.entries[i], true
}

func (x *denseIndex) put(e *Entry) {
	s := x.slot(e.ID.Source)
	seq := e.ID.Seq
	if s.count == 0 {
		s.base = seq
		s.entries = s.entries[:0]
	}
	switch {
	case seq < s.base:
		// Prepend room for [seq, base): rare (an old message re-buffered
		// after its predecessors were evicted below a later base).
		shift := s.base - seq
		grown := make([]*Entry, uint64(len(s.entries))+shift)
		copy(grown[shift:], s.entries)
		s.entries = grown
		s.base = seq
	case seq-s.base >= uint64(len(s.entries)):
		for uint64(len(s.entries)) <= seq-s.base {
			s.entries = append(s.entries, nil)
		}
	}
	if s.entries[seq-s.base] == nil {
		s.count++
		x.n++
	}
	s.entries[seq-s.base] = e
}

func (x *denseIndex) remove(id wire.MessageID) {
	s, ok := x.srcs[id.Source]
	if !ok || id.Seq < s.base {
		return
	}
	i := id.Seq - s.base
	if i >= uint64(len(s.entries)) || s.entries[i] == nil {
		return
	}
	s.entries[i] = nil
	s.count--
	x.n--
	if s.count == 0 {
		s.entries = s.entries[:0]
		return
	}
	if i == 0 {
		// Trim the evicted front so the slice tracks the live span, not the
		// whole sequence history (buffers evict mostly in arrival order, so
		// this keeps memory proportional to the short-term window).
		k := 0
		for k < len(s.entries) && s.entries[k] == nil {
			k++
		}
		s.entries = s.entries[k:]
		s.base += uint64(k)
	}
}

func (x *denseIndex) size() int { return x.n }

func (x *denseIndex) sorted(dst []*Entry) []*Entry {
	for _, src := range x.order {
		s := x.srcs[src]
		for _, e := range s.entries {
			if e != nil {
				dst = append(dst, e)
			}
		}
	}
	return dst
}

func (x *denseIndex) each(fn func(e *Entry)) {
	for _, src := range x.order {
		for _, e := range x.srcs[src].entries {
			if e != nil {
				fn(e)
			}
		}
	}
}

func (x *denseIndex) reset() {
	x.srcs = make(map[topology.NodeID]*srcSlot)
	x.order = x.order[:0]
	x.n = 0
}

package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// diffPolicies builds one fresh instance of every registered policy shape
// for a differential run. Fresh per call: the adaptive policy carries
// demand state and the feedback policies carry rng state, so instances
// must never be shared across index kinds.
func diffPolicies() map[string]func() Policy {
	region := make([]topology.NodeID, 8)
	for i := range region {
		region[i] = topology.NodeID(i)
	}
	return map[string]func() Policy{
		"two-phase": func() Policy { return NewTwoPhase(10*time.Millisecond, 3, 8, 500*time.Millisecond) },
		"fixed":     func() Policy { return &FixedHold{D: 30 * time.Millisecond} },
		"all":       func() Policy { return BufferAll{} },
		"hash": func() Policy {
			return NewHashElect(10*time.Millisecond, 3, 0, region, 500*time.Millisecond)
		},
		"adaptive": func() Policy {
			p := NewAdaptiveHold(AdaptiveConfig{
				TMin: 5 * time.Millisecond, TMax: 50 * time.Millisecond,
				Target: 2, Alpha: 0.5, C: 3, N: 8, TTL: 500 * time.Millisecond,
			})
			p.BindRng(rng.New(0xbeef))
			return p
		},
	}
}

// diffScript drives one randomized op script (stores from several sources,
// feedback, time advances, pressure from a byte budget) against a buffer
// running the given policy and index kind, and returns the full eviction
// ledger plus the end-of-run metric snapshot. The script is a pure
// function of seed, so two calls with the same seed see identical ops.
func diffScript(policy Policy, kind IndexKind, seed uint64) (ledger []string, metrics string) {
	const budget = 1 << 11
	s := sim.New()
	var b *Buffer
	b = NewBuffer(Config{
		Policy:     policy,
		Sched:      s,
		Rng:        rng.New(seed),
		Index:      kind,
		ByteBudget: budget,
		OnEvict: func(e *Entry, r EvictReason) {
			ledger = append(ledger, fmt.Sprintf("%d/%d %v %v short=%d",
				e.ID.Source, e.ID.Seq, r, e.State, b.ShortTermCount()))
		},
	})
	script := rng.New(seed)
	at := time.Duration(0)
	seqs := make(map[topology.NodeID]uint64)
	var known []wire.MessageID
	for op := 0; op < 300; op++ {
		at += time.Duration(script.Intn(4)) * time.Millisecond
		switch draw := script.Intn(10); {
		case draw < 6: // store from one of 4 sources, skewed toward source 0
			src := topology.NodeID(script.Intn(8) / 2 % 4)
			seqs[src]++
			id := wire.MessageID{Source: src, Seq: seqs[src]}
			known = append(known, id)
			sz := 64 + script.Intn(budget/4)
			s.At(at, func() { b.Store(id, make([]byte, sz)) })
		case draw < 9: // feedback touch on a random known id
			if len(known) > 0 {
				id := known[script.Intn(len(known))]
				s.At(at, func() { b.OnRequest(id) })
			}
		default: // stability removal of a random known id
			if len(known) > 0 {
				id := known[script.Intn(len(known))]
				s.At(at, func() { b.Remove(id, EvictStable) })
			}
		}
	}
	s.Run()
	var counts []string
	for _, reason := range []EvictReason{EvictIdle, EvictTTL, EvictHandoff, EvictStable, EvictManual, EvictPressure} {
		counts = append(counts, fmt.Sprintf("%v=%d", reason, b.EvictedCount(reason)))
	}
	metrics = fmt.Sprintf("len=%d bytes=%d peak=%d short=%d denied=%d evicted=%v",
		b.Len(), b.Bytes(), b.PeakBytes(), b.ShortTermCount(), b.DeniedCount(), counts)
	return ledger, metrics
}

// TestPolicyDifferentialAcrossIndexKinds is the widened-contract
// differential property: every registered policy — the four legacy shapes
// riding PolicyBase and the demand-aware adaptive policy — must produce a
// byte-identical eviction ledger and end-of-run metrics under IndexDense
// and IndexLegacyMap for the same op script. This pins both halves of the
// contract: the observation hooks fire identically regardless of index
// layout, and the policy-owned DisplacedBefore order is a strict total
// order (an ambiguous comparator would let the index's internal iteration
// order pick different pressure victims).
func TestPolicyDifferentialAcrossIndexKinds(t *testing.T) {
	for name, mk := range diffPolicies() {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 12; seed++ {
				denseLedger, denseMetrics := diffScript(mk(), IndexDense, seed)
				legacyLedger, legacyMetrics := diffScript(mk(), IndexLegacyMap, seed)
				if fmt.Sprint(denseLedger) != fmt.Sprint(legacyLedger) {
					t.Fatalf("seed %d: eviction ledgers diverge:\ndense:  %v\nlegacy: %v",
						seed, denseLedger, legacyLedger)
				}
				if denseMetrics != legacyMetrics {
					t.Fatalf("seed %d: metrics diverge:\ndense:  %s\nlegacy: %s",
						seed, denseMetrics, legacyMetrics)
				}
			}
		})
	}
}

// TestLegacyPoliciesIgnoreObservations pins the byte-identity invariant
// behind the widened contract: the legacy policies' hold and idle-time
// decisions are unchanged by any sequence of observation events, so every
// committed report regenerates identically under the new interface.
func TestLegacyPoliciesIgnoreObservations(t *testing.T) {
	region := []topology.NodeID{0, 1, 2, 3}
	for name, p := range map[string]Policy{
		"two-phase": NewTwoPhase(40*time.Millisecond, 2, 4, time.Minute),
		"fixed":     &FixedHold{D: 30 * time.Millisecond},
		"all":       BufferAll{},
		"hash":      NewHashElect(40*time.Millisecond, 2, 0, region, time.Minute),
	} {
		id := wire.MessageID{Source: 1, Seq: 9}
		h0, r0 := p.Hold(id)
		p.ObserveStore(id, time.Millisecond)
		p.ObserveRequest(id, 2*time.Millisecond)
		p.ObserveRequest(id, 3*time.Millisecond)
		p.ObserveEvict(id, EvictPressure)
		h1, r1 := p.Hold(id)
		if h0 != h1 || r0 != r1 {
			t.Fatalf("%s: Hold changed after observations: (%v,%v) -> (%v,%v)", name, h0, r0, h1, r1)
		}
		a := &Entry{ID: wire.MessageID{Source: 0, Seq: 1}, State: StateShortTerm}
		c := &Entry{ID: wire.MessageID{Source: 2, Seq: 2}, State: StateShortTerm, LastRequest: time.Millisecond}
		if p.DisplacedBefore(a, c) != DefaultDisplacedBefore(a, c) {
			t.Fatalf("%s: DisplacedBefore diverges from the historic order", name)
		}
	}
}

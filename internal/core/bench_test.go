package core

import (
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Benchmarks for the buffer hot path: every delivered message is one Store
// (id lookup + timer arm), every retransmission request one OnRequest, and
// each of the ~n·msgs entries in a sweep rides the idle-check/re-arm cycle.
// BENCH_scale.json tracks the macro effect; these isolate the index.

func benchBuffer(b *testing.B, kind IndexKind) (*sim.Sim, *Buffer) {
	b.Helper()
	s := sim.New()
	buf := NewBuffer(Config{
		Policy: NewTwoPhase(40*time.Millisecond, 6, 100, time.Minute),
		Sched:  s,
		Rng:    rng.New(1),
		Index:  kind,
	})
	return s, buf
}

func benchStoreEvict(b *testing.B, kind IndexKind) {
	s, buf := benchBuffer(b, kind)
	payload := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := wire.MessageID{Source: 0, Seq: uint64(i + 1)}
		buf.Store(id, payload)
		if buf.Len() > 512 {
			s.RunFor(time.Millisecond) // let idle checks drain the window
		}
	}
	_ = s
}

// BenchmarkBufferStoreEvict measures the dense index's store/idle cycle.
func BenchmarkBufferStoreEvict(b *testing.B) { benchStoreEvict(b, IndexDense) }

// BenchmarkBufferStoreEvictLegacyMap is the same workload on the PR 2 map
// index, kept as the comparison baseline for the rewrite.
func BenchmarkBufferStoreEvictLegacyMap(b *testing.B) { benchStoreEvict(b, IndexLegacyMap) }

func benchOnRequest(b *testing.B, kind IndexKind) {
	_, buf := benchBuffer(b, kind)
	payload := make([]byte, 256)
	const live = 1024
	for i := 0; i < live; i++ {
		buf.Store(wire.MessageID{Source: 0, Seq: uint64(i + 1)}, payload)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.OnRequest(wire.MessageID{Source: 0, Seq: uint64(i%live + 1)})
	}
}

// BenchmarkBufferOnRequest measures the request-feedback lookup (the §3.1
// implicit-feedback path: one per retransmission request received).
func BenchmarkBufferOnRequest(b *testing.B) { benchOnRequest(b, IndexDense) }

// BenchmarkBufferOnRequestLegacyMap is the map-index baseline.
func BenchmarkBufferOnRequestLegacyMap(b *testing.B) { benchOnRequest(b, IndexLegacyMap) }

func benchEntries(b *testing.B, kind IndexKind) {
	_, buf := benchBuffer(b, kind)
	payload := make([]byte, 16)
	for i := 0; i < 1024; i++ {
		buf.Store(wire.MessageID{Source: 0, Seq: uint64(i + 1)}, payload)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := buf.Entries(); len(got) != 1024 {
			b.Fatalf("entries %d", len(got))
		}
	}
}

// BenchmarkBufferEntries measures the ordered snapshot (leave handoff pairs
// it with rng draws; the dense index yields the order without sorting).
func BenchmarkBufferEntries(b *testing.B) { benchEntries(b, IndexDense) }

// BenchmarkBufferEntriesLegacyMap is the sort-on-snapshot baseline.
func BenchmarkBufferEntriesLegacyMap(b *testing.B) { benchEntries(b, IndexLegacyMap) }

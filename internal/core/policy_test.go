package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/analytic"
	"repro/internal/rng"
	"repro/internal/topology"
)

func TestTwoPhaseElectionProbabilityClamped(t *testing.T) {
	if got := NewTwoPhase(time.Millisecond, 6, 100, 0).ElectionProbability(); got != 0.06 {
		t.Fatalf("P = %v", got)
	}
	if got := NewTwoPhase(time.Millisecond, 200, 100, 0).ElectionProbability(); got != 1 {
		t.Fatalf("clamped P = %v", got)
	}
	if got := (&TwoPhase{T: time.Millisecond, C: -1, N: 100}).ElectionProbability(); got != 0 {
		t.Fatalf("negative C: P = %v", got)
	}
}

func TestTwoPhaseConstructorValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero T": func() { NewTwoPhase(0, 6, 100, 0) },
		"zero N": func() { NewTwoPhase(time.Millisecond, 6, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestElectionMatchesBinomial reproduces the §3.2 claim: with n members
// electing independently with probability C/n, the number of long-term
// bufferers is Binomial(n, C/n) ≈ Poisson(C).
func TestElectionMatchesBinomial(t *testing.T) {
	const n, c, trials = 100, 6.0, 20000
	p := NewTwoPhase(time.Millisecond, c, n, 0)
	r := rng.New(7)
	counts := make(map[int]int)
	for trial := 0; trial < trials; trial++ {
		k := 0
		for member := 0; member < n; member++ {
			if p.OnIdle(id(uint64(trial)), r) == PromoteLongTerm {
				k++
			}
		}
		counts[k]++
	}
	// Compare empirical pmf with the analytic Binomial at a few points.
	for _, k := range []int{0, 3, 6, 9} {
		got := float64(counts[k]) / trials
		want := analytic.BinomialPMF(n, k, c/n)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("P[k=%d] empirical %v vs analytic %v", k, got, want)
		}
	}
	// Mean should be C.
	var mean float64
	for k, cnt := range counts {
		mean += float64(k) * float64(cnt)
	}
	mean /= trials
	if math.Abs(mean-c) > 0.1 {
		t.Errorf("mean bufferers %v, want %v", mean, c)
	}
}

// TestNoBuffererProbability reproduces Figure 4's headline number: with
// C = 6 an idle message is buffered nowhere ~0.25% of the time.
func TestNoBuffererProbability(t *testing.T) {
	const n, trials = 100, 200000
	r := rng.New(11)
	for _, c := range []float64{1, 3, 6} {
		p := NewTwoPhase(time.Millisecond, c, n, 0)
		none := 0
		for trial := 0; trial < trials; trial++ {
			elected := false
			for member := 0; member < n && !elected; member++ {
				elected = p.OnIdle(id(uint64(trial)), r) == PromoteLongTerm
			}
			if !elected {
				none++
			}
		}
		got := float64(none) / trials
		want := analytic.ProbNoLongTermBuffererExact(c, n)
		if math.Abs(got-want) > want*0.15+0.001 {
			t.Errorf("C=%v: P[no bufferer] empirical %v vs analytic %v", c, got, want)
		}
	}
}

func TestFixedHoldPolicy(t *testing.T) {
	p := &FixedHold{D: 5 * time.Second}
	d, reset := p.Hold(id(1))
	if d != 5*time.Second || reset {
		t.Fatalf("Hold = %v, %v", d, reset)
	}
	if p.OnIdle(id(1), rng.New(1)) != Discard {
		t.Fatal("fixed-hold did not discard")
	}
	if p.Name() != "fixed-hold" {
		t.Fatal("name")
	}
}

func TestBufferAllPolicy(t *testing.T) {
	p := BufferAll{}
	d, _ := p.Hold(id(1))
	if d != 0 {
		t.Fatalf("buffer-all hold %v, want 0 (never idles)", d)
	}
	if p.OnIdle(id(1), nil) != PromoteLongTerm {
		t.Fatal("buffer-all idle decision")
	}
}

func region(n int) []topology.NodeID {
	r := make([]topology.NodeID, n)
	for i := range r {
		r[i] = topology.NodeID(i)
	}
	return r
}

func TestHashElectAgreementAcrossMembers(t *testing.T) {
	// Every member must compute the identical bufferer set for a message.
	reg := region(50)
	policies := make([]*HashElect, len(reg))
	for i, self := range reg {
		policies[i] = NewHashElect(time.Millisecond, 5, self, reg, 0)
	}
	for seq := uint64(0); seq < 20; seq++ {
		want := policies[0].Bufferers(id(seq))
		if len(want) != 5 {
			t.Fatalf("bufferer set size %d", len(want))
		}
		for _, p := range policies[1:] {
			got := p.Bufferers(id(seq))
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seq %d: members disagree: %v vs %v", seq, got, want)
				}
			}
		}
	}
}

func TestHashElectOnIdleConsistentWithSet(t *testing.T) {
	reg := region(30)
	for _, self := range reg {
		p := NewHashElect(time.Millisecond, 4, self, reg, 0)
		for seq := uint64(0); seq < 10; seq++ {
			inSet := p.IsBufferer(self, id(seq))
			promoted := p.OnIdle(id(seq), nil) == PromoteLongTerm
			if inSet != promoted {
				t.Fatalf("self=%d seq=%d: IsBufferer=%v but OnIdle promote=%v", self, seq, inSet, promoted)
			}
		}
	}
}

func TestHashElectLoadSpread(t *testing.T) {
	// Across many messages, each member should be elected roughly equally
	// often: mean C/n per message.
	reg := region(40)
	p := NewHashElect(time.Millisecond, 4, 0, reg, 0)
	const msgs = 4000
	counts := make(map[topology.NodeID]int)
	for seq := uint64(0); seq < msgs; seq++ {
		for _, b := range p.Bufferers(id(seq)) {
			counts[b]++
		}
	}
	want := float64(msgs) * 4 / 40
	for n, c := range counts {
		if math.Abs(float64(c)-want) > want*0.25 {
			t.Fatalf("member %d elected %d times, want ~%v", n, c, want)
		}
	}
}

func TestHashElectDifferentMessagesDiffer(t *testing.T) {
	reg := region(100)
	p := NewHashElect(time.Millisecond, 3, 0, reg, 0)
	same := 0
	const pairs = 200
	for seq := uint64(0); seq < pairs; seq++ {
		a := p.Bufferers(id(2 * seq))
		b := p.Bufferers(id(2*seq + 1))
		equal := true
		for i := range a {
			if a[i] != b[i] {
				equal = false
				break
			}
		}
		if equal {
			same++
		}
	}
	if same > pairs/10 {
		t.Fatalf("%d/%d consecutive messages share a bufferer set; hash looks degenerate", same, pairs)
	}
}

func TestHashElectCapsAtRegionSize(t *testing.T) {
	reg := region(3)
	p := NewHashElect(time.Millisecond, 10, 0, reg, 0)
	if got := len(p.Bufferers(id(1))); got != 3 {
		t.Fatalf("bufferers %d, want 3", got)
	}
	zero := NewHashElect(time.Millisecond, 0, 0, reg, 0)
	if got := zero.Bufferers(id(1)); got != nil {
		t.Fatalf("C=0 returned %v", got)
	}
}

func TestHashElectCopiesRegion(t *testing.T) {
	reg := region(5)
	p := NewHashElect(time.Millisecond, 2, 0, reg, 0)
	reg[0] = 999
	for _, b := range p.Bufferers(id(1)) {
		if b == 999 {
			t.Fatal("policy aliased caller's region slice")
		}
	}
}

func TestHashElectValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty region accepted")
		}
	}()
	NewHashElect(time.Millisecond, 2, 0, nil, 0)
}

// Property: the deterministic bufferer set is stable (same inputs, same
// set) and always has min(C, n) distinct members from the region.
func TestHashElectSetProperty(t *testing.T) {
	prop := func(seqs []uint64, cRaw, nRaw uint8) bool {
		n := int(nRaw%60) + 1
		c := int(cRaw % 12)
		reg := region(n)
		p := NewHashElect(time.Millisecond, c, 0, reg, 0)
		for _, seq := range seqs {
			set := p.Bufferers(id(seq))
			wantLen := c
			if wantLen > n {
				wantLen = n
			}
			if len(set) != wantLen {
				return false
			}
			seen := make(map[topology.NodeID]bool, len(set))
			for _, b := range set {
				if b < 0 || int(b) >= n || seen[b] {
					return false
				}
				seen[b] = true
			}
			// Stability.
			again := p.Bufferers(id(seq))
			for i := range set {
				if set[i] != again[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/wire"
)

const testT = 40 * time.Millisecond // paper's idle threshold

func id(seq uint64) wire.MessageID { return wire.MessageID{Source: 0, Seq: seq} }

func newTestBuffer(t *testing.T, s *sim.Sim, p Policy) (*Buffer, *[]EvictReason) {
	t.Helper()
	evictions := &[]EvictReason{}
	b := NewBuffer(Config{
		Policy:  p,
		Sched:   s,
		Rng:     rng.New(1),
		OnEvict: func(_ *Entry, r EvictReason) { *evictions = append(*evictions, r) },
	})
	return b, evictions
}

func TestIdleDiscardAtThreshold(t *testing.T) {
	s := sim.New()
	b, ev := newTestBuffer(t, s, NewTwoPhase(testT, 0, 100, 0)) // C=0: never elect
	var evictedAt time.Duration = -1
	b.cfg.OnEvict = func(e *Entry, r EvictReason) {
		evictedAt = s.Now()
		*ev = append(*ev, r)
	}
	b.Store(id(1), []byte("x"))
	s.Run()
	if evictedAt != testT {
		t.Fatalf("evicted at %v, want exactly T=%v", evictedAt, testT)
	}
	if len(*ev) != 1 || (*ev)[0] != EvictIdle {
		t.Fatalf("evictions %v", *ev)
	}
	if b.Len() != 0 {
		t.Fatalf("buffer len %d after idle discard", b.Len())
	}
}

func TestRequestFeedbackExtendsBuffering(t *testing.T) {
	s := sim.New()
	b, _ := newTestBuffer(t, s, NewTwoPhase(testT, 0, 100, 0))
	var evictedAt time.Duration = -1
	b.cfg.OnEvict = func(*Entry, EvictReason) { evictedAt = s.Now() }
	b.Store(id(1), nil)
	// Requests at 10, 20, 30 ms: each re-arms the idle window, so the entry
	// becomes idle only at 30ms + T = 70ms.
	for _, at := range []time.Duration{10, 20, 30} {
		at := at * time.Millisecond
		s.At(at, func() { b.OnRequest(id(1)) })
	}
	s.Run()
	want := 30*time.Millisecond + testT
	if evictedAt != want {
		t.Fatalf("evicted at %v, want %v (last request + T)", evictedAt, want)
	}
}

func TestOnRequestUnknownID(t *testing.T) {
	s := sim.New()
	b, _ := newTestBuffer(t, s, NewTwoPhase(testT, 0, 100, 0))
	if b.OnRequest(id(99)) {
		t.Fatal("OnRequest on unknown id returned true")
	}
}

func TestDuplicateStoreIsNoOp(t *testing.T) {
	s := sim.New()
	b, _ := newTestBuffer(t, s, NewTwoPhase(testT, 0, 100, 0))
	e1 := b.Store(id(1), []byte("first"))
	s.RunUntil(10 * time.Millisecond)
	e2 := b.Store(id(1), []byte("second"))
	if e1 != e2 {
		t.Fatal("duplicate store created a new entry")
	}
	if string(e1.Payload) != "first" {
		t.Fatal("duplicate store replaced payload")
	}
	if b.Len() != 1 {
		t.Fatalf("len %d", b.Len())
	}
}

func TestPromotionWithCertainElection(t *testing.T) {
	s := sim.New()
	// C = N makes the election probability 1.
	b, _ := newTestBuffer(t, s, NewTwoPhase(testT, 100, 100, 0))
	promoted := 0
	b.cfg.OnPromote = func(e *Entry) {
		promoted++
		if e.State != StateLongTerm {
			t.Errorf("OnPromote saw state %v", e.State)
		}
		if e.PromotedAt != s.Now() {
			t.Errorf("PromotedAt %v, want %v", e.PromotedAt, s.Now())
		}
	}
	b.Store(id(1), nil)
	s.Run()
	if promoted != 1 {
		t.Fatalf("promoted %d entries", promoted)
	}
	if b.LongTermCount() != 1 || b.ShortTermCount() != 0 {
		t.Fatalf("long=%d short=%d", b.LongTermCount(), b.ShortTermCount())
	}
	if !b.Has(id(1)) {
		t.Fatal("long-term entry missing")
	}
}

func TestElectionRate(t *testing.T) {
	// Across many messages, the fraction elected should approach C/N.
	s := sim.New()
	const c, n, msgs = 6.0, 100, 20000
	b := NewBuffer(Config{
		Policy: NewTwoPhase(testT, c, n, 0),
		Sched:  s,
		Rng:    rng.New(42),
	})
	for i := uint64(0); i < msgs; i++ {
		b.Store(id(i), nil)
	}
	s.Run()
	got := float64(b.LongTermCount()) / msgs
	want := c / n
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("election rate %v, want ~%v", got, want)
	}
}

func TestLongTermTTLExpiry(t *testing.T) {
	s := sim.New()
	ttl := 500 * time.Millisecond
	b, ev := newTestBuffer(t, s, NewTwoPhase(testT, 100, 100, ttl))
	var evictedAt time.Duration
	b.cfg.OnEvict = func(_ *Entry, r EvictReason) {
		evictedAt = s.Now()
		*ev = append(*ev, r)
	}
	b.Store(id(1), nil)
	s.Run()
	if len(*ev) != 1 || (*ev)[0] != EvictTTL {
		t.Fatalf("evictions %v, want one TTL eviction", *ev)
	}
	// Promoted at T (40ms); last touch was at store (t=0)... but promotion
	// re-checks from LastRequest; entry stored at 0, idle at 40ms, TTL armed
	// there; unused since t=0 so the TTL check at 40ms+500ms evicts.
	want := testT + ttl
	if evictedAt != want {
		t.Fatalf("TTL eviction at %v, want %v", evictedAt, want)
	}
}

func TestLongTermTTLReArmedByUse(t *testing.T) {
	s := sim.New()
	ttl := 100 * time.Millisecond
	b, _ := newTestBuffer(t, s, NewTwoPhase(testT, 100, 100, ttl))
	var evictedAt time.Duration
	b.cfg.OnEvict = func(*Entry, EvictReason) { evictedAt = s.Now() }
	b.Store(id(1), nil)
	// A use at 100ms (after promotion at 40ms) must push expiry to 200ms.
	s.At(100*time.Millisecond, func() { b.OnRequest(id(1)) })
	s.Run()
	if evictedAt != 200*time.Millisecond {
		t.Fatalf("TTL eviction at %v, want 200ms", evictedAt)
	}
}

func TestStoreLongTermDirect(t *testing.T) {
	s := sim.New()
	b, _ := newTestBuffer(t, s, NewTwoPhase(testT, 0, 100, 0))
	e := b.StoreLongTerm(id(1), []byte("h"))
	if e.State != StateLongTerm {
		t.Fatalf("state %v", e.State)
	}
	if b.LongTermCount() != 1 {
		t.Fatal("long-term count wrong")
	}
	s.Run()
	// C=0 would have discarded a short-term entry; the handoff copy stays.
	if !b.Has(id(1)) {
		t.Fatal("handoff entry evicted")
	}
}

func TestStoreLongTermLiftsExisting(t *testing.T) {
	s := sim.New()
	b, _ := newTestBuffer(t, s, NewTwoPhase(testT, 0, 100, 0))
	b.Store(id(1), []byte("x"))
	e := b.StoreLongTerm(id(1), nil)
	if e.State != StateLongTerm {
		t.Fatal("existing entry not lifted to long-term")
	}
	if b.Len() != 1 {
		t.Fatalf("len %d", b.Len())
	}
}

func TestTakeForHandoff(t *testing.T) {
	s := sim.New()
	b, ev := newTestBuffer(t, s, NewTwoPhase(testT, 0, 100, 0))
	b.Store(id(1), nil)         // short-term
	b.StoreLongTerm(id(2), nil) // long-term
	b.StoreLongTerm(id(3), nil) // long-term
	got := b.TakeForHandoff()
	if len(got) != 2 {
		t.Fatalf("handoff returned %d entries, want 2 long-term", len(got))
	}
	for _, e := range got {
		if e.ID.Seq != 2 && e.ID.Seq != 3 {
			t.Fatalf("unexpected handoff entry %v", e.ID)
		}
	}
	if b.Len() != 0 {
		t.Fatalf("buffer not emptied: %d", b.Len())
	}
	handoffs, manuals := 0, 0
	for _, r := range *ev {
		switch r {
		case EvictHandoff:
			handoffs++
		case EvictManual:
			manuals++
		}
	}
	if handoffs != 2 || manuals != 1 {
		t.Fatalf("evictions %v", *ev)
	}
}

func TestRemoveExternal(t *testing.T) {
	s := sim.New()
	b, ev := newTestBuffer(t, s, BufferAll{})
	b.Store(id(1), nil)
	if !b.Remove(id(1), EvictStable) {
		t.Fatal("Remove returned false")
	}
	if b.Remove(id(1), EvictStable) {
		t.Fatal("double Remove returned true")
	}
	if len(*ev) != 1 || (*ev)[0] != EvictStable {
		t.Fatalf("evictions %v", *ev)
	}
	if b.EvictedCount(EvictStable) != 1 {
		t.Fatal("EvictedCount(EvictStable) != 1")
	}
}

func TestBufferAllNeverIdles(t *testing.T) {
	s := sim.New()
	b, ev := newTestBuffer(t, s, BufferAll{})
	b.Store(id(1), nil)
	s.RunFor(time.Hour)
	if b.Len() != 1 || len(*ev) != 0 {
		t.Fatalf("buffer-all evicted: len=%d evictions=%v", b.Len(), *ev)
	}
}

func TestFixedHoldIgnoresFeedback(t *testing.T) {
	s := sim.New()
	hold := 50 * time.Millisecond
	b, _ := newTestBuffer(t, s, &FixedHold{D: hold})
	var evictedAt time.Duration
	b.cfg.OnEvict = func(*Entry, EvictReason) { evictedAt = s.Now() }
	b.Store(id(1), nil)
	s.At(40*time.Millisecond, func() { b.OnRequest(id(1)) }) // must not extend
	s.Run()
	if evictedAt != hold {
		t.Fatalf("fixed-hold evicted at %v, want %v", evictedAt, hold)
	}
}

func TestCloseStopsTimers(t *testing.T) {
	s := sim.New()
	b, ev := newTestBuffer(t, s, NewTwoPhase(testT, 0, 100, 0))
	b.Store(id(1), nil)
	b.Close()
	s.Run()
	if len(*ev) != 0 {
		t.Fatalf("evictions after Close: %v", *ev)
	}
	if b.Len() != 0 {
		t.Fatal("entries survived Close")
	}
}

func TestOccupancyIntegral(t *testing.T) {
	s := sim.New()
	b, _ := newTestBuffer(t, s, NewTwoPhase(testT, 0, 100, 0))
	b.Store(id(1), make([]byte, 1000))
	s.Run() // evicted at 40ms
	gotMsgSec := b.OccupancyIntegral(s.Now())
	wantMsgSec := testT.Seconds() // 1 message for 40ms
	if math.Abs(gotMsgSec-wantMsgSec) > 1e-9 {
		t.Fatalf("occupancy integral %v, want %v", gotMsgSec, wantMsgSec)
	}
	gotByteSec := b.ByteOccupancyIntegral(s.Now())
	if math.Abs(gotByteSec-1000*testT.Seconds()) > 1e-6 {
		t.Fatalf("byte occupancy %v", gotByteSec)
	}
	if b.PeakLen() != 1 {
		t.Fatalf("peak %d", b.PeakLen())
	}
}

func TestEntriesSnapshot(t *testing.T) {
	s := sim.New()
	b, _ := newTestBuffer(t, s, BufferAll{})
	b.Store(id(1), nil)
	b.Store(id(2), nil)
	es := b.Entries()
	if len(es) != 2 {
		t.Fatalf("entries %d", len(es))
	}
}

func TestNewBufferValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"no policy": {Sched: sim.New()},
		"no sched":  {Policy: BufferAll{}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewBuffer did not panic", name)
				}
			}()
			NewBuffer(cfg)
		}()
	}
}

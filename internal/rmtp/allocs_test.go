package rmtp

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Allocation-regression guards for the baseline's hot paths, mirroring
// internal/netsim's: the protocol-axis sweep runs the RMTP kernel over
// every fault cell, so a quiet allocation regression here would tax the
// whole matrix. The NAK retry loop re-arms through the scheduler's pooled
// Post path with a once-bound callback, and a repair served from the
// buffer builds only value-typed messages — both must stay at zero
// steady-state allocations.

// allocServer builds a standalone repair server whose sends vanish.
func allocServer(t *testing.T) (*sim.Sim, *Node, topology.NodeID) {
	t.Helper()
	topo, err := topology.SingleRegion(4)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	server := New(Config{
		Self:          topo.MemberAt(0, 0),
		Server:        topo.MemberAt(0, 0),
		ParentServer:  topology.NoNode,
		RegionMembers: topo.Members(0),
		Send:          func(topology.NodeID, wire.Message) {},
		Sched:         s,
		Rng:           rng.New(1),
	})
	return s, server, topo.MemberAt(0, 1)
}

// TestRepairServeAllocs guards the NAK → buffer hit → repair path.
func TestRepairServeAllocs(t *testing.T) {
	_, server, peer := allocServer(t)
	id := wire.MessageID{Source: server.cfg.Self, Seq: 1}
	server.deliver(id, make([]byte, 256))
	nak := wire.Message{Type: wire.TypeNak, From: peer, ID: id}
	for i := 0; i < 64; i++ { // warm metric and map internals
		server.Receive(peer, nak)
	}
	avg := testing.AllocsPerRun(200, func() {
		server.Receive(peer, nak)
	})
	if avg != 0 {
		t.Fatalf("served repair allocates %.2f objects/op, want 0", avg)
	}
}

// TestNakRetryAllocs guards the receiver's retry loop: after the episode
// starts, every re-arm (send + pooled Post) must allocate nothing, however
// many times it fires.
func TestNakRetryAllocs(t *testing.T) {
	topo, err := topology.SingleRegion(4)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	params := DefaultParams()
	params.MaxTries = 1 << 30 // never give up inside the measurement
	receiver := New(Config{
		Self:          topo.MemberAt(0, 1),
		Server:        topo.MemberAt(0, 0),
		ParentServer:  topology.NoNode,
		RegionMembers: topo.Members(0),
		Send:          func(topology.NodeID, wire.Message) {},
		Sched:         s,
		Rng:           rng.New(2),
		Params:        params,
	})
	// A session announces seq 1 that never arrives: the retry loop runs
	// forever against the void.
	receiver.Receive(topo.MemberAt(0, 0), wire.Message{
		Type: wire.TypeSession, From: topo.Sender(), TopSeq: 1,
	})
	step := params.NakRTT
	for i := 0; i < 64; i++ { // warm the event pool
		s.RunFor(step)
	}
	avg := testing.AllocsPerRun(200, func() {
		s.RunFor(step) // fires exactly one retry re-arm
	})
	if avg != 0 {
		t.Fatalf("NAK retry re-arm allocates %.2f objects/op, want 0", avg)
	}
	if receiver.Metrics().NaksSent.Value() < 200 {
		t.Fatalf("measurement fired only %d retries; loop died", receiver.Metrics().NaksSent.Value())
	}
}

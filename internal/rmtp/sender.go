package rmtp

import (
	"repro/internal/clock"
	"repro/internal/wire"
)

// Sender publishes data through the tree protocol. It wraps the root
// repair server (the sender and root server coincide, as in RMTP).
type Sender struct {
	n            *Node
	broadcast    Broadcast
	seq          uint64
	sessionTimer clock.Timer
}

// NewSender wraps the root server node. It panics if the node is not a
// repair server (the tree's root must buffer everything it sends).
func NewSender(n *Node, b Broadcast) *Sender {
	if !n.isServer {
		panic("rmtp: sender must be a repair server")
	}
	if b == nil {
		panic("rmtp: Broadcast is required")
	}
	return &Sender{n: n, broadcast: b}
}

// Seq returns the highest published sequence number.
func (s *Sender) Seq() uint64 { return s.seq }

// Publish multicasts one message to the group and stores it in the root
// server's buffer.
func (s *Sender) Publish(payload []byte) wire.MessageID {
	s.seq++
	id := wire.MessageID{Source: s.n.cfg.Self, Seq: s.seq}
	s.n.deliver(id, payload)
	s.broadcast(wire.Message{Type: wire.TypeData, From: s.n.cfg.Self, ID: id, Payload: payload})
	return id
}

// StartSessions begins periodic session messages. Idempotent.
func (s *Sender) StartSessions() {
	if s.sessionTimer != nil {
		return
	}
	var tick func()
	tick = func() {
		s.broadcast(wire.Message{Type: wire.TypeSession, From: s.n.cfg.Self, TopSeq: s.seq})
		s.sessionTimer = s.n.cfg.Sched.After(s.n.params.SessionInterval, tick)
	}
	s.sessionTimer = s.n.cfg.Sched.After(s.n.params.SessionInterval, tick)
}

// StopSessions cancels the session loop.
func (s *Sender) StopSessions() {
	if s.sessionTimer != nil {
		s.sessionTimer.Stop()
		s.sessionTimer = nil
	}
}

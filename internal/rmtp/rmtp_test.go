package rmtp

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// treeCluster wires an RMTP deployment: the first member of each region is
// its repair server; the root region's server is the sender.
type treeCluster struct {
	sim    *sim.Sim
	net    *netsim.Network
	topo   *topology.Topology
	nodes  map[topology.NodeID]*Node
	sender *Sender
	all    []topology.NodeID
}

func newTreeCluster(t *testing.T, topo *topology.Topology, params Params, seed uint64, loss netsim.LossModel) *treeCluster {
	t.Helper()
	s := sim.New()
	lat := netsim.HierLatency{Topo: topo, IntraOneWay: 5 * time.Millisecond, InterOneWay: 50 * time.Millisecond}
	net := netsim.New(s, lat, loss)
	root := rng.New(seed)
	c := &treeCluster{sim: s, net: net, topo: topo, nodes: make(map[topology.NodeID]*Node)}

	serverOf := func(r topology.RegionID) topology.NodeID { return topo.MemberAt(r, 0) }
	childServers := make(map[topology.RegionID][]topology.NodeID)
	for r := 0; r < topo.NumRegions(); r++ {
		if p := topo.Parent(topology.RegionID(r)); p != topology.NoRegion {
			childServers[p] = append(childServers[p], serverOf(topology.RegionID(r)))
		}
	}
	for r := 0; r < topo.NumRegions(); r++ {
		rid := topology.RegionID(r)
		parentServer := topology.NoNode
		if p := topo.Parent(rid); p != topology.NoRegion {
			parentServer = serverOf(p)
		}
		for _, node := range topo.Members(rid) {
			node := node
			n := New(Config{
				Self:          node,
				Server:        serverOf(rid),
				ParentServer:  parentServer,
				RegionMembers: topo.Members(rid),
				ChildServers:  childServers[rid],
				Send:          func(to topology.NodeID, msg wire.Message) { net.Unicast(node, to, msg) },
				Sched:         s,
				Rng:           root.Split(uint64(node) + 1),
				Params:        params,
			})
			c.nodes[node] = n
			c.all = append(c.all, node)
			net.Register(node, func(p netsim.Packet) { n.Receive(p.From, p.Msg) })
		}
	}
	rootNode := c.nodes[serverOf(0)]
	c.sender = NewSender(rootNode, func(msg wire.Message) { net.Multicast(topo.Sender(), c.all, msg) })
	return c
}

func (c *treeCluster) receivedCount(seq uint64) int {
	n := 0
	for _, node := range c.nodes {
		if node.HasReceived(seq) {
			n++
		}
	}
	return n
}

func TestTreeLosslessDelivery(t *testing.T) {
	topo, err := topology.Chain(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	c := newTreeCluster(t, topo, DefaultParams(), 1, nil)
	for i := 0; i < 3; i++ {
		c.sender.Publish([]byte{byte(i)})
	}
	c.sim.RunUntil(time.Second)
	for seq := uint64(1); seq <= 3; seq++ {
		if got := c.receivedCount(seq); got != 10 {
			t.Fatalf("seq %d delivered to %d/10", seq, got)
		}
	}
	var naks int64
	for _, n := range c.nodes {
		naks += n.Metrics().NaksSent.Value()
	}
	if naks != 0 {
		t.Fatalf("%d NAKs on a lossless network", naks)
	}
}

func TestTreeLocalRepair(t *testing.T) {
	topo, err := topology.SingleRegion(10)
	if err != nil {
		t.Fatal(err)
	}
	victim := topo.MemberAt(0, 4)
	loss := &victimLoss{victim: victim}
	c := newTreeCluster(t, topo, DefaultParams(), 2, loss)
	c.sender.StartSessions()
	c.sender.Publish([]byte("a"))
	c.sender.Publish([]byte("b"))
	c.sim.RunUntil(2 * time.Second)
	if !c.nodes[victim].HasReceived(1) || !c.nodes[victim].HasReceived(2) {
		t.Fatal("victim did not recover from the repair server")
	}
	server := c.nodes[topo.MemberAt(0, 0)]
	if server.Metrics().RepairsSent.Value() == 0 {
		t.Fatal("repair server sent no repairs")
	}
	if c.nodes[victim].Metrics().NaksSent.Value() == 0 {
		t.Fatal("victim sent no NAKs")
	}
}

// victimLoss drops DATA to one node.
type victimLoss struct{ victim topology.NodeID }

func (v *victimLoss) Drop(_, to topology.NodeID, t wire.Type) bool {
	return t == wire.TypeData && to == v.victim
}

// regionDataLoss drops DATA to every member of a victim set.
type regionDataLoss struct{ victims map[topology.NodeID]bool }

func (r *regionDataLoss) Drop(_, to topology.NodeID, t wire.Type) bool {
	return t == wire.TypeData && r.victims[to]
}

func TestTreeHierarchicalRepair(t *testing.T) {
	// The entire leaf region (including its repair server) misses the
	// message; the leaf server must escalate to the root server.
	topo, err := topology.Chain(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	victims := make(map[topology.NodeID]bool)
	for _, n := range topo.Members(1) {
		victims[n] = true
	}
	c := newTreeCluster(t, topo, DefaultParams(), 3, &regionDataLoss{victims: victims})
	c.sender.StartSessions()
	c.sender.Publish([]byte("x"))
	c.sim.RunUntil(3 * time.Second)
	for _, n := range topo.Members(1) {
		if !c.nodes[n].HasReceived(1) {
			t.Fatalf("leaf member %d never recovered", n)
		}
	}
	leafServer := c.nodes[topo.MemberAt(1, 0)]
	if leafServer.Metrics().NaksSent.Value() == 0 {
		t.Fatal("leaf server never escalated to the root server")
	}
}

func TestAckTrimsServerBuffer(t *testing.T) {
	topo, err := topology.SingleRegion(6)
	if err != nil {
		t.Fatal(err)
	}
	c := newTreeCluster(t, topo, DefaultParams(), 4, nil)
	for _, n := range c.nodes {
		n.StartAcks()
	}
	for i := 0; i < 10; i++ {
		c.sender.Publish([]byte{byte(i)})
	}
	server := c.nodes[topo.MemberAt(0, 0)]
	c.sim.RunUntil(200 * time.Millisecond) // before most trimming
	c.sim.RunUntil(2 * time.Second)
	if got := server.Buffer().Len(); got != 0 {
		t.Fatalf("server still buffers %d messages after full ACKs", got)
	}
	if server.Buffer().EvictedCount(0) != 0 {
		t.Fatal("unexpected zero-reason evictions")
	}
}

func TestServerKeepsBufferUntilChildAcks(t *testing.T) {
	// Root server must not trim while the child region's server lags.
	topo, err := topology.Chain(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	victims := make(map[topology.NodeID]bool)
	for _, n := range topo.Members(1) {
		victims[n] = true
	}
	// Drop DATA to the entire child region AND suppress its recovery by
	// not starting sessions: the root server's buffer must retain
	// everything because the child server never acks.
	c := newTreeCluster(t, topo, DefaultParams(), 5, &regionDataLoss{victims: victims})
	for _, n := range c.nodes {
		n.StartAcks()
	}
	for i := 0; i < 5; i++ {
		c.sender.Publish([]byte{byte(i)})
	}
	c.sim.RunUntil(2 * time.Second)
	rootServer := c.nodes[topo.MemberAt(0, 0)]
	if got := rootServer.Buffer().Len(); got != 5 {
		t.Fatalf("root server trimmed to %d entries while the child region lags", got)
	}
}

func TestLoadConcentratesAtServer(t *testing.T) {
	// The defining contrast with RRMP (§1): the repair server carries the
	// whole buffering load.
	topo, err := topology.SingleRegion(20)
	if err != nil {
		t.Fatal(err)
	}
	c := newTreeCluster(t, topo, DefaultParams(), 6, nil)
	for i := 0; i < 50; i++ {
		c.sender.Publish([]byte{byte(i)})
	}
	c.sim.RunUntil(time.Second)
	server := c.nodes[topo.MemberAt(0, 0)]
	if got := server.Buffer().PeakLen(); got != 50 {
		t.Fatalf("server peak buffer %d, want 50", got)
	}
	for _, n := range topo.Members(0)[1:] {
		if c.nodes[n].Buffer() != nil {
			t.Fatalf("receiver %d owns a buffer", n)
		}
	}
}

func TestStaleNakForTrimmedMessage(t *testing.T) {
	topo, err := topology.SingleRegion(4)
	if err != nil {
		t.Fatal(err)
	}
	c := newTreeCluster(t, topo, DefaultParams(), 7, nil)
	for _, n := range c.nodes {
		n.StartAcks()
	}
	c.sender.Publish([]byte("x"))
	c.sim.RunUntil(time.Second) // fully acked and trimmed
	server := c.nodes[topo.MemberAt(0, 0)]
	if server.Buffer().Len() != 0 {
		t.Fatal("setup: buffer not trimmed")
	}
	// A stale NAK for the trimmed message must be ignored, not crash or
	// escalate.
	before := server.Metrics().NaksSent.Value()
	c.net.Unicast(topo.MemberAt(0, 2), topo.MemberAt(0, 0), wire.Message{
		Type: wire.TypeNak, From: topo.MemberAt(0, 2), ID: wire.MessageID{Source: topo.Sender(), Seq: 1},
	})
	c.sim.RunUntil(2 * time.Second)
	if got := server.Metrics().NaksSent.Value(); got != before {
		t.Fatal("stale NAK caused escalation")
	}
}

func TestGiveUpAtRootForUnknownSeq(t *testing.T) {
	topo, err := topology.SingleRegion(3)
	if err != nil {
		t.Fatal(err)
	}
	c := newTreeCluster(t, topo, DefaultParams(), 8, nil)
	server := c.nodes[topo.MemberAt(0, 0)]
	// Root server told about a sequence that will never arrive.
	server.Receive(topo.MemberAt(0, 1), wire.Message{
		Type: wire.TypeSession, From: topo.Sender(), TopSeq: 3,
	})
	c.sim.MustQuiesce(100_000)
	if server.Metrics().GiveUps.Value() == 0 {
		t.Fatal("root server did not give up on unrecoverable sequences")
	}
}

func TestSenderValidation(t *testing.T) {
	topo, _ := topology.SingleRegion(2)
	s := sim.New()
	net := netsim.New(s, netsim.UniformLatency{}, nil)
	receiver := New(Config{
		Self:          topo.MemberAt(0, 1),
		Server:        topo.MemberAt(0, 0),
		ParentServer:  topology.NoNode,
		RegionMembers: topo.Members(0),
		Send:          func(to topology.NodeID, msg wire.Message) { net.Unicast(1, to, msg) },
		Sched:         s,
		Rng:           rng.New(1),
	})
	defer func() {
		if recover() == nil {
			t.Fatal("NewSender on a receiver did not panic")
		}
	}()
	NewSender(receiver, func(wire.Message) {})
}

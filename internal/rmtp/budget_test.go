package rmtp

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// TestCopyOnStorePinsServerPayloadImmutability pins the payload-aliasing
// invariant on the baseline's side (the same property test the RRMP
// cluster has in internal/rrmp/budget_test.go): the sender broadcasts one
// payload slice that the repair server's buffer entry aliases, so an
// application reusing its publish buffer would corrupt the only repair
// copy in the region — unless Params.CopyOnStore snapshots the bytes at
// store time. Both sides of the knob are asserted, so the zero-copy
// default's hazard stays documented by a failing test.
func TestCopyOnStorePinsServerPayloadImmutability(t *testing.T) {
	for _, copyOn := range []bool{true, false} {
		topo, err := topology.SingleRegion(5)
		if err != nil {
			t.Fatal(err)
		}
		params := DefaultParams()
		params.CopyOnStore = copyOn
		c := newTreeCluster(t, topo, params, 21, nil)
		// No ACK loops: nothing trims, so every entry survives for the
		// post-run check.
		var published [][]byte
		var ids []wire.MessageID
		for i := 0; i < 4; i++ {
			i := i
			c.sim.At(time.Duration(i)*10*time.Millisecond, func() {
				payload := bytes.Repeat([]byte{byte(i + 1)}, 32)
				published = append(published, payload)
				ids = append(ids, c.sender.Publish(payload))
			})
		}
		c.sim.RunUntil(500 * time.Millisecond)

		// The application "reuses" its buffers after the run quiesces.
		for _, p := range published {
			for j := range p {
				p[j] = 0xee
			}
		}
		server := c.nodes[topo.MemberAt(0, 0)]
		for i, id := range ids {
			e, ok := server.Buffer().Get(id)
			if !ok {
				t.Fatalf("copy=%v: server no longer buffers %v", copyOn, id)
			}
			want := byte(i + 1)
			if !copyOn {
				want = 0xee // zero-copy entries alias the mutated slice
			}
			if e.Payload[0] != want {
				t.Fatalf("copy=%v: server entry %v holds %#x, want %#x",
					copyOn, id, e.Payload[0], want)
			}
		}
	}
}

// TestBudgetedServerRefetchesDisplacedEntry exercises the byte-budget path
// end to end: a leaf repair server whose budget holds only two payloads
// displaces the oldest message under pressure; when a straggler then NAKs
// for the displaced sequence, the server must re-fetch it from its parent
// server and serve the waiter — a budget may cost an extra round trip,
// never the message.
func TestBudgetedServerRefetchesDisplacedEntry(t *testing.T) {
	topo, err := topology.Chain(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	lat := netsim.HierLatency{Topo: topo, IntraOneWay: 5 * time.Millisecond, InterOneWay: 50 * time.Millisecond}
	victim := topo.MemberAt(1, 2)
	net := netsim.New(s, lat, &victimLoss{victim: victim})
	root := rng.New(31)

	// Hand-built cluster so only the leaf server is budgeted: the root
	// keeps everything and can answer refetches.
	serverOf := func(r topology.RegionID) topology.NodeID { return topo.MemberAt(r, 0) }
	nodes := make(map[topology.NodeID]*Node)
	var all []topology.NodeID
	for r := 0; r < topo.NumRegions(); r++ {
		rid := topology.RegionID(r)
		parentServer := topology.NoNode
		if p := topo.Parent(rid); p != topology.NoRegion {
			parentServer = serverOf(p)
		}
		var childServers []topology.NodeID
		if rid == 0 {
			childServers = []topology.NodeID{serverOf(1)}
		}
		for _, node := range topo.Members(rid) {
			node := node
			params := DefaultParams()
			if node == serverOf(1) {
				params.ByteBudget = 2 * 512 // room for two of five payloads
			}
			n := New(Config{
				Self:          node,
				Server:        serverOf(rid),
				ParentServer:  parentServer,
				RegionMembers: topo.Members(rid),
				ChildServers:  childServers,
				Send:          func(to topology.NodeID, msg wire.Message) { net.Unicast(node, to, msg) },
				Sched:         s,
				Rng:           root.Split(uint64(node) + 1),
				Params:        params,
			})
			nodes[node] = n
			all = append(all, node)
			net.Register(node, func(p netsim.Packet) { n.Receive(p.From, p.Msg) })
		}
	}
	sender := NewSender(nodes[serverOf(0)], func(msg wire.Message) { net.Multicast(topo.Sender(), all, msg) })

	// Publish five 512 B messages back to back; the leaf server keeps only
	// the newest two. No sessions yet, so the victim stays ignorant.
	for i := 0; i < 5; i++ {
		sender.Publish(make([]byte, 512))
	}
	s.RunUntil(time.Second)
	leafServer := nodes[serverOf(1)]
	if got := leafServer.Buffer().EvictedCount(core.EvictPressure); got != 3 {
		t.Fatalf("leaf server pressure-evicted %d entries, want 3", got)
	}
	if !leafServer.HasReceived(1) || leafServer.Buffer().Has(wire.MessageID{Source: topo.Sender(), Seq: 1}) {
		t.Fatal("setup: seq 1 should be received-but-displaced at the leaf server")
	}

	// The straggler now learns about the stream and NAKs its server.
	sender.StartSessions()
	s.RunUntil(3 * time.Second)
	for seq := uint64(1); seq <= 5; seq++ {
		if !nodes[victim].HasReceived(seq) {
			t.Fatalf("victim still missing seq %d: displaced entry was not re-fetched", seq)
		}
	}
	if leafServer.Metrics().NaksSent.Value() == 0 {
		t.Fatal("leaf server never escalated a refetch to the root server")
	}
	if got := nodes[victim].Metrics().Unrecoverable.Value(); got != 0 {
		t.Fatalf("victim counted %d unrecoverable losses on a recoverable budget miss", got)
	}
}

// TestRefetchReArmsAfterExhaustion pins the budget × fault interaction: a
// refetch loop that exhausts its retry budget while the parent server is
// down dies, but the waiter record survives — so the waiter's next NAK
// must re-arm the refetch once the parent is back, not fall into the
// duplicate-waiter early return forever. Without the re-arm, a message
// the root still buffers would stay permanently lost to the receiver.
func TestRefetchReArmsAfterExhaustion(t *testing.T) {
	topo, err := topology.Chain(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	lat := netsim.HierLatency{Topo: topo, IntraOneWay: 5 * time.Millisecond, InterOneWay: 50 * time.Millisecond}
	victim := topo.MemberAt(1, 2)
	net := netsim.New(s, lat, &victimLoss{victim: victim})
	root := rng.New(41)

	serverOf := func(r topology.RegionID) topology.NodeID { return topo.MemberAt(r, 0) }
	nodes := make(map[topology.NodeID]*Node)
	var all []topology.NodeID
	for r := 0; r < topo.NumRegions(); r++ {
		rid := topology.RegionID(r)
		parentServer := topology.NoNode
		if p := topo.Parent(rid); p != topology.NoRegion {
			parentServer = serverOf(p)
		}
		var childServers []topology.NodeID
		if rid == 0 {
			childServers = []topology.NodeID{serverOf(1)}
		}
		for _, node := range topo.Members(rid) {
			node := node
			params := DefaultParams()
			params.MaxTries = 4 // exhaust fast so the outage outlives the loop
			if node == serverOf(1) {
				params.ByteBudget = 2 * 512
			}
			n := New(Config{
				Self:          node,
				Server:        serverOf(rid),
				ParentServer:  parentServer,
				RegionMembers: topo.Members(rid),
				ChildServers:  childServers,
				Send:          func(to topology.NodeID, msg wire.Message) { net.Unicast(node, to, msg) },
				Sched:         s,
				Rng:           root.Split(uint64(node) + 1),
				Params:        params,
			})
			nodes[node] = n
			all = append(all, node)
			net.Register(node, func(p netsim.Packet) { n.Receive(p.From, p.Msg) })
		}
	}
	rootServer := nodes[serverOf(0)]
	sender := NewSender(rootServer, func(msg wire.Message) { net.Multicast(topo.Sender(), all, msg) })

	// Displace seq 1 at the leaf server, then take the root down before
	// the straggler's NAKs can be escalated successfully.
	for i := 0; i < 5; i++ {
		sender.Publish(make([]byte, 512))
	}
	s.RunUntil(200 * time.Millisecond)
	s.At(200*time.Millisecond, func() {
		rootServer.Crash()
		net.SetDown(topo.Sender(), true)
	})
	// The straggler learns of the stream from a hand-delivered session
	// (the crashed sender is silent) and NAKs into the outage: the leaf
	// server's refetch loop exhausts against the dead root.
	s.At(210*time.Millisecond, func() {
		nodes[victim].Receive(serverOf(1), wire.Message{Type: wire.TypeSession, From: topo.Sender(), TopSeq: 5})
	})
	s.RunUntil(2 * time.Second)
	if nodes[victim].HasReceived(1) {
		t.Fatal("setup: victim recovered seq 1 through a dead root")
	}
	// Root comes back and resumes sessions; the victim's session-driven
	// retries must re-arm the leaf server's dead refetch loop.
	s.At(2*time.Second, func() {
		net.SetDown(topo.Sender(), false)
		rootServer.Recover()
		sender.StartSessions()
	})
	s.RunUntil(10 * time.Second)
	for seq := uint64(1); seq <= 5; seq++ {
		if !nodes[victim].HasReceived(seq) {
			t.Fatalf("victim still missing seq %d after the root recovered", seq)
		}
	}
	if got := nodes[victim].Metrics().Unrecoverable.Value(); got != 0 {
		t.Fatalf("victim still counts %d unrecoverable after full recovery", got)
	}
}

// Package rmtp implements a tree-based reliable multicast baseline in the
// style of RMTP (Paul et al., reference [12]): each region designates a
// repair server that buffers every message and answers NAKs from its
// region; repair servers recover from their parent region's server, and
// ACK windows propagate up the tree to let servers trim their buffers.
//
// The paper contrasts RRMP's diffused buffering with exactly this design:
// "a repair server bears the entire burden of buffering messages for a
// local region" (§1, §6). Ablation A2 runs both protocols on the same
// workload and compares per-member buffer load.
package rmtp

import (
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Send transmits a PDU to a peer; bind it to the network.
type Send func(to topology.NodeID, msg wire.Message)

// Broadcast transmits the initial multicast to the whole group.
type Broadcast func(msg wire.Message)

// Params tunes the baseline protocol.
type Params struct {
	// NakRTT is the retry period for NAKs to the local repair server.
	NakRTT time.Duration
	// ParentRTT is the retry period for server-to-parent-server NAKs.
	ParentRTT time.Duration
	// AckInterval is the period of receiver->server ACK windows.
	AckInterval time.Duration
	// SessionInterval is the sender's session-message period.
	SessionInterval time.Duration
	// MaxTries bounds NAK retries (give-ups are counted).
	MaxTries int
	// StartSeq is the reliability baseline, as in rrmp.Params.
	StartSeq uint64
}

// DefaultParams mirrors the RRMP defaults for fair comparison.
func DefaultParams() Params {
	return Params{
		NakRTT:          10*time.Millisecond + 500*time.Microsecond,
		ParentRTT:       100*time.Millisecond + 500*time.Microsecond,
		AckInterval:     100 * time.Millisecond,
		SessionInterval: 100 * time.Millisecond,
		MaxTries:        64,
	}
}

// Config assembles a node.
type Config struct {
	// Self is this node's id.
	Self topology.NodeID
	// Server is the repair server of this node's region. A node whose
	// Server equals Self is the repair server.
	Server topology.NodeID
	// ParentServer is the repair server of the parent region
	// (topology.NoNode at the root).
	ParentServer topology.NodeID
	// RegionMembers lists this region's members including Self; the repair
	// server tracks ACK floors for all of them.
	RegionMembers []topology.NodeID
	// ChildServers lists the repair servers of child regions; their ACKs
	// also gate buffer trimming (a child region may still need repairs).
	ChildServers []topology.NodeID
	// Send, Sched, Rng are required.
	Send  Send
	Sched clock.Scheduler
	Rng   *rng.Source
	// Params tunes timers; zero fields default.
	Params Params
	// OnDeliver observes distinct deliveries.
	OnDeliver func(id wire.MessageID, at time.Duration)
}

// Metrics tallies one node's protocol activity.
type Metrics struct {
	Delivered   stats.Counter
	Duplicates  stats.Counter
	NaksSent    stats.Counter
	NaksRecv    stats.Counter
	RepairsSent stats.Counter
	RepairsRecv stats.Counter
	AcksSent    stats.Counter
	AcksRecv    stats.Counter
	GiveUps     stats.Counter
}

// nakState is one in-flight NAK retry loop.
type nakState struct {
	tries int
	timer clock.Timer
}

// Node is one RMTP participant (receiver or repair server). Not safe for
// concurrent use.
type Node struct {
	cfg    Config
	params Params

	isServer bool
	buffer   *core.Buffer // repair servers only

	received map[uint64]bool
	maxSeen  uint64
	prefix   uint64
	source   topology.NodeID // learned from the first DATA/SESSION

	naks      map[uint64]*nakState
	waiters   map[uint64][]topology.NodeID
	ackFloors map[topology.NodeID]uint64
	ackTimer  clock.Timer
	trimmed   uint64 // highest seq removed from the server buffer

	metrics Metrics
}

// New constructs a node. Repair servers get a BufferAll store trimmed by
// the ACK protocol; plain receivers buffer nothing (they never retransmit).
func New(cfg Config) *Node {
	if cfg.Send == nil || cfg.Sched == nil || cfg.Rng == nil {
		panic("rmtp: Send, Sched and Rng are required")
	}
	p := cfg.Params
	d := DefaultParams()
	if p.NakRTT <= 0 {
		p.NakRTT = d.NakRTT
	}
	if p.ParentRTT <= 0 {
		p.ParentRTT = d.ParentRTT
	}
	if p.AckInterval <= 0 {
		p.AckInterval = d.AckInterval
	}
	if p.SessionInterval <= 0 {
		p.SessionInterval = d.SessionInterval
	}
	if p.MaxTries <= 0 {
		p.MaxTries = d.MaxTries
	}
	n := &Node{
		cfg:       cfg,
		params:    p,
		isServer:  cfg.Self == cfg.Server,
		received:  make(map[uint64]bool),
		maxSeen:   p.StartSeq,
		prefix:    p.StartSeq,
		source:    topology.NoNode,
		naks:      make(map[uint64]*nakState),
		waiters:   make(map[uint64][]topology.NodeID),
		ackFloors: make(map[topology.NodeID]uint64),
		trimmed:   p.StartSeq,
	}
	if n.isServer {
		n.buffer = core.NewBuffer(core.Config{Policy: core.BufferAll{}, Sched: cfg.Sched, Rng: cfg.Rng})
		for _, m := range cfg.RegionMembers {
			if m != cfg.Self {
				n.ackFloors[m] = p.StartSeq
			}
		}
		for _, c := range cfg.ChildServers {
			n.ackFloors[c] = p.StartSeq
		}
	}
	return n
}

// Metrics returns the node's live metrics.
func (n *Node) Metrics() *Metrics { return &n.metrics }

// Buffer returns the repair server's buffer (nil for plain receivers).
func (n *Node) Buffer() *core.Buffer { return n.buffer }

// IsServer reports whether this node is its region's repair server.
func (n *Node) IsServer() bool { return n.isServer }

// HasReceived reports whether seq has been delivered to this node.
func (n *Node) HasReceived(seq uint64) bool { return n.received[seq] }

// Prefix returns the contiguous received prefix.
func (n *Node) Prefix() uint64 { return n.prefix }

// StartAcks begins the periodic ACK-window loop (receivers report to their
// region server; servers report the aggregated floor to their parent).
func (n *Node) StartAcks() {
	if n.ackTimer != nil {
		return
	}
	var tick func()
	tick = func() {
		n.sendAck()
		n.ackTimer = n.cfg.Sched.After(n.params.AckInterval, tick)
	}
	jitter := time.Duration(n.cfg.Rng.Jitter(float64(n.params.AckInterval), 0.2))
	n.ackTimer = n.cfg.Sched.After(jitter, tick)
}

// StopAcks halts the ACK loop.
func (n *Node) StopAcks() {
	if n.ackTimer != nil {
		n.ackTimer.Stop()
		n.ackTimer = nil
	}
}

// sendAck reports this node's floor upward: receivers to their server,
// servers to their parent server (hierarchical aggregation).
func (n *Node) sendAck() {
	floor := n.prefix
	var to topology.NodeID
	switch {
	case !n.isServer:
		to = n.cfg.Server
	case n.cfg.ParentServer != topology.NoNode:
		// A server acks the minimum of its own prefix and its region's
		// floors: the parent may trim only what this whole subtree has.
		floor = n.aggregateFloor()
		to = n.cfg.ParentServer
	default:
		return // root server acks nobody
	}
	n.metrics.AcksSent.Inc()
	n.cfg.Send(to, wire.Message{Type: wire.TypeAck, From: n.cfg.Self, TopSeq: floor})
}

func (n *Node) aggregateFloor() uint64 {
	floor := n.prefix
	for _, f := range n.ackFloors {
		if f < floor {
			floor = f
		}
	}
	return floor
}

// Receive dispatches one incoming PDU.
func (n *Node) Receive(from topology.NodeID, msg wire.Message) {
	switch msg.Type {
	case wire.TypeData, wire.TypeRepair:
		if msg.Type == wire.TypeRepair {
			n.metrics.RepairsRecv.Inc()
		}
		n.deliver(msg.ID, msg.Payload)
	case wire.TypeSession:
		n.noteTop(msg.From, msg.TopSeq)
	case wire.TypeNak:
		n.onNak(from, msg)
	case wire.TypeAck:
		n.onAck(from, msg)
	default:
		// Other PDUs belong to RRMP; the baseline ignores them.
	}
}

// deliver records a message, serves waiters (servers), and advances gap
// detection.
func (n *Node) deliver(id wire.MessageID, payload []byte) {
	if n.source == topology.NoNode {
		n.source = id.Source
	}
	if n.received[id.Seq] {
		n.metrics.Duplicates.Inc()
		return
	}
	n.received[id.Seq] = true
	n.metrics.Delivered.Inc()
	for n.received[n.prefix+1] {
		n.prefix++
	}
	if st, ok := n.naks[id.Seq]; ok {
		if st.timer != nil {
			st.timer.Stop()
		}
		delete(n.naks, id.Seq)
	}
	if n.isServer && id.Seq > n.trimmed {
		n.buffer.Store(id, payload)
		if ws := n.waiters[id.Seq]; len(ws) > 0 {
			delete(n.waiters, id.Seq)
			for _, w := range ws {
				n.sendRepair(w, id, payload)
			}
		}
	}
	if n.cfg.OnDeliver != nil {
		n.cfg.OnDeliver(id, n.cfg.Sched.Now())
	}
	n.noteTop(id.Source, id.Seq)
}

// noteTop advances loss detection to top and NAKs every gap.
func (n *Node) noteTop(src topology.NodeID, top uint64) {
	if n.source == topology.NoNode {
		n.source = src
	}
	if top <= n.maxSeen {
		return
	}
	for seq := n.maxSeen + 1; seq <= top; seq++ {
		if !n.received[seq] {
			n.startNak(seq)
		}
	}
	n.maxSeen = top
}

// startNak begins the retry loop for one missing sequence.
func (n *Node) startNak(seq uint64) {
	if _, ok := n.naks[seq]; ok || n.received[seq] {
		return
	}
	st := &nakState{}
	n.naks[seq] = st
	n.nakAttempt(seq, st)
}

func (n *Node) nakAttempt(seq uint64, st *nakState) {
	if n.naks[seq] != st || n.received[seq] {
		return
	}
	var to topology.NodeID
	var rtt time.Duration
	switch {
	case !n.isServer:
		to, rtt = n.cfg.Server, n.params.NakRTT
	case n.cfg.ParentServer != topology.NoNode:
		to, rtt = n.cfg.ParentServer, n.params.ParentRTT
	default:
		// Root server missing a message: with the sender as root there is
		// nobody to ask; give up (the sender cannot lose its own data).
		delete(n.naks, seq)
		n.metrics.GiveUps.Inc()
		return
	}
	if st.tries >= n.params.MaxTries {
		n.metrics.GiveUps.Inc()
		delete(n.naks, seq)
		return
	}
	st.tries++
	n.metrics.NaksSent.Inc()
	n.cfg.Send(to, wire.Message{
		Type: wire.TypeNak,
		From: n.cfg.Self,
		ID:   wire.MessageID{Source: n.source, Seq: seq},
	})
	st.timer = n.cfg.Sched.After(rtt, func() { n.nakAttempt(seq, st) })
}

// onNak answers from the buffer or records a waiter and escalates.
func (n *Node) onNak(from topology.NodeID, msg wire.Message) {
	n.metrics.NaksRecv.Inc()
	if !n.isServer {
		return // receivers never retransmit in a tree protocol
	}
	seq := msg.ID.Seq
	if e, ok := n.buffer.Get(msg.ID); ok {
		n.sendRepair(from, msg.ID, e.Payload)
		return
	}
	if n.received[seq] {
		// Received but already trimmed below the ACK floor: the requester
		// acked it earlier (or is a stale duplicate NAK); nothing to do.
		return
	}
	// Not received yet: remember the requester and escalate upward.
	for _, w := range n.waiters[seq] {
		if w == from {
			return
		}
	}
	n.waiters[seq] = append(n.waiters[seq], from)
	n.noteTop(msg.ID.Source, seq)
	n.startNak(seq)
}

func (n *Node) sendRepair(to topology.NodeID, id wire.MessageID, payload []byte) {
	n.metrics.RepairsSent.Inc()
	n.cfg.Send(to, wire.Message{Type: wire.TypeRepair, From: n.cfg.Self, ID: id, Payload: payload})
}

// onAck merges a floor report and trims the buffer up to the region-wide
// minimum.
func (n *Node) onAck(from topology.NodeID, msg wire.Message) {
	n.metrics.AcksRecv.Inc()
	if !n.isServer {
		return
	}
	if _, tracked := n.ackFloors[from]; !tracked {
		return // not one of ours
	}
	if msg.TopSeq > n.ackFloors[from] {
		n.ackFloors[from] = msg.TopSeq
	}
	n.trim()
}

// trim discards buffered messages fully acknowledged by the region and all
// child subtrees.
func (n *Node) trim() {
	floor := n.aggregateFloor()
	for seq := n.trimmed + 1; seq <= floor; seq++ {
		n.buffer.Remove(wire.MessageID{Source: n.source, Seq: seq}, core.EvictStable)
		n.trimmed = seq
	}
}

// Package rmtp implements a tree-based reliable multicast baseline in the
// style of RMTP (Paul et al., reference [12]): each region designates a
// repair server that buffers every message and answers NAKs from its
// region; repair servers recover from their parent region's server, and
// ACK windows propagate up the tree to let servers trim their buffers.
//
// The paper contrasts RRMP's diffused buffering with exactly this design:
// "a repair server bears the entire burden of buffering messages for a
// local region" (§1, §6). Ablation A2 and the sweep protocol axis
// (exp.Scenario.Protocol = "rmtp") run both protocols on the same
// workload and compare per-member buffer load.
//
// Fault semantics (DESIGN.md "RMTP baseline semantics"): a crashed repair
// server orphans its region — receivers keep NAKing a corpse, exhaust
// their retry budgets and count the loss in Metrics.Unrecoverable — until
// the server recovers, upon which session messages restart the stalled
// NAK loops. Loss is always explicit, never silent: at any instant, every
// sequence a node is missing is either in an active NAK loop or in the
// Unrecovered set (counter ≡ set, the same invariant RRMP pins).
package rmtp

import (
	"sort"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Send transmits a PDU to a peer; bind it to the network.
type Send func(to topology.NodeID, msg wire.Message)

// Broadcast transmits the initial multicast to the whole group.
type Broadcast func(msg wire.Message)

// Params tunes the baseline protocol.
type Params struct {
	// NakRTT is the retry period for NAKs to the local repair server.
	NakRTT time.Duration
	// ParentRTT is the retry period for server-to-parent-server NAKs.
	ParentRTT time.Duration
	// AckInterval is the period of receiver->server ACK windows.
	AckInterval time.Duration
	// SessionInterval is the sender's session-message period.
	SessionInterval time.Duration
	// MaxTries bounds NAK retries (give-ups are counted, and the missing
	// sequence lands in Metrics.Unrecoverable / Unrecovered() until a
	// late repair or session-driven retry delivers it).
	MaxTries int
	// StartSeq is the reliability baseline, as in rrmp.Params.
	StartSeq uint64
	// ByteBudget caps the repair server's buffer at this many payload
	// bytes (core.Config.ByteBudget), the same knob rrmp.Params exposes.
	// A store past the cap pressure-evicts the longest-idle entries; a
	// displaced message a receiver still needs is re-fetched from the
	// parent server (or, at the root, surfaces as receiver give-ups).
	// Zero means unlimited, the baseline the paper describes.
	ByteBudget int
	// CopyOnStore makes the repair server's buffer keep a private copy of
	// every payload instead of aliasing the received slice
	// (core.Config.CopyPayload) — the same aliasing guarantee
	// rrmp.Params.CopyOnStore gives the diffused buffers, so byte-for-byte
	// protocol comparisons cover both sides.
	CopyOnStore bool
}

// DefaultParams mirrors the RRMP defaults for fair comparison.
func DefaultParams() Params {
	return Params{
		NakRTT:          10*time.Millisecond + 500*time.Microsecond,
		ParentRTT:       100*time.Millisecond + 500*time.Microsecond,
		AckInterval:     100 * time.Millisecond,
		SessionInterval: 100 * time.Millisecond,
		MaxTries:        64,
	}
}

// Config assembles a node.
type Config struct {
	// Self is this node's id.
	Self topology.NodeID
	// Server is the repair server of this node's region. A node whose
	// Server equals Self is the repair server.
	Server topology.NodeID
	// ParentServer is the repair server of the parent region
	// (topology.NoNode at the root).
	ParentServer topology.NodeID
	// RegionMembers lists this region's members including Self; the repair
	// server tracks ACK floors for all of them.
	RegionMembers []topology.NodeID
	// ChildServers lists the repair servers of child regions; their ACKs
	// also gate buffer trimming (a child region may still need repairs).
	ChildServers []topology.NodeID
	// Send, Sched, Rng are required.
	Send  Send
	Sched clock.Scheduler
	Rng   *rng.Source
	// Params tunes timers; zero fields default.
	Params Params
	// OnDeliver observes distinct deliveries.
	OnDeliver func(id wire.MessageID, at time.Duration)
}

// Metrics tallies one node's protocol activity.
type Metrics struct {
	Delivered   stats.Counter
	Duplicates  stats.Counter
	NaksSent    stats.Counter
	NaksRecv    stats.Counter
	RepairsSent stats.Counter
	RepairsRecv stats.Counter
	AcksSent    stats.Counter
	AcksRecv    stats.Counter
	GiveUps     stats.Counter
	// Unrecoverable counts sequences whose NAK loop exhausted MaxTries and
	// that have not arrived since; it is decremented when a late repair
	// delivers the message (counter ≡ Unrecovered() set at all times).
	Unrecoverable stats.Counter
	// RecoveryLatency records detect→deliver times for repaired gaps, in
	// milliseconds (the unit rrmp.Metrics.RecoveryLatency uses).
	RecoveryLatency stats.Histogram
	// BufferingTime records store→evict times at the repair server, in
	// milliseconds.
	BufferingTime stats.Histogram
}

// poster is the scheduler fast path netsim also uses: schedule with no
// cancellation handle. NAK retries ride it so re-arming the loop never
// allocates a timer wrapper; stale fires are rejected by identity checks.
type poster interface {
	Post(d time.Duration, fn func())
}

// nakState is one in-flight NAK retry loop. fire is bound once at creation
// so every retry re-arm reuses the same callback, and detection time is
// kept for the recovery-latency histogram.
type nakState struct {
	tries      int
	detectedAt time.Duration
	// refetch marks a server-side loop re-fetching a pressure-displaced
	// message from the parent to serve recorded waiters; the server has
	// already delivered the message, so refetch loops bypass the received
	// check and never count toward Unrecoverable.
	refetch bool
	fire    func()
}

// Node is one RMTP participant (receiver or repair server). Not safe for
// concurrent use.
type Node struct {
	cfg    Config
	params Params
	post   func(d time.Duration, fn func())

	isServer bool
	buffer   *core.Buffer // repair servers only

	received map[uint64]bool
	maxSeen  uint64
	prefix   uint64
	source   topology.NodeID // learned from the first DATA/SESSION

	naks        map[uint64]*nakState
	waiters     map[uint64][]topology.NodeID
	ackFloors   map[topology.NodeID]uint64
	ackTimer    clock.Timer
	acksStarted bool
	trimmed     uint64 // highest seq removed from the server buffer
	// unrecovered holds sequences this node gave up recovering; cleared on
	// late delivery. See Metrics.Unrecoverable.
	unrecovered map[uint64]bool

	metrics Metrics
	left    bool
	crashed bool
}

// New constructs a node. Repair servers get a BufferAll store trimmed by
// the ACK protocol (budgeted and copy-on-store per Params); plain
// receivers buffer nothing (they never retransmit).
func New(cfg Config) *Node {
	if cfg.Send == nil || cfg.Sched == nil || cfg.Rng == nil {
		panic("rmtp: Send, Sched and Rng are required")
	}
	p := cfg.Params
	d := DefaultParams()
	if p.NakRTT <= 0 {
		p.NakRTT = d.NakRTT
	}
	if p.ParentRTT <= 0 {
		p.ParentRTT = d.ParentRTT
	}
	if p.AckInterval <= 0 {
		p.AckInterval = d.AckInterval
	}
	if p.SessionInterval <= 0 {
		p.SessionInterval = d.SessionInterval
	}
	if p.MaxTries <= 0 {
		p.MaxTries = d.MaxTries
	}
	n := &Node{
		cfg:         cfg,
		params:      p,
		isServer:    cfg.Self == cfg.Server,
		received:    make(map[uint64]bool),
		maxSeen:     p.StartSeq,
		prefix:      p.StartSeq,
		source:      topology.NoNode,
		naks:        make(map[uint64]*nakState),
		waiters:     make(map[uint64][]topology.NodeID),
		ackFloors:   make(map[topology.NodeID]uint64),
		trimmed:     p.StartSeq,
		unrecovered: make(map[uint64]bool),
	}
	if ps, ok := cfg.Sched.(poster); ok {
		n.post = ps.Post
	} else {
		n.post = func(d time.Duration, fn func()) { cfg.Sched.After(d, fn) }
	}
	if n.isServer {
		n.buffer = core.NewBuffer(core.Config{
			Policy:      core.BufferAll{},
			Sched:       cfg.Sched,
			Rng:         cfg.Rng,
			ByteBudget:  p.ByteBudget,
			CopyPayload: p.CopyOnStore,
			OnEvict: func(e *core.Entry, _ core.EvictReason) {
				n.metrics.BufferingTime.AddDuration(cfg.Sched.Now() - e.StoredAt)
			},
		})
		for _, m := range cfg.RegionMembers {
			if m != cfg.Self {
				n.ackFloors[m] = p.StartSeq
			}
		}
		for _, c := range cfg.ChildServers {
			n.ackFloors[c] = p.StartSeq
		}
	}
	return n
}

// Metrics returns the node's live metrics.
func (n *Node) Metrics() *Metrics { return &n.metrics }

// Buffer returns the repair server's buffer (nil for plain receivers).
func (n *Node) Buffer() *core.Buffer { return n.buffer }

// IsServer reports whether this node is its region's repair server.
func (n *Node) IsServer() bool { return n.isServer }

// HasReceived reports whether seq has been delivered to this node.
func (n *Node) HasReceived(seq uint64) bool { return n.received[seq] }

// Prefix returns the contiguous received prefix.
func (n *Node) Prefix() uint64 { return n.prefix }

// Left reports whether the node has left the group.
func (n *Node) Left() bool { return n.left }

// Crashed reports whether the node is currently crashed.
func (n *Node) Crashed() bool { return n.crashed }

// Unrecovered returns the sequences this node has given up recovering,
// ascending. Empty for a healthy quiesced run; always consistent with
// Metrics.Unrecoverable (counter ≡ set).
func (n *Node) Unrecovered() []uint64 {
	out := make([]uint64, 0, len(n.unrecovered))
	for seq := range n.unrecovered {
		out = append(out, seq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StartAcks begins the periodic ACK-window loop (receivers report to their
// region server; servers report the aggregated floor to their parent).
func (n *Node) StartAcks() {
	if n.ackTimer != nil || n.left || n.crashed {
		return
	}
	n.acksStarted = true
	n.armAckLoop()
}

// armAckLoop schedules the first (jittered) tick of the ACK loop; Recover
// reuses it to restart the loop a crash stopped.
func (n *Node) armAckLoop() {
	var tick func()
	tick = func() {
		n.sendAck()
		n.ackTimer = n.cfg.Sched.After(n.params.AckInterval, tick)
	}
	jitter := time.Duration(n.cfg.Rng.Jitter(float64(n.params.AckInterval), 0.2))
	n.ackTimer = n.cfg.Sched.After(jitter, tick)
}

// StopAcks halts the ACK loop.
func (n *Node) StopAcks() {
	if n.ackTimer != nil {
		n.ackTimer.Stop()
		n.ackTimer = nil
	}
	n.acksStarted = false
}

// sendAck reports this node's floor upward: receivers to their server,
// servers to their parent server (hierarchical aggregation).
func (n *Node) sendAck() {
	floor := n.prefix
	var to topology.NodeID
	switch {
	case !n.isServer:
		to = n.cfg.Server
	case n.cfg.ParentServer != topology.NoNode:
		// A server acks the minimum of its own prefix and its region's
		// floors: the parent may trim only what this whole subtree has.
		floor = n.aggregateFloor()
		to = n.cfg.ParentServer
	default:
		return // root server acks nobody
	}
	n.metrics.AcksSent.Inc()
	n.cfg.Send(to, wire.Message{Type: wire.TypeAck, From: n.cfg.Self, TopSeq: floor})
}

func (n *Node) aggregateFloor() uint64 {
	floor := n.prefix
	for _, f := range n.ackFloors {
		if f < floor {
			floor = f
		}
	}
	return floor
}

// Receive dispatches one incoming PDU. Left and crashed nodes ignore all
// input, exactly like rrmp.Member.
func (n *Node) Receive(from topology.NodeID, msg wire.Message) {
	if n.left || n.crashed {
		return
	}
	switch msg.Type {
	case wire.TypeData, wire.TypeRepair:
		if msg.Type == wire.TypeRepair {
			n.metrics.RepairsRecv.Inc()
		}
		n.deliver(msg.ID, msg.Payload)
	case wire.TypeSession:
		n.noteTop(msg.From, msg.TopSeq)
		n.retryStalled()
	case wire.TypeNak:
		n.onNak(from, msg)
	case wire.TypeAck:
		n.onAck(from, msg)
	default:
		// Other PDUs belong to RRMP; the baseline ignores them.
	}
}

// deliver records a message, serves waiters (servers), and advances gap
// detection. A duplicate can still complete a server-side refetch of a
// pressure-displaced entry: the payload is re-stored and recorded waiters
// are served from the in-hand bytes.
func (n *Node) deliver(id wire.MessageID, payload []byte) {
	if n.source == topology.NoNode {
		n.source = id.Source
	}
	if n.received[id.Seq] {
		n.metrics.Duplicates.Inc()
		if n.isServer && id.Seq > n.trimmed {
			if st, ok := n.naks[id.Seq]; ok && st.refetch {
				delete(n.naks, id.Seq)
			}
			if ws := n.waiters[id.Seq]; len(ws) > 0 {
				n.buffer.Store(id, payload)
				delete(n.waiters, id.Seq)
				for _, w := range ws {
					n.sendRepair(w, id, payload)
				}
			}
		}
		return
	}
	n.received[id.Seq] = true
	n.metrics.Delivered.Inc()
	for n.received[n.prefix+1] {
		n.prefix++
	}
	if st, ok := n.naks[id.Seq]; ok {
		delete(n.naks, id.Seq)
		if !st.refetch {
			n.metrics.RecoveryLatency.AddDuration(n.cfg.Sched.Now() - st.detectedAt)
		}
	}
	// A sequence given up on can still arrive — a very late repair, or a
	// session-driven retry that finally reached a recovered server. It is
	// then no longer lost.
	if n.unrecovered[id.Seq] {
		delete(n.unrecovered, id.Seq)
		n.metrics.Unrecoverable.Add(-1)
	}
	if n.isServer && id.Seq > n.trimmed {
		n.buffer.Store(id, payload)
		if ws := n.waiters[id.Seq]; len(ws) > 0 {
			delete(n.waiters, id.Seq)
			for _, w := range ws {
				n.sendRepair(w, id, payload)
			}
		}
	}
	if n.cfg.OnDeliver != nil {
		n.cfg.OnDeliver(id, n.cfg.Sched.Now())
	}
	n.noteTop(id.Source, id.Seq)
}

// noteTop advances loss detection to top and NAKs every gap.
func (n *Node) noteTop(src topology.NodeID, top uint64) {
	if n.source == topology.NoNode {
		n.source = src
	}
	if top <= n.maxSeen {
		return
	}
	for seq := n.maxSeen + 1; seq <= top; seq++ {
		if !n.received[seq] {
			n.startNak(seq)
		}
	}
	n.maxSeen = top
}

// retryStalled restarts the NAK loop for every sequence this node gave up
// on (real RMTP receivers NAK for as long as the session lasts; the retry
// budget only bounds one episode). The sequence stays in the unrecovered
// set until it actually arrives, so accounting never flickers: a missing
// message that has exhausted at least one retry budget is always visible
// in Metrics.Unrecoverable. Sequences are walked in ascending order so
// identically seeded runs schedule identical retries.
func (n *Node) retryStalled() {
	if len(n.unrecovered) == 0 {
		return
	}
	var seqs []uint64
	for seq := range n.unrecovered {
		if _, running := n.naks[seq]; !running && !n.received[seq] {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		n.startNak(seq)
	}
}

// startNak begins the retry loop for one missing sequence.
func (n *Node) startNak(seq uint64) {
	if _, ok := n.naks[seq]; ok || n.received[seq] {
		return
	}
	st := &nakState{detectedAt: n.cfg.Sched.Now()}
	st.fire = func() { n.nakAttempt(seq, st) }
	n.naks[seq] = st
	n.nakAttempt(seq, st)
}

// startRefetch begins a server-side NAK loop toward the parent server for
// a message this server received but no longer buffers (displaced under
// Params.ByteBudget) while receivers still wait for it. The root has no
// parent to ask; its requesters' own retry budgets surface the loss.
func (n *Node) startRefetch(seq uint64) {
	if n.cfg.ParentServer == topology.NoNode {
		return
	}
	if _, ok := n.naks[seq]; ok {
		return
	}
	st := &nakState{detectedAt: n.cfg.Sched.Now(), refetch: true}
	st.fire = func() { n.nakAttempt(seq, st) }
	n.naks[seq] = st
	n.nakAttempt(seq, st)
}

func (n *Node) nakAttempt(seq uint64, st *nakState) {
	if n.naks[seq] != st || n.left || n.crashed {
		return
	}
	if st.refetch {
		if len(n.waiters[seq]) == 0 {
			delete(n.naks, seq)
			return
		}
	} else if n.received[seq] {
		return
	}
	var to topology.NodeID
	var rtt time.Duration
	switch {
	case !n.isServer:
		to, rtt = n.cfg.Server, n.params.NakRTT
	case n.cfg.ParentServer != topology.NoNode:
		to, rtt = n.cfg.ParentServer, n.params.ParentRTT
	default:
		// Root server missing a message: with the sender as root there is
		// nobody to ask; give up (the sender cannot lose its own data).
		delete(n.naks, seq)
		n.metrics.GiveUps.Inc()
		n.markUnrecoverable(seq)
		return
	}
	if st.tries >= n.params.MaxTries {
		n.metrics.GiveUps.Inc()
		delete(n.naks, seq)
		if !st.refetch {
			n.markUnrecoverable(seq)
		}
		return
	}
	st.tries++
	n.metrics.NaksSent.Inc()
	n.cfg.Send(to, wire.Message{
		Type: wire.TypeNak,
		From: n.cfg.Self,
		ID:   wire.MessageID{Source: n.source, Seq: seq},
	})
	// Post, not After: retries are cancelled by deleting the nakState (the
	// identity check above rejects stale fires), so the loop re-arms with
	// zero allocations however many times it retries.
	n.post(rtt, st.fire)
}

// markUnrecoverable records an exhausted recovery exactly once; delivery
// clears it, keeping Metrics.Unrecoverable ≡ the Unrecovered set.
func (n *Node) markUnrecoverable(seq uint64) {
	if n.received[seq] || n.unrecovered[seq] {
		return
	}
	n.unrecovered[seq] = true
	n.metrics.Unrecoverable.Inc()
}

// onNak answers from the buffer or records a waiter and escalates.
func (n *Node) onNak(from topology.NodeID, msg wire.Message) {
	n.metrics.NaksRecv.Inc()
	if !n.isServer {
		return // receivers never retransmit in a tree protocol
	}
	seq := msg.ID.Seq
	if e, ok := n.buffer.Get(msg.ID); ok {
		// The request is buffer feedback too: a wanted entry moves to the
		// back of the pressure-eviction order, like rrmp's OnRequest.
		n.buffer.OnRequest(msg.ID)
		n.sendRepair(from, msg.ID, e.Payload)
		return
	}
	if seq <= n.trimmed {
		// Acked by the whole subtree and trimmed: the requester acked it
		// earlier (or is a stale duplicate NAK); nothing to do.
		return
	}
	// Not buffered and below no ACK floor: remember the requester and
	// escalate upward — a plain NAK loop if this server never received
	// the message, a refetch loop if it was displaced under the budget.
	// The escalation runs even for an already-recorded waiter: its retry
	// is the signal that re-arms a loop that exhausted its budget or died
	// with a crash while the waiter record survived (start* are no-ops
	// while a loop is in flight).
	recorded := false
	for _, w := range n.waiters[seq] {
		if w == from {
			recorded = true
			break
		}
	}
	if !recorded {
		n.waiters[seq] = append(n.waiters[seq], from)
	}
	if n.received[seq] {
		n.startRefetch(seq)
		return
	}
	n.noteTop(msg.ID.Source, seq)
	n.startNak(seq)
}

func (n *Node) sendRepair(to topology.NodeID, id wire.MessageID, payload []byte) {
	n.metrics.RepairsSent.Inc()
	n.cfg.Send(to, wire.Message{Type: wire.TypeRepair, From: n.cfg.Self, ID: id, Payload: payload})
}

// onAck merges a floor report and trims the buffer up to the region-wide
// minimum.
func (n *Node) onAck(from topology.NodeID, msg wire.Message) {
	n.metrics.AcksRecv.Inc()
	if !n.isServer {
		return
	}
	if _, tracked := n.ackFloors[from]; !tracked {
		return // not one of ours
	}
	if msg.TopSeq > n.ackFloors[from] {
		n.ackFloors[from] = msg.TopSeq
	}
	n.trim()
}

// trim discards buffered messages fully acknowledged by the region and all
// child subtrees.
func (n *Node) trim() {
	floor := n.aggregateFloor()
	for seq := n.trimmed + 1; seq <= floor; seq++ {
		n.buffer.Remove(wire.MessageID{Source: n.source, Seq: seq}, core.EvictStable)
		n.trimmed = seq
	}
}

// ForgetAcker stops tracking who's ACK floor: the member departed
// gracefully and its (frozen) floor must not block trimming forever. The
// trim itself is deferred while the server is crashed — a dead server does
// no buffer work; the next ACK after recovery applies the new floor.
func (n *Node) ForgetAcker(who topology.NodeID) {
	if !n.isServer || n.left {
		return
	}
	if _, ok := n.ackFloors[who]; !ok {
		return
	}
	delete(n.ackFloors, who)
	if !n.crashed {
		n.trim()
	}
}

// stopProtocolTimers halts the ACK loop (without clearing acksStarted) and
// abandons every NAK loop. Pending Post-scheduled retries become stale and
// are rejected by the nakState identity check.
func (n *Node) stopProtocolTimers() {
	if n.ackTimer != nil {
		n.ackTimer.Stop()
		n.ackTimer = nil
	}
	n.naks = make(map[uint64]*nakState)
}

// Leave departs the group cleanly: all timers stop and input is ignored
// from now on. RMTP has no buffer-handoff or server-migration protocol —
// the harness (runner.TreeCluster.Leave) deregisters the leaver's ACK
// floor at its server, but a departing repair server simply orphans its
// region, exactly like a crashed one that never recovers. That asymmetry
// with RRMP's §3.2 handoff is part of what the protocol comparison
// measures. A crashed node cannot leave; Leave is then a no-op.
func (n *Node) Leave() {
	if n.left || n.crashed {
		return
	}
	n.stopProtocolTimers()
	n.acksStarted = false
	n.left = true
}

// Crash halts the node ungracefully: timers stop, input is ignored until
// Recover, and protocol state (reception set, server buffer, ACK floors)
// survives the outage as a warm image. The caller is responsible for also
// cutting the node's network (netsim.SetDown). A crashed repair server
// orphans its region: receivers NAK a corpse, exhaust their budgets and
// count the loss explicitly.
func (n *Node) Crash() {
	if n.left || n.crashed {
		return
	}
	n.stopProtocolTimers()
	n.crashed = true
}

// Recover resumes a crashed node: the ACK loop restarts if it was running
// before the crash, and every gap in the already-observed sequence range
// gets a fresh NAK budget. Sequences previously given up on stay in the
// unrecovered set until they actually arrive — the retry being in flight
// does not make the loss less real. No-op unless crashed.
func (n *Node) Recover() {
	if n.left || !n.crashed {
		return
	}
	n.crashed = false
	if n.acksStarted {
		n.armAckLoop()
	}
	for seq := n.params.StartSeq + 1; seq <= n.maxSeen; seq++ {
		if !n.received[seq] {
			n.startNak(seq)
		}
	}
}

package workload

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/rng"
)

// Arrival-process tokens accepted by Spec.Arrival (and the -workload flag).
const (
	ArrivalConstant = "constant"
	ArrivalPoisson  = "poisson"
	ArrivalBurst    = "burst"
)

// Window is one rate-modulation phase: while From <= t < To a client's
// arrival rate is multiplied by Factor (so Factor 2 halves the gaps and
// Factor 0.25 stretches them 4x). Windows model diurnal load swings and
// bursty phases without a separate generator per phase; outside every
// window the base rate applies.
type Window struct {
	From   time.Duration `json:"from_ns"`
	To     time.Duration `json:"to_ns"`
	Factor float64       `json:"factor"`
}

// Spec declares a multi-client workload: N concurrent publishers, each
// with its own arrival process, a Zipf-skewed share of the total publish
// volume, and a shared payload-size model. A Spec is pure data (it lives
// inside exp.Scenario and serializes into sweep reports); Timeline
// materializes it into the merged publish schedule both protocol kernels
// drive.
type Spec struct {
	// Clients is the number of concurrent publishers (>= 1).
	Clients int `json:"clients"`
	// Msgs is the total publish count across all clients.
	Msgs int `json:"msgs"`
	// Arrival selects the per-client arrival process: "constant",
	// "poisson", or "burst".
	Arrival string `json:"arrival"`
	// Gap is the per-client mean inter-publish gap at the base rate.
	Gap time.Duration `json:"gap_ns"`
	// ZipfS skews publish volume across clients: client k (0-based) gets
	// weight 1/(k+1)^ZipfS of the total. 0 divides evenly.
	ZipfS float64 `json:"zipf_s,omitempty"`
	// BurstLen and BurstGap shape the "burst" arrival process: bursts of
	// BurstLen publishes spaced BurstGap apart, with the (rate-modulated)
	// Gap from each burst's last publish to the next burst's start.
	BurstLen int           `json:"burst_len,omitempty"`
	BurstGap time.Duration `json:"burst_gap_ns,omitempty"`
	// Windows modulate every client's arrival rate over time.
	Windows []Window `json:"windows,omitempty"`
	// SizeModel and SizeMean pick the per-publish payload-size model
	// (NewSizeModel tokens). Both zero means the workload does not engage
	// the byte axis and publishes carry the historic 256-byte payload.
	SizeModel string `json:"size_model,omitempty"`
	SizeMean  int    `json:"size_mean,omitempty"`
	// LateJoinFrac > 0 marks the VoD prefix-push regime: that fraction of
	// non-publisher members start crashed and join between LateJoinAt and
	// LateJoinAt+LateJoinSpread, needing the whole published prefix
	// recovered. The runner owns member selection; the spec only carries
	// the shape.
	LateJoinFrac   float64       `json:"late_join_frac,omitempty"`
	LateJoinAt     time.Duration `json:"late_join_at_ns,omitempty"`
	LateJoinSpread time.Duration `json:"late_join_spread_ns,omitempty"`
}

// Validate checks the spec's static shape, returning the first problem.
func (s *Spec) Validate() error {
	if s.Clients < 1 {
		return fmt.Errorf("workload: clients %d < 1", s.Clients)
	}
	if s.Msgs < 1 {
		return fmt.Errorf("workload: msgs %d < 1", s.Msgs)
	}
	switch s.Arrival {
	case ArrivalConstant, ArrivalPoisson:
	case ArrivalBurst:
		if s.BurstLen < 1 {
			return fmt.Errorf("workload: burst arrival needs burst-len >= 1, got %d", s.BurstLen)
		}
		if s.BurstGap < 0 {
			return fmt.Errorf("workload: negative burst gap %v", s.BurstGap)
		}
	default:
		return fmt.Errorf("workload: unknown arrival process %q", s.Arrival)
	}
	if s.Gap <= 0 {
		return fmt.Errorf("workload: non-positive mean gap %v", s.Gap)
	}
	if s.ZipfS < 0 {
		return fmt.Errorf("workload: negative zipf skew %g", s.ZipfS)
	}
	for i, w := range s.Windows {
		if w.To <= w.From || w.From < 0 {
			return fmt.Errorf("workload: window %d range [%v,%v) invalid", i, w.From, w.To)
		}
		if w.Factor <= 0 {
			return fmt.Errorf("workload: window %d factor %g <= 0", i, w.Factor)
		}
	}
	if s.SizeModel != "" || s.SizeMean > 0 {
		if _, err := NewSizeModel(s.SizeModel, s.SizeMean); err != nil {
			return err
		}
	}
	if s.LateJoinFrac < 0 || s.LateJoinFrac > 1 {
		return fmt.Errorf("workload: late-join fraction %g outside [0,1]", s.LateJoinFrac)
	}
	if s.LateJoinFrac > 0 && s.LateJoinAt <= 0 {
		return fmt.Errorf("workload: late joiners need a positive join time, got %v", s.LateJoinAt)
	}
	if s.LateJoinSpread < 0 {
		return fmt.Errorf("workload: negative late-join spread %v", s.LateJoinSpread)
	}
	return nil
}

// BytesEngaged reports whether the spec draws payload sizes (and so the
// byte-currency metrics belong in its cells).
func (s *Spec) BytesEngaged() bool {
	return s != nil && (s.SizeModel != "" || s.SizeMean > 0)
}

// Token returns the spec's stable cell-name token (the "wl=..." value in
// scenario names and reports). It encodes only the axes the spec engages,
// the same keep-names-short rule Scenario.Name follows.
func (s *Spec) Token() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:c%d:m%d", s.Arrival, s.Clients, s.Msgs)
	if s.ZipfS > 0 {
		fmt.Fprintf(&b, ":z%g", s.ZipfS)
	}
	if len(s.Windows) > 0 {
		fmt.Fprintf(&b, ":w%d", len(s.Windows))
	}
	if s.BytesEngaged() {
		model := s.SizeModel
		if model == "" {
			model = SizeFixed
		}
		mean := s.SizeMean
		if mean < 1 {
			mean = 256
		}
		fmt.Fprintf(&b, ":%s%d", model, mean)
	}
	if s.LateJoinFrac > 0 {
		fmt.Fprintf(&b, ":vod%g@%v", s.LateJoinFrac, s.LateJoinAt)
	}
	return b.String()
}

// Event is one publish of a merged multi-client timeline.
type Event struct {
	// At is the publish instant relative to the run start.
	At time.Duration
	// Client is the publishing client's index (maps to a member node in
	// the runner).
	Client int
	// Bytes is the payload size (>= 1).
	Bytes int
}

// Timeline is a merged multi-client publish schedule, sorted by (At,
// Client). It is the unit the kernels drive, the trace codec records, and
// Replay reconstructs.
type Timeline []Event

// Valid reports whether the timeline is non-decreasing in time with sane
// per-event fields — the drivers reject anything else instead of silently
// scheduling out of order.
func (tl Timeline) Valid() bool {
	for i, e := range tl {
		if e.At < 0 || e.Client < 0 || e.Bytes < 1 {
			return false
		}
		if i > 0 && e.At < tl[i-1].At {
			return false
		}
	}
	return true
}

// Span returns the time of the last publish (0 for an empty timeline).
func (tl Timeline) Span() time.Duration {
	if len(tl) == 0 {
		return 0
	}
	return tl[len(tl)-1].At
}

// Clients returns the number of client slots the timeline addresses
// (max index + 1).
func (tl Timeline) Clients() int {
	max := -1
	for _, e := range tl {
		if e.Client > max {
			max = e.Client
		}
	}
	return max + 1
}

// MaxBytes returns the largest payload in the timeline.
func (tl Timeline) MaxBytes() int {
	max := 0
	for _, e := range tl {
		if e.Bytes > max {
			max = e.Bytes
		}
	}
	return max
}

// clientStreamBase labels the per-client rng streams. Client k's stream is
// root.Split(clientStreamBase + k): a counter-hash derivation, so the
// stream depends only on the workload seed and the client index — never on
// member count, shard width, or how many draws other clients made.
const clientStreamBase = 0xc11e4700

// Per-client substream labels (split off the client stream).
const (
	arrivalSubStream = 1
	sizeSubStream    = 2
)

// zipfShares apportions total messages across clients with Zipf(s) weights
// (client k gets weight 1/(k+1)^s; s = 0 is an even split), using
// largest-remainder rounding so the counts sum exactly to total. Ties in
// the remainders break toward lower-ranked (higher-weight) clients, so the
// result is deterministic.
func zipfShares(total, clients int, s float64) []int {
	weights := make([]float64, clients)
	var sum float64
	for k := range weights {
		weights[k] = math.Pow(float64(k+1), -s)
		sum += weights[k]
	}
	counts := make([]int, clients)
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, clients)
	assigned := 0
	for k := range counts {
		exact := float64(total) * weights[k] / sum
		counts[k] = int(exact)
		assigned += counts[k]
		rems[k] = rem{idx: k, frac: exact - float64(counts[k])}
	}
	sort.SliceStable(rems, func(i, j int) bool { return rems[i].frac > rems[j].frac })
	for i := 0; i < total-assigned; i++ {
		counts[rems[i%clients].idx]++
	}
	return counts
}

// factorAt returns the rate-modulation factor in effect at t: the first
// matching window's Factor, or 1.
func (s *Spec) factorAt(t time.Duration) float64 {
	for _, w := range s.Windows {
		if t >= w.From && t < w.To {
			return w.Factor
		}
	}
	return 1
}

// gapAt returns the effective mean gap at t (base gap divided by the
// window factor), floored at 1ns so schedules always advance.
func (s *Spec) gapAt(t time.Duration) time.Duration {
	g := time.Duration(float64(s.Gap) / s.factorAt(t))
	if g < 1 {
		g = 1
	}
	return g
}

// clientSchedule generates one client's publish instants. r drives only
// this client's arrival randomness (poisson draws); constant and burst
// processes are deterministic given the spec.
func (s *Spec) clientSchedule(msgs int, r *rng.Source) Schedule {
	if msgs <= 0 {
		return nil
	}
	out := make(Schedule, 0, msgs)
	at := time.Duration(0)
	switch s.Arrival {
	case ArrivalConstant:
		for len(out) < msgs {
			out = append(out, at)
			at += s.gapAt(at)
		}
	case ArrivalPoisson:
		for len(out) < msgs {
			out = append(out, at)
			gap := s.gapAt(at)
			at += time.Duration(r.ExpFloat64(1/gap.Seconds()) * float64(time.Second))
		}
	case ArrivalBurst:
		for len(out) < msgs {
			last := at
			for i := 0; i < s.BurstLen && len(out) < msgs; i++ {
				last = at + time.Duration(i)*s.BurstGap
				out = append(out, last)
			}
			at = last + s.gapAt(last)
		}
	}
	return out
}

// Timeline materializes the spec into the merged (at, client, bytes)
// publish timeline, the multi-client analogue of PayloadSizesFor's
// pre-drawn sizes: all randomness is consumed here, up front, from
// dedicated per-client streams, so the driving engine schedules pure data
// and stays byte-identical at any shard width or worker-pool size.
func (s *Spec) Timeline(seed uint64) (Timeline, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	model, err := NewSizeModel(s.SizeModel, s.SizeMean)
	if err != nil {
		return nil, err
	}
	counts := zipfShares(s.Msgs, s.Clients, s.ZipfS)
	root := rng.New(seed)
	events := make(Timeline, 0, s.Msgs)
	for c := 0; c < s.Clients; c++ {
		cr := root.Split(clientStreamBase + uint64(c))
		sched := s.clientSchedule(counts[c], cr.Split(arrivalSubStream))
		if !sched.Valid() {
			return nil, fmt.Errorf("workload: client %d schedule not monotone", c)
		}
		var sr *rng.Source
		if !Deterministic(model) {
			sr = cr.Split(sizeSubStream)
		}
		sizes := Sizes(model, len(sched), sr)
		for i, at := range sched {
			events = append(events, Event{At: at, Client: c, Bytes: sizes[i]})
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		return events[i].Client < events[j].Client
	})
	if !events.Valid() {
		return nil, fmt.Errorf("workload: merged timeline invalid")
	}
	return events, nil
}

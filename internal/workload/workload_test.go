package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
)

func TestConstant(t *testing.T) {
	s := Constant(5, 10*time.Millisecond)
	if len(s) != 5 {
		t.Fatalf("len %d", len(s))
	}
	for i, at := range s {
		if at != time.Duration(i)*10*time.Millisecond {
			t.Fatalf("schedule %v", s)
		}
	}
	if Constant(0, time.Second) != nil {
		t.Fatal("empty constant not nil")
	}
	if s.Span() != 40*time.Millisecond {
		t.Fatalf("span %v", s.Span())
	}
}

func TestPoissonMeanGap(t *testing.T) {
	r := rng.New(3)
	const n = 20000
	mean := 10 * time.Millisecond
	s := Poisson(n, mean, r)
	if !s.Valid() {
		t.Fatal("Poisson schedule not sorted")
	}
	if s[0] != 0 {
		t.Fatalf("first arrival %v", s[0])
	}
	got := s.Span().Seconds() / float64(n-1)
	if math.Abs(got-mean.Seconds()) > mean.Seconds()*0.05 {
		t.Fatalf("mean gap %.4fs, want ~%.4fs", got, mean.Seconds())
	}
}

func TestPoissonDeterministic(t *testing.T) {
	a := Poisson(100, time.Millisecond, rng.New(9))
	b := Poisson(100, time.Millisecond, rng.New(9))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different schedule")
		}
	}
}

func TestPoissonPanicsOnBadGap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Poisson(5, 0, rng.New(1))
}

func TestBurstsShape(t *testing.T) {
	s := Bursts(7, 3, time.Millisecond, 100*time.Millisecond)
	if len(s) != 7 {
		t.Fatalf("len %d", len(s))
	}
	want := Schedule{
		0, time.Millisecond, 2 * time.Millisecond,
		100 * time.Millisecond, 101 * time.Millisecond, 102 * time.Millisecond,
		200 * time.Millisecond,
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("schedule %v, want %v", s, want)
		}
	}
	if !s.Valid() {
		t.Fatal("bursts not sorted")
	}
}

func TestBurstsEmpty(t *testing.T) {
	if Bursts(0, 3, 1, 2) != nil || Bursts(5, 0, 1, 2) != nil {
		t.Fatal("degenerate bursts not nil")
	}
}

// Property: all generators produce valid (sorted) schedules of the exact
// requested length.
func TestGeneratorsValidProperty(t *testing.T) {
	prop := func(nRaw, kindRaw uint8, seed uint16) bool {
		n := int(nRaw % 64)
		var s Schedule
		switch kindRaw % 3 {
		case 0:
			s = Constant(n, 3*time.Millisecond)
		case 1:
			s = Poisson(n, 5*time.Millisecond, rng.New(uint64(seed)))
		case 2:
			s = Bursts(n, int(kindRaw%5)+1, time.Millisecond, 50*time.Millisecond)
		}
		if n <= 0 {
			return s == nil
		}
		return len(s) == n && s.Valid() && s[0] == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
)

func TestConstant(t *testing.T) {
	s := Constant(5, 10*time.Millisecond)
	if len(s) != 5 {
		t.Fatalf("len %d", len(s))
	}
	for i, at := range s {
		if at != time.Duration(i)*10*time.Millisecond {
			t.Fatalf("schedule %v", s)
		}
	}
	if Constant(0, time.Second) != nil {
		t.Fatal("empty constant not nil")
	}
	if s.Span() != 40*time.Millisecond {
		t.Fatalf("span %v", s.Span())
	}
}

func TestPoissonMeanGap(t *testing.T) {
	r := rng.New(3)
	const n = 20000
	mean := 10 * time.Millisecond
	s, err := Poisson(n, mean, r)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Valid() {
		t.Fatal("Poisson schedule not sorted")
	}
	if s[0] != 0 {
		t.Fatalf("first arrival %v", s[0])
	}
	got := s.Span().Seconds() / float64(n-1)
	if math.Abs(got-mean.Seconds()) > mean.Seconds()*0.05 {
		t.Fatalf("mean gap %.4fs, want ~%.4fs", got, mean.Seconds())
	}
}

func TestPoissonDeterministic(t *testing.T) {
	a, err := Poisson(100, time.Millisecond, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Poisson(100, time.Millisecond, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different schedule")
		}
	}
}

// A non-positive mean gap is CLI-reachable input, so it must surface as an
// error, not a panic (the NewSizeModel convention).
func TestPoissonErrorsOnBadGap(t *testing.T) {
	if _, err := Poisson(5, 0, rng.New(1)); err == nil {
		t.Fatal("no error for zero mean gap")
	}
	if _, err := Poisson(5, -time.Second, rng.New(1)); err == nil {
		t.Fatal("no error for negative mean gap")
	}
	if s, err := Poisson(0, 0, rng.New(1)); s != nil || err != nil {
		t.Fatalf("empty poisson = (%v, %v), want (nil, nil)", s, err)
	}
}

func TestBurstsShape(t *testing.T) {
	s := Bursts(7, 3, time.Millisecond, 100*time.Millisecond)
	if len(s) != 7 {
		t.Fatalf("len %d", len(s))
	}
	// betweenGap runs from each burst's LAST publish: burst one ends at
	// 2ms, so burst two starts at 102ms and burst three at 204ms.
	want := Schedule{
		0, time.Millisecond, 2 * time.Millisecond,
		102 * time.Millisecond, 103 * time.Millisecond, 104 * time.Millisecond,
		204 * time.Millisecond,
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("schedule %v, want %v", s, want)
		}
	}
	if !s.Valid() {
		t.Fatal("bursts not sorted")
	}
}

// Regression for the non-monotone Bursts bug: when a burst lasts longer
// than the between-burst gap (betweenGap < (burstLen-1)*inGap), advancing
// from the burst START interleaved bursts out of order. Advancing from the
// burst's last publish keeps the schedule monotone.
func TestBurstsMonotoneWhenBurstsOutlastGap(t *testing.T) {
	s := Bursts(6, 3, 10*time.Millisecond, 5*time.Millisecond)
	if !s.Valid() {
		t.Fatalf("overlapping bursts not monotone: %v", s)
	}
	want := Schedule{
		0, 10 * time.Millisecond, 20 * time.Millisecond,
		25 * time.Millisecond, 35 * time.Millisecond, 45 * time.Millisecond,
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("schedule %v, want %v", s, want)
		}
	}
	if s.Span() != 45*time.Millisecond {
		t.Fatalf("span %v, want 45ms", s.Span())
	}
}

func TestBurstsEmpty(t *testing.T) {
	if Bursts(0, 3, 1, 2) != nil || Bursts(5, 0, 1, 2) != nil {
		t.Fatal("degenerate bursts not nil")
	}
}

func TestFixedSize(t *testing.T) {
	if got := (FixedSize(512)).Size(nil); got != 512 {
		t.Fatalf("fixed size %d", got)
	}
	if got := (FixedSize(0)).Size(nil); got != 1 {
		t.Fatalf("degenerate fixed size %d, want 1", got)
	}
	if !Deterministic(FixedSize(256)) {
		t.Fatal("FixedSize not deterministic")
	}
	if Deterministic(UniformSize{1, 2}) || Deterministic(LognormalSize{Mean: 9}) {
		t.Fatal("randomized model claimed deterministic")
	}
}

func TestUniformSizeRange(t *testing.T) {
	r := rng.New(5)
	m := UniformSize{Min: 100, Max: 300}
	seen := map[int]bool{}
	for i := 0; i < 4000; i++ {
		n := m.Size(r)
		if n < 100 || n > 300 {
			t.Fatalf("uniform draw %d outside [100,300]", n)
		}
		seen[n] = true
	}
	if len(seen) < 150 {
		t.Fatalf("uniform draws hit only %d distinct sizes", len(seen))
	}
	if got := (UniformSize{Min: -4, Max: -2}).Size(r); got != 1 {
		t.Fatalf("degenerate uniform %d, want 1", got)
	}
}

// TestLognormalSizeMean checks the mu = ln(mean) − sigma²/2 correction:
// the empirical mean of many draws must land near the requested mean.
func TestLognormalSizeMean(t *testing.T) {
	r := rng.New(7)
	m := LognormalSize{Mean: 1024}
	const n = 200000
	var sum float64
	min, max := math.MaxInt, 0
	for i := 0; i < n; i++ {
		v := m.Size(r)
		sum += float64(v)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	got := sum / n
	if math.Abs(got-1024) > 1024*0.05 {
		t.Fatalf("lognormal mean %.0f, want ~1024", got)
	}
	// Heavy tail: the extremes must straddle the mean by a wide margin.
	if min >= 512 || max <= 2048 {
		t.Fatalf("lognormal range [%d, %d] suspiciously tight", min, max)
	}
}

func TestNewSizeModel(t *testing.T) {
	cases := []struct {
		token string
		mean  int
		want  SizeModel
	}{
		{"", 512, FixedSize(512)},
		{SizeFixed, 0, FixedSize(256)}, // unset mean keeps the historic 256
		{SizeUniform, 1000, UniformSize{Min: 500, Max: 1500}},
		{SizeLognormal, 64, LognormalSize{Mean: 64}},
	}
	for _, c := range cases {
		got, err := NewSizeModel(c.token, c.mean)
		if err != nil {
			t.Fatalf("NewSizeModel(%q, %d): %v", c.token, c.mean, err)
		}
		if got != c.want {
			t.Fatalf("NewSizeModel(%q, %d) = %#v, want %#v", c.token, c.mean, got, c.want)
		}
	}
	if _, err := NewSizeModel("zipf", 256); err == nil {
		t.Fatal("unknown model token accepted")
	}
}

// Property: every model yields sizes >= 1, Sizes returns exactly n draws,
// and identically seeded streams draw identical size sequences.
func TestSizesDeterministicProperty(t *testing.T) {
	prop := func(kindRaw, nRaw uint8, mean uint16, seed uint16) bool {
		n := int(nRaw % 50)
		m, err := NewSizeModel(
			[]string{SizeFixed, SizeUniform, SizeLognormal}[kindRaw%3],
			int(mean%4096),
		)
		if err != nil {
			return false
		}
		a := Sizes(m, n, rng.New(uint64(seed)))
		b := Sizes(m, n, rng.New(uint64(seed)))
		if n <= 0 {
			return a == nil && b == nil
		}
		if len(a) != n || len(b) != n {
			return false
		}
		for i := range a {
			if a[i] != b[i] || a[i] < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: all generators produce valid (sorted) schedules of the exact
// requested length, with Span() equal to the last (maximum) instant, and
// identical schedules under a fixed seed. Burst gaps are drawn adversarially
// small so the case the monotonicity fix covers (bursts outlasting the
// between-burst gap) is exercised throughout.
func TestGeneratorsValidProperty(t *testing.T) {
	prop := func(nRaw, kindRaw, gapRaw uint8, seed uint16) bool {
		n := int(nRaw % 64)
		gen := func() Schedule {
			switch kindRaw % 3 {
			case 0:
				return Constant(n, 3*time.Millisecond)
			case 1:
				s, err := Poisson(n, 5*time.Millisecond, rng.New(uint64(seed)))
				if err != nil {
					return nil
				}
				return s
			default:
				return Bursts(n, int(kindRaw%5)+1, time.Millisecond,
					time.Duration(gapRaw%8)*500*time.Microsecond)
			}
		}
		s, again := gen(), gen()
		if n <= 0 {
			return s == nil
		}
		if len(s) != n || !s.Valid() || s[0] != 0 {
			return false
		}
		max := s[0]
		for i := range s {
			if s[i] > max {
				max = s[i]
			}
			if s[i] != again[i] {
				return false // same inputs must reproduce the schedule
			}
		}
		return s.Span() == max
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

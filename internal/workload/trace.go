package workload

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"
)

// TraceSchema is the recorded-trace header line: the format is one header
// line followed by one "at_ns client bytes\n" record per publish, in
// timeline order. The encoding is canonical — decimal integers with no
// sign, no leading zeros, single spaces, a newline after every record —
// so any accepted trace re-encodes to the exact bytes it was read from
// and a byte-level diff of two traces is a semantic diff.
const TraceSchema = "rrmp-trace/v1"

// Decoder guard rails: a trace is attacker-supplied input once it is a CLI
// flag, so Replay bounds the per-record fields instead of letting a forged
// record demand a 1EB payload buffer or 2^60 client slots downstream.
const (
	// maxTraceBytes caps one record's payload size (1 GiB).
	maxTraceBytes = 1 << 30
	// maxTraceClients caps the client index space (1M publishers — the
	// scale ladder's member ceiling).
	maxTraceClients = 1 << 20
)

// Record writes the timeline in the rrmp-trace/v1 format. Invalid
// timelines are rejected — a recorded trace must always replay.
func Record(w io.Writer, tl Timeline) error {
	if !tl.Valid() {
		return fmt.Errorf("workload: refusing to record invalid timeline")
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s\n", TraceSchema); err != nil {
		return err
	}
	for _, e := range tl {
		if e.Bytes > maxTraceBytes || e.Client >= maxTraceClients {
			return fmt.Errorf("workload: event (%v, client %d, %dB) outside trace bounds", e.At, e.Client, e.Bytes)
		}
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", int64(e.At), e.Client, e.Bytes); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Replay parses an rrmp-trace/v1 stream back into a Timeline. Decoding is
// strict: a malformed header, a non-canonical number, an out-of-order
// timestamp, or a missing final newline is an error, never a guess — the
// invariant FuzzTraceDecode pins is that every accepted input re-encodes
// byte-identically.
func Replay(r io.Reader) (Timeline, error) {
	data, err := io.ReadAll(io.LimitReader(r, 1<<28))
	if err != nil {
		return nil, err
	}
	s := string(data)
	if !strings.HasPrefix(s, TraceSchema+"\n") {
		return nil, fmt.Errorf("workload: trace missing %q header", TraceSchema)
	}
	s = s[len(TraceSchema)+1:]
	var tl Timeline
	prev := time.Duration(0)
	for line := 1; len(s) > 0; line++ {
		nl := strings.IndexByte(s, '\n')
		if nl < 0 {
			return nil, fmt.Errorf("workload: trace record %d missing final newline", line)
		}
		rec := s[:nl]
		s = s[nl+1:]
		var at, client, bytes int64
		if !parseTraceRecord(rec, &at, &client, &bytes) {
			return nil, fmt.Errorf("workload: trace record %d %q not canonical", line, rec)
		}
		e := Event{At: time.Duration(at), Client: int(client), Bytes: int(bytes)}
		if e.At < prev {
			return nil, fmt.Errorf("workload: trace record %d goes back in time (%v < %v)", line, e.At, prev)
		}
		if e.Bytes < 1 || e.Bytes > maxTraceBytes || e.Client >= maxTraceClients {
			return nil, fmt.Errorf("workload: trace record %d outside bounds", line)
		}
		prev = e.At
		tl = append(tl, e)
	}
	return tl, nil
}

// parseTraceRecord parses one canonical "a b c" record: three base-10
// integers, single-space separated, no signs, no leading zeros.
func parseTraceRecord(rec string, fields ...*int64) bool {
	parts := strings.Split(rec, " ")
	if len(parts) != len(fields) {
		return false
	}
	for i, p := range parts {
		v, ok := parseCanonicalInt(p)
		if !ok {
			return false
		}
		*fields[i] = v
	}
	return true
}

// parseCanonicalInt accepts only the canonical decimal form %d emits for a
// non-negative int64: "0", or a nonzero digit followed by digits, within
// int64 range.
func parseCanonicalInt(s string) (int64, bool) {
	if s == "" || len(s) > 19 {
		return 0, false
	}
	if s[0] == '0' && len(s) > 1 {
		return 0, false
	}
	var v int64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		d := int64(c - '0')
		if v > (1<<63-1-d)/10 {
			return 0, false
		}
		v = v*10 + d
	}
	return v, true
}

package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestTraceRoundTrip(t *testing.T) {
	s := &Spec{
		Clients: 4, Msgs: 50, Arrival: ArrivalPoisson, Gap: 5 * time.Millisecond,
		ZipfS: 1.1, SizeModel: SizeLognormal, SizeMean: 512,
	}
	tl, err := s.Timeline(42)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Record(&buf, tl); err != nil {
		t.Fatal(err)
	}
	got, err := Replay(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tl) {
		t.Fatalf("replayed %d events, recorded %d", len(got), len(tl))
	}
	for i := range tl {
		if got[i] != tl[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], tl[i])
		}
	}
	// Re-encoding the replayed timeline must reproduce the trace bytes.
	var again bytes.Buffer
	if err := Record(&again, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("re-encoded trace differs from original bytes")
	}
}

func TestTraceRecordRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	bad := Timeline{{At: time.Second, Client: 0, Bytes: 10}, {At: 0, Client: 0, Bytes: 10}}
	if err := Record(&buf, bad); err == nil {
		t.Fatal("out-of-order timeline recorded")
	}
}

func TestTraceReplayRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":              "",
		"bad header":         "rrmp-trace/v2\n0 0 1\n",
		"no final newline":   TraceSchema + "\n0 0 1",
		"leading zero":       TraceSchema + "\n01 0 1\n",
		"sign":               TraceSchema + "\n+1 0 1\n",
		"negative":           TraceSchema + "\n-1 0 1\n",
		"hex":                TraceSchema + "\n0x1 0 1\n",
		"double space":       TraceSchema + "\n0  0 1\n",
		"trailing space":     TraceSchema + "\n0 0 1 \n",
		"two fields":         TraceSchema + "\n0 0\n",
		"four fields":        TraceSchema + "\n0 0 1 2\n",
		"zero bytes":         TraceSchema + "\n0 0 0\n",
		"huge bytes":         TraceSchema + "\n0 0 99999999999\n",
		"huge client":        TraceSchema + "\n0 99999999 1\n",
		"time goes backward": TraceSchema + "\n5 0 1\n4 0 1\n",
		"int64 overflow":     TraceSchema + "\n99999999999999999999 0 1\n",
		"crlf":               TraceSchema + "\n0 0 1\r\n",
	}
	for name, in := range cases {
		if _, err := Replay(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
	// Header alone is a valid empty trace.
	tl, err := Replay(strings.NewReader(TraceSchema + "\n"))
	if err != nil || len(tl) != 0 {
		t.Fatalf("empty trace = (%v, %v)", tl, err)
	}
}

// goldenTraceSpec pins the committed regression fixture: any change to the
// generator pipeline (client streams, zipf apportionment, merge order,
// size draws) or to the trace encoding shows up as a byte diff against
// testdata/golden.trace.
func goldenTraceSpec() *Spec {
	return &Spec{
		Clients: 4, Msgs: 32, Arrival: ArrivalPoisson, Gap: 10 * time.Millisecond,
		ZipfS: 1.1, SizeModel: SizeLognormal, SizeMean: 512,
	}
}

func TestGoldenTrace(t *testing.T) {
	tl, err := goldenTraceSpec().Timeline(7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Record(&buf, tl); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden.trace")
	if os.Getenv("UPDATE_TRACE_GOLDEN") != "" {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_TRACE_GOLDEN=1 to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("generated trace differs from committed golden.trace; " +
			"if the change is intentional, regenerate with UPDATE_TRACE_GOLDEN=1")
	}
	got, err := Replay(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tl) {
		t.Fatalf("golden replays to %d events, want %d", len(got), len(tl))
	}
}

// FuzzTraceDecode pins the decoder's two safety properties: arbitrary
// bytes never panic, and any accepted trace re-encodes to the exact input
// bytes (canonical form).
func FuzzTraceDecode(f *testing.F) {
	f.Add([]byte(TraceSchema + "\n"))
	f.Add([]byte(TraceSchema + "\n0 0 1\n"))
	f.Add([]byte(TraceSchema + "\n0 0 256\n5000000 1 512\n5000000 2 64\n"))
	f.Add([]byte(TraceSchema + "\n01 0 1\n"))
	f.Add([]byte("rrmp-trace/v2\n0 0 1\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tl, err := Replay(bytes.NewReader(data))
		if err != nil {
			return
		}
		if !tl.Valid() {
			t.Fatalf("decoder accepted an invalid timeline from %q", data)
		}
		var buf bytes.Buffer
		if err := Record(&buf, tl); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("accepted trace not canonical:\nin:  %q\nout: %q", data, buf.Bytes())
		}
	})
}

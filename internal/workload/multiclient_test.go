package workload

import (
	"testing"
	"testing/quick"
	"time"
)

// specForProperty builds a small but varied spec from raw fuzz-ish inputs.
func specForProperty(kindRaw, clientsRaw, msgsRaw uint8, zipfRaw, winRaw uint8) *Spec {
	s := &Spec{
		Clients: int(clientsRaw%6) + 1,
		Msgs:    int(msgsRaw%40) + 1,
		Arrival: []string{ArrivalConstant, ArrivalPoisson, ArrivalBurst}[kindRaw%3],
		Gap:     10 * time.Millisecond,
		ZipfS:   float64(zipfRaw%3) * 0.7,
	}
	if s.Arrival == ArrivalBurst {
		s.BurstLen = int(kindRaw%4) + 1
		s.BurstGap = time.Millisecond
	}
	if winRaw%2 == 1 {
		s.Windows = []Window{
			{From: 0, To: 50 * time.Millisecond, Factor: 4},
			{From: 50 * time.Millisecond, To: 200 * time.Millisecond, Factor: 0.5},
		}
	}
	return s
}

// Property: the merged multi-client timeline has exactly Msgs events, is
// valid (monotone, positive sizes), spans to its maximum instant, and is
// byte-deterministic under a fixed seed.
func TestTimelineMergeProperty(t *testing.T) {
	prop := func(kindRaw, clientsRaw, msgsRaw, zipfRaw, winRaw uint8, seed uint16) bool {
		s := specForProperty(kindRaw, clientsRaw, msgsRaw, zipfRaw, winRaw)
		tl, err := s.Timeline(uint64(seed))
		if err != nil {
			return false
		}
		again, err := s.Timeline(uint64(seed))
		if err != nil || len(tl) != len(again) {
			return false
		}
		if len(tl) != s.Msgs || !tl.Valid() {
			return false
		}
		max := time.Duration(0)
		for i := range tl {
			if tl[i] != again[i] {
				return false
			}
			if tl[i].Client >= s.Clients {
				return false
			}
			if tl[i].At > max {
				max = tl[i].At
			}
		}
		return tl.Span() == max && tl.Clients() <= s.Clients
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfShares(t *testing.T) {
	counts := zipfShares(100, 4, 1)
	sum := 0
	for i, c := range counts {
		sum += c
		if i > 0 && c > counts[i-1] {
			t.Fatalf("zipf counts not non-increasing: %v", counts)
		}
	}
	if sum != 100 {
		t.Fatalf("zipf counts sum %d, want 100", sum)
	}
	if counts[0] <= counts[3] {
		t.Fatalf("zipf skew missing: %v", counts)
	}
	even := zipfShares(12, 4, 0)
	for _, c := range even {
		if c != 3 {
			t.Fatalf("even split %v", even)
		}
	}
	// Fewer messages than clients: trailing clients get zero, total holds.
	sparse := zipfShares(2, 5, 1.1)
	sum = 0
	for _, c := range sparse {
		sum += c
	}
	if sum != 2 {
		t.Fatalf("sparse split %v sums to %d", sparse, sum)
	}
}

// Per-client streams are label-derived (counter-hash), so one client's
// arrivals never depend on how much randomness other clients consumed:
// with an even split, growing the client set must not change client 0's
// publish instants.
func TestClientStreamsIndependent(t *testing.T) {
	base := &Spec{Clients: 2, Msgs: 40, Arrival: ArrivalPoisson, Gap: 5 * time.Millisecond}
	wide := &Spec{Clients: 4, Msgs: 80, Arrival: ArrivalPoisson, Gap: 5 * time.Millisecond}
	a, err := base.Timeline(11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := wide.Timeline(11)
	if err != nil {
		t.Fatal(err)
	}
	at := func(tl Timeline, client int) []time.Duration {
		var out []time.Duration
		for _, e := range tl {
			if e.Client == client {
				out = append(out, e.At)
			}
		}
		return out
	}
	ca, cb := at(a, 0), at(b, 0)
	if len(ca) != 20 || len(cb) != 20 {
		t.Fatalf("client 0 got %d and %d events, want 20 each", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("client 0 schedule shifted when client count grew: %v vs %v", ca[i], cb[i])
		}
	}
}

// Rate windows modulate arrival density: a 4x window must pack publishes
// tighter than the surrounding base-rate span.
func TestRateWindowsModulateDensity(t *testing.T) {
	s := &Spec{
		Clients: 1, Msgs: 200, Arrival: ArrivalConstant, Gap: 10 * time.Millisecond,
		Windows: []Window{{From: 0, To: 250 * time.Millisecond, Factor: 4}},
	}
	tl, err := s.Timeline(1)
	if err != nil {
		t.Fatal(err)
	}
	inWindow := 0
	for _, e := range tl {
		if e.At < 250*time.Millisecond {
			inWindow++
		}
	}
	// 4x rate: 2.5ms gaps inside the window → 100 events in 250ms vs 25
	// at the base rate.
	if inWindow != 100 {
		t.Fatalf("%d events inside the 4x window, want 100", inWindow)
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Clients: 0, Msgs: 1, Arrival: ArrivalConstant, Gap: time.Millisecond},
		{Clients: 1, Msgs: 0, Arrival: ArrivalConstant, Gap: time.Millisecond},
		{Clients: 1, Msgs: 1, Arrival: "weird", Gap: time.Millisecond},
		{Clients: 1, Msgs: 1, Arrival: ArrivalConstant, Gap: 0},
		{Clients: 1, Msgs: 1, Arrival: ArrivalBurst, Gap: time.Millisecond},
		{Clients: 1, Msgs: 1, Arrival: ArrivalConstant, Gap: time.Millisecond, ZipfS: -1},
		{Clients: 1, Msgs: 1, Arrival: ArrivalConstant, Gap: time.Millisecond,
			Windows: []Window{{From: 5, To: 5, Factor: 1}}},
		{Clients: 1, Msgs: 1, Arrival: ArrivalConstant, Gap: time.Millisecond,
			Windows: []Window{{From: 0, To: 5, Factor: 0}}},
		{Clients: 1, Msgs: 1, Arrival: ArrivalConstant, Gap: time.Millisecond, SizeModel: "zipf"},
		{Clients: 1, Msgs: 1, Arrival: ArrivalConstant, Gap: time.Millisecond, LateJoinFrac: 2},
		{Clients: 1, Msgs: 1, Arrival: ArrivalConstant, Gap: time.Millisecond, LateJoinFrac: 0.5},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
	good := Spec{Clients: 3, Msgs: 10, Arrival: ArrivalPoisson, Gap: time.Millisecond,
		ZipfS: 1.1, SizeModel: SizeLognormal, SizeMean: 512,
		LateJoinFrac: 0.25, LateJoinAt: time.Second, LateJoinSpread: time.Second}
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
}

func TestSpecToken(t *testing.T) {
	s := &Spec{Clients: 8, Msgs: 64, Arrival: ArrivalPoisson, Gap: time.Millisecond}
	if got := s.Token(); got != "poisson:c8:m64" {
		t.Fatalf("token %q", got)
	}
	s = &Spec{Clients: 8, Msgs: 64, Arrival: ArrivalPoisson, Gap: time.Millisecond,
		ZipfS: 1.1, SizeModel: SizeLognormal, SizeMean: 512,
		Windows: []Window{{From: 0, To: 1, Factor: 2}}}
	if got := s.Token(); got != "poisson:c8:m64:z1.1:w1:lognormal512" {
		t.Fatalf("token %q", got)
	}
	s = &Spec{Clients: 1, Msgs: 40, Arrival: ArrivalConstant, Gap: time.Millisecond,
		LateJoinFrac: 0.25, LateJoinAt: 500 * time.Millisecond}
	if got := s.Token(); got != "constant:c1:m40:vod0.25@500ms" {
		t.Fatalf("token %q", got)
	}
}

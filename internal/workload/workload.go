// Package workload generates publish schedules for experiments and
// examples: constant-rate streams, Poisson arrivals, and on/off bursts.
//
// A generator yields the virtual times at which the sender should publish;
// drivers schedule those instants on the simulator (or sleep until them in
// real-time mode). Schedules are pure data, so the same workload can be
// replayed against different protocols or policies for paired comparisons.
package workload

import (
	"fmt"
	"time"

	"repro/internal/rng"
)

// Schedule is a sorted list of publish instants relative to the run start.
type Schedule []time.Duration

// Constant returns n publishes spaced exactly gap apart, starting at 0.
func Constant(n int, gap time.Duration) Schedule {
	if n <= 0 {
		return nil
	}
	out := make(Schedule, n)
	for i := range out {
		out[i] = time.Duration(i) * gap
	}
	return out
}

// Poisson returns n publishes with exponential inter-arrival times of the
// given mean (a Poisson arrival process), using r for randomness.
func Poisson(n int, meanGap time.Duration, r *rng.Source) Schedule {
	if n <= 0 {
		return nil
	}
	if meanGap <= 0 {
		panic(fmt.Sprintf("workload: non-positive mean gap %v", meanGap))
	}
	rate := 1 / meanGap.Seconds()
	out := make(Schedule, n)
	at := time.Duration(0)
	for i := range out {
		out[i] = at
		at += time.Duration(r.ExpFloat64(rate) * float64(time.Second))
	}
	return out
}

// Bursts returns publishes grouped into bursts: burstLen messages spaced
// inGap apart, with betweenGap between burst starts, for total messages.
// This is the "burst" traffic whose tail losses the paper's session
// messages exist to detect (§2.1).
func Bursts(total, burstLen int, inGap, betweenGap time.Duration) Schedule {
	if total <= 0 || burstLen <= 0 {
		return nil
	}
	out := make(Schedule, 0, total)
	burstStart := time.Duration(0)
	for len(out) < total {
		for i := 0; i < burstLen && len(out) < total; i++ {
			out = append(out, burstStart+time.Duration(i)*inGap)
		}
		burstStart += betweenGap
	}
	return out
}

// Span returns the time of the last publish (0 for an empty schedule).
func (s Schedule) Span() time.Duration {
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1]
}

// Valid reports whether the schedule is non-decreasing (drivers rely on
// in-order scheduling).
func (s Schedule) Valid() bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

// Package workload generates publish schedules and payload-size draws for
// experiments and examples: constant-rate streams, Poisson arrivals, on/off
// bursts, and fixed / uniform / lognormal payload-size models.
//
// A generator yields the virtual times at which the sender should publish
// (and, via a SizeModel, how many bytes each publish carries); drivers
// schedule those instants on the simulator (or sleep until them in
// real-time mode). Schedules are pure data, so the same workload can be
// replayed against different protocols or policies for paired comparisons.
package workload

import (
	"fmt"
	"math"
	"time"

	"repro/internal/rng"
)

// Schedule is a sorted list of publish instants relative to the run start.
type Schedule []time.Duration

// Constant returns n publishes spaced exactly gap apart, starting at 0.
func Constant(n int, gap time.Duration) Schedule {
	if n <= 0 {
		return nil
	}
	out := make(Schedule, n)
	for i := range out {
		out[i] = time.Duration(i) * gap
	}
	return out
}

// Poisson returns n publishes with exponential inter-arrival times of the
// given mean (a Poisson arrival process), using r for randomness. A
// non-positive mean gap is an error: generators are reachable from CLI
// flags, so bad input must surface as an error, not a panic (NewSizeModel
// set the convention).
func Poisson(n int, meanGap time.Duration, r *rng.Source) (Schedule, error) {
	if n <= 0 {
		return nil, nil
	}
	if meanGap <= 0 {
		return nil, fmt.Errorf("workload: non-positive mean gap %v", meanGap)
	}
	rate := 1 / meanGap.Seconds()
	out := make(Schedule, n)
	at := time.Duration(0)
	for i := range out {
		out[i] = at
		at += time.Duration(r.ExpFloat64(rate) * float64(time.Second))
	}
	return out, nil
}

// Bursts returns publishes grouped into bursts: burstLen messages spaced
// inGap apart, with betweenGap from the last publish of one burst to the
// start of the next, for total messages. This is the "burst" traffic whose
// tail losses the paper's session messages exist to detect (§2.1).
//
// Advancing from the previous burst's last publish (rather than its start)
// keeps the schedule monotone even when a burst lasts longer than the
// between-burst gap — betweenGap < (burstLen-1)*inGap used to interleave
// bursts out of order, failing Valid().
func Bursts(total, burstLen int, inGap, betweenGap time.Duration) Schedule {
	if total <= 0 || burstLen <= 0 {
		return nil
	}
	out := make(Schedule, 0, total)
	burstStart := time.Duration(0)
	for len(out) < total {
		last := burstStart
		for i := 0; i < burstLen && len(out) < total; i++ {
			last = burstStart + time.Duration(i)*inGap
			out = append(out, last)
		}
		burstStart = last + betweenGap
	}
	return out
}

// A SizeModel draws per-message payload sizes, the second workload axis:
// where a Schedule says when the sender publishes, a SizeModel says how
// many bytes each publish carries. Byte-budgeted buffer experiments sweep
// this axis to decouple byte cost from message count.
type SizeModel interface {
	// Name returns the model's stable token ("fixed", "uniform",
	// "lognormal"), used in scenario cell names.
	Name() string
	// Size draws one payload size in bytes (always >= 1). Deterministic
	// models ignore r; randomized models must not be called with a nil r.
	Size(r *rng.Source) int
}

// Size-model tokens accepted by NewSizeModel (and the -payload-model flag).
const (
	SizeFixed     = "fixed"
	SizeUniform   = "uniform"
	SizeLognormal = "lognormal"
)

// FixedSize yields every payload at exactly this many bytes.
type FixedSize int

// Name implements SizeModel.
func (f FixedSize) Name() string { return SizeFixed }

// Size implements SizeModel.
func (f FixedSize) Size(*rng.Source) int {
	if f < 1 {
		return 1
	}
	return int(f)
}

// UniformSize yields payloads uniform on [Min, Max] bytes (inclusive).
type UniformSize struct {
	Min, Max int
}

// Name implements SizeModel.
func (u UniformSize) Name() string { return SizeUniform }

// Size implements SizeModel.
func (u UniformSize) Size(r *rng.Source) int {
	lo, hi := u.Min, u.Max
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	return lo + r.Intn(hi-lo+1)
}

// LognormalSize yields heavy-tailed payloads with the given mean: sizes are
// exp(N(mu, Sigma²)) rounded to bytes, with mu chosen so the distribution's
// mean is Mean (mu = ln(Mean) − Sigma²/2). Real multicast payload traces
// are closer to this than to any fixed size: most messages are small, a few
// are much larger, and it is exactly the mix that separates byte-accurate
// buffer accounting from message counting.
type LognormalSize struct {
	Mean  int
	Sigma float64
}

// Name implements SizeModel.
func (l LognormalSize) Name() string { return SizeLognormal }

// Size implements SizeModel.
func (l LognormalSize) Size(r *rng.Source) int {
	mean := float64(l.Mean)
	if mean < 1 {
		mean = 1
	}
	sigma := l.Sigma
	if sigma <= 0 {
		sigma = defaultLognormalSigma
	}
	mu := math.Log(mean) - sigma*sigma/2
	n := int(math.Round(math.Exp(mu + sigma*r.NormFloat64())))
	if n < 1 {
		return 1
	}
	return n
}

// defaultLognormalSigma is the shape used when LognormalSize.Sigma is unset
// (and by NewSizeModel): a moderate heavy tail where the largest of ~100
// draws is typically 4–6× the mean.
const defaultLognormalSigma = 0.75

// NewSizeModel builds the model for a token around a mean payload size:
// "fixed" is exactly mean bytes, "uniform" spans [mean/2, 3·mean/2], and
// "lognormal" has the default sigma. mean < 1 defaults to 256 (the historic
// payload every experiment published before the size axis existed).
func NewSizeModel(token string, mean int) (SizeModel, error) {
	if mean < 1 {
		mean = 256
	}
	switch token {
	case "", SizeFixed:
		return FixedSize(mean), nil
	case SizeUniform:
		return UniformSize{Min: mean - mean/2, Max: mean + mean/2}, nil
	case SizeLognormal:
		return LognormalSize{Mean: mean}, nil
	default:
		return nil, fmt.Errorf("workload: unknown payload size model %q", token)
	}
}

// Deterministic reports whether m never consumes randomness, so callers can
// skip deriving an rng stream (keeping fixed-size runs byte-identical to
// runs that predate the size axis).
func Deterministic(m SizeModel) bool {
	_, ok := m.(FixedSize)
	return ok
}

// Sizes draws n payload sizes from m. r may be nil for deterministic
// models.
func Sizes(m SizeModel, n int, r *rng.Source) []int {
	if n <= 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = m.Size(r)
	}
	return out
}

// Span returns the time of the last publish (0 for an empty schedule).
func (s Schedule) Span() time.Duration {
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1]
}

// Valid reports whether the schedule is non-decreasing (drivers rely on
// in-order scheduling).
func (s Schedule) Valid() bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

package wire

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func sampleMessages() []Message {
	return []Message{
		{Type: TypeData, From: 0, ID: MessageID{Source: 0, Seq: 1}, Payload: []byte("hello")},
		{Type: TypeSession, From: 0, TopSeq: 42},
		{Type: TypeLocalRequest, From: 7, ID: MessageID{Source: 0, Seq: 9}},
		{Type: TypeRemoteRequest, From: 12, ID: MessageID{Source: 0, Seq: 9}, Origin: 12},
		{Type: TypeRepair, From: 3, ID: MessageID{Source: 0, Seq: 9}, Origin: 12, LongTerm: true, Payload: []byte{1, 2, 3}},
		{Type: TypeSearch, From: 4, ID: MessageID{Source: 0, Seq: 9}, Origin: 55},
		{Type: TypeHave, From: 5, ID: MessageID{Source: 0, Seq: 9}},
		{Type: TypeHandoff, From: 6, ID: MessageID{Source: 0, Seq: 9}, LongTerm: true, Payload: []byte("xfer")},
		{Type: TypeHistory, From: 8, TopSeq: 100, Digest: []uint64{0xdeadbeef, 0, ^uint64(0)}},
		{Type: TypeAck, From: 9, TopSeq: 64},
		{Type: TypeNak, From: 10, ID: MessageID{Source: 0, Seq: 3}},
		{Type: TypeHeartbeat, From: 11, Counters: []uint64{1, 2, 3, 4}},
	}
}

func TestRoundTrip(t *testing.T) {
	for _, m := range sampleMessages() {
		m := m
		enc := m.Marshal()
		if len(enc) != m.EncodedSize() {
			t.Fatalf("%v: EncodedSize %d != len(Marshal) %d", m.Type, m.EncodedSize(), len(enc))
		}
		got, err := Unmarshal(enc)
		if err != nil {
			t.Fatalf("%v: Unmarshal: %v", m.Type, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
		}
	}
}

func TestUnmarshalRejectsTruncation(t *testing.T) {
	m := Message{Type: TypeRepair, From: 3, ID: MessageID{Source: 1, Seq: 2}, Payload: []byte("payload")}
	enc := m.Marshal()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Unmarshal(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
}

func TestUnmarshalRejectsTrailing(t *testing.T) {
	enc := append((&Message{Type: TypeHave, From: 1}).Marshal(), 0xff)
	if _, err := Unmarshal(enc); err != ErrTrailing {
		t.Fatalf("trailing byte: err = %v, want ErrTrailing", err)
	}
}

func TestUnmarshalRejectsBadType(t *testing.T) {
	enc := (&Message{Type: TypeHave, From: 1}).Marshal()
	enc[0] = 0
	if _, err := Unmarshal(enc); err == nil {
		t.Fatal("type 0 accepted")
	}
	enc[0] = byte(typeMax)
	if _, err := Unmarshal(enc); err == nil {
		t.Fatal("typeMax accepted")
	}
}

func TestUnmarshalRejectsHugeLengths(t *testing.T) {
	m := Message{Type: TypeData, Payload: []byte("x")}
	enc := m.Marshal()
	// Corrupt the payload length prefix (offset: 1+4+4+8+4+8+1 = 30).
	enc[30] = 0xff
	enc[31] = 0xff
	enc[32] = 0xff
	enc[33] = 0x7f
	if _, err := Unmarshal(enc); err == nil {
		t.Fatal("huge length prefix accepted")
	}
}

func TestNegativeNodeIDsRoundTrip(t *testing.T) {
	m := Message{Type: TypeHave, From: topology.NoNode, ID: MessageID{Source: topology.NoNode, Seq: 0}, Origin: topology.NoNode}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.From != topology.NoNode || got.ID.Source != topology.NoNode || got.Origin != topology.NoNode {
		t.Fatalf("NoNode did not round trip: %+v", got)
	}
}

func TestUnmarshalArbitraryBytesNeverPanics(t *testing.T) {
	prop := func(b []byte) bool {
		_, _ = Unmarshal(b) // must not panic regardless of outcome
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	prop := func(from int32, src int32, seq uint64, origin int32, top uint64, lt bool, payload []byte, digest []uint64) bool {
		m := Message{
			Type:     TypeRepair,
			From:     topology.NodeID(from),
			ID:       MessageID{Source: topology.NodeID(src), Seq: seq},
			Origin:   topology.NodeID(origin),
			TopSeq:   top,
			LongTerm: lt,
			Payload:  payload,
			Digest:   digest,
		}
		got, err := Unmarshal(m.Marshal())
		if err != nil {
			return false
		}
		if len(payload) == 0 {
			m.Payload = nil
		}
		if len(digest) == 0 {
			m.Digest = nil
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeString(t *testing.T) {
	if TypeData.String() != "DATA" {
		t.Fatalf("TypeData = %q", TypeData.String())
	}
	if Type(200).String() != "Type(200)" {
		t.Fatalf("unknown type = %q", Type(200).String())
	}
}

func TestMessageIDString(t *testing.T) {
	id := MessageID{Source: 3, Seq: 17}
	if id.String() != "3:17" {
		t.Fatalf("MessageID.String() = %q", id.String())
	}
}

func TestMarshalDeterministic(t *testing.T) {
	m := Message{Type: TypeHistory, From: 2, TopSeq: 9, Digest: []uint64{5, 6}}
	if !bytes.Equal(m.Marshal(), m.Marshal()) {
		t.Fatal("Marshal is not deterministic")
	}
}

func BenchmarkMarshal(b *testing.B) {
	m := Message{Type: TypeRepair, From: 3, ID: MessageID{Source: 1, Seq: 2}, Payload: make([]byte, 1024)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Marshal()
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	m := Message{Type: TypeRepair, From: 3, ID: MessageID{Source: 1, Seq: 2}, Payload: make([]byte, 1024)}
	enc := m.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(enc); err != nil {
			b.Fatal(err)
		}
	}
}

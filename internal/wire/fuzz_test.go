package wire

import (
	"bytes"
	"testing"

	"repro/internal/topology"
)

// Fuzz targets for the codec. The UDP transport feeds Unmarshal raw
// datagrams straight off the socket, so it must never panic on arbitrary
// bytes; and Marshal→Unmarshal must be the identity on every valid message
// (the simulator exchanges Go values, so any codec asymmetry would only
// surface on real networks — exactly where it is hardest to debug).
//
// A seed corpus is committed under testdata/fuzz; a short smoke run is
//
//	go test -fuzz=FuzzUnmarshal -fuzztime=10s ./internal/wire
//	go test -fuzz=FuzzRoundTrip -fuzztime=10s ./internal/wire

// FuzzUnmarshal feeds arbitrary bytes to the decoder: it must return an
// error or a message, never panic, and anything it accepts must re-encode
// to exactly the input (the codec has a single canonical form).
func FuzzUnmarshal(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0x01, 0x02})
	// A valid DATA message and a truncated prefix of it.
	valid := (&Message{
		Type: TypeData, From: 1,
		ID:      MessageID{Source: 1, Seq: 7},
		Payload: []byte("hello"),
	}).Marshal()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	// A heartbeat with counters and a history digest.
	f.Add((&Message{
		Type: TypeHeartbeat, From: 3, Counters: []uint64{1, 2, 3},
	}).Marshal())
	f.Add((&Message{
		Type: TypeHistory, From: 2, TopSeq: 64, Digest: []uint64{^uint64(0)},
	}).Marshal())

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		out := m.Marshal()
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted input is not canonical:\n in=%x\nout=%x", data, out)
		}
		if got := m.EncodedSize(); got != len(out) {
			t.Fatalf("EncodedSize %d != marshalled length %d", got, len(out))
		}
	})
}

// FuzzRoundTrip builds a structured message from fuzzed fields and checks
// the encode→decode round trip reproduces it exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(1), int32(0), int32(0), uint64(1), int32(0), uint64(0), true, []byte("payload"), 0, 0)
	f.Add(uint8(12), int32(5), int32(9), uint64(1<<40), int32(-1), uint64(99), false, []byte{}, 3, 2)
	f.Add(uint8(200), int32(-7), int32(1), uint64(0), int32(7), uint64(1), true, []byte{0}, 1, 0)

	f.Fuzz(func(t *testing.T, typ uint8, from, source int32, seq uint64,
		origin int32, topSeq uint64, longTerm bool, payload []byte, nDigest, nCounters int) {
		m := Message{
			Type:     Type(typ),
			From:     topology.NodeID(from),
			ID:       MessageID{Source: topology.NodeID(source), Seq: seq},
			Origin:   topology.NodeID(origin),
			TopSeq:   topSeq,
			LongTerm: longTerm,
		}
		if len(payload) > 0 {
			m.Payload = payload
		}
		if nDigest < 0 {
			nDigest = -nDigest
		}
		if nCounters < 0 {
			nCounters = -nCounters
		}
		for i := 0; i < nDigest%16; i++ {
			m.Digest = append(m.Digest, seq*uint64(i+1)+uint64(typ))
		}
		for i := 0; i < nCounters%16; i++ {
			m.Counters = append(m.Counters, topSeq^uint64(i))
		}

		blob := m.Marshal()
		if len(blob) != m.EncodedSize() {
			t.Fatalf("EncodedSize %d != marshalled length %d", m.EncodedSize(), len(blob))
		}
		got, err := Unmarshal(blob)
		if !m.Type.Valid() {
			if err == nil {
				t.Fatalf("invalid type %d decoded without error", typ)
			}
			return
		}
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if got.Type != m.Type || got.From != m.From || got.ID != m.ID ||
			got.Origin != m.Origin || got.TopSeq != m.TopSeq || got.LongTerm != m.LongTerm {
			t.Fatalf("fixed fields differ:\n in=%+v\nout=%+v", m, got)
		}
		if !bytes.Equal(got.Payload, m.Payload) {
			t.Fatalf("payload differs: in=%x out=%x", m.Payload, got.Payload)
		}
		if len(got.Digest) != len(m.Digest) || len(got.Counters) != len(m.Counters) {
			t.Fatalf("slice lengths differ:\n in=%+v\nout=%+v", m, got)
		}
		for i := range m.Digest {
			if got.Digest[i] != m.Digest[i] {
				t.Fatalf("digest[%d] differs", i)
			}
		}
		for i := range m.Counters {
			if got.Counters[i] != m.Counters[i] {
				t.Fatalf("counters[%d] differs", i)
			}
		}
	})
}

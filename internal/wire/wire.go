// Package wire defines the protocol data units exchanged by RRMP members
// and a compact binary codec for them.
//
// Inside the simulator, messages travel as Go values and the codec is never
// on the hot path; the UDP transport (internal/udptransport) uses
// Marshal/Unmarshal to put the same messages on real sockets. EncodedSize
// feeds the simulator's traffic accounting so byte counts match what the
// real transport would send.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/topology"
)

// MessageID identifies a multicast data message: the paper's
// [source address, sequence number] identifier (§1, footnote 2).
type MessageID struct {
	Source topology.NodeID
	Seq    uint64
}

// String implements fmt.Stringer for log and trace output.
func (id MessageID) String() string {
	return fmt.Sprintf("%d:%d", id.Source, id.Seq)
}

// Type enumerates the protocol PDUs.
type Type uint8

// Message types. The set covers RRMP proper (data, session, requests,
// repairs, search) plus the PDUs used by baselines (history gossip for
// stability detection, ack/nak for the tree-based protocol) and membership
// dynamics (handoff on leave).
const (
	TypeData          Type = iota + 1 // sender's multicast payload
	TypeSession                       // sender heartbeat carrying top sequence
	TypeLocalRequest                  // local recovery NAK to a region neighbor
	TypeRemoteRequest                 // remote recovery NAK to a parent-region member
	TypeRepair                        // retransmission of a data message
	TypeSearch                        // search-for-bufferer forwarded request
	TypeHave                          // "I have the message" search terminator
	TypeHandoff                       // long-term buffer transfer on leave
	TypeHistory                       // stability detection digest gossip
	TypeAck                           // tree-protocol window ack
	TypeNak                           // tree-protocol nak to repair server
	TypeHeartbeat                     // gossip failure-detector heartbeat
	TypeQuery                         // multicast bufferer query (§3.3's rejected design)

	typeMax // sentinel for validation
)

// TypeCount is the number of defined message types plus the zero sentinel;
// dense per-type tables (netsim's traffic counters) are sized by it.
const TypeCount = int(typeMax)

var typeNames = map[Type]string{
	TypeData:          "DATA",
	TypeSession:       "SESSION",
	TypeLocalRequest:  "REQ",
	TypeRemoteRequest: "RREQ",
	TypeRepair:        "REPAIR",
	TypeSearch:        "SEARCH",
	TypeHave:          "HAVE",
	TypeHandoff:       "HANDOFF",
	TypeHistory:       "HISTORY",
	TypeAck:           "ACK",
	TypeNak:           "NAK",
	TypeHeartbeat:     "HB",
	TypeQuery:         "QUERY",
}

// String implements fmt.Stringer.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Valid reports whether t is a defined message type.
func (t Type) Valid() bool { return t >= TypeData && t < typeMax }

// Message is the single PDU shape shared by all types. Fields not relevant
// to a type are left at their zero values; the codec still round-trips them.
type Message struct {
	// Type discriminates the PDU.
	Type Type
	// From is the immediate transmitter (not necessarily the data source).
	From topology.NodeID
	// ID names the data message this PDU concerns. For TypeData and
	// TypeRepair it identifies the payload; for requests and search PDUs it
	// identifies the wanted message.
	ID MessageID
	// Origin is the node on whose behalf this PDU travels: for TypeSearch
	// it is the remote requester awaiting the repair; for TypeRepair sent
	// in answer to a search it is the searcher that located the bufferer.
	Origin topology.NodeID
	// TopSeq is the highest sequence number the sender has multicast
	// (TypeSession), acked (TypeAck), or observed (TypeHistory).
	TopSeq uint64
	// LongTerm marks a TypeHandoff entry as a long-term buffer transfer
	// and a TypeRepair as coming from a long-term bufferer (metrics only).
	LongTerm bool
	// Payload is the application data (TypeData, TypeRepair, TypeHandoff).
	Payload []byte
	// Digest is a received-set bitmap for TypeHistory: bit i of
	// Digest[i/64] is set iff message Seq base+i has been received.
	Digest []uint64
	// Counters carries gossip heartbeat counters for TypeHeartbeat,
	// indexed by the destination's view ordering.
	Counters []uint64
}

const headerSize = 1 + 4 + 4 + 8 + 4 + 8 + 1 + 4 + 4 + 4 // fixed fields + 3 length prefixes

// EncodedSize returns the exact number of bytes Marshal would produce.
// The simulator charges this size to its traffic counters.
func (m *Message) EncodedSize() int {
	return headerSize + len(m.Payload) + 8*len(m.Digest) + 8*len(m.Counters)
}

// Marshal encodes m into a fresh byte slice.
func (m *Message) Marshal() []byte {
	buf := make([]byte, 0, m.EncodedSize())
	buf = append(buf, byte(m.Type))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.From))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.ID.Source))
	buf = binary.LittleEndian.AppendUint64(buf, m.ID.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Origin))
	buf = binary.LittleEndian.AppendUint64(buf, m.TopSeq)
	if m.LongTerm {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Payload)))
	buf = append(buf, m.Payload...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Digest)))
	for _, w := range m.Digest {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Counters)))
	for _, c := range m.Counters {
		buf = binary.LittleEndian.AppendUint64(buf, c)
	}
	return buf
}

// Unmarshal decode errors.
var (
	ErrShortMessage = errors.New("wire: message truncated")
	ErrBadType      = errors.New("wire: unknown message type")
	ErrTrailing     = errors.New("wire: trailing bytes after message")
	// ErrBadFlag rejects a boolean field encoded as anything but 0 or 1,
	// keeping the codec canonical: every accepted input re-encodes to
	// itself byte for byte (a property the decoder fuzz target enforces).
	ErrBadFlag = errors.New("wire: non-canonical boolean flag")
)

// Unmarshal decodes a message previously produced by Marshal. It rejects
// truncated input, unknown types, non-canonical booleans, and trailing
// garbage.
func Unmarshal(b []byte) (Message, error) {
	var m Message
	r := reader{buf: b}
	t, err := r.byte()
	if err != nil {
		return m, err
	}
	m.Type = Type(t)
	if !m.Type.Valid() {
		return m, fmt.Errorf("%w: %d", ErrBadType, t)
	}
	var u32 uint32
	if u32, err = r.uint32(); err != nil {
		return m, err
	}
	m.From = topology.NodeID(int32(u32))
	if u32, err = r.uint32(); err != nil {
		return m, err
	}
	m.ID.Source = topology.NodeID(int32(u32))
	if m.ID.Seq, err = r.uint64(); err != nil {
		return m, err
	}
	if u32, err = r.uint32(); err != nil {
		return m, err
	}
	m.Origin = topology.NodeID(int32(u32))
	if m.TopSeq, err = r.uint64(); err != nil {
		return m, err
	}
	lt, err := r.byte()
	if err != nil {
		return m, err
	}
	if lt > 1 {
		return m, fmt.Errorf("%w: %d", ErrBadFlag, lt)
	}
	m.LongTerm = lt != 0
	if m.Payload, err = r.bytes(); err != nil {
		return m, err
	}
	if m.Digest, err = r.words(); err != nil {
		return m, err
	}
	if m.Counters, err = r.words(); err != nil {
		return m, err
	}
	if len(r.buf) != r.off {
		return m, ErrTrailing
	}
	return m, nil
}

// reader is a bounds-checked cursor over an encoded message.
type reader struct {
	buf []byte
	off int
}

func (r *reader) need(n int) error {
	if len(r.buf)-r.off < n {
		return ErrShortMessage
	}
	return nil
}

func (r *reader) byte() (byte, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *reader) uint32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) uint64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.uint32()
	if err != nil {
		return nil, err
	}
	if err := r.need(int(n)); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:])
	r.off += int(n)
	return out, nil
}

func (r *reader) words() ([]uint64, error) {
	n, err := r.uint32()
	if err != nil {
		return nil, err
	}
	if err := r.need(int(n) * 8); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(r.buf[r.off:])
		r.off += 8
	}
	return out, nil
}

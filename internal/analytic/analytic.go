// Package analytic implements the closed-form probability results the paper
// derives in §3.1 and §3.2. The figure harness plots these curves next to
// simulation measurements (Figures 3 and 4 of the paper are purely
// analytic; our benches additionally validate them against Monte Carlo
// election trials).
package analytic

import "math"

// ProbNoRequest returns the probability that a member holding a message
// receives no local retransmission request when a fraction p of an n-member
// region missed the message (paper §3.1):
//
//	(1 - 1/(n-1))^(n·p)
//
// As n grows this approaches exp(-p). The result is clamped to [0, 1];
// n < 2 returns 1 (no possible requester).
func ProbNoRequest(n int, p float64) float64 {
	if n < 2 {
		return 1
	}
	if p <= 0 {
		return 1
	}
	if p > 1 {
		p = 1
	}
	v := math.Pow(1-1/float64(n-1), float64(n)*p)
	return clamp01(v)
}

// ProbNoRequestLimit returns the large-region limit exp(-p) of
// ProbNoRequest (paper §3.1).
func ProbNoRequestLimit(p float64) float64 {
	if p <= 0 {
		return 1
	}
	return math.Exp(-p)
}

// PoissonPMF returns P[X = k] for X ~ Poisson(lambda): the paper's model
// for the number of long-term bufferers of an idle message in a large
// region with expected bufferer count lambda = C (§3.2, Figure 3).
func PoissonPMF(lambda float64, k int) float64 {
	if k < 0 || lambda < 0 {
		return 0
	}
	if lambda == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	// Compute in log space to stay finite for large k.
	logp := -lambda + float64(k)*math.Log(lambda) - logFactorial(k)
	return math.Exp(logp)
}

// BinomialPMF returns P[X = k] for X ~ Binomial(n, p): the exact
// finite-region distribution of the number of long-term bufferers when each
// of n members elects itself with probability p (§3.2).
func BinomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n || n < 0 {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	logp := logChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
	return math.Exp(logp)
}

// ProbNoLongTermBufferer returns the probability that no member of a large
// region elects itself a long-term bufferer for an idle message, e^(-C)
// (paper §3.2, Figure 4; 0.25% at C = 6).
func ProbNoLongTermBufferer(c float64) float64 {
	if c < 0 {
		return 1
	}
	return math.Exp(-c)
}

// ProbNoLongTermBuffererExact returns the exact finite-n probability
// (1 - C/n)^n that no member of an n-member region elects itself.
func ProbNoLongTermBuffererExact(c float64, n int) float64 {
	if n <= 0 || c <= 0 {
		return 1
	}
	p := c / float64(n)
	if p >= 1 {
		return 0
	}
	return math.Pow(1-p, float64(n))
}

// ElectionProbability returns the per-member long-term election probability
// P = C/n for a region of n members, clamped to [0, 1] (paper §3.2).
func ElectionProbability(c float64, n int) float64 {
	if n <= 0 || c <= 0 {
		return 0
	}
	return clamp01(c / float64(n))
}

// ExpectedRemoteRequestProbability returns the per-member probability
// lambda/n with which a member that detected a loss sends a remote request,
// so a region-wide loss generates lambda expected requests per round
// (paper §2.2).
func ExpectedRemoteRequestProbability(lambda float64, n int) float64 {
	if n <= 0 || lambda <= 0 {
		return 0
	}
	return clamp01(lambda / float64(n))
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}

// logFactorial returns ln(k!) via the log-gamma function.
func logFactorial(k int) float64 {
	lg, _ := math.Lgamma(float64(k) + 1)
	return lg
}

// logChoose returns ln(n choose k).
func logChoose(n, k int) float64 {
	return logFactorial(n) - logFactorial(k) - logFactorial(n-k)
}

package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProbNoRequestMatchesPaper(t *testing.T) {
	// As n -> infinity the probability approaches e^-p.
	for _, p := range []float64{0.1, 0.5, 0.9} {
		exact := ProbNoRequest(100000, p)
		limit := ProbNoRequestLimit(p)
		if math.Abs(exact-limit) > 1e-3 {
			t.Errorf("p=%v: exact %v vs limit %v", p, exact, limit)
		}
	}
}

func TestProbNoRequestEdges(t *testing.T) {
	if got := ProbNoRequest(1, 0.5); got != 1 {
		t.Fatalf("n=1: %v", got)
	}
	if got := ProbNoRequest(100, 0); got != 1 {
		t.Fatalf("p=0: %v", got)
	}
	if got := ProbNoRequest(100, 2); got != ProbNoRequest(100, 1) {
		t.Fatalf("p clamp failed: %v", got)
	}
}

func TestProbNoRequestDecreasesInP(t *testing.T) {
	prev := 2.0
	for _, p := range []float64{0.1, 0.2, 0.4, 0.8, 1.0} {
		v := ProbNoRequest(100, p)
		if v >= prev {
			t.Fatalf("ProbNoRequest not decreasing at p=%v: %v >= %v", p, v, prev)
		}
		prev = v
	}
}

func TestPoissonPMFSumsToOne(t *testing.T) {
	for _, lambda := range []float64{0.5, 5, 6, 8, 30} {
		var sum float64
		for k := 0; k < 200; k++ {
			sum += PoissonPMF(lambda, k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("lambda=%v: pmf sums to %v", lambda, sum)
		}
	}
}

func TestPoissonPMFKnownValues(t *testing.T) {
	// P[X=0] = e^-lambda; Figure 4's C=6 point: e^-6 = 0.00248 (0.25%).
	if got, want := PoissonPMF(6, 0), math.Exp(-6); math.Abs(got-want) > 1e-12 {
		t.Fatalf("PoissonPMF(6,0) = %v, want %v", got, want)
	}
	// Mode of Poisson(6) is at k=5 and k=6 with equal mass.
	if math.Abs(PoissonPMF(6, 5)-PoissonPMF(6, 6)) > 1e-12 {
		t.Fatal("Poisson(6) mode masses differ")
	}
	if PoissonPMF(5, -1) != 0 {
		t.Fatal("negative k has mass")
	}
	if PoissonPMF(0, 0) != 1 || PoissonPMF(0, 3) != 0 {
		t.Fatal("lambda=0 pmf wrong")
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	cases := []struct {
		n int
		p float64
	}{{10, 0.3}, {100, 0.06}, {1000, 0.01}}
	for _, tc := range cases {
		var sum float64
		for k := 0; k <= tc.n; k++ {
			sum += BinomialPMF(tc.n, k, tc.p)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("Binomial(%d,%v) sums to %v", tc.n, tc.p, sum)
		}
	}
}

func TestBinomialApproachesPoisson(t *testing.T) {
	// Paper §3.2: Binomial(n, C/n) -> Poisson(C) as n -> infinity.
	const c = 6.0
	const n = 5000
	for k := 0; k <= 15; k++ {
		b := BinomialPMF(n, k, c/n)
		p := PoissonPMF(c, k)
		if math.Abs(b-p) > 2e-3 {
			t.Errorf("k=%d: binomial %v vs poisson %v", k, b, p)
		}
	}
}

func TestBinomialPMFEdges(t *testing.T) {
	if BinomialPMF(5, 0, 0) != 1 || BinomialPMF(5, 1, 0) != 0 {
		t.Fatal("p=0 edge wrong")
	}
	if BinomialPMF(5, 5, 1) != 1 || BinomialPMF(5, 4, 1) != 0 {
		t.Fatal("p=1 edge wrong")
	}
	if BinomialPMF(5, 6, 0.5) != 0 || BinomialPMF(5, -1, 0.5) != 0 {
		t.Fatal("out-of-range k has mass")
	}
}

func TestProbNoLongTermBufferer(t *testing.T) {
	// Paper: "When C = 6 ... the probability is only 0.25%."
	if got := ProbNoLongTermBufferer(6); math.Abs(got-0.0025) > 2e-4 {
		t.Fatalf("P(no bufferer | C=6) = %v, want ~0.25%%", got)
	}
	// Decreasing in C.
	prev := 2.0
	for c := 1.0; c <= 6; c++ {
		v := ProbNoLongTermBufferer(c)
		if v >= prev {
			t.Fatalf("not decreasing at C=%v", c)
		}
		prev = v
	}
	if ProbNoLongTermBufferer(-1) != 1 {
		t.Fatal("negative C should return 1")
	}
}

func TestExactVsLimitNoBufferer(t *testing.T) {
	for _, n := range []int{100, 1000, 10000} {
		exact := ProbNoLongTermBuffererExact(6, n)
		limit := ProbNoLongTermBufferer(6)
		tol := 1e-3
		if n >= 1000 {
			tol = 1e-4
		}
		if math.Abs(exact-limit) > tol {
			t.Errorf("n=%d: exact %v vs limit %v", n, exact, limit)
		}
	}
	if ProbNoLongTermBuffererExact(200, 100) != 0 {
		t.Fatal("C>n should give probability 0")
	}
}

func TestElectionProbability(t *testing.T) {
	if got := ElectionProbability(6, 100); got != 0.06 {
		t.Fatalf("P = %v", got)
	}
	if got := ElectionProbability(6, 3); got != 1 {
		t.Fatalf("clamp failed: %v", got)
	}
	if ElectionProbability(6, 0) != 0 || ElectionProbability(-1, 100) != 0 {
		t.Fatal("degenerate inputs nonzero")
	}
}

func TestExpectedRemoteRequestProbability(t *testing.T) {
	if got := ExpectedRemoteRequestProbability(1, 100); got != 0.01 {
		t.Fatalf("lambda/n = %v", got)
	}
	if got := ExpectedRemoteRequestProbability(5, 2); got != 1 {
		t.Fatalf("clamp failed: %v", got)
	}
}

func TestPMFNonNegativeProperty(t *testing.T) {
	prop := func(lk uint16, kk uint8) bool {
		lambda := float64(lk%400) / 10
		k := int(kk % 64)
		p := PoissonPMF(lambda, k)
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
